// Chained ML pipelines (§7): a video-moderation application calls a frame
// detector and then a content classifier, with one end-to-end SLO. Faro
// splits the application SLO into per-stage sub-SLOs proportional to the
// stages' processing times, then autoscales the stages as ordinary jobs --
// the classifier's arrival rate is amplified by the detector's fanout.
//
// Also demonstrates admission control: a third pipeline is admitted only if
// its declared peak load fits alongside the running stages at simultaneous
// peak.
//
// Build & run:  cmake --build build && ./build/examples/pipeline_slo

#include <cstdio>

#include "src/core/admission.h"
#include "src/core/autoscaler.h"
#include "src/core/pipeline.h"
#include "src/sim/simulator.h"
#include "src/workload/synthetic.h"

int main() {
  using namespace faro;

  PipelineSpec pipeline;
  pipeline.name = "moderation";
  pipeline.slo = 0.900;  // end-to-end p99 <= 900 ms
  pipeline.stages = {{"detector", 0.200, 1.0}, {"classifier", 0.100, 1.8}};
  if (!PipelineSloFeasible(pipeline)) {
    std::printf("pipeline SLO below total processing time -- unsatisfiable\n");
    return 1;
  }

  const std::vector<JobSpec> stage_specs = SplitPipelineSlo(pipeline);
  std::printf("SLO split (%.0f ms end-to-end):\n", 1000.0 * pipeline.slo);
  for (const JobSpec& spec : stage_specs) {
    std::printf("  %-24s sub-SLO %.0f ms (p = %.0f ms)\n", spec.name.c_str(),
                1000.0 * spec.slo, 1000.0 * spec.processing_time);
  }

  // One trace drives the pipeline; each stage sees it scaled by its fanout.
  SyntheticTraceConfig trace_config = AzureLikeConfig(2, /*seed=*/5);
  trace_config.days = 1;
  const Series app_trace = GenerateSyntheticTrace(trace_config).RescaledTo(60.0, 900.0);

  std::vector<SimJobConfig> jobs;
  double cumulative_fanout = 1.0;
  for (size_t i = 0; i < pipeline.stages.size(); ++i) {
    cumulative_fanout *= pipeline.stages[i].fanout;
    SimJobConfig job;
    job.spec = stage_specs[i];
    std::vector<double> scaled(app_trace.values().begin(), app_trace.values().end());
    for (double& v : scaled) {
      v *= cumulative_fanout;
    }
    job.arrival_rate_per_min = Series(std::move(scaled));
    jobs.push_back(std::move(job));
  }

  FaroConfig config;
  config.objective = ObjectiveKind::kSum;
  FaroAutoscaler faro(config);
  SimConfig cluster;
  cluster.resources = ClusterResources{14.0, 14.0};
  const RunResult result = RunSimulation(cluster, jobs, faro);

  std::printf("\nper-stage results (14-replica cluster):\n");
  double combined_violation = 0.0;
  for (const JobRunStats& stage : result.jobs) {
    std::printf("  %-24s violations %.3f   avg replicas %.1f\n", stage.name.c_str(),
                stage.slo_violation_rate, stage.avg_replicas);
    combined_violation += stage.slo_violation_rate;
  }
  std::printf("end-to-end violation bound (union): <= %.3f\n", combined_violation);

  // --- Admission control for a new tenant ----------------------------------
  AdmissionController admission(cluster.resources);
  for (size_t i = 0; i < jobs.size(); ++i) {
    AdmissionRequest running;
    running.spec = jobs[i].spec;
    running.peak_arrival_rate = jobs[i].arrival_rate_per_min.MaxValue() / 60.0;
    admission.Admit(running);
  }
  AdmissionRequest newcomer;
  newcomer.spec.name = "ocr-service";
  newcomer.spec.slo = 0.500;
  newcomer.spec.processing_time = 0.120;
  newcomer.peak_arrival_rate = 12.0;
  const AdmissionDecision decision = admission.Check(newcomer);
  std::printf("\nadmission check for '%s' (peak %.0f req/s): %s (%s; peak demand %.1f vCPU)\n",
              newcomer.spec.name.c_str(), newcomer.peak_arrival_rate,
              decision.admitted ? "ADMIT" : "REJECT", decision.reason.c_str(),
              decision.peak_demand_cpu);
  return 0;
}
