// Live replay with an embedded telemetry plane: run a small Faro cluster in
// scaled wall-clock time, scrape its own /metrics and /alerts endpoints from
// the same process, flip the speed mid-run over POST /speed, and finish by
// proving the paced outcome is bit-identical to the batch run -- pacing only
// decides *when* events are delivered, never which events.
//
// In a real deployment the daemon runs standalone (./build/src/serve/faro_serve)
// and Prometheus scrapes it over HTTP; this example wires both sides into one
// binary so the contract is a single runnable.
//
// Build & run:  cmake --build build && ./build/examples/live_replay

#include <cstdio>
#include <thread>

#include "src/serve/daemon.h"
#include "src/serve/http.h"
#include "src/sim/harness.h"
#include "src/sim/simulator.h"

int main() {
  using namespace faro;

  // A 3-job, one-hour slice of the standard evaluation workload.
  ExperimentSetup setup;
  setup.num_jobs = 3;
  setup.capacity = 8.0;
  setup.right_size_replicas = 10.0;
  setup.days = 3;
  setup.obs.metrics = true;  // live registry feeds GET /metrics
  PreparedWorkload workload = PrepareWorkload(setup);
  for (SimJobConfig& job : workload.jobs) {
    job.arrival_rate_per_min = job.arrival_rate_per_min.Slice(0, 60);
  }

  // Batch reference first: same config and seed, no pacing.
  const SimConfig config = BuildSimConfig(setup, setup.seed);
  const auto batch_policy = MakePolicy("Faro-FairSum", nullptr);
  const RunResult batch = RunSimulation(config, workload.jobs, *batch_policy);

  // The live daemon on a fresh policy instance, paced at 600x (one sim-hour
  // in six wall-seconds), HTTP on an ephemeral loopback port.
  const auto live_policy = MakePolicy("Faro-FairSum", nullptr);
  ServeOptions options;
  options.speed = 600.0;
  ReplayDaemon daemon(config, workload.jobs, *live_policy, options);
  if (!daemon.StartServer()) {
    std::printf("could not bind a loopback port\n");
    return 1;
  }
  std::printf("serving http://127.0.0.1:%u  (curl /metrics, /alerts, /healthz)\n\n",
              daemon.port());

  RunResult live;
  std::thread replay([&daemon, &live] { live = daemon.Run(); });

  // Scrape our own plane while the replay runs, like Prometheus would.
  int status = 0;
  std::string body;
  for (int scrape = 0; scrape < 3; ++scrape) {
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    if (HttpFetch(daemon.port(), "GET", "/healthz", "", &status, &body)) {
      std::printf("healthz: %s", body.c_str());
    }
  }
  // Mid-run speed change: the pacing clock re-anchors, the sim target stays
  // continuous, and the outcome below is still bit-identical.
  HttpFetch(daemon.port(), "POST", "/speed", "speed=5000", &status, &body);
  std::printf("speed bumped: %s\n", body.c_str());

  replay.join();
  HttpFetch(daemon.port(), "GET", "/alerts", "", &status, &body);
  std::printf("burn-rate alert feed (%llu onsets):\n%s\n",
              static_cast<unsigned long long>(daemon.alert_onsets()), body.c_str());

  std::printf("batch run:  %llu events, lost utility %.6f\n",
              static_cast<unsigned long long>(batch.events_processed),
              batch.cluster_lost_utility);
  std::printf("paced run:  %llu events, lost utility %.6f\n",
              static_cast<unsigned long long>(live.events_processed),
              live.cluster_lost_utility);
  std::printf("bit-identical: %s\n",
              live.events_processed == batch.events_processed &&
                      live.cluster_lost_utility == batch.cluster_lost_utility
                  ? "yes"
                  : "NO");
  return live.events_processed == batch.events_processed ? 0 : 1;
}
