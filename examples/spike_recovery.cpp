// Flash-crowd recovery with the hybrid autoscaler (§4.4). A content-
// moderation job runs at a calm 120 req/min, then a viral event multiplies
// traffic 8x within two minutes -- something no predictor trained on calm
// history anticipates. Faro's long-term predictive loop alone reacts only at
// the next 5-minute decision; the 10-second short-term reactive loop starts
// adding replicas 30 s after violations appear.
//
// Build & run:  cmake --build build && ./build/examples/spike_recovery

#include <cstdio>
#include <vector>

#include "src/core/autoscaler.h"
#include "src/sim/simulator.h"

namespace {

faro::Series SpikeTrace() {
  // 90 minutes: calm, an 8x flash crowd at t = 30 lasting 20 minutes, calm.
  std::vector<double> trace(90, 120.0);
  for (size_t t = 30; t < 50; ++t) {
    trace[t] = 960.0;
  }
  // Two-minute ramps at both edges.
  trace[29] = 400.0;
  trace[50] = 500.0;
  trace[51] = 250.0;
  return faro::Series(std::move(trace));
}

faro::RunResult RunWithHybrid(bool hybrid) {
  using namespace faro;
  SimJobConfig job;
  job.spec.name = "content-moderation";
  job.spec.slo = 0.400;
  job.spec.processing_time = 0.100;
  job.arrival_rate_per_min = SpikeTrace();
  job.initial_replicas = 2;

  FaroConfig config;
  config.objective = ObjectiveKind::kSum;
  config.enable_hybrid = hybrid;
  FaroAutoscaler faro(config);

  SimConfig cluster;
  cluster.resources = ClusterResources{16.0, 16.0};
  cluster.seed = 99;
  return RunSimulation(cluster, {job}, faro);
}

}  // namespace

int main() {
  const auto with_hybrid = RunWithHybrid(true);
  const auto without_hybrid = RunWithHybrid(false);

  std::printf("flash crowd at t=30..50 (8x traffic), SLO 400 ms, 16-replica cap\n\n");
  std::printf("%-8s %-12s %-22s %-22s\n", "t(min)", "arrivals", "replicas (hybrid on/off)",
              "p99 s (hybrid on/off)");
  const auto& on = with_hybrid.jobs[0];
  const auto& off = without_hybrid.jobs[0];
  for (size_t t = 24; t < 60; t += 3) {
    std::printf("%-8zu %-12.0f %5.0f / %-16.0f %6.2f / %-6.2f\n", t, on.minute_arrivals[t],
                on.minute_replicas[t], off.minute_replicas[t], on.minute_p99[t],
                off.minute_p99[t]);
  }
  std::printf("\nSLO violation rate: hybrid on %.3f, hybrid off %.3f\n",
              on.slo_violation_rate, off.slo_violation_rate);
  std::printf("The reactive loop cuts the violation window to roughly the cold-start\n"
              "time; without it the job waits for the next 5-minute decision.\n");
  return 0;
}
