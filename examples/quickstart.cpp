// Quickstart: autoscale three ML inference jobs with Faro on a simulated
// cluster in ~40 lines of user code.
//
//   1. Describe each job: its latency SLO and per-request processing time.
//   2. Give each job a workload trace (here: synthetic diurnal traces).
//   3. Pick a cluster objective and run the Faro autoscaler in the matched
//      simulator.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "src/core/autoscaler.h"
#include "src/sim/simulator.h"
#include "src/workload/synthetic.h"

int main() {
  using namespace faro;

  // -- 1. Jobs: one pre-trained model each, developer-facing SLOs ----------
  std::vector<SimJobConfig> jobs(3);
  const char* names[] = {"chatbot-intent", "fraud-scoring", "image-tagging"};
  const double slos[] = {0.300, 0.300, 0.720};       // latency targets (s)
  const double processing[] = {0.075, 0.075, 0.180}; // per-request times (s)
  for (size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].spec.name = names[i];
    jobs[i].spec.slo = slos[i];
    jobs[i].spec.percentile = 0.99;
    jobs[i].spec.processing_time = processing[i];
    // -- 2. Workload: one day of per-minute arrival rates -----------------
    SyntheticTraceConfig trace = AzureLikeConfig(i, /*seed=*/7);
    trace.days = 1;
    jobs[i].arrival_rate_per_min =
        GenerateSyntheticTrace(trace).RescaledTo(10.0, 700.0);
  }

  // -- 3. Autoscale: Faro maximising total SLO satisfaction ----------------
  FaroConfig config;
  config.objective = ObjectiveKind::kSum;
  FaroAutoscaler faro(config);  // built-in predictor; plug in N-HiTS for production

  SimConfig cluster;
  cluster.resources = ClusterResources{16.0, 16.0};  // 16 replicas total
  const RunResult result = RunSimulation(cluster, jobs, faro);

  std::printf("cluster utility: %.2f / %.0f   (lost %.2f)\n", result.cluster_avg_utility,
              static_cast<double>(jobs.size()), result.cluster_lost_utility);
  for (const JobRunStats& job : result.jobs) {
    std::printf("  %-16s SLO violations: %5.2f%%   avg replicas: %.1f\n", job.name.c_str(),
                100.0 * job.slo_violation_rate, job.avg_replicas);
  }
  return 0;
}
