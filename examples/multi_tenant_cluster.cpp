// Consolidated on-premises cluster (the paper's motivating scenario): ten
// teams share one fixed 32-replica cluster instead of ten over-provisioned
// silos. This example trains the probabilistic N-HiTS predictor on ten days
// of history, then compares Faro-FairSum with the static FairShare split a
// siloed deployment amounts to.
//
// Build & run:  cmake --build build && ./build/examples/multi_tenant_cluster

#include <cstdio>

#include "src/baselines/baselines.h"
#include "src/sim/harness.h"

int main() {
  using namespace faro;

  ExperimentSetup setup;
  setup.num_jobs = 10;
  setup.capacity = 32.0;
  const PreparedWorkload workload = PrepareWorkload(setup);

  std::printf("training the probabilistic N-HiTS predictor (10 jobs x 10 days)...\n");
  const auto predictor = TrainPredictor(workload, setup.seed, /*epochs=*/6);

  FaroConfig config;
  config.objective = ObjectiveKind::kFairSum;
  FaroAutoscaler faro(config, predictor);
  FairSharePolicy fair_share;

  std::printf("running the shared 32-replica cluster for one trace day...\n\n");
  const RunResult with_faro = RunPolicy(setup, workload, faro, 1);
  const RunResult with_static = RunPolicy(setup, workload, fair_share, 1);

  std::printf("%-10s %-26s %-26s\n", "", "FairShare (static split)", "Faro-FairSum");
  std::printf("%-10s %-26.2f %-26.2f\n", "lost util", with_static.cluster_lost_utility,
              with_faro.cluster_lost_utility);
  std::printf("%-10s %-26.3f %-26.3f\n", "violations", with_static.cluster_slo_violation_rate,
              with_faro.cluster_slo_violation_rate);

  std::printf("\nper-team SLO violation rates:\n");
  std::printf("%-8s %-14s %-14s %-30s\n", "team", "static", "Faro", "Faro avg replicas");
  for (size_t i = 0; i < with_faro.jobs.size(); ++i) {
    std::printf("%-8zu %-14.3f %-14.3f %.1f\n", i, with_static.jobs[i].slo_violation_rate,
                with_faro.jobs[i].slo_violation_rate, with_faro.jobs[i].avg_replicas);
  }
  std::printf("\nFaro moves replicas between teams as their diurnal peaks shift,\n"
              "which a static split cannot do.\n");
  return 0;
}
