// Custom cluster objectives: priorities, fairness weights, and explicit
// request dropping. A cluster operator runs a revenue-critical fraud model
// (priority 3) next to two best-effort analytics models on a deliberately
// undersized cluster, using Faro-PenaltyFairSum: the optimiser may shed load
// (paying the AWS-style availability penalty of Table 5) to protect the SLO
// of whatever it keeps serving.
//
// Build & run:  cmake --build build && ./build/examples/custom_objective

#include <cstdio>

#include "src/core/autoscaler.h"
#include "src/sim/simulator.h"
#include "src/workload/synthetic.h"

int main() {
  using namespace faro;

  std::vector<SimJobConfig> jobs(3);
  const char* names[] = {"fraud-detect", "trend-report", "ad-rank"};
  const double priorities[] = {3.0, 1.0, 1.0};
  for (size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].spec.name = names[i];
    jobs[i].spec.slo = 0.500;
    jobs[i].spec.processing_time = 0.125;
    jobs[i].spec.priority = priorities[i];
    // Identical workloads, so priority is the only thing separating the jobs.
    SyntheticTraceConfig trace = AzureLikeConfig(0, /*seed=*/23);
    trace.days = 1;
    // Heavy load: each job alone wants ~6 replicas at peak.
    jobs[i].arrival_rate_per_min =
        GenerateSyntheticTrace(trace).RescaledTo(200.0, 1700.0);
  }

  FaroConfig config;
  config.objective = ObjectiveKind::kPenaltyFairSum;
  config.gamma = 1.5;  // custom fairness weight (default is the job count)
  FaroAutoscaler faro(config);

  SimConfig cluster;
  cluster.resources = ClusterResources{9.0, 9.0};  // deliberately too small
  const RunResult result = RunSimulation(cluster, jobs, faro);

  std::printf("undersized cluster (9 replicas), objective %s, gamma %.1f\n\n",
              ObjectiveKindName(config.objective).c_str(), config.gamma);
  std::printf("%-14s %-9s %-12s %-14s %-12s %-10s\n", "job", "priority", "violations",
              "avg replicas", "dropped", "eff. util");
  for (size_t i = 0; i < result.jobs.size(); ++i) {
    const JobRunStats& job = result.jobs[i];
    std::printf("%-14s %-9.1f %-12.3f %-14.1f %-12llu %-10.2f\n", job.name.c_str(),
                jobs[i].spec.priority, job.slo_violation_rate, job.avg_replicas,
                static_cast<unsigned long long>(job.drops), job.avg_effective_utility);
  }
  std::printf("\nAll three jobs see identical traffic, but the optimiser sheds roughly\n"
              "20x less load from the priority-3 job and keeps its violations lowest;\n"
              "the best-effort jobs absorb the squeeze when capacity runs out.\n");
  return 0;
}
