#include "src/optim/neldermead.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace faro {
namespace {

double Penalised(const Problem& problem, std::span<const double> x, double penalty,
                 std::vector<double>& scratch) {
  double value = problem.Objective(x);
  problem.Constraints(x, scratch);
  for (const double c : scratch) {
    if (c < 0.0) {
      value += penalty * c * c;
    }
  }
  for (size_t j = 0; j < problem.dimension(); ++j) {
    const double lo = problem.lower()[j];
    const double hi = problem.upper()[j];
    if (std::isfinite(lo) && x[j] < lo) {
      value += penalty * (lo - x[j]) * (lo - x[j]);
    }
    if (std::isfinite(hi) && x[j] > hi) {
      value += penalty * (x[j] - hi) * (x[j] - hi);
    }
  }
  return value;
}

}  // namespace

OptimResult NelderMead(const Problem& problem, std::span<const double> x0,
                       const NelderMeadConfig& config) {
  const size_t n = problem.dimension();
  std::vector<double> scratch;
  int evaluations = 0;
  auto eval = [&](std::span<const double> x) {
    ++evaluations;
    return Penalised(problem, x, config.constraint_penalty, scratch);
  };

  std::vector<std::vector<double>> simplex(n + 1, std::vector<double>(x0.begin(), x0.end()));
  std::vector<double> values(n + 1);
  for (size_t j = 0; j < n; ++j) {
    simplex[j + 1][j] += config.initial_step;
  }
  for (size_t j = 0; j <= n; ++j) {
    values[j] = eval(simplex[j]);
  }

  // Adaptive parameters (Gao & Han) behave better in higher dimensions.
  const double dim = static_cast<double>(n);
  const double alpha = 1.0;
  const double beta = 1.0 + 2.0 / dim;
  const double gamma = 0.75 - 1.0 / (2.0 * dim);
  const double delta = 1.0 - 1.0 / dim;

  std::vector<double> centroid(n);
  std::vector<double> reflected(n);
  std::vector<double> expanded(n);
  std::vector<double> contracted(n);

  for (size_t iter = 0; iter < config.max_iterations; ++iter) {
    // Order ascending by value.
    std::vector<size_t> order(n + 1);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return values[a] < values[b]; });
    std::vector<std::vector<double>> new_simplex(n + 1);
    std::vector<double> new_values(n + 1);
    for (size_t j = 0; j <= n; ++j) {
      new_simplex[j] = std::move(simplex[order[j]]);
      new_values[j] = values[order[j]];
    }
    simplex = std::move(new_simplex);
    values = std::move(new_values);

    if (std::abs(values[n] - values[0]) < config.tolerance) {
      break;
    }

    std::fill(centroid.begin(), centroid.end(), 0.0);
    for (size_t j = 0; j < n; ++j) {
      for (size_t k = 0; k < n; ++k) {
        centroid[k] += simplex[j][k] / dim;
      }
    }

    for (size_t k = 0; k < n; ++k) {
      reflected[k] = centroid[k] + alpha * (centroid[k] - simplex[n][k]);
    }
    const double fr = eval(reflected);
    if (fr < values[0]) {
      for (size_t k = 0; k < n; ++k) {
        expanded[k] = centroid[k] + beta * (reflected[k] - centroid[k]);
      }
      const double fe = eval(expanded);
      if (fe < fr) {
        simplex[n] = expanded;
        values[n] = fe;
      } else {
        simplex[n] = reflected;
        values[n] = fr;
      }
      continue;
    }
    if (fr < values[n - 1]) {
      simplex[n] = reflected;
      values[n] = fr;
      continue;
    }
    const bool outside = fr < values[n];
    if (outside) {
      for (size_t k = 0; k < n; ++k) {
        contracted[k] = centroid[k] + gamma * (reflected[k] - centroid[k]);
      }
    } else {
      for (size_t k = 0; k < n; ++k) {
        contracted[k] = centroid[k] - gamma * (centroid[k] - simplex[n][k]);
      }
    }
    const double fc = eval(contracted);
    if (fc < std::min(fr, values[n])) {
      simplex[n] = contracted;
      values[n] = fc;
      continue;
    }
    // Shrink toward the best vertex.
    for (size_t j = 1; j <= n; ++j) {
      for (size_t k = 0; k < n; ++k) {
        simplex[j][k] = simplex[0][k] + delta * (simplex[j][k] - simplex[0][k]);
      }
      values[j] = eval(simplex[j]);
    }
  }

  size_t best = 0;
  for (size_t j = 1; j <= n; ++j) {
    if (values[j] < values[best]) {
      best = j;
    }
  }
  OptimResult result;
  result.x = simplex[best];
  problem.ClipToBounds(result.x);
  result.value = problem.Objective(result.x);
  result.max_violation = problem.MaxViolation(result.x);
  result.evaluations = evaluations;
  result.converged = true;
  return result;
}

}  // namespace faro
