// Nelder-Mead downhill simplex with penalty-based constraint handling.
// Used as a regression reference for the other solvers and by tests.

#ifndef SRC_OPTIM_NELDERMEAD_H_
#define SRC_OPTIM_NELDERMEAD_H_

#include <span>

#include "src/optim/problem.h"

namespace faro {

struct NelderMeadConfig {
  size_t max_iterations = 2000;
  double initial_step = 1.0;
  double tolerance = 1e-9;
  double constraint_penalty = 1e6;
};

OptimResult NelderMead(const Problem& problem, std::span<const double> x0,
                       const NelderMeadConfig& config = {});

}  // namespace faro

#endif  // SRC_OPTIM_NELDERMEAD_H_
