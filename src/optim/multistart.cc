#include "src/optim/multistart.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>

#include "src/common/parallel.h"
#include "src/common/rng.h"

namespace faro {
namespace {

// One task: COBYLA, or the NelderMead->AugLag chain, from one start point.
OptimResult SolveOneTask(const Problem& problem, const std::vector<double>& x0,
                         bool alternate, const MultiStartConfig& config) {
  if (!alternate) {
    return Cobyla(problem, x0, config.cobyla);
  }
  const OptimResult simplex = NelderMead(problem, x0, config.nelder_mead);
  OptimResult refined = AugmentedLagrangian(problem, simplex.x, config.auglag);
  refined.evaluations += simplex.evaluations;
  // AugLag can wander off a good simplex optimum chasing feasibility it
  // already had; keep whichever of the two points ranks better.
  const bool simplex_ok = simplex.max_violation <= config.feasibility_tolerance;
  const bool refined_ok = refined.max_violation <= config.feasibility_tolerance;
  if ((simplex_ok && !refined_ok) ||
      (simplex_ok == refined_ok && simplex.value < refined.value)) {
    refined.x = simplex.x;
    refined.value = simplex.value;
    refined.max_violation = simplex.max_violation;
  }
  return refined;
}

// Heuristic and jittered starts are scouts: they exist to catch the incumbent
// napping after a load shift, not to be polished to convergence. Quarter
// budgets keep them off the fan-out's critical path -- and off the total-work
// bill on narrow machines -- while still sampling their basins.
MultiStartConfig ScoutBudget(const MultiStartConfig& config) {
  MultiStartConfig scout = config;
  scout.cobyla.max_evaluations = std::max(200, config.cobyla.max_evaluations / 4);
  scout.nelder_mead.max_iterations =
      std::max<size_t>(50, config.nelder_mead.max_iterations / 4);
  scout.auglag.outer_iterations = std::max<size_t>(1, config.auglag.outer_iterations / 2);
  return scout;
}

bool IsScout(StartKind kind) {
  return kind == StartKind::kHeuristic || kind == StartKind::kJitter;
}

// Schedule-independent ranking: feasible beats infeasible, then lower
// objective value, then lower task index (the caller iterates in index order).
bool RanksBetter(const OptimResult& challenger, const OptimResult& incumbent,
                 double tolerance) {
  const bool c_ok = challenger.max_violation <= tolerance;
  const bool i_ok = incumbent.max_violation <= tolerance;
  if (c_ok != i_ok) {
    return c_ok;
  }
  if (!c_ok && challenger.max_violation != incumbent.max_violation) {
    return challenger.max_violation < incumbent.max_violation;
  }
  return challenger.value < incumbent.value;
}

}  // namespace

const char* StartKindName(StartKind kind) {
  switch (kind) {
    case StartKind::kWarmCurrent:
      return "warm-current";
    case StartKind::kPrevSolution:
      return "prev-solution";
    case StartKind::kHeuristic:
      return "heuristic";
    case StartKind::kJitter:
      return "jitter";
  }
  return "unknown";
}

MultiStartResult MultiStartSolve(const Problem& problem, std::vector<StartPoint> starts,
                                 size_t extra_jittered, const MultiStartConfig& config) {
  MultiStartResult out;
  if (starts.empty()) {
    return out;
  }
  const size_t base = starts.size();
  for (size_t k = 0; k < extra_jittered; ++k) {
    Rng rng(HashCombine(config.seed, k + 1));
    StartPoint variant;
    variant.kind = StartKind::kJitter;
    variant.x = starts[k % base].x;
    for (double& v : variant.x) {
      v *= 1.0 + config.jitter * (2.0 * rng.Uniform() - 1.0);
    }
    starts.push_back(std::move(variant));
  }
  for (StartPoint& start : starts) {
    // Full-vector clip: replica *and* drop-rate coordinates land inside the
    // box before any solver sees them.
    problem.ClipToBounds(start.x);
  }

  const size_t solvers = config.use_alternate ? 2 : 1;
  const size_t tasks = starts.size() * solvers;
  struct TaskSlot {
    OptimResult result;
    bool launched = false;
    bool exit_quality = false;
  };
  std::vector<TaskSlot> slots(tasks);
  std::atomic<size_t> first_exit{tasks};
  std::atomic<bool> deadline_hit{false};
  const MultiStartConfig scout = ScoutBudget(config);
  // Non-scout secondary starts (e.g. the deployed allocation behind a
  // warm-start cache hit) run on a scout-sized budget with a higher floor:
  // they sit near the optimum already, so a short confirmation run is enough
  // -- the primary start owns the full budget.
  MultiStartConfig secondary = config;
  secondary.cobyla.max_evaluations = std::max(300, config.cobyla.max_evaluations / 4);
  secondary.nelder_mead.max_iterations =
      std::max<size_t>(75, config.nelder_mead.max_iterations / 4);

  ParallelFor(
      tasks,
      [&](size_t t) {
        if (config.early_exit && first_exit.load(std::memory_order_acquire) < t) {
          return;  // cancelled: a lower-indexed task already finished well
        }
        if (config.deadline_enabled &&
            std::chrono::steady_clock::now() >= config.deadline) {
          deadline_hit.store(true, std::memory_order_relaxed);
          return;  // skipped: the solve's wall-clock budget is spent
        }
        const size_t s = t / solvers;
        const bool alternate = (t % solvers) == 1;
        TaskSlot& slot = slots[t];
        // Budget tiers: the primary start (index 0, the best warm start
        // available) gets the full budget; other non-scout starts get half;
        // heuristic and jittered starts are scouts. Secondary starts exist
        // to catch basin changes, and a truncated solve is enough to reveal
        // one -- if it ranks best, the polish stage and the next cycle's
        // warm start finish the job.
        const MultiStartConfig& task_config =
            IsScout(starts[s].kind) ? scout : (s == 0 ? config : secondary);
        const double task_start_us = config.trace.WallNowUs();
        slot.result = SolveOneTask(problem, starts[s].x, alternate, task_config);
        slot.launched = true;
        if (config.trace.on()) {
          std::string label = StartKindName(starts[s].kind);
          label += '#';
          label += std::to_string(s);
          if (alternate) {
            label += "+alt";
          }
          config.trace.WallSpanSince(kSolverTidBase + static_cast<uint32_t>(t), label,
                                     "solver", task_start_us);
        }
        // Only incumbent-derived (non-scout) starts can declare stability:
        // a scout failing to improve on its own arbitrary start point says
        // nothing about the incumbent.
        bool exit_quality = config.early_exit && !IsScout(starts[s].kind) &&
                            slot.result.max_violation <= config.feasibility_tolerance;
        if (exit_quality) {
          // Stability bar: exit only when the start was feasible and already
          // near the optimum, i.e. the landscape has not moved since the
          // start was produced. Convergence is deliberately not required --
          // on large problems the solver runs into its evaluation cap long
          // before formal convergence, but a capped solve that could not beat
          // the bar from a feasible start confirms the incumbent all the
          // same. Pure function of the task, so deterministic.
          const double start_value = problem.Objective(starts[s].x);
          slot.result.evaluations += 1;
          exit_quality =
              problem.MaxViolation(starts[s].x) <= config.feasibility_tolerance &&
              start_value - slot.result.value <=
                  config.early_exit_improvement * (1.0 + std::abs(start_value));
        }
        slot.exit_quality = exit_quality;
        if (config.early_exit && slot.exit_quality) {
          size_t current = first_exit.load(std::memory_order_relaxed);
          while (t < current &&
                 !first_exit.compare_exchange_weak(current, t, std::memory_order_acq_rel)) {
          }
        }
      },
      config.max_parallelism);

  out.starts_total = tasks;
  out.deadline_hit = deadline_hit.load(std::memory_order_relaxed);
  size_t winner = tasks;
  const size_t exit_task = first_exit.load(std::memory_order_acquire);
  out.early_exit = config.early_exit && exit_task < tasks;
  // With an early exit at index e, rank only tasks 0..e: those always run
  // (cancellation needs a lower exit-quality index, contradicting e's
  // minimality), so the candidate set -- and hence the winner -- is the same
  // under any schedule. Tasks above e may or may not have started before the
  // cancellation landed; their results are schedule-dependent and excluded.
  const size_t rank_limit = out.early_exit ? exit_task : tasks - 1;
  for (size_t t = 0; t < tasks; ++t) {
    const TaskSlot& slot = slots[t];
    if (!slot.launched) {
      ++out.starts_skipped;
      continue;
    }
    ++out.starts_launched;
    out.evaluations += slot.result.evaluations;
    if (t <= rank_limit &&
        (winner == tasks ||
         RanksBetter(slot.result, slots[winner].result, config.feasibility_tolerance))) {
      winner = t;
    }
  }
  if (winner == tasks) {
    // Every rankable task was skipped (deadline before any task started):
    // return an empty best (x stays empty); the caller's degradation ladder
    // takes over.
    return out;
  }
  out.winner_start = winner / solvers;
  out.winner_alternate = (winner % solvers) == 1;
  out.winner_kind = starts[out.winner_start].kind;
  out.best = slots[winner].result;
  return out;
}

}  // namespace faro
