#include "src/optim/multistart.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>

#include "src/common/parallel.h"
#include "src/common/rng.h"

namespace faro {
namespace {

// One task: COBYLA, or the NelderMead->AugLag chain, from one start point.
OptimResult SolveOneTask(const Problem& problem, const std::vector<double>& x0,
                         bool alternate, const MultiStartConfig& config) {
  if (!alternate) {
    return Cobyla(problem, x0, config.cobyla);
  }
  const OptimResult simplex = NelderMead(problem, x0, config.nelder_mead);
  OptimResult refined = AugmentedLagrangian(problem, simplex.x, config.auglag);
  refined.evaluations += simplex.evaluations;
  // AugLag can wander off a good simplex optimum chasing feasibility it
  // already had; keep whichever of the two points ranks better.
  const bool simplex_ok = simplex.max_violation <= config.feasibility_tolerance;
  const bool refined_ok = refined.max_violation <= config.feasibility_tolerance;
  if ((simplex_ok && !refined_ok) ||
      (simplex_ok == refined_ok && simplex.value < refined.value)) {
    refined.x = simplex.x;
    refined.value = simplex.value;
    refined.max_violation = simplex.max_violation;
  }
  return refined;
}

// Heuristic and jittered starts are scouts: they exist to catch the incumbent
// napping after a load shift, not to be polished to convergence. Quarter
// budgets keep them off the fan-out's critical path -- and off the total-work
// bill on narrow machines -- while still sampling their basins.
MultiStartConfig ScoutBudget(const MultiStartConfig& config) {
  MultiStartConfig scout = config;
  scout.cobyla.max_evaluations = std::max(200, config.cobyla.max_evaluations / 4);
  scout.nelder_mead.max_iterations =
      std::max<size_t>(50, config.nelder_mead.max_iterations / 4);
  scout.auglag.outer_iterations = std::max<size_t>(1, config.auglag.outer_iterations / 2);
  return scout;
}

bool IsScout(StartKind kind) {
  return kind == StartKind::kHeuristic || kind == StartKind::kJitter;
}

// Static-tier evaluation cap for one start: the racing path races toward the
// exact budgets the static driver would have granted, so a fully extended arm
// reproduces the static result bit-for-bit (COBYLA prefix property).
int TierCap(const std::vector<StartPoint>& starts, size_t s, const MultiStartConfig& config) {
  if (IsScout(starts[s].kind)) {
    return std::max(200, config.cobyla.max_evaluations / 4);
  }
  return s == 0 ? config.cobyla.max_evaluations
                : std::max(300, config.cobyla.max_evaluations / 4);
}

// Schedule-independent ranking: feasible beats infeasible, then lower
// objective value, then lower task index (the caller iterates in index order).
bool RanksBetter(const OptimResult& challenger, const OptimResult& incumbent,
                 double tolerance) {
  const bool c_ok = challenger.max_violation <= tolerance;
  const bool i_ok = incumbent.max_violation <= tolerance;
  if (c_ok != i_ok) {
    return c_ok;
  }
  if (!c_ok && challenger.max_violation != incumbent.max_violation) {
    return challenger.max_violation < incumbent.max_violation;
  }
  return challenger.value < incumbent.value;
}

// The BAI racing driver (see the header's racing-mode contract). `starts` is
// already jitter-expanded and clipped. Races COBYLA arms only.
MultiStartResult RaceSolve(const Problem& problem, const std::vector<StartPoint>& starts,
                           const MultiStartConfig& config) {
  MultiStartResult out;
  const size_t n = starts.size();
  out.starts_total = n;
  out.raced = true;
  out.race.races = 1;
  out.race.arms_total = n;
  const double tol = config.feasibility_tolerance;

  struct Arm {
    OptimResult result;        // latest prefix run from the arm's start point
    double start_value = 0.0;  // objective at the start (for bar and gains)
    bool has_start_value = false;
    bool ran = false;
    bool rankable = false;  // result is final (tier cap, or confirm-final)
    bool pruned = false;
    bool deadline_skipped = false;
  };
  std::vector<Arm> arms(n);
  std::vector<int> cap(n);
  int64_t static_equivalent = 0;
  for (size_t s = 0; s < n; ++s) {
    cap[s] = TierCap(starts, s, config);
  }

  auto deadline_passed = [&] {
    return config.deadline_enabled && std::chrono::steady_clock::now() >= config.deadline;
  };
  // Deterministic prefix run: COBYLA from the original start at a budget.
  // Extension = re-run at a larger budget (exact superset of the trajectory).
  auto run_prefix = [&](size_t s, int evals) {
    CobylaConfig cobyla = config.cobyla;
    cobyla.max_evaluations = evals;
    const double task_start_us = config.trace.WallNowUs();
    OptimResult result = Cobyla(problem, starts[s].x, cobyla);
    if (config.trace.on()) {
      std::string label = StartKindName(starts[s].kind);
      label += '#';
      label += std::to_string(s);
      label += "@";
      label += std::to_string(evals);
      config.trace.WallSpanSince(kSolverTidBase + static_cast<uint32_t>(s), label,
                                 "solver", task_start_us);
    }
    return result;
  };
  // Feasibility-penalised scalar for the BAI math only; the final ranking
  // stays the exact lexicographic RanksBetter rule.
  auto merit = [&](const OptimResult& result) {
    return result.value + 1e3 * std::max(0.0, result.max_violation - tol);
  };
  auto start_value = [&](size_t s) {
    if (!arms[s].has_start_value) {
      arms[s].start_value = problem.Objective(starts[s].x);
      arms[s].has_start_value = true;
      out.evaluations += 1;
    }
    return arms[s].start_value;
  };
  // The static driver's early-exit stability bar, verbatim (non-scout start,
  // feasible start and result, improvement at most the bar).
  auto exit_quality = [&](size_t s, const OptimResult& result) {
    if (!config.early_exit || IsScout(starts[s].kind) || result.max_violation > tol) {
      return false;
    }
    const double sv = start_value(s);
    return problem.MaxViolation(starts[s].x) <= tol &&
           sv - result.value <= config.early_exit_improvement * (1.0 + std::abs(sv));
  };

  // --- Phase 1: anchors (non-scout starts) in index order. Serial by design:
  // the early-exit rule then degenerates to "lowest index wins", which is
  // trivially schedule-invariant, and production fans out at most two anchors.
  size_t exit_arm = n;
  bool anchors_deadlined = false;
  for (size_t s = 0; s < n && exit_arm == n; ++s) {
    if (IsScout(starts[s].kind)) {
      continue;
    }
    if (deadline_passed()) {
      anchors_deadlined = true;
      for (size_t r = s; r < n; ++r) {
        if (!IsScout(starts[r].kind)) {
          arms[r].deadline_skipped = true;
        }
      }
      break;
    }
    static_equivalent += cap[s];
    const bool confirm = s == 0 && config.racing_confirm_evals > 0 &&
                         config.racing_confirm_evals < cap[s];
    arms[s].result = run_prefix(s, confirm ? config.racing_confirm_evals : cap[s]);
    arms[s].ran = true;
    out.evaluations += arms[s].result.evaluations;
    bool exits = exit_quality(s, arms[s].result);
    if (confirm && !exits && config.racing_confirm_rerun &&
        arms[s].result.evaluations >= config.racing_confirm_evals) {
      // Confirmation failed with the budget exhausted: the landscape moved.
      // Pay for the full tier so quality in shift cycles matches the static
      // driver exactly. (A confirmation that stopped below its budget
      // converged at rho_end -- the full tier would replay it bit-identically,
      // so the re-run is skipped.)
      arms[s].result = run_prefix(s, cap[s]);
      out.evaluations += arms[s].result.evaluations;
      exits = exit_quality(s, arms[s].result);
    }
    arms[s].rankable = true;
    if (exits) {
      exit_arm = s;
    }
  }

  // --- Phase 2: scout probes + racing rounds, only when no anchor exited.
  if (exit_arm == n && !anchors_deadlined) {
    std::vector<size_t> scouts;
    for (size_t s = 0; s < n; ++s) {
      if (IsScout(starts[s].kind)) {
        scouts.push_back(s);
        static_equivalent += cap[s];
      }
    }
    if (!scouts.empty() && deadline_passed()) {
      for (size_t s : scouts) {
        arms[s].deadline_skipped = true;
      }
      scouts.clear();
    }
    if (!scouts.empty()) {
      const int dim = static_cast<int>(starts[0].x.size());
      const int auto_probe = std::max(64, 2 * dim + 24);
      const int probe =
          config.racing_probe_evals > 0 ? config.racing_probe_evals : auto_probe;
      // Probe round: every scout in parallel, each a pure function of its
      // index; the stats merge below runs serially in index order.
      ParallelFor(
          scouts.size(),
          [&](size_t i) {
            const size_t s = scouts[i];
            const int budget = std::min(probe, cap[s]);
            arms[s].result = run_prefix(s, budget);
            arms[s].ran = true;
            // A probe that stops below its budget hit COBYLA's rho_end: the
            // run converged, and an extension would replay the identical
            // trajectory to the same stop (prefix property). Final as-is.
            arms[s].rankable =
                budget >= cap[s] || arms[s].result.evaluations < budget;
          },
          config.max_parallelism);
      // Gain statistics: how much a scout improves from its start through the
      // probe, pooled across scouts. The unknown-variance radius over this
      // pool is the slack an arm gets before the rule may prune it.
      ArmStats gains;
      std::vector<double> probe_gain(n, 0.0);
      for (size_t s : scouts) {
        out.evaluations += arms[s].result.evaluations;
        OptimResult start_point;
        start_point.value = start_value(s);
        start_point.max_violation = problem.MaxViolation(starts[s].x);
        probe_gain[s] = std::max(0.0, merit(start_point) - merit(arms[s].result));
        gains.Add(probe_gain[s]);
        out.race.rounds = 1;
      }
      // Racing rounds: prune what cannot beat the leader, extend the best
      // remaining challenger to its full tier cap, repeat. Leader, challenger
      // and prune decisions are pure functions of the accumulated stats.
      while (true) {
        size_t leader = n;
        for (size_t s = 0; s < n; ++s) {
          if (arms[s].rankable &&
              (leader == n || RanksBetter(arms[s].result, arms[leader].result, tol))) {
            leader = s;
          }
        }
        const double radius = ConfidenceRadius(gains, config.racing_delta);
        size_t challenger = n;
        double challenger_bound = 0.0;
        for (size_t s : scouts) {
          if (arms[s].rankable || arms[s].pruned || arms[s].deadline_skipped) {
            continue;
          }
          const double optimistic = merit(arms[s].result) -
                                    config.racing_extend_factor * probe_gain[s] -
                                    (std::isfinite(radius) ? radius : probe_gain[s]);
          if (leader != n && optimistic > merit(arms[leader].result)) {
            // Even an optimistic extension cannot beat the leader: stop.
            arms[s].pruned = true;
            ++out.race.arms_pruned;
            continue;
          }
          if (challenger == n || optimistic < challenger_bound) {
            challenger = s;
            challenger_bound = optimistic;
          }
        }
        if (challenger == n) {
          break;  // every scout is capped, pruned, or skipped
        }
        if (deadline_passed()) {
          for (size_t s : scouts) {
            if (!arms[s].rankable && !arms[s].pruned) {
              arms[s].deadline_skipped = true;
            }
          }
          break;
        }
        if (out.evaluations + cap[challenger] > static_equivalent) {
          // Total-budget guard: racing never spends more than the static
          // tiers would have. Remaining arms stop at their probes.
          for (size_t s : scouts) {
            if (!arms[s].rankable && !arms[s].pruned && !arms[s].deadline_skipped) {
              arms[s].pruned = true;
              ++out.race.arms_pruned;
            }
          }
          break;
        }
        const double before = merit(arms[challenger].result);
        arms[challenger].result = run_prefix(challenger, cap[challenger]);
        out.evaluations += arms[challenger].result.evaluations;
        arms[challenger].rankable = true;
        gains.Add(std::max(0.0, before - merit(arms[challenger].result)));
        ++out.race.rounds;
      }
    }
  }
  // (On an early exit, scouts never run -- the same cancellation the static
  // driver's serial schedule produces -- and the saved-evaluations ledger
  // compares against the static tiers for the arms that would have run.)

  // --- Ranking: the static rule over final results. With an early exit at
  // anchor e, only arms 0..e are candidates (all of them ran, serially).
  out.early_exit = exit_arm < n;
  out.deadline_hit = false;
  const size_t rank_limit = out.early_exit ? exit_arm : n - 1;
  size_t winner = n;
  for (size_t s = 0; s < n; ++s) {
    const Arm& arm = arms[s];
    if (arm.ran) {
      ++out.starts_launched;
    }
    if (arm.deadline_skipped) {
      ++out.starts_deadline_skipped;
      out.deadline_hit = true;
    } else if (arm.pruned) {
      ++out.starts_pruned;
    } else if (!arm.ran) {
      ++out.starts_cancelled;  // cancelled by the early exit
    }
    if (arm.rankable && s <= rank_limit &&
        (winner == n || RanksBetter(arm.result, arms[winner].result, tol))) {
      winner = s;
    }
  }
  out.race.evaluations_spent = static_cast<uint64_t>(std::max<int64_t>(0, out.evaluations));
  if (static_equivalent > out.evaluations) {
    out.race.evaluations_saved = static_cast<uint64_t>(static_equivalent - out.evaluations);
  }
  if (winner == n) {
    return out;  // deadline hit before any anchor ran; degradation ladder
  }
  out.winner_start = winner;
  out.winner_alternate = false;
  out.winner_kind = starts[winner].kind;
  out.best = arms[winner].result;
  return out;
}

}  // namespace

const char* StartKindName(StartKind kind) {
  switch (kind) {
    case StartKind::kWarmCurrent:
      return "warm-current";
    case StartKind::kPrevSolution:
      return "prev-solution";
    case StartKind::kHeuristic:
      return "heuristic";
    case StartKind::kJitter:
      return "jitter";
  }
  return "unknown";
}

MultiStartResult MultiStartSolve(const Problem& problem, std::vector<StartPoint> starts,
                                 size_t extra_jittered, const MultiStartConfig& config) {
  MultiStartResult out;
  if (starts.empty()) {
    return out;
  }
  const size_t base = starts.size();
  for (size_t k = 0; k < extra_jittered; ++k) {
    Rng rng(HashCombine(config.seed, k + 1));
    StartPoint variant;
    variant.kind = StartKind::kJitter;
    variant.x = starts[k % base].x;
    for (double& v : variant.x) {
      v *= 1.0 + config.jitter * (2.0 * rng.Uniform() - 1.0);
    }
    starts.push_back(std::move(variant));
  }
  for (StartPoint& start : starts) {
    // Full-vector clip: replica *and* drop-rate coordinates land inside the
    // box before any solver sees them.
    problem.ClipToBounds(start.x);
  }

  if (config.racing && !config.use_alternate) {
    return RaceSolve(problem, starts, config);
  }

  const size_t solvers = config.use_alternate ? 2 : 1;
  const size_t tasks = starts.size() * solvers;
  struct TaskSlot {
    OptimResult result;
    bool launched = false;
    bool deadline_skipped = false;
    bool exit_quality = false;
  };
  std::vector<TaskSlot> slots(tasks);
  std::atomic<size_t> first_exit{tasks};
  std::atomic<bool> deadline_hit{false};
  const MultiStartConfig scout = ScoutBudget(config);
  // Non-scout secondary starts (e.g. the deployed allocation behind a
  // warm-start cache hit) run on a scout-sized budget with a higher floor:
  // they sit near the optimum already, so a short confirmation run is enough
  // -- the primary start owns the full budget.
  MultiStartConfig secondary = config;
  secondary.cobyla.max_evaluations = std::max(300, config.cobyla.max_evaluations / 4);
  secondary.nelder_mead.max_iterations =
      std::max<size_t>(75, config.nelder_mead.max_iterations / 4);

  ParallelFor(
      tasks,
      [&](size_t t) {
        if (config.early_exit && first_exit.load(std::memory_order_acquire) < t) {
          return;  // cancelled: a lower-indexed task already finished well
        }
        if (config.deadline_enabled &&
            std::chrono::steady_clock::now() >= config.deadline) {
          deadline_hit.store(true, std::memory_order_relaxed);
          slots[t].deadline_skipped = true;
          return;  // skipped: the solve's wall-clock budget is spent
        }
        const size_t s = t / solvers;
        const bool alternate = (t % solvers) == 1;
        TaskSlot& slot = slots[t];
        // Budget tiers: the primary start (index 0, the best warm start
        // available) gets the full budget; other non-scout starts get half;
        // heuristic and jittered starts are scouts. Secondary starts exist
        // to catch basin changes, and a truncated solve is enough to reveal
        // one -- if it ranks best, the polish stage and the next cycle's
        // warm start finish the job.
        const MultiStartConfig& task_config =
            IsScout(starts[s].kind) ? scout : (s == 0 ? config : secondary);
        const double task_start_us = config.trace.WallNowUs();
        slot.result = SolveOneTask(problem, starts[s].x, alternate, task_config);
        slot.launched = true;
        if (config.trace.on()) {
          std::string label = StartKindName(starts[s].kind);
          label += '#';
          label += std::to_string(s);
          if (alternate) {
            label += "+alt";
          }
          config.trace.WallSpanSince(kSolverTidBase + static_cast<uint32_t>(t), label,
                                     "solver", task_start_us);
        }
        // Only incumbent-derived (non-scout) starts can declare stability:
        // a scout failing to improve on its own arbitrary start point says
        // nothing about the incumbent.
        bool exit_quality = config.early_exit && !IsScout(starts[s].kind) &&
                            slot.result.max_violation <= config.feasibility_tolerance;
        if (exit_quality) {
          // Stability bar: exit only when the start was feasible and already
          // near the optimum, i.e. the landscape has not moved since the
          // start was produced. Convergence is deliberately not required --
          // on large problems the solver runs into its evaluation cap long
          // before formal convergence, but a capped solve that could not beat
          // the bar from a feasible start confirms the incumbent all the
          // same. Pure function of the task, so deterministic.
          const double start_value = problem.Objective(starts[s].x);
          slot.result.evaluations += 1;
          exit_quality =
              problem.MaxViolation(starts[s].x) <= config.feasibility_tolerance &&
              start_value - slot.result.value <=
                  config.early_exit_improvement * (1.0 + std::abs(start_value));
        }
        slot.exit_quality = exit_quality;
        if (config.early_exit && slot.exit_quality) {
          size_t current = first_exit.load(std::memory_order_relaxed);
          while (t < current &&
                 !first_exit.compare_exchange_weak(current, t, std::memory_order_acq_rel)) {
          }
        }
      },
      config.max_parallelism);

  out.starts_total = tasks;
  out.deadline_hit = deadline_hit.load(std::memory_order_relaxed);
  size_t winner = tasks;
  const size_t exit_task = first_exit.load(std::memory_order_acquire);
  out.early_exit = config.early_exit && exit_task < tasks;
  // With an early exit at index e, rank only tasks 0..e: those always run
  // (cancellation needs a lower exit-quality index, contradicting e's
  // minimality), so the candidate set -- and hence the winner -- is the same
  // under any schedule. Tasks above e may or may not have started before the
  // cancellation landed; their results are schedule-dependent and excluded.
  const size_t rank_limit = out.early_exit ? exit_task : tasks - 1;
  for (size_t t = 0; t < tasks; ++t) {
    const TaskSlot& slot = slots[t];
    if (!slot.launched) {
      if (slot.deadline_skipped) {
        ++out.starts_deadline_skipped;
      } else {
        ++out.starts_cancelled;
      }
      continue;
    }
    ++out.starts_launched;
    out.evaluations += slot.result.evaluations;
    if (t <= rank_limit &&
        (winner == tasks ||
         RanksBetter(slot.result, slots[winner].result, config.feasibility_tolerance))) {
      winner = t;
    }
  }
  if (winner == tasks) {
    // Every rankable task was skipped (deadline before any task started):
    // return an empty best (x stays empty); the caller's degradation ladder
    // takes over.
    return out;
  }
  out.winner_start = winner / solvers;
  out.winner_alternate = (winner % solvers) == 1;
  out.winner_kind = starts[out.winner_start].kind;
  out.best = slots[winner].result;
  return out;
}

}  // namespace faro
