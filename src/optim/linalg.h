// Minimal dense linear algebra for the solvers: row-major matrices, LU solve
// with partial pivoting. Sizes here are tiny (tens to low hundreds), so a
// straightforward O(n^3) implementation is the right tool.

#ifndef SRC_OPTIM_LINALG_H_
#define SRC_OPTIM_LINALG_H_

#include <cstddef>
#include <span>
#include <vector>

namespace faro {

// Dense row-major matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  std::span<double> row(size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(size_t r) const { return {data_.data() + r * cols_, cols_}; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

// Solves A x = b by LU with partial pivoting (A is copied). Returns false if
// A is numerically singular; `x` is then left untouched.
bool LuSolve(const Matrix& a, std::span<const double> b, std::vector<double>& x);

// Dot product of equal-length spans.
double Dot(std::span<const double> a, std::span<const double> b);

// Euclidean norm.
double Norm2(std::span<const double> a);

}  // namespace faro

#endif  // SRC_OPTIM_LINALG_H_
