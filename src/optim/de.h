// Differential Evolution (Storn & Price, rand/1/bin) with penalty-based
// constraint handling. The evolutionary escape route from plateaus that
// Fig. 5 of the paper evaluates: it solves the *precise* (step-utility)
// cluster objective that the local solvers stall on, at the cost of orders of
// magnitude more evaluations.

#ifndef SRC_OPTIM_DE_H_
#define SRC_OPTIM_DE_H_

#include <cstdint>
#include <span>

#include "src/optim/problem.h"

namespace faro {

struct DeConfig {
  // Population size; 0 means auto (max(15, 8 * dimension), capped at 200).
  size_t population = 0;
  size_t generations = 300;
  double differential_weight = 0.7;   // F
  double crossover_rate = 0.9;        // CR
  double constraint_penalty = 1e4;    // weight on squared violations
  uint64_t seed = 42;
};

// Requires finite box bounds on every variable (the population is initialised
// uniformly inside the box and clipped to it).
OptimResult DifferentialEvolution(const Problem& problem, const DeConfig& config = {});

}  // namespace faro

#endif  // SRC_OPTIM_DE_H_
