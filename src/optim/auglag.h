// Augmented-Lagrangian solver with a BFGS inner loop and numerical gradients.
//
// Stand-in for scipy's SLSQP in the Fig. 5 solver comparison: a fast
// gradient-based local NLP method. Like SLSQP it converges quickly on smooth
// relaxed objectives and stalls on the plateaus of the precise (step-utility)
// formulation, because finite-difference gradients vanish there. The
// substitution is documented in DESIGN.md.

#ifndef SRC_OPTIM_AUGLAG_H_
#define SRC_OPTIM_AUGLAG_H_

#include <span>

#include "src/optim/problem.h"

namespace faro {

struct AugLagConfig {
  size_t outer_iterations = 12;
  size_t inner_iterations = 80;
  double initial_penalty = 10.0;
  double penalty_growth = 4.0;
  double gradient_step = 1e-6;  // finite-difference half-step
  double tolerance = 1e-8;
};

OptimResult AugmentedLagrangian(const Problem& problem, std::span<const double> x0,
                                const AugLagConfig& config = {});

}  // namespace faro

#endif  // SRC_OPTIM_AUGLAG_H_
