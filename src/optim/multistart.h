// Parallel multi-start solve driver (§3.4, §5).
//
// Faro's sloppified objective is solvable by stock local solvers, but any one
// local solver from any one start can still stall (fairness ridges, saturated
// clusters) or land infeasible. The driver fans K deterministic-seeded start
// points -- warm starts, heuristics, and jittered variants -- across the
// shared thread pool, running COBYLA and optionally a NelderMead->AugLag
// chain from every start, then selects a winner deterministically.
//
// Determinism contract (same as the PR-1 harness): the result is bit-identical
// at every thread count. Each (start, solver) task is a pure function of its
// index; jitter draws from an Rng seeded by HashCombine(seed, start index);
// and the winner is chosen by a schedule-independent rule:
//
//   - A task is "early-exit quality" iff its start is incumbent-derived (not
//     a heuristic/jitter scout -- a scout failing to improve on its own
//     arbitrary start says nothing about the incumbent), its solve ended with
//     constraint violation <= feasibility_tolerance, its start point was
//     itself feasible within the tolerance, and the solve improved on the
//     start's objective by at most `early_exit_improvement` (relative). That
//     last condition is a stability bar: a tiny improvement from a feasible
//     start means the start was already sitting on the optimum -- the common
//     steady-state cycle -- so exploring more basins is wasted work. A large
//     improvement means the landscape moved, and the rest of the portfolio
//     runs. Formal solver convergence is not required: on large problems the
//     solver hits its evaluation cap first, and failing to beat the bar under
//     a full budget is the same evidence of stability. Whether a task has
//     exit quality depends only on its index, never on the schedule.
//   - With early exit enabled, a completed early-exit-quality task cancels
//     only *higher-indexed* tasks that have not started. Let e be the lowest
//     exit-quality index: every task at or below e always runs (cancelling
//     one would need a lower exit-quality index, contradicting minimality),
//     and the winner is the best-ranked result among tasks 0..e -- a
//     schedule-invariant candidate set, so the winner is the same under any
//     interleaving, including the fully serial one, where the cancellation
//     becomes a genuine early exit that skips the tail. Tasks above e may or
//     may not have started before the cancellation landed; their results are
//     schedule-dependent and never ranked.
//   - With no early-exit-quality task, every task runs and the winner is the
//     best feasible result (lowest objective; ties broken by task index, i.e.
//     by start index first and COBYLA before the alternate chain).
//
// Racing mode (`racing = true`, the production default via FaroConfig):
// instead of the static full/quarter budget tiers, the driver runs a
// best-arm-identification race (src/optim/bai.h). Non-scout ("anchor")
// starts keep their tier budgets and the early-exit stability bar; scout
// starts first run a cheap probe solve, then rounds extend only the scout
// whose optimistic value (probe value minus the predicted extension gain
// minus an unknown-variance confidence radius over the observed gains) could
// still beat the leader. Extension is a deterministic re-run from the
// original start point at the full tier cap: COBYLA's trajectory never
// consults `max_evaluations` except to stop, so a capped run is an exact
// prefix of a longer run and an extended scout's final result is
// bit-identical to the result the static-tier driver would have produced.
// Pruned scouts are never ranked (their probe results are discarded), so the
// raced winner differs from the static winner only when the rule prunes a
// scout that would have won at its full budget -- which the confidence
// radius makes deliberately rare. The schedule (which arm extends in which
// round) is a pure function of the round index and the accumulated arm
// statistics, never of thread interleaving, so racing keeps the bit-identical
// winner contract at every `max_parallelism`. Racing assumes the standard
// start layout (non-scout starts first); it currently races the COBYLA tasks
// only (`use_alternate` falls back to the static tiers).

#ifndef SRC_OPTIM_MULTISTART_H_
#define SRC_OPTIM_MULTISTART_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "src/obs/trace.h"
#include "src/optim/auglag.h"
#include "src/optim/bai.h"
#include "src/optim/cobyla.h"
#include "src/optim/neldermead.h"
#include "src/optim/problem.h"

namespace faro {

// Provenance of a start point, reported as telemetry ("which start won").
enum class StartKind : uint8_t {
  kWarmCurrent = 0,   // the currently deployed allocation
  kPrevSolution = 1,  // previous cycle's continuous solution (warm-start cache)
  kHeuristic = 2,     // capacity-proportional heuristic point
  kJitter = 3,        // seeded perturbation of one of the above
};
const char* StartKindName(StartKind kind);

struct StartPoint {
  std::vector<double> x;
  StartKind kind = StartKind::kHeuristic;
};

struct MultiStartConfig {
  CobylaConfig cobyla;
  // The alternate per-start solver chain: NelderMead polish, then an
  // augmented-Lagrangian refinement of its simplex optimum. Budgets default
  // well below the solvers' own defaults so one alternate task costs about as
  // much as one COBYLA run (the chain is insurance, not the main path).
  NelderMeadConfig nelder_mead;
  AugLagConfig auglag;
  bool use_alternate = true;
  // A result counts as feasible when its max constraint violation (capacity
  // and box bounds) is at most this.
  double feasibility_tolerance = 1e-3;
  // Early exit on the lowest-indexed feasible converged task whose start was
  // already near-optimal (see the stability bar above).
  bool early_exit = true;
  // Stability bar: a task only has exit quality when its improvement over the
  // start value is at most this fraction of (1 + |start value|). The default
  // matches the autoscaler's switch hysteresis: an improvement too small to
  // justify moving replicas is also too small to justify solving more basins.
  double early_exit_improvement = 0.05;
  // Root seed for the jittered start variants.
  uint64_t seed = 0;
  // Relative amplitude of the multiplicative jitter applied per coordinate.
  double jitter = 0.35;
  // Thread cap for the fan-out: 0 = shared pool size, 1 = serial in task
  // order. Results are bit-identical at every setting.
  size_t max_parallelism = 0;
  // Wall-clock deadline for the fan-out (degradation ladder): tasks that have
  // not started when the deadline passes are skipped and `deadline_hit` is
  // reported; already-running tasks finish. Off by default -- a deadline
  // makes which tasks ran (and hence the winner) depend on wall time, trading
  // the bit-determinism contract for bounded decision latency.
  bool deadline_enabled = false;
  std::chrono::steady_clock::time_point deadline{};
  // --- BAI racing knobs (see the racing-mode comment above). Racing replaces
  // the static budget tiers with probe + adaptive-extension rounds; it only
  // engages when `use_alternate` is off (the race runs COBYLA arms).
  bool racing = false;
  // Probe budget (objective evaluations) for each scout arm's first look.
  // 0 = auto: max(64, 2*dim + 24), clamped below the scout tier cap.
  int racing_probe_evals = 0;
  // When > 0 and below the primary tier cap, the primary start first runs a
  // short confirmation solve; if it passes the early-exit stability bar the
  // cycle ends there (the common steady-state case, at a fraction of the
  // static cost). On failure the primary re-runs at its full tier when
  // `racing_confirm_rerun` is set (quality identical to static, at the cost
  // of the confirmation prefix), else the confirmation result stands and the
  // race decides whether a scout basin beats it.
  int racing_confirm_evals = 0;
  bool racing_confirm_rerun = true;
  // Confidence for the stopping rule's radius over observed extension gains.
  double racing_delta = 0.05;
  // Predicted extension gain = factor x the arm's observed probe improvement.
  double racing_extend_factor = 1.0;
  // Observability: each launched task records a wall-clock span (one trace
  // track per task index) into this session. Measurement only; whether a
  // task above the early-exit index ran at all is schedule-dependent, so
  // solver spans are excluded from the determinism contract.
  TraceSession trace;
};

struct MultiStartResult {
  OptimResult best;
  size_t winner_start = 0;  // index into the expanded start list
  StartKind winner_kind = StartKind::kHeuristic;
  bool winner_alternate = false;  // won by the NelderMead->AugLag chain
  size_t starts_total = 0;     // tasks in the fan-out (starts x solvers)
  size_t starts_launched = 0;  // tasks that consumed any evaluations
  // Tasks that did not run to their budget, by cause (disjoint): cancelled by
  // the early-exit rule before starting, skipped/abandoned by the wall-clock
  // deadline, or stopped by the BAI stopping rule (pruned arms ran a probe,
  // so they also count as launched).
  size_t starts_cancelled = 0;
  size_t starts_deadline_skipped = 0;
  size_t starts_pruned = 0;
  bool early_exit = false;   // winner came from the early-exit rule
  bool deadline_hit = false; // at least one task was skipped by the deadline
  bool raced = false;        // the BAI racing path produced this result
  int64_t evaluations = 0;   // objective evaluations across launched tasks
  RacingTelemetry race;      // all-zero unless `raced`
};

// Appends `extra_jittered` seeded perturbations of the given starts, clips
// every start (all coordinates, drop rates included) into the problem's box
// bounds, fans (start x solver) tasks across the shared thread pool, and
// returns the deterministic winner. `starts` must be non-empty.
//
// Budget tiers: the primary start (index 0) runs on the full configured
// budgets; other non-scout starts get a quarter budget with a higher floor;
// heuristic and jittered starts are scouts at a quarter budget -- they exist
// to reveal a basin change after a load shift, not to be polished, and the
// tiering keeps them off both the wall-clock critical path and the total
// work bill on narrow machines.
MultiStartResult MultiStartSolve(const Problem& problem, std::vector<StartPoint> starts,
                                 size_t extra_jittered, const MultiStartConfig& config);

}  // namespace faro

#endif  // SRC_OPTIM_MULTISTART_H_
