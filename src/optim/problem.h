// Nonlinear programming problem definition shared by all solvers.
//
// Convention (matching scipy.optimize / Powell's COBYLA):
//   minimize f(x)
//   subject to  c_i(x) >= 0   for every inequality constraint,
//               lo_j <= x_j <= hi_j  (optional box bounds).
//
// Faro's cluster objectives are *maximised*; callers negate them when
// constructing a Problem.

#ifndef SRC_OPTIM_PROBLEM_H_
#define SRC_OPTIM_PROBLEM_H_

#include <functional>
#include <limits>
#include <span>
#include <vector>

namespace faro {

using ObjectiveFn = std::function<double(std::span<const double>)>;
using ConstraintFn = std::function<double(std::span<const double>)>;

class Problem {
 public:
  Problem(size_t dimension, ObjectiveFn objective)
      : dimension_(dimension),
        objective_(std::move(objective)),
        lower_(dimension, -std::numeric_limits<double>::infinity()),
        upper_(dimension, std::numeric_limits<double>::infinity()) {}

  size_t dimension() const { return dimension_; }

  void AddConstraint(ConstraintFn c) { constraints_.push_back(std::move(c)); }
  size_t num_constraints() const { return constraints_.size(); }

  void SetBounds(std::vector<double> lower, std::vector<double> upper) {
    lower_ = std::move(lower);
    upper_ = std::move(upper);
  }
  std::span<const double> lower() const { return lower_; }
  std::span<const double> upper() const { return upper_; }
  bool has_finite_bounds() const;

  double Objective(std::span<const double> x) const { return objective_(x); }
  double Constraint(size_t i, std::span<const double> x) const { return constraints_[i](x); }

  // Evaluates all constraints into `out` (resized to num_constraints()).
  void Constraints(std::span<const double> x, std::vector<double>& out) const;

  // Largest constraint violation, i.e. max(0, -min_i c_i(x)), including box
  // bounds. Zero means feasible.
  double MaxViolation(std::span<const double> x) const;

  // Clips x into the box bounds in place.
  void ClipToBounds(std::span<double> x) const;

 private:
  size_t dimension_;
  ObjectiveFn objective_;
  std::vector<ConstraintFn> constraints_;
  std::vector<double> lower_;
  std::vector<double> upper_;
};

// Result of a solver run.
struct OptimResult {
  std::vector<double> x;
  double value = std::numeric_limits<double>::infinity();
  double max_violation = 0.0;
  int evaluations = 0;
  bool converged = false;
};

}  // namespace faro

#endif  // SRC_OPTIM_PROBLEM_H_
