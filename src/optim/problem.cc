#include "src/optim/problem.h"

#include <algorithm>
#include <cmath>

namespace faro {

bool Problem::has_finite_bounds() const {
  for (size_t j = 0; j < dimension_; ++j) {
    if (!std::isfinite(lower_[j]) || !std::isfinite(upper_[j])) {
      return false;
    }
  }
  return true;
}

void Problem::Constraints(std::span<const double> x, std::vector<double>& out) const {
  out.resize(constraints_.size());
  for (size_t i = 0; i < constraints_.size(); ++i) {
    out[i] = constraints_[i](x);
  }
}

double Problem::MaxViolation(std::span<const double> x) const {
  double violation = 0.0;
  for (const auto& c : constraints_) {
    violation = std::max(violation, -c(x));
  }
  for (size_t j = 0; j < dimension_; ++j) {
    if (std::isfinite(lower_[j])) {
      violation = std::max(violation, lower_[j] - x[j]);
    }
    if (std::isfinite(upper_[j])) {
      violation = std::max(violation, x[j] - upper_[j]);
    }
  }
  return violation;
}

void Problem::ClipToBounds(std::span<double> x) const {
  for (size_t j = 0; j < dimension_; ++j) {
    x[j] = std::clamp(x[j], lower_[j], upper_[j]);
  }
}

}  // namespace faro
