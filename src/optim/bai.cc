#include "src/optim/bai.h"

#include <cmath>

namespace faro {

void ArmStats::Add(double value) {
  ++n;
  const double delta = value - mean;
  mean += delta / static_cast<double>(n);
  m2 += delta * (value - mean);
  min = std::min(min, value);
  max = std::max(max, value);
}

double ArmStats::Variance() const {
  if (n < 2) {
    return 0.0;
  }
  return m2 / static_cast<double>(n - 1);
}

double ArmStats::Range() const {
  if (n < 2) {
    return 0.0;
  }
  return max - min;
}

double BaiBeta(uint64_t n, double delta) {
  const double looks = 1.0 + std::log2(static_cast<double>(n) + 1.0);
  return std::log(1.0 / delta) + 2.0 * std::log(looks);
}

double ConfidenceRadius(const ArmStats& stats, double delta) {
  if (stats.n < 2) {
    return std::numeric_limits<double>::infinity();
  }
  const double n = static_cast<double>(stats.n);
  const double beta = BaiBeta(stats.n, delta);
  return std::sqrt(2.0 * stats.Variance() * beta / n) + 3.0 * stats.Range() * beta / n;
}

bool Separated(const ArmStats& better, const ArmStats& worse, double delta) {
  const double rb = ConfidenceRadius(better, delta);
  const double rw = ConfidenceRadius(worse, delta);
  if (!std::isfinite(rb) || !std::isfinite(rw)) {
    return false;
  }
  return better.mean + rb < worse.mean - rw;
}

RacingTelemetry& RacingTelemetry::operator+=(const RacingTelemetry& other) {
  races += other.races;
  rounds += other.rounds;
  arms_total += other.arms_total;
  arms_pruned += other.arms_pruned;
  evaluations_spent += other.evaluations_spent;
  evaluations_saved += other.evaluations_saved;
  return *this;
}

BaiRace::BaiRace(size_t arms)
    : stats_(arms), active_(arms, true), active_count_(arms) {}

void BaiRace::Add(size_t arm, double value) { stats_[arm].Add(value); }

void BaiRace::Retire(size_t arm) {
  if (active_[arm]) {
    active_[arm] = false;
    --active_count_;
  }
}

size_t BaiRace::Leader() const {
  size_t leader = arms();
  for (size_t a = 0; a < arms(); ++a) {
    if (!active_[a] || stats_[a].n == 0) {
      continue;
    }
    if (leader == arms() || stats_[a].mean < stats_[leader].mean) {
      leader = a;
    }
  }
  if (leader == arms()) {
    // No active arm has an observation yet: the lowest active index leads.
    for (size_t a = 0; a < arms(); ++a) {
      if (active_[a]) {
        return a;
      }
    }
  }
  return leader;
}

size_t BaiRace::Challenger() const {
  const size_t leader = Leader();
  if (leader == arms()) {
    return arms();
  }
  size_t challenger = arms();
  double challenger_bound = std::numeric_limits<double>::infinity();
  for (size_t a = 0; a < arms(); ++a) {
    if (a == leader || !active_[a]) {
      continue;
    }
    // Optimistic value: an unobserved arm is maximally optimistic.
    const double bound =
        stats_[a].n == 0 ? -std::numeric_limits<double>::infinity()
                         : stats_[a].mean - ConfidenceRadius(stats_[a], 0.05);
    if (challenger == arms() || bound < challenger_bound) {
      challenger = a;
      challenger_bound = bound;
    }
  }
  return challenger;
}

size_t BaiRace::PruneSeparated(double delta) {
  const size_t leader = Leader();
  if (leader == arms()) {
    return 0;
  }
  size_t pruned = 0;
  for (size_t a = 0; a < arms(); ++a) {
    if (a == leader || !active_[a]) {
      continue;
    }
    if (Separated(stats_[leader], stats_[a], delta)) {
      Retire(a);
      ++pruned;
    }
  }
  return pruned;
}

}  // namespace faro
