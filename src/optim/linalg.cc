#include "src/optim/linalg.h"

#include <cmath>

namespace faro {

bool LuSolve(const Matrix& a, std::span<const double> b, std::vector<double>& x) {
  const size_t n = a.rows();
  if (n == 0 || a.cols() != n || b.size() != n) {
    return false;
  }
  Matrix lu = a;
  std::vector<double> rhs(b.begin(), b.end());
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    double best = std::abs(lu(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(lu(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < 1e-14) {
      return false;
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) {
        std::swap(lu(pivot, c), lu(col, c));
      }
      std::swap(rhs[pivot], rhs[col]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = lu(r, col) / lu(col, col);
      lu(r, col) = 0.0;
      for (size_t c = col + 1; c < n; ++c) {
        lu(r, c) -= factor * lu(col, c);
      }
      rhs[r] -= factor * rhs[col];
    }
  }
  x.assign(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double sum = rhs[ri];
    for (size_t c = ri + 1; c < n; ++c) {
      sum -= lu(ri, c) * x[c];
    }
    x[ri] = sum / lu(ri, ri);
  }
  return true;
}

double Dot(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

double Norm2(std::span<const double> a) { return std::sqrt(Dot(a, a)); }

}  // namespace faro
