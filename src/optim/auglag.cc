#include "src/optim/auglag.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/optim/linalg.h"

namespace faro {
namespace {

// Rockafellar's augmented-Lagrangian term for an inequality constraint
// c(x) >= 0 with multiplier lambda >= 0 and penalty mu.
double AugTerm(double c, double lambda, double mu) {
  if (c <= lambda / mu) {
    return -lambda * c + 0.5 * mu * c * c;
  }
  return -0.5 * lambda * lambda / mu;
}

class AugLagSolver {
 public:
  AugLagSolver(const Problem& problem, std::span<const double> x0, const AugLagConfig& config)
      : problem_(problem), config_(config), n_(problem.dimension()) {
    x_.assign(x0.begin(), x0.end());
    // Box bounds join the constraint set so one mechanism handles everything.
    for (size_t j = 0; j < n_; ++j) {
      if (std::isfinite(problem_.lower()[j])) {
        bound_lo_.push_back(j);
      }
      if (std::isfinite(problem_.upper()[j])) {
        bound_hi_.push_back(j);
      }
    }
    m_ = problem_.num_constraints() + bound_lo_.size() + bound_hi_.size();
    lambda_.assign(m_, 0.0);
  }

  OptimResult Solve();

 private:
  void EvalConstraints(std::span<const double> x, std::vector<double>& out) {
    problem_.Constraints(x, out);
    for (const size_t j : bound_lo_) {
      out.push_back(x[j] - problem_.lower()[j]);
    }
    for (const size_t j : bound_hi_) {
      out.push_back(problem_.upper()[j] - x[j]);
    }
  }

  double Lagrangian(std::span<const double> x) {
    ++evaluations_;
    double value = problem_.Objective(x);
    EvalConstraints(x, cbuf_);
    for (size_t i = 0; i < m_; ++i) {
      value += AugTerm(cbuf_[i], lambda_[i], mu_);
    }
    return value;
  }

  void Gradient(std::span<const double> x, std::vector<double>& grad) {
    grad.assign(n_, 0.0);
    std::vector<double> probe(x.begin(), x.end());
    const double h = config_.gradient_step;
    for (size_t j = 0; j < n_; ++j) {
      const double original = probe[j];
      probe[j] = original + h;
      const double fp = Lagrangian(probe);
      probe[j] = original - h;
      const double fm = Lagrangian(probe);
      probe[j] = original;
      grad[j] = (fp - fm) / (2.0 * h);
    }
  }

  // One BFGS minimisation of the augmented Lagrangian from the current x_.
  void InnerMinimise();

  const Problem& problem_;
  AugLagConfig config_;
  size_t n_;
  size_t m_ = 0;
  std::vector<size_t> bound_lo_;
  std::vector<size_t> bound_hi_;

  std::vector<double> x_;
  std::vector<double> lambda_;
  double mu_ = 0.0;
  std::vector<double> cbuf_;
  int evaluations_ = 0;
};

void AugLagSolver::InnerMinimise() {
  // Inverse-Hessian approximation starts as identity.
  Matrix h_inv(n_, n_);
  for (size_t j = 0; j < n_; ++j) {
    h_inv(j, j) = 1.0;
  }
  std::vector<double> grad;
  std::vector<double> grad_new;
  std::vector<double> direction(n_);
  std::vector<double> x_new(n_);
  std::vector<double> s(n_);
  std::vector<double> y(n_);

  Gradient(x_, grad);
  double f = Lagrangian(x_);
  for (size_t iter = 0; iter < config_.inner_iterations; ++iter) {
    // direction = -H_inv * grad
    for (size_t r = 0; r < n_; ++r) {
      direction[r] = -Dot(h_inv.row(r), grad);
    }
    double slope = Dot(direction, grad);
    if (slope >= 0.0) {
      // Reset to steepest descent if the approximation lost positive
      // definiteness.
      for (size_t r = 0; r < n_; ++r) {
        for (size_t c = 0; c < n_; ++c) {
          h_inv(r, c) = r == c ? 1.0 : 0.0;
        }
        direction[r] = -grad[r];
      }
      slope = Dot(direction, grad);
    }
    if (Norm2(grad) < config_.tolerance) {
      break;
    }

    // Backtracking Armijo line search.
    double step = 1.0;
    double f_new = f;
    bool accepted = false;
    for (int ls = 0; ls < 30; ++ls) {
      for (size_t j = 0; j < n_; ++j) {
        x_new[j] = x_[j] + step * direction[j];
      }
      f_new = Lagrangian(x_new);
      if (f_new <= f + 1e-4 * step * slope) {
        accepted = true;
        break;
      }
      step *= 0.5;
    }
    if (!accepted) {
      break;
    }

    Gradient(x_new, grad_new);
    double sy = 0.0;
    for (size_t j = 0; j < n_; ++j) {
      s[j] = x_new[j] - x_[j];
      y[j] = grad_new[j] - grad[j];
      sy += s[j] * y[j];
    }
    x_ = x_new;
    f = f_new;
    grad = grad_new;
    if (sy > 1e-12) {
      // BFGS inverse update: H <- (I - s y^T / sy) H (I - y s^T / sy) + s s^T / sy.
      std::vector<double> hy(n_);
      for (size_t r = 0; r < n_; ++r) {
        hy[r] = Dot(h_inv.row(r), y);
      }
      const double yhy = Dot(y, hy);
      const double coeff = (1.0 + yhy / sy) / sy;
      for (size_t r = 0; r < n_; ++r) {
        for (size_t c = 0; c < n_; ++c) {
          h_inv(r, c) += coeff * s[r] * s[c] - (hy[r] * s[c] + s[r] * hy[c]) / sy;
        }
      }
    }
  }
}

OptimResult AugLagSolver::Solve() {
  mu_ = config_.initial_penalty;
  for (size_t outer = 0; outer < config_.outer_iterations; ++outer) {
    InnerMinimise();
    EvalConstraints(x_, cbuf_);
    double violation = 0.0;
    for (size_t i = 0; i < m_; ++i) {
      lambda_[i] = std::max(0.0, lambda_[i] - mu_ * cbuf_[i]);
      violation = std::max(violation, -cbuf_[i]);
    }
    if (violation < 1e-8) {
      break;
    }
    mu_ *= config_.penalty_growth;
  }
  OptimResult result;
  result.x = x_;
  problem_.ClipToBounds(result.x);
  result.value = problem_.Objective(result.x);
  result.max_violation = problem_.MaxViolation(result.x);
  result.evaluations = evaluations_;
  result.converged = true;
  return result;
}

}  // namespace

OptimResult AugmentedLagrangian(const Problem& problem, std::span<const double> x0,
                                const AugLagConfig& config) {
  AugLagSolver solver(problem, x0, config);
  return solver.Solve();
}

}  // namespace faro
