// Best-arm identification (BAI) core: adaptive budget allocation for racing
// a finite set of alternatives ("arms") whose quality is only revealed by
// spending evaluations on them.
//
// Two consumers share this core:
//   - the Stage-2 multi-start driver (src/optim/multistart.cc) races solver
//     start points: every start gets a cheap probe solve, then rounds extend
//     only the starts whose optimistic value could still beat the leader;
//   - the experiment harness (src/sim/harness.cc) races policies across
//     trials: per-trial lost utility streams into the same arm statistics and
//     a (policy, scenario) arm stops drawing trials once it is statistically
//     separated from the incumbent.
//
// The machinery follows the top-two / successive-halving family with
// unknown-variance stopping (arXiv 2210.00974, arXiv 2205.12086): arms keep
// Welford mean/variance statistics, the confidence radius combines a
// variance term with an empirical-range term (empirical-Bernstein shape, so
// no sub-Gaussian constant has to be guessed), and the threshold function
// beta(n, delta) grows with log log n so the rule is anytime-valid under
// repeated looks.
//
// Determinism contract: everything here is a pure function of the observation
// sequence. Arms are identified by index; every tie (leader, challenger,
// round plans) breaks toward the lower index; no wall-clock, no RNG. Feeding
// the same observations in the same (arm-index) order always yields the same
// decisions, which is what lets both consumers keep their bit-identical
// winner guarantees at any thread count.

#ifndef SRC_OPTIM_BAI_H_
#define SRC_OPTIM_BAI_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace faro {

// Streaming moments for one arm (Welford). Lower observations are better
// throughout this file (both consumers minimise: objective value, lost
// utility).
struct ArmStats {
  uint64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;  // sum of squared deviations from the running mean
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Add(double value);
  // Unbiased sample variance; 0 until two observations exist.
  double Variance() const;
  // Empirical range (max - min); 0 until two observations exist.
  double Range() const;
};

// Anytime-valid confidence level for the n-th look at an arm:
//   beta(n, delta) = log(1/delta) + 2 log(1 + log2(n + 1)).
// The log-log term pays for peeking after every observation (law of the
// iterated logarithm correction), per the unknown-variance stopping rules of
// arXiv 2210.00974.
double BaiBeta(uint64_t n, double delta);

// Unknown-variance confidence radius around an arm's mean:
//   radius = sqrt(2 Var beta / n) + 3 Range beta / n.
// Empirical-Bernstein shape: the variance term dominates asymptotically, the
// range term keeps the first looks honest without assuming a known bound.
// Infinite until the arm has two observations (one sample says nothing about
// spread).
double ConfidenceRadius(const ArmStats& stats, double delta);

// True when `better` is statistically below `worse` at confidence delta:
// the confidence intervals are disjoint (better.mean + r_b < worse.mean -
// r_w). Symmetric radii, so Separated(a, b) with a.mean < b.mean is the
// standard two-arm unknown-variance test.
bool Separated(const ArmStats& better, const ArmStats& worse, double delta);

// Telemetry for one or more races, merged with +=. "Evaluations" are in the
// consumer's unit: solver objective evaluations for the multi-start race,
// simulation trials for the experiment race.
struct RacingTelemetry {
  uint64_t races = 0;         // races run
  uint64_t rounds = 0;        // scheduling rounds across all races
  uint64_t arms_total = 0;    // arms entered across all races
  uint64_t arms_pruned = 0;   // arms stopped by the rule before their cap
  uint64_t evaluations_spent = 0;  // evaluations actually consumed
  uint64_t evaluations_saved = 0;  // cap total minus spent (>= 0)

  RacingTelemetry& operator+=(const RacingTelemetry& other);
};

// One racing run over a fixed set of arms, lower mean is better.
//
// Usage: construct with the arm count, feed observations via Add (in a
// deterministic order -- the caller's merge barrier), then ask for the
// leader / challenger / active set and prune with the stopping rule between
// rounds. The class never decides *how much* an extension costs -- the
// caller owns budgets -- it only decides *who* is still worth extending.
class BaiRace {
 public:
  explicit BaiRace(size_t arms);

  size_t arms() const { return stats_.size(); }
  const ArmStats& stats(size_t arm) const { return stats_[arm]; }
  bool active(size_t arm) const { return active_[arm]; }
  size_t active_count() const { return active_count_; }

  // Records one observation for an arm. Observing a pruned arm is allowed
  // (late results still improve the estimate) but never re-activates it.
  void Add(size_t arm, double value);

  // Deactivates an arm without a statistical verdict (budget cap, caller
  // policy). Not counted as a statistical prune.
  void Retire(size_t arm);

  // Active arm with the lowest mean; ties break to the lower index. Arms
  // with no observations rank last. Returns arms() when nothing is active.
  size_t Leader() const;

  // Active non-leader arm with the lowest optimistic value (mean - radius):
  // the "top-two" challenger that adaptive racing extends alongside the
  // leader. Returns arms() when fewer than two arms are active.
  size_t Challenger() const;

  // Prunes every active non-leader arm that is Separated from the leader at
  // confidence delta (the leader must have >= 2 observations; an arm with a
  // one-sided radius is never pruned). Returns how many arms were pruned by
  // this call.
  size_t PruneSeparated(double delta);

  // True once at most one arm remains active.
  bool Decided() const { return active_count_ <= 1; }

 private:
  std::vector<ArmStats> stats_;
  std::vector<bool> active_;
  size_t active_count_ = 0;
};

}  // namespace faro

#endif  // SRC_OPTIM_BAI_H_
