#include "src/optim/cobyla.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/optim/linalg.h"

namespace faro {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Evaluation record for one simplex vertex: objective plus all constraint
// values (problem constraints first, then box-bound constraints).
struct Vertex {
  std::vector<double> x;
  double f = kInf;
  std::vector<double> c;
};

class CobylaSolver {
 public:
  CobylaSolver(const Problem& problem, std::span<const double> x0, const CobylaConfig& config)
      : problem_(problem), config_(config), n_(problem.dimension()) {
    // Box bounds become ordinary linear constraints so the interpolation
    // models capture them exactly.
    for (size_t j = 0; j < n_; ++j) {
      if (std::isfinite(problem_.lower()[j])) {
        bound_lo_.push_back(j);
      }
      if (std::isfinite(problem_.upper()[j])) {
        bound_hi_.push_back(j);
      }
    }
    m_ = problem_.num_constraints() + bound_lo_.size() + bound_hi_.size();
    start_.assign(x0.begin(), x0.end());
  }

  OptimResult Solve();

 private:
  void Evaluate(Vertex& v);
  double MaxViolationOf(const Vertex& v) const;
  double Merit(const Vertex& v) const { return v.f + mu_ * MaxViolationOf(v); }

  // Fits linear models around simplex_[0]; returns false when the simplex is
  // numerically degenerate.
  bool FitModels();

  // Solves min g.d + mu * max(0, -min_i(c_i + a_i.d)) over ||d|| <= rho via
  // two-phase projected subgradient. Returns the step in `d`.
  void SolveSubproblem(double rho, std::vector<double>& d) const;

  // Replaces the vertex farthest from the best with a fresh point at distance
  // rho along the least-covered coordinate direction, restoring geometry.
  void GeometryStep(double rho);

  const Problem& problem_;
  CobylaConfig config_;
  size_t n_;
  size_t m_ = 0;
  std::vector<size_t> bound_lo_;
  std::vector<size_t> bound_hi_;
  std::vector<double> start_;

  std::vector<Vertex> simplex_;
  // Linear models around simplex_[0].
  std::vector<double> grad_f_;
  Matrix grad_c_;  // m_ x n_
  double mu_ = 1.0;
  int evaluations_ = 0;
  size_t geometry_coordinate_ = 0;
};

void CobylaSolver::Evaluate(Vertex& v) {
  v.f = problem_.Objective(v.x);
  problem_.Constraints(v.x, v.c);
  v.c.reserve(m_);
  for (const size_t j : bound_lo_) {
    v.c.push_back(v.x[j] - problem_.lower()[j]);
  }
  for (const size_t j : bound_hi_) {
    v.c.push_back(problem_.upper()[j] - v.x[j]);
  }
  ++evaluations_;
}

double CobylaSolver::MaxViolationOf(const Vertex& v) const {
  double violation = 0.0;
  for (const double c : v.c) {
    violation = std::max(violation, -c);
  }
  return violation;
}

bool CobylaSolver::FitModels() {
  Matrix d(n_, n_);
  for (size_t j = 0; j < n_; ++j) {
    for (size_t k = 0; k < n_; ++k) {
      d(j, k) = simplex_[j + 1].x[k] - simplex_[0].x[k];
    }
  }
  std::vector<double> rhs(n_);
  for (size_t j = 0; j < n_; ++j) {
    rhs[j] = simplex_[j + 1].f - simplex_[0].f;
  }
  if (!LuSolve(d, rhs, grad_f_)) {
    return false;
  }
  grad_c_ = Matrix(m_, n_);
  std::vector<double> gi;
  for (size_t i = 0; i < m_; ++i) {
    for (size_t j = 0; j < n_; ++j) {
      rhs[j] = simplex_[j + 1].c[i] - simplex_[0].c[i];
    }
    if (!LuSolve(d, rhs, gi)) {
      return false;
    }
    for (size_t k = 0; k < n_; ++k) {
      grad_c_(i, k) = gi[k];
    }
  }
  return true;
}

void CobylaSolver::SolveSubproblem(double rho, std::vector<double>& d) const {
  d.assign(n_, 0.0);
  const Vertex& base = simplex_[0];

  auto model_min_constraint = [&](std::span<const double> step) {
    double worst = kInf;
    for (size_t i = 0; i < m_; ++i) {
      worst = std::min(worst, base.c[i] + Dot(grad_c_.row(i), step));
    }
    return m_ == 0 ? 0.0 : worst;
  };
  auto sub_merit = [&](std::span<const double> step) {
    return Dot(grad_f_, step) + mu_ * std::max(0.0, -model_min_constraint(step));
  };
  auto project = [&](std::vector<double>& step) {
    const double norm = Norm2(step);
    if (norm > rho) {
      const double scale = rho / norm;
      for (double& s : step) {
        s *= scale;
      }
    }
  };

  std::vector<double> current(n_, 0.0);
  std::vector<double> best = current;
  double best_merit = sub_merit(best);
  std::vector<double> subgrad(n_);

  // Phase 1: if the base point violates the linearised constraints, descend
  // pure violation first so phase 2 starts from a (model-)feasible region.
  if (m_ > 0 && model_min_constraint(current) < 0.0) {
    for (int it = 1; it <= 40; ++it) {
      // Subgradient of -min_i c_hat_i: negative gradient of the active one.
      double worst = kInf;
      size_t active = 0;
      for (size_t i = 0; i < m_; ++i) {
        const double value = base.c[i] + Dot(grad_c_.row(i), current);
        if (value < worst) {
          worst = value;
          active = i;
        }
      }
      if (worst >= 0.0) {
        break;
      }
      for (size_t k = 0; k < n_; ++k) {
        subgrad[k] = -grad_c_(active, k);
      }
      const double norm = Norm2(subgrad);
      if (norm < 1e-14) {
        break;
      }
      const double step_len = rho / (2.0 * std::sqrt(static_cast<double>(it)));
      for (size_t k = 0; k < n_; ++k) {
        current[k] -= step_len * subgrad[k] / norm;
      }
      project(current);
      if (sub_merit(current) < best_merit) {
        best_merit = sub_merit(current);
        best = current;
      }
    }
    current = best;
  }

  // Phase 2: projected subgradient on the merit model.
  const int iterations = 60 + static_cast<int>(10 * n_);
  for (int it = 1; it <= iterations; ++it) {
    // Subgradient of g.d + mu * max(0, -min_i c_hat_i).
    subgrad = grad_f_;
    if (m_ > 0) {
      double worst = kInf;
      size_t active = 0;
      for (size_t i = 0; i < m_; ++i) {
        const double value = base.c[i] + Dot(grad_c_.row(i), current);
        if (value < worst) {
          worst = value;
          active = i;
        }
      }
      if (worst < 0.0) {
        for (size_t k = 0; k < n_; ++k) {
          subgrad[k] -= mu_ * grad_c_(active, k);
        }
      }
    }
    const double norm = Norm2(subgrad);
    if (norm < 1e-14) {
      break;
    }
    const double step_len = rho / std::sqrt(static_cast<double>(it));
    for (size_t k = 0; k < n_; ++k) {
      current[k] -= step_len * subgrad[k] / norm;
    }
    project(current);
    const double merit = sub_merit(current);
    if (merit < best_merit) {
      best_merit = merit;
      best = current;
    }
  }
  d = best;
}

void CobylaSolver::GeometryStep(double rho) {
  // Farthest vertex from the current best is the stalest model point.
  size_t farthest = 1;
  double max_dist = -1.0;
  for (size_t j = 1; j <= n_; ++j) {
    double dist = 0.0;
    for (size_t k = 0; k < n_; ++k) {
      const double delta = simplex_[j].x[k] - simplex_[0].x[k];
      dist += delta * delta;
    }
    if (dist > max_dist) {
      max_dist = dist;
      farthest = j;
    }
  }
  Vertex fresh;
  fresh.x = simplex_[0].x;
  const size_t coord = geometry_coordinate_ % n_;
  geometry_coordinate_++;
  fresh.x[coord] += rho;
  Evaluate(fresh);
  simplex_[farthest] = std::move(fresh);
}

OptimResult CobylaSolver::Solve() {
  double rho = config_.rho_begin;
  simplex_.resize(n_ + 1);
  simplex_[0].x = start_;
  Evaluate(simplex_[0]);
  for (size_t j = 0; j < n_; ++j) {
    simplex_[j + 1].x = start_;
    simplex_[j + 1].x[j] += rho;
    Evaluate(simplex_[j + 1]);
  }

  int stall_count = 0;
  bool converged = false;
  std::vector<double> d;
  while (evaluations_ < config_.max_evaluations) {
    // Keep the best (lowest merit) vertex at index 0.
    size_t best = 0;
    for (size_t j = 1; j <= n_; ++j) {
      if (Merit(simplex_[j]) < Merit(simplex_[best])) {
        best = j;
      }
    }
    if (best != 0) {
      std::swap(simplex_[0], simplex_[best]);
    }

    // Vertices far outside the trust region poison the linear models.
    double max_dist = 0.0;
    for (size_t j = 1; j <= n_; ++j) {
      double dist = 0.0;
      for (size_t k = 0; k < n_; ++k) {
        const double delta = simplex_[j].x[k] - simplex_[0].x[k];
        dist += delta * delta;
      }
      max_dist = std::max(max_dist, std::sqrt(dist));
    }
    if (max_dist > 2.5 * rho || !FitModels()) {
      GeometryStep(rho);
      continue;
    }

    SolveSubproblem(rho, d);
    const double step_norm = Norm2(d);

    const Vertex& base = simplex_[0];
    // Predicted merit reduction from the linear models.
    double predicted_violation = 0.0;
    for (size_t i = 0; i < m_; ++i) {
      predicted_violation =
          std::max(predicted_violation, -(base.c[i] + Dot(grad_c_.row(i), d)));
    }
    const double predicted_merit = Dot(grad_f_, d) + mu_ * predicted_violation;
    const double base_merit_excess = mu_ * MaxViolationOf(base);
    const double predicted_reduction = base_merit_excess - predicted_merit;

    if (step_norm < 0.1 * rho || predicted_reduction < 1e-12) {
      // Models say we are (locally) done at this resolution.
      if (rho <= config_.rho_end * 1.0001) {
        converged = true;
        break;
      }
      rho = std::max(0.5 * rho, config_.rho_end);
      continue;
    }

    Vertex candidate;
    candidate.x = base.x;
    for (size_t k = 0; k < n_; ++k) {
      candidate.x[k] += d[k];
    }
    Evaluate(candidate);

    // Penalty-parameter update (before acceptance, so the candidate is judged
    // with the corrected weight): if the step trades feasibility for
    // objective, mu must outweigh the exchange rate or the merit function
    // would reward walking ever deeper into the infeasible region.
    const double candidate_violation = MaxViolationOf(candidate);
    const double base_violation = MaxViolationOf(base);
    if (candidate_violation > base_violation + 1e-12) {
      const double objective_gain = base.f - candidate.f;
      if (objective_gain > 0.0) {
        const double needed = 2.0 * objective_gain / (candidate_violation - base_violation);
        if (needed > mu_) {
          mu_ = std::min(needed, 1e9);
        }
      }
    }

    // Replace the worst vertex when the candidate improves on it.
    size_t worst = 1;
    for (size_t j = 2; j <= n_; ++j) {
      if (Merit(simplex_[j]) > Merit(simplex_[worst])) {
        worst = j;
      }
    }
    if (Merit(candidate) < Merit(simplex_[worst])) {
      simplex_[worst] = std::move(candidate);
      if (Merit(simplex_[worst]) < Merit(simplex_[0])) {
        stall_count = 0;
      }
    } else {
      ++stall_count;
      if (stall_count >= 3) {
        stall_count = 0;
        if (rho <= config_.rho_end * 1.0001) {
          converged = true;
          break;
        }
        rho = std::max(0.5 * rho, config_.rho_end);
      }
    }
  }

  // Report the best vertex, preferring feasibility.
  OptimResult result;
  result.evaluations = evaluations_;
  result.converged = converged;
  size_t best = 0;
  bool best_feasible = MaxViolationOf(simplex_[0]) <= 1e-6;
  for (size_t j = 1; j <= n_; ++j) {
    const bool feasible = MaxViolationOf(simplex_[j]) <= 1e-6;
    const bool better_class = feasible && !best_feasible;
    const bool same_class = feasible == best_feasible;
    const double key_j = feasible ? simplex_[j].f : Merit(simplex_[j]);
    const double key_b = best_feasible ? simplex_[best].f : Merit(simplex_[best]);
    if (better_class || (same_class && key_j < key_b)) {
      best = j;
      best_feasible = feasible;
    }
  }
  result.x = simplex_[best].x;
  result.value = simplex_[best].f;
  result.max_violation = MaxViolationOf(simplex_[best]);
  return result;
}

}  // namespace

OptimResult Cobyla(const Problem& problem, std::span<const double> x0,
                   const CobylaConfig& config) {
  CobylaSolver solver(problem, x0, config);
  return solver.Solve();
}

}  // namespace faro
