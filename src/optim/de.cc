#include "src/optim/de.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/rng.h"

namespace faro {
namespace {

double PenalisedFitness(const Problem& problem, std::span<const double> x, double penalty,
                        std::vector<double>& scratch) {
  double fitness = problem.Objective(x);
  problem.Constraints(x, scratch);
  for (const double c : scratch) {
    if (c < 0.0) {
      fitness += penalty * c * c;
    }
  }
  return fitness;
}

}  // namespace

OptimResult DifferentialEvolution(const Problem& problem, const DeConfig& config) {
  const size_t n = problem.dimension();
  size_t np = config.population;
  if (np == 0) {
    np = std::min<size_t>(200, std::max<size_t>(15, 8 * n));
  }
  Rng rng(config.seed);

  std::vector<std::vector<double>> population(np, std::vector<double>(n));
  std::vector<double> fitness(np);
  std::vector<double> scratch;
  for (size_t i = 0; i < np; ++i) {
    for (size_t j = 0; j < n; ++j) {
      population[i][j] = rng.Uniform(problem.lower()[j], problem.upper()[j]);
    }
    fitness[i] = PenalisedFitness(problem, population[i], config.constraint_penalty, scratch);
  }
  int evaluations = static_cast<int>(np);

  std::vector<double> trial(n);
  for (size_t gen = 0; gen < config.generations; ++gen) {
    for (size_t i = 0; i < np; ++i) {
      // rand/1/bin mutation: three distinct donors, none equal to i.
      size_t a;
      size_t b;
      size_t c;
      do {
        a = rng.UniformInt(np);
      } while (a == i);
      do {
        b = rng.UniformInt(np);
      } while (b == i || b == a);
      do {
        c = rng.UniformInt(np);
      } while (c == i || c == a || c == b);

      const size_t forced = rng.UniformInt(n);
      for (size_t j = 0; j < n; ++j) {
        if (j == forced || rng.Uniform() < config.crossover_rate) {
          trial[j] = population[a][j] +
                     config.differential_weight * (population[b][j] - population[c][j]);
          trial[j] = std::clamp(trial[j], problem.lower()[j], problem.upper()[j]);
        } else {
          trial[j] = population[i][j];
        }
      }
      const double trial_fitness =
          PenalisedFitness(problem, trial, config.constraint_penalty, scratch);
      ++evaluations;
      if (trial_fitness <= fitness[i]) {
        population[i] = trial;
        fitness[i] = trial_fitness;
      }
    }
  }

  size_t best = 0;
  for (size_t i = 1; i < np; ++i) {
    if (fitness[i] < fitness[best]) {
      best = i;
    }
  }
  OptimResult result;
  result.x = population[best];
  result.value = problem.Objective(result.x);
  result.max_violation = problem.MaxViolation(result.x);
  result.evaluations = evaluations;
  result.converged = true;
  return result;
}

}  // namespace faro
