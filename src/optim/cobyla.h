// COBYLA: Constrained Optimization BY Linear Approximation (Powell, 1994).
//
// Derivative-free trust-region method: a nondegenerate simplex of n+1 points
// supplies linear interpolation models of the objective and every constraint;
// each iteration solves the linearised subproblem inside a trust-region ball
// and either moves the simplex or refines the trust-region radius. Faro uses
// this as its default solver for the relaxed cluster objective (§3.4, §4.2),
// initialised with "the initial variable change of 2" (§5) -- i.e.
// rho_begin = 2.
//
// This is a from-scratch reimplementation of Powell's method. The linearised
// trust-region subproblem is solved by a two-phase projected-subgradient
// scheme (phase 1 reduces predicted constraint violation, phase 2 descends
// the merit function), which preserves COBYLA's qualitative behaviour --
// fast on smooth relaxed objectives, prone to stalling on plateaus -- which
// is exactly the phenomenon Fig. 5 of the paper studies.

#ifndef SRC_OPTIM_COBYLA_H_
#define SRC_OPTIM_COBYLA_H_

#include <span>

#include "src/optim/problem.h"

namespace faro {

struct CobylaConfig {
  // Initial trust-region radius ("initial variable change").
  double rho_begin = 2.0;
  // Final trust-region radius; convergence is declared when the radius cannot
  // shrink further without progress.
  double rho_end = 1e-4;
  // Budget of objective/constraint evaluations.
  int max_evaluations = 3000;
};

OptimResult Cobyla(const Problem& problem, std::span<const double> x0,
                   const CobylaConfig& config = {});

}  // namespace faro

#endif  // SRC_OPTIM_COBYLA_H_
