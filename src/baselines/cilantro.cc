#include "src/baselines/cilantro.h"

#include <algorithm>
#include <cmath>

#include "src/core/utility.h"

namespace faro {

BinnedLatencyEstimator::BinnedLatencyEstimator(double max_load_per_replica, size_t bins)
    : max_load_(max_load_per_replica), sums_(bins, 0.0), counts_(bins, 0) {}

size_t BinnedLatencyEstimator::BinIndex(double load_per_replica) const {
  const double clamped = std::clamp(load_per_replica, 0.0, max_load_ - 1e-9);
  return static_cast<size_t>(clamped / max_load_ * static_cast<double>(sums_.size()));
}

void BinnedLatencyEstimator::Observe(double load_per_replica, double p99_latency) {
  if (!std::isfinite(p99_latency)) {
    // A window with drops observed "infinite" latency; record a large finite
    // surrogate so the bin is marked expensive without poisoning the mean.
    p99_latency = 60.0;
  }
  const size_t bin = BinIndex(load_per_replica);
  sums_[bin] += p99_latency;
  ++counts_[bin];
}

double BinnedLatencyEstimator::Estimate(double load_per_replica) const {
  const size_t bin = BinIndex(load_per_replica);
  // Exact bin if populated; otherwise the nearest populated bin *below*
  // (optimistic extrapolation -- the learner has never seen this load level
  // hurt, so it assumes it will not).
  for (size_t b = bin + 1; b-- > 0;) {
    if (counts_[b] > 0) {
      return sums_[b] / static_cast<double>(counts_[b]);
    }
  }
  return 0.0;  // nothing observed at or below this load: assume free
}

size_t BinnedLatencyEstimator::populated_bins() const {
  size_t populated = 0;
  for (const uint64_t c : counts_) {
    if (c > 0) {
      ++populated;
    }
  }
  return populated;
}

CilantroPolicy::CilantroPolicy(uint64_t seed) {}

double CilantroPolicy::ForecastLoad(const std::vector<double>& history) {
  const size_t n = history.size();
  if (n == 0) {
    return 0.0;
  }
  if (n < 4) {
    return history.back();
  }
  // Conditional least squares AR(2) fit: y_t = a y_{t-1} + b y_{t-2} + c.
  double sxx[3][3] = {{0.0}};
  double sxy[3] = {0.0};
  for (size_t t = 2; t < n; ++t) {
    const double x0 = history[t - 1];
    const double x1 = history[t - 2];
    const double x[3] = {x0, x1, 1.0};
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) {
        sxx[r][c] += x[r] * x[c];
      }
      sxy[r] += x[r] * history[t];
    }
  }
  // Solve the 3x3 normal equations by Cramer's rule with a ridge term.
  for (int r = 0; r < 3; ++r) {
    sxx[r][r] += 1e-6;
  }
  const double det = sxx[0][0] * (sxx[1][1] * sxx[2][2] - sxx[1][2] * sxx[2][1]) -
                     sxx[0][1] * (sxx[1][0] * sxx[2][2] - sxx[1][2] * sxx[2][0]) +
                     sxx[0][2] * (sxx[1][0] * sxx[2][1] - sxx[1][1] * sxx[2][0]);
  if (std::abs(det) < 1e-12) {
    return history.back();
  }
  auto det3 = [&](int col) {
    double m[3][3];
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) {
        m[r][c] = c == col ? sxy[r] : sxx[r][c];
      }
    }
    return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
           m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
           m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
  };
  const double a = det3(0) / det;
  const double b = det3(1) / det;
  const double c = det3(2) / det;
  const double forecast = a * history[n - 1] + b * history[n - 2] + c;
  return std::max(0.0, forecast);
}

ScalingAction CilantroPolicy::Decide(double now_s, const std::vector<JobSpec>& job_specs,
                                     const std::vector<JobMetrics>& metrics,
                                     const ClusterResources& resources) {
  const size_t j = job_specs.size();
  if (estimators_.size() != j) {
    estimators_.assign(j, BinnedLatencyEstimator());
  }
  // Feed the learners with the latest observation.
  std::vector<double> forecast(j, 0.0);
  for (size_t i = 0; i < j; ++i) {
    const double replicas =
        std::max<double>(1.0, metrics[i].ready_replicas);
    if (metrics[i].arrival_rate > 0.0) {
      estimators_[i].Observe(metrics[i].arrival_rate / replicas, metrics[i].p99_latency);
    }
    forecast[i] = ForecastLoad(metrics[i].arrival_history);
    if (forecast[i] <= 0.0) {
      forecast[i] = metrics[i].arrival_rate;
    }
  }

  // Greedy social-welfare allocation using the learned latency estimates.
  ScalingAction action;
  action.replicas.assign(j, 1);
  double used = 0.0;
  for (size_t i = 0; i < j; ++i) {
    used += job_specs[i].cpu_per_replica;
  }
  auto estimated_utility = [&](size_t i, uint32_t replicas) {
    const double latency = estimators_[i].Estimate(forecast[i] / replicas);
    return RelaxedUtility(latency, job_specs[i].slo);
  };
  for (;;) {
    size_t best = j;
    double best_gain = 1e-9;
    for (size_t i = 0; i < j; ++i) {
      if (used + job_specs[i].cpu_per_replica > resources.cpu + 1e-9) {
        continue;
      }
      const double gain = job_specs[i].priority * (estimated_utility(i, action.replicas[i] + 1) -
                                                   estimated_utility(i, action.replicas[i]));
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == j) {
      break;
    }
    ++action.replicas[best];
    used += job_specs[best].cpu_per_replica;
  }
  return action;
}

}  // namespace faro
