#include "src/baselines/baselines.h"

#include <algorithm>
#include <cmath>

namespace faro {
namespace {

double UsedCpu(const std::vector<JobSpec>& job_specs, const std::vector<JobMetrics>& metrics) {
  double used = 0.0;
  for (size_t i = 0; i < metrics.size(); ++i) {
    used += job_specs[i].cpu_per_replica * (metrics[i].ready_replicas +
                                            metrics[i].starting_replicas);
  }
  return used;
}

}  // namespace

ScalingAction CurrentAllocation(const std::vector<JobMetrics>& metrics) {
  ScalingAction action;
  action.replicas.resize(metrics.size());
  for (size_t i = 0; i < metrics.size(); ++i) {
    action.replicas[i] = metrics[i].ready_replicas + metrics[i].starting_replicas;
  }
  return action;
}

// --- FairShare --------------------------------------------------------------

ScalingAction FairSharePolicy::Decide(double now_s, const std::vector<JobSpec>& job_specs,
                                      const std::vector<JobMetrics>& metrics,
                                      const ClusterResources& resources) {
  ScalingAction action;
  const auto share = static_cast<uint32_t>(
      std::max(1.0, std::floor(resources.cpu / std::max<size_t>(1, job_specs.size()))));
  action.replicas.assign(job_specs.size(), share);
  return action;
}

// --- Oneshot ----------------------------------------------------------------

ScalingAction OneshotPolicy::Decide(double now_s, const std::vector<JobSpec>& job_specs,
                                    const std::vector<JobMetrics>& metrics,
                                    const ClusterResources& resources) {
  return CurrentAllocation(metrics);
}

std::optional<ScalingAction> OneshotPolicy::FastReact(double now_s,
                                                      const std::vector<JobSpec>& job_specs,
                                                      const std::vector<JobMetrics>& metrics,
                                                      const ClusterResources& resources) {
  if (last_up_.size() != metrics.size()) {
    last_up_.assign(metrics.size(), -1e18);
    last_down_.assign(metrics.size(), -1e18);
  }
  ScalingAction action = CurrentAllocation(metrics);
  double used = UsedCpu(job_specs, metrics);
  bool changed = false;
  for (size_t i = 0; i < metrics.size(); ++i) {
    const uint32_t current = action.replicas[i];
    // The scaling signal is how far the observed tail latency is from the
    // target: allocate latency/SLO times the current replicas in one shot.
    const double ratio =
        std::clamp(metrics[i].p99_latency / std::max(job_specs[i].slo, 1e-6), 0.05, 20.0);
    if (metrics[i].overloaded_for >= kUpscaleTriggerS &&
        now_s - last_up_[i] >= kUpscaleTriggerS) {
      auto target = static_cast<uint32_t>(std::ceil(current * ratio - 1e-9));
      target = std::max(target, current + 1);
      // Greedy: take as much of the free capacity as the jump wants. This is
      // exactly the resource-hogging behaviour §6.1 attributes to Oneshot.
      const double free = resources.cpu - used;
      const auto affordable = static_cast<uint32_t>(
          std::floor(free / std::max(job_specs[i].cpu_per_replica, 1e-9)));
      target = std::min(target, current + affordable);
      if (target != current) {
        used += (target - current) * job_specs[i].cpu_per_replica;
        action.replicas[i] = target;
        last_up_[i] = now_s;
        changed = true;
      }
    } else if (metrics[i].underloaded_for >= kDownscaleTriggerS && current > 1 &&
               now_s - last_down_[i] >= kDownscaleTriggerS) {
      auto target =
          static_cast<uint32_t>(std::max(1.0, std::ceil(current * std::max(ratio, 0.05))));
      target = std::min(target, current - 1);
      target = std::max<uint32_t>(target, 1);
      used -= (current - target) * job_specs[i].cpu_per_replica;
      action.replicas[i] = target;
      last_down_[i] = now_s;
      changed = true;
    }
  }
  if (!changed) {
    return std::nullopt;
  }
  return action;
}

// --- AIAD -------------------------------------------------------------------

ScalingAction AiadPolicy::Decide(double now_s, const std::vector<JobSpec>& job_specs,
                                 const std::vector<JobMetrics>& metrics,
                                 const ClusterResources& resources) {
  return CurrentAllocation(metrics);
}

std::optional<ScalingAction> AiadPolicy::FastReact(double now_s,
                                                   const std::vector<JobSpec>& job_specs,
                                                   const std::vector<JobMetrics>& metrics,
                                                   const ClusterResources& resources) {
  if (last_up_.size() != metrics.size()) {
    last_up_.assign(metrics.size(), -1e18);
    last_down_.assign(metrics.size(), -1e18);
  }
  ScalingAction action = CurrentAllocation(metrics);
  double used = UsedCpu(job_specs, metrics);
  bool changed = false;
  for (size_t i = 0; i < metrics.size(); ++i) {
    if (metrics[i].overloaded_for >= kUpscaleTriggerS &&
        now_s - last_up_[i] >= kUpscaleTriggerS &&
        used + job_specs[i].cpu_per_replica <= resources.cpu + 1e-9) {
      ++action.replicas[i];
      used += job_specs[i].cpu_per_replica;
      last_up_[i] = now_s;
      changed = true;
    } else if (allow_downscale_ && metrics[i].underloaded_for >= kDownscaleTriggerS &&
               action.replicas[i] > 1 && now_s - last_down_[i] >= kDownscaleTriggerS) {
      --action.replicas[i];
      used -= job_specs[i].cpu_per_replica;
      last_down_[i] = now_s;
      changed = true;
    }
  }
  if (!changed) {
    return std::nullopt;
  }
  return action;
}

// --- MArk / Cocktail / Barista ------------------------------------------------

MarkPolicy::MarkPolicy(std::shared_ptr<WorkloadPredictor> predictor, double utilization_target,
                       bool allow_downscale)
    : predictor_(std::move(predictor)),
      utilization_target_(utilization_target),
      allow_downscale_(allow_downscale) {
  if (predictor_ == nullptr) {
    predictor_ = std::make_shared<DampedAveragePredictor>();
  }
}

ScalingAction MarkPolicy::Decide(double now_s, const std::vector<JobSpec>& job_specs,
                                 const std::vector<JobMetrics>& metrics,
                                 const ClusterResources& resources) {
  ScalingAction action;
  action.replicas.resize(job_specs.size());
  double used = 0.0;
  for (size_t i = 0; i < job_specs.size(); ++i) {
    const std::vector<double> window =
        predictor_->PredictQuantile(i, metrics[i].arrival_history, 7, 0.5);
    double peak = metrics[i].arrival_rate;
    for (const double v : window) {
      peak = std::max(peak, v);
    }
    const double p = metrics[i].processing_time > 0.0 ? metrics[i].processing_time
                                                      : job_specs[i].processing_time;
    // Max throughput of one replica is 1/p req/s; run it at the utilisation
    // target to leave queueing headroom. Each job is sized independently.
    const double needed = peak * p / utilization_target_;
    auto target = static_cast<uint32_t>(std::max(1.0, std::ceil(needed)));
    // First-come capacity clipping: no cross-job coordination.
    const double free = resources.cpu - used;
    const auto affordable = static_cast<uint32_t>(
        std::max(1.0, std::floor(free / std::max(job_specs[i].cpu_per_replica, 1e-9))));
    target = std::min(target, affordable);
    if (!allow_downscale_) {
      // Cocktail: an upscaled job never gives its replicas back.
      target = std::max<uint32_t>(
          target, metrics[i].ready_replicas + metrics[i].starting_replicas);
    }
    action.replicas[i] = std::max<uint32_t>(target, 1);
    used += action.replicas[i] * job_specs[i].cpu_per_replica;
  }
  return action;
}

}  // namespace faro
