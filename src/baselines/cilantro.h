// Cilantro-like baseline (§2, Fig. 2): a utility-driven multi-tenant
// allocator whose performance model is *learned online* rather than derived
// analytically.
//
// Structure mirrors the paper's characterisation of Cilantro:
//  - a tree-binning performance estimator: observed (load-per-replica -> tail
//    latency) pairs populate bins; unseen bins are estimated optimistically
//    from neighbours (this is what converges slowly);
//  - an ARMA-style load forecaster refit on a fixed window of recent arrival
//    rates;
//  - a greedy social-welfare allocation: each replica goes to the job with
//    the largest estimated marginal utility gain.
//
// The point of this baseline is the phenomenon in Fig. 2: online-learned
// estimators adapt too slowly for spiky ML inference workloads, so SLO
// violations stay high even though the allocator is SLO-aware.

#ifndef SRC_BASELINES_CILANTRO_H_
#define SRC_BASELINES_CILANTRO_H_

#include <cstdint>
#include <vector>

#include "src/core/policy.h"

namespace faro {

// Online estimator of tail latency as a function of per-replica load.
// Bins are uniform in load-per-replica; each stores a running mean of
// observed p99 latencies. Queries on empty bins fall back to the nearest
// populated bin below (optimistic: assumes more load costs nothing until
// observed otherwise).
class BinnedLatencyEstimator {
 public:
  BinnedLatencyEstimator(double max_load_per_replica = 20.0, size_t bins = 24);

  void Observe(double load_per_replica, double p99_latency);
  double Estimate(double load_per_replica) const;
  size_t populated_bins() const;

 private:
  size_t BinIndex(double load_per_replica) const;

  double max_load_;
  std::vector<double> sums_;
  std::vector<uint64_t> counts_;
};

class CilantroPolicy : public AutoscalingPolicy {
 public:
  explicit CilantroPolicy(uint64_t seed = 1);

  std::string name() const override { return "Cilantro"; }
  double decision_interval_s() const override { return 60.0; }

  ScalingAction Decide(double now_s, const std::vector<JobSpec>& job_specs,
                       const std::vector<JobMetrics>& metrics,
                       const ClusterResources& resources) override;

 private:
  // AR(2) one-step-ahead forecast refit on the trailing history window.
  static double ForecastLoad(const std::vector<double>& history);

  std::vector<BinnedLatencyEstimator> estimators_;
};

}  // namespace faro

#endif  // SRC_BASELINES_CILANTRO_H_
