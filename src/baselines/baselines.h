// Baseline autoscaling policies (§6, Table 6).
//
//   FairShare  no autoscaling: the cluster is split evenly across jobs
//              (Clipper, TensorFlow-Serving deployments).
//   Oneshot    reactive: jumps straight to a replica count proportional to
//              latency/SLO (K8s HPA, Henge, Ray Serve autoscaler). Aggressive
//              upscale after 30 s of violations, conservative downscale after
//              5 min of headroom.
//   AIAD       additive-increase / additive-decrease, +-1 replica on the same
//              triggers (INFaaS; no downscale in the original, both here per
//              the paper's baseline).
//   MArk/Cocktail/Barista  proactive per-job policy: predicts the load and
//              sizes each job independently from the replica's maximum
//              throughput (1/p), with no cross-job coordination.
//
// All reactive baselines share Faro's trigger thresholds (30 s overload /
// 5 min underload) for a fair comparison, as in §6.

#ifndef SRC_BASELINES_BASELINES_H_
#define SRC_BASELINES_BASELINES_H_

#include <memory>

#include "src/core/policy.h"
#include "src/core/predictor.h"

namespace faro {

inline constexpr double kUpscaleTriggerS = 30.0;
inline constexpr double kDownscaleTriggerS = 300.0;

class FairSharePolicy : public AutoscalingPolicy {
 public:
  std::string name() const override { return "FairShare"; }
  ScalingAction Decide(double now_s, const std::vector<JobSpec>& job_specs,
                       const std::vector<JobMetrics>& metrics,
                       const ClusterResources& resources) override;
};

class OneshotPolicy : public AutoscalingPolicy {
 public:
  std::string name() const override { return "Oneshot"; }
  // The long-term tick leaves the allocation alone; all action is reactive.
  ScalingAction Decide(double now_s, const std::vector<JobSpec>& job_specs,
                       const std::vector<JobMetrics>& metrics,
                       const ClusterResources& resources) override;
  std::optional<ScalingAction> FastReact(double now_s, const std::vector<JobSpec>& job_specs,
                                         const std::vector<JobMetrics>& metrics,
                                         const ClusterResources& resources) override;

 private:
  // One action per trigger period per job: a job "marked for scale-up/down"
  // acts once, then must re-arm (otherwise the 10 s reactive tick would fire
  // continuously through the whole overload window and oscillate).
  std::vector<double> last_up_;
  std::vector<double> last_down_;
};

class AiadPolicy : public AutoscalingPolicy {
 public:
  // INFaaS never downscales (Table 6's asterisk); pass false to model it.
  explicit AiadPolicy(bool allow_downscale = true) : allow_downscale_(allow_downscale) {}
  std::string name() const override { return allow_downscale_ ? "AIAD" : "AIAD-NoDown"; }
  ScalingAction Decide(double now_s, const std::vector<JobSpec>& job_specs,
                       const std::vector<JobMetrics>& metrics,
                       const ClusterResources& resources) override;
  std::optional<ScalingAction> FastReact(double now_s, const std::vector<JobSpec>& job_specs,
                                         const std::vector<JobMetrics>& metrics,
                                         const ClusterResources& resources) override;

 private:
  bool allow_downscale_;
  std::vector<double> last_up_;
  std::vector<double> last_down_;
};

class MarkPolicy : public AutoscalingPolicy {
 public:
  // Sizes for the peak of the predicted window at `utilization_target`
  // fraction of each replica's maximum throughput.
  // Cocktail upscales proactively but never relinquishes replicas (Table 6's
  // asterisk); pass allow_downscale = false to model it.
  explicit MarkPolicy(std::shared_ptr<WorkloadPredictor> predictor = nullptr,
                      double utilization_target = 0.8, bool allow_downscale = true);
  std::string name() const override {
    return allow_downscale_ ? "MArk/Cocktail/Barista" : "Cocktail-NoDown";
  }
  double decision_interval_s() const override { return 60.0; }
  ScalingAction Decide(double now_s, const std::vector<JobSpec>& job_specs,
                       const std::vector<JobMetrics>& metrics,
                       const ClusterResources& resources) override;

 private:
  std::shared_ptr<WorkloadPredictor> predictor_;
  double utilization_target_;
  bool allow_downscale_;
};

// Helper shared by the reactive baselines: current allocation as the default
// action.
ScalingAction CurrentAllocation(const std::vector<JobMetrics>& metrics);

}  // namespace faro

#endif  // SRC_BASELINES_BASELINES_H_
