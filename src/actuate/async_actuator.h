// Live asynchronous actuator: a dedicated thread that reconciles a mutable
// cluster model toward the newest published DesiredState, racing the
// publisher (faro_serve's replay thread) and any telemetry scrapers.
//
// Threading contract. One mutex guards the publish queue, the reconciler,
// the cluster model, and the op log; the actuator thread drains the queue in
// batches and runs each generation's first reconcile pass inside a single
// critical section. An external observer can therefore see a generation in
// exactly three states -- not yet applied, fully applied, or discarded
// (fenced as stale / superseded by a newer generation drained in the same
// batch) -- never partially applied. That is the crash-consistency invariant
// the TSan determinism test asserts via the op log.
//
// The actuator never touches the simulation: it converges its *own* model of
// the cluster (per-job applied replica targets and drop rates). The replay
// thread remains the sole writer of simulation state, which is what keeps
// paced daemon runs byte-identical to batch runs while this thread races.

#ifndef SRC_ACTUATE_ASYNC_ACTUATOR_H_
#define SRC_ACTUATE_ASYNC_ACTUATOR_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/actuate/reconciler.h"

namespace faro {

// One entry per publish attempt, in arrival order at the actuator.
struct ActuatorLogEntry {
  uint64_t generation = 0;
  // Exactly one of the three is true once the actuator has processed the
  // publish; `applied` additionally requires every job written in one
  // critical section (jobs_applied == num_jobs).
  bool applied = false;
  bool fenced = false;      // stale generation discarded by the fence
  bool superseded = false;  // replaced by a newer generation before its pass
  size_t jobs_applied = 0;
};

class AsyncActuator {
 public:
  AsyncActuator(size_t num_jobs, const ReconcilerConfig& config);
  ~AsyncActuator();
  AsyncActuator(const AsyncActuator&) = delete;
  AsyncActuator& operator=(const AsyncActuator&) = delete;

  void Start();
  // Drains pending publishes (newer generations win, stale ones fence), runs
  // a final reconcile pass, and joins the thread. Idempotent.
  void Stop();

  // Thread-safe; callable from any thread. Stale generations are fenced by
  // the reconciler on the actuator thread (recorded in the op log), so
  // at-least-once publishers may re-send without double-applying.
  void Publish(const DesiredState& desired);

  // Test hook: ops for which this returns true are dropped (the model is not
  // written), forcing the retry/backoff path. Set before Start().
  using ApplyFault = std::function<bool(size_t job, uint64_t generation, uint32_t attempt)>;
  void set_apply_fault(ApplyFault fault) { apply_fault_ = std::move(fault); }

  // --- thread-safe snapshots ----------------------------------------------
  ReconcileTelemetry telemetry() const;
  std::vector<ActuatorLogEntry> op_log() const;
  std::vector<uint32_t> applied_replicas() const;
  std::vector<double> applied_drop_rates() const;
  bool converged() const;
  uint64_t generation() const;
  bool running() const { return thread_.joinable(); }

 private:
  // ClusterPort over the in-memory model; called only with mu_ held.
  class ModelPort;

  double NowS() const;
  void Loop();
  // With mu_ held: fold queued publishes into the reconciler and op log.
  void DrainQueueLocked();
  // With mu_ held: one reconcile pass; finalises op-log entries.
  void ReconcileLocked();

  const size_t num_jobs_;
  ApplyFault apply_fault_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::deque<DesiredState> queue_;
  Reconciler reconciler_;
  std::vector<uint32_t> model_replicas_;
  std::vector<double> model_drop_rates_;
  std::vector<ActuatorLogEntry> log_;
  // Index into log_ of the entry for the reconciler's current generation
  // (the one whose first pass is pending or whose repair is in flight).
  size_t current_entry_ = SIZE_MAX;
  std::unique_ptr<ModelPort> port_;
  uint64_t port_generation_ = 0;

  std::thread thread_;
};

}  // namespace faro

#endif  // SRC_ACTUATE_ASYNC_ACTUATOR_H_
