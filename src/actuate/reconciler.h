// Reconciler core: a Kubernetes-style desired-state control loop.
//
// The reconciler owns exactly one DesiredState at a time -- the newest
// generation that survived the fence -- and converges a cluster toward it
// through the ClusterPort interface. It is deliberately free of threads,
// clocks, and RNG streams so the same core drives both actuation modes:
//
//  - virtual-time mode: the simulation engines call Reconcile() at control
//    boundaries (decision and reactive ticks), with sim time as `now_s`.
//    Every decision the reconciler makes is a pure function of (config,
//    published states, port observations, call times), so runs stay
//    bit-identical at any shard/thread count;
//  - live mode: a dedicated actuator thread (src/actuate/async_actuator.h)
//    calls the same core against a mutable cluster model under a mutex,
//    racing the replay thread that publishes.
//
// Convergence contract. A generation's first reconcile pass executes the
// port's full actuation semantics (scale-ups with fault draws, scale-downs,
// drop rates). Later passes are level-triggered repair: any job whose
// committed fleet sits below its target -- because an actuation fault ate the
// scale-up, or a replica was killed after convergence -- is re-issued the
// missing delta, gated by per-job exponential backoff with deterministic
// jitter. Scale-downs are one-shot per generation: draining replicas remain
// visible in the fleet until they finish, so re-issuing a downscale would
// double-drain; a fleet at or above target counts as converged. Partial
// failures therefore leave a consistent intermediate state (some jobs at
// target, some short) that the next pass repairs -- never a torn write.

#ifndef SRC_ACTUATE_RECONCILER_H_
#define SRC_ACTUATE_RECONCILER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/actuate/desired.h"

namespace faro {

struct ReconcilerConfig {
  // Base per-job retry backoff (seconds). After a generation's first pass a
  // job with an open deficit becomes retry-eligible immediately; each issued
  // retry doubles its backoff up to `backoff_cap_s`. 0 disables retries
  // entirely (first pass only -- the legacy fire-and-forget behaviour).
  double retry_backoff_s = 20.0;
  double backoff_cap_s = 300.0;
  // Deterministic jitter: each computed backoff is stretched by up to this
  // fraction, keyed on (seed, generation, job, attempt) -- no RNG stream is
  // consumed, so jitter never perturbs simulation draws.
  double jitter_frac = 0.1;
  // An issued scale-up that has not closed its deficit within this many
  // seconds is declared timed out: the job bypasses its remaining backoff at
  // the next pass and the timeout is counted. 0 disables the timeout.
  double op_timeout_s = 120.0;
  uint64_t seed = 0;
};

// Convergence telemetry, exported through RunResult, the obs registry, the
// decision-audit JSONL, and the /actuator endpoint.
struct ReconcileTelemetry {
  uint64_t generations_published = 0;  // publishes that passed the fence
  uint64_t generations_converged = 0;  // reached fleet >= target on all jobs
  uint64_t generations_superseded = 0; // replaced before converging
  uint64_t fence_rejections = 0;       // stale publishes discarded
  uint64_t reconcile_passes = 0;       // passes that inspected the cluster
  uint64_t ops_issued = 0;             // per-job apply operations issued
  uint64_t retries = 0;                // repair re-issues (attempt > 0)
  uint64_t op_timeouts = 0;            // deficits older than op_timeout_s
  double convergence_s_total = 0.0;    // sum of per-generation times
  double convergence_s_max = 0.0;      // worst single generation
};

// What the reconciler needs from a cluster. Implementations: the engines'
// in-step adapters (simulator.cc, engine_sharded.cc) and the live
// LiveClusterModel (async_actuator.h).
class ClusterPort {
 public:
  virtual ~ClusterPort() = default;

  virtual size_t num_jobs() const = 0;

  // Committed fleet for job `job`: every replica the cluster has accepted
  // responsibility for (ready + starting + pending placement). The
  // convergence criterion is Fleet(job) >= target for every job.
  virtual uint32_t Fleet(size_t job) const = 0;

  // Applies the per-job target. `first_pass` runs the port's full actuation
  // semantics for a fresh generation (scale-up with fault draws, scale-down,
  // historical baseline quirks); repair passes only re-issue the missing
  // scale-up delta. Returns the number of replica operations issued (0 when
  // the call was a no-op).
  virtual uint32_t ApplyTarget(size_t job, uint32_t target, bool first_pass,
                               double now_s) = 0;

  // Sets the router drop rate (first pass only; idempotent).
  virtual void SetDropRate(size_t job, double rate) = 0;
};

// Information about the most recently converged generation, captured at the
// reconcile pass that observed convergence (for audit records).
struct ConvergenceEvent {
  uint64_t generation = 0;
  double converged_s = 0.0;    // time of the observing pass
  double convergence_s = 0.0;  // converged_s - published_s
  uint64_t retries = 0;        // repair ops this generation needed
};

class Reconciler {
 public:
  explicit Reconciler(const ReconcilerConfig& config) : config_(config) {}

  // Accepts `desired` iff its generation is strictly newer than the current
  // one (the fence). Superseding a not-yet-converged generation is counted;
  // per-job retry state resets so the new generation gets a fresh first pass.
  // Returns false (and counts a fence rejection) for stale publishes.
  bool Publish(const DesiredState& desired, double now_s);

  // Runs one reconcile pass against `port` at time `now_s`. Returns the
  // number of operations issued. When the pass observes convergence for the
  // first time on the current generation, `event` (optional) is filled.
  uint32_t Reconcile(ClusterPort& port, double now_s,
                     ConvergenceEvent* event = nullptr);

  // Counts a stale in-flight command the caller discarded on the fence (a
  // delayed scale-up from a superseded generation finally landing).
  void FenceStale() { ++telemetry_.fence_rejections; }

  // True when a retry pass at `now_s` could issue work: there is a published
  // generation whose first pass ran, retries are enabled, and at least one
  // job's backoff gate is open. Engines use this to skip zero-draw passes
  // cheaply; callers may always just call Reconcile().
  bool has_desired() const { return has_desired_; }
  bool converged() const { return converged_; }
  uint64_t generation() const { return desired_.generation; }
  const DesiredState& desired() const { return desired_; }
  const ReconcileTelemetry& telemetry() const { return telemetry_; }

 private:
  struct JobRepairState {
    double next_attempt_s = 0.0;  // earliest time a repair may be issued
    double backoff_s = 0.0;       // next backoff to apply after an issue
    double deficit_since_s = -1.0;  // when the open deficit was first seen
    uint32_t attempts = 0;
  };

  // Deterministic jitter multiplier in [1, 1 + jitter_frac) for a given
  // (generation, job, attempt).
  double JitterStretch(uint64_t generation, size_t job, uint32_t attempt) const;

  void CheckConvergence(ClusterPort& port, double now_s, ConvergenceEvent* event);

  ReconcilerConfig config_;
  DesiredState desired_;
  bool has_desired_ = false;
  bool first_pass_done_ = false;
  double first_pass_s_ = 0.0;
  bool converged_ = false;
  uint64_t generation_retries_ = 0;  // repair ops for the current generation
  std::vector<JobRepairState> repair_;
  ReconcileTelemetry telemetry_;
};

}  // namespace faro

#endif  // SRC_ACTUATE_RECONCILER_H_
