#include "src/actuate/async_actuator.h"

#include <algorithm>
#include <memory>

namespace faro {

// ClusterPort over the actuator's in-memory model. Only ever called from the
// actuator thread with mu_ held, so plain field access is safe.
class AsyncActuator::ModelPort : public ClusterPort {
 public:
  ModelPort(AsyncActuator& owner) : owner_(owner) {
    attempts_.assign(owner_.num_jobs_, 0);
  }

  void ResetForGeneration(uint64_t generation) {
    generation_ = generation;
    attempts_.assign(owner_.num_jobs_, 0);
  }

  size_t num_jobs() const override { return owner_.num_jobs_; }

  uint32_t Fleet(size_t job) const override {
    return owner_.model_replicas_[job];
  }

  uint32_t ApplyTarget(size_t job, uint32_t target, bool first_pass,
                       double now_s) override {
    const uint32_t attempt = attempts_[job]++;
    if (owner_.apply_fault_ &&
        owner_.apply_fault_(job, generation_, attempt)) {
      return 0;  // the operation is lost; a later repair pass re-issues it
    }
    const uint32_t before = owner_.model_replicas_[job];
    owner_.model_replicas_[job] = target;
    if (owner_.current_entry_ != SIZE_MAX) {
      ++owner_.log_[owner_.current_entry_].jobs_applied;
    }
    return before < target ? target - before
                           : (before > target ? before - target : 0);
  }

  void SetDropRate(size_t job, double rate) override {
    owner_.model_drop_rates_[job] = rate;
  }

 private:
  AsyncActuator& owner_;
  uint64_t generation_ = 0;
  std::vector<uint32_t> attempts_;
};

AsyncActuator::AsyncActuator(size_t num_jobs, const ReconcilerConfig& config)
    : num_jobs_(num_jobs),
      epoch_(std::chrono::steady_clock::now()),
      reconciler_(config),
      model_replicas_(num_jobs, 0),
      model_drop_rates_(num_jobs, 0.0) {}

AsyncActuator::~AsyncActuator() { Stop(); }

double AsyncActuator::NowS() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

void AsyncActuator::Start() {
  if (thread_.joinable()) {
    return;
  }
  epoch_ = std::chrono::steady_clock::now();
  thread_ = std::thread(&AsyncActuator::Loop, this);
}

void AsyncActuator::Stop() {
  if (!thread_.joinable()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void AsyncActuator::Publish(const DesiredState& desired) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(desired);
  }
  cv_.notify_all();
}

void AsyncActuator::DrainQueueLocked() {
  while (!queue_.empty()) {
    DesiredState desired = std::move(queue_.front());
    queue_.pop_front();
    ActuatorLogEntry entry;
    entry.generation = desired.generation;
    const bool was_converged = reconciler_.converged();
    if (!reconciler_.Publish(desired, NowS())) {
      entry.fenced = true;
      log_.push_back(entry);
      continue;
    }
    // A previous generation still awaiting its first pass is superseded by
    // this accepted publish (the reconciler counted it); its entry must show
    // it was discarded *before* any application -- never torn.
    if (current_entry_ != SIZE_MAX && !log_[current_entry_].applied &&
        !was_converged) {
      log_[current_entry_].superseded = true;
    }
    log_.push_back(entry);
    current_entry_ = log_.size() - 1;
  }
}

void AsyncActuator::ReconcileLocked() {
  if (!reconciler_.has_desired()) {
    return;
  }
  if (port_ == nullptr) {
    port_ = std::make_unique<ModelPort>(*this);
  }
  if (port_generation_ != reconciler_.generation()) {
    port_generation_ = reconciler_.generation();
    port_->ResetForGeneration(port_generation_);
  }
  const bool first_pass_pending =
      current_entry_ != SIZE_MAX && !log_[current_entry_].applied &&
      !log_[current_entry_].superseded;
  reconciler_.Reconcile(*port_, NowS());
  if (first_pass_pending) {
    // The generation's first pass ran to completion inside this critical
    // section: every job's target was issued in one indivisible step.
    log_[current_entry_].applied = true;
  }
}

void AsyncActuator::Loop() {
  while (true) {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty() && !stop_) {
      if (reconciler_.has_desired() && !reconciler_.converged()) {
        // Unconverged: poll for repair-eligibility at millisecond grain (the
        // reconciler's backoff gates make un-eligible passes free).
        cv_.wait_for(lock, std::chrono::milliseconds(1));
      } else {
        cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      }
    }
    DrainQueueLocked();
    ReconcileLocked();
    if (stop_ && queue_.empty()) {
      return;
    }
  }
}

ReconcileTelemetry AsyncActuator::telemetry() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reconciler_.telemetry();
}

std::vector<ActuatorLogEntry> AsyncActuator::op_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

std::vector<uint32_t> AsyncActuator::applied_replicas() const {
  std::lock_guard<std::mutex> lock(mu_);
  return model_replicas_;
}

std::vector<double> AsyncActuator::applied_drop_rates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return model_drop_rates_;
}

bool AsyncActuator::converged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reconciler_.converged();
}

uint64_t AsyncActuator::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reconciler_.generation();
}

}  // namespace faro
