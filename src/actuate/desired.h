// Versioned desired state for the reconciling actuator (src/actuate/).
//
// The autoscaler's Decide/FastReact output is no longer applied imperatively:
// it is *published* as a DesiredState stamped with a monotonically increasing
// generation, and an actuator (virtual-time in the engines, a real thread in
// faro_serve) converges the cluster toward the latest published generation.
// The generation is the fencing token: a publish whose generation is not
// strictly greater than the newest one seen is stale -- a delayed or replayed
// command -- and is discarded rather than applied out of order.

#ifndef SRC_ACTUATE_DESIRED_H_
#define SRC_ACTUATE_DESIRED_H_

#include <cstdint>
#include <vector>

namespace faro {

struct DesiredState {
  // Monotone version stamp; 0 is reserved for "nothing published yet".
  uint64_t generation = 0;
  // Sim time (virtual-time mode) or relative wall seconds (live mode) at
  // which the state was published; time-to-converge is measured from here.
  double published_s = 0.0;
  // Absolute per-job replica targets, already clamped to >= 1 (the engines'
  // historical floor -- a job never scales to zero replicas).
  std::vector<uint32_t> replicas;
  // Optional per-job drop rates (empty = leave router drop rates untouched).
  std::vector<double> drop_rates;
};

}  // namespace faro

#endif  // SRC_ACTUATE_DESIRED_H_
