#include "src/actuate/reconciler.h"

#include <algorithm>

#include "src/common/rng.h"

namespace faro {

bool Reconciler::Publish(const DesiredState& desired, double now_s) {
  if (has_desired_ && desired.generation <= desired_.generation) {
    ++telemetry_.fence_rejections;
    return false;
  }
  if (has_desired_ && !converged_) {
    ++telemetry_.generations_superseded;
  }
  desired_ = desired;
  has_desired_ = true;
  first_pass_done_ = false;
  converged_ = false;
  generation_retries_ = 0;
  repair_.assign(desired_.replicas.size(), JobRepairState{});
  ++telemetry_.generations_published;
  return true;
}

double Reconciler::JitterStretch(uint64_t generation, size_t job,
                                 uint32_t attempt) const {
  if (config_.jitter_frac <= 0.0) {
    return 1.0;
  }
  uint64_t h = HashCombine(config_.seed, generation);
  h = HashCombine(h, static_cast<uint64_t>(job));
  h = HashCombine(h, static_cast<uint64_t>(attempt));
  // Top 53 bits -> uniform [0, 1); no RNG stream is consumed.
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return 1.0 + config_.jitter_frac * unit;
}

void Reconciler::CheckConvergence(ClusterPort& port, double now_s,
                                  ConvergenceEvent* event) {
  if (converged_) {
    return;
  }
  const size_t n = std::min(desired_.replicas.size(), port.num_jobs());
  for (size_t j = 0; j < n; ++j) {
    if (port.Fleet(j) < desired_.replicas[j]) {
      return;
    }
  }
  converged_ = true;
  ++telemetry_.generations_converged;
  const double convergence = std::max(0.0, now_s - desired_.published_s);
  telemetry_.convergence_s_total += convergence;
  telemetry_.convergence_s_max =
      std::max(telemetry_.convergence_s_max, convergence);
  if (event != nullptr) {
    event->generation = desired_.generation;
    event->converged_s = now_s;
    event->convergence_s = convergence;
    event->retries = generation_retries_;
  }
}

uint32_t Reconciler::Reconcile(ClusterPort& port, double now_s,
                               ConvergenceEvent* event) {
  if (!has_desired_) {
    return 0;
  }
  const size_t n = std::min(desired_.replicas.size(), port.num_jobs());
  uint32_t ops = 0;

  if (!first_pass_done_) {
    // First pass: the port's full actuation semantics, in job order (the
    // engines' historical apply order -- load-bearing for bit-identity).
    ++telemetry_.reconcile_passes;
    for (size_t j = 0; j < n; ++j) {
      ops += port.ApplyTarget(j, desired_.replicas[j], /*first_pass=*/true, now_s);
    }
    if (!desired_.drop_rates.empty()) {
      for (size_t j = 0; j < std::min(desired_.drop_rates.size(), n); ++j) {
        port.SetDropRate(j, desired_.drop_rates[j]);
      }
    }
    first_pass_done_ = true;
    first_pass_s_ = now_s;
    // Jobs become repair-eligible immediately: a deficit surviving the first
    // pass (an actuation fault ate the scale-up) may be repaired at the very
    // next control boundary, mirroring the retired autoscaler-side retry.
    for (size_t j = 0; j < repair_.size(); ++j) {
      repair_[j].next_attempt_s = now_s;
      repair_[j].backoff_s = config_.retry_backoff_s;
    }
    telemetry_.ops_issued += ops;
    CheckConvergence(port, now_s, event);
    return ops;
  }

  // Repair pass: level-triggered. Re-issue the missing delta for any job
  // whose committed fleet is short of target, gated by its backoff window.
  // Retries disabled (backoff 0) keeps the legacy fire-and-forget behaviour.
  // Repairs run strictly after the first pass's instant: a decision and a
  // repair tick landing on the same (virtual) timestamp must not re-issue a
  // just-faulted scale-up with zero elapsed time.
  if (config_.retry_backoff_s <= 0.0 || now_s <= first_pass_s_) {
    CheckConvergence(port, now_s, event);
    return 0;
  }
  bool inspected = false;
  for (size_t j = 0; j < n; ++j) {
    JobRepairState& rs = repair_[j];
    const uint32_t target = desired_.replicas[j];
    if (port.Fleet(j) >= target) {
      // Deficit closed (or never existed): reset so a later replica kill
      // re-opens repair promptly at base backoff.
      rs.deficit_since_s = -1.0;
      rs.backoff_s = config_.retry_backoff_s;
      continue;
    }
    if (rs.deficit_since_s < 0.0) {
      rs.deficit_since_s = now_s;
    }
    bool timed_out = false;
    if (config_.op_timeout_s > 0.0 &&
        now_s - rs.deficit_since_s >= config_.op_timeout_s) {
      // The outstanding operation is presumed lost: bypass the remaining
      // backoff window and count the timeout.
      timed_out = true;
    }
    if (!timed_out && now_s < rs.next_attempt_s) {
      continue;
    }
    inspected = true;
    // The attempt counts as a retry whether or not the port manages to issue
    // anything (an actuation fault can eat the re-issue too) -- matching the
    // semantics of the autoscaler-side counter this replaces.
    ++telemetry_.retries;
    ++generation_retries_;
    const uint32_t issued =
        port.ApplyTarget(j, target, /*first_pass=*/false, now_s);
    ++rs.attempts;
    if (timed_out) {
      ++telemetry_.op_timeouts;
      rs.deficit_since_s = now_s;  // restart the timeout window
    }
    const double stretch =
        JitterStretch(desired_.generation, j, rs.attempts);
    rs.next_attempt_s = now_s + rs.backoff_s * stretch;
    rs.backoff_s = std::min(rs.backoff_s * 2.0, config_.backoff_cap_s);
    ops += issued;
    telemetry_.ops_issued += issued;
  }
  if (inspected || ops > 0) {
    ++telemetry_.reconcile_passes;
  }
  CheckConvergence(port, now_s, event);
  return ops;
}

}  // namespace faro
