// Process-wide metrics registry: counters, gauges, and log-bucketed latency
// histograms for the simulator, the autoscaler decision cycle, and the
// queueing memo caches.
//
// Design:
//   - instruments are sharded per thread: the first use on a thread registers
//     a private cell (one mutex acquisition, ever), and every subsequent
//     update is a relaxed load/store on that thread-exclusive, cache-line-
//     aligned cell -- no locks, no read-modify-write contention on the hot
//     path. Readers merge the cells under the registration mutex, so totals
//     are exact for every value a writer has published;
//   - hot paths may hoist `LocalCell()` into their own thread-local state
//     (the queueing cache does) so an increment is a single relaxed store;
//   - histograms are log-bucketed: 2^kSubBucketBits linear sub-buckets per
//     octave (HdrHistogram-style), so bucketing is bit twiddling on the
//     double's exponent/mantissa -- no std::log on the record path -- and
//     every bucket's relative width is at most 1/2^kSubBucketBits (12.5%).
//     Quantile(q) linearly interpolates the nearest-rank sample's position
//     within its bucket, so it matches the exact sorted percentile within a
//     bucket width (tests/obs_metrics_test.cc validates p50/p99/p999 against
//     exact sorted percentiles);
//   - MetricsRegistry::Global() is a leaked singleton: cells stay valid for
//     late-exiting threads (pool workers joined during static destruction)
//     and for atexit dumpers, the same lifetime rule the queueing cache's
//     old namespace-scope atomics relied on.
//
// Determinism contract: counts and bucket tallies of sim-driven instruments
// are pure functions of the simulated runs and therefore deterministic;
// wall-clock-valued instruments (e.g. solve-time histograms) are measurement
// and excluded, exactly like SolverTelemetry's wall-clock fields.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <forward_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace faro {

// One metric label set, e.g. {{"job", "resnet34-0"}}. Order is preserved in
// the exposition output.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

// Prometheus exposition-format conformance helpers (exposed for tests).
// Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*, label names
// [a-zA-Z_][a-zA-Z0-9_]*; out-of-charset bytes become '_' and a leading
// digit gets a '_' prefix. Registration sanitizes names, so every emitted
// family is valid no matter what call sites pass in.
std::string SanitizeMetricName(const std::string& name);
std::string SanitizeLabelName(const std::string& name);
// HELP text escaping: backslash -> \\ and line feed -> \n (spec rules).
std::string EscapeHelpText(const std::string& help);
// Label value escaping: backslash -> \\, double quote -> \", line feed -> \n.
std::string EscapeLabelValue(const std::string& value);
// Serializes sanitized/escaped labels as {k1="v1",k2="v2"}; "" when empty.
std::string FormatLabels(const MetricLabels& labels);

namespace obs_internal {

// Thread-local lookup table mapping an instrument's unique id to this
// thread's cell. Ids are never reused, so a destroyed instrument (only ever
// test-local ones; registry instruments are immortal) can never alias a live
// one.
void* TlsCell(uint64_t id);
void SetTlsCell(uint64_t id, void* cell);
uint64_t NextInstrumentId();

}  // namespace obs_internal

// Monotonically increasing event count.
class Counter {
 public:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};

    // Relaxed read-add-store: the cell is thread-exclusive, so this never
    // loses updates and never needs a lock prefix.
    void Add(uint64_t delta) {
      value.store(value.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
    }
    uint64_t Load() const { return value.load(std::memory_order_relaxed); }
    void Store(uint64_t v) { value.store(v, std::memory_order_relaxed); }
  };

  Counter(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

  // This thread's private cell; registers it on first use. Hot paths hoist
  // the returned reference into their own thread-local state.
  Cell& LocalCell();

  void Add(uint64_t delta = 1) { LocalCell().Add(delta); }

  // Merged total over every thread's cell.
  uint64_t Value() const;

  // Zeroes every cell (for tests; racy against concurrent writers by design).
  void Reset();

 private:
  const std::string name_;
  const std::string help_;
  const uint64_t id_ = obs_internal::NextInstrumentId();
  mutable std::mutex mu_;                // guards cells_ structure
  std::forward_list<Cell> cells_;        // stable addresses, one per thread
};

// Last-write-wins instantaneous value. Optionally carries a label set (the
// registry keys labeled gauges by (family, labels), so one family can hold
// e.g. a per-job series); Set/Value are plain relaxed atomics either way, so
// a live scraper thread can read while the engine thread writes.
class Gauge {
 public:
  Gauge(std::string name, std::string help, MetricLabels labels = {})
      : name_(std::move(name)), help_(std::move(help)), labels_(std::move(labels)) {}

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  const MetricLabels& labels() const { return labels_; }

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  const std::string name_;
  const std::string help_;
  const MetricLabels labels_;
  std::atomic<double> value_{0.0};
};

// Log-bucketed histogram of non-negative samples (latencies in seconds).
class Histogram {
 public:
  // 8 linear sub-buckets per power of two: relative bucket width <= 12.5%.
  static constexpr int kSubBucketBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  // Covered range: [2^-30, 2^30) seconds ~ [0.93 ns, 34 years); bucket 0
  // catches everything below (non-positive values included) and the last
  // bucket everything at or above.
  static constexpr int kMinExponent = -30;
  static constexpr int kMaxExponent = 30;
  static constexpr size_t kBucketCount =
      2 + static_cast<size_t>(kMaxExponent - kMinExponent) * kSubBuckets;

  struct Cell {
    std::array<std::atomic<uint64_t>, kBucketCount> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};

    // Relaxed fetch_add (C++20 supports it for atomic<double> too): cells are
    // normally thread-exclusive like Counter's, but an update can never be
    // lost even if a caller shares a histogram reference across threads.
    void Record(double v) {
      buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
      count.fetch_add(1, std::memory_order_relaxed);
      sum.fetch_add(v, std::memory_order_relaxed);
    }
  };

  Histogram(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

  static size_t BucketIndex(double v);
  static double BucketLowerBound(size_t index);
  static double BucketUpperBound(size_t index);  // +inf for the last bucket

  Cell& LocalCell();
  void Record(double v) { LocalCell().Record(v); }

  uint64_t Count() const;
  double Sum() const;
  // Per-bucket counts merged over every thread's cell.
  std::vector<uint64_t> MergedBuckets() const;
  // Nearest-rank quantile over the merged buckets: linearly interpolates the
  // position of sample number max(1, ceil(q * count)) within its bucket
  // (a pure function of the merged bucket counts, so shard-merge invariant).
  // 0 when empty.
  double Quantile(double q) const;

  void Reset();

 private:
  const std::string name_;
  const std::string help_;
  const uint64_t id_ = obs_internal::NextInstrumentId();
  mutable std::mutex mu_;
  std::forward_list<Cell> cells_;
};

enum class MetricsFormat : uint8_t {
  kAuto = 0,        // by file extension: .json/.jsonl -> JSONL, else Prometheus
  kPrometheus = 1,  // text exposition format
  kJsonl = 2,       // one JSON object per metric per line
};

// Name-keyed instrument store. Get* returns the existing instrument when the
// name is already registered (the help string of the first registration
// wins), so call sites can cache references without coordination.
class MetricsRegistry {
 public:
  // Leaked process-wide instance (never destroyed; see file header).
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name, const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const std::string& help = "");
  // Labeled gauge: one instrument per (family, label set). Same first-help-
  // wins rule per family; the exposition emits HELP/TYPE once per family
  // followed by every labeled sample.
  Gauge& GetGauge(const std::string& name, const MetricLabels& labels,
                  const std::string& help);
  Histogram& GetHistogram(const std::string& name, const std::string& help = "");

  // Prometheus text exposition of every instrument, sorted by name.
  // Histograms emit cumulative `_bucket{le="..."}` lines for non-empty
  // buckets plus `_sum` / `_count`.
  std::string PrometheusText() const;
  // One JSON object per metric per line; histograms carry count/sum and
  // p50/p99/p999.
  std::string JsonLines() const;
  // Writes the chosen exposition; kAuto picks by extension.
  bool WriteFile(const std::string& path, MetricsFormat format = MetricsFormat::kAuto) const;

  // Zeroes every registered instrument (registrations are kept).
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  // std::map keeps exposition output deterministically name-sorted. Gauges
  // are keyed (family, serialized labels) so one family's label sets stay
  // contiguous -- HELP/TYPE must be emitted exactly once per family even when
  // another family name sorts between "name" and "name{...}".
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::pair<std::string, std::string>, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace faro

#endif  // SRC_OBS_METRICS_H_
