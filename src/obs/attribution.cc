#include "src/obs/attribution.h"

namespace faro {

const char* LossCauseName(size_t index) {
  static const char* const kNames[kNumLossCauses] = {
      "queue_wait",     "cold_start", "drop_admission", "fault_capacity",
      "actuation",      "ladder_fallback", "unattributed",
  };
  return index < kNumLossCauses ? kNames[index] : "invalid";
}

std::array<double, kNumLossCauses> AttributeLostUtility(
    double lost, const AttributionInputs& in) {
  std::array<double, kNumLossCauses> out{};
  if (!(lost > 0.0)) {
    return out;
  }
  // Dimensionless, non-negative evidence weights, one per attributable cause
  // (enum order). Normalisers guard against empty windows and zero SLOs.
  double w[kNumLossCauses - 1] = {};
  if (in.arrivals > 0.0 && in.slo_s > 0.0) {
    w[static_cast<size_t>(LossCause::kQueueWait)] =
        in.wait_seconds / (in.arrivals * in.slo_s);
  }
  if (in.window_s > 0.0) {
    w[static_cast<size_t>(LossCause::kColdStart)] =
        in.cold_start_seconds / in.window_s;
    w[static_cast<size_t>(LossCause::kFaultCapacity)] =
        in.fault_deficit_seconds / in.window_s;
  }
  if (in.arrivals > 0.0) {
    w[static_cast<size_t>(LossCause::kDropAdmission)] = in.drops / in.arrivals;
  }
  w[static_cast<size_t>(LossCause::kActuation)] = in.actuation_units;
  w[static_cast<size_t>(LossCause::kLadderFallback)] = in.ladder_units;

  double total = 0.0;
  for (size_t i = 0; i + 1 < kNumLossCauses; ++i) {
    total += w[i];
  }
  const size_t unattributed = static_cast<size_t>(LossCause::kUnattributed);
  if (!(total > 0.0)) {
    out[unattributed] = lost;
    return out;
  }
  // Proportional split. The shares sum to `lost` up to a few ulp, so the
  // Sterbenz residual below closes the sum bit-exactly (see header).
  double attributed = 0.0;
  for (size_t i = 0; i + 1 < kNumLossCauses; ++i) {
    out[i] = lost * (w[i] / total);
    attributed += out[i];
  }
  out[unattributed] = lost - attributed;
  return out;
}

}  // namespace faro
