#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <tuple>

namespace faro {
namespace {

constexpr double kUsPerSimSecond = 1e6;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Fixed sub-microsecond precision: enough for sim times (stored in seconds)
// and stable across platforms.
std::string FormatTs(double us) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

bool CanonicalLess(const TraceEvent& a, const TraceEvent& b) {
  const int a_meta = a.phase == 'M' ? 0 : 1;
  const int b_meta = b.phase == 'M' ? 0 : 1;
  return std::tie(a.pid, a_meta, a.ts_us, a.tid, a.cat, a.name, a.dur_us, a.phase) <
         std::tie(b.pid, b_meta, b.ts_us, b.tid, b.cat, b.name, b.dur_us, b.phase);
}

}  // namespace

Tracer::Tracer(size_t max_events)
    : max_events_(max_events), epoch_(std::chrono::steady_clock::now()) {}

uint32_t Tracer::NewProcess(const std::string& name) {
  TraceEvent meta;
  meta.name = "process_name";
  meta.phase = 'M';
  meta.arg = name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    meta.pid = next_pid_++;
    // Metadata bypasses the event cap: a handful of process names must
    // survive even when an earlier run's spans have filled the buffer, or
    // later runs render as anonymous pids.
    events_.push_back(meta);
    return meta.pid;
  }
}

void Tracer::Add(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

double Tracer::WallNowUs() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   epoch_)
      .count();
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = events_;
  }
  std::stable_sort(out.begin(), out.end(), CanonicalLess);
  return out;
}

std::vector<TraceEvent> Tracer::Events(TraceClock clock) const {
  std::vector<TraceEvent> all = Events();
  std::vector<TraceEvent> out;
  out.reserve(all.size());
  for (TraceEvent& event : all) {
    if (event.clock == clock || event.phase == 'M') {
      out.push_back(std::move(event));
    }
  }
  return out;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string Tracer::ChromeTraceJson() const {
  const std::vector<TraceEvent> events = Events();
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) {
      out << ',';
    }
    first = false;
    out << "\n{\"name\":\"" << JsonEscape(event.name) << "\",\"ph\":\"" << event.phase
        << "\",\"pid\":" << event.pid << ",\"tid\":" << event.tid;
    if (event.phase == 'M') {
      out << ",\"args\":{\"name\":\"" << JsonEscape(event.arg) << "\"}}";
      continue;
    }
    out << ",\"cat\":\"" << JsonEscape(event.cat) << "\",\"ts\":" << FormatTs(event.ts_us);
    if (event.phase == 'X') {
      out << ",\"dur\":" << FormatTs(event.dur_us);
    } else if (event.phase == 'i') {
      out << ",\"s\":\"t\"";  // thread-scoped instant
    }
    out << '}';
  }
  out << "\n]}\n";
  return out.str();
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << ChromeTraceJson();
  return static_cast<bool>(out);
}

void TraceSession::SimSpan(uint32_t tid, const std::string& name, const std::string& cat,
                           double start_s, double end_s) const {
  if (tracer == nullptr) {
    return;
  }
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.phase = 'X';
  event.clock = TraceClock::kSim;
  event.pid = pid;
  event.tid = tid;
  event.ts_us = start_s * kUsPerSimSecond;
  event.dur_us = (end_s - start_s) * kUsPerSimSecond;
  tracer->Add(std::move(event));
}

void TraceSession::SimInstant(uint32_t tid, const std::string& name,
                              const std::string& cat, double ts_s) const {
  if (tracer == nullptr) {
    return;
  }
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.phase = 'i';
  event.clock = TraceClock::kSim;
  event.pid = pid;
  event.tid = tid;
  event.ts_us = ts_s * kUsPerSimSecond;
  tracer->Add(std::move(event));
}

void TraceSession::WallSpanSince(uint32_t tid, const std::string& name,
                                 const std::string& cat, double start_us) const {
  if (tracer == nullptr) {
    return;
  }
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.phase = 'X';
  event.clock = TraceClock::kWall;
  event.pid = pid;
  event.tid = tid;
  event.ts_us = start_us;
  event.dur_us = tracer->WallNowUs() - start_us;
  tracer->Add(std::move(event));
}

}  // namespace faro
