#include "src/obs/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

namespace faro {
namespace obs_internal {

namespace {

// One entry per (instrument, thread) pair this thread has touched. A handful
// of instruments exist, so a linear scan beats a hash map and keeps the
// lookup allocation-free after the first insert.
thread_local std::vector<std::pair<uint64_t, void*>> tls_cells;

}  // namespace

void* TlsCell(uint64_t id) {
  for (const auto& [cell_id, cell] : tls_cells) {
    if (cell_id == id) {
      return cell;
    }
  }
  return nullptr;
}

void SetTlsCell(uint64_t id, void* cell) { tls_cells.emplace_back(id, cell); }

uint64_t NextInstrumentId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace obs_internal

namespace {

// Shortest representation that round-trips a double; avoids "1e+06"-style
// noise for the integral values metric labels usually hold.
std::string FormatDouble(double v) {
  if (std::isnan(v)) {
    return "NaN";
  }
  if (std::isinf(v)) {
    return v > 0 ? "+Inf" : "-Inf";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[64];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, v);
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == v) {
      return candidate;
    }
  }
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    if (alpha || c == '_' || c == ':' || (digit && i > 0)) {
      out.push_back(c);
    } else if (digit) {
      out.push_back('_');  // leading digit
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty()) {
    out = "_";
  }
  return out;
}

std::string SanitizeLabelName(const std::string& name) {
  std::string out = SanitizeMetricName(name);
  for (char& c : out) {
    if (c == ':') {
      c = '_';  // label names have no colon in their charset
    }
  }
  return out;
}

std::string EscapeHelpText(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string FormatLabels(const MetricLabels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += SanitizeLabelName(labels[i].first);
    out += "=\"";
    out += EscapeLabelValue(labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

Counter::Cell& Counter::LocalCell() {
  if (void* cell = obs_internal::TlsCell(id_)) {
    return *static_cast<Cell*>(cell);
  }
  std::lock_guard<std::mutex> lock(mu_);
  cells_.emplace_front();
  Cell* cell = &cells_.front();
  obs_internal::SetTlsCell(id_, cell);
  return *cell;
}

uint64_t Counter::Value() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.Load();
  }
  return total;
}

void Counter::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Cell& cell : cells_) {
    cell.Store(0);
  }
}

size_t Histogram::BucketIndex(double v) {
  // NaN, non-positive, and subnormal values all fail this comparison and land
  // in the underflow bucket.
  if (!(v >= std::ldexp(1.0, kMinExponent))) {
    return 0;
  }
  if (v >= std::ldexp(1.0, kMaxExponent)) {
    return kBucketCount - 1;
  }
  // v is a positive normal double in [2^kMinExponent, 2^kMaxExponent): the
  // IEEE-754 exponent field picks the octave and the top mantissa bits pick
  // the linear sub-bucket inside it.
  const uint64_t bits = std::bit_cast<uint64_t>(v);
  const int exponent = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
  const uint64_t sub = (bits >> (52 - kSubBucketBits)) & (kSubBuckets - 1);
  return 1 + static_cast<size_t>(exponent - kMinExponent) * kSubBuckets +
         static_cast<size_t>(sub);
}

double Histogram::BucketLowerBound(size_t index) {
  if (index == 0) {
    return 0.0;
  }
  if (index >= kBucketCount - 1) {
    return std::ldexp(1.0, kMaxExponent);
  }
  const size_t i = index - 1;
  const int exponent = kMinExponent + static_cast<int>(i / kSubBuckets);
  const double fraction = 1.0 + static_cast<double>(i % kSubBuckets) / kSubBuckets;
  return std::ldexp(fraction, exponent);
}

double Histogram::BucketUpperBound(size_t index) {
  if (index == 0) {
    return std::ldexp(1.0, kMinExponent);
  }
  if (index >= kBucketCount - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return BucketLowerBound(index + 1);
}

Histogram::Cell& Histogram::LocalCell() {
  if (void* cell = obs_internal::TlsCell(id_)) {
    return *static_cast<Cell*>(cell);
  }
  std::lock_guard<std::mutex> lock(mu_);
  cells_.emplace_front();
  Cell* cell = &cells_.front();
  obs_internal::SetTlsCell(id_, cell);
  return *cell;
}

uint64_t Histogram::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (const Cell& cell : cells_) {
    total += cell.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> Histogram::MergedBuckets() const {
  std::vector<uint64_t> merged(kBucketCount, 0);
  std::lock_guard<std::mutex> lock(mu_);
  for (const Cell& cell : cells_) {
    for (size_t b = 0; b < kBucketCount; ++b) {
      merged[b] += cell.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

double Histogram::Quantile(double q) const {
  const std::vector<uint64_t> merged = MergedBuckets();
  uint64_t total = 0;
  for (const uint64_t c : merged) {
    total += c;
  }
  if (total == 0) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  // Nearest-rank: sample number ceil(q * total) of the sorted samples, with a
  // floor of 1 so q=0 means the smallest sample.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kBucketCount; ++b) {
    cumulative += merged[b];
    if (cumulative >= rank) {
      if (b == 0) {
        // Underflow bucket: represent by half its upper bound.
        return 0.5 * BucketUpperBound(0);
      }
      if (b == kBucketCount - 1) {
        return BucketLowerBound(b);  // overflow: no finite upper bound
      }
      // Linear interpolation within the bucket: place the rank-th sample at
      // the centre of its 1/n slot assuming the bucket's samples are evenly
      // spread, so a single-sample bucket still lands on the midpoint. Depends
      // only on the merged counts, keeping the shard-merge equality exact.
      const uint64_t before = cumulative - merged[b];
      const double position =
          (static_cast<double>(rank - before) - 0.5) / static_cast<double>(merged[b]);
      const double lower = BucketLowerBound(b);
      return lower + position * (BucketUpperBound(b) - lower);
    }
  }
  return BucketLowerBound(kBucketCount - 1);
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Cell& cell : cells_) {
    for (auto& bucket : cell.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    cell.count.store(0, std::memory_order_relaxed);
    cell.sum.store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  // Deliberately leaked: see the file header for the lifetime rationale.
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

Counter& MetricsRegistry::GetCounter(const std::string& name, const std::string& help) {
  const std::string clean = SanitizeMetricName(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[clean];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>(clean, help);
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, const std::string& help) {
  return GetGauge(name, MetricLabels{}, help);
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, const MetricLabels& labels,
                                 const std::string& help) {
  const std::string clean = SanitizeMetricName(name);
  const std::string label_str = FormatLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[{clean, label_str}];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>(clean, help, labels);
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name, const std::string& help) {
  const std::string clean = SanitizeMetricName(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[clean];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(clean, help);
  }
  return *slot;
}

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    if (!counter->help().empty()) {
      out << "# HELP " << name << ' ' << EscapeHelpText(counter->help()) << '\n';
    }
    out << "# TYPE " << name << " counter\n";
    out << name << ' ' << counter->Value() << '\n';
  }
  // Gauges are keyed (family, labels): HELP/TYPE once per family, then every
  // labeled sample of that family.
  const std::string* last_family = nullptr;
  for (const auto& [key, gauge] : gauges_) {
    const std::string& name = key.first;
    if (last_family == nullptr || *last_family != name) {
      if (!gauge->help().empty()) {
        out << "# HELP " << name << ' ' << EscapeHelpText(gauge->help()) << '\n';
      }
      out << "# TYPE " << name << " gauge\n";
      last_family = &name;
    }
    out << name << key.second << ' ' << FormatDouble(gauge->Value()) << '\n';
  }
  for (const auto& [name, hist] : histograms_) {
    if (!hist->help().empty()) {
      out << "# HELP " << name << ' ' << EscapeHelpText(hist->help()) << '\n';
    }
    out << "# TYPE " << name << " histogram\n";
    const std::vector<uint64_t> buckets = hist->MergedBuckets();
    uint64_t cumulative = 0;
    for (size_t b = 0; b + 1 < buckets.size(); ++b) {
      if (buckets[b] == 0) {
        continue;  // sparse exposition: only buckets that saw samples
      }
      cumulative += buckets[b];
      out << name << "_bucket{le=\"" << FormatDouble(Histogram::BucketUpperBound(b))
          << "\"} " << cumulative << '\n';
    }
    cumulative += buckets.back();  // overflow bucket folds into +Inf
    out << name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
    out << name << "_sum " << FormatDouble(hist->Sum()) << '\n';
    out << name << "_count " << hist->Count() << '\n';
  }
  return out.str();
}

std::string MetricsRegistry::JsonLines() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    out << "{\"metric\":\"" << JsonEscape(name) << "\",\"type\":\"counter\",\"value\":"
        << counter->Value() << "}\n";
  }
  for (const auto& [key, gauge] : gauges_) {
    double v = gauge->Value();
    if (!std::isfinite(v)) {
      v = 0.0;  // keep the line valid JSON
    }
    out << "{\"metric\":\"" << JsonEscape(key.first + key.second)
        << "\",\"type\":\"gauge\",\"value\":" << FormatDouble(v) << "}\n";
  }
  for (const auto& [name, hist] : histograms_) {
    out << "{\"metric\":\"" << JsonEscape(name) << "\",\"type\":\"histogram\",\"count\":"
        << hist->Count() << ",\"sum\":" << FormatDouble(hist->Sum())
        << ",\"p50\":" << FormatDouble(hist->Quantile(0.5))
        << ",\"p99\":" << FormatDouble(hist->Quantile(0.99))
        << ",\"p999\":" << FormatDouble(hist->Quantile(0.999)) << "}\n";
  }
  return out.str();
}

bool MetricsRegistry::WriteFile(const std::string& path, MetricsFormat format) const {
  if (format == MetricsFormat::kAuto) {
    const auto dot = path.rfind('.');
    const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
    format = (ext == ".json" || ext == ".jsonl") ? MetricsFormat::kJsonl
                                                 : MetricsFormat::kPrometheus;
  }
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << (format == MetricsFormat::kJsonl ? JsonLines() : PrometheusText());
  return static_cast<bool>(out);
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [key, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, hist] : histograms_) {
    hist->Reset();
  }
}

}  // namespace faro
