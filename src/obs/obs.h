// Observability configuration and sinks.
//
// ObsConfig rides on ExperimentSetup (src/sim/harness.h); the default is the
// null sink -- no tracer, no metrics file -- so instrumented code costs one
// predictable branch per site. Benches install a process-wide default from
// `--metrics-out` / `--trace-out` flags (bench/bench_util.h) before building
// their setups, and the same flags are honoured as FARO_METRICS_OUT /
// FARO_TRACE_OUT / FARO_AUDIT_OUT environment variables.

#ifndef SRC_OBS_OBS_H_
#define SRC_OBS_OBS_H_

#include <cstddef>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace faro {

struct ObsConfig {
  // Metrics exposition file; empty = no metrics sink. Format picked by
  // extension (.json/.jsonl -> JSONL, else Prometheus text) unless forced.
  std::string metrics_out;
  MetricsFormat metrics_format = MetricsFormat::kAuto;
  // Force registry instruments on even without a metrics file (tests read the
  // registry directly).
  bool metrics = false;

  // Chrome trace_event sink; empty = no trace sink.
  std::string trace_out;
  // Only this trial index of each policy run gets a trace session: trial 0's
  // sim events are deterministic on their own, while tracing every trial of a
  // parallel fan-out would interleave runs and blow up the buffer.
  size_t trace_trial = 0;
  // Event-buffer cap for the global tracer (frozen at its first use); also
  // settable via FARO_TRACE_MAX_EVENTS. Overflow is counted and reported,
  // never silent. Metadata (process names) bypasses the cap.
  size_t trace_max_events = Tracer::kDefaultMaxEvents;
  // Test/embedder override: record into this tracer instead of the lazily
  // created global one (and independent of trace_out).
  Tracer* tracer = nullptr;

  // Decision audit JSONL sink (src/obs/slo.h); empty = no audit sink. Like
  // trace_out, only trial `trace_trial` of each policy run is audited, so the
  // log stays deterministic under parallel trial fan-out. Also settable via
  // FARO_AUDIT_OUT.
  std::string audit_out;

  bool tracing() const { return tracer != nullptr || !trace_out.empty(); }
  bool auditing() const { return !audit_out.empty(); }
  bool metrics_enabled() const { return metrics || !metrics_out.empty(); }
  // The tracer sessions should record into: the override if set, else the
  // process-global tracer. nullptr when tracing is off.
  Tracer* ResolveTracer() const;
};

// Process-global tracer backing trace_out sinks (leaked, like the registry).
Tracer& GlobalTracer();

// Process-wide default picked up by ExperimentSetup's member initializer.
// Initialized from FARO_METRICS_OUT / FARO_TRACE_OUT on first use.
const ObsConfig& DefaultObsConfig();
void SetDefaultObsConfig(const ObsConfig& config);

// Writes the configured sinks (metrics exposition and/or Chrome trace) and
// prints a one-line note per file -- including the dropped-event count if the
// trace buffer capped out. Returns false if any configured sink failed.
bool WriteObsOutputs(const ObsConfig& config);

}  // namespace faro

#endif  // SRC_OBS_OBS_H_
