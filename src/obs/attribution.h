// Causal attribution of lost utility: decomposes each metrics window's lost
// utility (1 - utility, clamped at 0) into additive cause buckets so a run
// can report not just *that* a job missed its SLO but *why*.
//
// Buckets (enum order is the canonical summation order everywhere):
//   queue-wait        requests waited in the router queue before service
//   cold-start        replica provisioning delay (incl. fault stragglers)
//   drop/admission    requests tail-dropped at the router queue limit
//   fault-capacity    replica-seconds lost to injected faults
//   actuation         scale-up replicas denied/deferred by actuation faults
//   ladder-fallback   degraded autoscaler decisions (warm rescale, capacity
//                     heuristic, forecast sanity fallback)
//   unattributed      residual (loss with no recorded evidence, plus the
//                     floating-point closure term; see below)
//
// Attribution model: each window accumulates non-negative *evidence weights*
// per cause (normalised counters: wait mass per SLO-second of arrivals, drop
// fraction, cold-start / fault seconds per window second, denied-replica and
// degraded-decision counts). The window's lost utility is split across the
// six causes in proportion to their weights; with no evidence at all the
// whole loss is unattributed.
//
// Bit-exactness invariant: the *left-to-right* sum of the returned array is
// bit-identical to `lost`. The six proportional shares mathematically sum to
// `lost`, so their floating-point sum S6 lies within a few ulp of it -- in
// particular within [lost/2, 2*lost] -- and by Sterbenz's lemma `lost - S6`
// is then computed exactly. Storing that difference as the unattributed
// residual makes S6 + (lost - S6) reconstruct `lost` with no rounding.
// Consumers (tests, CI scripts, `awk`/Python `sum()`) must therefore sum in
// enum order; the residual can be a negative value of ulp magnitude when S6
// rounded up.

#ifndef SRC_OBS_ATTRIBUTION_H_
#define SRC_OBS_ATTRIBUTION_H_

#include <array>
#include <cstddef>

namespace faro {

enum class LossCause : int {
  kQueueWait = 0,
  kColdStart = 1,
  kDropAdmission = 2,
  kFaultCapacity = 3,
  kActuation = 4,
  kLadderFallback = 5,
  kUnattributed = 6,
};

inline constexpr size_t kNumLossCauses = 7;

// Array index for a cause (the enum is scoped, so arrays need the cast).
inline constexpr size_t CauseIndex(LossCause cause) { return static_cast<size_t>(cause); }

// Stable snake_case identifier, usable in metric names and CSV headers.
const char* LossCauseName(size_t index);
inline const char* LossCauseName(LossCause cause) {
  return LossCauseName(static_cast<size_t>(cause));
}

// Per-window evidence accumulated by the engines between window closes.
struct AttributionInputs {
  double arrivals = 0.0;               // requests that arrived this window
  double drops = 0.0;                  // requests tail-dropped this window
  double wait_seconds = 0.0;           // summed queue wait of served requests
  double cold_start_seconds = 0.0;     // provisioning delay incurred
  double fault_deficit_seconds = 0.0;  // replica-seconds lost to faults
  double actuation_units = 0.0;        // replicas denied/deferred by actuation
  double ladder_units = 0.0;           // degraded decision cycles
  double window_s = 60.0;              // metrics window length
  double slo_s = 1.0;                  // the job's latency SLO
};

// Splits `lost` (the window's lost utility, >= 0) across the seven buckets in
// proportion to the evidence weights. Guarantees the left-to-right sum of the
// result is bit-identical to `lost` (see file header). `lost <= 0` returns
// all zeros.
std::array<double, kNumLossCauses> AttributeLostUtility(
    double lost, const AttributionInputs& inputs);

}  // namespace faro

#endif  // SRC_OBS_ATTRIBUTION_H_
