// Span-based tracer emitting Chrome trace_event JSON (load the file in
// Perfetto / chrome://tracing to see the per-request and per-cycle timelines).
//
// Two clock domains coexist in one trace:
//   - kSim: timestamps are simulated seconds (converted to trace microseconds)
//     -- the per-job request lifecycle (queue_wait, cold_start, service,
//     drops) lives here. Sim events are a pure function of the run, so the
//     canonically sorted event list is bit-identical whatever the thread
//     count (tests/obs_trace_test.cc proves it at 1/2/8 threads);
//   - kWall: timestamps are wall-clock microseconds since the tracer was
//     created -- the autoscaler decision cycle and the multi-start solver
//     tasks live here. Wall events are measurement only and excluded from the
//     determinism contract (which events exist can itself depend on the
//     schedule, e.g. solver tasks cancelled by an early exit).
//
// Each traced run (one policy x trial) gets its own trace "process" (pid) so
// Perfetto shows it as a separate track group; within a run, tid is the job
// index for request-lifecycle spans and kSolverTidBase + task index for
// solver tracks. Events are buffered centrally under a mutex -- spans are
// coarse (requests, solver starts, decision phases), so the lock is not a
// hot path; the registry in metrics.h is the lock-free layer.
//
// The buffer is capped (ObsConfig::trace_max_events); events beyond the cap
// are counted in dropped_events() and reported by the sink writer -- no
// silent truncation.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace faro {

enum class TraceClock : uint8_t { kSim = 0, kWall = 1 };

// Autoscaler / solver / fault tracks live above any realistic job index.
inline constexpr uint32_t kAutoscalerTid = 900;
inline constexpr uint32_t kFaultTid = 905;
inline constexpr uint32_t kSolverTidBase = 910;

struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'X';  // 'X' complete span, 'i' instant, 'M' metadata
  TraceClock clock = TraceClock::kSim;
  uint32_t pid = 0;
  uint32_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::string arg;  // metadata payload (process name) when phase == 'M'

  bool operator==(const TraceEvent&) const = default;
};

class Tracer {
 public:
  static constexpr size_t kDefaultMaxEvents = 1u << 20;

  explicit Tracer(size_t max_events = kDefaultMaxEvents);

  // Allocates the next pid and records its process_name metadata event.
  uint32_t NewProcess(const std::string& name);

  // Buffers one event; drops (and counts) once the cap is reached.
  void Add(TraceEvent event);

  // Wall-clock microseconds since this tracer was created.
  double WallNowUs() const;

  // Canonically sorted copy of the buffer: (pid, metadata-first, ts, tid,
  // cat, name, dur). The sort makes serialized output independent of the
  // order concurrent writers appended in.
  std::vector<TraceEvent> Events() const;
  std::vector<TraceEvent> Events(TraceClock clock) const;

  size_t size() const;
  uint64_t dropped_events() const { return dropped_.load(std::memory_order_relaxed); }

  // {"displayTimeUnit":"ms","traceEvents":[...]} -- valid JSON, Perfetto- and
  // chrome://tracing-loadable.
  std::string ChromeTraceJson() const;
  bool WriteChromeTrace(const std::string& path) const;

 private:
  const size_t max_events_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  uint32_t next_pid_ = 1;
  std::atomic<uint64_t> dropped_{0};
};

// Binding of instrumented code to one tracer process track. Copyable and
// cheap; a null tracer turns every call into a single-branch no-op, so
// instrumentation can stay unconditionally in place.
struct TraceSession {
  Tracer* tracer = nullptr;
  uint32_t pid = 0;

  bool on() const { return tracer != nullptr; }

  // Sim-domain span/instant; timestamps in simulated seconds.
  void SimSpan(uint32_t tid, const std::string& name, const std::string& cat,
               double start_s, double end_s) const;
  void SimInstant(uint32_t tid, const std::string& name, const std::string& cat,
                  double ts_s) const;

  // Wall-domain helpers; timestamps in tracer microseconds (WallNowUs).
  double WallNowUs() const { return tracer != nullptr ? tracer->WallNowUs() : 0.0; }
  void WallSpanSince(uint32_t tid, const std::string& name, const std::string& cat,
                     double start_us) const;
};

// RAII wall-clock span covering its own scope (measurement only; see the
// determinism note in the file header).
class ScopedWallSpan {
 public:
  ScopedWallSpan(const TraceSession& session, uint32_t tid, const char* name,
                 const char* cat)
      : session_(session), tid_(tid), name_(name), cat_(cat),
        start_us_(session.WallNowUs()) {}
  ~ScopedWallSpan() {
    if (session_.on()) {
      session_.WallSpanSince(tid_, name_, cat_, start_us_);
    }
  }
  ScopedWallSpan(const ScopedWallSpan&) = delete;
  ScopedWallSpan& operator=(const ScopedWallSpan&) = delete;

 private:
  const TraceSession session_;
  const uint32_t tid_;
  const char* const name_;
  const char* const cat_;
  const double start_us_;
};

}  // namespace faro

#endif  // SRC_OBS_TRACE_H_
