#include "src/obs/slo.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace faro {
namespace {

// Shortest decimal form that round-trips the double (same policy as the
// metrics exposition, local copy because that helper is file-internal).
std::string AuditFormatDouble(double v) {
  char buf[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == v) {
      break;
    }
  }
  return buf;
}

std::string AuditJsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

void SloLedger::PushSample(const Sample& sample) {
  if (count_ == ring_.size()) {
    // Grow by re-laying the retained window out from position 0. Eviction by
    // horizon bounds the steady-state size (360 for 6 h of one-minute
    // windows), so growth happens O(log) times per run.
    std::vector<Sample> bigger(std::max<size_t>(64, ring_.size() * 2));
    for (size_t i = 0; i < count_; ++i) {
      bigger[i] = At(i);
    }
    ring_ = std::move(bigger);
    begin_ = 0;
  }
  ring_[(begin_ + count_) % ring_.size()] = sample;
  ++count_;
  slow_arrivals_ += sample.arrivals;
  slow_violations_ += sample.violations;
  fast_arrivals_ += sample.arrivals;
  fast_violations_ += sample.violations;
}

void SloLedger::EvictExpired(double end_s) {
  // A sample contributes to a window iff end_s > horizon; evict the rest. The
  // slow eviction drops the sample entirely (subtracting it from the fast
  // sums too if it was still counted there -- only possible when
  // fast_window_s >= slow_window_s, where the old scan was also capped at the
  // retained set); the fast eviction merely advances the suffix boundary.
  const double slow_horizon = end_s - config_.slow_window_s;
  while (count_ > 0 && ring_[begin_].end_s <= slow_horizon) {
    const Sample& oldest = ring_[begin_];
    slow_arrivals_ -= oldest.arrivals;
    slow_violations_ -= oldest.violations;
    if (fast_lag_ == 0) {
      fast_arrivals_ -= oldest.arrivals;
      fast_violations_ -= oldest.violations;
    } else {
      --fast_lag_;
    }
    begin_ = (begin_ + 1) % ring_.size();
    --count_;
  }
  const double fast_horizon = end_s - config_.fast_window_s;
  while (fast_lag_ < count_ && At(fast_lag_).end_s <= fast_horizon) {
    const Sample& expired = At(fast_lag_);
    fast_arrivals_ -= expired.arrivals;
    fast_violations_ -= expired.violations;
    ++fast_lag_;
  }
}

SloLedger::Observation SloLedger::Observe(double end_s, double arrivals,
                                          double violations) {
  total_arrivals_ += arrivals;
  total_violations_ += violations;
  PushSample(Sample{end_s, arrivals, violations});
  EvictExpired(end_s);

  Observation obs;
  obs.burn_fast = Burn(fast_violations_, fast_arrivals_, config_.allowance);
  obs.burn_slow = Burn(slow_violations_, slow_arrivals_, config_.allowance);
  obs.alert_fast = obs.burn_fast >= config_.fast_threshold;
  obs.alert_slow = obs.burn_slow >= config_.slow_threshold;
  max_burn_fast_ = std::max(max_burn_fast_, obs.burn_fast);
  max_burn_slow_ = std::max(max_burn_slow_, obs.burn_slow);
  // Count alert onsets (below -> at-or-above transitions), not firing windows.
  if (obs.alert_fast && !fast_firing_) {
    ++alerts_fast_;
    if (first_alert_s_ < 0.0) first_alert_s_ = end_s;
  }
  if (obs.alert_slow && !slow_firing_) {
    ++alerts_slow_;
    if (first_alert_s_ < 0.0) first_alert_s_ = end_s;
  }
  fast_firing_ = obs.alert_fast;
  slow_firing_ = obs.alert_slow;
  return obs;
}

double SloLedger::budget_remaining_frac() const {
  const double allowed = budget_allowed();
  if (!(allowed > 0.0)) {
    return 1.0;
  }
  return 1.0 - total_violations_ / allowed;
}

void AuditLog::Append(DecisionAuditRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
}

size_t AuditLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void AuditLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

std::string AuditLog::ToJsonl() const {
  std::vector<DecisionAuditRecord> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = records_;
  }
  std::stable_sort(snapshot.begin(), snapshot.end(),
                   [](const DecisionAuditRecord& a, const DecisionAuditRecord& b) {
                     if (a.label != b.label) return a.label < b.label;
                     return a.cycle < b.cycle;
                   });
  std::ostringstream out;
  for (const DecisionAuditRecord& r : snapshot) {
    out << "{\"label\":\"" << AuditJsonEscape(r.label) << "\""
        << ",\"time_s\":" << AuditFormatDouble(r.time_s)
        << ",\"cycle\":" << r.cycle
        << ",\"num_jobs\":" << r.num_jobs
        << ",\"forecast_peak_total\":" << AuditFormatDouble(r.forecast_peak_total)
        << ",\"forecast_mean_total\":" << AuditFormatDouble(r.forecast_mean_total)
        << ",\"rung\":\"" << AuditJsonEscape(r.rung) << "\""
        << ",\"hierarchical\":" << (r.hierarchical ? "true" : "false")
        << ",\"forecast_fallback\":" << (r.forecast_fallback ? "true" : "false")
        << ",\"starts\":" << r.starts
        << ",\"evaluations\":" << r.evaluations
        << ",\"deadline_misses\":" << r.deadline_misses
        << ",\"replicas_total\":" << AuditFormatDouble(r.replicas_total)
        << ",\"drop_rate_mean\":" << AuditFormatDouble(r.drop_rate_mean)
        << ",\"actuation_generation\":" << r.actuation_generation
        << ",\"actuation_convergence_s\":" << AuditFormatDouble(r.actuation_convergence_s)
        << ",\"actuation_retries\":" << r.actuation_retries
        << ",\"actuation_fenced\":" << r.actuation_fenced
        << "}\n";
  }
  return out.str();
}

bool AuditLog::WriteJsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << ToJsonl();
  return static_cast<bool>(out);
}

AuditLog& GlobalAuditLog() {
  static AuditLog* log = new AuditLog();
  return *log;
}

}  // namespace faro
