// Per-job SLO attainment ledger and autoscaler decision audit log.
//
// SloLedger is an error-budget accountant in the SRE mold: the budget is the
// violation mass a job may spend per window (allowance = 1 - percentile, so
// 1% of arrivals for a p99 SLO), and burn rate is the trailing violation rate
// divided by that allowance. Two trailing windows are tracked -- a fast 1 h
// window alerting at burn >= 14.4 (budget gone in ~2 days) and a slow 6 h
// window alerting at burn >= 6 (budget gone in ~5 days), the multi-window
// thresholds from the SRE workbook. All clocks are *simulated* time, so every
// number the ledger produces is deterministic and bit-identical across
// thread/shard counts.
//
// AuditLog collects one DecisionAuditRecord per autoscaler decision cycle
// (forecast in, solver outcome, degradation-ladder rung, telemetry deltas)
// and writes them as JSON Lines. Records are stable-sorted by (label, cycle)
// before writing, so the file is bit-identical no matter how trials or
// policies interleaved their appends. Only deterministic fields are recorded
// -- no wall-clock solve times -- matching the repo's determinism contract.

#ifndef SRC_OBS_SLO_H_
#define SRC_OBS_SLO_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace faro {

// Multi-window burn-rate parameters (SRE workbook defaults, in sim seconds).
struct SloLedgerConfig {
  double allowance = 0.01;        // violation budget per arrival (p99 -> 1%)
  double fast_window_s = 3600.0;  // 1 h
  double slow_window_s = 21600.0;  // 6 h
  double fast_threshold = 14.4;
  double slow_threshold = 6.0;
};

class SloLedger {
 public:
  struct Observation {
    double burn_fast = 0.0;
    double burn_slow = 0.0;
    bool alert_fast = false;
    bool alert_slow = false;
  };

  SloLedger() = default;
  explicit SloLedger(const SloLedgerConfig& config) : config_(config) {}

  // Idempotent per-job calibration (allowance = 1 - SLO percentile).
  void set_allowance(double allowance) { config_.allowance = allowance; }

  // Folds one closed metrics window into the ledger and returns the trailing
  // burn rates. `end_s` must be non-decreasing across calls.
  Observation Observe(double end_s, double arrivals, double violations);

  // Run totals.
  double budget_allowed() const { return config_.allowance * total_arrivals_; }
  double budget_consumed() const { return total_violations_; }
  // Fraction of the budget left; negative when overspent, 1 with no traffic.
  double budget_remaining_frac() const;
  uint64_t alerts_fast() const { return alerts_fast_; }
  uint64_t alerts_slow() const { return alerts_slow_; }
  double first_alert_s() const { return first_alert_s_; }  // -1 if never
  double max_burn_fast() const { return max_burn_fast_; }
  double max_burn_slow() const { return max_burn_slow_; }

  // Retained per-minute samples (everything inside the slow window).
  size_t window_samples() const { return count_; }

 private:
  struct Sample {
    double end_s;
    double arrivals;
    double violations;
  };

  // O(1)-per-Observe rolling evaluation over a ring buffer of the violation
  // series. The slow window is the whole retained ring; the fast window is
  // its trailing suffix (`fast_lag_` counts the retained-but-expired-for-fast
  // prefix). Sums are maintained incrementally by add-on-push and
  // subtract-on-evict; the simulator feeds integer request counts, whose
  // partial sums stay exact in doubles (< 2^53), so every burn rate -- and
  // every alert onset -- is bit-identical to a fresh front-to-back scan
  // (tests/obs_slo_test.cc cross-checks against a reference batch evaluator).
  const Sample& At(size_t logical) const {
    return ring_[(begin_ + logical) % ring_.size()];
  }
  void PushSample(const Sample& sample);
  void EvictExpired(double end_s);
  static double Burn(double violations, double arrivals, double allowance) {
    const double budget = allowance * arrivals;
    if (!(budget > 0.0)) {
      return 0.0;
    }
    return violations / budget;
  }

  SloLedgerConfig config_;
  std::vector<Sample> ring_;  // circular; grows only when a window overflows it
  size_t begin_ = 0;          // position of the oldest retained sample
  size_t count_ = 0;          // retained samples (== the slow-window set)
  size_t fast_lag_ = 0;       // oldest retained samples outside the fast window
  double slow_arrivals_ = 0.0;
  double slow_violations_ = 0.0;
  double fast_arrivals_ = 0.0;
  double fast_violations_ = 0.0;
  double total_arrivals_ = 0.0;
  double total_violations_ = 0.0;
  uint64_t alerts_fast_ = 0;
  uint64_t alerts_slow_ = 0;
  bool fast_firing_ = false;
  bool slow_firing_ = false;
  double first_alert_s_ = -1.0;
  double max_burn_fast_ = 0.0;
  double max_burn_slow_ = 0.0;
};

// One autoscaler decision cycle, deterministic fields only.
struct DecisionAuditRecord {
  std::string label;   // policy (and trial) identity; sort key with `cycle`
  double time_s = 0.0;  // sim time of the decision
  uint64_t cycle = 0;   // per-policy-instance decision counter
  uint64_t num_jobs = 0;
  double forecast_peak_total = 0.0;  // summed per-job forecast peak loads
  double forecast_mean_total = 0.0;  // summed per-job forecast mean loads
  std::string rung;  // "solve" | "warm_rescale" | "heuristic"
  bool hierarchical = false;
  bool forecast_fallback = false;  // forecast sanity guard tripped
  uint64_t starts = 0;             // multi-start launches this cycle
  uint64_t evaluations = 0;        // objective evaluations this cycle
  uint64_t deadline_misses = 0;    // this cycle
  double replicas_total = 0.0;     // summed decided replica targets
  double drop_rate_mean = 0.0;     // mean decided drop rate
  // --- reconciling actuator (src/actuate/) ---------------------------------
  // Filled by the engines' actuation records (label suffix "/actuate", one
  // per converged generation); zero/defaulted on plain decision records.
  uint64_t actuation_generation = 0;   // generation that converged
  double actuation_convergence_s = -1.0;  // publish-to-converge (sim seconds)
  uint64_t actuation_retries = 0;      // repair re-issues this generation
  uint64_t actuation_fenced = 0;       // cumulative stale publishes discarded
};

// Append-only, thread-safe decision log with a deterministic JSONL dump.
class AuditLog {
 public:
  void Append(DecisionAuditRecord record);
  size_t size() const;
  void Clear();
  // Stable-sorts a snapshot by (label, cycle) and writes one JSON object per
  // line. Returns false when the file cannot be opened.
  bool WriteJsonl(const std::string& path) const;
  std::string ToJsonl() const;

 private:
  mutable std::mutex mu_;
  std::vector<DecisionAuditRecord> records_;
};

// Leaked process-wide audit log, mirroring MetricsRegistry::Global(): bench
// mains point FaroConfig::audit here and WriteObsOutputs drains it.
AuditLog& GlobalAuditLog();

}  // namespace faro

#endif  // SRC_OBS_SLO_H_
