#include "src/obs/obs.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "src/obs/slo.h"

namespace faro {
namespace {

std::mutex g_default_mu;

ObsConfig& MutableDefault() {
  static ObsConfig* config = [] {
    auto* c = new ObsConfig();
    if (const char* env = std::getenv("FARO_METRICS_OUT")) {
      c->metrics_out = env;
    }
    if (const char* env = std::getenv("FARO_TRACE_OUT")) {
      c->trace_out = env;
    }
    if (const char* env = std::getenv("FARO_AUDIT_OUT")) {
      c->audit_out = env;
    }
    if (const char* env = std::getenv("FARO_TRACE_MAX_EVENTS")) {
      const long long parsed = std::atoll(env);
      if (parsed > 0) {
        c->trace_max_events = static_cast<size_t>(parsed);
      }
    }
    return c;
  }();
  return *config;
}

}  // namespace

Tracer& GlobalTracer() {
  // Leaked so late-exiting threads and atexit writers stay safe; the cap is
  // frozen at first use from the then-current default config.
  static Tracer* tracer = new Tracer(DefaultObsConfig().trace_max_events);
  return *tracer;
}

Tracer* ObsConfig::ResolveTracer() const {
  if (tracer != nullptr) {
    return tracer;
  }
  return trace_out.empty() ? nullptr : &GlobalTracer();
}

const ObsConfig& DefaultObsConfig() {
  std::lock_guard<std::mutex> lock(g_default_mu);
  return MutableDefault();
}

void SetDefaultObsConfig(const ObsConfig& config) {
  std::lock_guard<std::mutex> lock(g_default_mu);
  MutableDefault() = config;
}

bool WriteObsOutputs(const ObsConfig& config) {
  bool ok = true;
  if (!config.metrics_out.empty()) {
    if (MetricsRegistry::Global().WriteFile(config.metrics_out, config.metrics_format)) {
      std::fprintf(stderr, "[faro-obs] wrote metrics to %s\n", config.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "[faro-obs] FAILED to write metrics to %s\n",
                   config.metrics_out.c_str());
      ok = false;
    }
  }
  if (!config.trace_out.empty()) {
    const Tracer* tracer = config.ResolveTracer();
    if (tracer != nullptr && tracer->WriteChromeTrace(config.trace_out)) {
      std::fprintf(stderr, "[faro-obs] wrote trace to %s (%zu events", config.trace_out.c_str(),
                   tracer->size());
      if (tracer->dropped_events() > 0) {
        std::fprintf(stderr, ", %llu dropped at the %zu-event cap",
                     static_cast<unsigned long long>(tracer->dropped_events()),
                     config.trace_max_events);
      }
      std::fprintf(stderr, ")\n");
    } else {
      std::fprintf(stderr, "[faro-obs] FAILED to write trace to %s\n",
                   config.trace_out.c_str());
      ok = false;
    }
  }
  if (!config.audit_out.empty()) {
    const AuditLog& audit = GlobalAuditLog();
    if (audit.WriteJsonl(config.audit_out)) {
      std::fprintf(stderr, "[faro-obs] wrote decision audit to %s (%zu records)\n",
                   config.audit_out.c_str(), audit.size());
    } else {
      std::fprintf(stderr, "[faro-obs] FAILED to write decision audit to %s\n",
                   config.audit_out.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace faro
