// Deterministic, seed-driven chaos injection for the matched simulator.
//
// The paper's premise is a *fixed-size on-prem cluster*: capacity lost to a
// failure cannot be bought back from a cloud provider, so the autoscaler has
// to notice, re-plan, and survive. A FaultPlan describes everything that can
// go wrong underneath the control plane:
//
//  - scheduled events: node crash / drain / recover (all replicas placed on
//    the node die and the schedulable capacity shrinks until recovery) and
//    correlated replica-failure bursts;
//  - seeded stochastic processes: Poisson-ish correlated bursts, cold-start
//    stragglers (a fraction of scale-ups taking k x the mean), and actuation
//    faults (scale-up commands dropped, delayed, or partially applied -- the
//    K8s API flakiness every operator knows).
//
// Determinism contract: every draw comes from the injector's own RNG stream,
// seeded from (sim seed, plan seed) and advanced in simulation-event order.
// The same plan and seed therefore yield bit-identical fault schedules at any
// thread count, and an *inactive* plan draws nothing at all -- no-fault runs
// are bit-identical to a build without this subsystem.

#ifndef SRC_FAULTS_FAULTPLAN_H_
#define SRC_FAULTS_FAULTPLAN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace faro {

enum class FaultKind : uint8_t {
  kNodeCrash,     // node dies: replicas on it are lost, capacity shrinks
  kNodeDrain,     // node cordoned: replicas evicted gracefully, capacity shrinks
  kNodeRecover,   // node returns to the schedulable pool
  kReplicaBurst,  // correlated burst: a fraction of each job's replicas die
};

const char* FaultKindName(FaultKind kind);

// One scheduled fault. Node events name a node from SimConfig::nodes; burst
// events target one job by index (or every job with job = -1) and kill either
// a fraction of its ready replicas or an absolute count.
struct FaultEvent {
  double time_s = 0.0;
  FaultKind kind = FaultKind::kNodeCrash;
  std::string node;       // node events only
  int32_t job = -1;       // kReplicaBurst: job index, -1 = all jobs
  double fraction = 0.0;  // kReplicaBurst: fraction of ready replicas killed
  uint32_t count = 0;     // kReplicaBurst: absolute kill count when fraction == 0
};

struct FaultPlan {
  // Scheduled events, applied in (time, insertion-order) order.
  std::vector<FaultEvent> events;

  // --- Stochastic processes (all disabled at their zero defaults) ----------
  // Correlated replica-failure bursts: mean time between bursts (seconds);
  // each burst kills `burst_fraction` of every job's ready replicas at once
  // (a shared dependency failing -- image registry, storage, rack switch).
  double burst_mtbf_s = 0.0;
  double burst_fraction = 0.5;
  // Cold-start stragglers: this fraction of replica provisions takes
  // `straggler_multiplier` x the nominal cold start (image pulls, slow PVC
  // attach). 0 disables.
  double straggler_fraction = 0.0;
  double straggler_multiplier = 5.0;
  // Actuation faults, drawn once per scale-up command: the command is
  // silently dropped, applied after `actuation_delay_s`, or only half
  // applied. Probabilities must sum to <= 1; the remainder applies cleanly.
  double actuation_drop_prob = 0.0;
  double actuation_delay_prob = 0.0;
  double actuation_delay_s = 30.0;
  double actuation_partial_prob = 0.0;

  // Seed for the injector's private RNG stream (combined with the sim seed).
  uint64_t seed = 0x5eedfa17ull;

  // True when anything above can fire. An inactive plan costs zero RNG draws.
  bool active() const;

  // Empty string when the plan is well formed; otherwise a human-readable
  // description of the first problem found.
  std::string Validate() const;
};

// Counters of what the injector actually did during one run (zeros when the
// plan was inactive). Mirrored into RunResult so reports and tests can see
// the chaos that used to be invisible.
struct FaultStats {
  uint64_t replicas_killed = 0;  // every injection path, replica_mtbf_s included
  uint64_t node_crashes = 0;
  uint64_t node_drains = 0;
  uint64_t node_recoveries = 0;
  uint64_t bursts = 0;  // scheduled + stochastic correlated bursts
  uint64_t actuation_drops = 0;
  uint64_t actuation_delays = 0;
  uint64_t actuation_partials = 0;
  uint64_t cold_start_stragglers = 0;
};

// One line of the applied-fault log: what fired, when, against what. String
// kinds keep the log directly CSV-able and extensible to actuation faults.
struct AppliedFault {
  double time_s = 0.0;
  std::string what;    // "node_crash", "replica_burst", "actuation_drop", ...
  std::string target;  // node name or job name
  uint32_t count = 0;  // replicas killed / delayed / dropped

  bool operator==(const AppliedFault&) const = default;
};

// --- Named chaos scenarios (bench_fig17_chaos, chaos-smoke CI) -------------
//
// Four fixed scenarios spanning the fault model, parameterised only by the
// run length and the node pool so benches and tests stay in sync:
//   "node-crash"    one node crashes a quarter into the run, recovers at the
//                   midpoint -- the canonical capacity-loss-and-return arc;
//   "rolling-drain" nodes are drained and recovered one after another, like a
//                   rolling kernel upgrade;
//   "replica-burst" two correlated bursts kill half of every job's replicas,
//                   plus a stochastic burst process in between;
//   "flaky-api"     no capacity loss, but scale-ups are dropped / delayed /
//                   partially applied and a quarter of cold starts straggle.
const std::vector<std::string>& FaultScenarioNames();

// Builds the named scenario for a run of `duration_s` over `node_names`
// (may be empty for scenarios that do not touch nodes). Unknown names return
// an inactive plan.
FaultPlan MakeFaultScenario(const std::string& name, double duration_s,
                            const std::vector<std::string>& node_names);

}  // namespace faro

#endif  // SRC_FAULTS_FAULTPLAN_H_
