#include "src/faults/faultplan.h"

#include <algorithm>
#include <cmath>

namespace faro {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:
      return "node_crash";
    case FaultKind::kNodeDrain:
      return "node_drain";
    case FaultKind::kNodeRecover:
      return "node_recover";
    case FaultKind::kReplicaBurst:
      return "replica_burst";
  }
  return "unknown";
}

bool FaultPlan::active() const {
  return !events.empty() || burst_mtbf_s > 0.0 || straggler_fraction > 0.0 ||
         actuation_drop_prob > 0.0 || actuation_delay_prob > 0.0 ||
         actuation_partial_prob > 0.0;
}

std::string FaultPlan::Validate() const {
  for (const FaultEvent& event : events) {
    if (!(event.time_s >= 0.0) || !std::isfinite(event.time_s)) {
      return "FaultPlan: event time must be finite and >= 0";
    }
    switch (event.kind) {
      case FaultKind::kNodeCrash:
      case FaultKind::kNodeDrain:
      case FaultKind::kNodeRecover:
        if (event.node.empty()) {
          return std::string("FaultPlan: ") + FaultKindName(event.kind) +
                 " event needs a node name";
        }
        break;
      case FaultKind::kReplicaBurst:
        if (event.fraction < 0.0 || event.fraction > 1.0) {
          return "FaultPlan: replica_burst fraction must be in [0, 1]";
        }
        if (event.fraction == 0.0 && event.count == 0) {
          return "FaultPlan: replica_burst needs a fraction or a count";
        }
        break;
    }
  }
  if (burst_mtbf_s < 0.0) {
    return "FaultPlan: burst_mtbf_s must be >= 0";
  }
  if (burst_mtbf_s > 0.0 && (burst_fraction <= 0.0 || burst_fraction > 1.0)) {
    return "FaultPlan: burst_fraction must be in (0, 1] when bursts are on";
  }
  if (straggler_fraction < 0.0 || straggler_fraction > 1.0) {
    return "FaultPlan: straggler_fraction must be in [0, 1]";
  }
  if (straggler_fraction > 0.0 && straggler_multiplier < 1.0) {
    return "FaultPlan: straggler_multiplier must be >= 1";
  }
  if (actuation_drop_prob < 0.0 || actuation_delay_prob < 0.0 ||
      actuation_partial_prob < 0.0) {
    return "FaultPlan: actuation probabilities must be >= 0";
  }
  if (actuation_drop_prob + actuation_delay_prob + actuation_partial_prob > 1.0) {
    return "FaultPlan: actuation probabilities must sum to <= 1";
  }
  if (actuation_delay_prob > 0.0 && actuation_delay_s <= 0.0) {
    return "FaultPlan: actuation_delay_s must be > 0 when delays are on";
  }
  return {};
}

const std::vector<std::string>& FaultScenarioNames() {
  static const std::vector<std::string> kNames = {"node-crash", "rolling-drain",
                                                  "replica-burst", "flaky-api"};
  return kNames;
}

FaultPlan MakeFaultScenario(const std::string& name, double duration_s,
                            const std::vector<std::string>& node_names) {
  FaultPlan plan;
  if (name == "node-crash") {
    if (!node_names.empty()) {
      plan.events.push_back(
          {0.25 * duration_s, FaultKind::kNodeCrash, node_names.front()});
      plan.events.push_back(
          {0.50 * duration_s, FaultKind::kNodeRecover, node_names.front()});
    }
  } else if (name == "rolling-drain") {
    // One node at a time, upgrade-style: drain, hold for 10% of the run,
    // recover, move on. The stagger keeps at most one node down at once.
    const double hold = 0.10 * duration_s;
    double t = 0.20 * duration_s;
    for (const std::string& node : node_names) {
      plan.events.push_back({t, FaultKind::kNodeDrain, node});
      plan.events.push_back({t + hold, FaultKind::kNodeRecover, node});
      t += 1.5 * hold;
      if (t + hold >= duration_s) {
        break;
      }
    }
  } else if (name == "replica-burst") {
    FaultEvent burst;
    burst.kind = FaultKind::kReplicaBurst;
    burst.job = -1;
    burst.fraction = 0.5;
    burst.time_s = 0.30 * duration_s;
    plan.events.push_back(burst);
    burst.time_s = 0.60 * duration_s;
    plan.events.push_back(burst);
    // A background correlated-failure process between the scheduled bursts:
    // roughly one extra burst per run, killing a quarter of each pool.
    plan.burst_mtbf_s = duration_s;
    plan.burst_fraction = 0.25;
  } else if (name == "flaky-api") {
    plan.actuation_drop_prob = 0.15;
    plan.actuation_delay_prob = 0.20;
    plan.actuation_delay_s = 45.0;
    plan.actuation_partial_prob = 0.15;
    plan.straggler_fraction = 0.25;
    plan.straggler_multiplier = 4.0;
  }
  return plan;
}

}  // namespace faro
