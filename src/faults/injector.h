// Runtime companion of FaultPlan: owns the private RNG stream, the fault
// counters, and the applied-fault log for one simulation run.
//
// The simulator asks the injector three kinds of question, always in
// simulation-event order so the stream is deterministic at any thread count:
//   - DrawBurst(dt): did a correlated burst fire during this reactive tick?
//   - StretchColdStart(nominal): is this provision a straggler, and if so how
//     long does it really take?
//   - DrawActuation(): what happens to this scale-up command?
// Every method short-circuits without touching the RNG when its knob is off,
// which is what keeps no-fault runs bit-identical to a build without faults.
//
// Shard-safety (SimEngine::kSharded): the sharded engine calls the injector
// only from its coordinator thread, at control boundaries, in job order --
// never from a shard worker -- so the single stream stays deterministic at
// any shard count and an inactive plan draws nothing on any shard
// (tests/sharded_determinism_test.cc).

#ifndef SRC_FAULTS_INJECTOR_H_
#define SRC_FAULTS_INJECTOR_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/faults/faultplan.h"

namespace faro {

enum class ActuationOutcome : uint8_t { kApply, kDrop, kDelay, kPartial };

class FaultInjector {
 public:
  // `sim_seed` is the simulator's seed; the injector stream is derived from
  // (sim_seed, plan.seed) so two runs differing only in plan seed diverge.
  FaultInjector(const FaultPlan& plan, uint64_t sim_seed)
      : plan_(plan), rng_(HashCombine(sim_seed, plan.seed)) {
    scheduled_ = plan_.events;
    // Stable sort: events at the same timestamp apply in plan order.
    std::stable_sort(scheduled_.begin(), scheduled_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       return a.time_s < b.time_s;
                     });
  }

  bool active() const { return plan_.active(); }
  const FaultPlan& plan() const { return plan_; }

  // Scheduled events sorted by time (ties keep plan order).
  const std::vector<FaultEvent>& scheduled() const { return scheduled_; }

  // True when a correlated burst fires within a window of `dt` seconds.
  bool DrawBurst(double dt) {
    if (plan_.burst_mtbf_s <= 0.0) {
      return false;
    }
    return rng_.Uniform() < dt / plan_.burst_mtbf_s;
  }

  // Cold-start delay after straggler stretching (identity when off).
  double StretchColdStart(double nominal) {
    if (plan_.straggler_fraction <= 0.0) {
      return nominal;
    }
    if (rng_.Uniform() >= plan_.straggler_fraction) {
      return nominal;
    }
    ++stats_.cold_start_stragglers;
    return nominal * plan_.straggler_multiplier;
  }

  // Fate of one scale-up command. Counters are bumped here; the caller logs
  // the affected job itself (it knows the name and replica count).
  ActuationOutcome DrawActuation() {
    const double p_drop = plan_.actuation_drop_prob;
    const double p_delay = plan_.actuation_delay_prob;
    const double p_partial = plan_.actuation_partial_prob;
    if (p_drop <= 0.0 && p_delay <= 0.0 && p_partial <= 0.0) {
      return ActuationOutcome::kApply;
    }
    const double u = rng_.Uniform();
    if (u < p_drop) {
      ++stats_.actuation_drops;
      return ActuationOutcome::kDrop;
    }
    if (u < p_drop + p_delay) {
      ++stats_.actuation_delays;
      return ActuationOutcome::kDelay;
    }
    if (u < p_drop + p_delay + p_partial) {
      ++stats_.actuation_partials;
      return ActuationOutcome::kPartial;
    }
    return ActuationOutcome::kApply;
  }

  void Record(double time_s, std::string what, std::string target,
              uint32_t count) {
    log_.push_back(
        {time_s, std::move(what), std::move(target), count});
  }

  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }
  std::vector<AppliedFault>& log() { return log_; }
  const std::vector<AppliedFault>& log() const { return log_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  std::vector<FaultEvent> scheduled_;
  FaultStats stats_;
  std::vector<AppliedFault> log_;
};

}  // namespace faro

#endif  // SRC_FAULTS_INJECTOR_H_
