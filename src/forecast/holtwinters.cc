#include "src/forecast/holtwinters.h"

#include <algorithm>

namespace faro {

bool HoltWintersModel::Fit(std::span<const double> values) {
  fitted_ = false;
  fallback_ = values.empty() ? 0.0 : values.back();
  const size_t m = std::max<size_t>(config_.period, 1);
  if (values.size() < 2 * m) {
    return false;
  }
  // Initial level: mean of the first period. Initial trend: average per-step
  // change between the first two periods. Initial seasonal: first-period
  // deviations from its mean.
  double first_mean = 0.0;
  double second_mean = 0.0;
  for (size_t t = 0; t < m; ++t) {
    first_mean += values[t] / static_cast<double>(m);
    second_mean += values[m + t] / static_cast<double>(m);
  }
  level_ = first_mean;
  trend_ = (second_mean - first_mean) / static_cast<double>(m);
  seasonal_.assign(m, 0.0);
  for (size_t t = 0; t < m; ++t) {
    seasonal_[t] = values[t] - first_mean;
  }
  phase_ = 0;
  fitted_ = true;
  // Smooth through the whole series.
  for (const double v : values) {
    Observe(v);
  }
  return true;
}

void HoltWintersModel::Observe(double value) {
  if (!fitted_) {
    fallback_ = value;
    return;
  }
  const size_t m = seasonal_.size();
  const double season = seasonal_[phase_ % m];
  const double previous_level = level_;
  level_ = config_.alpha * (value - season) + (1.0 - config_.alpha) * (level_ + trend_);
  trend_ = config_.beta * (level_ - previous_level) + (1.0 - config_.beta) * trend_;
  seasonal_[phase_ % m] =
      config_.gamma * (value - level_) + (1.0 - config_.gamma) * season;
  ++phase_;
}

std::vector<double> HoltWintersModel::Forecast(size_t horizon) const {
  std::vector<double> out(horizon, fallback_);
  if (!fitted_) {
    return out;
  }
  const size_t m = seasonal_.size();
  for (size_t h = 0; h < horizon; ++h) {
    const double season = seasonal_[(phase_ + h) % m];
    out[h] = std::max(0.0, level_ + trend_ * static_cast<double>(h + 1) + season);
  }
  return out;
}

}  // namespace faro
