// Glue between the forecasting library and the Faro autoscaler: one trained
// probabilistic N-HiTS model per job, exposed through the core
// WorkloadPredictor interface.

#ifndef SRC_FORECAST_ADAPTER_H_
#define SRC_FORECAST_ADAPTER_H_

#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/common/series.h"
#include "src/core/predictor.h"
#include "src/forecast/nhits.h"

namespace faro {

class NHitsWorkloadPredictor : public WorkloadPredictor {
 public:
  NHitsWorkloadPredictor(NHitsConfig model_config, TrainConfig train_config)
      : model_config_(model_config), train_config_(train_config) {}

  // Trains (replacing any previous model for) `job` on its training trace
  // (per-minute rates in the same units histories arrive in at runtime).
  // Returns the final training loss.
  double TrainJob(size_t job, const Series& train);

  // Number of jobs with a trained model.
  size_t trained_jobs() const { return models_.size(); }

  NHitsModel* model(size_t job);

  // WorkloadPredictor. Jobs without a trained model fall back to a damped
  // average (so cold deployments still autoscale).
  //
  // Thread-safe: one trained predictor is shared by every policy instance in
  // a parallel RunTrials fan-out. The forward pass is a pure function of the
  // frozen weights and the history, but it scribbles on the model's
  // activation cache, so concurrent calls are serialised by a mutex --
  // results are identical under any interleaving.
  std::vector<double> PredictQuantile(size_t job, std::span<const double> history,
                                      size_t horizon, double quantile) override;

 private:
  NHitsConfig model_config_;
  TrainConfig train_config_;
  std::unordered_map<size_t, std::unique_ptr<NHitsModel>> models_;
  DampedAveragePredictor fallback_;
  std::mutex predict_mutex_;
};

}  // namespace faro

#endif  // SRC_FORECAST_ADAPTER_H_
