#include "src/forecast/prophet_adapter.h"

#include <algorithm>

namespace faro {

bool ProphetWorkloadPredictor::TrainJob(size_t job, const Series& train) {
  ProphetModel model(config_);
  const bool ok = model.Fit(train.values());
  if (ok) {
    models_[job] = std::move(model);
  }
  return ok;
}

std::vector<double> ProphetWorkloadPredictor::PredictQuantile(size_t job,
                                                              std::span<const double> history,
                                                              size_t horizon,
                                                              double quantile) {
  const auto it = models_.find(job);
  if (it == models_.end() || !it->second.fitted()) {
    return fallback_.PredictQuantile(job, history, horizon, quantile);
  }
  // Forecast the window at the current absolute phase.
  std::vector<double> shape = it->second.Forecast(current_step_ + horizon);
  std::vector<double> out(horizon, 0.0);
  for (size_t h = 0; h < horizon; ++h) {
    out[h] = shape[current_step_ + h];
  }
  // Re-anchor to the recent observed level: Prophet's trend drifts over long
  // horizons; the seasonal *shape* is what it contributes.
  if (!history.empty()) {
    double level = history.back();
    for (size_t k = history.size() >= 3 ? history.size() - 3 : 0; k < history.size(); ++k) {
      level = 0.5 * level + 0.5 * history[k];
    }
    // "Now" is the last observed step: one before the forecast window starts
    // (the final training point when no time has elapsed yet).
    const size_t now_index = it->second.train_size() + std::max<size_t>(current_step_, 1) - 1;
    const double model_now = it->second.FittedAt(now_index);
    const double offset = level - model_now;
    for (double& v : out) {
      v = std::max(0.0, v + offset);
    }
  }
  return out;
}

}  // namespace faro
