#include "src/forecast/nhits.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace faro {
namespace {

constexpr double kSigmaFloor = 1e-3;

size_t CeilDiv(size_t a, size_t b) { return (a + b - 1) / std::max<size_t>(b, 1); }

}  // namespace

size_t NHitsModel::ThetaBackcastLen(size_t block) const {
  return CeilDiv(config_.input_size, config_.downsample[StackOf(block)]);
}

size_t NHitsModel::ThetaForecastLen(size_t block) const {
  return CeilDiv(config_.horizon, config_.downsample[StackOf(block)]);
}

NHitsModel::NHitsModel(const NHitsConfig& config) : config_(config) {
  Rng rng(config_.seed);
  // Blocks are stored stack-major: stack s contributes blocks
  // [s*bps, (s+1)*bps), all sharing the stack's pool kernel and downsample.
  const size_t bps = std::max<size_t>(config_.blocks_per_stack, 1);
  const size_t num_blocks = config_.pool_kernels.size() * bps;
  stacks_.resize(num_blocks);
  cache_.resize(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t pooled_len = CeilDiv(config_.input_size, config_.pool_kernels[StackOf(b)]);
    const size_t theta_len = ThetaBackcastLen(b) + num_channels() * ThetaForecastLen(b);
    std::vector<Linear>& mlp = stacks_[b];
    mlp.emplace_back(pooled_len, config_.hidden, rng);
    for (size_t h = 1; h < config_.hidden_layers; ++h) {
      mlp.emplace_back(config_.hidden, config_.hidden, rng);
    }
    mlp.emplace_back(config_.hidden, theta_len, rng);
  }
}

NHitsModel::Output NHitsModel::Forward(std::span<const double> x) {
  const size_t horizon = config_.horizon;
  Output out;
  out.mu.assign(horizon, 0.0);
  sigma_raw_.assign(horizon, 0.0);

  Vec residual(x.begin(), x.end());
  Vec interp;
  for (size_t s = 0; s < stacks_.size(); ++s) {
    StackCache& c = cache_[s];
    c.input = residual;
    MaxPoolForward(c.input, config_.pool_kernels[StackOf(s)], c.pooled, c.argmax);

    // MLP: hidden layers ReLU-activated; the theta head is linear.
    std::vector<Linear>& mlp = stacks_[s];
    c.layer_in.assign(mlp.size(), {});
    c.layer_out.assign(mlp.size(), {});
    Vec activation = c.pooled;
    for (size_t l = 0; l < mlp.size(); ++l) {
      c.layer_in[l] = activation;
      mlp[l].Forward(c.layer_in[l], activation);
      if (l + 1 < mlp.size()) {
        ReluForward(activation);
      }
      c.layer_out[l] = activation;
    }
    c.theta = activation;

    // Hierarchical interpolation: backcast + per-channel forecast.
    const size_t bc = ThetaBackcastLen(s);
    const size_t fc = ThetaForecastLen(s);
    InterpolateForward({c.theta.data(), bc}, config_.input_size, interp);
    for (size_t i = 0; i < config_.input_size; ++i) {
      residual[i] -= interp[i];
    }
    InterpolateForward({c.theta.data() + bc, fc}, horizon, interp);
    for (size_t i = 0; i < horizon; ++i) {
      out.mu[i] += interp[i];
    }
    if (config_.gaussian) {
      InterpolateForward({c.theta.data() + bc + fc, fc}, horizon, interp);
      for (size_t i = 0; i < horizon; ++i) {
        sigma_raw_[i] += interp[i];
      }
    }
  }
  if (config_.gaussian) {
    out.sigma.resize(horizon);
    for (size_t i = 0; i < horizon; ++i) {
      out.sigma[i] = Softplus(sigma_raw_[i]) + kSigmaFloor;
    }
  }
  return out;
}

void NHitsModel::Backward(std::span<const double> dmu, std::span<const double> dsigma) {
  const size_t horizon = config_.horizon;
  Vec dsigma_raw(horizon, 0.0);
  if (config_.gaussian && !dsigma.empty()) {
    for (size_t i = 0; i < horizon; ++i) {
      dsigma_raw[i] = dsigma[i] * SoftplusPrime(sigma_raw_[i]);
    }
  }

  Vec g_residual(config_.input_size, 0.0);  // dL/dx_{s+1}, zero past last stack
  Vec dtheta;
  Vec part;
  Vec dlayer;
  Vec dx;
  for (size_t s = stacks_.size(); s-- > 0;) {
    StackCache& c = cache_[s];
    const size_t bc = ThetaBackcastLen(s);
    const size_t fc = ThetaForecastLen(s);
    dtheta.assign(c.theta.size(), 0.0);

    // backcast contributes -g_residual through the interpolation transpose.
    InterpolateBackward(g_residual, bc, part);
    for (size_t i = 0; i < bc; ++i) {
      dtheta[i] = -part[i];
    }
    InterpolateBackward(dmu, fc, part);
    for (size_t i = 0; i < fc; ++i) {
      dtheta[bc + i] = part[i];
    }
    if (config_.gaussian) {
      InterpolateBackward(dsigma_raw, fc, part);
      for (size_t i = 0; i < fc; ++i) {
        dtheta[bc + fc + i] = part[i];
      }
    }

    // MLP backward.
    std::vector<Linear>& mlp = stacks_[s];
    dlayer = dtheta;
    for (size_t l = mlp.size(); l-- > 0;) {
      if (l + 1 < mlp.size()) {
        ReluBackward(c.layer_out[l], dlayer);
      }
      mlp[l].Backward(c.layer_in[l], dlayer, &dx);
      dlayer = dx;
    }
    // dlayer is now dL/dpooled.
    MaxPoolBackward(dlayer, c.argmax, config_.input_size, dx);
    for (size_t i = 0; i < config_.input_size; ++i) {
      g_residual[i] += dx[i];
    }
  }
}

void NHitsModel::ZeroGrad() {
  for (auto& mlp : stacks_) {
    for (Linear& layer : mlp) {
      layer.ZeroGrad();
    }
  }
}

void NHitsModel::CollectParams(std::vector<Vec*>& params, std::vector<Vec*>& grads) {
  for (auto& mlp : stacks_) {
    for (Linear& layer : mlp) {
      params.push_back(&layer.weights());
      grads.push_back(&layer.weight_grads());
      params.push_back(&layer.bias());
      grads.push_back(&layer.bias_grads());
    }
  }
}

double NHitsModel::TrainOnSeries(const Series& train, const TrainConfig& train_config) {
  standardizer_ = Standardizer::Fit(train.values());
  WindowDataset dataset(train, config_.input_size, config_.horizon, standardizer_);
  if (dataset.size() == 0) {
    trained_ = true;
    return 0.0;
  }
  Rng rng(train_config.seed);
  AdamOptimizer adam(train_config.learning_rate);
  std::vector<Vec*> params;
  std::vector<Vec*> grads;
  CollectParams(params, grads);

  const size_t horizon = config_.horizon;
  Vec dmu(horizon);
  Vec dsigma(horizon);
  double epoch_loss = 0.0;
  for (size_t epoch = 0; epoch < train_config.epochs; ++epoch) {
    const std::vector<size_t> order = dataset.EpochOrder(rng);
    epoch_loss = 0.0;
    size_t in_batch = 0;
    ZeroGrad();
    for (const size_t w : order) {
      const Output out = Forward(dataset.Input(w));
      const std::span<const double> target = dataset.Target(w);
      // Per-window loss and output gradients (averaged over the horizon).
      if (config_.gaussian) {
        for (size_t i = 0; i < horizon; ++i) {
          const double err = out.mu[i] - target[i];
          const double sig = out.sigma[i];
          epoch_loss += (0.5 * std::log(2.0 * std::numbers::pi) + std::log(sig) +
                         0.5 * err * err / (sig * sig)) /
                        static_cast<double>(horizon);
          dmu[i] = err / (sig * sig) / static_cast<double>(horizon);
          dsigma[i] =
              (1.0 / sig - err * err / (sig * sig * sig)) / static_cast<double>(horizon);
        }
      } else {
        for (size_t i = 0; i < horizon; ++i) {
          const double err = out.mu[i] - target[i];
          epoch_loss += err * err / static_cast<double>(horizon);
          dmu[i] = 2.0 * err / static_cast<double>(horizon);
          dsigma[i] = 0.0;
        }
      }
      Backward(dmu, dsigma);
      if (++in_batch == train_config.batch_size) {
        // Average the accumulated gradients over the batch.
        for (Vec* g : grads) {
          for (double& v : *g) {
            v /= static_cast<double>(in_batch);
          }
        }
        adam.Step(params, grads);
        ZeroGrad();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      for (Vec* g : grads) {
        for (double& v : *g) {
          v /= static_cast<double>(in_batch);
        }
      }
      adam.Step(params, grads);
      ZeroGrad();
    }
    epoch_loss /= static_cast<double>(dataset.size());
  }
  trained_ = true;
  return epoch_loss;
}

NHitsModel::Output NHitsModel::PredictRaw(std::span<const double> history) {
  // Assemble the (left-padded) standardised input window.
  Vec input(config_.input_size, 0.0);
  const double pad = history.empty() ? standardizer_.mean : history.front();
  for (size_t i = 0; i < config_.input_size; ++i) {
    const ptrdiff_t src =
        static_cast<ptrdiff_t>(history.size()) - static_cast<ptrdiff_t>(config_.input_size) +
        static_cast<ptrdiff_t>(i);
    const double raw = src >= 0 ? history[static_cast<size_t>(src)] : pad;
    input[i] = standardizer_.Transform(raw);
  }
  Output out = Forward(input);
  for (double& v : out.mu) {
    v = standardizer_.Invert(v);
  }
  for (double& v : out.sigma) {
    v *= standardizer_.std;  // scale-only: sigma is a spread, not a location
  }
  return out;
}

std::vector<double> NHitsModel::PredictQuantileRaw(std::span<const double> history,
                                                   double quantile) {
  const Output out = PredictRaw(history);
  std::vector<double> trajectory(out.mu);
  if (!out.sigma.empty()) {
    const double z = InverseNormalCdf(quantile);
    for (size_t i = 0; i < trajectory.size(); ++i) {
      trajectory[i] += z * out.sigma[i];
    }
  }
  for (double& v : trajectory) {
    v = std::max(0.0, v);
  }
  return trajectory;
}

std::vector<std::vector<double>> NHitsModel::SampleTrajectories(std::span<const double> history,
                                                                size_t num_samples, Rng& rng) {
  const Output out = PredictRaw(history);
  std::vector<std::vector<double>> samples(num_samples, out.mu);
  if (!out.sigma.empty()) {
    for (auto& trajectory : samples) {
      for (size_t i = 0; i < trajectory.size(); ++i) {
        trajectory[i] = std::max(0.0, trajectory[i] + out.sigma[i] * rng.Normal());
      }
    }
  }
  return samples;
}

}  // namespace faro
