// Holt-Winters triple exponential smoothing (additive seasonality): the
// classical decomposition forecaster, one more arm for the §3.5 predictor
// comparison and a cheap online-updatable predictor (level/trend/seasonal
// states update in O(1) per observation).

#ifndef SRC_FORECAST_HOLTWINTERS_H_
#define SRC_FORECAST_HOLTWINTERS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace faro {

struct HoltWintersConfig {
  size_t period = 360;   // seasonal period in steps
  double alpha = 0.3;    // level smoothing
  double beta = 0.05;    // trend smoothing
  double gamma = 0.2;    // seasonal smoothing
};

class HoltWintersModel {
 public:
  explicit HoltWintersModel(const HoltWintersConfig& config = {}) : config_(config) {}

  // Initialises the states from the first two periods and smooths through the
  // rest. Returns false with fallback behaviour when the series is shorter
  // than two periods.
  bool Fit(std::span<const double> values);

  // Continues smoothing with one new observation (online update).
  void Observe(double value);

  // Forecast h steps ahead from the current state.
  std::vector<double> Forecast(size_t horizon) const;

  bool fitted() const { return fitted_; }
  double level() const { return level_; }
  double trend() const { return trend_; }

 private:
  HoltWintersConfig config_;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::vector<double> seasonal_;
  size_t phase_ = 0;  // index into seasonal_ of the *next* observation
  double fallback_ = 0.0;
  bool fitted_ = false;
};

}  // namespace faro

#endif  // SRC_FORECAST_HOLTWINTERS_H_
