// Windowed training data for sequence models: standardisation plus sliding
// (input, target) windows over a trace.

#ifndef SRC_FORECAST_DATASET_H_
#define SRC_FORECAST_DATASET_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/common/series.h"

namespace faro {

// z-score standardisation fitted on the training split; forecasting models
// operate in standardised space and invert on output.
struct Standardizer {
  double mean = 0.0;
  double std = 1.0;

  static Standardizer Fit(std::span<const double> values);
  double Transform(double v) const { return (v - mean) / std; }
  double Invert(double v) const { return v * std + mean; }
  std::vector<double> TransformAll(std::span<const double> values) const;
};

// All (input_size, horizon) windows of a series, in standardised space.
class WindowDataset {
 public:
  WindowDataset(const Series& series, size_t input_size, size_t horizon,
                const Standardizer& standardizer);

  size_t size() const { return starts_.size(); }
  size_t input_size() const { return input_size_; }
  size_t horizon() const { return horizon_; }

  std::span<const double> Input(size_t i) const {
    return {values_.data() + starts_[i], input_size_};
  }
  std::span<const double> Target(size_t i) const {
    return {values_.data() + starts_[i] + input_size_, horizon_};
  }

  // Random window order for one epoch.
  std::vector<size_t> EpochOrder(Rng& rng) const { return ShuffledIndices(size(), rng); }

 private:
  size_t input_size_;
  size_t horizon_;
  std::vector<double> values_;  // standardised copy of the series
  std::vector<size_t> starts_;
};

}  // namespace faro

#endif  // SRC_FORECAST_DATASET_H_
