// N-HiTS time-series forecaster (§3.5.1) with an optional Gaussian
// probabilistic head (§3.5.2).
//
// N-HiTS (Challu et al., AAAI'23) stacks blocks that each (1) sample the
// input at a coarser rate via max pooling, (2) run a small MLP that emits
// backcast and forecast coefficients at a reduced resolution, and
// (3) hierarchically interpolates those coefficients to full resolution. Each
// block subtracts its backcast from the residual input of the next, and the
// forecasts sum. The multi-rate structure keeps the model tiny while
// capturing both the diurnal envelope and minute-level fluctuation.
//
// The probabilistic variant makes the forecast two channels per step
// (mu, raw-sigma with a softplus link) trained with Gaussian NLL; quantile
// trajectories and Monte-Carlo samples of future arrival rates come straight
// from the predictive distribution, which is how Faro captures workload
// fluctuation instead of flat-lining through it (Fig. 8).

#ifndef SRC_FORECAST_NHITS_H_
#define SRC_FORECAST_NHITS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/common/series.h"
#include "src/forecast/dataset.h"
#include "src/forecast/nn.h"

namespace faro {

struct NHitsConfig {
  size_t input_size = 15;  // §5: 15-min arrival history
  size_t horizon = 7;      // §5: 7-min prediction window
  // Per-stack max-pool kernels (multi-rate sampling) and coefficient
  // downsampling factors (hierarchical interpolation), coarse to fine.
  std::vector<size_t> pool_kernels = {4, 2, 1};
  std::vector<size_t> downsample = {4, 2, 1};
  size_t hidden = 64;
  size_t hidden_layers = 2;
  // Blocks per stack (each block refines the residual its predecessors left;
  // the default of 1 keeps the model small -- ample for 15-step inputs).
  size_t blocks_per_stack = 1;
  bool gaussian = true;  // Gaussian head vs point (MSE) head
  uint64_t seed = 1;
};

struct TrainConfig {
  size_t epochs = 12;
  size_t batch_size = 32;
  double learning_rate = 1e-3;
  uint64_t seed = 17;
};

class NHitsModel {
 public:
  explicit NHitsModel(const NHitsConfig& config);

  struct Output {
    Vec mu;     // standardised-space mean forecast, length horizon
    Vec sigma;  // predictive std-dev (empty for point models)
  };

  const NHitsConfig& config() const { return config_; }

  // Forward pass in standardised space; caches activations for Backward.
  Output Forward(std::span<const double> x);

  // Accumulates parameter gradients given dL/dmu and dL/dsigma (sigma grads
  // ignored for point models). Must follow the matching Forward call.
  void Backward(std::span<const double> dmu, std::span<const double> dsigma);

  void ZeroGrad();
  void CollectParams(std::vector<Vec*>& params, std::vector<Vec*>& grads);

  // Fits the standardiser on `train` and trains with Adam. Returns the final
  // epoch's average training loss (NLL or MSE in standardised space).
  double TrainOnSeries(const Series& train, const TrainConfig& train_config);

  const Standardizer& standardizer() const { return standardizer_; }
  bool trained() const { return trained_; }

  // Prediction over raw (unstandardised) history: takes the last input_size
  // values (padding on the left with the earliest value if short).
  // Returns the raw-space mean trajectory and, for Gaussian models, per-step
  // predictive std-devs.
  Output PredictRaw(std::span<const double> history);

  // Quantile trajectory: mu + z_q * sigma per step, in raw space, clamped at
  // zero (rates cannot be negative).
  std::vector<double> PredictQuantileRaw(std::span<const double> history, double quantile);

  // Monte-Carlo sample trajectories from the predictive distribution
  // (Fig. 8c's 100 samples).
  std::vector<std::vector<double>> SampleTrajectories(std::span<const double> history,
                                                      size_t num_samples, Rng& rng);

 private:
  struct StackCache {
    Vec input;           // residual input x_s
    Vec pooled;
    std::vector<size_t> argmax;
    std::vector<Vec> layer_in;   // input of each linear layer
    std::vector<Vec> layer_out;  // post-activation output of each layer
    Vec theta;
  };

  size_t ThetaBackcastLen(size_t block) const;
  size_t ThetaForecastLen(size_t block) const;
  // Stack index of flat block `block` (blocks are stored stack-major).
  size_t StackOf(size_t block) const { return block / std::max<size_t>(config_.blocks_per_stack, 1); }
  size_t num_channels() const { return config_.gaussian ? 2 : 1; }

  NHitsConfig config_;
  // stacks_[s] is the MLP of stack s: hidden layers plus the theta head.
  std::vector<std::vector<Linear>> stacks_;
  std::vector<StackCache> cache_;
  Vec sigma_raw_;  // pre-softplus sigma, cached for Backward
  Standardizer standardizer_;
  bool trained_ = false;
};

}  // namespace faro

#endif  // SRC_FORECAST_NHITS_H_
