// LSTM forecaster: the neural baseline MArk-style systems use (§3.5.1 reports
// Faro's N-HiTS beats LSTM and DeepAR on RMSE and inference latency; the
// bench bench_sec35_models regenerates that comparison).
//
// A single-layer LSTM consumes the input window one value per step; a linear
// head maps the final hidden state to the full forecast horizon. Training is
// MSE with truncated BPTT over the window, hand-written and gradient-checked.

#ifndef SRC_FORECAST_LSTM_H_
#define SRC_FORECAST_LSTM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/series.h"
#include "src/forecast/dataset.h"
#include "src/forecast/nhits.h"  // TrainConfig
#include "src/forecast/nn.h"

namespace faro {

// One LSTM step with cached activations for backprop.
class LstmCell {
 public:
  LstmCell() = default;
  LstmCell(size_t input_dim, size_t hidden, Rng& rng);

  size_t hidden() const { return hidden_; }
  size_t input_dim() const { return input_dim_; }

  struct StepCache {
    Vec xin;     // [x_t, h_{t-1}]
    Vec i, f, g, o;
    Vec c, h, tanh_c;
    Vec c_prev;
  };

  // h_prev/c_prev of length hidden(); writes cache.h / cache.c.
  void Forward(std::span<const double> x, const Vec& h_prev, const Vec& c_prev,
               StepCache& cache) const;

  // dh/dc are dL/dh_t and dL/dc_t on entry; on return dh_prev/dc_prev hold
  // the gradients flowing to the previous step and dx (optional) the gradient
  // w.r.t. the step input.
  void Backward(const StepCache& cache, const Vec& dh, const Vec& dc, Vec* dx, Vec& dh_prev,
                Vec& dc_prev);

  void ZeroGrad() { gates_.ZeroGrad(); }
  void CollectParams(std::vector<Vec*>& params, std::vector<Vec*>& grads);

 private:
  size_t input_dim_ = 0;
  size_t hidden_ = 0;
  Linear gates_;  // (input_dim + hidden) -> 4*hidden, gate order [i, f, g, o]
};

struct LstmConfig {
  size_t input_size = 15;
  size_t horizon = 7;
  size_t hidden = 32;
  uint64_t seed = 2;
};

// Direct multi-horizon point forecaster.
class LstmModel {
 public:
  explicit LstmModel(const LstmConfig& config);

  const LstmConfig& config() const { return config_; }

  // Forecast in standardised space from a standardised window.
  Vec Forward(std::span<const double> x);
  void Backward(std::span<const double> dy);
  void ZeroGrad();
  void CollectParams(std::vector<Vec*>& params, std::vector<Vec*>& grads);

  double TrainOnSeries(const Series& train, const TrainConfig& train_config);

  // Raw-space mean forecast from raw history (left-padded like N-HiTS).
  std::vector<double> PredictRaw(std::span<const double> history);

 private:
  LstmConfig config_;
  LstmCell cell_;
  Linear head_;
  std::vector<LstmCell::StepCache> steps_;
  Vec final_h_;
  Standardizer standardizer_;
};

}  // namespace faro

#endif  // SRC_FORECAST_LSTM_H_
