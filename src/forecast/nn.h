// Minimal neural-network substrate with hand-written backpropagation.
//
// The forecasting models in this library (N-HiTS, LSTM, DeepAR-style) are
// small -- tens of thousands of parameters -- so a dependency-free dense
// implementation with explicit gradients is simpler and faster to build than
// an autodiff graph, and every gradient is unit-tested against finite
// differences (tests/forecast_test.cc).

#ifndef SRC_FORECAST_NN_H_
#define SRC_FORECAST_NN_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.h"

namespace faro {

using Vec = std::vector<double>;

// Fully-connected layer y = W x + b with accumulated gradients.
class Linear {
 public:
  Linear() = default;
  Linear(size_t in, size_t out, Rng& rng);

  size_t in() const { return in_; }
  size_t out() const { return out_; }

  void Forward(std::span<const double> x, Vec& y) const;

  // dy is dL/dy; accumulates dL/dW and dL/db, writes dL/dx into dx
  // (dx may be empty to skip input-gradient computation for the first layer).
  void Backward(std::span<const double> x, std::span<const double> dy, Vec* dx);

  void ZeroGrad();

  // Parameter/gradient access for the optimizer (weights first, then bias).
  Vec& weights() { return w_; }
  Vec& bias() { return b_; }
  Vec& weight_grads() { return gw_; }
  Vec& bias_grads() { return gb_; }

 private:
  size_t in_ = 0;
  size_t out_ = 0;
  Vec w_;   // out x in, row-major
  Vec b_;   // out
  Vec gw_;
  Vec gb_;
};

// ReLU applied in place; Backward masks the gradient by the forward output.
void ReluForward(Vec& x);
void ReluBackward(std::span<const double> activated, Vec& grad);

// Numerically-stable softplus and its derivative (sigmoid).
double Softplus(double x);
double SoftplusPrime(double x);
double Sigmoid(double x);

// Inverse standard-normal CDF (Acklam's rational approximation, |err|<1e-9).
// Used to turn (mu, sigma) predictive distributions into quantile
// trajectories without sampling.
double InverseNormalCdf(double p);

// Adam optimizer over a fixed ordered set of (parameter, gradient) tensors.
// Register the same tensors in the same order every step.
class AdamOptimizer {
 public:
  explicit AdamOptimizer(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                         double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void Step(std::span<Vec*> params, std::span<Vec*> grads);

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  int t_ = 0;
  std::vector<Vec> m_;
  std::vector<Vec> v_;
};

// Max pooling with kernel == stride (multi-rate sampling in N-HiTS).
// Output length is ceil(n / kernel); ragged tails pool over fewer elements.
void MaxPoolForward(std::span<const double> x, size_t kernel, Vec& y,
                    std::vector<size_t>& argmax);
void MaxPoolBackward(std::span<const double> dy, std::span<const size_t> argmax, size_t n,
                     Vec& dx);

// Linear interpolation of `coeffs` (length m) onto a grid of length n
// (hierarchical interpolation in N-HiTS). For m == 1 the value is constant.
void InterpolateForward(std::span<const double> coeffs, size_t n, Vec& y);
// Transpose map: distributes dL/dy (length n) back onto dL/dcoeffs (length m).
void InterpolateBackward(std::span<const double> dy, size_t m, Vec& dcoeffs);

}  // namespace faro

#endif  // SRC_FORECAST_NN_H_
