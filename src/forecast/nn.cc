#include "src/forecast/nn.h"

#include <algorithm>
#include <cmath>

namespace faro {

Linear::Linear(size_t in, size_t out, Rng& rng) : in_(in), out_(out) {
  w_.resize(in * out);
  b_.assign(out, 0.0);
  gw_.assign(in * out, 0.0);
  gb_.assign(out, 0.0);
  // He initialisation (layers are ReLU-activated).
  const double scale = std::sqrt(2.0 / static_cast<double>(in));
  for (double& w : w_) {
    w = scale * rng.Normal();
  }
}

void Linear::Forward(std::span<const double> x, Vec& y) const {
  y.assign(out_, 0.0);
  for (size_t r = 0; r < out_; ++r) {
    double sum = b_[r];
    const double* row = w_.data() + r * in_;
    for (size_t c = 0; c < in_; ++c) {
      sum += row[c] * x[c];
    }
    y[r] = sum;
  }
}

void Linear::Backward(std::span<const double> x, std::span<const double> dy, Vec* dx) {
  for (size_t r = 0; r < out_; ++r) {
    const double g = dy[r];
    gb_[r] += g;
    double* grow = gw_.data() + r * in_;
    for (size_t c = 0; c < in_; ++c) {
      grow[c] += g * x[c];
    }
  }
  if (dx != nullptr) {
    dx->assign(in_, 0.0);
    for (size_t r = 0; r < out_; ++r) {
      const double g = dy[r];
      const double* row = w_.data() + r * in_;
      for (size_t c = 0; c < in_; ++c) {
        (*dx)[c] += g * row[c];
      }
    }
  }
}

void Linear::ZeroGrad() {
  std::fill(gw_.begin(), gw_.end(), 0.0);
  std::fill(gb_.begin(), gb_.end(), 0.0);
}

void ReluForward(Vec& x) {
  for (double& v : x) {
    v = std::max(0.0, v);
  }
}

void ReluBackward(std::span<const double> activated, Vec& grad) {
  for (size_t i = 0; i < grad.size(); ++i) {
    if (activated[i] <= 0.0) {
      grad[i] = 0.0;
    }
  }
}

double Softplus(double x) {
  if (x > 30.0) {
    return x;
  }
  if (x < -30.0) {
    return std::exp(x);
  }
  return std::log1p(std::exp(x));
}

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double SoftplusPrime(double x) { return Sigmoid(x); }

double InverseNormalCdf(double p) {
  // Peter Acklam's rational approximation with one Halley refinement.
  p = std::clamp(p, 1e-12, 1.0 - 1e-12);
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  double x = 0.0;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley step sharpens the tail accuracy.
  const double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

void AdamOptimizer::Step(std::span<Vec*> params, std::span<Vec*> grads) {
  if (m_.size() != params.size()) {
    m_.resize(params.size());
    v_.resize(params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      m_[i].assign(params[i]->size(), 0.0);
      v_[i].assign(params[i]->size(), 0.0);
    }
  }
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, t_);
  const double bias2 = 1.0 - std::pow(beta2_, t_);
  for (size_t i = 0; i < params.size(); ++i) {
    Vec& p = *params[i];
    const Vec& g = *grads[i];
    Vec& m = m_[i];
    Vec& v = v_[i];
    for (size_t k = 0; k < p.size(); ++k) {
      m[k] = beta1_ * m[k] + (1.0 - beta1_) * g[k];
      v[k] = beta2_ * v[k] + (1.0 - beta2_) * g[k] * g[k];
      const double mhat = m[k] / bias1;
      const double vhat = v[k] / bias2;
      p[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void MaxPoolForward(std::span<const double> x, size_t kernel, Vec& y,
                    std::vector<size_t>& argmax) {
  kernel = std::max<size_t>(kernel, 1);
  const size_t n = x.size();
  const size_t m = (n + kernel - 1) / kernel;
  y.resize(m);
  argmax.resize(m);
  for (size_t i = 0; i < m; ++i) {
    const size_t begin = i * kernel;
    const size_t end = std::min(begin + kernel, n);
    size_t best = begin;
    for (size_t k = begin + 1; k < end; ++k) {
      if (x[k] > x[best]) {
        best = k;
      }
    }
    y[i] = x[best];
    argmax[i] = best;
  }
}

void MaxPoolBackward(std::span<const double> dy, std::span<const size_t> argmax, size_t n,
                     Vec& dx) {
  dx.assign(n, 0.0);
  for (size_t i = 0; i < dy.size(); ++i) {
    dx[argmax[i]] += dy[i];
  }
}

void InterpolateForward(std::span<const double> coeffs, size_t n, Vec& y) {
  const size_t m = coeffs.size();
  y.resize(n);
  if (m == 0) {
    std::fill(y.begin(), y.end(), 0.0);
    return;
  }
  if (m == 1) {
    std::fill(y.begin(), y.end(), coeffs[0]);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    const double pos = n == 1 ? 0.0
                              : static_cast<double>(i) * static_cast<double>(m - 1) /
                                    static_cast<double>(n - 1);
    const size_t lo = std::min(static_cast<size_t>(pos), m - 2);
    const double frac = pos - static_cast<double>(lo);
    y[i] = coeffs[lo] * (1.0 - frac) + coeffs[lo + 1] * frac;
  }
}

void InterpolateBackward(std::span<const double> dy, size_t m, Vec& dcoeffs) {
  const size_t n = dy.size();
  dcoeffs.assign(m, 0.0);
  if (m == 0) {
    return;
  }
  if (m == 1) {
    for (const double g : dy) {
      dcoeffs[0] += g;
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    const double pos = n == 1 ? 0.0
                              : static_cast<double>(i) * static_cast<double>(m - 1) /
                                    static_cast<double>(n - 1);
    const size_t lo = std::min(static_cast<size_t>(pos), m - 2);
    const double frac = pos - static_cast<double>(lo);
    dcoeffs[lo] += dy[i] * (1.0 - frac);
    dcoeffs[lo + 1] += dy[i] * frac;
  }
}

}  // namespace faro
