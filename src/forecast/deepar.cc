#include "src/forecast/deepar.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace faro {
namespace {

constexpr double kSigmaFloor = 1e-3;

}  // namespace

DeepArModel::DeepArModel(const DeepArConfig& config) : config_(config) {
  Rng rng(config_.seed);
  cell_ = LstmCell(1, config_.hidden, rng);
  head_ = Linear(config_.hidden, 2, rng);
}

void DeepArModel::Consume(std::span<const double> sequence, Vec& h, Vec& c,
                          std::vector<LstmCell::StepCache>* caches) const {
  if (caches != nullptr) {
    caches->assign(sequence.size(), {});
  }
  LstmCell::StepCache local;
  for (size_t t = 0; t < sequence.size(); ++t) {
    LstmCell::StepCache& cache = caches != nullptr ? (*caches)[t] : local;
    const double xt = sequence[t];
    cell_.Forward({&xt, 1}, h, c, cache);
    h = cache.h;
    c = cache.c;
  }
}

double DeepArModel::TrainOnSeries(const Series& train, const TrainConfig& train_config) {
  standardizer_ = Standardizer::Fit(train.values());
  // Window = input + horizon; training is one-step-ahead over the window.
  WindowDataset dataset(train, config_.input_size, config_.horizon, standardizer_);
  if (dataset.size() == 0) {
    return 0.0;
  }
  Rng rng(train_config.seed);
  AdamOptimizer adam(train_config.learning_rate);
  std::vector<Vec*> params;
  std::vector<Vec*> grads;
  cell_.CollectParams(params, grads);
  params.push_back(&head_.weights());
  grads.push_back(&head_.weight_grads());
  params.push_back(&head_.bias());
  grads.push_back(&head_.bias_grads());
  auto zero_grad = [&]() {
    cell_.ZeroGrad();
    head_.ZeroGrad();
  };

  const size_t window = config_.input_size + config_.horizon;
  std::vector<LstmCell::StepCache> caches;
  std::vector<Vec> head_dh(window);  // per-step dL/dh from the head
  double epoch_loss = 0.0;
  for (size_t epoch = 0; epoch < train_config.epochs; ++epoch) {
    const std::vector<size_t> order = dataset.EpochOrder(rng);
    epoch_loss = 0.0;
    size_t in_batch = 0;
    zero_grad();
    for (const size_t w : order) {
      // Assemble the full standardised window (input followed by target).
      Vec sequence(window);
      const auto input = dataset.Input(w);
      const auto target = dataset.Target(w);
      std::copy(input.begin(), input.end(), sequence.begin());
      std::copy(target.begin(), target.end(),
                sequence.begin() + static_cast<ptrdiff_t>(config_.input_size));

      // Teacher-forced pass over sequence[0 .. window-2], predicting t+1.
      Vec h(config_.hidden, 0.0);
      Vec c(config_.hidden, 0.0);
      const size_t steps = window - 1;
      Consume({sequence.data(), steps}, h, c, &caches);

      const double norm = static_cast<double>(steps);
      for (size_t t = 0; t < steps; ++t) {
        Vec out;
        head_.Forward(caches[t].h, out);
        const double mu = out[0];
        const double sigma = Softplus(out[1]) + kSigmaFloor;
        const double err = mu - sequence[t + 1];
        epoch_loss += (0.5 * std::log(2.0 * std::numbers::pi) + std::log(sigma) +
                       0.5 * err * err / (sigma * sigma)) /
                      norm;
        Vec dout(2);
        dout[0] = err / (sigma * sigma) / norm;
        dout[1] = (1.0 / sigma - err * err / (sigma * sigma * sigma)) *
                  SoftplusPrime(out[1]) / norm;
        head_.Backward(caches[t].h, dout, &head_dh[t]);
      }

      // BPTT combining recurrent and per-step head gradients.
      Vec dh(config_.hidden, 0.0);
      Vec dc(config_.hidden, 0.0);
      Vec dh_prev;
      Vec dc_prev;
      for (size_t t = steps; t-- > 0;) {
        for (size_t k = 0; k < config_.hidden; ++k) {
          dh[k] += head_dh[t][k];
        }
        cell_.Backward(caches[t], dh, dc, nullptr, dh_prev, dc_prev);
        dh = dh_prev;
        dc = dc_prev;
      }

      if (++in_batch == train_config.batch_size) {
        for (Vec* g : grads) {
          for (double& v : *g) {
            v /= static_cast<double>(in_batch);
          }
        }
        adam.Step(params, grads);
        zero_grad();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      for (Vec* g : grads) {
        for (double& v : *g) {
          v /= static_cast<double>(in_batch);
        }
      }
      adam.Step(params, grads);
      zero_grad();
    }
    epoch_loss /= static_cast<double>(dataset.size());
  }
  return epoch_loss;
}

std::vector<std::vector<double>> DeepArModel::SampleTrajectories(
    std::span<const double> history, size_t num_samples, Rng& rng) {
  // Standardise the (left-padded) history.
  Vec sequence(config_.input_size);
  const double pad = history.empty() ? standardizer_.mean : history.front();
  for (size_t i = 0; i < config_.input_size; ++i) {
    const ptrdiff_t src =
        static_cast<ptrdiff_t>(history.size()) - static_cast<ptrdiff_t>(config_.input_size) +
        static_cast<ptrdiff_t>(i);
    const double raw = src >= 0 ? history[static_cast<size_t>(src)] : pad;
    sequence[i] = standardizer_.Transform(raw);
  }
  Vec h0(config_.hidden, 0.0);
  Vec c0(config_.hidden, 0.0);
  Consume(sequence, h0, c0, nullptr);

  std::vector<std::vector<double>> samples(num_samples);
  LstmCell::StepCache cache;
  for (auto& trajectory : samples) {
    trajectory.resize(config_.horizon);
    Vec h = h0;
    Vec c = c0;
    for (size_t t = 0; t < config_.horizon; ++t) {
      Vec out;
      head_.Forward(h, out);
      const double sigma = Softplus(out[1]) + kSigmaFloor;
      const double value = out[0] + sigma * rng.Normal();
      trajectory[t] = std::max(0.0, standardizer_.Invert(value));
      cell_.Forward({&value, 1}, h, c, cache);
      h = cache.h;
      c = cache.c;
    }
  }
  return samples;
}

std::vector<double> DeepArModel::PredictRaw(std::span<const double> history, size_t num_samples,
                                            Rng& rng) {
  const auto samples = SampleTrajectories(history, num_samples, rng);
  std::vector<double> mean(config_.horizon, 0.0);
  for (const auto& trajectory : samples) {
    for (size_t t = 0; t < config_.horizon; ++t) {
      mean[t] += trajectory[t] / static_cast<double>(num_samples);
    }
  }
  return mean;
}

}  // namespace faro
