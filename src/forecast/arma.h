// ARMA(p, q) fitted by the Hannan-Rissanen two-stage regression -- the class
// of model Cilantro's forecaster uses (§2) and the classical yardstick the
// paper cites deep models beating. Used by tests and the Cilantro-comparison
// bench.

#ifndef SRC_FORECAST_ARMA_H_
#define SRC_FORECAST_ARMA_H_

#include <cstddef>
#include <span>
#include <vector>

namespace faro {

class ArmaModel {
 public:
  ArmaModel(size_t p = 2, size_t q = 1) : p_(p), q_(q) {}

  size_t p() const { return p_; }
  size_t q() const { return q_; }

  // Fits on the series; returns false when there is too little data (the
  // model then forecasts the last value).
  bool Fit(std::span<const double> values);

  // Multi-step forecast continuing from the end of the fitted series (future
  // innovations are zero, as usual).
  std::vector<double> Forecast(size_t horizon) const;

  std::span<const double> ar_coefficients() const { return ar_; }
  std::span<const double> ma_coefficients() const { return ma_; }
  double intercept() const { return intercept_; }

 private:
  size_t p_;
  size_t q_;
  std::vector<double> ar_;
  std::vector<double> ma_;
  double intercept_ = 0.0;
  std::vector<double> tail_values_;     // last p values of the fitted series
  std::vector<double> tail_residuals_;  // last q residuals
  bool fitted_ = false;
  double fallback_ = 0.0;
};

}  // namespace faro

#endif  // SRC_FORECAST_ARMA_H_
