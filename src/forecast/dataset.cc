#include "src/forecast/dataset.h"

#include <cmath>

namespace faro {

Standardizer Standardizer::Fit(std::span<const double> values) {
  Standardizer s;
  if (values.empty()) {
    return s;
  }
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (const double v : values) {
    var += (v - s.mean) * (v - s.mean);
  }
  s.std = std::sqrt(var / static_cast<double>(values.size()));
  if (s.std < 1e-9) {
    s.std = 1.0;
  }
  return s;
}

std::vector<double> Standardizer::TransformAll(std::span<const double> values) const {
  std::vector<double> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = Transform(values[i]);
  }
  return out;
}

WindowDataset::WindowDataset(const Series& series, size_t input_size, size_t horizon,
                             const Standardizer& standardizer)
    : input_size_(input_size), horizon_(horizon) {
  values_ = standardizer.TransformAll(series.values());
  const size_t window = input_size + horizon;
  if (values_.size() >= window) {
    starts_.reserve(values_.size() - window + 1);
    for (size_t s = 0; s + window <= values_.size(); ++s) {
      starts_.push_back(s);
    }
  }
}

}  // namespace faro
