// DeepAR-style probabilistic forecaster (the Cocktail baseline's predictor,
// compared against in §3.5.1): an autoregressive LSTM that emits a Gaussian
// (mu, sigma) for the *next* value at every step, trained with negative
// log-likelihood, and forecasts by sampling trajectories forward.

#ifndef SRC_FORECAST_DEEPAR_H_
#define SRC_FORECAST_DEEPAR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/common/series.h"
#include "src/forecast/dataset.h"
#include "src/forecast/lstm.h"

namespace faro {

struct DeepArConfig {
  size_t input_size = 15;
  size_t horizon = 7;
  size_t hidden = 32;
  uint64_t seed = 3;
};

class DeepArModel {
 public:
  explicit DeepArModel(const DeepArConfig& config);

  const DeepArConfig& config() const { return config_; }

  double TrainOnSeries(const Series& train, const TrainConfig& train_config);

  // Monte-Carlo forecast trajectories in raw space.
  std::vector<std::vector<double>> SampleTrajectories(std::span<const double> history,
                                                      size_t num_samples, Rng& rng);

  // Per-step mean across `num_samples` sampled trajectories (point forecast).
  std::vector<double> PredictRaw(std::span<const double> history, size_t num_samples, Rng& rng);

 private:
  // Runs the cell over a standardised sequence, caching every step; returns
  // final (h, c) through the out-params.
  void Consume(std::span<const double> sequence, Vec& h, Vec& c,
               std::vector<LstmCell::StepCache>* caches) const;

  DeepArConfig config_;
  LstmCell cell_;
  Linear head_;  // hidden -> (mu, sigma_raw) of the next value
  Standardizer standardizer_;
};

}  // namespace faro

#endif  // SRC_FORECAST_DEEPAR_H_
