#include "src/forecast/prophet.h"

#include <cmath>
#include <numbers>

#include "src/optim/linalg.h"

namespace faro {

std::vector<double> ProphetModel::Features(double t) const {
  std::vector<double> features;
  features.reserve(2 + 2 * config_.harmonics + config_.changepoints);
  const double span = std::max<double>(1.0, static_cast<double>(train_size_));
  features.push_back(1.0);
  features.push_back(t / span);  // linear trend, normalised
  const double period = std::max<double>(1.0, static_cast<double>(config_.period));
  for (size_t k = 1; k <= config_.harmonics; ++k) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(k) * t / period;
    features.push_back(std::sin(angle));
    features.push_back(std::cos(angle));
  }
  for (size_t c = 1; c <= config_.changepoints; ++c) {
    const double knot = span * static_cast<double>(c) / static_cast<double>(
                                                            config_.changepoints + 1);
    features.push_back(std::max(0.0, (t - knot) / span));  // hinge
  }
  return features;
}

bool ProphetModel::Fit(std::span<const double> values) {
  fitted_ = false;
  fallback_ = values.empty() ? 0.0 : values.back();
  train_size_ = values.size();
  if (values.size() < 2 * config_.period || values.size() < 16) {
    return false;
  }
  const size_t k = Features(0.0).size();
  Matrix xtx(k, k);
  std::vector<double> xty(k, 0.0);
  for (size_t t = 0; t < values.size(); ++t) {
    const std::vector<double> x = Features(static_cast<double>(t));
    for (size_t i = 0; i < k; ++i) {
      xty[i] += x[i] * values[t];
      for (size_t j = 0; j < k; ++j) {
        xtx(i, j) += x[i] * x[j];
      }
    }
  }
  for (size_t i = 0; i < k; ++i) {
    xtx(i, i) += config_.ridge;
  }
  if (!LuSolve(xtx, xty, beta_)) {
    return false;
  }
  fitted_ = true;
  return true;
}

double ProphetModel::FittedAt(size_t t) const {
  if (!fitted_) {
    return fallback_;
  }
  const std::vector<double> x = Features(static_cast<double>(t));
  double value = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    value += beta_[i] * x[i];
  }
  return value;
}

std::vector<double> ProphetModel::Forecast(size_t horizon) const {
  std::vector<double> out(horizon, fallback_);
  if (!fitted_) {
    return out;
  }
  for (size_t h = 0; h < horizon; ++h) {
    out[h] = std::max(0.0, FittedAt(train_size_ + h));
  }
  return out;
}

}  // namespace faro
