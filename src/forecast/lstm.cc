#include "src/forecast/lstm.h"

#include <algorithm>
#include <cmath>

namespace faro {

LstmCell::LstmCell(size_t input_dim, size_t hidden, Rng& rng)
    : input_dim_(input_dim), hidden_(hidden), gates_(input_dim + hidden, 4 * hidden, rng) {
  // Standard trick: positive forget-gate bias so memory persists early in
  // training.
  for (size_t k = hidden; k < 2 * hidden; ++k) {
    gates_.bias()[k] = 1.0;
  }
}

void LstmCell::Forward(std::span<const double> x, const Vec& h_prev, const Vec& c_prev,
                       StepCache& cache) const {
  const size_t h = hidden_;
  cache.xin.assign(input_dim_ + h, 0.0);
  std::copy(x.begin(), x.end(), cache.xin.begin());
  std::copy(h_prev.begin(), h_prev.end(), cache.xin.begin() + static_cast<ptrdiff_t>(input_dim_));
  cache.c_prev = c_prev;

  Vec z;
  gates_.Forward(cache.xin, z);
  cache.i.resize(h);
  cache.f.resize(h);
  cache.g.resize(h);
  cache.o.resize(h);
  cache.c.resize(h);
  cache.h.resize(h);
  cache.tanh_c.resize(h);
  for (size_t k = 0; k < h; ++k) {
    cache.i[k] = Sigmoid(z[k]);
    cache.f[k] = Sigmoid(z[h + k]);
    cache.g[k] = std::tanh(z[2 * h + k]);
    cache.o[k] = Sigmoid(z[3 * h + k]);
    cache.c[k] = cache.f[k] * c_prev[k] + cache.i[k] * cache.g[k];
    cache.tanh_c[k] = std::tanh(cache.c[k]);
    cache.h[k] = cache.o[k] * cache.tanh_c[k];
  }
}

void LstmCell::Backward(const StepCache& cache, const Vec& dh, const Vec& dc, Vec* dx,
                        Vec& dh_prev, Vec& dc_prev) {
  const size_t h = hidden_;
  Vec dz(4 * h);
  dc_prev.assign(h, 0.0);
  for (size_t k = 0; k < h; ++k) {
    const double d_o = dh[k] * cache.tanh_c[k];
    const double dct = dc[k] + dh[k] * cache.o[k] * (1.0 - cache.tanh_c[k] * cache.tanh_c[k]);
    const double d_i = dct * cache.g[k];
    const double d_f = dct * cache.c_prev[k];
    const double d_g = dct * cache.i[k];
    dc_prev[k] = dct * cache.f[k];
    dz[k] = d_i * cache.i[k] * (1.0 - cache.i[k]);
    dz[h + k] = d_f * cache.f[k] * (1.0 - cache.f[k]);
    dz[2 * h + k] = d_g * (1.0 - cache.g[k] * cache.g[k]);
    dz[3 * h + k] = d_o * cache.o[k] * (1.0 - cache.o[k]);
  }
  Vec dxin;
  gates_.Backward(cache.xin, dz, &dxin);
  if (dx != nullptr) {
    dx->assign(dxin.begin(), dxin.begin() + static_cast<ptrdiff_t>(input_dim_));
  }
  dh_prev.assign(dxin.begin() + static_cast<ptrdiff_t>(input_dim_), dxin.end());
}

void LstmCell::CollectParams(std::vector<Vec*>& params, std::vector<Vec*>& grads) {
  params.push_back(&gates_.weights());
  grads.push_back(&gates_.weight_grads());
  params.push_back(&gates_.bias());
  grads.push_back(&gates_.bias_grads());
}

LstmModel::LstmModel(const LstmConfig& config) : config_(config) {
  Rng rng(config_.seed);
  cell_ = LstmCell(1, config_.hidden, rng);
  head_ = Linear(config_.hidden, config_.horizon, rng);
}

Vec LstmModel::Forward(std::span<const double> x) {
  steps_.assign(x.size(), {});
  Vec h(config_.hidden, 0.0);
  Vec c(config_.hidden, 0.0);
  for (size_t t = 0; t < x.size(); ++t) {
    const double xt = x[t];
    cell_.Forward({&xt, 1}, h, c, steps_[t]);
    h = steps_[t].h;
    c = steps_[t].c;
  }
  final_h_ = h;
  Vec y;
  head_.Forward(final_h_, y);
  return y;
}

void LstmModel::Backward(std::span<const double> dy) {
  Vec dh;
  head_.Backward(final_h_, dy, &dh);
  Vec dc(config_.hidden, 0.0);
  Vec dh_prev;
  Vec dc_prev;
  for (size_t t = steps_.size(); t-- > 0;) {
    cell_.Backward(steps_[t], dh, dc, nullptr, dh_prev, dc_prev);
    dh = dh_prev;
    dc = dc_prev;
  }
}

void LstmModel::ZeroGrad() {
  cell_.ZeroGrad();
  head_.ZeroGrad();
}

void LstmModel::CollectParams(std::vector<Vec*>& params, std::vector<Vec*>& grads) {
  cell_.CollectParams(params, grads);
  params.push_back(&head_.weights());
  grads.push_back(&head_.weight_grads());
  params.push_back(&head_.bias());
  grads.push_back(&head_.bias_grads());
}

double LstmModel::TrainOnSeries(const Series& train, const TrainConfig& train_config) {
  standardizer_ = Standardizer::Fit(train.values());
  WindowDataset dataset(train, config_.input_size, config_.horizon, standardizer_);
  if (dataset.size() == 0) {
    return 0.0;
  }
  Rng rng(train_config.seed);
  AdamOptimizer adam(train_config.learning_rate);
  std::vector<Vec*> params;
  std::vector<Vec*> grads;
  CollectParams(params, grads);

  Vec dy(config_.horizon);
  double epoch_loss = 0.0;
  for (size_t epoch = 0; epoch < train_config.epochs; ++epoch) {
    const std::vector<size_t> order = dataset.EpochOrder(rng);
    epoch_loss = 0.0;
    size_t in_batch = 0;
    ZeroGrad();
    for (const size_t w : order) {
      const Vec y = Forward(dataset.Input(w));
      const std::span<const double> target = dataset.Target(w);
      for (size_t i = 0; i < config_.horizon; ++i) {
        const double err = y[i] - target[i];
        epoch_loss += err * err / static_cast<double>(config_.horizon);
        dy[i] = 2.0 * err / static_cast<double>(config_.horizon);
      }
      Backward(dy);
      if (++in_batch == train_config.batch_size) {
        for (Vec* g : grads) {
          for (double& v : *g) {
            v /= static_cast<double>(in_batch);
          }
        }
        adam.Step(params, grads);
        ZeroGrad();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      for (Vec* g : grads) {
        for (double& v : *g) {
          v /= static_cast<double>(in_batch);
        }
      }
      adam.Step(params, grads);
      ZeroGrad();
    }
    epoch_loss /= static_cast<double>(dataset.size());
  }
  return epoch_loss;
}

std::vector<double> LstmModel::PredictRaw(std::span<const double> history) {
  Vec input(config_.input_size, 0.0);
  const double pad = history.empty() ? standardizer_.mean : history.front();
  for (size_t i = 0; i < config_.input_size; ++i) {
    const ptrdiff_t src =
        static_cast<ptrdiff_t>(history.size()) - static_cast<ptrdiff_t>(config_.input_size) +
        static_cast<ptrdiff_t>(i);
    const double raw = src >= 0 ? history[static_cast<size_t>(src)] : pad;
    input[i] = standardizer_.Transform(raw);
  }
  Vec y = Forward(input);
  std::vector<double> out(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    out[i] = std::max(0.0, standardizer_.Invert(y[i]));
  }
  return out;
}

}  // namespace faro
