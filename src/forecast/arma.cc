#include "src/forecast/arma.h"

#include <algorithm>
#include <cmath>

#include "src/optim/linalg.h"

namespace faro {
namespace {

// Ordinary least squares via ridge-stabilised normal equations.
bool SolveLeastSquares(const std::vector<std::vector<double>>& rows,
                       const std::vector<double>& y, std::vector<double>& beta) {
  if (rows.empty()) {
    return false;
  }
  const size_t k = rows[0].size();
  Matrix xtx(k, k);
  std::vector<double> xty(k, 0.0);
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t i = 0; i < k; ++i) {
      xty[i] += rows[r][i] * y[r];
      for (size_t j = 0; j < k; ++j) {
        xtx(i, j) += rows[r][i] * rows[r][j];
      }
    }
  }
  for (size_t i = 0; i < k; ++i) {
    xtx(i, i) += 1e-8;
  }
  return LuSolve(xtx, xty, beta);
}

}  // namespace

bool ArmaModel::Fit(std::span<const double> values) {
  fitted_ = false;
  fallback_ = values.empty() ? 0.0 : values.back();
  const size_t n = values.size();
  const size_t m = p_ + q_ + 3;  // stage-1 long-AR order
  if (n < m + p_ + q_ + 5) {
    return false;
  }

  // Stage 1: long autoregression to estimate the innovation sequence.
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (size_t t = m; t < n; ++t) {
    std::vector<double> row(m + 1);
    for (size_t lag = 0; lag < m; ++lag) {
      row[lag] = values[t - 1 - lag];
    }
    row[m] = 1.0;
    rows.push_back(std::move(row));
    targets.push_back(values[t]);
  }
  std::vector<double> phi;
  if (!SolveLeastSquares(rows, targets, phi)) {
    return false;
  }
  std::vector<double> residuals(n, 0.0);
  for (size_t t = m; t < n; ++t) {
    double fitted = phi[m];
    for (size_t lag = 0; lag < m; ++lag) {
      fitted += phi[lag] * values[t - 1 - lag];
    }
    residuals[t] = values[t] - fitted;
  }

  // Stage 2: regress y_t on its own lags and lagged residuals.
  rows.clear();
  targets.clear();
  const size_t start = m + std::max(p_, q_);
  for (size_t t = start; t < n; ++t) {
    std::vector<double> row(p_ + q_ + 1);
    for (size_t lag = 0; lag < p_; ++lag) {
      row[lag] = values[t - 1 - lag];
    }
    for (size_t lag = 0; lag < q_; ++lag) {
      row[p_ + lag] = residuals[t - 1 - lag];
    }
    row[p_ + q_] = 1.0;
    rows.push_back(std::move(row));
    targets.push_back(values[t]);
  }
  std::vector<double> beta;
  if (!SolveLeastSquares(rows, targets, beta)) {
    return false;
  }
  ar_.assign(beta.begin(), beta.begin() + static_cast<ptrdiff_t>(p_));
  ma_.assign(beta.begin() + static_cast<ptrdiff_t>(p_),
             beta.begin() + static_cast<ptrdiff_t>(p_ + q_));
  intercept_ = beta[p_ + q_];

  tail_values_.assign(p_, 0.0);
  for (size_t lag = 0; lag < p_ && lag < n; ++lag) {
    tail_values_[lag] = values[n - 1 - lag];
  }
  tail_residuals_.assign(q_, 0.0);
  for (size_t lag = 0; lag < q_ && lag < n; ++lag) {
    tail_residuals_[lag] = residuals[n - 1 - lag];
  }
  fitted_ = true;
  return true;
}

std::vector<double> ArmaModel::Forecast(size_t horizon) const {
  std::vector<double> out(horizon, fallback_);
  if (!fitted_) {
    return out;
  }
  std::vector<double> recent = tail_values_;      // recent[0] is the newest
  std::vector<double> innovations = tail_residuals_;
  for (size_t h = 0; h < horizon; ++h) {
    double value = intercept_;
    for (size_t lag = 0; lag < p_; ++lag) {
      value += ar_[lag] * recent[lag];
    }
    for (size_t lag = 0; lag < q_; ++lag) {
      value += ma_[lag] * innovations[lag];
    }
    out[h] = value;
    // Shift: the forecast becomes the newest "observation"; future
    // innovations are zero in expectation.
    for (size_t lag = p_; lag-- > 1;) {
      recent[lag] = recent[lag - 1];
    }
    if (p_ > 0) {
      recent[0] = value;
    }
    for (size_t lag = q_; lag-- > 1;) {
      innovations[lag] = innovations[lag - 1];
    }
    if (q_ > 0) {
      innovations[0] = 0.0;
    }
  }
  return out;
}

}  // namespace faro
