// Prophet-style decomposable forecaster: piecewise-linear trend plus Fourier
// seasonality, fit in closed form by ridge regression. This is the predictor
// class Barista uses (§3.5.1 cites Prophet among prior proactive
// autoscalers); it serves as another comparison arm and as a fast, training-
// free-ish fallback predictor.

#ifndef SRC_FORECAST_PROPHET_H_
#define SRC_FORECAST_PROPHET_H_

#include <cstddef>
#include <span>
#include <vector>

namespace faro {

struct ProphetConfig {
  // Samples per seasonal period (e.g. 360 for a day of 4-min-averaged
  // minutes, 1440 for raw minutes).
  size_t period = 360;
  // Fourier harmonics of the seasonal component.
  size_t harmonics = 6;
  // Evenly spaced trend changepoints over the training span.
  size_t changepoints = 8;
  // Ridge regularisation strength.
  double ridge = 1.0;
};

class ProphetModel {
 public:
  explicit ProphetModel(const ProphetConfig& config = {}) : config_(config) {}

  // Fits on a uniformly sampled series (one value per step). Returns false
  // when there is too little data (the model then forecasts the last value).
  bool Fit(std::span<const double> values);

  // Forecasts steps `train_size .. train_size + horizon - 1`.
  std::vector<double> Forecast(size_t horizon) const;

  // In-sample fitted value at step t (for tests and decomposition checks).
  double FittedAt(size_t t) const;

  bool fitted() const { return fitted_; }
  size_t train_size() const { return train_size_; }

 private:
  std::vector<double> Features(double t) const;

  ProphetConfig config_;
  std::vector<double> beta_;
  size_t train_size_ = 0;
  double fallback_ = 0.0;
  bool fitted_ = false;
};

}  // namespace faro

#endif  // SRC_FORECAST_PROPHET_H_
