// Prophet-backed WorkloadPredictor: one ProphetModel per job, trained once on
// a long history (like the N-HiTS adapter). Prophet is a *global* seasonal
// model, so forecasts depend on absolute time: the caller advances the clock
// with SetCurrentStep (steps since the end of the training series). Forecasts
// are re-anchored to the recent observed level, which removes slow trend
// drift; what remains is the seasonal shape -- useful, but blind to the
// minute-level fluctuation probabilistic N-HiTS captures (§3.5.2).

#ifndef SRC_FORECAST_PROPHET_ADAPTER_H_
#define SRC_FORECAST_PROPHET_ADAPTER_H_

#include <unordered_map>

#include "src/common/series.h"
#include "src/core/predictor.h"
#include "src/forecast/prophet.h"

namespace faro {

class ProphetWorkloadPredictor : public WorkloadPredictor {
 public:
  explicit ProphetWorkloadPredictor(ProphetConfig config = {}) : config_(config) {}

  // Fits job's model on a long training series; returns false when the series
  // is too short (prediction then falls back to a damped average).
  bool TrainJob(size_t job, const Series& train);

  size_t trained_jobs() const { return models_.size(); }

  // Steps elapsed since the end of every job's training series.
  void SetCurrentStep(size_t step) { current_step_ = step; }

  std::vector<double> PredictQuantile(size_t job, std::span<const double> history,
                                      size_t horizon, double quantile) override;

 private:
  ProphetConfig config_;
  std::unordered_map<size_t, ProphetModel> models_;
  DampedAveragePredictor fallback_;
  size_t current_step_ = 0;
};

}  // namespace faro

#endif  // SRC_FORECAST_PROPHET_ADAPTER_H_
