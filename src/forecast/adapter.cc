#include "src/forecast/adapter.h"

#include <algorithm>

namespace faro {

double NHitsWorkloadPredictor::TrainJob(size_t job, const Series& train) {
  NHitsConfig config = model_config_;
  config.seed = model_config_.seed + job * 7919;
  auto model = std::make_unique<NHitsModel>(config);
  TrainConfig tc = train_config_;
  tc.seed = train_config_.seed + job * 104729;
  const double loss = model->TrainOnSeries(train, tc);
  models_[job] = std::move(model);
  return loss;
}

NHitsModel* NHitsWorkloadPredictor::model(size_t job) {
  auto it = models_.find(job);
  return it == models_.end() ? nullptr : it->second.get();
}

std::vector<double> NHitsWorkloadPredictor::PredictQuantile(size_t job,
                                                            std::span<const double> history,
                                                            size_t horizon, double quantile) {
  NHitsModel* model = this->model(job);
  if (model == nullptr || !model->trained()) {
    return fallback_.PredictQuantile(job, history, horizon, quantile);
  }
  // The forward pass reuses the model's activation scratch; serialise it so
  // concurrent trials sharing this predictor never race (see header).
  std::unique_lock<std::mutex> lock(predict_mutex_);
  std::vector<double> trajectory = model->PredictQuantileRaw(history, quantile);
  lock.unlock();
  if (trajectory.size() > horizon) {
    trajectory.resize(horizon);
  }
  while (trajectory.size() < horizon) {
    trajectory.push_back(trajectory.empty() ? 0.0 : trajectory.back());
  }
  return trajectory;
}

}  // namespace faro
