#include "src/workload/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/common/rng.h"

namespace faro {

Series GenerateSyntheticTrace(const SyntheticTraceConfig& config) {
  const size_t total = config.days * config.steps_per_day;
  std::vector<double> values(total, 0.0);
  Rng rng(config.seed);

  // Day-of-week multipliers around 1.0.
  double weekday[7];
  for (double& w : weekday) {
    w = 1.0 + config.weekly_amp * rng.Uniform(-1.0, 1.0);
  }

  double noise = 0.0;
  const double noise_innovation = std::sqrt(1.0 - config.noise_corr * config.noise_corr);

  // Spike state: exponentially decaying additive bursts.
  double spike = 0.0;
  const double spike_prob_per_step =
      config.spike_rate_per_day / static_cast<double>(config.steps_per_day);
  const double spike_decay =
      std::exp(-1.0 / std::max(config.spike_duration_min, 1e-6));

  for (size_t t = 0; t < total; ++t) {
    const double day_frac =
        static_cast<double>(t % config.steps_per_day) / static_cast<double>(config.steps_per_day);
    const double phase = 2.0 * std::numbers::pi * (day_frac - config.diurnal_phase);
    // Daily cycle in [0, 1] plus a second harmonic for the two-peak shapes
    // common in the Azure traces.
    double cycle = 0.5 * (1.0 + std::sin(phase));
    cycle += config.second_harmonic * 0.5 * (1.0 + std::sin(2.0 * phase));
    cycle /= 1.0 + config.second_harmonic;

    const size_t day = (t / config.steps_per_day) % 7;
    double level = (config.base + config.diurnal_amp * cycle) * weekday[day];

    // AR(1) multiplicative noise.
    noise = config.noise_corr * noise + noise_innovation * rng.Normal();
    level *= 1.0 + config.noise_level * noise;

    // Transient spikes.
    spike *= spike_decay;
    if (rng.Uniform() < spike_prob_per_step) {
      spike += config.spike_amp * level * (0.5 + rng.Uniform());
    }
    values[t] = std::max(0.0, level + spike);
  }
  return Series(std::move(values));
}

SyntheticTraceConfig AzureLikeConfig(size_t job_index, uint64_t seed) {
  SyntheticTraceConfig config;
  Rng rng(seed ^ (0xa27e5ull + job_index * 0x9e3779b97f4a7c15ull));
  config.seed = rng.NextU64();
  config.base = rng.Uniform(40.0, 160.0);
  config.diurnal_amp = rng.Uniform(150.0, 500.0);
  config.diurnal_phase = rng.Uniform(0.0, 1.0);
  config.second_harmonic = rng.Uniform(0.0, 0.6);
  config.weekly_amp = rng.Uniform(0.05, 0.25);
  config.noise_level = rng.Uniform(0.05, 0.15);
  config.noise_corr = rng.Uniform(0.6, 0.9);
  config.spike_rate_per_day = rng.Uniform(1.0, 6.0);
  config.spike_amp = rng.Uniform(0.4, 1.2);
  config.spike_duration_min = rng.Uniform(4.0, 15.0);
  return config;
}

SyntheticTraceConfig TwitterLikeConfig(uint64_t seed) {
  SyntheticTraceConfig config;
  Rng rng(seed ^ 0x7717e6ull);
  config.seed = rng.NextU64();
  config.base = 60.0;
  config.diurnal_amp = 600.0;
  config.diurnal_phase = 0.7;  // evening peak
  config.second_harmonic = 0.15;
  config.weekly_amp = 0.10;
  config.noise_level = 0.20;  // burstier minute-level variation
  config.noise_corr = 0.7;
  config.spike_rate_per_day = 8.0;
  config.spike_amp = 1.0;
  config.spike_duration_min = 5.0;
  return config;
}

std::vector<Series> StandardJobMix(size_t num_jobs, uint64_t seed) {
  std::vector<Series> traces;
  traces.reserve(num_jobs);
  for (size_t i = 0; i < num_jobs; ++i) {
    const size_t slot = i % 10;
    const uint64_t round = i / 10;  // fresh seeds when the mix is duplicated
    const uint64_t job_seed = seed + round * 1000003ull;
    Series trace = (slot == 9) ? GenerateSyntheticTrace(TwitterLikeConfig(job_seed))
                               : GenerateSyntheticTrace(AzureLikeConfig(slot, job_seed));
    traces.push_back(trace.RescaledTo(1.0, 1600.0));
  }
  return traces;
}

TraceSplit SplitTrainEval(const Series& trace, size_t steps_per_day) {
  TraceSplit split;
  if (trace.size() <= steps_per_day) {
    split.eval = trace;
    return split;
  }
  const size_t eval_begin = trace.size() - steps_per_day;
  split.train = trace.Slice(0, eval_begin);
  split.eval = trace.Slice(eval_begin, trace.size());
  return split;
}

}  // namespace faro
