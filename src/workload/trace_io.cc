#include "src/workload/trace_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace faro {
namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream stream(line);
  while (std::getline(stream, cell, ',')) {
    cells.push_back(cell);
  }
  if (!line.empty() && line.back() == ',') {
    cells.emplace_back();
  }
  return cells;
}

bool ParseDouble(const std::string& text, double& out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  // Allow trailing whitespace / carriage returns.
  while (end != nullptr && (*end == ' ' || *end == '\r' || *end == '\t')) {
    ++end;
  }
  return end != nullptr && *end == '\0';
}

}  // namespace

bool SaveTracesCsv(const std::string& path, const std::vector<Series>& traces,
                   const std::vector<std::string>& names) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  if (!names.empty()) {
    for (size_t c = 0; c < traces.size(); ++c) {
      if (c > 0) {
        out << ',';
      }
      out << (c < names.size() ? names[c] : "");
    }
    out << '\n';
  }
  size_t rows = 0;
  for (const Series& trace : traces) {
    rows = std::max(rows, trace.size());
  }
  char buffer[64];
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < traces.size(); ++c) {
      if (c > 0) {
        out << ',';
      }
      if (r < traces[c].size()) {
        std::snprintf(buffer, sizeof(buffer), "%.6g", traces[c][r]);
        out << buffer;
      }
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

std::vector<Series> LoadTracesCsv(const std::string& path, std::vector<std::string>* names) {
  std::ifstream in(path);
  if (!in) {
    return {};
  }
  std::vector<std::vector<double>> columns;
  std::vector<std::string> header;
  std::string line;
  bool first_line = true;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") {
      continue;
    }
    const std::vector<std::string> cells = SplitCsvLine(line);
    if (first_line) {
      first_line = false;
      double probe = 0.0;
      if (!cells.empty() && !ParseDouble(cells[0], probe)) {
        // Header row.
        header = cells;
        if (names != nullptr) {
          *names = cells;
        }
        columns.resize(cells.size());
        continue;
      }
    }
    if (columns.size() < cells.size()) {
      columns.resize(cells.size());
    }
    for (size_t c = 0; c < cells.size(); ++c) {
      if (cells[c].empty() || cells[c] == "\r") {
        continue;  // ragged row padding from SaveTracesCsv
      }
      double value = 0.0;
      if (!ParseDouble(cells[c], value)) {
        std::string field = "column " + std::to_string(c + 1);
        if (c < header.size() && !header[c].empty()) {
          field += " ('" + header[c] + "')";
        }
        throw std::invalid_argument(
            "TraceCsv: " + path + ":" + std::to_string(line_no) + ": " + field +
            ": cannot parse '" + cells[c] +
            "' as a number (empty cells mark ragged-trace padding and are the "
            "only non-numeric values allowed past the header)");
      }
      columns[c].push_back(value);
    }
  }
  std::vector<Series> traces;
  traces.reserve(columns.size());
  for (auto& column : columns) {
    traces.emplace_back(std::move(column));
  }
  return traces;
}

}  // namespace faro
