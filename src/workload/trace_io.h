// CSV trace I/O: load real traces (one column per job, optional header) and
// save generated ones, so the pipeline can run on the actual Azure/Twitter
// data when it is available.

#ifndef SRC_WORKLOAD_TRACE_IO_H_
#define SRC_WORKLOAD_TRACE_IO_H_

#include <string>
#include <vector>

#include "src/common/series.h"

namespace faro {

// Writes one series per column. `names` (optional) becomes the header row.
// Rows are padded with empty cells when series lengths differ.
bool SaveTracesCsv(const std::string& path, const std::vector<Series>& traces,
                   const std::vector<std::string>& names = {});

// Reads a CSV of numeric columns. A non-numeric first row is treated as a
// header (returned through `names` when non-null). Empty cells are skipped
// (they are how SaveTracesCsv pads ragged traces). Returns an empty vector
// when the file cannot be opened; throws std::invalid_argument naming the
// file, line, and column for any other non-numeric cell, so truncated or
// garbage external traces fail loudly instead of silently losing samples.
std::vector<Series> LoadTracesCsv(const std::string& path,
                                  std::vector<std::string>* names = nullptr);

}  // namespace faro

#endif  // SRC_WORKLOAD_TRACE_IO_H_
