// Synthetic workload traces standing in for the Azure Functions and Twitter
// production traces the paper evaluates with (§6; substitution documented in
// DESIGN.md).
//
// The generators reproduce the macro-structure the experiments depend on:
//  - strong diurnal periodicity with a per-job phase and second harmonic
//    (Azure function invocation counts are dominated by timer/cron patterns);
//  - a weekly modulation;
//  - autocorrelated minute-level noise (AR(1)), the fluctuation probabilistic
//    prediction exists to capture (Fig. 8);
//  - heavy-tailed transient spikes, the events the hybrid reactive autoscaler
//    exists to absorb (§4.4).
//
// Traces are per-minute arrival counts over `days` days. The evaluation
// pipeline rescales them into 1-1600 requests/minute, trains predictors on
// days 1-10 and evaluates on day 11, exactly as in §6.

#ifndef SRC_WORKLOAD_SYNTHETIC_H_
#define SRC_WORKLOAD_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "src/common/series.h"

namespace faro {

struct SyntheticTraceConfig {
  size_t days = 11;
  size_t steps_per_day = 1440;  // one-minute resolution

  double base = 100.0;           // constant floor
  double diurnal_amp = 300.0;    // amplitude of the daily cycle
  double diurnal_phase = 0.0;    // fraction of a day, [0, 1)
  double second_harmonic = 0.3;  // relative amplitude of the 12 h harmonic
  double weekly_amp = 0.15;      // relative day-of-week modulation
  double noise_level = 0.08;     // AR(1) noise, fraction of local level
  double noise_corr = 0.8;       // AR(1) coefficient
  double spike_rate_per_day = 3.0;   // expected transient spikes per day
  double spike_amp = 2.0;            // spike height, multiple of local level
  double spike_duration_min = 8.0;   // exponential decay constant (minutes)

  uint64_t seed = 1;
};

// Generates a per-minute arrival-count series (non-negative).
Series GenerateSyntheticTrace(const SyntheticTraceConfig& config);

// Preset resembling one of the top Azure function traces; `job_index` varies
// phase, amplitude and burstiness so a mix of jobs is heterogeneous.
SyntheticTraceConfig AzureLikeConfig(size_t job_index, uint64_t seed);

// Preset resembling the Twitter stream trace: deeper diurnal swing, sharper
// evening peak, burstier minute-level noise.
SyntheticTraceConfig TwitterLikeConfig(uint64_t seed);

// The paper's 10-job mix: 9 Azure-like traces plus 1 Twitter-like trace,
// rescaled to [1, 1600] requests/minute (§6). For num_jobs > 10 the mix is
// duplicated with fresh seeds (as the paper duplicates workloads at scale).
std::vector<Series> StandardJobMix(size_t num_jobs, uint64_t seed);

// Train/eval split per §6: days 1..(days-1) train the predictor, the final
// day is the evaluation trace.
struct TraceSplit {
  Series train;
  Series eval;
};
TraceSplit SplitTrainEval(const Series& trace, size_t steps_per_day);

}  // namespace faro

#endif  // SRC_WORKLOAD_SYNTHETIC_H_
