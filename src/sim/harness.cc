#include "src/sim/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <span>

#include "src/baselines/baselines.h"
#include "src/baselines/cilantro.h"
#include "src/common/parallel.h"
#include "src/common/stats.h"
#include "src/obs/slo.h"
#include "src/workload/synthetic.h"

namespace faro {

const TrialRaceConfig& DefaultTrialRace() {
  static const TrialRaceConfig config = [] {
    TrialRaceConfig c;
    const char* env = std::getenv("FARO_RACE");
    c.enabled = env != nullptr && env[0] == '1';
    return c;
  }();
  return config;
}

JobSpec ResNet34Spec(const std::string& name) {
  JobSpec spec;
  spec.name = name;
  spec.processing_time = 0.180;
  spec.slo = 0.720;  // 4x the per-request processing time (§6)
  spec.percentile = 0.99;
  return spec;
}

JobSpec ResNet18Spec(const std::string& name) {
  JobSpec spec;
  spec.name = name;
  spec.processing_time = 0.100;
  spec.slo = 0.400;
  spec.percentile = 0.99;
  return spec;
}

PreparedWorkload PrepareWorkload(const ExperimentSetup& setup) {
  PreparedWorkload workload;
  const std::vector<Series> traces = StandardJobMix(setup.num_jobs, setup.seed);
  const size_t steps_per_day = 1440 / std::max<size_t>(setup.window_average, 1);

  // Heterogeneous peak demand across the mix: rescaling every job to the
  // same 1-1600 range would make FairShare's equal split trivially adequate;
  // real traces have heavy hitters and light jobs.
  static constexpr double kPeakWeight[10] = {1.0, 0.45, 0.8,  0.3, 0.6,
                                             0.25, 0.9,  0.5, 0.35, 0.7};

  std::vector<Series> compressed(setup.num_jobs);
  std::vector<JobSpec> specs(setup.num_jobs);
  for (size_t i = 0; i < setup.num_jobs; ++i) {
    specs[i] = (setup.mixed_models && i % 2 == 1) ? ResNet18Spec("job" + std::to_string(i))
                                                  : ResNet34Spec("job" + std::to_string(i));
    const Series weighted = traces[i].RescaledTo(1.0, 1600.0 * kPeakWeight[i % 10]);
    // Compress 4-minute windows first so train and eval share the time base.
    compressed[i] = weighted.WindowAveraged(setup.window_average);
  }

  // Calibrate the global scale so the peak total replica demand over the
  // evaluation day matches the right-sized cluster (§6: 36 replicas for the
  // 10-job mix). Demand is the exact per-job M/D/c sizing at the p99 SLO,
  // summed across jobs and maximised over the day; bisection finds the scale
  // because that sizing is nonlinear in the arrival rate.
  auto peak_total_required = [&](double scale) {
    uint32_t peak = 0;
    for (size_t t = 0; t < steps_per_day; ++t) {
      uint32_t demand = 0;
      for (size_t i = 0; i < setup.num_jobs; ++i) {
        const size_t eval_index = compressed[i].size() - steps_per_day + t;
        const double lambda = scale * compressed[i][eval_index] / 60.0;  // req/s
        demand += RequiredReplicasMdc(lambda, specs[i].processing_time, specs[i].slo,
                                      specs[i].percentile);
      }
      peak = std::max(peak, demand);
    }
    return static_cast<double>(peak);
  };
  double scale_lo = 1e-3;
  double scale_hi = 4.0;
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (scale_lo + scale_hi);
    if (peak_total_required(mid) <= setup.right_size_replicas) {
      scale_lo = mid;
    } else {
      scale_hi = mid;
    }
  }
  const double scale = scale_lo;

  for (size_t i = 0; i < setup.num_jobs; ++i) {
    std::vector<double>& values = compressed[i].mutable_values();
    for (double& v : values) {
      v = std::max(1.0, v * scale);
    }
    const TraceSplit split = SplitTrainEval(compressed[i], steps_per_day);

    SimJobConfig job;
    job.spec = specs[i];
    job.arrival_rate_per_min = split.eval;
    job.initial_replicas = 1;
    workload.jobs.push_back(std::move(job));

    // Predictors see per-second rates at runtime (router metric windows).
    std::vector<double> per_second(split.train.size());
    for (size_t t = 0; t < split.train.size(); ++t) {
      per_second[t] = split.train[t] / 60.0;
    }
    workload.train_rates_per_s.emplace_back(std::move(per_second));
  }
  return workload;
}

std::shared_ptr<NHitsWorkloadPredictor> TrainPredictor(const PreparedWorkload& workload,
                                                       uint64_t seed, size_t epochs) {
  NHitsConfig model_config;  // 15-min history -> 7-min window (§5)
  model_config.seed = seed;
  TrainConfig train_config;
  train_config.epochs = epochs;
  train_config.seed = seed ^ 0x5eedull;
  auto predictor = std::make_shared<NHitsWorkloadPredictor>(model_config, train_config);
  for (size_t i = 0; i < workload.train_rates_per_s.size(); ++i) {
    predictor->TrainJob(i, workload.train_rates_per_s[i]);
  }
  return predictor;
}

const std::vector<std::string>& AllPolicyNames() {
  static const std::vector<std::string> kNames = {
      "Faro-Sum",  "Faro-Fair", "Faro-FairSum",          "Faro-PenaltySum",
      "Faro-PenaltyFairSum",    "MArk/Cocktail/Barista", "AIAD",
      "FairShare", "Oneshot"};
  return kNames;
}

std::unique_ptr<AutoscalingPolicy> MakePolicy(
    const std::string& name, std::shared_ptr<NHitsWorkloadPredictor> predictor,
    const FaroConfig* faro_overrides) {
  if (name == "FairShare") {
    return std::make_unique<FairSharePolicy>();
  }
  if (name == "Oneshot") {
    return std::make_unique<OneshotPolicy>();
  }
  if (name == "AIAD") {
    return std::make_unique<AiadPolicy>();
  }
  if (name == "MArk/Cocktail/Barista" || name == "MArk") {
    return std::make_unique<MarkPolicy>(predictor);
  }
  if (name == "Cilantro") {
    return std::make_unique<CilantroPolicy>();
  }
  FaroConfig config = faro_overrides != nullptr ? *faro_overrides : FaroConfig{};
  if (name == "Faro-Sum") {
    config.objective = ObjectiveKind::kSum;
  } else if (name == "Faro-Fair") {
    config.objective = ObjectiveKind::kFair;
  } else if (name == "Faro-FairSum") {
    config.objective = ObjectiveKind::kFairSum;
  } else if (name == "Faro-PenaltySum") {
    config.objective = ObjectiveKind::kPenaltySum;
  } else if (name == "Faro-PenaltyFairSum") {
    config.objective = ObjectiveKind::kPenaltyFairSum;
  } else if (name != "Faro") {
    return nullptr;
  }
  return std::make_unique<FaroAutoscaler>(config, std::move(predictor));
}

TraceSession StartRunTraceSession(const ExperimentSetup& setup, const std::string& label) {
  TraceSession session;
  if (Tracer* tracer = setup.obs.ResolveTracer()) {
    session.tracer = tracer;
    session.pid = tracer->NewProcess(label);
  }
  return session;
}

SimConfig BuildSimConfig(const ExperimentSetup& setup, uint64_t trial_seed,
                         const TraceSession& trace) {
  SimConfig config;
  config.resources = ClusterResources{setup.capacity, setup.capacity};
  config.processing_jitter = setup.processing_jitter;
  config.cold_start_jitter_s = setup.cold_start_jitter_s;
  config.seed = trial_seed;
  config.trace = trace;
  config.obs_metrics = setup.obs.metrics_enabled();
  config.nodes = setup.nodes;
  config.placement_strategy = setup.placement_strategy;
  config.faults = setup.faults;
  config.engine = setup.engine;
  config.shard_threads = setup.shard_threads;
  config.scheduler = setup.scheduler;
  config.record_minute_series = setup.record_minute_series;
  config.actuation = setup.actuation;
  return config;
}

RunResult RunPolicy(const ExperimentSetup& setup, const PreparedWorkload& workload,
                    AutoscalingPolicy& policy, uint64_t trial_seed,
                    const TraceSession& trace) {
  return RunSimulation(BuildSimConfig(setup, trial_seed, trace), workload.jobs, policy);
}

namespace {

// One trial: fresh policy, per-trial RNG stream, full simulation. Safe to run
// concurrently with other trials -- the workload is read-only and the shared
// predictor serialises its (pure) forward passes internally. Only the
// configured trace trial (default 0) opens a trace session: its sim-domain
// events are a pure function of the run, so the trace stays deterministic
// even when the surrounding trials fan out across the pool.
RunResult RunOneTrial(const ExperimentSetup& setup, const PreparedWorkload& workload,
                      const std::string& policy_name,
                      const std::shared_ptr<NHitsWorkloadPredictor>& predictor,
                      const FaroConfig* faro_overrides, size_t trial) {
  TraceSession session;
  if (setup.obs.tracing() && trial == setup.obs.trace_trial) {
    session = StartRunTraceSession(setup, policy_name + "/trial" + std::to_string(trial));
  }
  FaroConfig faro_config = faro_overrides != nullptr ? *faro_overrides : FaroConfig{};
  faro_config.trace = session;
  // Decision audit mirrors the trace-trial rule: only the configured trial of
  // each policy appends records, so the JSONL stays deterministic under the
  // parallel trial fan-out (AuditLog sorts by label before writing).
  if (setup.obs.auditing() && trial == setup.obs.trace_trial) {
    faro_config.audit = &GlobalAuditLog();
    faro_config.audit_label = policy_name + "/trial" + std::to_string(trial);
  }
  auto policy = MakePolicy(policy_name, predictor, &faro_config);
  return RunPolicy(setup, workload, *policy, setup.seed + 1000 * (trial + 1), session);
}

// Serial, trial-ordered reduction of per-trial results into the paper's
// metrics. Keeping every floating-point accumulation here (never in the
// workers) is what makes parallel and serial runs bit-identical.
TrialAggregate AggregateTrials(const std::string& policy_name, size_t num_jobs,
                               std::span<const RunResult> results) {
  TrialAggregate aggregate;
  aggregate.policy = policy_name;
  std::vector<double> lost;
  std::vector<double> violations;
  std::vector<double> eu_lost;
  aggregate.per_job_lost_utility.assign(num_jobs, 0.0);
  aggregate.trials_run = results.size();
  const double trials = static_cast<double>(results.size());
  for (const RunResult& result : results) {
    lost.push_back(result.cluster_lost_utility);
    violations.push_back(result.cluster_slo_violation_rate);
    eu_lost.push_back(result.cluster_lost_effective_utility);
    for (size_t i = 0; i < result.jobs.size(); ++i) {
      aggregate.per_job_lost_utility[i] += result.jobs[i].lost_utility / trials;
    }
    for (size_t c = 0; c < kNumLossCauses; ++c) {
      aggregate.lost_by_cause_mean[c] += result.cluster_lost_by_cause[c] / trials;
    }
    aggregate.burn_alerts_fast_mean +=
        static_cast<double>(result.cluster_burn_alerts_fast) / trials;
    aggregate.burn_alerts_slow_mean +=
        static_cast<double>(result.cluster_burn_alerts_slow) / trials;
  }
  aggregate.lost_utility_mean = Mean(lost);
  aggregate.lost_utility_sd = StdDev(lost);
  aggregate.violation_rate_mean = Mean(violations);
  aggregate.violation_rate_sd = StdDev(violations);
  aggregate.lost_effective_utility_mean = Mean(eu_lost);
  aggregate.lost_effective_utility_sd = StdDev(eu_lost);
  uint64_t cycles = 0;
  double solve_seconds = 0.0;
  uint64_t evals = 0;
  uint64_t starts = 0;
  uint64_t early_exits = 0;
  uint64_t warm_hits = 0;
  uint64_t race_rounds = 0;
  uint64_t race_saved = 0;
  uint64_t pruned = 0;
  for (const RunResult& result : results) {
    cycles += result.solver.cycles;
    solve_seconds += result.solver.solve_seconds_total;
    evals += result.solver.objective_evaluations;
    starts += result.solver.starts_launched;
    early_exits += result.solver.early_exits;
    warm_hits += result.solver.warm_start_hits;
    race_rounds += result.solver.race_rounds;
    race_saved += result.solver.race_evals_saved;
    pruned += result.solver.starts_pruned;
  }
  if (cycles > 0) {
    const double c = static_cast<double>(cycles);
    aggregate.solve_ms_per_cycle_mean = 1000.0 * solve_seconds / c;
    aggregate.solver_evals_per_cycle_mean = static_cast<double>(evals) / c;
    aggregate.solver_starts_per_cycle_mean = static_cast<double>(starts) / c;
    aggregate.early_exit_rate = static_cast<double>(early_exits) / c;
    aggregate.warm_start_rate = static_cast<double>(warm_hits) / c;
    aggregate.solver_race_rounds_per_cycle_mean = static_cast<double>(race_rounds) / c;
    aggregate.solver_race_evals_saved_per_cycle_mean = static_cast<double>(race_saved) / c;
    aggregate.solver_starts_pruned_per_cycle_mean = static_cast<double>(pruned) / c;
  }
  return aggregate;
}

}  // namespace

TrialAggregate RunTrials(const ExperimentSetup& setup, const PreparedWorkload& workload,
                         const std::string& policy_name,
                         std::shared_ptr<NHitsWorkloadPredictor> predictor,
                         const FaroConfig* faro_overrides) {
  const std::vector<RunResult> results = ParallelMap(
      setup.trials,
      [&](size_t trial) {
        return RunOneTrial(setup, workload, policy_name, predictor, faro_overrides, trial);
      },
      setup.threads);
  return AggregateTrials(policy_name, workload.jobs.size(), results);
}

std::vector<TrialAggregate> RunAllPolicies(const ExperimentSetup& setup,
                                           const PreparedWorkload& workload,
                                           std::shared_ptr<NHitsWorkloadPredictor> predictor,
                                           const std::vector<std::string>& policy_names,
                                           const FaroConfig* faro_overrides,
                                           RaceReport* race_report) {
  const std::vector<std::string>& names =
      policy_names.empty() ? AllPolicyNames() : policy_names;
  if (setup.race.enabled && names.size() >= 2) {
    return RacePolicies(setup, workload, predictor, names, faro_overrides, race_report);
  }
  if (race_report != nullptr) {
    *race_report = {};
  }
  // Flatten to policies x trials so small trial counts still fill the pool.
  const size_t trials = setup.trials;
  const std::vector<RunResult> results = ParallelMap(
      names.size() * trials,
      [&](size_t task) {
        return RunOneTrial(setup, workload, names[task / trials], predictor, faro_overrides,
                           task % trials);
      },
      setup.threads);
  std::vector<TrialAggregate> aggregates;
  aggregates.reserve(names.size());
  for (size_t p = 0; p < names.size(); ++p) {
    aggregates.push_back(AggregateTrials(
        names[p], workload.jobs.size(),
        std::span<const RunResult>(results).subspan(p * trials, trials)));
  }
  return aggregates;
}

std::vector<TrialAggregate> RacePolicies(const ExperimentSetup& setup,
                                         const PreparedWorkload& workload,
                                         std::shared_ptr<NHitsWorkloadPredictor> predictor,
                                         const std::vector<std::string>& policy_names,
                                         const FaroConfig* faro_overrides,
                                         RaceReport* race_report) {
  const std::vector<std::string>& names =
      policy_names.empty() ? AllPolicyNames() : policy_names;
  const size_t arms = names.size();
  const size_t cap =
      std::max<size_t>(1, setup.race.max_trials != 0 ? setup.race.max_trials : setup.trials);
  const size_t min_trials = std::clamp<size_t>(setup.race.min_trials, 1, cap);
  std::vector<std::vector<RunResult>> per_arm(arms);
  BaiRace race(arms);
  RaceReport report;
  report.raced = true;
  report.telemetry.races = 1;
  report.telemetry.arms_total = arms;
  // Round k draws trial index k for every arm still racing, so an arm's
  // trials are always the prefix 0..n-1 of the full run's trial sequence
  // (trial seeds depend only on the index). The round fan-out parallelises;
  // the stats merge below is serial in arm order -- same bit-identical
  // contract as the full sweep.
  for (size_t trial = 0; trial < cap; ++trial) {
    std::vector<size_t> batch;
    for (size_t a = 0; a < arms; ++a) {
      if (race.active(a)) {
        batch.push_back(a);
      }
    }
    if (batch.empty()) {
      break;
    }
    ++report.telemetry.rounds;
    const std::vector<RunResult> round = ParallelMap(
        batch.size(),
        [&](size_t i) {
          return RunOneTrial(setup, workload, names[batch[i]], predictor, faro_overrides,
                             trial);
        },
        setup.threads);
    for (size_t i = 0; i < batch.size(); ++i) {
      per_arm[batch[i]].push_back(round[i]);
      race.Add(batch[i], round[i].cluster_lost_utility);
      ++report.telemetry.evaluations_spent;
    }
    if (trial + 1 < min_trials) {
      continue;
    }
    report.telemetry.arms_pruned += race.PruneSeparated(setup.race.delta);
    if (race.Decided()) {
      break;  // the incumbent has separated every rival: stop drawing trials
    }
  }
  report.telemetry.evaluations_saved =
      static_cast<uint64_t>(arms) * cap - report.telemetry.evaluations_spent;
  const size_t leader = race.Leader();
  report.winner = leader < arms ? leader : 0;
  report.winner_policy = names[report.winner];
  if (race_report != nullptr) {
    *race_report = report;
  }
  std::vector<TrialAggregate> aggregates;
  aggregates.reserve(arms);
  for (size_t a = 0; a < arms; ++a) {
    aggregates.push_back(AggregateTrials(names[a], workload.jobs.size(), per_arm[a]));
  }
  return aggregates;
}

}  // namespace faro
