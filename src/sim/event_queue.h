// Event scheduling for the discrete-event simulator.
//
// The simulator's future-event set used to be a manual binary heap inlined in
// simulator.cc. At hyperscale (thousands of jobs, hundreds of thousands of
// pending events) the O(log n) heap churn dominates, so the event set now
// lives behind the EventScheduler interface with two implementations:
//
//  - BinaryHeapScheduler: the original manual heap, kept as the reference;
//  - CalendarQueueScheduler: a Brown-style calendar queue (ring of time
//    buckets plus a small dispatch heap for the current bucket) with O(1)
//    amortised Push/Pop under the stationary event rates a day-long trace
//    produces, and content-driven resizing when the event count drifts.
//
// Both implement the exact same total order -- earliest time first, FIFO
// sequence tie-break -- so swapping one for the other is bit-invisible to the
// simulation. tests/event_queue_test.cc drives them with identical randomized
// event streams and asserts identical pop sequences.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace faro {

enum class EventKind : uint8_t {
  kArrival,
  kCompletion,
  kReplicaReady,
  kReactiveTick,
  kDecideTick,
  kMetricsTick,
  kFaultEvent,      // scheduled FaultPlan event; `job` indexes the plan
  kDelayedScaleUp,  // actuation fault: a delayed scale-up finally lands
};

struct Event {
  double time = 0.0;
  EventKind kind = EventKind::kArrival;
  uint32_t job = 0;
  uint64_t sequence = 0;  // FIFO tie-break for equal timestamps
  // Completion events carry the arrival time of the request being served so
  // latency can be computed without tracking per-replica identity.
  double payload = 0.0;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return a.sequence > b.sequence;
  }
};

// Future-event set. Pop order is the total order (time, sequence) ascending;
// implementations must agree bit-exactly so the engine choice never changes
// simulation results. Event times must be non-negative and Push must never
// schedule before the most recently popped event's bucket year (true for any
// discrete-event loop: events are scheduled at or after the current time).
class EventScheduler {
 public:
  virtual ~EventScheduler() = default;

  virtual void Push(const Event& event) = 0;
  // Requires !Empty().
  virtual Event Pop() = 0;
  // Time of the next event to pop; infinity when empty. Non-const because a
  // calendar queue advances its cursor to locate the head lazily.
  virtual double NextTime() = 0;
  virtual bool Empty() const = 0;
  virtual size_t size() const = 0;

  // Drops every pending event (used between runs; capacity is retained).
  virtual void Clear() = 0;
};

// Reference implementation: manual binary heap over a reserved vector
// (std::priority_queue hides its container, so it could neither be reserved
// nor reused across runs).
class BinaryHeapScheduler final : public EventScheduler {
 public:
  explicit BinaryHeapScheduler(size_t capacity_hint = 4096);

  void Push(const Event& event) override;
  Event Pop() override;
  double NextTime() override;
  bool Empty() const override { return events_.empty(); }
  size_t size() const override { return events_.size(); }
  void Clear() override { events_.clear(); }

 private:
  std::vector<Event> events_;  // binary heap via std::push_heap/pop_heap
};

// Calendar queue: a power-of-two ring of unsorted time buckets of width
// `width_`, a monotone cursor over absolute bucket numbers floor(t / width),
// and a small binary heap ("dispatch") holding exactly the events of the
// cursor's bucket. Push appends to the target bucket in O(1) (or straight
// into dispatch when the event lands in or before the current bucket); Pop
// takes the dispatch minimum, refilling it from successive buckets as they
// drain. The ring is rebuilt -- new size, new width estimated from the live
// event span -- when the population outgrows or undershoots it.
class CalendarQueueScheduler final : public EventScheduler {
 public:
  explicit CalendarQueueScheduler(size_t capacity_hint = 4096);

  void Push(const Event& event) override;
  Event Pop() override;
  double NextTime() override;
  bool Empty() const override { return size_ == 0; }
  size_t size() const override { return size_; }
  void Clear() override;

 private:
  uint64_t AbsBucket(double time) const {
    return static_cast<uint64_t>(time * inv_width_);
  }
  // Refills the dispatch heap from the next non-empty bucket year. No-op when
  // dispatch already has events or the queue is empty.
  void EnsureDispatch();
  // Rebuilds the ring with `buckets` buckets and a width fitted to the
  // current population's time span.
  void Resize(size_t buckets);

  std::vector<std::vector<Event>> buckets_;
  std::vector<Event> dispatch_;  // heap (EventLater) of the current bucket
  size_t bucket_mask_ = 0;       // buckets_.size() - 1 (power of two)
  double width_ = 1.0;
  double inv_width_ = 1.0;
  uint64_t cursor_ = 0;  // absolute bucket number currently being drained
  size_t size_ = 0;
  size_t grow_at_ = 0;    // resize up when size_ exceeds this
  size_t shrink_at_ = 0;  // resize down when size_ falls below this
};

enum class SchedulerKind : uint8_t {
  kCalendar,    // default: O(1) amortised calendar queue
  kBinaryHeap,  // reference implementation
};

std::unique_ptr<EventScheduler> MakeScheduler(SchedulerKind kind,
                                              size_t capacity_hint = 4096);

}  // namespace faro

#endif  // SRC_SIM_EVENT_QUEUE_H_
