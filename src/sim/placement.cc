#include "src/sim/placement.h"

#include <algorithm>
#include <limits>

namespace faro {

ClusterResources PlacementTracker::TotalCapacity() const {
  ClusterResources total;
  for (const Node& node : nodes_) {
    total.cpu += node.cpu_capacity;
    total.mem += node.mem_capacity;
  }
  return total;
}

ClusterResources PlacementTracker::SchedulableCapacity() const {
  ClusterResources total;
  for (const Node& node : nodes_) {
    if (!node.schedulable) {
      continue;
    }
    total.cpu += node.cpu_capacity;
    total.mem += node.mem_capacity;
  }
  return total;
}

bool PlacementTracker::SetNodeSchedulable(const std::string& node_name,
                                          bool schedulable) {
  for (Node& node : nodes_) {
    if (node.name == node_name) {
      node.schedulable = schedulable;
      return true;
    }
  }
  return false;
}

std::vector<std::pair<std::string, uint32_t>> PlacementTracker::RemoveNodeReplicas(
    const std::string& node_name) {
  std::vector<std::pair<std::string, uint32_t>> evicted;
  size_t node_index = nodes_.size();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == node_name) {
      node_index = i;
      break;
    }
  }
  if (node_index == nodes_.size()) {
    return evicted;
  }
  // Single-pass compaction: one O(n) sweep instead of erase-per-placement
  // (which is O(n^2) when a big node drains). Forward order groups `evicted`
  // by first placement, the stable kill order downstream code documents.
  size_t keep = 0;
  for (size_t i = 0; i < placements_.size(); ++i) {
    const Placement& placement = placements_[i];
    if (placement.node != node_index) {
      if (keep != i) {
        placements_[keep] = std::move(placements_[i]);
      }
      ++keep;
      continue;
    }
    nodes_[node_index].cpu_used -= placement.cpu;
    nodes_[node_index].mem_used -= placement.mem;
    bool merged = false;
    for (auto& [job, count] : evicted) {
      if (job == placement.job) {
        ++count;
        merged = true;
        break;
      }
    }
    if (!merged) {
      evicted.emplace_back(placement.job, 1u);
    }
  }
  placements_.resize(keep);
  return evicted;
}

std::optional<size_t> PlacementTracker::PickNode(double cpu, double mem) const {
  std::optional<size_t> best;
  double best_score = 0.0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].Fits(cpu, mem)) {
      continue;
    }
    switch (strategy_) {
      case PlacementStrategy::kFirstFit:
        return i;
      case PlacementStrategy::kBestFit: {
        // Tightest fit: smallest free CPU after placement.
        const double score = -(nodes_[i].cpu_free() - cpu);
        if (!best || score > best_score) {
          best = i;
          best_score = score;
        }
        break;
      }
      case PlacementStrategy::kSpread: {
        // Most free CPU before placement.
        const double score = nodes_[i].cpu_free();
        if (!best || score > best_score) {
          best = i;
          best_score = score;
        }
        break;
      }
    }
  }
  return best;
}

std::optional<size_t> PlacementTracker::PlaceReplica(const JobSpec& spec) {
  const std::optional<size_t> node = PickNode(spec.cpu_per_replica, spec.mem_per_replica);
  if (!node) {
    return std::nullopt;
  }
  nodes_[*node].cpu_used += spec.cpu_per_replica;
  nodes_[*node].mem_used += spec.mem_per_replica;
  placements_.push_back({spec.name, *node, spec.cpu_per_replica, spec.mem_per_replica});
  return node;
}

bool PlacementTracker::RemoveReplica(const JobSpec& spec) {
  // Prefer freeing on the most CPU-loaded node hosting this job (drains hot
  // nodes first).
  ptrdiff_t victim = -1;
  double most_used = -1.0;
  for (size_t i = 0; i < placements_.size(); ++i) {
    if (placements_[i].job != spec.name) {
      continue;
    }
    const double used = nodes_[placements_[i].node].cpu_used;
    if (used > most_used) {
      most_used = used;
      victim = static_cast<ptrdiff_t>(i);
    }
  }
  if (victim < 0) {
    return false;
  }
  const Placement placement = placements_[static_cast<size_t>(victim)];
  nodes_[placement.node].cpu_used -= placement.cpu;
  nodes_[placement.node].mem_used -= placement.mem;
  placements_.erase(placements_.begin() + victim);
  return true;
}

uint32_t PlacementTracker::PlacedReplicas(const std::string& job_name) const {
  uint32_t count = 0;
  for (const Placement& placement : placements_) {
    if (placement.job == job_name) {
      ++count;
    }
  }
  return count;
}

uint32_t PlacementTracker::PlaceableReplicas(const JobSpec& spec) const {
  // Simulate placements on a scratch copy of the node pool.
  std::vector<Node> scratch = nodes_;
  PlacementTracker probe(std::move(scratch), strategy_);
  uint32_t count = 0;
  while (probe.PlaceReplica(spec).has_value()) {
    ++count;
    if (count > 100000) {
      break;  // defensive: degenerate zero-size replica
    }
  }
  return count;
}

}  // namespace faro
