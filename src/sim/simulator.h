// Matched discrete-event simulator of the Ray Serve | Kubernetes stack (§6.4).
//
// The paper validates a "matched" simulator against its cluster deployment
// (Table 7) and uses it to extrapolate to larger and smaller clusters
// (Fig. 15, Table 8). This module is that simulator, built from scratch:
//
//  - one *subcluster* per job: a Router with a FIFO queue that tail-drops at a
//    configurable threshold (50 by default, §5) and a pool of replicas, each
//    serving one request at a time with (near-)deterministic service time;
//  - scale-up incurs a cold-start delay (~60 s); scale-down removes idle
//    replicas immediately and busy replicas after their in-flight request;
//  - a Poisson load generator driven by per-minute trace rates (dropped
//    requests are failed, not resent, §6);
//  - per-minute metric windows matching §6's definitions: p99 latency with
//    dropped requests counted as infinite, per-request SLO violation rates,
//    job utility via the inverse utility function, effective utility with the
//    drop penalty;
//  - hooks that drive any AutoscalingPolicy on the long-term and reactive
//    cadences.
//
// A small noise model (service-time and cold-start jitter) emulates real
// deployment variance: benches run "cluster mode" (noise on) vs "simulation
// mode" (noise off) to regenerate Table 7's matched comparison.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/actuate/reconciler.h"
#include "src/common/series.h"
#include "src/core/policy.h"
#include "src/faults/faultplan.h"
#include "src/obs/attribution.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"
#include "src/sim/event_queue.h"
#include "src/sim/placement.h"

namespace faro {

// How autoscaler decisions reach the simulated cluster.
//
//  - kReconciler (default): decisions are *published* as versioned desired
//    states and a virtual-time reconciler (src/actuate/) converges the
//    cluster: generation fencing discards stale publishes, and level-
//    triggered repair passes at reactive ticks re-issue scale-ups that an
//    actuation fault ate or a replica kill re-opened, with per-job
//    exponential backoff + deterministic jitter. Fault-free runs are
//    bit-identical to kInStep (the first reconcile pass IS the historical
//    in-step apply, and a converged generation makes every repair pass a
//    zero-draw no-op).
//  - kInStep: the historical fire-and-forget path -- each decision is applied
//    once, inside the engine step, and never repaired. Kept for A/B runs
//    (bench_fig17_chaos) quantifying what reconciliation buys under chaos.
enum class ActuationMode : uint8_t {
  kInStep,
  kReconciler,
};

// Which event-loop implementation runs the cluster.
//
//  - kClassic: one event loop, one RNG stream shared by every job -- the
//    original engine, bit-compatible with all releases since PR 1.
//  - kSharded: jobs are partitioned across `shard_threads` shards, each with
//    its own event scheduler and per-job RNG streams; shards synchronise at
//    every control boundary (reactive tick, metrics window, long-term
//    decision) where the coordinator runs the policy and applies actions in
//    job order. Results are bit-identical at any shard/thread count, but --
//    because RNG streams are per-job rather than shared -- they are a
//    *different* (equally valid) sample path than kClassic produces.
//    Restrictions: the node-placement model and node-level fault events are
//    not supported (ValidateSimConfig rejects them), scheduled replica-burst
//    faults and delayed scale-ups land on the first control boundary at or
//    after their nominal time, and per-request trace spans are not emitted.
enum class SimEngine : uint8_t {
  kClassic,
  kSharded,
};

struct SimJobConfig {
  JobSpec spec;
  // Arrival rates per one-minute step (requests per minute).
  Series arrival_rate_per_min;
  uint32_t initial_replicas = 1;
};

// One job's closed metrics window, as delivered to a SimMinuteObserver the
// moment the window closes. Every field is computed by the shared
// CloseMetricsWindowCore, so the values match the batch minute series
// bit-for-bit; observing a run never perturbs it (no RNG draws, no state).
struct MinuteSnapshot {
  uint32_t job = 0;       // index into the run's job vector
  double end_s = 0.0;     // sim time of the window close
  double arrivals = 0.0;  // requests that arrived in the window
  double violations = 0.0;
  double drop_rate = 0.0;  // fraction of the window's arrivals
  double p99 = 0.0;
  double utility = 0.0;
  double replicas = 0.0;  // provisioned (ready + starting) at the close
  double burn_fast = 0.0;  // 1 h-window error-budget burn rate
  double burn_slow = 0.0;  // 6 h-window error-budget burn rate
  bool alert_fast = false;
  bool alert_slow = false;
  double budget_remaining_frac = 1.0;  // run-to-date; negative when overspent
};

// Streaming hook for live consumers (the faro_serve telemetry daemon). Both
// engines invoke it serially, in job order, on the thread driving the run --
// the classic event-loop thread, or the sharded engine's coordinator with
// every shard parked at the metrics barrier -- so implementations need no
// locking against the simulation itself.
class SimMinuteObserver {
 public:
  virtual ~SimMinuteObserver() = default;
  virtual void OnMinute(const MinuteSnapshot& snapshot) = 0;
};

// Streaming hook for published desired states (the faro_serve live actuator).
// Both engines invoke it on the thread driving the run, immediately after a
// decision is stamped with its generation and handed to the virtual-time
// reconciler -- both actuation modes publish. Observing never perturbs the
// run: no RNG draws, no simulation state, and the engine does not wait on
// anything the observer does with the copy.
class DesiredStateObserver {
 public:
  virtual ~DesiredStateObserver() = default;
  virtual void OnPublish(const DesiredState& desired) = 0;
};

struct SimConfig {
  ClusterResources resources;
  double cold_start_s = 60.0;
  // "Cluster mode" noise: cold starts are uniform in +-jitter around the
  // mean, service times get a lognormal-ish fractional jitter.
  double cold_start_jitter_s = 0.0;
  double processing_jitter = 0.0;
  size_t router_queue_limit = 50;
  // Fault injection: mean time between failures per ready replica (seconds);
  // 0 disables. A failing replica drains its in-flight request and exits, so
  // capacity (not requests) is lost -- the autoscaler must notice and
  // re-provision.
  double replica_mtbf_s = 0.0;
  // Optional node model: when non-empty, every replica must be *placed* on a
  // node (strategy below); replicas that do not fit stay Pending and are
  // retried each reactive tick -- fragmentation can delay scale-ups even when
  // aggregate capacity exists, exactly like the K8s scheduler underneath the
  // paper's stack.
  std::vector<Node> nodes;
  PlacementStrategy placement_strategy = PlacementStrategy::kSpread;
  // Chaos injection (src/faults/): scheduled node crash/drain/recover events,
  // correlated replica bursts, cold-start stragglers, and actuation faults.
  // The injector draws from its own RNG stream (seeded from this config's
  // seed and the plan's seed), so an inactive plan leaves the run bit-
  // identical to a build without the fault subsystem.
  FaultPlan faults;
  double metrics_window_s = 60.0;
  double reactive_interval_s = 10.0;
  // How many per-minute arrival-rate observations are exposed to predictors.
  size_t history_steps = 30;
  uint64_t seed = 1;
  // Observability (src/obs/): request-lifecycle spans (queue-wait, cold
  // start, service, drops) are recorded against *sim time* into this session
  // when set, so the trace is deterministic; `obs_metrics` additionally feeds
  // the process-wide metrics registry. Both default off (null sink) and
  // neither perturbs the simulation -- no RNG draws, no FP changes.
  TraceSession trace;
  bool obs_metrics = false;
  // Event engine selection (see SimEngine above) and, for kSharded, the
  // number of shard worker threads (0 = DefaultThreadCount()). The shard
  // count never changes results -- only wall-clock.
  SimEngine engine = SimEngine::kClassic;
  size_t shard_threads = 0;
  // Future-event-set implementation. Both kinds pop in the identical total
  // order (time, then push sequence), so this is a pure performance knob:
  // the calendar queue is O(1) amortised, the binary heap is the reference.
  SchedulerKind scheduler = SchedulerKind::kCalendar;
  // Per-minute output series (JobRunStats::minute_*, the cluster timelines).
  // Hyperscale runs switch this off to keep memory flat: averages are then
  // maintained as running sums and the timelines come back empty.
  bool record_minute_series = true;
  // Live per-window stream (see SimMinuteObserver above). Null (the default)
  // costs nothing; a non-null observer sees every job's window in job order
  // as it closes and must outlive the run.
  SimMinuteObserver* minute_observer = nullptr;
  // Live desired-state stream (see DesiredStateObserver above). Null costs
  // nothing; a non-null observer sees every published generation in order
  // and must outlive the run.
  DesiredStateObserver* desired_observer = nullptr;
  // Actuation path (see ActuationMode above) and the reconciler's retry/
  // backoff knobs. The reconciler's jitter seed is derived from this config's
  // seed; `reconciler.seed` is an extra mix-in (0 = none).
  ActuationMode actuation = ActuationMode::kReconciler;
  ReconcilerConfig reconciler;
  // Decision-audit sink for actuation records (one per converged generation,
  // label `audit_label + "/actuate"`). Null disables; the log must outlive
  // the run. Virtual-time fields only, so records are deterministic.
  AuditLog* audit = nullptr;
  std::string audit_label;
};

struct JobRunStats {
  std::string name;
  uint64_t arrivals = 0;
  uint64_t drops = 0;
  uint64_t violations = 0;  // requests exceeding the SLO (drops included)
  double slo_violation_rate = 0.0;
  double avg_utility = 0.0;            // mean over minutes of U(p99_minute)
  double lost_utility = 0.0;           // 1 - avg_utility
  double avg_effective_utility = 0.0;  // with the drop penalty (Eq. 2)
  double avg_replicas = 0.0;
  // --- fault / recovery accounting (zeros in fault-free runs) --------------
  // Replicas killed under this job by any injection path (replica_mtbf_s,
  // node crash/drain, correlated bursts).
  uint64_t injected_failures = 0;
  // Integral of the replica deficit (kill-time target minus live replicas)
  // over time: how much provisioned capacity the faults actually cost.
  double capacity_seconds_lost = 0.0;
  // Total time spent below the kill-time replica target (deficit > 0).
  double recovery_seconds = 0.0;
  // Minutes x 60 from the first fault until the job's per-minute utility
  // first returns to within 0.05 of its pre-fault mean (-1 if it never does,
  // 0 when no fault touched the job).
  double utility_reconverge_s = 0.0;
  // --- SLO ledger & causal attribution (src/obs/) ---------------------------
  // Per-cause lost utility, averaged over metric windows (enum order from
  // attribution.h). Their left-to-right sum matches lost_utility up to
  // floating-point reassociation; the bit-exact per-window invariant is
  // carried by minute_lost_by_cause.
  std::array<double, kNumLossCauses> lost_by_cause{};
  double error_budget_allowed = 0.0;        // allowance x arrivals
  double error_budget_consumed = 0.0;       // violating requests
  double error_budget_remaining_frac = 1.0;  // negative when overspent
  uint64_t burn_alerts_fast = 0;  // 1 h-window alert onsets (burn >= 14.4)
  uint64_t burn_alerts_slow = 0;  // 6 h-window alert onsets (burn >= 6)
  double first_burn_alert_s = -1.0;
  double max_burn_fast = 0.0;
  double max_burn_slow = 0.0;
  std::vector<double> minute_p99;
  std::vector<double> minute_utility;
  std::vector<double> minute_arrivals;   // requests per minute
  std::vector<double> minute_drop_rate;  // fraction of the minute's arrivals
  std::vector<double> minute_replicas;
  // Per-window attribution buckets: for every window w, the left-to-right
  // sum over causes is bit-identical to max(0, 1 - minute_utility[w]).
  std::array<std::vector<double>, kNumLossCauses> minute_lost_by_cause;
  std::vector<double> minute_violations;
  std::vector<double> minute_burn_fast;
  std::vector<double> minute_burn_slow;
};

struct RunResult {
  std::vector<JobRunStats> jobs;
  double cluster_avg_utility = 0.0;       // mean over minutes of sum_i U_i
  double cluster_lost_utility = 0.0;      // num_jobs - avg
  double cluster_avg_effective_utility = 0.0;
  double cluster_lost_effective_utility = 0.0;
  // §6: cluster SLO violation rate = average of per-job violation rates.
  double cluster_slo_violation_rate = 0.0;
  std::vector<double> cluster_utility_timeline;  // per minute
  std::vector<double> total_load_timeline;       // requests per minute
  // Stage-2 solver telemetry reported by the policy (zeros for baselines).
  SolverTelemetry solver;
  // What the chaos layer actually did (all-zero when the plan was inactive).
  FaultStats faults;
  // Chronological applied-fault log for reports and determinism checks.
  std::vector<AppliedFault> fault_log;
  // Cluster-level causal decomposition: per-cause sums of the jobs'
  // lost_by_cause averages (comparable to cluster_lost_utility).
  std::array<double, kNumLossCauses> cluster_lost_by_cause{};
  // Cluster burn-alert totals across jobs.
  uint64_t cluster_burn_alerts_fast = 0;
  uint64_t cluster_burn_alerts_slow = 0;
  // Engine telemetry: discrete events processed (arrivals, completions,
  // replica readies, ticks) and the peak per-minute provisioned replica
  // count summed across jobs. Measurement, not simulation state.
  uint64_t events_processed = 0;
  double cluster_peak_replicas = 0.0;
  // Reconciling-actuator convergence telemetry (src/actuate/). All-zero in
  // kInStep mode apart from the publish/converge counts of the first passes.
  ReconcileTelemetry actuation;
};

// Empty string when `config` is well formed (fault plan included); otherwise
// a description of the first problem. RunSimulation throws invalid_argument
// with this message rather than silently misbehaving.
std::string ValidateSimConfig(const SimConfig& config);

// Runs the policy against the trace-driven cluster. The run length is the
// shortest job trace (in minutes).
RunResult RunSimulation(const SimConfig& config, const std::vector<SimJobConfig>& jobs,
                        AutoscalingPolicy& policy);

// Incremental run driver. MakeSimStepper primes a run (initial replicas,
// minute-0 arrivals, control ticks) and returns a stepper that processes
// events on demand; RunSimulation itself is implemented as
// StepUntil(+infinity) followed by Finish(), so a paced run -- stepping to
// successive wall-clock targets -- executes the *same* code over the same
// event order and produces bit-identical results to the batch call. Pacing
// only throttles delivery; it can never reorder events.
//
// Contract: `until_s` must be non-decreasing across calls. Finish() may be
// called once; the canonical sequence finishes after done() turns true
// (StepUntil past duration_s()), but an interrupted driver (the replay
// daemon winding down on SIGTERM) may finish early and gets the aggregation
// of everything processed so far. The config, jobs, and policy must outlive
// the stepper (they are referenced, not copied), matching RunSimulation's
// borrowing.
class SimStepper {
 public:
  virtual ~SimStepper() = default;

  // Sim end time: shortest job trace in minutes x 60.
  virtual double duration_s() const = 0;
  // Sim time reached so far (last processed event or step target).
  virtual double now_s() const = 0;
  // True once every event at or before duration_s() has been processed.
  virtual bool done() const = 0;
  // Processes every pending event with time <= min(until_s, duration_s()),
  // in exactly the order the batch loop would.
  virtual void StepUntil(double until_s) = 0;
  // Aggregates and returns the run result (the batch RunResult).
  virtual RunResult Finish() = 0;
};

// Validates `config` (throws std::invalid_argument like RunSimulation) and
// returns a primed stepper for the configured engine.
std::unique_ptr<SimStepper> MakeSimStepper(const SimConfig& config,
                                           const std::vector<SimJobConfig>& jobs,
                                           AutoscalingPolicy& policy);

}  // namespace faro

#endif  // SRC_SIM_SIMULATOR_H_
