// Sharded event engine: jobs partitioned across N shards, each shard running
// its own calendar queue over its own struct-of-arrays request pool, with
// deterministic merges at every control boundary.
//
// Why this is exact. Between two control boundaries, job subclusters are
// completely independent: an arrival, completion, or replica-ready event for
// job A reads and writes only A's state and draws only from A's RNG stream.
// Cross-job coupling exists solely at control boundaries -- the policy sees
// all jobs' metrics, scaling actions touch many jobs, the chaos injector
// draws from its shared stream -- and those all run on the coordinator
// thread, serially, in job order. So the only freedom the scheduler has is
// the interleaving of *different* jobs' events inside a shard segment, and
// that interleaving is unobservable: per-job event order is preserved (each
// job's pushes are causally ordered by its own pops), and equal-time events
// of different jobs commute. Hence the result is a pure function of (config,
// jobs, seed) -- bit-identical at 1, 2, or 64 shards; the shard/thread count
// only changes wall-clock. tests/sharded_determinism_test.cc enforces this.
//
// The sample path differs from the classic engine's (per-job RNG streams
// instead of one shared stream), which is why kSharded is opt-in.
//
// Boundary schedule at a coincident time T: scheduled faults due by T, then
// delayed scale-ups due by T, then the metrics window close, then the
// reactive tick, then the long-term decision -- each only if due at T.

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "src/actuate/reconciler.h"
#include "src/common/parallel.h"
#include "src/common/pool.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/faults/injector.h"
#include "src/obs/slo.h"
#include "src/sim/event_queue.h"
#include "src/sim/sim_internal.h"
#include "src/sim/simulator.h"

namespace faro {
namespace {

using sim_internal::CloseMetricsWindowCore;
using sim_internal::CollectJobMetrics;
using sim_internal::FinalizeJobStats;
using sim_internal::JobState;
using sim_internal::kInfLatency;
using sim_internal::UpdateOverloadTimerCore;

// One shard: a private future-event set, request pool, and scratch buffers.
// Only its owning worker touches it between barriers; the coordinator touches
// it only while the workers are parked at a barrier.
struct Shard {
  std::unique_ptr<EventScheduler> events;
  RequestPool pool;
  std::vector<double> scratch;
  std::vector<uint32_t> jobs;  // job indices owned by this shard
  uint64_t sequence = 0;
  uint64_t events_processed = 0;
};

// An actuation-delayed scale-up waiting for its first control boundary. The
// desired-state generation it was issued under rides along so the
// reconciler's fence can discard it if a newer generation supersedes it
// before it lands.
struct DeferredScaleUp {
  double due = 0.0;
  uint32_t job = 0;
  uint32_t add = 0;
  uint64_t generation = 0;
};

// Stepper shape mirrors the classic engine: Init() primes, StepUntil()
// processes control boundaries at or before the target (plus an eager
// intra-segment drain of shard-local events, which is order-equivalent
// because jobs are independent between boundaries), Finish() aggregates.
class ShardedSimulation final : public SimStepper, private ClusterPort {
 public:
  ShardedSimulation(const SimConfig& config, const std::vector<SimJobConfig>& jobs,
                    AutoscalingPolicy& policy)
      : config_(config), jobs_(jobs), policy_(policy),
        injector_(config.faults, config.seed),
        reconciler_(EffectiveReconcilerConfig(config)) {}

  void Init();
  void StepUntil(double until_s) override;
  RunResult Finish() override;
  double duration_s() const override { return duration_; }
  double now_s() const override { return now_; }
  bool done() const override { return done_; }

 private:
  void PushJob(uint32_t job, double time, EventKind kind, double payload = 0.0) {
    Shard& sh = shards_[shard_of_[job]];
    sh.events->Push(Event{time, kind, job, sh.sequence++, payload});
  }

  double ServiceTime(uint32_t job) {
    const double p = jobs_[job].spec.processing_time;
    if (config_.processing_jitter <= 0.0) {
      return p;
    }
    return std::max(0.2 * p,
                    p * (1.0 + config_.processing_jitter * rng_[job].Normal()));
  }

  double ColdStart(uint32_t job) {
    if (config_.cold_start_jitter_s <= 0.0) {
      return config_.cold_start_s;
    }
    return std::max(1.0, config_.cold_start_s +
                             rng_[job].Uniform(-config_.cold_start_jitter_s,
                                               config_.cold_start_jitter_s));
  }

  void RecordLatency(uint32_t job, double now, double latency) {
    JobState& js = state_[job];
    js.window_latencies.push_back(latency);
    js.recent_latencies.emplace_back(now, latency);
    if (latency > jobs_[job].spec.slo) {
      ++js.total_violations;
    }
  }

  void HandleArrival(uint32_t job, double now) {
    JobState& js = state_[job];
    Shard& sh = shards_[shard_of_[job]];
    ++js.total_arrivals;
    ++js.window_arrivals;
    if (js.explicit_drop_rate > 0.0 && rng_[job].Uniform() < js.explicit_drop_rate) {
      ++js.total_drops;
      ++js.window_drops;
      RecordLatency(job, now, kInfLatency);
      return;
    }
    if (js.queue.size >= config_.router_queue_limit) {
      ++js.total_drops;
      ++js.window_drops;
      RecordLatency(job, now, kInfLatency);
      return;
    }
    js.queue.Push(sh.pool, sh.pool.Acquire(now));
    StartServiceIfPossible(job, now);
  }

  void StartServiceIfPossible(uint32_t job, double now) {
    JobState& js = state_[job];
    Shard& sh = shards_[shard_of_[job]];
    while (!js.queue.empty() && js.busy < js.ready) {
      const uint32_t request = js.queue.Pop(sh.pool);
      const double arrival_time = sh.pool.arrival_time(request);
      sh.pool.Release(request);
      ++js.busy;
      const double service = ServiceTime(job);
      js.window_processing.Add(service);
      js.attr_wait_s += now - arrival_time;
      PushJob(job, now + service, EventKind::kCompletion, arrival_time);
    }
  }

  void HandleCompletion(uint32_t job, double now, double arrival_time) {
    JobState& js = state_[job];
    --js.busy;
    RecordLatency(job, now, now - arrival_time);
    if (js.pending_removal > 0) {
      --js.pending_removal;
      --js.ready;
    }
    StartServiceIfPossible(job, now);
  }

  void HandleReplicaReady(uint32_t job, double now) {
    JobState& js = state_[job];
    if (js.cancelled_starts > 0) {
      --js.cancelled_starts;
      return;
    }
    if (js.starting > 0) {
      --js.starting;
    }
    ++js.ready;
    StartServiceIfPossible(job, now);
  }

  // Drains one shard up to `limit`: strictly-before for inter-barrier
  // segments, inclusive for the final drain at the end of the run.
  void Advance(Shard& sh, double limit, bool inclusive) {
    while (!sh.events->Empty()) {
      const double t = sh.events->NextTime();
      if (inclusive ? t > limit : t >= limit) {
        return;
      }
      const Event event = sh.events->Pop();
      ++sh.events_processed;
      switch (event.kind) {
        case EventKind::kArrival:
          HandleArrival(event.job, event.time);
          break;
        case EventKind::kCompletion:
          HandleCompletion(event.job, event.time, event.payload);
          break;
        case EventKind::kReplicaReady:
          HandleReplicaReady(event.job, event.time);
          break;
        default:
          break;  // control ticks never enter shard queues
      }
    }
  }

  // Poisson arrivals for `minute`, one job at a time from its own stream.
  // Runs inside the shard's worker (each job pushes only into its own shard).
  void ScheduleMinuteArrivals(Shard& sh, size_t minute) {
    for (const uint32_t j : sh.jobs) {
      const Series& trace = jobs_[j].arrival_rate_per_min;
      if (minute >= trace.size()) {
        continue;
      }
      const double rate = std::max(0.0, trace[minute]);
      const uint64_t count = rng_[j].Poisson(rate);
      const double start = static_cast<double>(minute) * 60.0;
      for (uint64_t k = 0; k < count; ++k) {
        PushJob(j, start + rng_[j].Uniform() * 60.0, EventKind::kArrival);
      }
    }
  }

  // Starts `add` cold starts for one job at barrier time `now`. Coordinator
  // only (straggler stretching draws from the injector's shared stream).
  void Provision(uint32_t job, uint32_t add, double now) {
    for (uint32_t k = 0; k < add; ++k) {
      ++state_[job].starting;
      const double delay = injector_.StretchColdStart(ColdStart(job));
      state_[job].attr_cold_s += delay;
      PushJob(job, now + delay, EventKind::kReplicaReady);
    }
  }

  // Kills up to `want` replicas of one job (chaos injection; coordinator).
  uint32_t KillReplicas(uint32_t j, uint32_t want) {
    JobState& js = state_[j];
    const uint32_t ready_before = js.ready - std::min(js.ready, js.pending_removal);
    uint32_t killed = 0;
    while (killed < want) {
      if (js.ready > js.busy) {
        --js.ready;  // idle replica dies immediately
      } else if (js.busy > js.pending_removal) {
        ++js.pending_removal;  // busy replica drains out
      } else {
        break;
      }
      ++killed;
    }
    if (killed > 0) {
      js.injected_failures += killed;
      js.recover_target = std::max(js.recover_target, ready_before);
      if (js.fault_first_s < 0.0) {
        js.fault_first_s = now_;
      }
      injector_.stats().replicas_killed += killed;
    }
    return killed;
  }

  void ApplyBurst(int32_t job, double fraction, uint32_t count) {
    uint32_t total = 0;
    for (uint32_t j = 0; j < jobs_.size(); ++j) {
      if (job >= 0 && static_cast<uint32_t>(job) != j) {
        continue;
      }
      uint32_t want = count;
      if (fraction > 0.0) {
        want = static_cast<uint32_t>(
            std::floor(fraction * static_cast<double>(state_[j].ready) + 0.5));
      }
      total += KillReplicas(j, want);
    }
    ++injector_.stats().bursts;
    const std::string target =
        (job >= 0 && static_cast<size_t>(job) < jobs_.size())
            ? jobs_[static_cast<size_t>(job)].spec.name
            : std::string("all");
    injector_.Record(now_, "replica_burst", target, total);
  }

  void InjectReplicaFailures() {
    if (config_.replica_mtbf_s <= 0.0) {
      return;
    }
    const double failure_prob = config_.reactive_interval_s / config_.replica_mtbf_s;
    for (uint32_t j = 0; j < jobs_.size(); ++j) {
      JobState& js = state_[j];
      uint32_t failures = 0;
      for (uint32_t r = 0; r < js.ready; ++r) {
        if (rng_[j].Uniform() < failure_prob) {
          ++failures;
        }
      }
      if (failures > 0) {
        const uint32_t killed = KillReplicas(j, failures);
        if (killed > 0) {
          injector_.Record(now_, "replica_mtbf", jobs_[j].spec.name, killed);
        }
      }
    }
  }

  void AccountFaultDeficits() {
    for (uint32_t j = 0; j < jobs_.size(); ++j) {
      JobState& js = state_[j];
      if (js.recover_target == 0) {
        continue;
      }
      const uint32_t live = js.ready - std::min(js.ready, js.pending_removal);
      if (live >= js.recover_target) {
        js.recover_target = 0;
        continue;
      }
      const double deficit = static_cast<double>(js.recover_target - live);
      js.capacity_seconds_lost += deficit * config_.reactive_interval_s;
      js.attr_fault_s += deficit * config_.reactive_interval_s;
      js.recovery_seconds += config_.reactive_interval_s;
    }
  }

  // Attribution: a degraded decision cycle (deadline miss, warm rescale,
  // capacity heuristic, forecast fallback) marks every job's open window --
  // the decision is cluster-wide. Coordinator-serial, so shard-count
  // invariant.
  void MarkLadderDegradations(uint64_t ladder_before) {
    if (sim_internal::LadderDegradations(policy_.solver_telemetry()) > ladder_before) {
      for (JobState& js : state_) {
        js.attr_ladder_units += 1.0;
      }
    }
  }

  const std::vector<JobMetrics>& CollectMetrics() {
    metrics_.resize(jobs_.size());
    ParallelFor(
        shards_.size(),
        [&](size_t s) {
          for (const uint32_t j : shards_[s].jobs) {
            CollectJobMetrics(state_[j], jobs_[j].spec, /*pending_placement=*/0,
                              metrics_[j]);
          }
        },
        shards_.size());
    return metrics_;
  }

  // --- reconciling actuator (src/actuate/) --------------------------------
  // All reconciler work runs on the coordinator thread, serially, in job
  // order -- shard-count invariant like every other control-boundary action.
  static ReconcilerConfig EffectiveReconcilerConfig(const SimConfig& config) {
    ReconcilerConfig rc = config.reconciler;
    rc.seed = HashCombine(HashCombine(config.seed, 0xac70a7eull), rc.seed);
    return rc;
  }

  // Actuation-fault outcome for a scale-up of `add` replicas of job j;
  // returns the count to provision now. Delayed commands carry the issuing
  // generation for the landing-time fence check.
  uint32_t DrawActuationFor(uint32_t j, uint32_t add) {
    switch (injector_.DrawActuation()) {
      case ActuationOutcome::kDrop:
        injector_.Record(now_, "actuation_drop", jobs_[j].spec.name, add);
        state_[j].attr_act_units += static_cast<double>(add);
        return 0;
      case ActuationOutcome::kDelay:
        injector_.Record(now_, "actuation_delay", jobs_[j].spec.name, add);
        state_[j].attr_act_units += static_cast<double>(add);
        deferred_.push_back({now_ + injector_.plan().actuation_delay_s, j, add,
                             next_generation_});
        return 0;
      case ActuationOutcome::kPartial: {
        const uint32_t applied = (add + 1) / 2;
        injector_.Record(now_, "actuation_partial", jobs_[j].spec.name,
                         add - applied);
        state_[j].attr_act_units += static_cast<double>(add - applied);
        return applied;
      }
      case ActuationOutcome::kApply:
        break;
    }
    return add;
  }

  // ClusterPort: the reconciler sees the engine itself as the cluster. The
  // sharded engine has no placement model, so the committed fleet is just
  // ready + starting (draining replicas stay in `ready` until they exit).
  size_t num_jobs() const override { return jobs_.size(); }
  uint32_t Fleet(size_t job) const override {
    return state_[job].ready + state_[job].starting;
  }
  void SetDropRate(size_t job, double rate) override {
    state_[job].explicit_drop_rate = rate;
  }
  uint32_t ApplyTarget(size_t job, uint32_t target, bool first_pass,
                       double /*now_s*/) override {
    const uint32_t j = static_cast<uint32_t>(job);
    JobState& js = state_[j];
    if (!first_pass) {
      // Repair pass: re-issue only the committed-fleet shortfall. Downscales
      // are one-shot per generation (re-issuing would double-drain).
      const uint32_t fleet = js.ready + js.starting;
      if (fleet >= target) {
        return 0;
      }
      uint32_t add = target - fleet;
      add = DrawActuationFor(j, add);
      Provision(j, add, now_);
      return add;
    }
    // First pass: the historical in-step apply, bit-exact.
    const uint32_t current = js.ready + js.starting;
    if (target > current) {
      uint32_t add = target - current;
      add = DrawActuationFor(j, add);
      Provision(j, add, now_);
      return add;
    }
    if (target < current) {
      js.recover_target = std::min(js.recover_target, target);
      uint32_t remove = current - target;
      const uint32_t removed = remove;
      const uint32_t cancel = std::min(remove, js.starting);
      js.starting -= cancel;
      js.cancelled_starts += cancel;
      remove -= cancel;
      const uint32_t idle = js.ready - js.busy;
      const uint32_t drop_idle = std::min(remove, idle);
      js.ready -= drop_idle;
      remove -= drop_idle;
      js.pending_removal += remove;
      return removed;
    }
    return 0;
  }

  // Publishes one decision as the next desired-state generation and runs its
  // first reconcile pass (the historical in-step apply).
  void PublishAction(const ScalingAction& action) {
    if (action.replicas.size() != jobs_.size()) {
      return;
    }
    DesiredState desired;
    desired.generation = ++next_generation_;
    desired.published_s = now_;
    desired.replicas.resize(jobs_.size());
    for (uint32_t j = 0; j < jobs_.size(); ++j) {
      desired.replicas[j] = std::max<uint32_t>(1, action.replicas[j]);
    }
    if (!action.drop_rates.empty() && action.drop_rates.size() == jobs_.size()) {
      desired.drop_rates.resize(jobs_.size());
      for (uint32_t j = 0; j < jobs_.size(); ++j) {
        desired.drop_rates[j] = std::clamp(action.drop_rates[j], 0.0, 1.0);
      }
    }
    if (config_.desired_observer != nullptr) {
      config_.desired_observer->OnPublish(desired);
    }
    reconciler_.Publish(desired, now_);
    RunReconcilePass();
  }

  // One reconcile pass; emits the convergence audit record when a generation
  // converges. Zero RNG draws while the fleet holds its targets.
  void RunReconcilePass() {
    ConvergenceEvent event;
    reconciler_.Reconcile(*this, now_, &event);
    if (event.generation == 0) {
      return;
    }
    if (config_.audit != nullptr) {
      DecisionAuditRecord record;
      record.label = config_.audit_label + "/actuate";
      record.time_s = event.converged_s;
      record.cycle = event.generation;
      record.num_jobs = jobs_.size();
      double replicas_total = 0.0;
      for (const uint32_t r : reconciler_.desired().replicas) {
        replicas_total += static_cast<double>(r);
      }
      record.replicas_total = replicas_total;
      record.actuation_generation = event.generation;
      record.actuation_convergence_s = event.convergence_s;
      record.actuation_retries = event.retries;
      record.actuation_fenced = reconciler_.telemetry().fence_rejections;
      config_.audit->Append(std::move(record));
    }
  }

  const SimConfig& config_;
  const std::vector<SimJobConfig>& jobs_;
  AutoscalingPolicy& policy_;
  FaultInjector injector_;
  std::vector<JobState> state_;
  std::vector<Rng> rng_;  // one stream per job: HashCombine(seed, job)
  std::vector<uint32_t> shard_of_;
  std::vector<Shard> shards_;
  std::vector<JobSpec> specs_;
  std::vector<JobMetrics> metrics_;
  std::vector<DeferredScaleUp> deferred_;
  std::vector<MinuteSnapshot> snaps_;  // per-job slots, observer runs only
  // Reconciling actuator: generation counter + the reconcile loop core.
  Reconciler reconciler_;
  uint64_t next_generation_ = 0;
  double now_ = 0.0;
  double peak_replicas_ = 0.0;
  // Stepping state (see StepUntil): run length, pending control boundaries,
  // the fault-plan cursor, and the next arrival minute to generate.
  size_t total_minutes_ = 0;
  double duration_ = 0.0;
  size_t next_fault_ = 0;
  double next_reactive_ = 0.0;
  double next_metrics_ = 0.0;
  double next_decide_ = 0.0;
  size_t next_minute_ = 1;
  bool done_ = false;
};

void ShardedSimulation::Init() {
  const size_t num_jobs = jobs_.size();
  size_t threads = config_.shard_threads > 0 ? config_.shard_threads
                                             : DefaultThreadCount();
  threads = std::max<size_t>(1, std::min(threads, std::max<size_t>(1, num_jobs)));

  state_.assign(num_jobs, JobState{});
  shard_of_.resize(num_jobs);
  shards_.clear();
  shards_.resize(threads);
  rng_.clear();
  rng_.reserve(num_jobs);
  specs_.clear();
  specs_.reserve(num_jobs);
  for (uint32_t j = 0; j < num_jobs; ++j) {
    rng_.emplace_back(HashCombine(config_.seed, j));
    specs_.push_back(jobs_[j].spec);
    shard_of_[j] = j % threads;
    shards_[j % threads].jobs.push_back(j);
  }
  for (Shard& sh : shards_) {
    sh.events = MakeScheduler(config_.scheduler, 4096);
  }

  total_minutes_ = std::numeric_limits<size_t>::max();
  for (const SimJobConfig& job : jobs_) {
    total_minutes_ = std::min(total_minutes_, job.arrival_rate_per_min.size());
  }
  if (num_jobs == 0 || total_minutes_ == std::numeric_limits<size_t>::max()) {
    total_minutes_ = 0;
  }
  duration_ = static_cast<double>(total_minutes_) * 60.0;

  if (config_.record_minute_series) {
    for (JobState& js : state_) {
      js.minute_p99.reserve(total_minutes_);
      js.minute_utility.reserve(total_minutes_);
      js.minute_eu.reserve(total_minutes_);
      js.minute_arrivals.reserve(total_minutes_);
      js.minute_drop_rate.reserve(total_minutes_);
      js.minute_replicas.reserve(total_minutes_);
      for (auto& series : js.minute_lost_by_cause) {
        series.reserve(total_minutes_);
      }
      js.minute_violations.reserve(total_minutes_);
      js.minute_burn_fast.reserve(total_minutes_);
      js.minute_burn_slow.reserve(total_minutes_);
    }
  }
  for (uint32_t j = 0; j < num_jobs; ++j) {
    state_[j].ready = std::max<uint32_t>(1, jobs_[j].initial_replicas);
  }

  // Minute-0 arrivals, in parallel per shard (per-job streams).
  ParallelFor(
      shards_.size(), [&](size_t s) { ScheduleMinuteArrivals(shards_[s], 0); },
      shards_.size());

  // Control boundaries. reactive/metrics start after one interval, the
  // long-term decision fires at t = 0 like the classic engine.
  next_reactive_ = config_.reactive_interval_s;
  next_metrics_ = config_.metrics_window_s;
  next_decide_ = 0.0;
  next_minute_ = 1;
  next_fault_ = 0;
}

void ShardedSimulation::StepUntil(double until_s) {
  if (done_) {
    return;
  }
  const size_t num_jobs = jobs_.size();
  const std::vector<FaultEvent>& scheduled = injector_.scheduled();
  const double reactive_s = config_.reactive_interval_s;
  const double window_s = config_.metrics_window_s;
  const double decide_s = policy_.decision_interval_s();
  const double limit = std::min(until_s, duration_);

  while (total_minutes_ > 0) {
    const double T = std::min({next_reactive_, next_metrics_, next_decide_});
    if (T > limit) {
      break;
    }
    now_ = T;
    // Drain every shard up to (but excluding) the boundary.
    ParallelFor(
        shards_.size(), [&](size_t s) { Advance(shards_[s], T, false); },
        shards_.size());

    // Scheduled chaos events due by now (kReplicaBurst only; validated).
    while (injector_.active() && next_fault_ < scheduled.size() &&
           scheduled[next_fault_].time_s <= T) {
      const FaultEvent& fault = scheduled[next_fault_];
      ApplyBurst(fault.job, fault.fraction, fault.count);
      ++next_fault_;
    }
    // Delayed scale-ups due by now, in the order they were deferred. Under
    // the reconciler, a command from a superseded generation dies on the
    // fence, and a current-generation command is clamped to the still-open
    // deficit so a repair that already landed is never double-applied.
    if (!deferred_.empty()) {
      size_t keep = 0;
      for (size_t i = 0; i < deferred_.size(); ++i) {
        if (deferred_[i].due <= T) {
          uint32_t add = deferred_[i].add;
          const uint32_t j = deferred_[i].job;
          if (config_.actuation == ActuationMode::kReconciler) {
            if (deferred_[i].generation < reconciler_.generation()) {
              reconciler_.FenceStale();
              injector_.Record(T, "actuation_fenced", jobs_[j].spec.name, add);
              continue;
            }
            const uint32_t target = reconciler_.desired().replicas[j];
            const uint32_t fleet = Fleet(j);
            add = std::min(add, target > fleet ? target - fleet : 0u);
            if (add == 0) {
              continue;
            }
          }
          Provision(j, add, T);
        } else {
          deferred_[keep++] = deferred_[i];
        }
      }
      deferred_.resize(keep);
    }

    if (T == next_metrics_) {
      // Each job writes only its own snapshot slot inside the barrier, then
      // the coordinator replays them serially in job order -- the observer
      // sees the same sequence the classic engine would produce.
      const bool observe = config_.minute_observer != nullptr;
      if (observe) {
        snaps_.resize(num_jobs);
      }
      ParallelFor(
          shards_.size(),
          [&](size_t s) {
            Shard& sh = shards_[s];
            for (const uint32_t j : sh.jobs) {
              CloseMetricsWindowCore(state_[j], jobs_[j].spec, now_, window_s,
                                     config_.history_steps,
                                     config_.record_minute_series, sh.scratch,
                                     observe ? &snaps_[j] : nullptr);
            }
            if (next_minute_ < total_minutes_) {
              ScheduleMinuteArrivals(sh, next_minute_);
            }
          },
          shards_.size());
      if (observe) {
        for (uint32_t j = 0; j < num_jobs; ++j) {
          snaps_[j].job = j;
          config_.minute_observer->OnMinute(snaps_[j]);
        }
      }
      double minute_replicas = 0.0;
      for (uint32_t j = 0; j < num_jobs; ++j) {
        minute_replicas += static_cast<double>(state_[j].ready + state_[j].starting);
      }
      peak_replicas_ = std::max(peak_replicas_, minute_replicas);
      if (next_minute_ < total_minutes_) {
        ++next_minute_;
      }
      next_metrics_ += window_s;
    }

    if (T == next_reactive_) {
      if (injector_.active() && injector_.DrawBurst(reactive_s)) {
        ApplyBurst(-1, injector_.plan().burst_fraction, 0);
      }
      InjectReplicaFailures();
      AccountFaultDeficits();
      // Level-triggered repair rides the reactive cadence: re-issue any
      // scale-up an actuation fault ate or a kill re-opened, before the
      // policy reads metrics (so FastReact sees repairs as `starting`).
      // Zero draws -- and zero state changes -- while the fleet converges.
      if (config_.actuation == ActuationMode::kReconciler) {
        RunReconcilePass();
      }
      ParallelFor(
          shards_.size(),
          [&](size_t s) {
            Shard& sh = shards_[s];
            for (const uint32_t j : sh.jobs) {
              UpdateOverloadTimerCore(state_[j], jobs_[j].spec, now_, window_s,
                                      reactive_s, sh.scratch);
            }
          },
          shards_.size());
      const auto& metrics = CollectMetrics();
      const uint64_t ladder_before =
          sim_internal::LadderDegradations(policy_.solver_telemetry());
      if (auto action = policy_.FastReact(now_, specs_, metrics, config_.resources)) {
        PublishAction(*action);
      }
      MarkLadderDegradations(ladder_before);
      next_reactive_ += reactive_s;
    }

    if (T == next_decide_) {
      const auto& metrics = CollectMetrics();
      const uint64_t ladder_before =
          sim_internal::LadderDegradations(policy_.solver_telemetry());
      const ScalingAction action =
          policy_.Decide(now_, specs_, metrics, config_.resources);
      MarkLadderDegradations(ladder_before);
      PublishAction(action);
      next_decide_ += decide_s > 0.0 ? decide_s : duration_ + 1.0;
    }
  }

  if (until_s >= duration_) {
    // Tail events at exactly t = duration (classic processes time <= it).
    now_ = duration_;
    ParallelFor(
        shards_.size(), [&](size_t s) { Advance(shards_[s], duration_, true); },
        shards_.size());
    done_ = true;
  } else {
    // Eager intra-segment drain up to (excluding) the pacing target: between
    // boundaries, job subclusters are independent and each shard pops its
    // own queue in the engine's canonical order, so processing these events
    // now versus at the next boundary's Advance is bit-equivalent.
    ParallelFor(
        shards_.size(), [&](size_t s) { Advance(shards_[s], until_s, false); },
        shards_.size());
    now_ = until_s;
  }
}

RunResult ShardedSimulation::Finish() {
  const size_t num_jobs = jobs_.size();
  // --- aggregate (serial, job order: shard-count invariant) -----------------
  RunResult result;
  result.jobs.resize(num_jobs);
  for (const Shard& sh : shards_) {
    result.events_processed += sh.events_processed;
  }
  result.cluster_peak_replicas = peak_replicas_;
  size_t minutes = std::numeric_limits<size_t>::max();
  for (const JobState& js : state_) {
    minutes = std::min(minutes, js.minute_count);
  }
  if (minutes == std::numeric_limits<size_t>::max()) {
    minutes = 0;
  }
  const bool record = config_.record_minute_series;
  if (record) {
    result.cluster_utility_timeline.assign(minutes, 0.0);
    result.total_load_timeline.assign(minutes, 0.0);
  }
  double violation_rate_sum = 0.0;
  double eu_sum = 0.0;
  double utility_mean_sum = 0.0;
  for (uint32_t j = 0; j < num_jobs; ++j) {
    JobState& js = state_[j];
    JobRunStats& stats = result.jobs[j];
    FinalizeJobStats(js, jobs_[j].spec.name, record, stats);
    if (record) {
      for (size_t t = 0; t < minutes; ++t) {
        result.cluster_utility_timeline[t] += stats.minute_utility[t];
        result.total_load_timeline[t] += stats.minute_arrivals[t];
      }
    }
    utility_mean_sum += stats.avg_utility;
    violation_rate_sum += stats.slo_violation_rate;
    eu_sum += stats.avg_effective_utility;
    for (size_t c = 0; c < kNumLossCauses; ++c) {
      result.cluster_lost_by_cause[c] += stats.lost_by_cause[c];
    }
    result.cluster_burn_alerts_fast += stats.burn_alerts_fast;
    result.cluster_burn_alerts_slow += stats.burn_alerts_slow;
  }
  const double n_jobs = static_cast<double>(num_jobs);
  result.cluster_avg_utility =
      record ? Mean(result.cluster_utility_timeline) : utility_mean_sum;
  result.cluster_lost_utility = n_jobs - result.cluster_avg_utility;
  result.cluster_avg_effective_utility = eu_sum;
  result.cluster_lost_effective_utility = n_jobs - eu_sum;
  result.cluster_slo_violation_rate = num_jobs == 0 ? 0.0 : violation_rate_sum / n_jobs;
  result.solver = policy_.solver_telemetry();
  result.faults = injector_.stats();
  result.fault_log = injector_.log();
  result.actuation = reconciler_.telemetry();
  // Keep the historical solver-CSV column comparable (see classic engine).
  result.solver.actuation_retries += result.actuation.retries;
  return result;
}

}  // namespace

std::unique_ptr<SimStepper> MakeSimStepperSharded(const SimConfig& config,
                                                  const std::vector<SimJobConfig>& jobs,
                                                  AutoscalingPolicy& policy) {
  auto simulation = std::make_unique<ShardedSimulation>(config, jobs, policy);
  simulation->Init();
  return simulation;
}

}  // namespace faro
