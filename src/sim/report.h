// CSV export of simulation results, for plotting the reproduced figures with
// external tools.

#ifndef SRC_SIM_REPORT_H_
#define SRC_SIM_REPORT_H_

#include <string>

#include "src/sim/simulator.h"

namespace faro {

// RFC-4180 field escaping: a field containing a comma, double quote, or
// newline is wrapped in double quotes with embedded quotes doubled; anything
// else passes through unchanged. Job names are user-controlled, so every
// name-derived field below goes through this.
std::string CsvEscape(const std::string& field);

// Per-minute timeline: one row per minute with the cluster utility, total
// load, and each job's p99 / utility / replicas / drop rate.
bool WriteTimelineCsv(const std::string& path, const RunResult& result);

// One row per job with the run-level summary metrics (plus a final CLUSTER
// row). The SLO-ledger and attribution columns (error budget, burn alerts,
// per-cause lost utility) are appended after the original columns so field
// positions stay stable for existing consumers.
bool WriteSummaryCsv(const std::string& path, const RunResult& result);

// SLO attribution timeline: one row per job per metric window with arrivals,
// violations, utility, lost utility, the seven causal buckets (enum order
// from src/obs/attribution.h), and the fast/slow burn rates. Doubles are
// printed with 17 significant digits so parsed values round-trip exactly:
// summing the bucket columns left to right reproduces the lost_utility
// column bit for bit. Requires SimConfig::record_minute_series.
bool WriteSloCsv(const std::string& path, const RunResult& result);

// One-row CSV of the policy's Stage-2 solver telemetry: decision cycles,
// starts launched/skipped/won by kind, early exits, warm-start reuse,
// objective evaluations, per-cycle solve wall-clock (mean and max, ms), and
// the degradation-ladder counters (deadline misses, fallbacks by rung,
// forecast fallbacks, actuation retries, capacity re-solves).
bool WriteSolverCsv(const std::string& path, const RunResult& result);

// One row per injected fault (time, kind, target, replicas affected) -- the
// deterministic fault log of a chaos run. Empty log writes just the header.
bool WriteFaultLogCsv(const std::string& path, const RunResult& result);

}  // namespace faro

#endif  // SRC_SIM_REPORT_H_
