#include "src/sim/event_queue.h"

#include <algorithm>
#include <limits>

namespace faro {
namespace {

constexpr double kInfTime = std::numeric_limits<double>::infinity();

// Ring-size bounds. The floor keeps tiny simulations out of the resize
// machinery; the ceiling bounds rebuild cost for degenerate event sets.
constexpr size_t kMinBuckets = 1024;
constexpr size_t kMaxBuckets = size_t{1} << 22;

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

// --- BinaryHeapScheduler ----------------------------------------------------

BinaryHeapScheduler::BinaryHeapScheduler(size_t capacity_hint) {
  events_.reserve(capacity_hint);
}

void BinaryHeapScheduler::Push(const Event& event) {
  events_.push_back(event);
  std::push_heap(events_.begin(), events_.end(), EventLater{});
}

Event BinaryHeapScheduler::Pop() {
  std::pop_heap(events_.begin(), events_.end(), EventLater{});
  const Event event = events_.back();
  events_.pop_back();
  return event;
}

double BinaryHeapScheduler::NextTime() {
  return events_.empty() ? kInfTime : events_.front().time;
}

// --- CalendarQueueScheduler -------------------------------------------------

CalendarQueueScheduler::CalendarQueueScheduler(size_t capacity_hint) {
  const size_t buckets = std::clamp(NextPowerOfTwo(capacity_hint), kMinBuckets,
                                    kMaxBuckets);
  buckets_.resize(buckets);
  bucket_mask_ = buckets - 1;
  grow_at_ = 2 * buckets;
  shrink_at_ = 0;  // the initial ring never shrinks below itself
  dispatch_.reserve(256);
}

void CalendarQueueScheduler::Push(const Event& event) {
  ++size_;
  const uint64_t bucket = AbsBucket(event.time);
  if (bucket <= cursor_) {
    // In (or before) the bucket currently being drained: the event must be
    // eligible immediately, so it joins the dispatch heap directly.
    dispatch_.push_back(event);
    std::push_heap(dispatch_.begin(), dispatch_.end(), EventLater{});
  } else {
    buckets_[bucket & bucket_mask_].push_back(event);
  }
  if (size_ > grow_at_) {
    Resize(2 * (bucket_mask_ + 1));
  }
}

void CalendarQueueScheduler::EnsureDispatch() {
  if (!dispatch_.empty() || size_ == 0) {
    return;
  }
  const size_t ring = bucket_mask_ + 1;
  size_t scanned = 0;
  while (dispatch_.empty()) {
    ++cursor_;
    std::vector<Event>& bucket = buckets_[cursor_ & bucket_mask_];
    if (!bucket.empty()) {
      // Pull out this bucket's current-year events; later years stay behind.
      size_t keep = 0;
      for (size_t i = 0; i < bucket.size(); ++i) {
        if (AbsBucket(bucket[i].time) <= cursor_) {
          dispatch_.push_back(bucket[i]);
        } else {
          bucket[keep++] = bucket[i];
        }
      }
      bucket.resize(keep);
      if (!dispatch_.empty()) {
        break;
      }
    }
    if (++scanned >= ring) {
      // A full lap found nothing in the current year: the population is
      // sparse and far away. Jump the cursor to the earliest populated
      // bucket instead of walking empty years one slot at a time.
      uint64_t min_bucket = std::numeric_limits<uint64_t>::max();
      for (const std::vector<Event>& b : buckets_) {
        for (const Event& e : b) {
          min_bucket = std::min(min_bucket, AbsBucket(e.time));
        }
      }
      cursor_ = min_bucket - 1;  // the next ++cursor_ lands exactly on it
      scanned = 0;
    }
  }
  std::make_heap(dispatch_.begin(), dispatch_.end(), EventLater{});
}

Event CalendarQueueScheduler::Pop() {
  EnsureDispatch();
  std::pop_heap(dispatch_.begin(), dispatch_.end(), EventLater{});
  const Event event = dispatch_.back();
  dispatch_.pop_back();
  --size_;
  if (size_ < shrink_at_) {
    Resize((bucket_mask_ + 1) / 2);
  }
  return event;
}

double CalendarQueueScheduler::NextTime() {
  EnsureDispatch();
  return dispatch_.empty() ? kInfTime : dispatch_.front().time;
}

void CalendarQueueScheduler::Clear() {
  for (std::vector<Event>& bucket : buckets_) {
    bucket.clear();
  }
  dispatch_.clear();
  size_ = 0;
  cursor_ = 0;
}

void CalendarQueueScheduler::Resize(size_t buckets) {
  buckets = std::clamp(buckets, kMinBuckets, kMaxBuckets);
  if (buckets == bucket_mask_ + 1 && size_ <= grow_at_) {
    return;
  }
  // Gather the whole population (heap order is irrelevant; redistribution
  // rebuilds the dispatch heap from scratch).
  std::vector<Event> all;
  all.reserve(size_);
  all.insert(all.end(), dispatch_.begin(), dispatch_.end());
  for (std::vector<Event>& bucket : buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  dispatch_.clear();

  // Fit the bucket width to the live population: ~3 events per bucket-width
  // across the span keeps the current year dense without long intra-bucket
  // chains. A zero span (all events simultaneous) keeps the previous width.
  if (!all.empty()) {
    double t_min = all.front().time;
    double t_max = t_min;
    for (const Event& e : all) {
      t_min = std::min(t_min, e.time);
      t_max = std::max(t_max, e.time);
    }
    const double span = t_max - t_min;
    if (span > 0.0) {
      width_ = std::clamp(3.0 * span / static_cast<double>(all.size()), 1e-9, 1e9);
      inv_width_ = 1.0 / width_;
    }
    cursor_ = AbsBucket(t_min);
  }

  buckets_.resize(buckets);
  bucket_mask_ = buckets - 1;
  grow_at_ = 2 * buckets;
  shrink_at_ = buckets > kMinBuckets ? buckets / 32 : 0;

  for (const Event& e : all) {
    const uint64_t bucket = AbsBucket(e.time);
    if (bucket <= cursor_) {
      dispatch_.push_back(e);
    } else {
      buckets_[bucket & bucket_mask_].push_back(e);
    }
  }
  std::make_heap(dispatch_.begin(), dispatch_.end(), EventLater{});
}

std::unique_ptr<EventScheduler> MakeScheduler(SchedulerKind kind,
                                              size_t capacity_hint) {
  switch (kind) {
    case SchedulerKind::kBinaryHeap:
      return std::make_unique<BinaryHeapScheduler>(capacity_hint);
    case SchedulerKind::kCalendar:
      break;
  }
  return std::make_unique<CalendarQueueScheduler>(capacity_hint);
}

}  // namespace faro
