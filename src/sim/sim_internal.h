// Internal shared state and per-job helpers for the simulation engines.
//
// Two engines consume this header: the classic single-stream engine in
// simulator.cc (one event loop, one RNG, bit-compatible with every release
// since PR 1) and the sharded engine in engine_sharded.cc (per-job RNG
// streams, one event loop per shard, deterministic merge at control
// barriers). Everything here is per-job and engine-agnostic: the router
// queue over the SoA request pool, metric-window bookkeeping, overload
// timers, and end-of-run stats finalisation. Keeping these in one place is
// what guarantees the engines agree on the *semantics* of a job subcluster
// even though they schedule events differently.
//
// This header is private to src/sim/.

#ifndef SRC_SIM_SIM_INTERNAL_H_
#define SRC_SIM_SIM_INTERNAL_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "src/common/pool.h"
#include "src/common/stats.h"
#include "src/core/objectives.h"
#include "src/core/penalty.h"
#include "src/core/policy.h"
#include "src/core/utility.h"
#include "src/obs/attribution.h"
#include "src/obs/slo.h"
#include "src/sim/simulator.h"

namespace faro {
namespace sim_internal {

inline constexpr double kInfLatency = std::numeric_limits<double>::infinity();

// Per-job subcluster state. Engines own a vector of these, one per job.
struct JobState {
  // --- replica pool -------------------------------------------------------
  uint32_t ready = 0;     // provisioned replicas (busy + idle)
  uint32_t busy = 0;      // replicas serving a request right now
  uint32_t starting = 0;  // replicas still cold-starting
  // Busy replicas slated for removal once their in-flight request finishes.
  uint32_t pending_removal = 0;
  // Cold starts that were cancelled by a later downscale; ReplicaReady events
  // for them are ignored.
  uint32_t cancelled_starts = 0;

  // --- router -------------------------------------------------------------
  // FIFO of queued requests; the per-request state (arrival time, link) lives
  // in the engine's struct-of-arrays RequestPool.
  RequestQueue queue;
  double explicit_drop_rate = 0.0;

  // --- rolling latency window for the reactive overload detector -----------
  std::deque<std::pair<double, double>> recent_latencies;  // (time, latency)

  // --- per-window accumulators ---------------------------------------------
  uint64_t window_arrivals = 0;
  uint64_t window_drops = 0;
  std::vector<double> window_latencies;
  RunningStats window_processing;

  // --- totals and history --------------------------------------------------
  uint64_t total_arrivals = 0;
  uint64_t total_drops = 0;
  uint64_t total_violations = 0;
  std::vector<double> arrival_history;  // req/s per completed window
  double last_window_rate = 0.0;        // req/s
  double last_window_drop_rate = 0.0;
  double last_p99 = 0.0;                // p99 of the last completed window
  double smoothed_processing = 0.0;
  double overloaded_for = 0.0;
  double underloaded_for = 0.0;

  // --- fault bookkeeping ----------------------------------------------------
  // Replicas killed under this job by any injection path.
  uint64_t injected_failures = 0;
  // Ready-replica count the job had when it was last hit; cleared once the
  // pool climbs back (or the autoscaler deliberately targets lower).
  uint32_t recover_target = 0;
  // pending_removal entries whose placement was already freed by a node
  // eviction; the completion handler consumes these instead of freeing again.
  uint32_t placement_credit = 0;
  double fault_first_s = -1.0;  // sim time of the first fault hitting this job
  double capacity_seconds_lost = 0.0;
  double recovery_seconds = 0.0;

  // --- SLO ledger & causal attribution (src/obs/slo.h, attribution.h) ------
  // Evidence weights for the open metrics window; reset on every close.
  // All of these are shard-local JobState fields, so the sharded engine's
  // merge barriers keep them bit-identical at any thread count for free.
  double attr_wait_s = 0.0;        // queue wait of requests entering service
  double attr_cold_s = 0.0;        // cold-start delay incurred by provisions
  double attr_fault_s = 0.0;       // replica-seconds of fault-induced deficit
  double attr_act_units = 0.0;     // replicas denied/deferred by actuation
  double attr_ladder_units = 0.0;  // degraded autoscaler decisions
  // Run totals of the per-window buckets (enum order; see attribution.h).
  std::array<double, kNumLossCauses> attr_totals{};
  SloLedger slo_ledger;

  // --- per-minute outputs ---------------------------------------------------
  // Running sums are always maintained; the vectors fill only when
  // SimConfig::record_minute_series is set (hyperscale runs switch them off
  // to keep memory flat at thousands of jobs x thousands of minutes).
  size_t minute_count = 0;
  double utility_sum = 0.0;
  double eu_sum = 0.0;
  double replicas_sum = 0.0;
  std::vector<double> minute_p99;
  std::vector<double> minute_utility;
  std::vector<double> minute_eu;
  std::vector<double> minute_arrivals;
  std::vector<double> minute_drop_rate;
  std::vector<double> minute_replicas;
  std::array<std::vector<double>, kNumLossCauses> minute_lost_by_cause;
  std::vector<double> minute_violations;
  std::vector<double> minute_burn_fast;
  std::vector<double> minute_burn_slow;
};

// The degradation-ladder counters that mark a decision cycle as degraded for
// attribution (actuation retries have their own bucket via ApplyAction, and
// capacity re-solves are adaptive responses, not losses).
inline uint64_t LadderDegradations(const SolverTelemetry& t) {
  return t.deadline_misses + t.fallback_warm + t.fallback_heuristic +
         t.forecast_fallbacks;
}

// Sorted-copy percentile without allocating per call: `scratch` is reused
// across invocations by the owning engine (one per shard in sharded mode).
inline double ScratchPercentile(std::vector<double>& scratch,
                                const std::vector<double>& values, double q) {
  scratch.assign(values.begin(), values.end());
  std::sort(scratch.begin(), scratch.end());
  return PercentileSorted(scratch, q);
}

// Closes one metrics window for one job: arrival-rate history, p99, utility,
// effective utility, replica gauge, SLO-ledger fold, lost-utility attribution;
// resets the window accumulators. Pure per-job arithmetic -- no RNG -- so
// both engines share it bit-exactly. `end_s` is the sim time of the close.
// When `snap` is non-null it is filled with the window's values (for
// SimMinuteObserver delivery) before the accumulators reset; filling it
// reads, never writes, the job state, so observed and unobserved runs are
// bit-identical.
inline void CloseMetricsWindowCore(JobState& js, const JobSpec& spec,
                                   double end_s, double window_s,
                                   size_t history_steps, bool record_series,
                                   std::vector<double>& scratch,
                                   MinuteSnapshot* snap = nullptr) {
  const double rate = static_cast<double>(js.window_arrivals) / window_s;  // req/s
  js.arrival_history.push_back(rate);
  if (js.arrival_history.size() > history_steps) {
    js.arrival_history.erase(js.arrival_history.begin());
  }
  js.last_window_rate = rate;
  js.last_window_drop_rate =
      js.window_arrivals > 0
          ? static_cast<double>(js.window_drops) / static_cast<double>(js.window_arrivals)
          : 0.0;
  if (js.window_processing.count() > 0) {
    js.smoothed_processing = js.window_processing.mean();
  }

  const double p99 = js.window_latencies.empty()
                         ? 0.0
                         : ScratchPercentile(scratch, js.window_latencies, spec.percentile);
  js.last_p99 = p99;
  const double utility = RelaxedUtility(p99, spec.slo);
  const double eu = StepPenaltyMultiplier(js.last_window_drop_rate) * utility;
  const double replicas = static_cast<double>(js.ready + js.starting);

  ++js.minute_count;
  js.utility_sum += utility;
  js.eu_sum += eu;
  js.replicas_sum += replicas;

  // --- SLO ledger + causal attribution. Everything below only reads the
  // window state and writes *new* fields, so pre-existing outputs (and
  // fault-free bit-identity across PRs) are untouched.
  uint64_t window_violations = 0;
  for (const double latency : js.window_latencies) {
    if (latency > spec.slo) {
      ++window_violations;
    }
  }
  js.slo_ledger.set_allowance(1.0 - spec.percentile);
  const SloLedger::Observation slo_obs =
      js.slo_ledger.Observe(end_s, static_cast<double>(js.window_arrivals),
                            static_cast<double>(window_violations));
  const double lost = std::max(0.0, 1.0 - utility);
  AttributionInputs attr_in;
  attr_in.arrivals = static_cast<double>(js.window_arrivals);
  attr_in.drops = static_cast<double>(js.window_drops);
  attr_in.wait_seconds = js.attr_wait_s;
  attr_in.cold_start_seconds = js.attr_cold_s;
  attr_in.fault_deficit_seconds = js.attr_fault_s;
  attr_in.actuation_units = js.attr_act_units;
  attr_in.ladder_units = js.attr_ladder_units;
  attr_in.window_s = window_s;
  attr_in.slo_s = spec.slo;
  const std::array<double, kNumLossCauses> buckets =
      AttributeLostUtility(lost, attr_in);
  for (size_t c = 0; c < kNumLossCauses; ++c) {
    js.attr_totals[c] += buckets[c];
  }

  if (record_series) {
    js.minute_p99.push_back(p99);
    js.minute_utility.push_back(utility);
    js.minute_eu.push_back(eu);
    js.minute_arrivals.push_back(static_cast<double>(js.window_arrivals));
    js.minute_drop_rate.push_back(js.last_window_drop_rate);
    js.minute_replicas.push_back(replicas);
    for (size_t c = 0; c < kNumLossCauses; ++c) {
      js.minute_lost_by_cause[c].push_back(buckets[c]);
    }
    js.minute_violations.push_back(static_cast<double>(window_violations));
    js.minute_burn_fast.push_back(slo_obs.burn_fast);
    js.minute_burn_slow.push_back(slo_obs.burn_slow);
  }

  if (snap != nullptr) {
    snap->end_s = end_s;
    snap->arrivals = static_cast<double>(js.window_arrivals);
    snap->violations = static_cast<double>(window_violations);
    snap->drop_rate = js.last_window_drop_rate;
    snap->p99 = p99;
    snap->utility = utility;
    snap->replicas = replicas;
    snap->burn_fast = slo_obs.burn_fast;
    snap->burn_slow = slo_obs.burn_slow;
    snap->alert_fast = slo_obs.alert_fast;
    snap->alert_slow = slo_obs.alert_slow;
    snap->budget_remaining_frac = js.slo_ledger.budget_remaining_frac();
  }

  js.window_arrivals = 0;
  js.window_drops = 0;
  js.window_latencies.clear();
  js.window_processing = RunningStats();
  js.attr_wait_s = 0.0;
  js.attr_cold_s = 0.0;
  js.attr_fault_s = 0.0;
  js.attr_act_units = 0.0;
  js.attr_ladder_units = 0.0;
}

// Advances one job's overload/underload timers from its rolling latency
// window (the reactive trigger signal shared by every policy).
inline void UpdateOverloadTimerCore(JobState& js, const JobSpec& spec, double now,
                                    double window_s, double reactive_interval_s,
                                    std::vector<double>& scratch) {
  const double horizon = now - window_s;
  while (!js.recent_latencies.empty() && js.recent_latencies.front().first < horizon) {
    js.recent_latencies.pop_front();
  }
  scratch.clear();
  for (const auto& [time, latency] : js.recent_latencies) {
    scratch.push_back(latency);
  }
  std::sort(scratch.begin(), scratch.end());
  const double p99 =
      scratch.empty() ? 0.0 : PercentileSorted(scratch, spec.percentile);
  if (p99 > spec.slo) {
    js.overloaded_for += reactive_interval_s;
    js.underloaded_for = 0.0;
  } else {
    js.overloaded_for = 0.0;
    js.underloaded_for += reactive_interval_s;
  }
}

// Fills one JobMetrics record from the job's state (what the router exports
// to the policy). `pending_placement` is the job's Pending-pod count.
inline void CollectJobMetrics(const JobState& js, const JobSpec& spec,
                              uint32_t pending_placement, JobMetrics& m) {
  m.arrival_rate = js.last_window_rate;
  m.processing_time =
      js.smoothed_processing > 0.0 ? js.smoothed_processing : spec.processing_time;
  m.p99_latency = js.minute_count == 0 ? 0.0 : js.last_p99;
  m.mean_latency = m.p99_latency;  // conservative: tail as proxy when idle
  m.drop_rate = js.last_window_drop_rate;
  m.ready_replicas = std::max<uint32_t>(js.ready, 1);
  m.starting_replicas = js.starting + pending_placement;
  m.arrival_history = js.arrival_history;
  m.overloaded_for = js.overloaded_for;
  m.underloaded_for = js.underloaded_for;
}

// Finalises one job's run-level stats. With `record_series` the per-minute
// vectors are moved into the result and the utility-reconvergence metric is
// computed from them (exactly the pre-sharding code path); without, the
// running sums provide the averages and the reconvergence metric is reported
// as -1 ("not tracked") for fault-touched jobs.
inline void FinalizeJobStats(JobState& js, const std::string& name,
                             bool record_series, JobRunStats& stats) {
  stats.name = name;
  stats.arrivals = js.total_arrivals;
  stats.drops = js.total_drops;
  stats.violations = js.total_violations;
  stats.slo_violation_rate =
      js.total_arrivals > 0
          ? static_cast<double>(js.total_violations) / static_cast<double>(js.total_arrivals)
          : 0.0;
  if (record_series) {
    stats.avg_utility = Mean(js.minute_utility);
    stats.avg_effective_utility = Mean(js.minute_eu);
    stats.avg_replicas = Mean(js.minute_replicas);
  } else {
    const double n = js.minute_count > 0 ? static_cast<double>(js.minute_count) : 1.0;
    stats.avg_utility = js.utility_sum / n;
    stats.avg_effective_utility = js.eu_sum / n;
    stats.avg_replicas = js.replicas_sum / n;
  }
  stats.lost_utility = 1.0 - stats.avg_utility;
  stats.injected_failures = js.injected_failures;
  stats.capacity_seconds_lost = js.capacity_seconds_lost;
  stats.recovery_seconds = js.recovery_seconds;
  // Per-cause lost utility, averaged over windows so the causes sum to
  // (approximately, up to summation reassociation) stats.lost_utility. The
  // bit-exact invariant lives per window in minute_lost_by_cause.
  {
    const double n = js.minute_count > 0 ? static_cast<double>(js.minute_count) : 1.0;
    for (size_t c = 0; c < kNumLossCauses; ++c) {
      stats.lost_by_cause[c] = js.attr_totals[c] / n;
    }
  }
  stats.error_budget_allowed = js.slo_ledger.budget_allowed();
  stats.error_budget_consumed = js.slo_ledger.budget_consumed();
  stats.error_budget_remaining_frac = js.slo_ledger.budget_remaining_frac();
  stats.burn_alerts_fast = js.slo_ledger.alerts_fast();
  stats.burn_alerts_slow = js.slo_ledger.alerts_slow();
  stats.first_burn_alert_s = js.slo_ledger.first_alert_s();
  stats.max_burn_fast = js.slo_ledger.max_burn_fast();
  stats.max_burn_slow = js.slo_ledger.max_burn_slow();
  stats.minute_p99 = std::move(js.minute_p99);
  stats.minute_utility = std::move(js.minute_utility);
  stats.minute_arrivals = std::move(js.minute_arrivals);
  stats.minute_drop_rate = std::move(js.minute_drop_rate);
  stats.minute_replicas = std::move(js.minute_replicas);
  for (size_t c = 0; c < kNumLossCauses; ++c) {
    stats.minute_lost_by_cause[c] = std::move(js.minute_lost_by_cause[c]);
  }
  stats.minute_violations = std::move(js.minute_violations);
  stats.minute_burn_fast = std::move(js.minute_burn_fast);
  stats.minute_burn_slow = std::move(js.minute_burn_slow);

  // Utility reconvergence: time from the first fault until the per-minute
  // utility climbs back to within 0.05 of its pre-fault mean (up to five
  // minutes of pre-fault history; 1.0 when the fault hit before any full
  // minute elapsed). Needs the minute series; -1 (never observed) otherwise.
  if (js.fault_first_s >= 0.0) {
    if (!record_series) {
      stats.utility_reconverge_s = -1.0;
      return;
    }
    const size_t fault_minute = static_cast<size_t>(js.fault_first_s / 60.0);
    const size_t pre_begin = fault_minute >= 5 ? fault_minute - 5 : 0;
    double baseline = 1.0;
    if (fault_minute > pre_begin && pre_begin < stats.minute_utility.size()) {
      double sum = 0.0;
      size_t n = 0;
      for (size_t m = pre_begin; m < fault_minute && m < stats.minute_utility.size(); ++m) {
        sum += stats.minute_utility[m];
        ++n;
      }
      if (n > 0) {
        baseline = sum / static_cast<double>(n);
      }
    }
    stats.utility_reconverge_s = -1.0;
    for (size_t m = fault_minute + 1; m < stats.minute_utility.size(); ++m) {
      if (stats.minute_utility[m] >= baseline - 0.05) {
        stats.utility_reconverge_s =
            (static_cast<double>(m) + 1.0) * 60.0 - js.fault_first_s;
        break;
      }
    }
  }
}

}  // namespace sim_internal
}  // namespace faro

#endif  // SRC_SIM_SIM_INTERNAL_H_
