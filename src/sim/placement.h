// Node-level replica placement: the Kubernetes-scheduler layer underneath
// Faro ("Together they sit over the K8s scheduler, which schedules replicas
// to physical/virtual machines", §1). Faro only decides replica *counts*;
// whether those replicas actually fit onto nodes is the scheduler's problem,
// and fragmentation can leave pods Pending even when aggregate capacity
// exists. This module models that layer: nodes with vCPU/memory capacity,
// three placement strategies, and a cluster-state tracker the simulator (or a
// user) can validate scaling actions against.

#ifndef SRC_SIM_PLACEMENT_H_
#define SRC_SIM_PLACEMENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/objectives.h"

namespace faro {

struct Node {
  std::string name;
  double cpu_capacity = 0.0;
  double mem_capacity = 0.0;
  double cpu_used = 0.0;
  double mem_used = 0.0;
  // False while the node is crashed or cordoned (chaos injection): existing
  // placements are evicted separately; no new replicas land here.
  bool schedulable = true;

  double cpu_free() const { return cpu_capacity - cpu_used; }
  double mem_free() const { return mem_capacity - mem_used; }
  bool Fits(double cpu, double mem) const {
    return schedulable && cpu_free() + 1e-9 >= cpu && mem_free() + 1e-9 >= mem;
  }
};

enum class PlacementStrategy : uint8_t {
  kFirstFit,  // first node with room (K8s default-ish with ordered scoring off)
  kBestFit,   // tightest remaining capacity (bin-packing, consolidation)
  kSpread,    // most free capacity (K8s LeastAllocated spreading)
};

// Tracks replica placements per job across a fixed node pool.
class PlacementTracker {
 public:
  PlacementTracker(std::vector<Node> nodes, PlacementStrategy strategy)
      : nodes_(std::move(nodes)), strategy_(strategy) {
    // Head off early regrowth churn: a pool this size typically hosts a few
    // replicas per node.
    placements_.reserve(4 * nodes_.size());
  }

  const std::vector<Node>& nodes() const { return nodes_; }

  // Total capacity across all nodes, cordoned ones included.
  ClusterResources TotalCapacity() const;

  // Capacity of schedulable (up, uncordoned) nodes only.
  ClusterResources SchedulableCapacity() const;

  // Marks the named node (un)schedulable. Returns false for unknown names.
  // Existing placements are untouched; pair with RemoveNodeReplicas to model
  // a crash or drain.
  bool SetNodeSchedulable(const std::string& node_name, bool schedulable);

  // Evicts every replica placed on the named node, freeing its resources.
  // Returns (job name, replicas evicted) pairs in first-placed order so the
  // simulator can kill the matching replicas deterministically.
  std::vector<std::pair<std::string, uint32_t>> RemoveNodeReplicas(
      const std::string& node_name);

  // Places one replica of the job; returns the node index or nullopt when no
  // node fits (the pod stays Pending).
  std::optional<size_t> PlaceReplica(const JobSpec& spec);

  // Removes one replica of the job from the most-loaded node hosting one;
  // returns false if the job has no replicas placed.
  bool RemoveReplica(const JobSpec& spec);

  // Replicas currently placed for the job.
  uint32_t PlacedReplicas(const std::string& job_name) const;

  // How many replicas of this spec could still be placed, honouring
  // fragmentation (simulates placements, then rolls back).
  uint32_t PlaceableReplicas(const JobSpec& spec) const;

 private:
  std::optional<size_t> PickNode(double cpu, double mem) const;

  struct Placement {
    std::string job;
    size_t node = 0;
    double cpu = 0.0;
    double mem = 0.0;
  };

  std::vector<Node> nodes_;
  PlacementStrategy strategy_;
  std::vector<Placement> placements_;
};

}  // namespace faro

#endif  // SRC_SIM_PLACEMENT_H_
