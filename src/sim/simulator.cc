#include "src/sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "src/common/pool.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/faults/injector.h"
#include "src/obs/metrics.h"
#include "src/sim/event_queue.h"
#include "src/sim/sim_internal.h"

namespace faro {

// Sharded engine entry point (engine_sharded.cc). Shares ValidateSimConfig
// and all per-job semantics via sim_internal.h.
std::unique_ptr<SimStepper> MakeSimStepperSharded(const SimConfig& config,
                                                  const std::vector<SimJobConfig>& jobs,
                                                  AutoscalingPolicy& policy);

namespace {

using sim_internal::CloseMetricsWindowCore;
using sim_internal::CollectJobMetrics;
using sim_internal::FinalizeJobStats;
using sim_internal::JobState;
using sim_internal::kInfLatency;
using sim_internal::UpdateOverloadTimerCore;

// Classic engine: one event loop, one RNG stream shared by every job. The
// future-event set sits behind EventScheduler (calendar queue by default,
// binary heap as reference -- both pop in the identical (time, sequence)
// order, so the choice never changes results); per-request state lives in a
// struct-of-arrays RequestPool instead of per-job deques.
//
// The engine is a SimStepper: Init() primes the run, StepUntil() drains the
// event loop up to a sim-time target, Finish() aggregates. The batch path
// (RunSimulation) is Init + StepUntil(+inf) + Finish, so paced and batch
// runs execute identical code over the identical event order.
//
// Actuation goes through the reconciler (src/actuate/): decisions are
// published as versioned desired states and the engine itself is the
// ClusterPort the reconciler converges. The first reconcile pass of a
// generation executes the historical in-step apply bit-exactly (same job
// order, same fault/cold-start draw order); repair passes run at reactive
// ticks and are zero-draw no-ops while the fleet holds its targets, so
// fault-free runs are unchanged to the bit.
class Simulation final : public SimStepper, private ClusterPort {
 public:
  Simulation(const SimConfig& config, const std::vector<SimJobConfig>& jobs,
             AutoscalingPolicy& policy)
      : config_(config), jobs_(jobs), policy_(policy), rng_(config.seed),
        trace_(config.trace), events_(MakeScheduler(config.scheduler, 4096)),
        injector_(config.faults, config.seed),
        reconciler_(EffectiveReconcilerConfig(config)) {}

  void Init();
  void StepUntil(double until_s) override;
  RunResult Finish() override;
  double duration_s() const override { return duration_; }
  double now_s() const override { return now_; }
  bool done() const override { return done_; }

 private:
  void Push(double time, EventKind kind, uint32_t job, double payload = 0.0) {
    events_->Push(Event{time, kind, job, sequence_++, payload});
  }

  // Generates the next minute's Poisson arrivals for every job.
  void ScheduleMinuteArrivals(size_t minute);

  void HandleArrival(const Event& event);
  void HandleCompletion(const Event& event);
  void HandleReplicaReady(const Event& event);
  void StartServiceIfPossible(uint32_t job);
  void RecordLatency(uint32_t job, double latency);

  // --- reconciling actuator (src/actuate/) --------------------------------
  // Derives the jitter seed from the run seed so distinct trials get
  // distinct (but reproducible) retry schedules.
  static ReconcilerConfig EffectiveReconcilerConfig(const SimConfig& config) {
    ReconcilerConfig rc = config.reconciler;
    rc.seed = HashCombine(HashCombine(config.seed, 0xac70a7eull), rc.seed);
    return rc;
  }
  // Publishes one decision as the next desired-state generation and runs its
  // first reconcile pass (the historical in-step apply).
  void PublishAction(const ScalingAction& action);
  // One reconcile pass; emits the convergence audit record when a generation
  // converges. Zero RNG draws while the fleet holds its targets.
  void RunReconcilePass();
  // Actuation-fault outcome for a scale-up of `add` replicas of job j (the
  // PR 5 drop/delay/partial switch); returns the count to provision now.
  uint32_t DrawActuationFor(uint32_t j, uint32_t add);
  // ClusterPort: the reconciler sees the engine itself as the cluster.
  size_t num_jobs() const override { return jobs_.size(); }
  uint32_t Fleet(size_t job) const override {
    return state_[job].ready + state_[job].starting + pending_placement_[job];
  }
  uint32_t ApplyTarget(size_t job, uint32_t target, bool first_pass,
                       double now_s) override;
  void SetDropRate(size_t job, double rate) override;

  void InjectReplicaFailures();
  void UpdateOverloadTimers();
  const std::vector<JobMetrics>& CollectMetrics();

  // --- chaos-injection hooks (src/faults/) --------------------------------
  // Kills up to `want` replicas of job j: cold starts are cancelled first,
  // then idle replicas die immediately, then busy replicas drain out via
  // pending_removal. `placement_freed` marks node evictions whose placements
  // RemoveNodeReplicas already released. Returns replicas actually killed.
  uint32_t KillReplicas(uint32_t j, uint32_t want, bool placement_freed);
  // Correlated burst against one job (or all jobs when job < 0).
  void ApplyBurst(int32_t job, double fraction, uint32_t count);
  void HandleFaultEvent(const FaultEvent& fault);
  // Stochastic correlated bursts, drawn once per reactive tick.
  void InjectStochasticFaults();
  // Integrates the per-job replica deficit left behind by kills (recovery
  // metrics); pure arithmetic, no RNG, zero work when nothing was killed.
  void AccountFaultDeficits();
  void RecordFault(const char* what, const std::string& target, uint32_t count);
  // Cluster capacity as the policy should see it: the configured resources
  // minus crashed/drained node capacity. Returns the exact configured object
  // when every node is up, keeping no-fault runs bit-identical.
  ClusterResources EffectiveResources() const {
    if (down_cpu_ <= 0.0 && down_mem_ <= 0.0) {
      return config_.resources;
    }
    return ClusterResources{std::max(0.0, config_.resources.cpu - down_cpu_),
                            std::max(0.0, config_.resources.mem - down_mem_)};
  }

  double ServiceTime(uint32_t job) {
    const double p = jobs_[job].spec.processing_time;
    if (config_.processing_jitter <= 0.0) {
      return p;
    }
    return std::max(0.2 * p, p * (1.0 + config_.processing_jitter * rng_.Normal()));
  }

  double ColdStart() {
    if (config_.cold_start_jitter_s <= 0.0) {
      return config_.cold_start_s;
    }
    return std::max(1.0, config_.cold_start_s +
                             rng_.Uniform(-config_.cold_start_jitter_s,
                                          config_.cold_start_jitter_s));
  }

  const SimConfig& config_;
  const std::vector<SimJobConfig>& jobs_;
  AutoscalingPolicy& policy_;
  Rng rng_;
  // Observability. The trace session records request-lifecycle spans in sim
  // time; the cells are this thread's hoisted registry shards (null when
  // metrics are off, so the hot path costs one branch per site).
  TraceSession trace_;
  Counter::Cell* m_requests_ = nullptr;
  Counter::Cell* m_drops_ = nullptr;
  Counter::Cell* m_violations_ = nullptr;
  Histogram::Cell* m_latency_ = nullptr;
  Histogram::Cell* m_queue_wait_ = nullptr;
  Histogram::Cell* m_cold_start_ = nullptr;
  std::unique_ptr<EventScheduler> events_;
  RequestPool pool_;
  std::vector<double> scratch_latencies_;
  std::vector<JobMetrics> metrics_scratch_;
  uint64_t sequence_ = 0;
  uint64_t events_processed_ = 0;
  double peak_replicas_ = 0.0;
  double now_ = 0.0;
  std::vector<JobState> state_;
  std::vector<JobSpec> specs_;
  size_t total_minutes_ = 0;
  double duration_ = 0.0;
  size_t next_minute_ = 1;
  bool done_ = false;
  // Optional node-placement model.
  std::unique_ptr<PlacementTracker> placement_;
  // Replicas requested but not yet placeable (Pending pods), per job.
  std::vector<uint32_t> pending_placement_;
  // Chaos layer: private RNG stream + counters + applied-fault log. An
  // inactive plan never draws, so fault-free runs are unchanged.
  FaultInjector injector_;
  // Capacity currently lost to crashed/drained nodes.
  double down_cpu_ = 0.0;
  double down_mem_ = 0.0;
  std::vector<std::string> down_nodes_;
  Counter::Cell* m_fault_events_ = nullptr;
  Counter::Cell* m_fault_kills_ = nullptr;
  // Reconciling actuator: generation counter + the reconcile loop core.
  Reconciler reconciler_;
  uint64_t next_generation_ = 0;
  Histogram::Cell* m_act_converge_ = nullptr;

  // Starts the cold-start clock for one replica of job j if a node has room
  // (or unconditionally without a node model). Returns false when Pending.
  bool TryProvisionReplica(uint32_t j) {
    if (placement_ != nullptr && !placement_->PlaceReplica(jobs_[j].spec).has_value()) {
      return false;
    }
    ++state_[j].starting;
    // One ColdStart() draw whether or not observability is on: the RNG
    // sequence (and hence the run) is identical either way. The straggler
    // stretch draws from the injector's own stream (and only when enabled).
    const double delay = injector_.StretchColdStart(ColdStart());
    state_[j].attr_cold_s += delay;
    if (m_cold_start_ != nullptr) {
      m_cold_start_->Record(delay);
    }
    if (trace_.on()) {
      trace_.SimSpan(j, "cold_start", "sim.replica", now_, now_ + delay);
    }
    Push(now_ + delay, EventKind::kReplicaReady, j);
    return true;
  }

  void RetryPendingPlacements() {
    for (uint32_t j = 0; j < jobs_.size(); ++j) {
      while (pending_placement_[j] > 0 && TryProvisionReplica(j)) {
        --pending_placement_[j];
      }
    }
  }

  // Attribution: a decision cycle that fell down the degradation ladder
  // (deadline miss, warm rescale, capacity heuristic, forecast fallback)
  // marks every job's open window -- the decision is cluster-wide, so the
  // evidence cannot be narrowed to single jobs.
  void MarkLadderDegradations(uint64_t ladder_before) {
    if (sim_internal::LadderDegradations(policy_.solver_telemetry()) > ladder_before) {
      for (JobState& js : state_) {
        js.attr_ladder_units += 1.0;
      }
    }
  }
};

void Simulation::ScheduleMinuteArrivals(size_t minute) {
  for (uint32_t j = 0; j < jobs_.size(); ++j) {
    const Series& trace = jobs_[j].arrival_rate_per_min;
    if (minute >= trace.size()) {
      continue;
    }
    const double rate = std::max(0.0, trace[minute]);
    const uint64_t count = rng_.Poisson(rate);
    const double start = static_cast<double>(minute) * 60.0;
    for (uint64_t k = 0; k < count; ++k) {
      Push(start + rng_.Uniform() * 60.0, EventKind::kArrival, j);
    }
  }
}

void Simulation::RecordLatency(uint32_t job, double latency) {
  JobState& js = state_[job];
  js.window_latencies.push_back(latency);
  js.recent_latencies.emplace_back(now_, latency);
  if (latency > jobs_[job].spec.slo) {
    ++js.total_violations;
    if (m_violations_ != nullptr) {
      m_violations_->Add(1);
    }
  }
  if (m_latency_ != nullptr && std::isfinite(latency)) {
    m_latency_->Record(latency);  // drops carry infinite latency; counted above
  }
}

void Simulation::HandleArrival(const Event& event) {
  JobState& js = state_[event.job];
  ++js.total_arrivals;
  ++js.window_arrivals;
  if (m_requests_ != nullptr) {
    m_requests_->Add(1);
  }
  // Explicit drop as instructed by the autoscaler (Faro-Penalty*).
  if (js.explicit_drop_rate > 0.0 && rng_.Uniform() < js.explicit_drop_rate) {
    ++js.total_drops;
    ++js.window_drops;
    if (m_drops_ != nullptr) {
      m_drops_->Add(1);
    }
    if (trace_.on()) {
      trace_.SimInstant(event.job, "drop_explicit", "sim.request", now_);
    }
    RecordLatency(event.job, kInfLatency);
    return;
  }
  // Tail drop: full router queue returns HTTP 503 (§5).
  if (js.queue.size >= config_.router_queue_limit) {
    ++js.total_drops;
    ++js.window_drops;
    if (m_drops_ != nullptr) {
      m_drops_->Add(1);
    }
    if (trace_.on()) {
      trace_.SimInstant(event.job, "drop_tail", "sim.request", now_);
    }
    RecordLatency(event.job, kInfLatency);
    return;
  }
  js.queue.Push(pool_, pool_.Acquire(now_));
  StartServiceIfPossible(event.job);
}

void Simulation::StartServiceIfPossible(uint32_t job) {
  JobState& js = state_[job];
  while (!js.queue.empty() && js.busy < js.ready) {
    const uint32_t request = js.queue.Pop(pool_);
    const double arrival_time = pool_.arrival_time(request);
    pool_.Release(request);
    ++js.busy;
    const double service = ServiceTime(job);
    js.window_processing.Add(service);
    const double wait = now_ - arrival_time;
    js.attr_wait_s += wait;
    if (m_queue_wait_ != nullptr) {
      m_queue_wait_->Record(wait);
    }
    if (trace_.on()) {
      // Request lifecycle on the job's track: the wait span (when the request
      // actually queued) abuts the service span.
      if (wait > 0.0) {
        trace_.SimSpan(job, "queue_wait", "sim.request", arrival_time, now_);
      }
      trace_.SimSpan(job, "service", "sim.request", now_, now_ + service);
    }
    Push(now_ + service, EventKind::kCompletion, job, arrival_time);
  }
}

void Simulation::HandleCompletion(const Event& event) {
  JobState& js = state_[event.job];
  --js.busy;
  RecordLatency(event.job, now_ - event.payload);
  if (js.pending_removal > 0) {
    // This replica was slated for removal: it exits instead of picking up
    // more work.
    --js.pending_removal;
    --js.ready;
    if (js.placement_credit > 0) {
      // A node eviction already freed this replica's placement.
      --js.placement_credit;
    } else if (placement_ != nullptr) {
      (void)placement_->RemoveReplica(jobs_[event.job].spec);
    }
  }
  StartServiceIfPossible(event.job);
}

void Simulation::HandleReplicaReady(const Event& event) {
  JobState& js = state_[event.job];
  if (js.cancelled_starts > 0) {
    --js.cancelled_starts;
    return;
  }
  if (js.starting > 0) {
    --js.starting;
  }
  ++js.ready;
  StartServiceIfPossible(event.job);
}

void Simulation::InjectReplicaFailures() {
  if (config_.replica_mtbf_s <= 0.0) {
    return;
  }
  const double failure_prob = config_.reactive_interval_s / config_.replica_mtbf_s;
  for (uint32_t j = 0; j < jobs_.size(); ++j) {
    JobState& js = state_[j];
    uint32_t failures = 0;
    for (uint32_t r = 0; r < js.ready; ++r) {
      if (rng_.Uniform() < failure_prob) {
        ++failures;
      }
    }
    if (failures == 0) {
      continue;
    }
    const uint32_t ready_before = js.ready - std::min(js.ready, js.pending_removal);
    uint32_t killed = 0;
    while (failures-- > 0 && js.ready > js.pending_removal) {
      if (js.ready - js.busy > 0 && js.busy + js.pending_removal < js.ready) {
        --js.ready;  // idle replica dies immediately
        if (placement_ != nullptr) {
          (void)placement_->RemoveReplica(jobs_[j].spec);
        }
      } else {
        ++js.pending_removal;  // busy replica exits after its request
      }
      ++killed;
    }
    if (killed > 0) {
      js.injected_failures += killed;
      js.recover_target = std::max(js.recover_target, ready_before);
      if (js.fault_first_s < 0.0) {
        js.fault_first_s = now_;
      }
      injector_.stats().replicas_killed += killed;
      if (m_fault_kills_ != nullptr) {
        m_fault_kills_->Add(killed);
      }
      RecordFault("replica_mtbf", jobs_[j].spec.name, killed);
    }
  }
}

uint32_t Simulation::KillReplicas(uint32_t j, uint32_t want, bool placement_freed) {
  JobState& js = state_[j];
  // Recovery bar: the replicas that were actually alive (not already
  // draining toward a pending removal) when this fault hit.
  const uint32_t ready_before = js.ready - std::min(js.ready, js.pending_removal);
  uint32_t killed = 0;
  if (placement_freed) {
    // Node eviction: cold starts on the node are simply gone. Their
    // placements were freed with the node; cancelled ReplicaReady events are
    // ignored when they fire.
    const uint32_t cancel = std::min(want, js.starting);
    js.starting -= cancel;
    js.cancelled_starts += cancel;
    killed += cancel;
  }
  while (killed < want) {
    if (js.ready > js.busy) {
      --js.ready;  // idle replica dies immediately
      if (!placement_freed && placement_ != nullptr) {
        (void)placement_->RemoveReplica(jobs_[j].spec);
      }
    } else if (js.busy > js.pending_removal) {
      // Busy replica drains its in-flight request, then exits.
      ++js.pending_removal;
      if (placement_freed) {
        ++js.placement_credit;
      }
    } else {
      break;  // nothing left to kill
    }
    ++killed;
  }
  if (killed > 0) {
    js.injected_failures += killed;
    js.recover_target = std::max(js.recover_target, ready_before);
    if (js.fault_first_s < 0.0) {
      js.fault_first_s = now_;
    }
    injector_.stats().replicas_killed += killed;
    if (m_fault_kills_ != nullptr) {
      m_fault_kills_->Add(killed);
    }
  }
  return killed;
}

void Simulation::ApplyBurst(int32_t job, double fraction, uint32_t count) {
  uint32_t total = 0;
  for (uint32_t j = 0; j < jobs_.size(); ++j) {
    if (job >= 0 && static_cast<uint32_t>(job) != j) {
      continue;
    }
    uint32_t want = count;
    if (fraction > 0.0) {
      want = static_cast<uint32_t>(
          std::floor(fraction * static_cast<double>(state_[j].ready) + 0.5));
    }
    total += KillReplicas(j, want, /*placement_freed=*/false);
  }
  ++injector_.stats().bursts;
  const std::string target =
      (job >= 0 && static_cast<size_t>(job) < jobs_.size())
          ? jobs_[static_cast<size_t>(job)].spec.name
          : std::string("all");
  RecordFault("replica_burst", target, total);
}

void Simulation::HandleFaultEvent(const FaultEvent& fault) {
  switch (fault.kind) {
    case FaultKind::kNodeCrash:
    case FaultKind::kNodeDrain: {
      if (std::find(down_nodes_.begin(), down_nodes_.end(), fault.node) !=
          down_nodes_.end()) {
        break;  // already down; a second crash/drain is a no-op
      }
      down_nodes_.push_back(fault.node);
      uint32_t total = 0;
      if (placement_ != nullptr) {
        (void)placement_->SetNodeSchedulable(fault.node, false);
        for (const auto& [job_name, evicted] :
             placement_->RemoveNodeReplicas(fault.node)) {
          for (uint32_t j = 0; j < jobs_.size(); ++j) {
            if (jobs_[j].spec.name == job_name) {
              total += KillReplicas(j, evicted, /*placement_freed=*/true);
              break;
            }
          }
        }
      }
      for (const Node& node : config_.nodes) {
        if (node.name == fault.node) {
          down_cpu_ += node.cpu_capacity;
          down_mem_ += node.mem_capacity;
          break;
        }
      }
      if (fault.kind == FaultKind::kNodeCrash) {
        ++injector_.stats().node_crashes;
      } else {
        ++injector_.stats().node_drains;
      }
      RecordFault(FaultKindName(fault.kind), fault.node, total);
      break;
    }
    case FaultKind::kNodeRecover: {
      const auto down = std::find(down_nodes_.begin(), down_nodes_.end(), fault.node);
      if (down == down_nodes_.end()) {
        break;  // node is not down; nothing to recover
      }
      down_nodes_.erase(down);
      if (placement_ != nullptr) {
        (void)placement_->SetNodeSchedulable(fault.node, true);
      }
      for (const Node& node : config_.nodes) {
        if (node.name == fault.node) {
          down_cpu_ = std::max(0.0, down_cpu_ - node.cpu_capacity);
          down_mem_ = std::max(0.0, down_mem_ - node.mem_capacity);
          break;
        }
      }
      ++injector_.stats().node_recoveries;
      RecordFault("node_recover", fault.node, 0);
      break;
    }
    case FaultKind::kReplicaBurst:
      ApplyBurst(fault.job, fault.fraction, fault.count);
      break;
  }
}

void Simulation::InjectStochasticFaults() {
  if (!injector_.active()) {
    return;
  }
  if (injector_.DrawBurst(config_.reactive_interval_s)) {
    ApplyBurst(-1, injector_.plan().burst_fraction, 0);
  }
}

void Simulation::AccountFaultDeficits() {
  for (uint32_t j = 0; j < jobs_.size(); ++j) {
    JobState& js = state_[j];
    if (js.recover_target == 0) {
      continue;
    }
    // Replicas draining toward a pending removal still sit in `ready` until
    // their in-flight request completes, but they are lost capacity already
    // -- count only the live pool against the recovery target.
    const uint32_t live = js.ready - std::min(js.ready, js.pending_removal);
    if (live >= js.recover_target) {
      js.recover_target = 0;  // pool recovered (or autoscaler re-targeted)
      continue;
    }
    const double deficit = static_cast<double>(js.recover_target - live);
    js.capacity_seconds_lost += deficit * config_.reactive_interval_s;
    js.attr_fault_s += deficit * config_.reactive_interval_s;
    js.recovery_seconds += config_.reactive_interval_s;
  }
}

void Simulation::RecordFault(const char* what, const std::string& target,
                             uint32_t count) {
  injector_.Record(now_, what, target, count);
  if (m_fault_events_ != nullptr) {
    m_fault_events_->Add(1);
  }
  if (trace_.on()) {
    trace_.SimInstant(kFaultTid, what, "faults", now_);
  }
}

void Simulation::UpdateOverloadTimers() {
  for (uint32_t j = 0; j < jobs_.size(); ++j) {
    UpdateOverloadTimerCore(state_[j], jobs_[j].spec, now_, config_.metrics_window_s,
                            config_.reactive_interval_s, scratch_latencies_);
  }
}

const std::vector<JobMetrics>& Simulation::CollectMetrics() {
  metrics_scratch_.resize(jobs_.size());
  for (uint32_t j = 0; j < jobs_.size(); ++j) {
    CollectJobMetrics(state_[j], jobs_[j].spec, pending_placement_[j],
                      metrics_scratch_[j]);
  }
  return metrics_scratch_;
}

uint32_t Simulation::DrawActuationFor(uint32_t j, uint32_t add) {
  // Actuation faults (chaos injection): the scale-up command can be dropped,
  // delayed, or only partially applied. DrawActuation() costs zero RNG draws
  // when the knobs are off. Repair re-issues draw again -- the retried
  // command travels the same lossy path as the original.
  switch (injector_.DrawActuation()) {
    case ActuationOutcome::kDrop:
      RecordFault("actuation_drop", jobs_[j].spec.name, add);
      state_[j].attr_act_units += static_cast<double>(add);
      return 0;
    case ActuationOutcome::kDelay:
      RecordFault("actuation_delay", jobs_[j].spec.name, add);
      state_[j].attr_act_units += static_cast<double>(add);
      // The payload carries (add, generation): when the command finally
      // lands, the generation fence decides whether it is stale.
      Push(now_ + injector_.plan().actuation_delay_s, EventKind::kDelayedScaleUp,
           j, static_cast<double>(add) +
                  65536.0 * static_cast<double>(next_generation_));
      return 0;
    case ActuationOutcome::kPartial: {
      const uint32_t applied = (add + 1) / 2;
      RecordFault("actuation_partial", jobs_[j].spec.name, add - applied);
      state_[j].attr_act_units += static_cast<double>(add - applied);
      return applied;
    }
    case ActuationOutcome::kApply:
      break;
  }
  return add;
}

uint32_t Simulation::ApplyTarget(size_t job, uint32_t target, bool first_pass,
                                 double /*now_s*/) {
  const uint32_t j = static_cast<uint32_t>(job);
  JobState& js = state_[j];
  if (!first_pass) {
    // Repair pass: re-issue only the committed-fleet shortfall (ready +
    // starting + pending placements -- everything the cluster already owes
    // us). Downscales are one-shot per generation: replicas draining toward
    // a pending removal still sit in `ready`, so re-issuing would
    // double-drain.
    const uint32_t fleet = js.ready + js.starting + pending_placement_[j];
    if (fleet >= target) {
      return 0;
    }
    uint32_t add = target - fleet;
    add = DrawActuationFor(j, add);
    for (uint32_t k = 0; k < add; ++k) {
      if (!TryProvisionReplica(j)) {
        ++pending_placement_[j];
      }
    }
    return add;
  }
  // First pass: the historical in-step apply, bit-exact. The scale-up
  // baseline deliberately excludes pending placements (the pre-reconciler
  // engines always re-requested them; CollectJobMetrics folds them into
  // starting_replicas, so the policy's own baseline matches).
  const uint32_t current = js.ready + js.starting;
  if (target > current) {
    uint32_t add = target - current;
    add = DrawActuationFor(j, add);
    for (uint32_t k = 0; k < add; ++k) {
      if (!TryProvisionReplica(j)) {
        ++pending_placement_[j];  // Pending pod; retried each reactive tick
      }
    }
    return add;
  }
  if (target < current) {
    // A deliberate downscale lowers the post-fault recovery bar: the
    // autoscaler no longer owes the pre-kill replica count.
    js.recover_target = std::min(js.recover_target, target);
    uint32_t remove = current - target;
    const uint32_t removed = remove;
    // Pending placements are free to abandon.
    const uint32_t unqueue = std::min(remove, pending_placement_[j]);
    pending_placement_[j] -= unqueue;
    remove -= unqueue;
    // Cancel cold starts next.
    const uint32_t cancel = std::min(remove, js.starting);
    js.starting -= cancel;
    js.cancelled_starts += cancel;
    remove -= cancel;
    // Then idle replicas, immediately.
    const uint32_t idle = js.ready - js.busy;
    const uint32_t drop_idle = std::min(remove, idle);
    js.ready -= drop_idle;
    remove -= drop_idle;
    // Busy replicas exit after their in-flight request (graceful drain).
    js.pending_removal += remove;
    if (placement_ != nullptr) {
      for (uint32_t k = 0; k < cancel + drop_idle; ++k) {
        (void)placement_->RemoveReplica(jobs_[j].spec);
      }
    }
    return removed;
  }
  return 0;
}

void Simulation::SetDropRate(size_t job, double rate) {
  state_[job].explicit_drop_rate = rate;
}

void Simulation::PublishAction(const ScalingAction& action) {
  if (action.replicas.size() != jobs_.size()) {
    return;
  }
  DesiredState desired;
  desired.generation = ++next_generation_;
  desired.published_s = now_;
  desired.replicas.resize(jobs_.size());
  for (uint32_t j = 0; j < jobs_.size(); ++j) {
    desired.replicas[j] = std::max<uint32_t>(1, action.replicas[j]);
  }
  if (!action.drop_rates.empty() && action.drop_rates.size() == jobs_.size()) {
    desired.drop_rates.resize(jobs_.size());
    for (uint32_t j = 0; j < jobs_.size(); ++j) {
      desired.drop_rates[j] = std::clamp(action.drop_rates[j], 0.0, 1.0);
    }
  }
  if (config_.desired_observer != nullptr) {
    config_.desired_observer->OnPublish(desired);
  }
  reconciler_.Publish(desired, now_);
  RunReconcilePass();
}

void Simulation::RunReconcilePass() {
  ConvergenceEvent event;
  reconciler_.Reconcile(*this, now_, &event);
  if (event.generation == 0) {
    return;
  }
  if (m_act_converge_ != nullptr) {
    m_act_converge_->Record(event.convergence_s);
  }
  if (trace_.on()) {
    trace_.SimInstant(kAutoscalerTid, "actuation_converged", "sim.control", now_);
  }
  if (config_.audit != nullptr) {
    DecisionAuditRecord record;
    record.label = config_.audit_label + "/actuate";
    record.time_s = event.converged_s;
    record.cycle = event.generation;
    record.num_jobs = jobs_.size();
    double replicas_total = 0.0;
    for (const uint32_t r : reconciler_.desired().replicas) {
      replicas_total += static_cast<double>(r);
    }
    record.replicas_total = replicas_total;
    record.actuation_generation = event.generation;
    record.actuation_convergence_s = event.convergence_s;
    record.actuation_retries = event.retries;
    record.actuation_fenced = reconciler_.telemetry().fence_rejections;
    config_.audit->Append(std::move(record));
  }
}

void Simulation::Init() {
  if (config_.obs_metrics) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    m_requests_ = &registry
                       .GetCounter("faro_sim_requests_total",
                                   "Requests generated by the simulator")
                       .LocalCell();
    m_drops_ = &registry
                    .GetCounter("faro_sim_drops_total",
                                "Requests dropped (tail drop or explicit drop rate)")
                    .LocalCell();
    m_violations_ = &registry
                         .GetCounter("faro_sim_slo_violations_total",
                                     "Requests exceeding their job SLO (drops included)")
                         .LocalCell();
    m_latency_ = &registry
                      .GetHistogram("faro_sim_request_latency_seconds",
                                    "End-to-end request latency (served requests)")
                      .LocalCell();
    m_queue_wait_ = &registry
                         .GetHistogram("faro_sim_queue_wait_seconds",
                                       "Router queue wait before service starts")
                         .LocalCell();
    m_cold_start_ = &registry
                         .GetHistogram("faro_sim_cold_start_seconds",
                                       "Replica cold-start provisioning delay")
                         .LocalCell();
    m_fault_events_ = &registry
                           .GetCounter("faro_fault_events_total",
                                       "Chaos events applied (fault-log entries)")
                           .LocalCell();
    m_fault_kills_ = &registry
                          .GetCounter("faro_fault_replicas_killed_total",
                                      "Replicas killed by fault injection")
                          .LocalCell();
    m_act_converge_ = &registry
                           .GetHistogram("faro_actuate_convergence_seconds",
                                         "Publish-to-converge time per desired-state "
                                         "generation (reconciling actuator)")
                           .LocalCell();
  }
  state_.assign(jobs_.size(), JobState{});
  pending_placement_.assign(jobs_.size(), 0);
  if (!config_.nodes.empty()) {
    placement_ = std::make_unique<PlacementTracker>(config_.nodes, config_.placement_strategy);
  }
  specs_.clear();
  specs_.reserve(jobs_.size());
  for (const SimJobConfig& job : jobs_) {
    specs_.push_back(job.spec);
  }
  total_minutes_ = std::numeric_limits<size_t>::max();
  for (const SimJobConfig& job : jobs_) {
    total_minutes_ = std::min(total_minutes_, job.arrival_rate_per_min.size());
  }
  duration_ = static_cast<double>(total_minutes_) * 60.0;
  if (config_.record_minute_series) {
    for (JobState& js : state_) {
      js.minute_p99.reserve(total_minutes_);
      js.minute_utility.reserve(total_minutes_);
      js.minute_eu.reserve(total_minutes_);
      js.minute_arrivals.reserve(total_minutes_);
      js.minute_drop_rate.reserve(total_minutes_);
      js.minute_replicas.reserve(total_minutes_);
      for (auto& series : js.minute_lost_by_cause) {
        series.reserve(total_minutes_);
      }
      js.minute_violations.reserve(total_minutes_);
      js.minute_burn_fast.reserve(total_minutes_);
      js.minute_burn_slow.reserve(total_minutes_);
    }
  }
  for (uint32_t j = 0; j < jobs_.size(); ++j) {
    state_[j].ready = std::max<uint32_t>(1, jobs_[j].initial_replicas);
    if (placement_ != nullptr) {
      for (uint32_t r = 0; r < state_[j].ready; ++r) {
        (void)placement_->PlaceReplica(jobs_[j].spec);
      }
    }
  }

  // Scheduled chaos events (zero pushes -- and zero sequence-number drift --
  // when the plan is inactive).
  if (injector_.active()) {
    const std::vector<FaultEvent>& scheduled = injector_.scheduled();
    for (uint32_t i = 0; i < scheduled.size(); ++i) {
      Push(scheduled[i].time_s, EventKind::kFaultEvent, i);
    }
  }

  // Prime the event queue: first minute of arrivals, ticks, first decision.
  ScheduleMinuteArrivals(0);
  Push(config_.metrics_window_s, EventKind::kMetricsTick, 0);
  Push(config_.reactive_interval_s, EventKind::kReactiveTick, 0);
  Push(0.0, EventKind::kDecideTick, 0);
  next_minute_ = 1;
}

void Simulation::StepUntil(double until_s) {
  // Peeking the head (instead of the historical pop-then-break) is exact:
  // NextTime() returns the time of the event Pop() would hand back, so an
  // event past the limit is simply left in the queue -- unprocessed and
  // uncounted either way. That makes stepping to any intermediate target a
  // pure prefix of the batch loop.
  const double limit = std::min(until_s, duration_);
  while (!events_->Empty() && events_->NextTime() <= limit) {
    const Event event = events_->Pop();
    ++events_processed_;
    now_ = event.time;
    switch (event.kind) {
      case EventKind::kArrival:
        HandleArrival(event);
        break;
      case EventKind::kCompletion:
        HandleCompletion(event);
        break;
      case EventKind::kReplicaReady:
        HandleReplicaReady(event);
        break;
      case EventKind::kReactiveTick: {
        InjectStochasticFaults();
        InjectReplicaFailures();
        AccountFaultDeficits();
        RetryPendingPlacements();
        // Level-triggered repair rides the reactive cadence: re-issue any
        // scale-up an actuation fault ate or a kill re-opened, before the
        // policy reads metrics (so FastReact sees repairs as `starting`).
        // Zero draws -- and zero state changes -- while the fleet converges.
        if (config_.actuation == ActuationMode::kReconciler) {
          RunReconcilePass();
        }
        UpdateOverloadTimers();
        const auto& metrics = CollectMetrics();
        const uint64_t ladder_before =
            sim_internal::LadderDegradations(policy_.solver_telemetry());
        if (auto action = policy_.FastReact(now_, specs_, metrics, EffectiveResources())) {
          PublishAction(*action);
        }
        MarkLadderDegradations(ladder_before);
        Push(now_ + config_.reactive_interval_s, EventKind::kReactiveTick, 0);
        break;
      }
      case EventKind::kDecideTick: {
        if (trace_.on()) {
          trace_.SimInstant(kAutoscalerTid, "decide_tick", "sim.control", now_);
        }
        const auto& metrics = CollectMetrics();
        const uint64_t ladder_before =
            sim_internal::LadderDegradations(policy_.solver_telemetry());
        const ScalingAction action = policy_.Decide(now_, specs_, metrics, EffectiveResources());
        MarkLadderDegradations(ladder_before);
        {
          ScopedWallSpan actuate(trace_, kAutoscalerTid, "actuate", "autoscaler");
          PublishAction(action);
        }
        Push(now_ + policy_.decision_interval_s(), EventKind::kDecideTick, 0);
        break;
      }
      case EventKind::kMetricsTick: {
        double minute_replicas = 0.0;
        MinuteSnapshot snap;
        MinuteSnapshot* snap_ptr =
            config_.minute_observer != nullptr ? &snap : nullptr;
        for (uint32_t j = 0; j < jobs_.size(); ++j) {
          sim_internal::CloseMetricsWindowCore(
              state_[j], jobs_[j].spec, now_, config_.metrics_window_s,
              config_.history_steps, config_.record_minute_series,
              scratch_latencies_, snap_ptr);
          if (snap_ptr != nullptr) {
            snap.job = j;
            config_.minute_observer->OnMinute(snap);
          }
          minute_replicas += static_cast<double>(state_[j].ready + state_[j].starting);
        }
        peak_replicas_ = std::max(peak_replicas_, minute_replicas);
        if (next_minute_ < total_minutes_) {
          ScheduleMinuteArrivals(next_minute_);
          ++next_minute_;
        }
        Push(now_ + config_.metrics_window_s, EventKind::kMetricsTick, 0);
        break;
      }
      case EventKind::kFaultEvent:
        HandleFaultEvent(injector_.scheduled()[event.job]);
        break;
      case EventKind::kDelayedScaleUp: {
        // A delayed actuation finally lands. The payload packs (add,
        // generation); under the reconciler the generation fence discards
        // commands a newer solve has superseded, and a current-generation
        // landing is clamped to the open deficit so a repair that already
        // closed it is never double-applied. kInStep keeps the historical
        // fire-and-forget landing (the next decision corrects any drift).
        const uint64_t packed = static_cast<uint64_t>(event.payload);
        uint32_t add = static_cast<uint32_t>(packed % 65536);
        const uint64_t generation = packed / 65536;
        if (config_.actuation == ActuationMode::kReconciler) {
          if (generation < reconciler_.generation()) {
            reconciler_.FenceStale();
            RecordFault("actuation_fenced", jobs_[event.job].spec.name, add);
            break;
          }
          const uint32_t fleet = Fleet(event.job);
          const uint32_t target =
              event.job < reconciler_.desired().replicas.size()
                  ? reconciler_.desired().replicas[event.job]
                  : 0;
          add = std::min(add, target > fleet ? target - fleet : 0);
          if (add == 0) {
            break;
          }
        }
        for (uint32_t k = 0; k < add; ++k) {
          if (!TryProvisionReplica(event.job)) {
            ++pending_placement_[event.job];
          }
        }
        break;
      }
    }
  }
  if (events_->Empty() || events_->NextTime() > duration_) {
    done_ = true;
  }
}

RunResult Simulation::Finish() {
  // --- aggregate ------------------------------------------------------------
  RunResult result;
  result.jobs.resize(jobs_.size());
  result.events_processed = events_processed_;
  result.cluster_peak_replicas = peak_replicas_;
  size_t minutes = std::numeric_limits<size_t>::max();
  for (const JobState& js : state_) {
    minutes = std::min(minutes, js.minute_count);
  }
  if (minutes == std::numeric_limits<size_t>::max()) {
    minutes = 0;
  }
  const bool record = config_.record_minute_series;
  if (record) {
    result.cluster_utility_timeline.assign(minutes, 0.0);
    result.total_load_timeline.assign(minutes, 0.0);
  }

  double violation_rate_sum = 0.0;
  double eu_sum = 0.0;
  double utility_mean_sum = 0.0;
  for (uint32_t j = 0; j < jobs_.size(); ++j) {
    JobState& js = state_[j];
    JobRunStats& stats = result.jobs[j];
    FinalizeJobStats(js, jobs_[j].spec.name, record, stats);
    if (record) {
      for (size_t t = 0; t < minutes; ++t) {
        result.cluster_utility_timeline[t] += stats.minute_utility[t];
        result.total_load_timeline[t] += stats.minute_arrivals[t];
      }
    }
    utility_mean_sum += stats.avg_utility;
    violation_rate_sum += stats.slo_violation_rate;
    eu_sum += stats.avg_effective_utility;
    for (size_t c = 0; c < kNumLossCauses; ++c) {
      result.cluster_lost_by_cause[c] += stats.lost_by_cause[c];
    }
    result.cluster_burn_alerts_fast += stats.burn_alerts_fast;
    result.cluster_burn_alerts_slow += stats.burn_alerts_slow;
  }
  if (config_.obs_metrics) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    for (size_t c = 0; c < kNumLossCauses; ++c) {
      Histogram& hist = registry.GetHistogram(
          std::string("faro_attr_lost_utility_") + LossCauseName(c),
          "Per-job run-average lost utility attributed to this cause");
      for (const JobRunStats& stats : result.jobs) {
        hist.Record(stats.lost_by_cause[c]);
      }
    }
    registry
        .GetCounter("faro_slo_burn_alerts_fast_total",
                    "Fast-window (1h) error-budget burn-rate alert onsets")
        .Add(result.cluster_burn_alerts_fast);
    registry
        .GetCounter("faro_slo_burn_alerts_slow_total",
                    "Slow-window (6h) error-budget burn-rate alert onsets")
        .Add(result.cluster_burn_alerts_slow);
  }
  const double num_jobs = static_cast<double>(jobs_.size());
  // With the minute series on, the cluster utility is averaged exactly as it
  // always was (mean over minutes of the per-minute job sum). Without it,
  // the mathematically equal sum of per-job means stands in.
  result.cluster_avg_utility =
      record ? Mean(result.cluster_utility_timeline) : utility_mean_sum;
  result.cluster_lost_utility = num_jobs - result.cluster_avg_utility;
  result.cluster_avg_effective_utility = eu_sum;
  result.cluster_lost_effective_utility = num_jobs - eu_sum;
  result.cluster_slo_violation_rate = jobs_.empty() ? 0.0 : violation_rate_sum / num_jobs;
  result.solver = policy_.solver_telemetry();
  result.faults = injector_.stats();
  result.fault_log = injector_.log();
  result.actuation = reconciler_.telemetry();
  // The reconciler absorbed the autoscaler's in-policy retry ladder (PR 5);
  // folding its repair count into the historical solver counter keeps the
  // solver CSV column -- and every script reading it -- comparable.
  result.solver.actuation_retries += result.actuation.retries;
  if (config_.obs_metrics) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry
        .GetCounter("faro_actuate_generations_published_total",
                    "Desired-state generations accepted by the reconciler")
        .Add(result.actuation.generations_published);
    registry
        .GetCounter("faro_actuate_generations_converged_total",
                    "Generations whose fleet reached every target")
        .Add(result.actuation.generations_converged);
    registry
        .GetCounter("faro_actuate_generations_superseded_total",
                    "Generations replaced before converging")
        .Add(result.actuation.generations_superseded);
    registry
        .GetCounter("faro_actuate_fence_rejections_total",
                    "Stale publishes/commands discarded by the generation fence")
        .Add(result.actuation.fence_rejections);
    registry
        .GetCounter("faro_actuate_retries_total",
                    "Repair re-issues of missed scale-ups")
        .Add(result.actuation.retries);
    registry
        .GetCounter("faro_actuate_op_timeouts_total",
                    "Scale-up deficits outliving the operation timeout")
        .Add(result.actuation.op_timeouts);
  }
  return result;
}

}  // namespace

std::string ValidateSimConfig(const SimConfig& config) {
  if (config.cold_start_s < 0.0) {
    return "SimConfig: cold_start_s must be >= 0";
  }
  if (config.cold_start_jitter_s < 0.0) {
    return "SimConfig: cold_start_jitter_s must be >= 0";
  }
  if (config.processing_jitter < 0.0) {
    return "SimConfig: processing_jitter must be >= 0";
  }
  if (config.router_queue_limit == 0) {
    return "SimConfig: router_queue_limit must be >= 1 (a zero-length router "
           "queue drops every request)";
  }
  if (config.replica_mtbf_s < 0.0) {
    return "SimConfig: replica_mtbf_s must be >= 0 (0 disables failures)";
  }
  if (config.metrics_window_s <= 0.0) {
    return "SimConfig: metrics_window_s must be > 0";
  }
  if (config.reactive_interval_s <= 0.0) {
    return "SimConfig: reactive_interval_s must be > 0";
  }
  if (config.engine == SimEngine::kSharded) {
    if (!config.nodes.empty()) {
      return "SimConfig: the sharded engine has no node-placement model "
             "(engine=kSharded requires empty nodes; use kClassic)";
    }
    for (const FaultEvent& event : config.faults.events) {
      if (event.kind != FaultKind::kReplicaBurst) {
        return "SimConfig: the sharded engine supports only kReplicaBurst "
               "scheduled fault events (node crash/drain/recover need the "
               "classic engine's node model)";
      }
    }
  }
  for (const Node& node : config.nodes) {
    if (node.cpu_capacity <= 0.0 || node.mem_capacity <= 0.0) {
      return "SimConfig: node '" + node.name + "' needs positive cpu/mem capacity";
    }
  }
  if (config.reconciler.retry_backoff_s < 0.0) {
    return "SimConfig: reconciler.retry_backoff_s must be >= 0 (0 disables "
           "repair passes)";
  }
  if (config.reconciler.backoff_cap_s < config.reconciler.retry_backoff_s) {
    return "SimConfig: reconciler.backoff_cap_s must be >= retry_backoff_s";
  }
  if (config.reconciler.jitter_frac < 0.0) {
    return "SimConfig: reconciler.jitter_frac must be >= 0";
  }
  if (config.reconciler.op_timeout_s < 0.0) {
    return "SimConfig: reconciler.op_timeout_s must be >= 0 (0 disables the "
           "operation timeout)";
  }
  if (std::string problem = config.faults.Validate(); !problem.empty()) {
    return problem;
  }
  for (const FaultEvent& event : config.faults.events) {
    if (event.kind == FaultKind::kReplicaBurst) {
      continue;
    }
    bool known = false;
    for (const Node& node : config.nodes) {
      known = known || node.name == event.node;
    }
    if (!known) {
      return "SimConfig: fault event names unknown node '" + event.node +
             "' (node faults need a matching SimConfig::nodes entry)";
    }
  }
  return {};
}

std::unique_ptr<SimStepper> MakeSimStepper(const SimConfig& config,
                                           const std::vector<SimJobConfig>& jobs,
                                           AutoscalingPolicy& policy) {
  if (std::string problem = ValidateSimConfig(config); !problem.empty()) {
    throw std::invalid_argument(problem);
  }
  if (config.engine == SimEngine::kSharded) {
    return MakeSimStepperSharded(config, jobs, policy);
  }
  auto simulation = std::make_unique<Simulation>(config, jobs, policy);
  simulation->Init();
  return simulation;
}

RunResult RunSimulation(const SimConfig& config, const std::vector<SimJobConfig>& jobs,
                        AutoscalingPolicy& policy) {
  const std::unique_ptr<SimStepper> stepper = MakeSimStepper(config, jobs, policy);
  stepper->StepUntil(std::numeric_limits<double>::infinity());
  return stepper->Finish();
}

}  // namespace faro
