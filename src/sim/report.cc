#include "src/sim/report.h"

#include <algorithm>
#include <cstdint>
#include <fstream>

namespace faro {

std::string CsvEscape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) {
    return field;
  }
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') {
      out += '"';  // RFC 4180: embedded quotes are doubled
    }
    out += c;
  }
  out += '"';
  return out;
}

bool WriteTimelineCsv(const std::string& path, const RunResult& result) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "minute,cluster_utility,total_load";
  for (const JobRunStats& job : result.jobs) {
    const std::string& name = job.name.empty() ? "job" : job.name;
    out << ',' << CsvEscape(name + "_p99") << ',' << CsvEscape(name + "_utility") << ','
        << CsvEscape(name + "_replicas") << ',' << CsvEscape(name + "_drop_rate");
  }
  out << '\n';
  const size_t minutes = result.cluster_utility_timeline.size();
  for (size_t t = 0; t < minutes; ++t) {
    out << t << ',' << result.cluster_utility_timeline[t] << ','
        << result.total_load_timeline[t];
    for (const JobRunStats& job : result.jobs) {
      out << ',' << (t < job.minute_p99.size() ? job.minute_p99[t] : 0.0) << ','
          << (t < job.minute_utility.size() ? job.minute_utility[t] : 0.0) << ','
          << (t < job.minute_replicas.size() ? job.minute_replicas[t] : 0.0) << ','
          << (t < job.minute_drop_rate.size() ? job.minute_drop_rate[t] : 0.0);
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

bool WriteSummaryCsv(const std::string& path, const RunResult& result) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "job,arrivals,drops,violations,slo_violation_rate,avg_utility,lost_utility,"
         "avg_effective_utility,avg_replicas,injected_failures,capacity_seconds_lost,"
         "recovery_s,utility_reconverge_s,error_budget_allowed,error_budget_consumed,"
         "error_budget_remaining_frac,burn_alerts_fast,burn_alerts_slow,"
         "first_burn_alert_s";
  for (size_t c = 0; c < kNumLossCauses; ++c) {
    out << ",lost_" << LossCauseName(c);
  }
  out << '\n';
  uint64_t total_failures = 0;
  double total_capacity_lost = 0.0;
  double total_recovery = 0.0;
  double worst_reconverge = 0.0;
  double total_budget_allowed = 0.0;
  double total_budget_consumed = 0.0;
  for (const JobRunStats& job : result.jobs) {
    out << CsvEscape(job.name.empty() ? "job" : job.name) << ',' << job.arrivals << ',' << job.drops
        << ',' << job.violations << ',' << job.slo_violation_rate << ',' << job.avg_utility
        << ',' << job.lost_utility << ',' << job.avg_effective_utility << ','
        << job.avg_replicas << ',' << job.injected_failures << ','
        << job.capacity_seconds_lost << ',' << job.recovery_seconds << ','
        << job.utility_reconverge_s << ',' << job.error_budget_allowed << ','
        << job.error_budget_consumed << ',' << job.error_budget_remaining_frac << ','
        << job.burn_alerts_fast << ',' << job.burn_alerts_slow << ','
        << job.first_burn_alert_s;
    for (size_t c = 0; c < kNumLossCauses; ++c) {
      out << ',' << job.lost_by_cause[c];
    }
    out << '\n';
    total_failures += job.injected_failures;
    total_capacity_lost += job.capacity_seconds_lost;
    total_recovery += job.recovery_seconds;
    total_budget_allowed += job.error_budget_allowed;
    total_budget_consumed += job.error_budget_consumed;
    // -1 means "never reconverged" -- the worst possible outcome; propagate it.
    if (worst_reconverge >= 0.0) {
      worst_reconverge = job.utility_reconverge_s < 0.0
                             ? -1.0
                             : std::max(worst_reconverge, job.utility_reconverge_s);
    }
  }
  out << "CLUSTER,,,," << result.cluster_slo_violation_rate << ','
      << result.cluster_avg_utility << ',' << result.cluster_lost_utility << ','
      << result.cluster_avg_effective_utility << ",," << total_failures << ','
      << total_capacity_lost << ',' << total_recovery << ',' << worst_reconverge << ','
      << total_budget_allowed << ',' << total_budget_consumed << ",,"
      << result.cluster_burn_alerts_fast << ',' << result.cluster_burn_alerts_slow << ',';
  for (size_t c = 0; c < kNumLossCauses; ++c) {
    out << ',' << result.cluster_lost_by_cause[c];
  }
  out << '\n';
  return static_cast<bool>(out);
}

bool WriteSloCsv(const std::string& path, const RunResult& result) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  // 17 significant digits: every double round-trips, so downstream checks can
  // re-add the bucket columns and compare bit-for-bit against lost_utility.
  out.precision(17);
  out << "job,window,arrivals,violations,utility,lost_utility";
  for (size_t c = 0; c < kNumLossCauses; ++c) {
    out << ",lost_" << LossCauseName(c);
  }
  out << ",burn_fast,burn_slow\n";
  for (const JobRunStats& job : result.jobs) {
    const std::string name = CsvEscape(job.name.empty() ? "job" : job.name);
    const size_t windows = job.minute_utility.size();
    for (size_t w = 0; w < windows; ++w) {
      const double lost = std::max(0.0, 1.0 - job.minute_utility[w]);
      out << name << ',' << w << ','
          << (w < job.minute_arrivals.size() ? job.minute_arrivals[w] : 0.0) << ','
          << (w < job.minute_violations.size() ? job.minute_violations[w] : 0.0) << ','
          << job.minute_utility[w] << ',' << lost;
      for (size_t c = 0; c < kNumLossCauses; ++c) {
        out << ','
            << (w < job.minute_lost_by_cause[c].size() ? job.minute_lost_by_cause[c][w] : 0.0);
      }
      out << ',' << (w < job.minute_burn_fast.size() ? job.minute_burn_fast[w] : 0.0) << ','
          << (w < job.minute_burn_slow.size() ? job.minute_burn_slow[w] : 0.0) << '\n';
    }
  }
  return static_cast<bool>(out);
}

bool WriteSolverCsv(const std::string& path, const RunResult& result) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  const SolverTelemetry& s = result.solver;
  const double cycles = s.cycles > 0 ? static_cast<double>(s.cycles) : 1.0;
  out << "cycles,starts_launched,starts_cancelled,starts_deadline_skipped,"
         "starts_pruned,race_rounds,race_evals_saved,early_exits,warm_start_hits,"
         "wins_warm_current,wins_prev_solution,wins_heuristic,wins_jitter,"
         "objective_evaluations,group_solves,solve_ms_mean,solve_ms_max,"
         "deadline_misses,fallback_warm,fallback_heuristic,forecast_fallbacks,"
         "actuation_retries,capacity_resolves\n";
  out << s.cycles << ',' << s.starts_launched << ',' << s.starts_cancelled << ','
      << s.starts_deadline_skipped << ',' << s.starts_pruned << ',' << s.race_rounds
      << ',' << s.race_evals_saved << ','
      << s.early_exits << ',' << s.warm_start_hits << ',' << s.wins_warm_current << ','
      << s.wins_prev_solution << ',' << s.wins_heuristic << ',' << s.wins_jitter << ','
      << s.objective_evaluations << ',' << s.group_solves << ','
      << 1000.0 * s.solve_seconds_total / cycles << ',' << 1000.0 * s.solve_seconds_max
      << ',' << s.deadline_misses << ',' << s.fallback_warm << ',' << s.fallback_heuristic
      << ',' << s.forecast_fallbacks << ',' << s.actuation_retries << ','
      << s.capacity_resolves << '\n';
  return static_cast<bool>(out);
}

bool WriteFaultLogCsv(const std::string& path, const RunResult& result) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "time_s,what,target,count\n";
  for (const AppliedFault& fault : result.fault_log) {
    out << fault.time_s << ',' << CsvEscape(fault.what) << ',' << CsvEscape(fault.target)
        << ',' << fault.count << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace faro
