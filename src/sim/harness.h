// Experiment harness: assembles the paper's evaluation setup (§6) end to end
// so benches and examples share one code path.
//
//  - the standard job mix: 9 Azure-like + 1 Twitter-like traces rescaled to
//    1-1600 req/min, 11 days, 4-minute window averaging, days 1-10 train /
//    day 11 eval;
//  - ResNet34-shaped jobs (p = 180 ms, SLO = 720 ms = 4p at p99), optionally
//    mixed with ResNet18-shaped jobs (p = 100 ms, SLO = 400 ms) for the
//    Fig. 14 experiment;
//  - per-job probabilistic N-HiTS predictor training;
//  - a policy factory covering every system in the evaluation;
//  - multi-trial runs with mean/SD aggregation of the paper's metrics.

#ifndef SRC_SIM_HARNESS_H_
#define SRC_SIM_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/autoscaler.h"
#include "src/forecast/adapter.h"
#include "src/obs/obs.h"
#include "src/optim/bai.h"
#include "src/sim/simulator.h"

namespace faro {

// Trial racing (BAI; see src/optim/bai.h): RunAllPolicies streams per-trial
// lost utility into per-policy arm statistics and stops drawing trials for a
// policy once the incumbent (lowest-mean arm) is statistically separated from
// it at the configured confidence. Rounds are barriers -- every arm still
// racing draws trial k before any arm draws trial k+1 -- and the stats merge
// is serial in arm order, so raced results are bit-identical at every thread
// count, and a raced arm's aggregate equals the full run's aggregate over its
// first n trials (trial seeds depend only on the trial index). Full-run mode
// stays the default for the committed tables; benches opt in with --race or
// FARO_RACE=1.
struct TrialRaceConfig {
  bool enabled = false;
  // Trials every arm draws before the stopping rule may stop it (the radius
  // is infinite below two observations anyway).
  size_t min_trials = 2;
  // Trial cap per arm; 0 = ExperimentSetup::trials.
  size_t max_trials = 0;
  // Stopping-rule confidence.
  double delta = 0.05;
};

// Process-wide default, read once from the FARO_RACE environment variable
// ("1" enables; BenchObs translates --race into it).
const TrialRaceConfig& DefaultTrialRace();

// Outcome of one raced sweep (see RunAllPolicies).
struct RaceReport {
  bool raced = false;
  RacingTelemetry telemetry;  // evaluations are trials here
  size_t winner = 0;          // index into the returned aggregates
  std::string winner_policy;
};

struct ExperimentSetup {
  size_t num_jobs = 10;
  double capacity = 32.0;  // total replicas (1 vCPU / 1 GB each)
  size_t trials = 3;
  uint64_t seed = 42;
  // Fig. 14: even-indexed jobs ResNet34, odd-indexed ResNet18.
  bool mixed_models = false;
  // "Cluster mode" noise (Table 7): real deployments jitter service times and
  // cold starts; the clean simulator sets both to zero.
  double processing_jitter = 0.05;
  double cold_start_jitter_s = 10.0;
  // Trace compression: 4-minute windows averaged into one sim-minute (§6).
  size_t window_average = 4;
  size_t days = 11;
  // The workload is calibrated so the peak total replica demand over the
  // evaluation day is about this many replicas -- the paper's "right-sized"
  // cluster (36 for the 10-job mix; clusters below are oversubscribed, above
  // undersubscribed). Scales linearly with the job count by default.
  double right_size_replicas = 36.0;
  // Parallelism for RunTrials / RunAllPolicies: 0 = the shared pool's size
  // (FARO_THREADS env var, else hardware concurrency); 1 forces the serial
  // in-order path. Results are bit-identical at every setting -- each trial
  // owns its RNG stream (seed + 1000 * (trial + 1)) and aggregation always
  // runs serially in trial order.
  size_t threads = 0;
  // Observability sinks (src/obs/): defaults to the process-wide config that
  // bench --metrics-out / --trace-out flags install -- the null sink unless
  // asked for. Tracing records only trial `obs.trace_trial` of each policy
  // (deterministic on its own; see obs.h); metrics cover every trial.
  ObsConfig obs = DefaultObsConfig();
  // Optional node-level placement model and chaos plan (src/faults/), copied
  // verbatim into SimConfig. Empty `nodes` keeps the flat capacity-only
  // model; an inactive plan leaves runs bit-identical to a chaos-free build.
  std::vector<Node> nodes;
  PlacementStrategy placement_strategy = PlacementStrategy::kSpread;
  FaultPlan faults;
  // Event-engine selection, copied verbatim into SimConfig: classic vs
  // sharded engine (sharded requires empty `nodes`), shard worker count,
  // future-event-set implementation, and whether per-minute output series are
  // recorded (hyperscale runs turn them off to keep memory flat).
  SimEngine engine = SimEngine::kClassic;
  size_t shard_threads = 0;
  SchedulerKind scheduler = SchedulerKind::kCalendar;
  bool record_minute_series = true;
  // Trial racing, defaulting from the process-wide --race / FARO_RACE switch
  // so existing benches inherit it without code changes.
  TrialRaceConfig race = DefaultTrialRace();
  // Actuation path, copied verbatim into SimConfig: the reconciling actuator
  // (default) or the legacy fire-and-forget in-step apply -- the A/B arm
  // bench_fig17_chaos uses to quantify what reconciliation buys under chaos.
  ActuationMode actuation = ActuationMode::kReconciler;
};

// Job specs plus train/eval traces, all in simulator units (traces are req
// per sim-minute; training series are req/s to match runtime histories).
struct PreparedWorkload {
  std::vector<SimJobConfig> jobs;        // spec + eval trace
  std::vector<Series> train_rates_per_s; // per-job predictor training series
};

PreparedWorkload PrepareWorkload(const ExperimentSetup& setup);

// ResNet34 / ResNet18 job specs as deployed in §6.
JobSpec ResNet34Spec(const std::string& name);
JobSpec ResNet18Spec(const std::string& name);

// Trains one probabilistic N-HiTS model per job (~seconds per job).
std::shared_ptr<NHitsWorkloadPredictor> TrainPredictor(const PreparedWorkload& workload,
                                                       uint64_t seed,
                                                       size_t epochs = 10);

// Policy factory. Known names: "FairShare", "Oneshot", "AIAD",
// "MArk/Cocktail/Barista", "Cilantro", "Faro-Sum", "Faro-Fair",
// "Faro-FairSum", "Faro-PenaltySum", "Faro-PenaltyFairSum". Faro policies
// take the shared trained predictor (may be nullptr for the damped-average
// fallback) and optional config overrides.
std::unique_ptr<AutoscalingPolicy> MakePolicy(
    const std::string& name, std::shared_ptr<NHitsWorkloadPredictor> predictor,
    const FaroConfig* faro_overrides = nullptr);

// Every policy name in the order Table 7 reports them.
const std::vector<std::string>& AllPolicyNames();

// Starts a trace session (one trace "process" named `label`) for a single
// run when `setup.obs` has tracing enabled; returns the null session
// otherwise. RunTrials does this per traced trial internally; direct
// RunPolicy callers opt in with this helper and pass the session both to the
// policy (FaroConfig::trace) and to RunPolicy.
TraceSession StartRunTraceSession(const ExperimentSetup& setup, const std::string& label);

// The exact SimConfig RunPolicy assembles from a setup. Exposed so live
// drivers (the faro_serve replay daemon) can build a bit-identical run from
// the same setup -- adding only a minute observer, which never perturbs the
// simulation -- and step it under a pacing clock.
SimConfig BuildSimConfig(const ExperimentSetup& setup, uint64_t trial_seed,
                         const TraceSession& trace = {});

// Runs one policy once over the prepared workload. `trace` (optional) binds
// the simulator's request-lifecycle spans to a session from
// StartRunTraceSession.
RunResult RunPolicy(const ExperimentSetup& setup, const PreparedWorkload& workload,
                    AutoscalingPolicy& policy, uint64_t trial_seed,
                    const TraceSession& trace = {});

// Paper metrics aggregated over `setup.trials` independent runs.
struct TrialAggregate {
  std::string policy;
  size_t trials_run = 0;  // trials behind the means (racing may stop early)
  double lost_utility_mean = 0.0;
  double lost_utility_sd = 0.0;
  double violation_rate_mean = 0.0;
  double violation_rate_sd = 0.0;
  double lost_effective_utility_mean = 0.0;
  double lost_effective_utility_sd = 0.0;
  // Per-job lost utility (averaged over trials), for the fairness box plots.
  std::vector<double> per_job_lost_utility;
  // Stage-2 solver telemetry, averaged over trials (zeros for baselines).
  // Wall-clock means are measurement, not simulation state: they vary run to
  // run and are excluded from the bit-identical determinism contract.
  double solve_ms_per_cycle_mean = 0.0;
  double solver_evals_per_cycle_mean = 0.0;
  double solver_starts_per_cycle_mean = 0.0;
  double early_exit_rate = 0.0;   // fraction of solves won by early exit
  double warm_start_rate = 0.0;   // fraction of solves reusing the cached solution
  // BAI racing inside the multi-start driver (zeros when racing is off).
  double solver_race_rounds_per_cycle_mean = 0.0;
  double solver_race_evals_saved_per_cycle_mean = 0.0;
  double solver_starts_pruned_per_cycle_mean = 0.0;
  // Cluster-level causal decomposition of lost utility (enum order from
  // src/obs/attribution.h), averaged over trials; SLO burn-alert onset totals
  // likewise.
  std::array<double, kNumLossCauses> lost_by_cause_mean{};
  double burn_alerts_fast_mean = 0.0;
  double burn_alerts_slow_mean = 0.0;
};

TrialAggregate RunTrials(const ExperimentSetup& setup, const PreparedWorkload& workload,
                         const std::string& policy_name,
                         std::shared_ptr<NHitsWorkloadPredictor> predictor,
                         const FaroConfig* faro_overrides = nullptr);

// Fans the full policy sweep out over policies x trials on the shared thread
// pool (the Table-7 / Fig. 10-13 shape) and returns one aggregate per policy,
// in `policy_names` order. Equivalent to -- and bit-identical with -- calling
// RunTrials once per name serially; an empty name list means AllPolicyNames().
// With `setup.race.enabled` (and at least two policies) the sweep is raced
// via RacePolicies instead; `race_report` (optional) receives the outcome
// either way (`raced = false` for a full run).
std::vector<TrialAggregate> RunAllPolicies(const ExperimentSetup& setup,
                                           const PreparedWorkload& workload,
                                           std::shared_ptr<NHitsWorkloadPredictor> predictor,
                                           const std::vector<std::string>& policy_names = {},
                                           const FaroConfig* faro_overrides = nullptr,
                                           RaceReport* race_report = nullptr);

// Trial racing entry point: rounds of one trial per still-active policy arm,
// stopping arms the incumbent has separated at `setup.race.delta` (see
// TrialRaceConfig above). Ignores `setup.race.enabled` -- callers that want
// the full sweep call RunAllPolicies with racing off.
std::vector<TrialAggregate> RacePolicies(const ExperimentSetup& setup,
                                         const PreparedWorkload& workload,
                                         std::shared_ptr<NHitsWorkloadPredictor> predictor,
                                         const std::vector<std::string>& policy_names = {},
                                         const FaroConfig* faro_overrides = nullptr,
                                         RaceReport* race_report = nullptr);

}  // namespace faro

#endif  // SRC_SIM_HARNESS_H_
