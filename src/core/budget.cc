#include "src/core/budget.h"

#include <cmath>
#include <limits>

namespace faro {

uint32_t InstancesForBudget(double dollars_per_hour, const InstanceType& instance) {
  if (instance.dollars_per_hour <= 0.0 || dollars_per_hour <= 0.0) {
    return 0;
  }
  return static_cast<uint32_t>(std::floor(dollars_per_hour / instance.dollars_per_hour));
}

ClusterResources CapacityForBudget(double dollars_per_hour, const InstanceType& instance) {
  const double count = InstancesForBudget(dollars_per_hour, instance);
  return ClusterResources{count * instance.vcpus, count * instance.mem_gb};
}

const InstanceType* CheapestFeasible(std::span<const InstanceType> catalog,
                                     double dollars_per_hour, double required_cpu,
                                     double required_mem) {
  const InstanceType* best = nullptr;
  double best_rate = std::numeric_limits<double>::infinity();
  for (const InstanceType& instance : catalog) {
    if (instance.vcpus <= 0.0) {
      continue;
    }
    const ClusterResources capacity = CapacityForBudget(dollars_per_hour, instance);
    if (capacity.cpu + 1e-9 < required_cpu || capacity.mem + 1e-9 < required_mem) {
      continue;
    }
    const double rate = instance.dollars_per_hour / instance.vcpus;
    if (rate < best_rate) {
      best_rate = rate;
      best = &instance;
    }
  }
  return best;
}

}  // namespace faro
