#include "src/core/predictor.h"

#include <algorithm>
#include <cmath>

namespace faro {

std::vector<double> LastValuePredictor::PredictQuantile(size_t job,
                                                        std::span<const double> history,
                                                        size_t horizon, double quantile) {
  const double last = history.empty() ? 0.0 : history.back();
  return std::vector<double>(horizon, last);
}

std::vector<double> DampedAveragePredictor::PredictQuantile(size_t job,
                                                             std::span<const double> history,
                                                             size_t horizon, double quantile) {
  double level = 0.0;
  bool first = true;
  for (const double v : history) {
    if (first) {
      level = v;
      first = false;
    } else {
      level = damping_ * level + (1.0 - damping_) * v;
    }
  }
  return std::vector<double>(horizon, level);
}

std::vector<double> LinearTrendPredictor::PredictQuantile(size_t job,
                                                          std::span<const double> history,
                                                          size_t horizon, double quantile) {
  const size_t n = window_ > 0 ? std::min(window_, history.size()) : history.size();
  if (n < 3) {
    const double last = history.empty() ? 0.0 : history.back();
    return std::vector<double>(horizon, last);
  }
  const std::span<const double> recent = history.subspan(history.size() - n, n);
  // Least-squares line y = a + b t over t = 0..n-1.
  double st = 0.0;
  double sy = 0.0;
  double stt = 0.0;
  double sty = 0.0;
  for (size_t t = 0; t < n; ++t) {
    const double td = static_cast<double>(t);
    st += td;
    sy += recent[t];
    stt += td * td;
    sty += td * recent[t];
  }
  const double count = static_cast<double>(n);
  const double denom = count * stt - st * st;
  const double b = denom != 0.0 ? (count * sty - st * sy) / denom : 0.0;
  const double a = (sy - b * st) / count;
  // Residual spread for the quantile envelope.
  double ss = 0.0;
  for (size_t t = 0; t < n; ++t) {
    const double fitted = a + b * static_cast<double>(t);
    ss += (recent[t] - fitted) * (recent[t] - fitted);
  }
  const double sigma = n > 2 ? std::sqrt(ss / static_cast<double>(n - 2)) : 0.0;
  // Crude z for the quantile (exact inverse CDF lives in the forecast lib;
  // a two-term approximation is ample for an envelope).
  const double q = std::clamp(quantile, 0.01, 0.99);
  const double z = q >= 0.5 ? std::sqrt(-2.0 * std::log(2.0 * (1.0 - q))) - 0.34
                            : -(std::sqrt(-2.0 * std::log(2.0 * q)) - 0.34);
  std::vector<double> out(horizon);
  for (size_t h = 0; h < horizon; ++h) {
    const double t = static_cast<double>(n - 1 + (h + 1));
    out[h] = std::max(0.0, a + b * t + z * sigma);
  }
  return out;
}

}  // namespace faro
