#include "src/core/penalty.h"

#include <algorithm>
#include <iterator>

namespace faro {

double StepPenalty(double availability) {
  if (availability >= 0.99) {
    return 0.0;
  }
  if (availability >= 0.95) {
    return 0.25;
  }
  if (availability >= 0.90) {
    return 0.50;
  }
  return 1.0;
}

double RelaxedPenalty(double availability) {
  availability = std::clamp(availability, 0.0, 1.0);
  struct Knot {
    double availability;
    double penalty;
  };
  // Descending availability; the final segment continues to (0, 1) linearly.
  static constexpr Knot kKnots[] = {
      {1.00, 0.00}, {0.99, 0.00}, {0.95, 0.25}, {0.90, 0.50}, {0.00, 1.00}};
  for (size_t i = 0; i + 1 < std::size(kKnots); ++i) {
    const Knot& hi = kKnots[i];
    const Knot& lo = kKnots[i + 1];
    if (availability <= hi.availability && availability >= lo.availability) {
      const double span = hi.availability - lo.availability;
      if (span <= 0.0) {
        return lo.penalty;
      }
      const double frac = (availability - lo.availability) / span;
      return lo.penalty + frac * (hi.penalty - lo.penalty);
    }
  }
  return 1.0;
}

double StepPenaltyMultiplier(double drop_rate) {
  return 1.0 - StepPenalty(1.0 - std::clamp(drop_rate, 0.0, 1.0));
}

double RelaxedPenaltyMultiplier(double drop_rate) {
  return 1.0 - RelaxedPenalty(1.0 - std::clamp(drop_rate, 0.0, 1.0));
}

}  // namespace faro
