#include "src/core/autoscaler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "src/common/parallel.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/optim/cobyla.h"
#include "src/optim/multistart.h"

namespace faro {
namespace {

// Shrinking treats a job as "at utility 1" when its predicted utility is
// within this tolerance of the maximum.
constexpr double kFullUtilityTolerance = 1e-3;

// Registry mirrors of the per-cycle solver telemetry. Updated once per
// decision cycle (never inside the solve hot path), so they are recorded
// unconditionally. The wall-clock solve histogram is measurement only and
// excluded from the determinism contract, like SolverTelemetry's timing.
Counter& CyclesCounter() {
  static Counter& counter = MetricsRegistry::Global().GetCounter(
      "faro_autoscaler_cycles_total", "Long-term decision cycles executed");
  return counter;
}

Counter& EvaluationsCounter() {
  static Counter& counter = MetricsRegistry::Global().GetCounter(
      "faro_autoscaler_objective_evaluations_total",
      "Objective evaluations spent by Stage-2 solves");
  return counter;
}

Counter& StartsCounter() {
  static Counter& counter = MetricsRegistry::Global().GetCounter(
      "faro_autoscaler_solver_starts_total",
      "Solver tasks launched by the multi-start driver (and legacy path)");
  return counter;
}

Histogram& SolveSecondsHistogram() {
  static Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "faro_autoscaler_solve_seconds", "Wall-clock seconds per Stage-2 solve");
  return histogram;
}

double MinCpuPerReplica(const std::vector<JobSpec>& job_specs) {
  double min_cpu = 1.0;
  for (const JobSpec& spec : job_specs) {
    min_cpu = std::min(min_cpu, std::max(spec.cpu_per_replica, 1e-6));
  }
  return min_cpu;
}

// Warm-start cache key: the solve's shape, not its loads. Two solves share a
// signature iff they optimise the same jobs (names, count) under the same
// objective, so a cached solution is always dimension- and meaning-compatible.
uint64_t JobSetSignature(const std::vector<JobSpec>& job_specs, ObjectiveKind kind) {
  uint64_t signature = HashCombine(0x5a17u, job_specs.size());
  signature = HashCombine(signature, static_cast<uint64_t>(kind));
  for (const JobSpec& spec : job_specs) {
    signature = HashCombine(signature, std::hash<std::string>{}(spec.name));
  }
  return signature;
}

// Capacity-proportional heuristic start: replicas split in proportion to each
// job's offered load (peak predicted rate x processing time), scaled to spend
// the full vCPU budget; zero drops.
std::vector<double> HeuristicStart(const ClusterObjective& objective,
                                   const ClusterResources& resources) {
  const size_t j = objective.num_jobs();
  std::vector<double> x = objective.InitialPoint();
  std::vector<double> weight(j, 0.0);
  double weight_sum = 0.0;
  for (size_t i = 0; i < j; ++i) {
    const JobContext& job = objective.jobs()[i];
    double peak = 0.0;
    for (const double v : job.predicted_load) {
      peak = std::max(peak, v);
    }
    weight[i] = peak * job.spec.processing_time + 1e-6;
    weight_sum += weight[i];
  }
  for (size_t i = 0; i < j; ++i) {
    const double cpu = std::max(objective.jobs()[i].spec.cpu_per_replica, 1e-6);
    x[i] = std::max(1.0, resources.cpu * weight[i] / weight_sum / cpu);
  }
  return x;
}

}  // namespace

std::string ValidateFaroConfig(const FaroConfig& config) {
  if (config.decision_interval_s <= 0.0) {
    return "FaroConfig: decision_interval_s must be > 0";
  }
  if (config.overload_trigger_s < 0.0) {
    return "FaroConfig: overload_trigger_s must be >= 0";
  }
  if (config.step_seconds <= 0.0) {
    return "FaroConfig: step_seconds must be > 0";
  }
  if (config.cold_start_s < 0.0) {
    return "FaroConfig: cold_start_s must be >= 0";
  }
  if (config.prediction_window_steps == 0) {
    return "FaroConfig: prediction_window_steps must be >= 1";
  }
  if (config.prediction_quantile <= 0.0 || config.prediction_quantile >= 1.0) {
    return "FaroConfig: prediction_quantile must be in (0, 1)";
  }
  if (config.solver_max_evaluations <= 0) {
    return "FaroConfig: solver_max_evaluations must be > 0";
  }
  if (config.switch_margin < 0.0) {
    return "FaroConfig: switch_margin must be >= 0";
  }
  if (config.multistart_jitter < 0.0) {
    return "FaroConfig: multistart_jitter must be >= 0";
  }
  if (config.solve_deadline_s < 0.0) {
    return "FaroConfig: solve_deadline_s must be >= 0 (0 disables)";
  }
  if (config.racing_probe_evals < 0) {
    return "FaroConfig: racing_probe_evals must be >= 0 (0 = auto)";
  }
  if (config.racing_confirm_evals < 0) {
    return "FaroConfig: racing_confirm_evals must be >= 0 (0 disables)";
  }
  if (config.racing_delta <= 0.0 || config.racing_delta >= 1.0) {
    return "FaroConfig: racing_delta must be in (0, 1)";
  }
  if (config.actuation_retry_backoff_s < 0.0) {
    return "FaroConfig: actuation_retry_backoff_s must be >= 0 (0 disables)";
  }
  return {};
}

FaroAutoscaler::FaroAutoscaler(FaroConfig config, std::shared_ptr<WorkloadPredictor> predictor)
    : config_(config), predictor_(std::move(predictor)) {
  if (std::string problem = ValidateFaroConfig(config_); !problem.empty()) {
    throw std::invalid_argument(problem);
  }
  if (predictor_ == nullptr) {
    predictor_ = std::make_shared<DampedAveragePredictor>();
  }
}

std::string FaroAutoscaler::name() const { return ObjectiveKindName(config_.objective); }

ClusterObjectiveConfig FaroAutoscaler::MakeObjectiveConfig() const {
  ClusterObjectiveConfig config;
  config.kind = config_.objective;
  config.relaxed = config_.relaxed;
  config.latency_model = config_.latency_model;
  config.utility_alpha = config_.utility_alpha;
  config.rho_max = config_.rho_max;
  config.gamma = config_.gamma;
  return config;
}

std::vector<std::vector<double>> FaroAutoscaler::PredictLoads(
    const std::vector<JobSpec>& job_specs, const std::vector<JobMetrics>& metrics) {
  std::vector<std::vector<double>> loads(metrics.size());
  // Stage 1 plans for replicas that become useful only after cold start: the
  // first cold_start seconds of the window are outside this decision's
  // control, so they are skipped.
  const size_t skip = std::min(
      config_.prediction_window_steps > 0 ? config_.prediction_window_steps - 1 : size_t{0},
      static_cast<size_t>(std::ceil(config_.cold_start_s / config_.step_seconds)));
  for (size_t i = 0; i < metrics.size(); ++i) {
    if (!config_.enable_prediction) {
      loads[i] = {std::max(0.0, metrics[i].arrival_rate)};
      continue;
    }
    const double quantile = config_.probabilistic ? config_.prediction_quantile : 0.5;
    std::vector<double> predicted = predictor_->PredictQuantile(
        i, metrics[i].arrival_history, config_.prediction_window_steps, quantile);
    if (predicted.empty()) {
      loads[i] = {std::max(0.0, metrics[i].arrival_rate)};
      continue;
    }
    // Forecast sanity guard (degradation ladder): a forecast with non-finite
    // values, all-negative values, or a jump beyond forecast_max_jump x the
    // largest recently observed rate is replaced by the last observed value.
    // NaN would otherwise be silently zeroed by the max(0, v) clamp below --
    // the cluster would scale every job to its floor on a poisoned forecast.
    if (config_.forecast_max_jump > 1.0) {
      double observed_max = std::max(1.0, metrics[i].arrival_rate);
      for (const double v : metrics[i].arrival_history) {
        observed_max = std::max(observed_max, v);
      }
      bool insane = true;  // all-negative counts as insane
      for (const double v : predicted) {
        if (!std::isfinite(v) || v > config_.forecast_max_jump * observed_max) {
          insane = true;
          break;
        }
        if (v >= 0.0) {
          insane = false;
        }
      }
      if (insane) {
        ++telemetry_.forecast_fallbacks;
        predicted.assign(config_.prediction_window_steps,
                         std::max(0.0, metrics[i].arrival_rate));
      }
    }
    std::vector<double> window;
    for (size_t k = skip; k < predicted.size(); ++k) {
      window.push_back(std::max(0.0, predicted[k]));
    }
    if (window.empty()) {
      window.push_back(std::max(0.0, predicted.back()));
    }
    loads[i] = std::move(window);
  }
  return loads;
}

std::vector<uint32_t> FaroAutoscaler::Integerize(const ClusterObjective& objective,
                                                 std::span<const double> solution,
                                                 const ClusterResources& resources) const {
  const size_t j = objective.num_jobs();
  const bool drops = UsesDropRates(objective.config().kind);
  std::vector<uint32_t> replicas(j);
  for (size_t i = 0; i < j; ++i) {
    replicas[i] = static_cast<uint32_t>(std::max(1.0, std::round(solution[i])));
  }
  auto drop_of = [&](size_t i) {
    return drops ? std::clamp(solution[j + i], 0.0, 1.0) : 0.0;
  };
  auto cpu_total = [&]() {
    double total = 0.0;
    for (size_t i = 0; i < j; ++i) {
      total += objective.jobs()[i].spec.cpu_per_replica * replicas[i];
    }
    return total;
  };
  auto mem_total = [&]() {
    double total = 0.0;
    for (size_t i = 0; i < j; ++i) {
      total += objective.jobs()[i].spec.mem_per_replica * replicas[i];
    }
    return total;
  };
  // Greedy repair: while over capacity, give back the replica whose removal
  // costs the least (priority-weighted) predicted utility.
  while (cpu_total() > resources.cpu + 1e-9 || mem_total() > resources.mem + 1e-9) {
    size_t victim = j;  // sentinel: none found
    double least_loss = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < j; ++i) {
      if (replicas[i] <= 1) {
        continue;
      }
      const double pi = objective.jobs()[i].spec.priority;
      const double before = objective.JobUtility(i, replicas[i], drop_of(i));
      const double after = objective.JobUtility(i, replicas[i] - 1, drop_of(i));
      const double loss = pi * (before - after);
      if (loss < least_loss) {
        least_loss = loss;
        victim = i;
      }
    }
    if (victim == j) {
      break;  // every job is already at its 1-replica minimum
    }
    --replicas[victim];
  }
  return replicas;
}

void FaroAutoscaler::ExchangePolish(const ClusterObjective& objective,
                                    std::vector<uint32_t>& replicas,
                                    std::span<const double> drop_rates,
                                    const ClusterResources& resources) const {
  const size_t j = objective.num_jobs();
  if (j == 0) {
    return;
  }
  const bool drops = UsesDropRates(objective.config().kind);
  const ClusterObjectiveConfig& config = objective.config();

  // A candidate grow/move touches one or two jobs, so the cluster objective
  // is re-combined from a patched per-job utility vector instead of pushing
  // every job back through the queueing model: the per-job terms and the
  // summation order match Evaluate exactly, so the value is bit-identical to
  // a full evaluation at two utility lookups plus O(jobs) flops.
  auto drop_of = [&](size_t i) {
    return drops && i < drop_rates.size() ? std::clamp(drop_rates[i], 0.0, 1.0) : 0.0;
  };
  auto util = [&](size_t i, uint32_t r) {
    const double x = static_cast<double>(r);
    return drops ? objective.JobEffectiveUtility(i, x, drop_of(i))
                 : objective.JobUtility(i, x, drop_of(i));
  };
  std::vector<double> u(j);
  for (size_t i = 0; i < j; ++i) {
    u[i] = util(i, replicas[i]);
  }
  // Cluster objective from the utility vector with up to two entries patched
  // (pass a == j, b == j for no patch). Mirrors Evaluate's combination rule.
  auto combined = [&](size_t a, double ua, size_t b, double ub) {
    double weighted_sum = 0.0;
    double min_u = std::numeric_limits<double>::infinity();
    double max_u = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < j; ++i) {
      const double ui = i == a ? ua : (i == b ? ub : u[i]);
      weighted_sum += objective.jobs()[i].spec.priority * ui;
      min_u = std::min(min_u, ui);
      max_u = std::max(max_u, ui);
    }
    const double unfairness = max_u - min_u;
    switch (config.kind) {
      case ObjectiveKind::kSum:
      case ObjectiveKind::kPenaltySum:
        return weighted_sum;
      case ObjectiveKind::kFair:
        return -unfairness;
      case ObjectiveKind::kFairSum:
      case ObjectiveKind::kPenaltyFairSum:
        return weighted_sum - config.gamma * unfairness;
    }
    return weighted_sum;
  };
  auto cpu_total = [&]() {
    double total = 0.0;
    for (size_t i = 0; i < j; ++i) {
      total += objective.jobs()[i].spec.cpu_per_replica * replicas[i];
    }
    return total;
  };
  auto mem_total = [&]() {
    double total = 0.0;
    for (size_t i = 0; i < j; ++i) {
      total += objective.jobs()[i].spec.mem_per_replica * replicas[i];
    }
    return total;
  };

  double value = combined(j, 0.0, j, 0.0);
  for (int round = 0; round < 200; ++round) {
    bool improved = false;
    // Grow into free capacity first.
    for (size_t i = 0; i < j; ++i) {
      const JobSpec& spec = objective.jobs()[i].spec;
      if (cpu_total() + spec.cpu_per_replica > resources.cpu + 1e-9 ||
          mem_total() + spec.mem_per_replica > resources.mem + 1e-9) {
        continue;
      }
      const double grown_u = util(i, replicas[i] + 1);
      const double grown = combined(i, grown_u, j, 0.0);
      if (grown > value + 1e-9) {
        ++replicas[i];
        u[i] = grown_u;
        value = grown;
        improved = true;
      }
    }
    // Replica moves between jobs. Multi-replica moves matter: the utility of
    // a job is S-shaped in its replica count, so in an oversubscribed cluster
    // the best step can be taking several replicas from a job that cannot be
    // saved to make another job whole -- a valley single-replica moves never
    // cross.
    size_t best_from = j;
    size_t best_to = j;
    uint32_t best_count = 0;
    double best_value = value;
    const double cpu_now = cpu_total();
    const double mem_now = mem_total();
    for (size_t from = 0; from < j; ++from) {
      const JobSpec& from_spec = objective.jobs()[from].spec;
      for (const uint32_t count : {1u, 2u, 4u, 8u}) {
        if (replicas[from] <= count) {
          continue;
        }
        const double from_u = util(from, replicas[from] - count);
        for (size_t to = 0; to < j; ++to) {
          if (to == from) {
            continue;
          }
          const JobSpec& to_spec = objective.jobs()[to].spec;
          const double moved_cpu =
              cpu_now + count * (to_spec.cpu_per_replica - from_spec.cpu_per_replica);
          const double moved_mem =
              mem_now + count * (to_spec.mem_per_replica - from_spec.mem_per_replica);
          if (moved_cpu <= resources.cpu + 1e-9 && moved_mem <= resources.mem + 1e-9) {
            const double moved =
                combined(from, from_u, to, util(to, replicas[to] + count));
            if (moved > best_value + 1e-9) {
              best_value = moved;
              best_from = from;
              best_to = to;
              best_count = count;
            }
          }
        }
      }
    }
    if (best_from != j) {
      replicas[best_from] -= best_count;
      replicas[best_to] += best_count;
      u[best_from] = util(best_from, replicas[best_from]);
      u[best_to] = util(best_to, replicas[best_to]);
      value = best_value;
      improved = true;
    }
    if (!improved) {
      break;
    }
  }
}

void FaroAutoscaler::Shrink(const ClusterObjective& objective, std::vector<uint32_t>& replicas,
                            std::span<const double> drop_rates) const {
  const size_t j = objective.num_jobs();
  const bool drops = UsesDropRates(objective.config().kind);
  std::vector<double> v(objective.dimension(), 0.0);
  auto sync = [&]() {
    for (size_t i = 0; i < j; ++i) {
      v[i] = static_cast<double>(replicas[i]);
      if (drops) {
        v[j + i] = i < drop_rates.size() ? drop_rates[i] : 0.0;
      }
    }
  };
  sync();
  double cluster_value = objective.Evaluate(v);
  for (size_t i = 0; i < j; ++i) {
    const double drop = drops && i < drop_rates.size() ? drop_rates[i] : 0.0;
    // Only jobs whose predicted utility is already 1 are candidates (§4.3).
    while (replicas[i] > 1 &&
           objective.JobUtility(i, replicas[i], drop) >= 1.0 - kFullUtilityTolerance) {
      --replicas[i];
      sync();
      const double shrunk_value = objective.Evaluate(v);
      if (shrunk_value < cluster_value - 1e-9) {
        // The cluster objective moved: undo and stop shrinking this job.
        ++replicas[i];
        sync();
        break;
      }
      cluster_value = shrunk_value;
    }
  }
}

ScalingAction FaroAutoscaler::SolveFlat(const std::vector<JobSpec>& job_specs,
                                        const std::vector<JobMetrics>& metrics,
                                        const std::vector<std::vector<double>>& loads,
                                        const ClusterResources& resources,
                                        uint64_t solve_seed) {
  std::vector<JobContext> contexts(job_specs.size());
  for (size_t i = 0; i < job_specs.size(); ++i) {
    contexts[i].spec = job_specs[i];
    // Prefer the measured processing time when the router has observed one;
    // the spec's value seeds the very first decisions.
    if (metrics[i].processing_time > 0.0) {
      contexts[i].spec.processing_time = metrics[i].processing_time;
    }
    contexts[i].predicted_load = loads[i];
  }
  ClusterObjectiveConfig obj_config = MakeObjectiveConfig();
  obj_config.max_replicas_per_job =
      std::max(1.0, resources.cpu / MinCpuPerReplica(job_specs));
  ClusterObjective objective(std::move(contexts), resources, obj_config);

  // Warm start from the current allocation; COBYLA explores around it with
  // an initial variable change of 2 (§5), and the integer exchange polish
  // cleans up whatever the solver leaves on the table.
  std::vector<double> x_current = objective.InitialPoint();
  for (size_t i = 0; i < job_specs.size(); ++i) {
    x_current[i] =
        std::max<double>(1.0, metrics[i].ready_replicas + metrics[i].starting_replicas);
    x_current[i] = std::min(x_current[i], obj_config.max_replicas_per_job);
  }
  CobylaConfig solver;
  solver.rho_begin = config_.solver_rho_begin;
  solver.rho_end = config_.solver_rho_end;
  solver.max_evaluations = config_.solver_max_evaluations;

  const uint64_t signature = JobSetSignature(job_specs, config_.objective);
  const bool warm_hit = config_.warm_start_cache && warm_.valid &&
                        warm_.signature == signature &&
                        warm_.x.size() == objective.dimension();

  // Fairness terms gamma * (max U - min U) put a ridge along the symmetric
  // direction: from an allocation with equal utilities, improving any single
  // job is penalised more than the sum gains, which stalls local solvers.
  // Pre-solving the ridge-free Sum variant of the same contexts gives the
  // fairness objective a warm start on the right utility frontier. A valid
  // cross-cycle warm start already sits on that frontier, so the pre-solve
  // only runs on cold starts and job-set changes.
  const bool has_fairness = config_.objective == ObjectiveKind::kFair ||
                            config_.objective == ObjectiveKind::kFairSum ||
                            config_.objective == ObjectiveKind::kPenaltyFairSum;
  auto fairness_presolve = [&](const std::vector<double>& from) -> std::vector<double> {
    ScopedWallSpan presolve_span(config_.trace, kAutoscalerTid, "fairness_presolve",
                                 "autoscaler");
    ClusterObjectiveConfig pre_config = obj_config;
    pre_config.kind = UsesDropRates(config_.objective) ? ObjectiveKind::kPenaltySum
                                                       : ObjectiveKind::kSum;
    ClusterObjective pre_objective(objective.jobs(), resources, pre_config);
    Problem pre_problem = pre_objective.BuildProblem();
    const OptimResult pre_solution = Cobyla(pre_problem, from, solver);
    ++telemetry_.starts_launched;
    telemetry_.objective_evaluations += static_cast<uint64_t>(pre_solution.evaluations);
    return pre_solution.max_violation <= 1e-3 ? pre_solution.x : from;
  };

  Problem problem = objective.BuildProblem();

  // Degradation ladder, rung 1 and 2: when the solve deadline is blown the
  // cycle is served by the cross-cycle warm-start allocation rescaled into
  // current capacity, else by the capacity-proportional heuristic. Either way
  // the cycle completes with a capacity-feasible allocation (Integerize's
  // greedy repair still runs below).
  auto fallback_solution = [&]() {
    std::vector<double> x;
    if (warm_hit) {
      x = warm_.x;
      ++telemetry_.fallback_warm;
    } else {
      x = HeuristicStart(objective, resources);
      ++telemetry_.fallback_heuristic;
    }
    // Uniform rescale into current capacity: node loss can leave the cached
    // allocation oversubscribed, and a proportional trim preserves its shape
    // better than the greedy per-replica repair alone.
    double cpu_cost = 0.0;
    for (size_t i = 0; i < job_specs.size(); ++i) {
      x[i] = std::max(1.0, x[i]);
      cpu_cost += objective.jobs()[i].spec.cpu_per_replica * x[i];
    }
    if (cpu_cost > resources.cpu && cpu_cost > 0.0) {
      const double scale = resources.cpu / cpu_cost;
      for (size_t i = 0; i < job_specs.size(); ++i) {
        x[i] = std::max(1.0, x[i] * scale);
      }
    }
    problem.ClipToBounds(x);
    OptimResult result;
    result.x = std::move(x);
    result.value = problem.Objective(result.x);
    result.max_violation = problem.MaxViolation(result.x);
    result.evaluations = 1;
    telemetry_.objective_evaluations += 1;
    return result;
  };
  const bool deadline_blown =
      cycle_deadline_enabled_ && std::chrono::steady_clock::now() >= cycle_deadline_;

  OptimResult solution;
  bool degraded = false;
  if (deadline_blown) {
    // The budget is already spent (an earlier group solve or the forecast ate
    // it): skip the solver entirely.
    ++telemetry_.deadline_misses;
    solution = fallback_solution();
    degraded = true;
  } else if (config_.multistart_starts <= 1) {
    // Legacy serial single-start path, kept for A/B comparison.
    std::vector<double> x0 = has_fairness ? fairness_presolve(x_current) : x_current;
    // Clip the full warm-start vector -- drop-rate coordinates included --
    // into the problem's box before handing it to the solver.
    problem.ClipToBounds(x0);
    {
      ScopedWallSpan solve_span(config_.trace, kAutoscalerTid, "stage2_solve", "autoscaler");
      solution = Cobyla(problem, x0, solver);
    }
    ++telemetry_.starts_launched;
    ++telemetry_.wins_warm_current;
    telemetry_.objective_evaluations += static_cast<uint64_t>(solution.evaluations);
  } else {
    std::vector<StartPoint> starts;
    if (warm_hit) {
      starts.push_back({warm_.x, StartKind::kPrevSolution});
      starts.push_back({x_current, StartKind::kWarmCurrent});
    } else if (has_fairness) {
      starts.push_back({fairness_presolve(x_current), StartKind::kWarmCurrent});
    } else {
      starts.push_back({x_current, StartKind::kWarmCurrent});
    }
    starts.push_back({HeuristicStart(objective, resources), StartKind::kHeuristic});

    MultiStartConfig ms;
    ms.cobyla = solver;
    // Breadth over depth: each start gets a quarter of the serial path's
    // evaluation budget. COBYLA takes most of its improvement in the first
    // few hundred evaluations from a warm start; the integer exchange polish
    // repairs the truncated tail at far lower cost than letting the
    // continuous solver grind out its last fractional digits.
    ms.cobyla.max_evaluations = std::max(500, config_.solver_max_evaluations / 4);
    // The alternate chain is budgeted likewise: a short NelderMead polish,
    // then an AugLag refinement whose inner budget shrinks with the dimension
    // (finite-difference gradients cost ~2n evaluations per inner step).
    ms.nelder_mead.max_iterations =
        std::max<size_t>(100, static_cast<size_t>(config_.solver_max_evaluations) / 8);
    ms.auglag.outer_iterations = 2;
    const size_t grad_cost = 2 * std::max<size_t>(1, objective.dimension());
    ms.auglag.inner_iterations = std::clamp<size_t>(
        static_cast<size_t>(config_.solver_max_evaluations) /
            (4 * ms.auglag.outer_iterations * grad_cost),
        5, 25);
    ms.use_alternate = config_.multistart_alternate;
    ms.early_exit = config_.multistart_early_exit;
    ms.early_exit_improvement = config_.multistart_exit_improvement;
    ms.racing = config_.multistart_racing;
    ms.racing_probe_evals = config_.racing_probe_evals;
    ms.racing_confirm_evals = config_.racing_confirm_evals;
    ms.racing_confirm_rerun = config_.racing_confirm_rerun;
    ms.racing_delta = config_.racing_delta;
    ms.jitter = config_.multistart_jitter;
    ms.seed = solve_seed;
    ms.max_parallelism = config_.solve_parallelism;
    ms.trace = config_.trace;
    ms.deadline_enabled = cycle_deadline_enabled_;
    ms.deadline = cycle_deadline_;
    const size_t extra = config_.multistart_starts > starts.size()
                             ? config_.multistart_starts - starts.size()
                             : 0;
    ScopedWallSpan solve_span(config_.trace, kAutoscalerTid, "stage2_solve", "autoscaler");
    const MultiStartResult ms_result =
        MultiStartSolve(problem, std::move(starts), extra, ms);
    solution = ms_result.best;
    telemetry_.starts_launched += ms_result.starts_launched;
    telemetry_.starts_cancelled += ms_result.starts_cancelled;
    telemetry_.starts_deadline_skipped += ms_result.starts_deadline_skipped;
    telemetry_.starts_pruned += ms_result.starts_pruned;
    telemetry_.early_exits += ms_result.early_exit ? 1 : 0;
    telemetry_.race_rounds += ms_result.race.rounds;
    telemetry_.race_evals_saved += ms_result.race.evaluations_saved;
    telemetry_.objective_evaluations += static_cast<uint64_t>(ms_result.evaluations);
    if (ms_result.deadline_hit) {
      ++telemetry_.deadline_misses;
    }
    if (solution.x.empty()) {
      // The deadline skipped every start before it ran: drop to the ladder.
      solution = fallback_solution();
      degraded = true;
    } else {
      switch (ms_result.winner_kind) {
        case StartKind::kWarmCurrent:
          ++telemetry_.wins_warm_current;
          break;
        case StartKind::kPrevSolution:
          ++telemetry_.wins_prev_solution;
          break;
        case StartKind::kHeuristic:
          ++telemetry_.wins_heuristic;
          break;
        case StartKind::kJitter:
          ++telemetry_.wins_jitter;
          break;
      }
    }
  }
  if (config_.warm_start_cache) {
    telemetry_.warm_start_hits += warm_hit ? 1 : 0;
    warm_.signature = signature;
    warm_.x = solution.x;
    warm_.valid = true;
  }

  ScalingAction action;
  {
    ScopedWallSpan integerize_span(config_.trace, kAutoscalerTid, "integerize",
                                   "autoscaler");
    action.replicas = Integerize(objective, solution.x, resources);
    action.drop_rates.assign(job_specs.size(), 0.0);
    if (UsesDropRates(config_.objective)) {
      for (size_t i = 0; i < job_specs.size(); ++i) {
        double drop = std::clamp(solution.x[job_specs.size() + i], 0.0, 1.0);
        if (drop < 0.01) {
          drop = 0.0;  // ignore solver noise
        }
        action.drop_rates[i] = drop;
      }
    }
    if (!degraded) {
      // The polish is pure wall-clock spend; a degraded cycle is already
      // over budget, and Integerize has made the allocation feasible.
      ExchangePolish(objective, action.replicas, action.drop_rates, resources);
    }
  }

  // Cold-start-aware hysteresis: keep the standing allocation when the new
  // one is not predicted to be materially better (see FaroConfig).
  if (config_.switch_margin > 0.0) {
    std::vector<uint32_t> current(job_specs.size());
    bool differs = false;
    double current_cpu = 0.0;
    double current_mem = 0.0;
    for (size_t i = 0; i < job_specs.size(); ++i) {
      current[i] = std::max<uint32_t>(1, metrics[i].ready_replicas + metrics[i].starting_replicas);
      current_cpu += job_specs[i].cpu_per_replica * current[i];
      current_mem += job_specs[i].mem_per_replica * current[i];
      differs = differs || current[i] != action.replicas[i];
    }
    if (differs && current_cpu <= resources.cpu + 1e-9 && current_mem <= resources.mem + 1e-9) {
      std::vector<double> v_new(objective.dimension(), 0.0);
      std::vector<double> v_cur(objective.dimension(), 0.0);
      for (size_t i = 0; i < job_specs.size(); ++i) {
        v_new[i] = static_cast<double>(action.replicas[i]);
        v_cur[i] = static_cast<double>(current[i]);
        if (UsesDropRates(config_.objective)) {
          v_new[job_specs.size() + i] = action.drop_rates[i];
          v_cur[job_specs.size() + i] = action.drop_rates[i];
        }
      }
      if (objective.Evaluate(v_new) < objective.Evaluate(v_cur) + config_.switch_margin) {
        action.replicas = current;
      }
    }
  }

  if (config_.enable_shrinking && !degraded) {
    ScopedWallSpan shrink_span(config_.trace, kAutoscalerTid, "shrink", "autoscaler");
    Shrink(objective, action.replicas, action.drop_rates);
  }
  return action;
}

ScalingAction FaroAutoscaler::SolveHierarchical(const std::vector<JobSpec>& job_specs,
                                                const std::vector<JobMetrics>& metrics,
                                                const std::vector<std::vector<double>>& loads,
                                                const ClusterResources& resources,
                                                uint64_t solve_seed) {
  const size_t j = job_specs.size();
  const size_t groups = std::min(config_.hierarchical_groups, j);
  // Random assignment of jobs to groups (§3.4: "assigning each job to a
  // random group"). The shuffle RNG is seeded from the cycle seed, so the
  // grouping is a pure function of (config seed, cycle) at any thread count.
  Rng shuffle_rng(HashCombine(solve_seed, 0xf00du));
  const std::vector<size_t> order = ShuffledIndices(j, shuffle_rng);
  std::vector<std::vector<size_t>> members(groups);
  for (size_t k = 0; k < j; ++k) {
    members[k % groups].push_back(order[k]);
  }

  // Aggregate each group: lambda_g = sum of member loads per step, p_g = mean
  // processing time; resource cost per group replica is the member mean.
  size_t window = std::numeric_limits<size_t>::max();
  for (const auto& load : loads) {
    window = std::min(window, load.size());
  }
  std::vector<JobSpec> group_specs(groups);
  std::vector<JobMetrics> group_metrics(groups);
  std::vector<std::vector<double>> group_loads(groups, std::vector<double>(window, 0.0));
  for (size_t g = 0; g < groups; ++g) {
    JobSpec& spec = group_specs[g];
    spec.name = "group-" + std::to_string(g);
    double p_sum = 0.0;
    double cpu_sum = 0.0;
    double mem_sum = 0.0;
    double priority_sum = 0.0;
    double slo = std::numeric_limits<double>::infinity();
    double percentile = 0.0;
    uint32_t current = 0;
    for (const size_t i : members[g]) {
      for (size_t k = 0; k < window; ++k) {
        group_loads[g][k] += loads[i][k];
      }
      const double p = metrics[i].processing_time > 0.0 ? metrics[i].processing_time
                                                        : job_specs[i].processing_time;
      p_sum += p;
      cpu_sum += job_specs[i].cpu_per_replica;
      mem_sum += job_specs[i].mem_per_replica;
      priority_sum += job_specs[i].priority;
      slo = std::min(slo, job_specs[i].slo);
      percentile = std::max(percentile, job_specs[i].percentile);
      current += metrics[i].ready_replicas + metrics[i].starting_replicas;
    }
    const double count = static_cast<double>(members[g].size());
    spec.processing_time = p_sum / count;
    spec.cpu_per_replica = cpu_sum / count;
    spec.mem_per_replica = mem_sum / count;
    spec.priority = priority_sum / count;
    spec.slo = slo;
    spec.percentile = percentile;
    spec.parallel_queues = count;  // no pooling across the member routers
    group_metrics[g].ready_replicas = std::max<uint32_t>(current, 1);
    group_metrics[g].processing_time = spec.processing_time;
  }

  const ScalingAction group_action =
      SolveFlat(group_specs, group_metrics, group_loads, resources,
                HashCombine(solve_seed, 0x6007u));

  // Distribute each group's replicas to members in proportion to their
  // capacity demand (peak predicted load x processing time), one minimum,
  // then refine with the integer exchange on the group's own sub-problem --
  // proportional-to-load splitting ignores the nonlinear queueing economies
  // the exchange sees. Each group touches only its own members, so the groups
  // fan out across the thread pool; results are written at each group's own
  // indices and are bit-identical to the serial loop.
  struct GroupSplit {
    std::vector<uint32_t> replicas;  // members[g] order
    double drop_rate = 0.0;
  };
  const std::vector<GroupSplit> splits = ParallelMap(
      groups,
      [&](size_t g) {
        GroupSplit split;
        const uint32_t budget = group_action.replicas[g];
        const size_t count = members[g].size();
        std::vector<double> weight(count);
        double weight_sum = 0.0;
        for (size_t k = 0; k < count; ++k) {
          const size_t i = members[g][k];
          double peak = 0.0;
          for (const double v : loads[i]) {
            peak = std::max(peak, v);
          }
          weight[k] = peak * job_specs[i].processing_time + 1e-6;
          weight_sum += weight[k];
        }
        split.replicas.assign(count, 1);
        if (!group_action.drop_rates.empty()) {
          split.drop_rate = group_action.drop_rates[g];
        }
        uint32_t assigned = 0;
        std::vector<double> remainder(count);
        for (size_t k = 0; k < count; ++k) {
          const double share = budget * weight[k] / weight_sum;
          split.replicas[k] = static_cast<uint32_t>(std::max(1.0, std::floor(share)));
          remainder[k] = share - std::floor(share);
          assigned += split.replicas[k];
        }
        // Hand out any leftover replicas by largest fractional share.
        while (assigned < budget) {
          size_t best = 0;
          for (size_t k = 1; k < remainder.size(); ++k) {
            if (remainder[k] > remainder[best]) {
              best = k;
            }
          }
          ++split.replicas[best];
          remainder[best] = -1.0;
          ++assigned;
        }

        std::vector<JobContext> member_contexts;
        double group_cpu = 0.0;
        double group_mem = 0.0;
        for (size_t k = 0; k < count; ++k) {
          const size_t i = members[g][k];
          JobContext context;
          context.spec = job_specs[i];
          if (metrics[i].processing_time > 0.0) {
            context.spec.processing_time = metrics[i].processing_time;
          }
          context.predicted_load = loads[i];
          member_contexts.push_back(std::move(context));
          group_cpu += job_specs[i].cpu_per_replica * split.replicas[k];
          group_mem += job_specs[i].mem_per_replica * split.replicas[k];
        }
        ClusterObjectiveConfig member_config = MakeObjectiveConfig();
        member_config.max_replicas_per_job = static_cast<double>(budget);
        ClusterObjective member_objective(std::move(member_contexts),
                                          ClusterResources{group_cpu, group_mem},
                                          member_config);
        const std::vector<double> no_drops(count, 0.0);
        ExchangePolish(member_objective, split.replicas, no_drops,
                       ClusterResources{group_cpu, group_mem});
        return split;
      },
      config_.solve_parallelism);

  ScalingAction action;
  action.replicas.assign(j, 1);
  action.drop_rates.assign(j, 0.0);
  for (size_t g = 0; g < groups; ++g) {
    for (size_t k = 0; k < members[g].size(); ++k) {
      action.replicas[members[g][k]] = splits[g].replicas[k];
      action.drop_rates[members[g][k]] = splits[g].drop_rate;
    }
  }
  telemetry_.group_solves += groups;
  return action;
}

ScalingAction FaroAutoscaler::Decide(double now_s, const std::vector<JobSpec>& job_specs,
                                     const std::vector<JobMetrics>& metrics,
                                     const ClusterResources& resources) {
  ScopedWallSpan decide_span(config_.trace, kAutoscalerTid, "decide", "autoscaler");
  const SolverTelemetry before = telemetry_;
  std::vector<std::vector<double>> loads;
  {
    ScopedWallSpan forecast_span(config_.trace, kAutoscalerTid, "forecast", "autoscaler");
    loads = PredictLoads(job_specs, metrics);
  }
  // Every random choice inside a solve derives from this cycle seed, never
  // from shared mutable RNG state, so a fixed config seed gives bit-identical
  // decisions at any thread count.
  const uint64_t cycle_seed = HashCombine(config_.seed, ++decision_cycles_);
  const auto solve_start = std::chrono::steady_clock::now();
  // Arm the per-cycle solve deadline (degradation ladder). Off by default:
  // cycle_deadline_enabled_ stays false and nothing below consults the clock.
  cycle_deadline_enabled_ = config_.solve_deadline_s > 0.0;
  if (cycle_deadline_enabled_) {
    cycle_deadline_ = solve_start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                        std::chrono::duration<double>(config_.solve_deadline_s));
  }
  ScalingAction action;
  if (config_.hierarchical_groups > 1 && job_specs.size() > config_.hierarchical_groups &&
      job_specs.size() > config_.hierarchical_threshold) {
    action = SolveHierarchical(job_specs, metrics, loads, resources, cycle_seed);
  } else {
    action = SolveFlat(job_specs, metrics, loads, resources, cycle_seed);
  }
  const double solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - solve_start).count();
  // Remember the capacity the target was solved for: FastReact's
  // capacity-change trigger compares against it. (Re-issuing missed
  // scale-ups is no longer the policy's job: the reconciling actuator in
  // src/actuate/ repairs the fleet against the published desired state.)
  last_solve_cpu_ = resources.cpu;
  ++telemetry_.cycles;
  telemetry_.solve_seconds_total += solve_seconds;
  telemetry_.solve_seconds_max = std::max(telemetry_.solve_seconds_max, solve_seconds);
  CyclesCounter().Add(1);
  EvaluationsCounter().Add(telemetry_.objective_evaluations - before.objective_evaluations);
  StartsCounter().Add(telemetry_.starts_launched - before.starts_launched);
  SolveSecondsHistogram().Record(solve_seconds);
  if (config_.audit != nullptr) {
    // Per-cycle decision audit record. Deterministic fields only: wall-clock
    // solve time is deliberately excluded so the JSONL is byte-identical at
    // any thread count.
    DecisionAuditRecord record;
    record.label = config_.audit_label;
    record.time_s = now_s;
    record.cycle = decision_cycles_;
    record.num_jobs = job_specs.size();
    for (const std::vector<double>& load : loads) {
      double peak = 0.0;
      double sum = 0.0;
      for (const double v : load) {
        peak = std::max(peak, v);
        sum += v;
      }
      record.forecast_peak_total += peak;
      record.forecast_mean_total += load.empty() ? 0.0 : sum / static_cast<double>(load.size());
    }
    // Degradation-ladder rung taken this cycle, from the telemetry deltas.
    if (telemetry_.fallback_heuristic > before.fallback_heuristic) {
      record.rung = "heuristic";
    } else if (telemetry_.fallback_warm > before.fallback_warm) {
      record.rung = "warm_rescale";
    } else {
      record.rung = "solve";
    }
    record.hierarchical = config_.hierarchical_groups > 1 &&
                          job_specs.size() > config_.hierarchical_groups &&
                          job_specs.size() > config_.hierarchical_threshold;
    record.forecast_fallback = telemetry_.forecast_fallbacks > before.forecast_fallbacks;
    record.starts = telemetry_.starts_launched - before.starts_launched;
    record.evaluations = telemetry_.objective_evaluations - before.objective_evaluations;
    record.deadline_misses = telemetry_.deadline_misses - before.deadline_misses;
    for (const uint32_t r : action.replicas) {
      record.replicas_total += static_cast<double>(r);
    }
    if (!action.drop_rates.empty()) {
      double drop_sum = 0.0;
      for (const double d : action.drop_rates) {
        drop_sum += d;
      }
      record.drop_rate_mean = drop_sum / static_cast<double>(action.drop_rates.size());
    }
    config_.audit->Append(std::move(record));
  }
  return action;
}

std::optional<ScalingAction> FaroAutoscaler::FastReact(double now_s,
                                                       const std::vector<JobSpec>& job_specs,
                                                       const std::vector<JobMetrics>& metrics,
                                                       const ClusterResources& resources) {
  // Capacity-change trigger (degradation ladder): when the cluster shrank
  // materially since the last solve -- a node crashed or was drained -- the
  // standing allocation may be oversubscribed or badly shaped, and waiting
  // out the decision cadence means minutes of avoidable SLO damage. Force an
  // off-cadence re-solve now. Runs before the enable_hybrid gate: capacity
  // loss matters to ablation arms without the reactive loop too. Never fires
  // in a fault-free run (capacity only shrinks under injected node faults).
  if (config_.capacity_resolve_threshold > 0.0 && last_solve_cpu_ > 0.0 &&
      resources.cpu < last_solve_cpu_ * (1.0 - config_.capacity_resolve_threshold)) {
    ++telemetry_.capacity_resolves;
    if (config_.trace.on()) {
      config_.trace.SimInstant(kAutoscalerTid, "capacity_resolve", "autoscaler", now_s);
    }
    return Decide(now_s, job_specs, metrics, resources);
  }
  if (!config_.enable_hybrid) {
    return std::nullopt;
  }
  if (last_reactive_up_.size() != metrics.size()) {
    last_reactive_up_.assign(metrics.size(), -1e18);
  }
  double used_cpu = 0.0;
  for (size_t i = 0; i < metrics.size(); ++i) {
    used_cpu +=
        job_specs[i].cpu_per_replica * (metrics[i].ready_replicas + metrics[i].starting_replicas);
  }
  ScalingAction action;
  action.replicas.resize(metrics.size());
  bool changed = false;
  // Most-overloaded jobs get first claim on the free capacity.
  std::vector<size_t> order(metrics.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return metrics[a].overloaded_for > metrics[b].overloaded_for;
  });
  for (size_t i = 0; i < metrics.size(); ++i) {
    action.replicas[i] = metrics[i].ready_replicas + metrics[i].starting_replicas;
  }
  for (const size_t i : order) {
    if (metrics[i].overloaded_for < config_.overload_trigger_s ||
        now_s - last_reactive_up_[i] < config_.overload_trigger_s) {
      continue;
    }
    if (used_cpu + job_specs[i].cpu_per_replica > resources.cpu + 1e-9) {
      continue;
    }
    ++action.replicas[i];
    used_cpu += job_specs[i].cpu_per_replica;
    last_reactive_up_[i] = now_s;
    changed = true;
  }
  // Missed scale-ups are repaired by the reconciling actuator (src/actuate/),
  // which re-issues the fleet's shortfall against the published desired state
  // with per-job backoff. The engines fold its repair count into
  // telemetry_.actuation_retries at Finish, so the solver CSV column keeps
  // its historical meaning.
  if (!changed) {
    return std::nullopt;
  }
  return action;
}

}  // namespace faro
