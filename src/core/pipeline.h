// SLO splitting for chained ML pipelines (§7): "Faro is applicable to ML
// pipelines that make chained calls to multiple ML jobs, if the application
// SLO can be split into sub-SLOs for each called model, e.g., proportionally:
// for a chain with two model calls, if one model takes 2x [the] other, ...
// the SLO is split as 66%-33%."
//
// This module turns a pipeline-level latency SLO into per-stage JobSpecs the
// autoscaler treats as ordinary jobs, and estimates end-to-end pipeline
// latency from per-stage allocations.

#ifndef SRC_CORE_PIPELINE_H_
#define SRC_CORE_PIPELINE_H_

#include <string>
#include <vector>

#include "src/core/objectives.h"

namespace faro {

// One stage of a chained pipeline: a model with a measured per-request
// processing time. `fanout` calls per pipeline request (e.g. a detector that
// invokes a classifier on average 2.5 times scales that stage's load).
struct PipelineStage {
  std::string name;
  double processing_time = 0.1;
  double fanout = 1.0;
};

struct PipelineSpec {
  std::string name;
  double slo = 1.0;         // end-to-end latency target (s)
  double percentile = 0.99;
  double priority = 1.0;
  std::vector<PipelineStage> stages;
};

// Splits the pipeline SLO across stages proportionally to their processing
// times (the §7 rule) and returns one JobSpec per stage. Stage i's sub-SLO is
//   slo * p_i / sum_j p_j
// and its name is "<pipeline>/<stage>". Fanout scales neither the SLO nor the
// processing time -- callers scale the *arrival rate* of downstream stages by
// the fanout (see StageArrivalRates).
std::vector<JobSpec> SplitPipelineSlo(const PipelineSpec& pipeline);

// Arrival rate each stage sees for a pipeline-level arrival rate `lambda`
// (req/s): stage i receives lambda * prod_{j<=i} fanout_j.
std::vector<double> StageArrivalRates(const PipelineSpec& pipeline, double lambda);

// Estimated end-to-end q-th percentile latency of the pipeline given each
// stage's replica allocation, using the relaxed M/D/c model per stage and
// summing stage latencies (tail independence: a pessimistic-but-simple
// composition, consistent with the per-stage sub-SLO split).
double PipelineLatencyEstimate(const PipelineSpec& pipeline,
                               std::span<const double> stage_replicas, double lambda,
                               double rho_max = kDefaultRhoMax);

// True when the proportional split is achievable: every stage's sub-SLO is at
// least its own processing time (otherwise no allocation can meet it).
bool PipelineSloFeasible(const PipelineSpec& pipeline);

}  // namespace faro

#endif  // SRC_CORE_PIPELINE_H_
