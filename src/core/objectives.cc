#include "src/core/objectives.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/core/penalty.h"
#include "src/queueing/cache.h"
#include "src/queueing/mmc.h"

namespace faro {

bool UsesDropRates(ObjectiveKind kind) {
  return kind == ObjectiveKind::kPenaltySum || kind == ObjectiveKind::kPenaltyFairSum;
}

std::string ObjectiveKindName(ObjectiveKind kind) {
  switch (kind) {
    case ObjectiveKind::kSum:
      return "Faro-Sum";
    case ObjectiveKind::kFair:
      return "Faro-Fair";
    case ObjectiveKind::kFairSum:
      return "Faro-FairSum";
    case ObjectiveKind::kPenaltySum:
      return "Faro-PenaltySum";
    case ObjectiveKind::kPenaltyFairSum:
      return "Faro-PenaltyFairSum";
  }
  return "Faro-?";
}

ClusterObjective::ClusterObjective(std::vector<JobContext> jobs, ClusterResources resources,
                                   ClusterObjectiveConfig config)
    : jobs_(std::move(jobs)), resources_(resources), config_(config) {
  if (config_.gamma <= 0.0) {
    config_.gamma = static_cast<double>(jobs_.size());
  }
}

size_t ClusterObjective::dimension() const {
  return UsesDropRates(config_.kind) ? 2 * jobs_.size() : jobs_.size();
}

double ClusterObjective::LatencyEstimate(size_t i, double lambda, double replicas) const {
  const JobSpec& spec = jobs_[i].spec;
  // Aggregated jobs are modelled as parallel_queues independent queues each
  // receiving an equal share of the load and the replicas.
  const double pq = std::max(1.0, spec.parallel_queues);
  lambda /= pq;
  replicas /= pq;
  switch (config_.latency_model) {
    case LatencyModelKind::kMdcRelaxed:
      return RelaxedMdcLatency(replicas, lambda, spec.processing_time, spec.percentile,
                               config_.rho_max);
    case LatencyModelKind::kMdcPrecise: {
      // Integer server counts only: the fractional part of the solver's probe
      // is discarded, which is precisely what creates the plateaus the
      // precise formulation suffers from (Fig. 5, Fig. 6-middle).
      const auto servers = static_cast<uint32_t>(std::max(1.0, std::floor(replicas)));
      return CachedMdcLatencyPercentile(servers, lambda, spec.processing_time,
                                        spec.percentile);
    }
    case LatencyModelKind::kUpperBound:
      return UpperBoundLatency(lambda, spec.processing_time, std::max(replicas, 1e-3));
  }
  return std::numeric_limits<double>::infinity();
}

double ClusterObjective::JobUtility(size_t i, double replicas, double drop_rate) const {
  const JobContext& job = jobs_[i];
  drop_rate = std::clamp(drop_rate, 0.0, 1.0);
  if (job.predicted_load.empty()) {
    return 1.0;
  }
  double total = 0.0;
  for (const double lambda : job.predicted_load) {
    const double served = lambda * (1.0 - drop_rate);
    const double latency = LatencyEstimate(i, served, replicas);
    total += config_.relaxed ? RelaxedUtility(latency, job.spec.slo, config_.utility_alpha)
                             : StepUtility(latency, job.spec.slo);
  }
  return total / static_cast<double>(job.predicted_load.size());
}

double ClusterObjective::JobEffectiveUtility(size_t i, double replicas, double drop_rate) const {
  drop_rate = std::clamp(drop_rate, 0.0, 1.0);
  const double utility = JobUtility(i, replicas, drop_rate);
  const double phi = config_.relaxed ? RelaxedPenaltyMultiplier(drop_rate)
                                     : StepPenaltyMultiplier(drop_rate);
  return phi * utility;
}

double ClusterObjective::Evaluate(std::span<const double> v) const {
  const size_t j = jobs_.size();
  const bool drops = UsesDropRates(config_.kind);
  double weighted_sum = 0.0;
  double min_u = std::numeric_limits<double>::infinity();
  double max_u = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < j; ++i) {
    const double drop = drops ? std::clamp(v[j + i], 0.0, 1.0) : 0.0;
    const double u = drops ? JobEffectiveUtility(i, v[i], drop) : JobUtility(i, v[i], drop);
    weighted_sum += jobs_[i].spec.priority * u;
    min_u = std::min(min_u, u);
    max_u = std::max(max_u, u);
  }
  const double unfairness = j > 0 ? max_u - min_u : 0.0;
  switch (config_.kind) {
    case ObjectiveKind::kSum:
    case ObjectiveKind::kPenaltySum:
      return weighted_sum;
    case ObjectiveKind::kFair:
      return -unfairness;
    case ObjectiveKind::kFairSum:
    case ObjectiveKind::kPenaltyFairSum:
      return weighted_sum - config_.gamma * unfairness;
  }
  return weighted_sum;
}

Problem ClusterObjective::BuildProblem() const {
  const size_t j = jobs_.size();
  const size_t dim = dimension();
  // The lambda captures *this; the ClusterObjective must outlive the Problem.
  Problem problem(dim, [this](std::span<const double> v) { return -Evaluate(v); });

  std::vector<double> lo(dim);
  std::vector<double> hi(dim);
  for (size_t i = 0; i < j; ++i) {
    lo[i] = 1.0;  // x_i >= 1 (Eq. 3: minimum one replica per job)
    hi[i] = config_.max_replicas_per_job;
  }
  for (size_t i = j; i < dim; ++i) {
    lo[i] = 0.0;  // 0 <= d_i <= 1
    hi[i] = 1.0;
  }
  problem.SetBounds(std::move(lo), std::move(hi));

  problem.AddConstraint(
      [this](std::span<const double> v) { return resources_.cpu - CpuUsage(v); });
  problem.AddConstraint(
      [this](std::span<const double> v) { return resources_.mem - MemUsage(v); });
  return problem;
}

std::vector<double> ClusterObjective::InitialPoint() const {
  std::vector<double> v(dimension(), 0.0);
  for (size_t i = 0; i < jobs_.size(); ++i) {
    v[i] = 1.0;
  }
  return v;
}

double ClusterObjective::CpuUsage(std::span<const double> v) const {
  double total = 0.0;
  for (size_t i = 0; i < jobs_.size(); ++i) {
    total += jobs_[i].spec.cpu_per_replica * v[i];
  }
  return total;
}

double ClusterObjective::MemUsage(std::span<const double> v) const {
  double total = 0.0;
  for (size_t i = 0; i < jobs_.size(); ++i) {
    total += jobs_[i].spec.mem_per_replica * v[i];
  }
  return total;
}

}  // namespace faro
