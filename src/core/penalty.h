// Drop-request penalty multiplier (§3.2, Table 5).
//
// When a constrained cluster is overloaded, Faro may explicitly drop requests
// to protect the SLO of the remainder and avoid OOM. Dropping incurs a
// penalty structured like the service-credit schedules cloud providers attach
// to their SLAs (the table below is AWS's): availability >= 99% costs
// nothing, then 25% / 50% / 100% credit bands. The *effective utility* of a
// job is EU = phi(d) * U where phi(d) = 1 - penalty(1 - d) (Eq. 2).
//
// The step-shaped credit schedule is itself a plateau, so §3.4 also relaxes
// it into a piecewise-linear function for use inside the solver.

#ifndef SRC_CORE_PENALTY_H_
#define SRC_CORE_PENALTY_H_

namespace faro {

// Service-credit fraction for a given availability in [0, 1] (Table 5):
//   availability >= 0.99          -> 0.00
//   0.95 <= availability < 0.99   -> 0.25
//   0.90 <= availability < 0.95   -> 0.50
//   availability < 0.90           -> 1.00
double StepPenalty(double availability);

// Piecewise-linear relaxation of the credit schedule: interpolates through
// (1.00, 0), (0.99, 0), (0.95, 0.25), (0.90, 0.50) and reaches 1.0 at zero
// availability with a constant slope, so the solver always sees a gradient.
double RelaxedPenalty(double availability);

// Effective-utility multiplier phi(d) = 1 - penalty(1 - d) for drop rate d.
double StepPenaltyMultiplier(double drop_rate);
double RelaxedPenaltyMultiplier(double drop_rate);

}  // namespace faro

#endif  // SRC_CORE_PENALTY_H_
