// Autoscaling-policy interface: the contract between the cluster substrate
// (deployment or matched simulator) and any autoscaler (Faro or a baseline).
//
// The substrate collects per-job metrics continually (the modified Ray Router
// of §5) and invokes the policy on two cadences: the long-term decision
// interval (Decide, default every 5 minutes) and a fast reactive tick
// (FastReact, default every 10 seconds) used by hybrid policies (§4.4) and
// reactive baselines.

#ifndef SRC_CORE_POLICY_H_
#define SRC_CORE_POLICY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/objectives.h"

namespace faro {

// Rolling metrics for one job, as exported by its router.
struct JobMetrics {
  // Smoothed arrival rate over the last metrics window (req/s), including
  // requests that were later dropped.
  double arrival_rate = 0.0;
  // Average per-request replica processing time (s) observed recently.
  double processing_time = 0.0;
  // Tail and mean latency over the last window (s); dropped requests count as
  // +infinity, mirroring §6's metric definition.
  double p99_latency = 0.0;
  double mean_latency = 0.0;
  // Fraction of the window's arrivals that were dropped (tail drop or
  // explicit drop).
  double drop_rate = 0.0;
  // Replicas currently serving (ready), plus replicas still cold-starting.
  uint32_t ready_replicas = 1;
  uint32_t starting_replicas = 0;
  // Per-minute arrival-rate history (req/s, oldest first) for predictors.
  std::vector<double> arrival_history;
  // Seconds the job has continuously violated / met its SLO (for the 30 s /
  // 5 min up/down triggers shared by Faro's reactive stage and baselines).
  double overloaded_for = 0.0;
  double underloaded_for = 0.0;
};

// Stage-2 solver telemetry a policy accumulates over a run. Faro's multi-start
// driver fills this (one increment batch per long-term decision); baselines
// report the default zeros. Wall-clock fields are measurement, not state: no
// decision ever depends on them, so determinism is unaffected.
struct SolverTelemetry {
  uint64_t cycles = 0;                 // long-term Decide() calls
  uint64_t starts_launched = 0;        // solver tasks actually run
  // Tasks that did not run to their budget, by cause: cancelled by the
  // early-exit rule, skipped by the wall-clock deadline, or stopped by the
  // BAI racing rule (pruned arms still ran their probe).
  uint64_t starts_cancelled = 0;
  uint64_t starts_deadline_skipped = 0;
  uint64_t starts_pruned = 0;
  uint64_t early_exits = 0;            // solves won by the early-exit rule
  // --- BAI racing (multi-start arms race; see src/optim/bai.h) -------------
  uint64_t race_rounds = 0;            // probe + extension rounds across solves
  uint64_t race_evals_saved = 0;       // evaluations saved vs the static tiers
  uint64_t warm_start_hits = 0;        // solves starting from the cached solution
  uint64_t wins_warm_current = 0;      // winner provenance counts
  uint64_t wins_prev_solution = 0;
  uint64_t wins_heuristic = 0;
  uint64_t wins_jitter = 0;
  uint64_t objective_evaluations = 0;  // across all solver tasks
  uint64_t group_solves = 0;           // hierarchical per-group sub-solves
  double solve_seconds_total = 0.0;    // wall-clock inside Stage-2 solves
  double solve_seconds_max = 0.0;      // worst single cycle
  // --- degradation ladder (robustness) -------------------------------------
  uint64_t deadline_misses = 0;        // Stage-2 solves cut off by the deadline
  uint64_t fallback_warm = 0;          // cycles served by the rescaled warm start
  uint64_t fallback_heuristic = 0;     // cycles served by the capacity heuristic
  uint64_t forecast_fallbacks = 0;     // insane forecasts replaced by last-value
  uint64_t actuation_retries = 0;      // reactive re-issues of a missed scale-up
  uint64_t capacity_resolves = 0;      // off-cadence solves after capacity loss
};

// A scaling decision covering every job. `replicas` are absolute targets;
// `drop_rates` (optional, same length) instruct routers to shed a fraction of
// incoming load (only Faro-Penalty* sets this).
struct ScalingAction {
  std::vector<uint32_t> replicas;
  std::vector<double> drop_rates;
};

class AutoscalingPolicy {
 public:
  virtual ~AutoscalingPolicy() = default;

  virtual std::string name() const = 0;

  // Long-term decision. `job_specs` and `metrics` are index-aligned.
  virtual ScalingAction Decide(double now_s, const std::vector<JobSpec>& job_specs,
                               const std::vector<JobMetrics>& metrics,
                               const ClusterResources& resources) = 0;

  // Seconds between Decide() calls.
  virtual double decision_interval_s() const { return 300.0; }

  // Fast-path reaction between long-term decisions; return std::nullopt to
  // leave the allocation untouched.
  virtual std::optional<ScalingAction> FastReact(double now_s,
                                                 const std::vector<JobSpec>& job_specs,
                                                 const std::vector<JobMetrics>& metrics,
                                                 const ClusterResources& resources) {
    return std::nullopt;
  }

  // Solver telemetry accumulated so far (zeros for policies without a solver).
  virtual SolverTelemetry solver_telemetry() const { return {}; }
};

}  // namespace faro

#endif  // SRC_CORE_POLICY_H_
