// Admission control (§7): "it remains an open question whether admission
// control decisions can be designed to guarantee SLO satisfaction, perhaps
// with some workload assumptions." This module implements the natural
// first-cut answer under the paper's own modelling assumptions (Poisson
// arrivals, near-deterministic service, M/D/c sizing): admit a new job only
// if the peak total M/D/c replica demand of existing + new jobs fits the
// cluster.

#ifndef SRC_CORE_ADMISSION_H_
#define SRC_CORE_ADMISSION_H_

#include <span>
#include <string>
#include <vector>

#include "src/core/objectives.h"

namespace faro {

// A job's declared envelope for admission: its spec plus the peak arrival
// rate (req/s) it is allowed to submit. Jobs exceeding their declared peak
// void the guarantee (they can still be throttled by Faro-Penalty variants).
struct AdmissionRequest {
  JobSpec spec;
  double peak_arrival_rate = 0.0;
};

struct AdmissionDecision {
  bool admitted = false;
  // Replicas the admitted set needs at simultaneous peak (pessimistic: peaks
  // are assumed to coincide).
  double peak_demand_cpu = 0.0;
  double peak_demand_mem = 0.0;
  std::string reason;
};

class AdmissionController {
 public:
  explicit AdmissionController(ClusterResources resources) : resources_(resources) {}

  // Jobs currently admitted.
  std::span<const AdmissionRequest> admitted() const { return admitted_; }

  // Peak replica requirement of one request (M/D/c sizing at its SLO).
  static uint32_t PeakReplicas(const AdmissionRequest& request);

  // Checks whether `candidate` fits alongside the admitted set; does not
  // mutate state.
  AdmissionDecision Check(const AdmissionRequest& candidate) const;

  // Check and, if admitted, record the job.
  AdmissionDecision Admit(const AdmissionRequest& candidate);

  // Removes an admitted job by name; returns false if unknown.
  bool Release(const std::string& name);

 private:
  ClusterResources resources_;
  std::vector<AdmissionRequest> admitted_;
};

}  // namespace faro

#endif  // SRC_CORE_ADMISSION_H_
