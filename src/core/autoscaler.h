// The Faro multi-tenant autoscaler (§4).
//
// Every decision interval the autoscaler executes three stages:
//   Stage 1  Per-job formulation: fetch each job's processing time and
//            arrival history, predict the load over the upcoming window
//            (probabilistic N-HiTS in production; pluggable here), and plan
//            for replica availability only after the cold-start delay.
//   Stage 2  Multi-tenant solve: combine the per-job objectives into the
//            configured cluster objective (relaxed by default) and solve it
//            with COBYLA under the cluster's vCPU/memory capacity, then
//            integerise the solution within capacity.
//   Stage 3  Shrinking: iteratively return replicas from jobs already at
//            utility 1 while the cluster objective is unchanged, right-sizing
//            the allocation.
//
// Between long-term decisions a short-term reactive loop (§4.4) upscales a
// job additively when it has violated its SLO for a sustained period; it
// never downscales (the long-term stage owns the baseline allocation).

#ifndef SRC_CORE_AUTOSCALER_H_
#define SRC_CORE_AUTOSCALER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/core/objectives.h"
#include "src/core/policy.h"
#include "src/core/predictor.h"
#include "src/obs/trace.h"

namespace faro {

class AuditLog;  // src/obs/slo.h -- decision audit sink (pointer-only here).

struct FaroConfig {
  ObjectiveKind objective = ObjectiveKind::kFairSum;

  // --- Ablation switches (Fig. 16) ---------------------------------------
  // Relaxed (sloppified) objective vs the precise step formulation.
  bool relaxed = true;
  // M/D/c latency model vs the pessimistic upper bound.
  LatencyModelKind latency_model = LatencyModelKind::kMdcRelaxed;
  // Time-series prediction on/off (off = size for the current rate only).
  bool enable_prediction = true;
  // Probabilistic prediction (pessimistic quantile of sampled trajectories)
  // vs the point (median) forecast.
  bool probabilistic = true;
  // Short-term reactive autoscaler on/off.
  bool enable_hybrid = true;
  // Stage-3 shrinking on/off.
  bool enable_shrinking = true;

  // Quantile of the predictive distribution used for sizing when
  // `probabilistic` is set (the pessimistic envelope of Fig. 8c; high enough
  // to absorb fluctuation, low enough not to saturate a constrained cluster).
  double prediction_quantile = 0.75;
  // Prediction window (steps of `step_seconds`); 7 min overlaps the next
  // decision cycle and covers cold start (§5).
  size_t prediction_window_steps = 7;
  double step_seconds = 60.0;
  // Replica cold-start delay planned around by Stage 1.
  double cold_start_s = 60.0;

  // Long-term decision cadence and reactive trigger (§4.4, §6).
  double decision_interval_s = 300.0;
  double overload_trigger_s = 30.0;

  // Hierarchical optimisation: number of random job groups G (§3.4). The
  // paper uses G = 10; since Fig. 7 shows aggregation degrades the objective
  // below ~50 jobs while the flat solve is still fast there, grouping only
  // activates above `hierarchical_threshold` jobs.
  size_t hierarchical_groups = 10;
  size_t hierarchical_threshold = 50;

  double utility_alpha = kDefaultUtilityAlpha;
  double rho_max = kDefaultRhoMax;
  double gamma = -1.0;  // fairness weight; <=0 -> job count

  // Cold-start-aware hysteresis: a re-solve's allocation is adopted only if
  // its predicted cluster-objective value beats the current allocation's by
  // this margin. Replica moves are not free -- the receiving job waits out a
  // cold start while the losing job degrades immediately -- so near-tie
  // reshuffles (common under saturation, where predictions fluctuate but no
  // allocation is good) are suppressed.
  double switch_margin = 0.05;

  // COBYLA settings ("initial variable change of 2", §5).
  double solver_rho_begin = 2.0;
  double solver_rho_end = 1e-3;
  int solver_max_evaluations = 4000;

  // --- Multi-start solve driver ------------------------------------------
  // Number of start points fanned across the shared thread pool per Stage-2
  // solve (warm start, previous solution, capacity-proportional heuristic,
  // jittered variants). <= 1 selects the legacy serial single-start COBYLA
  // path (with the fairness pre-solve chain), kept for A/B comparison.
  size_t multistart_starts = 4;
  // Also run the NelderMead->AugLag chain from every start. Off by default:
  // the chain roughly quadruples the solve's evaluation count for a small
  // additional utility gain, which only pays when idle cores make the extra
  // tasks free. Turn on for wide machines or offline quality sweeps.
  bool multistart_alternate = false;
  // Early-exit: the lowest-indexed feasible converged task whose start was
  // already near-optimal wins and cancels unstarted higher-indexed tasks
  // (deterministic; see optim/multistart.h). The stability bar keeps the
  // steady-state cycles cheap -- one solve confirms the incumbent -- while
  // load shifts still run the full portfolio and get best-of selection.
  bool multistart_early_exit = true;
  // Stability bar for the early exit: an incumbent solve that improves on its
  // start by at most this relative fraction confirms the incumbent and skips
  // the rest of the portfolio. Deliberately the same magnitude as
  // `switch_margin`: an improvement too small to adopt is too small to chase.
  double multistart_exit_improvement = 0.05;
  // Relative amplitude of the jittered start variants.
  double multistart_jitter = 0.35;
  // Thread cap for the solve fan-out (starts and hierarchical groups):
  // 0 = shared pool size, 1 = serial. Solutions are bit-identical at every
  // setting for a fixed seed.
  size_t solve_parallelism = 0;
  // Cross-cycle warm starts: reuse the previous cycle's continuous solution
  // as a start while the job-set signature is unchanged (a signature change
  // drops the cache). A valid warm start also replaces the serial fairness
  // pre-solve -- the cached solution already sits on the right utility
  // frontier.
  bool warm_start_cache = true;
  // --- BAI racing (adaptive budget allocation; see src/optim/bai.h) --------
  // Replace the static full/quarter budget tiers inside the multi-start
  // driver with best-arm-identification racing: the primary start runs a
  // short confirmation solve first (early-exit bar unchanged), scouts run
  // probe solves, and only arms whose optimistic value could still beat the
  // leader are extended to their full tier budget. Deterministic and
  // bit-identical at every `solve_parallelism`; see optim/multistart.h for
  // the contract. Ignored when `multistart_alternate` is on (the race runs
  // COBYLA arms only).
  bool multistart_racing = true;
  // Probe budget per scout arm; 0 = auto (max(64, 2*dim + 24)).
  int racing_probe_evals = 0;
  // Confirmation budget for the primary start; 0 runs the full tier up
  // front (no confirmation shortcut). The default caps the incumbent at 400
  // evaluations: COBYLA's late tail polishes fractional digits the integer
  // exchange polish repairs anyway, and on the 40-job tab08 shape this cuts
  // per-cycle evaluations ~1.5x while holding lost utility within 4e-3 of
  // the static-tier driver.
  int racing_confirm_evals = 400;
  // Re-run the primary at its full tier when the confirmation misses the
  // stability bar. Off by default: the truncated incumbent still anchors the
  // race in shift cycles, where the scout arms cover basin changes -- paying
  // the full tier again costs more than the whole racing saving.
  bool racing_confirm_rerun = false;
  // Stopping-rule confidence for pruning scout arms.
  double racing_delta = 0.05;

  // --- Degradation ladder (robustness under faults) ------------------------
  // Wall-clock budget for one Stage-2 solve; 0 disables (the default). On a
  // miss the cycle falls back to (1) the cross-cycle warm-start allocation
  // rescaled into current capacity, then (2) the capacity-proportional
  // heuristic -- the autoscaler always completes the cycle. Enabling the
  // deadline trades the bit-determinism contract for bounded decision
  // latency (which starts ran now depends on wall time).
  double solve_deadline_s = 0.0;
  // Forecast sanity guard: a forecast containing non-finite values, only
  // negative values, or values above this multiple of the largest recently
  // observed rate is replaced by the last observed value. <= 1 disables (the
  // default): early cycles have little observed history, so a legitimate
  // trained forecast can exceed any fixed multiple of it -- arming the guard
  // therefore perturbs fault-free runs and is an explicit opt-in (the chaos
  // bench arms it at 8).
  double forecast_max_jump = 0.0;
  // Legacy knob, kept for config-surface compatibility: per-job retry of
  // missed scale-ups moved from the policy's FastReact into the reconciling
  // actuator (src/actuate/reconciler.h, SimConfig::reconciler). The engines
  // fold the reconciler's repair count into the policy's actuation_retries
  // telemetry so solver CSVs stay comparable. This field is validated but
  // otherwise unread.
  double actuation_retry_backoff_s = 20.0;
  // Off-cadence re-solve when cluster capacity shrinks by more than this
  // fraction since the last solve (node crash/drain). <= 0 disables.
  double capacity_resolve_threshold = 0.05;

  uint64_t seed = 7;

  // Observability: wall-clock spans for the decision cycle (forecast ->
  // sloppified solve -> integerize/shrink, plus per-start spans inside the
  // multi-start driver) are recorded into this session when set. Measurement
  // only -- decisions are bit-identical with tracing on or off.
  TraceSession trace;
  // Decision audit log (src/obs/slo.h): when set, every Decide() appends one
  // DecisionAuditRecord (forecast totals, ladder rung, per-cycle telemetry
  // deltas) under `audit_label`. Deterministic fields only, and recording
  // never perturbs the decision.
  AuditLog* audit = nullptr;
  std::string audit_label;
};

// Empty string when `config` is well formed; otherwise a description of the
// first problem found. FaroAutoscaler's constructor throws invalid_argument
// with this message instead of silently misbehaving.
std::string ValidateFaroConfig(const FaroConfig& config);

class FaroAutoscaler : public AutoscalingPolicy {
 public:
  // The predictor is shared across jobs (histories are passed per call); it
  // must outlive the autoscaler. Pass nullptr to use a built-in damped
  // average (prediction still "on", just weaker -- ablation arms use
  // enable_prediction=false instead).
  FaroAutoscaler(FaroConfig config, std::shared_ptr<WorkloadPredictor> predictor = nullptr);

  std::string name() const override;
  double decision_interval_s() const override { return config_.decision_interval_s; }

  ScalingAction Decide(double now_s, const std::vector<JobSpec>& job_specs,
                       const std::vector<JobMetrics>& metrics,
                       const ClusterResources& resources) override;

  std::optional<ScalingAction> FastReact(double now_s, const std::vector<JobSpec>& job_specs,
                                         const std::vector<JobMetrics>& metrics,
                                         const ClusterResources& resources) override;

  const FaroConfig& config() const { return config_; }

  // Accumulated Stage-2 solver telemetry (starts, evaluations, wall-clock).
  SolverTelemetry solver_telemetry() const override { return telemetry_; }

 private:
  // Stage 1: per-job predicted loads over the post-cold-start window (req/s).
  std::vector<std::vector<double>> PredictLoads(const std::vector<JobSpec>& job_specs,
                                                const std::vector<JobMetrics>& metrics);

  // Stage 2 helpers. `solve_seed` is the cycle seed (derived from the config
  // seed and the decision counter); every random choice in a solve -- the
  // hierarchical grouping shuffle, per-start jitter -- is a pure function of
  // it, so solves are bit-identical at any thread count.
  ScalingAction SolveFlat(const std::vector<JobSpec>& job_specs,
                          const std::vector<JobMetrics>& metrics,
                          const std::vector<std::vector<double>>& loads,
                          const ClusterResources& resources, uint64_t solve_seed);
  ScalingAction SolveHierarchical(const std::vector<JobSpec>& job_specs,
                                  const std::vector<JobMetrics>& metrics,
                                  const std::vector<std::vector<double>>& loads,
                                  const ClusterResources& resources, uint64_t solve_seed);

  // Rounds the continuous solution to integers >= 1 within capacity, greedily
  // trimming the replicas whose removal costs the least predicted utility.
  std::vector<uint32_t> Integerize(const ClusterObjective& objective,
                                   std::span<const double> solution,
                                   const ClusterResources& resources) const;

  // Integer polish after rounding: greedily adds replicas into free capacity
  // and moves single replicas between jobs while either improves the
  // (relaxed) cluster objective. Repairs solver sloppiness at integer
  // granularity; on the precise plateau objective it is as blind as the
  // solver, so the relaxation ablation is unaffected.
  void ExchangePolish(const ClusterObjective& objective, std::vector<uint32_t>& replicas,
                      std::span<const double> drop_rates,
                      const ClusterResources& resources) const;

  // Stage 3: shrink utility-1 jobs while the cluster objective is unchanged.
  void Shrink(const ClusterObjective& objective, std::vector<uint32_t>& replicas,
              std::span<const double> drop_rates) const;

  ClusterObjectiveConfig MakeObjectiveConfig() const;

  FaroConfig config_;
  std::shared_ptr<WorkloadPredictor> predictor_;
  // Cross-cycle warm-start cache: the previous continuous solution, reused as
  // a start while the job-set signature matches (invalidation rule: signature
  // change => drop). The hierarchical path caches the group-level solution
  // under its own signature, so flat and grouped solves never cross-feed.
  struct WarmStart {
    uint64_t signature = 0;
    std::vector<double> x;
    bool valid = false;
  };
  WarmStart warm_;
  uint64_t decision_cycles_ = 0;
  SolverTelemetry telemetry_;
  // Per-job time of the last reactive upscale: one additive step per trigger
  // period, so the 10 s tick does not fire continuously through a cold start.
  std::vector<double> last_reactive_up_;
  // --- degradation-ladder state --------------------------------------------
  // Wall-clock deadline of the cycle currently being solved (set per Decide
  // when solve_deadline_s > 0; SolveFlat and the hierarchical group solves
  // all check the same deadline).
  bool cycle_deadline_enabled_ = false;
  std::chrono::steady_clock::time_point cycle_deadline_{};
  // Solve-time capacity, for the capacity-change trigger in FastReact.
  double last_solve_cpu_ = 0.0;
};

}  // namespace faro

#endif  // SRC_CORE_AUTOSCALER_H_
