#include "src/core/pipeline.h"

#include <cmath>

#include "src/queueing/mdc.h"

namespace faro {
namespace {

double TotalProcessingTime(const PipelineSpec& pipeline) {
  double total = 0.0;
  for (const PipelineStage& stage : pipeline.stages) {
    total += stage.processing_time;
  }
  return total;
}

}  // namespace

std::vector<JobSpec> SplitPipelineSlo(const PipelineSpec& pipeline) {
  std::vector<JobSpec> specs;
  const double total = TotalProcessingTime(pipeline);
  for (const PipelineStage& stage : pipeline.stages) {
    JobSpec spec;
    spec.name = pipeline.name + "/" + stage.name;
    spec.slo = total > 0.0 ? pipeline.slo * stage.processing_time / total
                           : pipeline.slo / static_cast<double>(pipeline.stages.size());
    spec.percentile = pipeline.percentile;
    spec.processing_time = stage.processing_time;
    spec.priority = pipeline.priority;
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<double> StageArrivalRates(const PipelineSpec& pipeline, double lambda) {
  std::vector<double> rates;
  double rate = lambda;
  for (const PipelineStage& stage : pipeline.stages) {
    rate *= stage.fanout;
    rates.push_back(rate);
  }
  return rates;
}

double PipelineLatencyEstimate(const PipelineSpec& pipeline,
                               std::span<const double> stage_replicas, double lambda,
                               double rho_max) {
  const std::vector<double> rates = StageArrivalRates(pipeline, lambda);
  double total = 0.0;
  for (size_t i = 0; i < pipeline.stages.size() && i < stage_replicas.size(); ++i) {
    total += RelaxedMdcLatency(stage_replicas[i], rates[i],
                               pipeline.stages[i].processing_time, pipeline.percentile,
                               rho_max);
  }
  return total;
}

bool PipelineSloFeasible(const PipelineSpec& pipeline) {
  const double total = TotalProcessingTime(pipeline);
  if (total <= 0.0 || pipeline.stages.empty()) {
    return false;
  }
  for (const PipelineStage& stage : pipeline.stages) {
    const double sub_slo = pipeline.slo * stage.processing_time / total;
    if (sub_slo < stage.processing_time) {
      return false;  // equivalent to pipeline.slo < total, per stage
    }
  }
  return true;
}

}  // namespace faro
