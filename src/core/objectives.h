// Cluster objective functions (§3.2) and their precise / relaxed optimisation
// forms (§3.4).
//
// Given per-job predicted loads, processing times, SLOs and priorities, this
// module builds the nonlinear program the autoscaler solves: decision
// variables are continuous replica counts x_i (and, for the Penalty*
// variants, drop rates d_i), the objective is one of
//
//   Faro-Sum            maximize sum_i pi_i U_i
//   Faro-Fair           minimize (max_i U_i - min_i U_i)
//   Faro-FairSum        maximize sum_i pi_i U_i - gamma (max U - min U)
//   Faro-PenaltySum     maximize sum_i pi_i EU_i
//   Faro-PenaltyFairSum maximize sum_i pi_i EU_i - gamma (max EU - min EU)
//
// subject to per-job minimums and cluster vCPU / memory capacity (Eq. 3).
// In *precise* mode job utility uses the step function and the hard M/D/c
// estimate (infinite latency past saturation) -- the plateau-ridden surface
// of Fig. 5. In *relaxed* mode it uses the inverse utility (Eq. 1), the
// rho_max-capped M/D/c latency, and the piecewise-linear penalty multiplier,
// which is what Faro actually solves.

#ifndef SRC_CORE_OBJECTIVES_H_
#define SRC_CORE_OBJECTIVES_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/core/utility.h"
#include "src/optim/problem.h"
#include "src/queueing/mdc.h"

namespace faro {

// Static description of one inference job (one pre-trained model).
struct JobSpec {
  std::string name;
  double slo = 0.720;             // latency target, seconds
  double percentile = 0.99;       // SLO percentile k
  double processing_time = 0.180; // per-request service time p, seconds
  double priority = 1.0;          // pi_i
  double cpu_per_replica = 1.0;   // vCPUs per replica
  double mem_per_replica = 1.0;   // GB per replica
  // When this spec describes an *aggregate* of several jobs (hierarchical
  // optimisation, §3.4), the aggregate runs as this many independent router
  // queues: the latency model divides both the arrival rate and the replica
  // count by it, so the solve does not credit pooling efficiency the split
  // allocation cannot realise.
  double parallel_queues = 1.0;
};

// Total cluster capacity (ResMax in Table 4).
struct ClusterResources {
  double cpu = 0.0;
  double mem = 0.0;
};

enum class ObjectiveKind : uint8_t {
  kSum,
  kFair,
  kFairSum,
  kPenaltySum,
  kPenaltyFairSum,
};

// True for the variants whose optimisation includes drop-rate variables.
bool UsesDropRates(ObjectiveKind kind);

// Human-readable name ("Faro-FairSum" etc.) for reports.
std::string ObjectiveKindName(ObjectiveKind kind);

enum class LatencyModelKind : uint8_t {
  kMdcRelaxed,   // rho_max-capped M/D/c (the Faro default)
  kMdcPrecise,   // hard M/D/c, infinite past saturation (precise mode)
  kUpperBound,   // pessimistic burst estimator (ablation)
};

struct ClusterObjectiveConfig {
  ObjectiveKind kind = ObjectiveKind::kSum;
  // Relaxed utility / latency / penalty vs the precise step formulation.
  bool relaxed = true;
  LatencyModelKind latency_model = LatencyModelKind::kMdcRelaxed;
  double utility_alpha = kDefaultUtilityAlpha;
  double rho_max = kDefaultRhoMax;
  // Fairness weight gamma; <= 0 means "auto": the job count, which normalises
  // the sum and fairness terms against each other (§3.2 recommendation).
  double gamma = -1.0;
  // Upper bound on any single job's replica count (solver box bound).
  double max_replicas_per_job = 1e4;
};

// One job's optimisation context: its spec plus the predicted arrival rates
// (req/s) over the upcoming decision window (§4.1).
struct JobContext {
  JobSpec spec;
  std::vector<double> predicted_load;
};

// Builds and evaluates cluster objectives. The decision vector layout is
//   v[0 .. J-1]     replica counts (continuous, >= 1)
//   v[J .. 2J-1]    drop rates in [0, 1]   (only for Penalty* objectives)
class ClusterObjective {
 public:
  ClusterObjective(std::vector<JobContext> jobs, ClusterResources resources,
                   ClusterObjectiveConfig config);

  size_t num_jobs() const { return jobs_.size(); }
  size_t dimension() const;
  const ClusterObjectiveConfig& config() const { return config_; }
  const std::vector<JobContext>& jobs() const { return jobs_; }

  // Average utility of job i over its prediction window at `replicas`
  // (continuous) with fraction `drop_rate` of load shed. Uses the configured
  // precision mode.
  double JobUtility(size_t i, double replicas, double drop_rate = 0.0) const;

  // Effective utility EU_i = phi(d_i) * U_i (Eq. 2).
  double JobEffectiveUtility(size_t i, double replicas, double drop_rate) const;

  // Cluster objective value (higher is better) at the decision vector.
  double Evaluate(std::span<const double> v) const;

  // The same surface packaged for the minimising solvers: objective is
  // -Evaluate, constraints are capacity (Eq. 3) and box bounds.
  Problem BuildProblem() const;

  // A feasible, informative starting point: every job at 1 replica, zero
  // drops (the paper starts deployments at 1 replica per job).
  std::vector<double> InitialPoint() const;

  // Total vCPU / memory consumed by the replica allocation in `v`.
  double CpuUsage(std::span<const double> v) const;
  double MemUsage(std::span<const double> v) const;

 private:
  double LatencyEstimate(size_t i, double lambda, double replicas) const;

  std::vector<JobContext> jobs_;
  ClusterResources resources_;
  ClusterObjectiveConfig config_;
};

}  // namespace faro

#endif  // SRC_CORE_OBJECTIVES_H_
