#include "src/core/admission.h"

#include <algorithm>

#include "src/queueing/mdc.h"

namespace faro {

uint32_t AdmissionController::PeakReplicas(const AdmissionRequest& request) {
  return RequiredReplicasMdc(request.peak_arrival_rate, request.spec.processing_time,
                             request.spec.slo, request.spec.percentile);
}

AdmissionDecision AdmissionController::Check(const AdmissionRequest& candidate) const {
  AdmissionDecision decision;
  if (candidate.spec.slo < candidate.spec.processing_time) {
    decision.reason = "SLO below one service time: unsatisfiable at any scale";
    return decision;
  }
  double cpu = 0.0;
  double mem = 0.0;
  for (const AdmissionRequest& job : admitted_) {
    const double replicas = PeakReplicas(job);
    cpu += replicas * job.spec.cpu_per_replica;
    mem += replicas * job.spec.mem_per_replica;
  }
  const double candidate_replicas = PeakReplicas(candidate);
  cpu += candidate_replicas * candidate.spec.cpu_per_replica;
  mem += candidate_replicas * candidate.spec.mem_per_replica;
  decision.peak_demand_cpu = cpu;
  decision.peak_demand_mem = mem;
  if (cpu > resources_.cpu + 1e-9) {
    decision.reason = "peak vCPU demand exceeds cluster capacity";
    return decision;
  }
  if (mem > resources_.mem + 1e-9) {
    decision.reason = "peak memory demand exceeds cluster capacity";
    return decision;
  }
  decision.admitted = true;
  decision.reason = "fits at simultaneous peak";
  return decision;
}

AdmissionDecision AdmissionController::Admit(const AdmissionRequest& candidate) {
  AdmissionDecision decision = Check(candidate);
  if (decision.admitted) {
    admitted_.push_back(candidate);
  }
  return decision;
}

bool AdmissionController::Release(const std::string& name) {
  const auto it = std::find_if(admitted_.begin(), admitted_.end(),
                               [&](const AdmissionRequest& r) { return r.spec.name == name; });
  if (it == admitted_.end()) {
    return false;
  }
  admitted_.erase(it);
  return true;
}

}  // namespace faro
