// Per-job utility functions (§3.1).
//
// Faro distills a developer-facing SLO -- a latency target s at percentile k
// -- into a utility in [0, 1]. The *original* utility is a step function
// (1 when the k-th percentile latency meets the target, else 0); because its
// plateaus defeat optimisation solvers, Faro also derives the *relaxed*
// utility U(l, s) = min((s/l)^alpha, 1), which approaches the step function
// as alpha grows (Fig. 4a) and lower-bounds the SLO satisfaction rate
// (Fig. 4b), making it a safe pessimistic proxy.

#ifndef SRC_CORE_UTILITY_H_
#define SRC_CORE_UTILITY_H_

#include <algorithm>
#include <cmath>

namespace faro {

// Sharpness of the relaxed utility. Larger values hug the step function more
// closely but flatten the gradient far from the target; 4 keeps a useful
// slope across the whole overload range while staying within a few percent of
// the step below the target.
inline constexpr double kDefaultUtilityAlpha = 4.0;

// U_original: 1 if the latency meets the SLO target, else 0.
inline double StepUtility(double latency, double slo) {
  return latency <= slo ? 1.0 : 0.0;
}

// Relaxed utility U(l, s) = min((s/l)^alpha, 1) (Eq. 1). Nonpositive latency
// means "no requests observed" and maps to full utility; infinite latency
// maps to 0.
inline double RelaxedUtility(double latency, double slo, double alpha = kDefaultUtilityAlpha) {
  if (latency <= 0.0) {
    return 1.0;
  }
  if (std::isinf(latency)) {
    return 0.0;
  }
  const double ratio = slo / latency;
  if (ratio >= 1.0) {
    return 1.0;
  }
  return std::pow(ratio, alpha);
}

}  // namespace faro

#endif  // SRC_CORE_UTILITY_H_
