// Budget-limited capacity (§7 "Beyond On-Premises Clusters"): "a common
// example is deployment on a public cloud wherein developers prefer a VM
// instance type but have a budget limit ($ per hour) ... Faro is also
// applicable in these scenarios." The constrained-cluster abstraction stays
// the same; only where ResMax comes from changes.

#ifndef SRC_CORE_BUDGET_H_
#define SRC_CORE_BUDGET_H_

#include <span>
#include <string>

#include "src/core/objectives.h"

namespace faro {

// A cloud VM shape.
struct InstanceType {
  std::string name;
  double vcpus = 0.0;
  double mem_gb = 0.0;
  double dollars_per_hour = 0.0;
};

// Capacity a budget buys with a single instance type (whole instances).
ClusterResources CapacityForBudget(double dollars_per_hour, const InstanceType& instance);

// Number of instances the budget buys.
uint32_t InstancesForBudget(double dollars_per_hour, const InstanceType& instance);

// The cheapest instance type (by $/vCPU-hour) that can reach at least the
// required vCPU and memory within the budget; returns nullptr if none fits.
const InstanceType* CheapestFeasible(std::span<const InstanceType> catalog,
                                     double dollars_per_hour, double required_cpu,
                                     double required_mem);

}  // namespace faro

#endif  // SRC_CORE_BUDGET_H_
