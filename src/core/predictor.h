// Workload-predictor interface (§3.5) plus simple reference predictors.
//
// Faro's production predictor is the probabilistic N-HiTS model in
// src/forecast/ (which implements this interface); the simple predictors
// here serve as ablation arms ("no prediction" uses the last observed rate)
// and as dependency-light defaults.

#ifndef SRC_CORE_PREDICTOR_H_
#define SRC_CORE_PREDICTOR_H_

#include <span>
#include <vector>

namespace faro {

class WorkloadPredictor {
 public:
  virtual ~WorkloadPredictor() = default;

  // Predicts job `job`'s next `horizon` per-step arrival rates given its
  // trailing `history` (req/s per step, oldest first). `quantile` selects the
  // level of the predictive distribution: 0.5 is the median trajectory;
  // higher values give the pessimistic envelopes probabilistic prediction
  // exists to supply (§3.5.2). Point predictors ignore `quantile`; stateless
  // predictors ignore `job` (stateful ones keep one trained model per job).
  virtual std::vector<double> PredictQuantile(size_t job, std::span<const double> history,
                                              size_t horizon, double quantile) = 0;
};

// Flat-lines the most recent observation across the horizon. This is what a
// purely reactive autoscaler implicitly assumes.
class LastValuePredictor : public WorkloadPredictor {
 public:
  std::vector<double> PredictQuantile(size_t job, std::span<const double> history,
                                      size_t horizon, double quantile) override;
};

// Exponentially damped average of the history, flat-lined over the horizon;
// the classic "smoothed" point predictor (cf. the damped average in Fig. 8b).
class DampedAveragePredictor : public WorkloadPredictor {
 public:
  explicit DampedAveragePredictor(double damping = 0.6) : damping_(damping) {}
  std::vector<double> PredictQuantile(size_t job, std::span<const double> history,
                                      size_t horizon, double quantile) override;

 private:
  double damping_;
};

// Linear regression over the recent history, extrapolated across the horizon
// -- the predictor class Swayam uses. The quantile is served from the
// regression's residual spread (a cheap, honest probabilistic envelope).
class LinearTrendPredictor : public WorkloadPredictor {
 public:
  // `window`: how many trailing observations the regression fits (0 = all).
  explicit LinearTrendPredictor(size_t window = 15) : window_(window) {}
  std::vector<double> PredictQuantile(size_t job, std::span<const double> history,
                                      size_t horizon, double quantile) override;

 private:
  size_t window_;
};

}  // namespace faro

#endif  // SRC_CORE_PREDICTOR_H_
