#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace faro {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double PercentileSorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  if (sorted.size() == 1) {
    return sorted[0];
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  // Infinite samples (dropped requests carry infinite latency) would turn
  // inf * 0 into NaN; resolve the interpolation without arithmetic on them.
  if (!std::isfinite(sorted[lo]) || !std::isfinite(sorted[hi])) {
    return frac > 0.0 ? sorted[hi] : sorted[lo];
  }
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Percentile(std::span<const double> values, double q) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return PercentileSorted(copy, q);
}

double Rmse(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || a.size() != b.size()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

double Mae(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || a.size() != b.size()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += std::abs(a[i] - b[i]);
  }
  return sum / static_cast<double>(a.size());
}

double KendallTauDistance(std::span<const double> a, std::span<const double> b) {
  const size_t n = a.size();
  if (n < 2 || b.size() != n) {
    return 0.0;
  }
  double discordant = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      ++pairs;
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      const double product = da * db;
      if (product < 0.0) {
        discordant += 1.0;
      } else if (product == 0.0 && (da != 0.0 || db != 0.0)) {
        discordant += 0.5;
      }
    }
  }
  return discordant / static_cast<double>(pairs);
}

double Mean(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double StdDev(std::span<const double> values) {
  if (values.size() < 2) {
    return 0.0;
  }
  const double mu = Mean(values);
  double sum = 0.0;
  for (const double v : values) {
    sum += (v - mu) * (v - mu);
  }
  return std::sqrt(sum / static_cast<double>(values.size() - 1));
}

}  // namespace faro
