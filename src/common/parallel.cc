#include "src/common/parallel.h"

#include <algorithm>
#include <cstdlib>

namespace faro {
namespace {

// Workers run jobs through the same claiming loop as the submitting thread;
// this flag routes any ParallelFor they issue themselves to the inline path
// so a job can never deadlock waiting for the pool it occupies.
thread_local bool t_inside_pool_worker = false;

// Pool a ParallelFor on this thread is currently submitted to; nested
// submissions to the same pool run inline instead of self-deadlocking.
thread_local const void* t_submitting_pool = nullptr;

}  // namespace

size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t DefaultThreadCount() {
  if (const char* env = std::getenv("FARO_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed >= 1) {
      return static_cast<size_t>(parsed);
    }
  }
  return HardwareThreads();
}

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = DefaultThreadCount();
  }
  workers_.reserve(threads - 1);
  for (size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::RunIndices() {
  const std::function<void(size_t)>* job = job_;
  const size_t n = job_n_;
  for (;;) {
    const size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) {
      return;
    }
    try {
      (*job)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
      // Drain the remaining indices so the job still terminates.
      next_index_.store(n, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::WorkerLoop() {
  t_inside_pool_worker = true;
  uint64_t seen_generation = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    work_cv_.wait(lock,
                  [&] { return stop_ || generation_ != seen_generation; });
    if (stop_) {
      return;
    }
    seen_generation = generation_;
    if (job_ == nullptr || workers_in_job_ >= job_worker_cap_) {
      continue;  // job already finished or fully staffed
    }
    ++workers_in_job_;
    lock.unlock();
    RunIndices();
    lock.lock();
    --workers_in_job_;
    if (workers_in_job_ == 0) {
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             size_t max_parallelism) {
  if (n == 0) {
    return;
  }
  if (max_parallelism == 0) {
    max_parallelism = thread_count();
  }
  if (n == 1 || max_parallelism == 1 || workers_.empty() ||
      t_inside_pool_worker || t_submitting_pool == this) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  // One job at a time; concurrent submitters from other threads queue here.
  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  t_submitting_pool = this;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_n_ = n;
    // The submitting thread always participates; workers fill the rest, and
    // more than one claim per index is never needed.
    job_worker_cap_ = std::min({workers_.size(), max_parallelism - 1, n - 1});
    next_index_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();

  RunIndices();

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return workers_in_job_ == 0; });
  job_ = nullptr;  // late wakers see a finished generation and skip it
  t_submitting_pool = nullptr;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace faro
