#include "src/common/series.h"

#include <algorithm>

namespace faro {

double Series::MinValue() const {
  if (values_.empty()) {
    return 0.0;
  }
  return *std::min_element(values_.begin(), values_.end());
}

double Series::MaxValue() const {
  if (values_.empty()) {
    return 0.0;
  }
  return *std::max_element(values_.begin(), values_.end());
}

double Series::MeanValue() const {
  if (values_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const double v : values_) {
    sum += v;
  }
  return sum / static_cast<double>(values_.size());
}

Series Series::RescaledTo(double lo, double hi) const {
  const double old_lo = MinValue();
  const double old_hi = MaxValue();
  std::vector<double> out(values_.size());
  if (old_hi - old_lo <= 0.0) {
    std::fill(out.begin(), out.end(), lo);
    return Series(std::move(out));
  }
  const double scale = (hi - lo) / (old_hi - old_lo);
  for (size_t i = 0; i < values_.size(); ++i) {
    out[i] = lo + (values_[i] - old_lo) * scale;
  }
  return Series(std::move(out));
}

Series Series::WindowAveraged(size_t window) const {
  if (window <= 1) {
    return *this;
  }
  const size_t n = values_.size() / window;
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < window; ++j) {
      sum += values_[i * window + j];
    }
    out[i] = sum / static_cast<double>(window);
  }
  return Series(std::move(out));
}

Series Series::Slice(size_t begin, size_t end) const {
  begin = std::min(begin, values_.size());
  end = std::clamp(end, begin, values_.size());
  return Series(std::vector<double>(values_.begin() + static_cast<ptrdiff_t>(begin),
                                    values_.begin() + static_cast<ptrdiff_t>(end)));
}

Series Series::ClampedMin(double floor) const {
  std::vector<double> out(values_);
  for (double& v : out) {
    v = std::max(v, floor);
  }
  return Series(std::move(out));
}

}  // namespace faro
