// Deterministic data-parallel execution for the experiment harness and
// benches.
//
// The pool runs `fn(i)` for every index in [0, n) across a fixed set of
// worker threads (plus the calling thread). Work is claimed from a shared
// atomic counter, so scheduling is nondeterministic -- but results are only
// ever written at their own index, and every consumer in this repository
// aggregates in index order afterwards. Combined with per-task seeding
// (each simulator trial owns its RNG stream), parallel runs are bit-identical
// to sequential runs; tests/parallel_test.cc and the harness determinism test
// enforce this.
//
// Thread count resolution, in priority order:
//   1. an explicit `max_parallelism` argument (1 forces the inline path),
//   2. the FARO_THREADS environment variable (clamped to >= 1),
//   3. std::thread::hardware_concurrency().

#ifndef SRC_COMMON_PARALLEL_H_
#define SRC_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace faro {

// Worker count from std::thread::hardware_concurrency(), at least 1.
size_t HardwareThreads();

// FARO_THREADS environment override if set and >= 1, else HardwareThreads().
size_t DefaultThreadCount();

class ThreadPool {
 public:
  // `threads` is the total parallelism (calling thread included); 0 means
  // DefaultThreadCount(). A pool of size 1 spawns no workers and runs
  // everything inline.
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total parallelism this pool can apply (workers + calling thread).
  size_t thread_count() const { return workers_.size() + 1; }

  // Runs fn(i) for every i in [0, n); returns when all calls finished.
  // `max_parallelism` caps the threads applied to this call (0 = pool size;
  // 1 = inline in index order on the calling thread). The first exception
  // thrown by fn is rethrown here after the remaining workers drain.
  // Calls from inside a pool worker run inline (no nested fan-out).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   size_t max_parallelism = 0);

  // Process-wide pool of DefaultThreadCount() threads, created on first use.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();
  // Claims indices until the job is exhausted; records the first exception.
  void RunIndices();

  std::mutex submit_mutex_;  // serialises ParallelFor submitters
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  bool stop_ = false;

  // Current job, guarded by mutex_ (next_index_ is claimed lock-free).
  uint64_t generation_ = 0;
  const std::function<void(size_t)>* job_ = nullptr;
  size_t job_n_ = 0;
  size_t job_worker_cap_ = 0;  // extra workers allowed to join (main excluded)
  size_t workers_in_job_ = 0;
  std::atomic<size_t> next_index_{0};
  std::exception_ptr first_error_;
};

// ParallelFor on the shared pool.
inline void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                        size_t max_parallelism = 0) {
  ThreadPool::Shared().ParallelFor(n, fn, max_parallelism);
}

// Maps i -> fn(i) for i in [0, n), returning results in index order
// regardless of execution order.
template <typename Fn>
auto ParallelMap(size_t n, Fn&& fn, size_t max_parallelism = 0)
    -> std::vector<std::invoke_result_t<Fn&, size_t>> {
  using Result = std::invoke_result_t<Fn&, size_t>;
  std::vector<Result> results(n);
  ParallelFor(
      n, [&](size_t i) { results[i] = fn(i); }, max_parallelism);
  return results;
}

}  // namespace faro

#endif  // SRC_COMMON_PARALLEL_H_
