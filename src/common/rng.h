// Deterministic pseudo-random number generation for simulation and solvers.
//
// All stochastic components in this repository (workload synthesis, the
// discrete-event simulator, Differential Evolution, neural-network weight
// initialisation, probabilistic forecasting) draw from this generator so that
// every experiment is reproducible from a single 64-bit seed.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <cmath>
#include <vector>

namespace faro {

// xoshiro256++ generator seeded via SplitMix64. Small, fast, and of far higher
// quality than std::minstd; we avoid std::mt19937 so the stream is identical
// across standard libraries.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  // Re-seeds the generator. Distinct seeds give statistically independent
  // streams (SplitMix64 scrambles the seed into all 256 bits of state).
  void Seed(uint64_t seed);

  // Uniform 64-bit integer.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  // Standard normal via Box-Muller (cached second value).
  double Normal();

  // Normal with the given mean and standard deviation (sigma >= 0).
  double Normal(double mean, double sigma) { return mean + sigma * Normal(); }

  // Exponential with the given rate (inter-arrival sampling). Requires rate > 0.
  double Exponential(double rate);

  // Poisson-distributed count with the given mean. Uses Knuth's method for
  // small means and normal approximation (rounded, clamped at 0) for large.
  uint64_t Poisson(double mean);

  // Splits off an independent child stream; useful to give each simulated job
  // or solver population its own generator without cross-coupling.
  Rng Split();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

// Fisher-Yates shuffle of indices [0, n); used by hierarchical grouping.
std::vector<size_t> ShuffledIndices(size_t n, Rng& rng);

// Mixes `value` into `seed` (SplitMix64 finaliser): derives independent child
// seeds -- per solve cycle, per solver start, per group -- from one root seed
// without any shared RNG state between concurrent tasks.
uint64_t HashCombine(uint64_t seed, uint64_t value);

}  // namespace faro

#endif  // SRC_COMMON_RNG_H_
