// Summary statistics used throughout the simulator, forecaster, and benches.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace faro {

// Streaming mean / variance (Welford) with min/max tracking.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exact percentile of a sample using the nearest-rank-with-interpolation
// definition (linear interpolation between closest ranks, as numpy's default).
// `q` is in [0, 1]. Returns 0 for an empty sample. Does not require the input
// to be sorted; works on a copy.
double Percentile(std::span<const double> values, double q);

// Percentile assuming `sorted` is already ascending (no copy).
double PercentileSorted(std::span<const double> sorted, double q);

// Root-mean-square error between two equal-length series.
double Rmse(std::span<const double> a, std::span<const double> b);

// Mean absolute error between two equal-length series.
double Mae(std::span<const double> a, std::span<const double> b);

// Kendall rank-correlation *distance* in [0, 1]: 0 = identical rankings,
// 1 = completely reversed. Matches the paper's Table 7 usage ("0 indicates
// identical, 1 indicates complete divergence"). Inputs are two scorings of the
// same items; ties contribute half a discordance.
double KendallTauDistance(std::span<const double> a, std::span<const double> b);

// Arithmetic mean; 0 for empty input.
double Mean(std::span<const double> values);

// Sample standard deviation; 0 for fewer than two values.
double StdDev(std::span<const double> values);

}  // namespace faro

#endif  // SRC_COMMON_STATS_H_
