// A uniformly-sampled time series (one value per fixed time step) plus the
// transformations the evaluation pipeline applies to workload traces:
// rescaling into a target rate range, window averaging (the paper averages
// 4-minute windows to shorten cluster experiments), and train/eval splits.

#ifndef SRC_COMMON_SERIES_H_
#define SRC_COMMON_SERIES_H_

#include <cstddef>
#include <span>
#include <vector>

namespace faro {

class Series {
 public:
  Series() = default;
  explicit Series(std::vector<double> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double operator[](size_t i) const { return values_[i]; }
  double& operator[](size_t i) { return values_[i]; }
  std::span<const double> values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  double MinValue() const;
  double MaxValue() const;
  double MeanValue() const;

  // Linearly rescales values so the series spans [lo, hi]. A constant series
  // maps to lo. Used to inject "between 1-1600 requests per minute" (§6).
  Series RescaledTo(double lo, double hi) const;

  // Averages consecutive windows of `window` samples (truncating a ragged
  // tail), compressing the timeline while retaining temporal patterns (§6).
  Series WindowAveraged(size_t window) const;

  // Sub-series [begin, end).
  Series Slice(size_t begin, size_t end) const;

  // Clamps every value to at least `floor` (rates may not be negative).
  Series ClampedMin(double floor) const;

 private:
  std::vector<double> values_;
};

}  // namespace faro

#endif  // SRC_COMMON_SERIES_H_
