// Struct-of-arrays object pools with free-list recycling.
//
// The discrete-event simulator used to keep every queued request in a
// per-job std::deque<PendingRequest>, which scatters the request lifecycle
// (arrive -> queue -> service -> depart/drop) across chunked heap nodes. At
// hyperscale (thousands of jobs, millions of requests per simulated day) the
// allocator traffic and pointer chasing dominate the event loop. This pool
// keeps all per-request state in parallel flat arrays indexed by a 32-bit
// slot id; released slots go onto a LIFO free list, so steady-state
// simulation performs zero allocations per request.
//
// RequestQueue is the companion intrusive FIFO: each job's router queue is a
// (head, tail, size) triple whose links live inside the pool's `next` array.
// Push/Pop are O(1) and touch only the pool arrays.

#ifndef SRC_COMMON_POOL_H_
#define SRC_COMMON_POOL_H_

#include <cstdint>
#include <vector>

namespace faro {

// Pool of queued-request records in struct-of-arrays layout. Slot ids are
// dense indices into the parallel arrays; kNilRequest terminates FIFO chains.
inline constexpr uint32_t kNilRequest = 0xffffffffu;

class RequestPool {
 public:
  // Pre-sizes the arrays; the pool still grows on demand past the hint.
  explicit RequestPool(size_t capacity_hint = 0) {
    arrival_time_.reserve(capacity_hint);
    next_.reserve(capacity_hint);
    free_.reserve(capacity_hint);
  }

  // Takes a slot off the free list (or grows the arrays) and stamps the
  // request's arrival time. The slot's link starts at kNilRequest.
  uint32_t Acquire(double arrival_time) {
    uint32_t id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
      arrival_time_[id] = arrival_time;
      next_[id] = kNilRequest;
    } else {
      id = static_cast<uint32_t>(arrival_time_.size());
      arrival_time_.push_back(arrival_time);
      next_.push_back(kNilRequest);
    }
    ++live_;
    return id;
  }

  // Returns the slot to the free list. The caller must have unlinked it.
  void Release(uint32_t id) {
    free_.push_back(id);
    --live_;
  }

  double arrival_time(uint32_t id) const { return arrival_time_[id]; }
  uint32_t next(uint32_t id) const { return next_[id]; }
  void set_next(uint32_t id, uint32_t next) { next_[id] = next; }

  // Slots currently acquired (for tests and leak checks).
  size_t live() const { return live_; }
  // High-water slot count ever allocated.
  size_t capacity() const { return arrival_time_.size(); }

 private:
  std::vector<double> arrival_time_;
  std::vector<uint32_t> next_;
  std::vector<uint32_t> free_;  // LIFO recycling keeps hot slots cache-warm
  size_t live_ = 0;
};

// Intrusive FIFO over RequestPool slots. Plain aggregate so JobState can hold
// one by value; all operations go through the owning pool's link array.
struct RequestQueue {
  uint32_t head = kNilRequest;
  uint32_t tail = kNilRequest;
  uint32_t size = 0;

  bool empty() const { return size == 0; }

  void Push(RequestPool& pool, uint32_t id) {
    if (tail == kNilRequest) {
      head = id;
    } else {
      pool.set_next(tail, id);
    }
    tail = id;
    ++size;
  }

  // Pops the front slot id; the caller reads its fields and Release()s it.
  uint32_t Pop(RequestPool& pool) {
    const uint32_t id = head;
    head = pool.next(id);
    if (head == kNilRequest) {
      tail = kNilRequest;
    }
    --size;
    return id;
  }
};

}  // namespace faro

#endif  // SRC_COMMON_POOL_H_
