#include "src/common/rng.h"

#include <numbers>

namespace faro {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
  has_cached_normal_ = false;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random bits into the mantissa; result is in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is bounded away from zero to keep log finite.
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Exponential(double rate) {
  double u = 0.0;
  do {
    u = Uniform();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

uint64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    uint64_t count = 0;
    double product = Uniform();
    while (product > limit) {
      ++count;
      product *= Uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction is ample for workload
  // synthesis at the rates used here (hundreds per minute).
  const double sample = Normal(mean, std::sqrt(mean));
  if (sample < 0.5) {
    return 0;
  }
  return static_cast<uint64_t>(sample + 0.5);
}

Rng Rng::Split() {
  Rng child;
  child.Seed(NextU64());
  return child;
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  uint64_t x = seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
  return SplitMix64(x);
}

std::vector<size_t> ShuffledIndices(size_t n, Rng& rng) {
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) {
    indices[i] = i;
  }
  for (size_t i = n; i > 1; --i) {
    const size_t j = rng.UniformInt(i);
    std::swap(indices[i - 1], indices[j]);
  }
  return indices;
}

}  // namespace faro
