#include "src/queueing/cache.h"

#include <array>
#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/queueing/mdc.h"
#include "src/queueing/mmc.h"

namespace faro {
namespace {

// Process-wide accumulators, fed by each thread's cache destructor. Trivially
// destructible (plain atomics at namespace scope), so late-exiting threads --
// pool workers joined during static destruction -- can still flush safely.
std::atomic<uint64_t> g_hits{0};
std::atomic<uint64_t> g_misses{0};
std::atomic<uint64_t> g_evictions{0};

void PrintGlobalCacheStats() {
  const QueueingCacheStats totals = GetGlobalQueueingCacheStats();
  const uint64_t lookups = totals.hits + totals.misses;
  std::fprintf(stderr,
               "[faro] queueing cache: %llu lookups, %llu hits (%.1f%%), %llu misses, "
               "%llu evictions\n",
               static_cast<unsigned long long>(lookups),
               static_cast<unsigned long long>(totals.hits),
               lookups > 0 ? 100.0 * static_cast<double>(totals.hits) /
                                 static_cast<double>(lookups)
                           : 0.0,
               static_cast<unsigned long long>(totals.misses),
               static_cast<unsigned long long>(totals.evictions));
}

bool CacheStatsRequested() {
  static const bool requested = [] {
    const char* env = std::getenv("FARO_CACHE_STATS");
    const bool on = env != nullptr && env[0] != '\0' && env[0] != '0';
    if (on) {
      std::atexit(PrintGlobalCacheStats);
    }
    return on;
  }();
  return requested;
}

// splitmix64 finaliser: cheap, well-distributed 64-bit mixing.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t DoubleBits(double v) { return std::bit_cast<uint64_t>(v); }

// Open-addressed direct-mapped table: `Slots` entries, overwrite on
// collision. Keys are compared on the exact bit patterns of the inputs, so a
// hit can only ever return the value computed for those same inputs.
template <size_t Slots>
struct ErlangTable {
  static_assert((Slots & (Slots - 1)) == 0, "power-of-two slot count");
  struct Entry {
    uint64_t offered_bits = 0;
    uint32_t servers = 0;
    bool valid = false;
    double value = 0.0;
  };
  std::array<Entry, Slots> entries;
};

template <size_t Slots>
struct MdcTable {
  static_assert((Slots & (Slots - 1)) == 0, "power-of-two slot count");
  struct Entry {
    uint64_t lambda_bits = 0;
    uint64_t service_bits = 0;
    uint64_t q_bits = 0;
    uint32_t servers = 0;
    bool valid = false;
    double value = 0.0;
  };
  std::array<Entry, Slots> entries;
};

// Sized for the multi-start solve driver's working set: a large-problem
// cycle touches (jobs x prediction steps) arrival rates times the server
// counts probed by four scattered starts, which overflows a few-thousand-slot
// direct-mapped table and turns scout evaluations into evictions of the
// primary start's entries. 64k M/D/c slots (~3 MB/thread) hold a 100-job
// cycle with room to spare.
constexpr size_t kErlangSlots = 16384;
constexpr size_t kMdcSlots = 65536;

struct ThreadCache {
  ErlangTable<kErlangSlots> erlang;
  MdcTable<kMdcSlots> mdc;
  QueueingCacheStats stats;
  bool enabled = true;

  ~ThreadCache() {
    g_hits.fetch_add(stats.hits, std::memory_order_relaxed);
    g_misses.fetch_add(stats.misses, std::memory_order_relaxed);
    g_evictions.fetch_add(stats.evictions, std::memory_order_relaxed);
  }
};

ThreadCache& Cache() {
  // Arm the exit-time printer (if requested) before the first cache exists,
  // so main's thread-local flush precedes the atexit callback.
  CacheStatsRequested();
  thread_local ThreadCache cache;
  return cache;
}

}  // namespace

bool QueueingCacheEnabled() { return Cache().enabled; }

void SetQueueingCacheEnabled(bool enabled) { Cache().enabled = enabled; }

void ClearQueueingCache() {
  ThreadCache& cache = Cache();
  cache.erlang.entries.fill({});
  cache.mdc.entries.fill({});
  cache.stats = QueueingCacheStats{};
}

QueueingCacheStats GetQueueingCacheStats() { return Cache().stats; }

QueueingCacheStats GetGlobalQueueingCacheStats() {
  const QueueingCacheStats& live = Cache().stats;
  QueueingCacheStats totals;
  totals.hits = g_hits.load(std::memory_order_relaxed) + live.hits;
  totals.misses = g_misses.load(std::memory_order_relaxed) + live.misses;
  totals.evictions = g_evictions.load(std::memory_order_relaxed) + live.evictions;
  return totals;
}

double CachedErlangC(uint32_t servers, double offered) {
  ThreadCache& cache = Cache();
  if (!cache.enabled) {
    return ErlangC(servers, offered);
  }
  const uint64_t offered_bits = DoubleBits(offered);
  const uint64_t hash = Mix64(offered_bits ^ (uint64_t{servers} << 32));
  auto& entry = cache.erlang.entries[hash & (kErlangSlots - 1)];
  if (entry.valid && entry.servers == servers && entry.offered_bits == offered_bits) {
    ++cache.stats.hits;
    return entry.value;
  }
  ++cache.stats.misses;
  if (entry.valid) {
    ++cache.stats.evictions;  // direct-mapped collision: overwrite the resident
  }
  const double value = ErlangC(servers, offered);
  entry = {offered_bits, servers, true, value};
  return value;
}

double CachedMdcLatencyPercentile(uint32_t servers, double arrival_rate,
                                  double service_time, double q) {
  ThreadCache& cache = Cache();
  if (!cache.enabled) {
    return MdcLatencyPercentile(servers, arrival_rate, service_time, q);
  }
  const uint64_t lambda_bits = DoubleBits(arrival_rate);
  const uint64_t service_bits = DoubleBits(service_time);
  const uint64_t q_bits = DoubleBits(q);
  const uint64_t hash =
      Mix64(lambda_bits ^ Mix64(service_bits ^ Mix64(q_bits ^ uint64_t{servers})));
  auto& entry = cache.mdc.entries[hash & (kMdcSlots - 1)];
  if (entry.valid && entry.servers == servers && entry.lambda_bits == lambda_bits &&
      entry.service_bits == service_bits && entry.q_bits == q_bits) {
    ++cache.stats.hits;
    return entry.value;
  }
  ++cache.stats.misses;
  if (entry.valid) {
    ++cache.stats.evictions;
  }
  const double value = MdcLatencyPercentile(servers, arrival_rate, service_time, q);
  entry = {lambda_bits, service_bits, q_bits, servers, true, value};
  return value;
}

}  // namespace faro
