#include "src/queueing/cache.h"

#include <array>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/queueing/mdc.h"
#include "src/queueing/mmc.h"

namespace faro {
namespace {

// Registry-backed counters: the per-thread cells the registry hands out are
// the single source of truth for hit/miss/eviction totals (no more parallel
// namespace-scope atomics to keep in sync). The registry singleton is leaked,
// so the cells outlive late-exiting pool threads and the atexit printer.
Counter& HitsCounter() {
  static Counter& counter = MetricsRegistry::Global().GetCounter(
      "faro_queueing_cache_hits_total", "Queueing memo cache hits");
  return counter;
}

Counter& MissesCounter() {
  static Counter& counter = MetricsRegistry::Global().GetCounter(
      "faro_queueing_cache_misses_total", "Queueing memo cache misses");
  return counter;
}

Counter& EvictionsCounter() {
  static Counter& counter = MetricsRegistry::Global().GetCounter(
      "faro_queueing_cache_evictions_total",
      "Queueing memo cache inserts that overwrote a live entry");
  return counter;
}

void PrintGlobalCacheStats() {
  const QueueingCacheStats totals = GetGlobalQueueingCacheStats();
  const uint64_t lookups = totals.hits + totals.misses;
  std::fprintf(stderr,
               "[faro] queueing cache: %llu lookups, %llu hits (%.1f%%), %llu misses, "
               "%llu evictions\n",
               static_cast<unsigned long long>(lookups),
               static_cast<unsigned long long>(totals.hits),
               lookups > 0 ? 100.0 * static_cast<double>(totals.hits) /
                                 static_cast<double>(lookups)
                           : 0.0,
               static_cast<unsigned long long>(totals.misses),
               static_cast<unsigned long long>(totals.evictions));
}

bool CacheStatsRequested() {
  static const bool requested = [] {
    const char* env = std::getenv("FARO_CACHE_STATS");
    const bool on = env != nullptr && env[0] != '\0' && env[0] != '0';
    if (on) {
      std::atexit(PrintGlobalCacheStats);
    }
    return on;
  }();
  return requested;
}

// splitmix64 finaliser: cheap, well-distributed 64-bit mixing.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t DoubleBits(double v) { return std::bit_cast<uint64_t>(v); }

// Open-addressed direct-mapped table: `Slots` entries, overwrite on
// collision. Keys are compared on the exact bit patterns of the inputs, so a
// hit can only ever return the value computed for those same inputs.
template <size_t Slots>
struct ErlangTable {
  static_assert((Slots & (Slots - 1)) == 0, "power-of-two slot count");
  struct Entry {
    uint64_t offered_bits = 0;
    uint32_t servers = 0;
    bool valid = false;
    double value = 0.0;
  };
  std::array<Entry, Slots> entries;
};

template <size_t Slots>
struct MdcTable {
  static_assert((Slots & (Slots - 1)) == 0, "power-of-two slot count");
  struct Entry {
    uint64_t lambda_bits = 0;
    uint64_t service_bits = 0;
    uint64_t q_bits = 0;
    uint32_t servers = 0;
    bool valid = false;
    double value = 0.0;
  };
  std::array<Entry, Slots> entries;
};

// Sized for the multi-start solve driver's working set: a large-problem
// cycle touches (jobs x prediction steps) arrival rates times the server
// counts probed by four scattered starts, which overflows a few-thousand-slot
// direct-mapped table and turns scout evaluations into evictions of the
// primary start's entries. 64k M/D/c slots (~3 MB/thread) hold a 100-job
// cycle with room to spare.
constexpr size_t kErlangSlots = 16384;
constexpr size_t kMdcSlots = 65536;

struct ThreadCache {
  ErlangTable<kErlangSlots> erlang;
  MdcTable<kMdcSlots> mdc;
  // This thread's registry cells, hoisted once so the hot path is a single
  // relaxed store per counted event. The cells are owned by the (leaked)
  // registry, so no flush is needed at thread exit.
  Counter::Cell* hits;
  Counter::Cell* misses;
  Counter::Cell* evictions;
  bool enabled = true;

  ThreadCache()
      : hits(&HitsCounter().LocalCell()),
        misses(&MissesCounter().LocalCell()),
        evictions(&EvictionsCounter().LocalCell()) {}
};

ThreadCache& Cache() {
  // Arm the exit-time printer (if requested) before the first cache exists.
  CacheStatsRequested();
  thread_local ThreadCache cache;
  return cache;
}

}  // namespace

bool QueueingCacheEnabled() { return Cache().enabled; }

void SetQueueingCacheEnabled(bool enabled) { Cache().enabled = enabled; }

void ClearQueueingCache() {
  ThreadCache& cache = Cache();
  cache.erlang.entries.fill({});
  cache.mdc.entries.fill({});
  // Zeroing this thread's cells also removes its contribution from the
  // process-wide totals, matching the old semantics where cleared per-thread
  // stats never reached the global accumulators.
  cache.hits->Store(0);
  cache.misses->Store(0);
  cache.evictions->Store(0);
}

QueueingCacheStats GetQueueingCacheStats() {
  const ThreadCache& cache = Cache();
  return {cache.hits->Load(), cache.misses->Load(), cache.evictions->Load()};
}

QueueingCacheStats GetGlobalQueueingCacheStats() {
  return {HitsCounter().Value(), MissesCounter().Value(), EvictionsCounter().Value()};
}

double CachedErlangC(uint32_t servers, double offered) {
  ThreadCache& cache = Cache();
  if (!cache.enabled) {
    return ErlangC(servers, offered);
  }
  const uint64_t offered_bits = DoubleBits(offered);
  const uint64_t hash = Mix64(offered_bits ^ (uint64_t{servers} << 32));
  auto& entry = cache.erlang.entries[hash & (kErlangSlots - 1)];
  if (entry.valid && entry.servers == servers && entry.offered_bits == offered_bits) {
    cache.hits->Add(1);
    return entry.value;
  }
  cache.misses->Add(1);
  if (entry.valid) {
    cache.evictions->Add(1);  // direct-mapped collision: overwrite the resident
  }
  const double value = ErlangC(servers, offered);
  entry = {offered_bits, servers, true, value};
  return value;
}

double CachedMdcLatencyPercentile(uint32_t servers, double arrival_rate,
                                  double service_time, double q) {
  ThreadCache& cache = Cache();
  if (!cache.enabled) {
    return MdcLatencyPercentile(servers, arrival_rate, service_time, q);
  }
  const uint64_t lambda_bits = DoubleBits(arrival_rate);
  const uint64_t service_bits = DoubleBits(service_time);
  const uint64_t q_bits = DoubleBits(q);
  const uint64_t hash =
      Mix64(lambda_bits ^ Mix64(service_bits ^ Mix64(q_bits ^ uint64_t{servers})));
  auto& entry = cache.mdc.entries[hash & (kMdcSlots - 1)];
  if (entry.valid && entry.servers == servers && entry.lambda_bits == lambda_bits &&
      entry.service_bits == service_bits && entry.q_bits == q_bits) {
    cache.hits->Add(1);
    return entry.value;
  }
  cache.misses->Add(1);
  if (entry.valid) {
    cache.evictions->Add(1);
  }
  const double value = MdcLatencyPercentile(servers, arrival_rate, service_time, q);
  entry = {lambda_bits, service_bits, q_bits, servers, true, value};
  return value;
}

}  // namespace faro
