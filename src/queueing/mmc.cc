#include "src/queueing/mmc.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/queueing/cache.h"

namespace faro {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

double ErlangB(uint32_t servers, double offered) {
  if (offered <= 0.0) {
    return 0.0;
  }
  double b = 1.0;
  for (uint32_t k = 1; k <= servers; ++k) {
    b = offered * b / (static_cast<double>(k) + offered * b);
  }
  return b;
}

double ErlangC(uint32_t servers, double offered) {
  if (servers == 0 || offered >= static_cast<double>(servers)) {
    return 1.0;
  }
  if (offered <= 0.0) {
    return 0.0;
  }
  const double rho = offered / static_cast<double>(servers);
  const double b = ErlangB(servers, offered);
  return b / (1.0 - rho * (1.0 - b));
}

double MmcMeanWait(uint32_t servers, double arrival_rate, double service_time) {
  if (arrival_rate <= 0.0) {
    return 0.0;
  }
  const double mu = 1.0 / service_time;
  const double capacity = static_cast<double>(servers) * mu;
  if (arrival_rate >= capacity) {
    return kInf;
  }
  const double offered = arrival_rate * service_time;
  return CachedErlangC(servers, offered) / (capacity - arrival_rate);
}

double MmcWaitPercentile(uint32_t servers, double arrival_rate, double service_time, double q) {
  if (arrival_rate <= 0.0) {
    return 0.0;
  }
  const double mu = 1.0 / service_time;
  const double capacity = static_cast<double>(servers) * mu;
  if (arrival_rate >= capacity) {
    return kInf;
  }
  const double offered = arrival_rate * service_time;
  const double c_wait = CachedErlangC(servers, offered);
  q = std::clamp(q, 0.0, 1.0 - 1e-12);
  const double tail = 1.0 - q;  // we need P(W > t) = tail
  if (tail >= c_wait) {
    return 0.0;  // the percentile falls inside the atom at zero
  }
  return std::log(c_wait / tail) / (capacity - arrival_rate);
}

double MmcLatencyPercentile(uint32_t servers, double arrival_rate, double service_time,
                            double q) {
  const double wait = MmcWaitPercentile(servers, arrival_rate, service_time, q);
  if (std::isinf(wait)) {
    return kInf;
  }
  return wait + service_time;
}

}  // namespace faro
