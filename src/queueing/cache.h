// Memoisation for the queueing-model hot path.
//
// During one Stage-2 solve the objective evaluates RelaxedMdcLatency
// thousands of times, and almost every probe lands on an integer server
// count with one of a handful of per-job arrival rates -- the same
// (servers, lambda, p, q) tuples over and over. Each evaluation bottoms out
// in the O(c) Erlang recurrence, so memoising the integer-server latency
// turns the inner loop into O(1) lookups.
//
// Design:
//   - per-thread, fixed-size, open-addressed tables (no locks, no
//     allocation after first use, bounded memory); a colliding insert simply
//     overwrites the resident entry, so the cache is lossy but never grows;
//   - values are stored exactly as computed, so a hit returns the bit-exact
//     double the uncached function would produce -- cached and uncached
//     paths agree to the last ulp by construction (tests enforce 1e-12);
//   - SetQueueingCacheEnabled(false) bypasses lookups on the calling thread
//     (benchmark baselines, A/B tests);
//   - hits / misses / evictions are counted in the process-wide metrics
//     registry (src/obs/metrics.h) as faro_queueing_cache_{hits,misses,
//     evictions}_total, one lock-free per-thread cell per counter (an
//     eviction is an insert that overwrites a live entry with a different
//     key). FARO_CACHE_STATS=1 remains as an alias that prints the totals to
//     stderr at exit, so solver-driven cache behaviour stays measurable
//     without code changes; --metrics-out on any bench exports the same
//     counters through the registry sinks.

#ifndef SRC_QUEUEING_CACHE_H_
#define SRC_QUEUEING_CACHE_H_

#include <cstdint>

namespace faro {

// Thread-local toggle; the cache starts enabled on every thread.
bool QueueingCacheEnabled();
void SetQueueingCacheEnabled(bool enabled);

// Clears the calling thread's tables and hit/miss counters.
void ClearQueueingCache();

// Hit/miss/eviction counters for the calling thread (across both tables).
struct QueueingCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};
QueueingCacheStats GetQueueingCacheStats();

// Process-wide totals, merged over every thread's registry cells -- live
// threads included, so a read at any point is exact for every event already
// counted. Printed at exit when FARO_CACHE_STATS=1.
QueueingCacheStats GetGlobalQueueingCacheStats();

// ErlangC(servers, offered), memoised per thread.
double CachedErlangC(uint32_t servers, double offered);

// MdcLatencyPercentile(servers, arrival_rate, service_time, q), memoised per
// thread. This is the entry point RelaxedMdcLatency and the solver use.
double CachedMdcLatencyPercentile(uint32_t servers, double arrival_rate,
                                  double service_time, double q);

}  // namespace faro

#endif  // SRC_QUEUEING_CACHE_H_
