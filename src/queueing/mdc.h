// M/D/c latency estimation and Faro's relaxed variant (§3.3, §3.4).
//
// ML inference requests arrive (approximately) Poisson and take near-constant
// time to serve, so an M/D/c model sizes replica pools much tighter than the
// pessimistic upper-bound estimator. Following the paper we adopt the common
// engineering approximation: the M/D/c waiting time is about half the M/M/c
// waiting time at the same load.
//
// For optimisation, the hard instability cliff (latency = infinity at
// rho >= 1) is a plateau that stalls solvers. The relaxed estimator caps
// utilisation at rho_max (default 0.95) and extrapolates the overloaded
// region with a penalty proportional to the queue growth rate (~ lambda),
// producing a finite, strictly-increasing, plateau-free surface (Fig. 6).

#ifndef SRC_QUEUEING_MDC_H_
#define SRC_QUEUEING_MDC_H_

#include <cstdint>

namespace faro {

// Default utilisation cap for the relaxed estimator (§3.4: "Faro sets
// rho_max = 0.95 so as to remove the plateau but still stay close to
// estimated latency").
inline constexpr double kDefaultRhoMax = 0.95;

// q-th percentile of total latency (waiting + deterministic service) in an
// M/D/c system with `servers` servers, arrival rate lambda (req/s) and
// deterministic service time p (s). Returns +infinity when rho >= 1.
double MdcLatencyPercentile(uint32_t servers, double arrival_rate, double service_time, double q);

// Smallest replica count whose M/D/c q-th percentile latency meets `slo`
// seconds. Returns `max_replicas` when even that many do not suffice.
uint32_t RequiredReplicasMdc(double arrival_rate, double service_time, double slo, double q,
                             uint32_t max_replicas = 100000);

// Pessimistic upper-bound estimator (§3.3-I): if `burst` requests arrive
// simultaneously on `replicas` replicas, each taking `service_time`, the
// completion time is service_time * burst / replicas.
double UpperBoundLatency(double burst, double service_time, double replicas);

// Replica count the upper-bound estimator sizes for the SLO (ceil).
uint32_t RequiredReplicasUpperBound(double burst, double service_time, double slo);

// Relaxed M/D/c latency for *continuous* replica counts (the decision variable
// the solver moves). Behaviour:
//   - rho <= rho_max: ordinary M/D/c percentile latency (interpolated linearly
//     between the neighbouring integer server counts);
//   - rho >  rho_max: latency at the capped arrival rate, scaled by
//     lambda / lambda_cap -- finite and increasing in lambda, decreasing in
//     servers, so the optimiser always sees a useful gradient;
//   - servers < 1 is extrapolated as latency(1) / servers so probes below the
//     bound are pushed back smoothly.
double RelaxedMdcLatency(double servers, double arrival_rate, double service_time, double q,
                         double rho_max = kDefaultRhoMax);

}  // namespace faro

#endif  // SRC_QUEUEING_MDC_H_
