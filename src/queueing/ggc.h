// G/G/c waiting-time approximations (Allen-Cunneen) -- the generalisation §7
// points at for workloads beyond ML inference ("e.g., via M/M/c or G/G/c
// queuing").
//
// The Allen-Cunneen approximation scales the M/M/c mean wait by the average
// squared coefficient of variation of inter-arrival and service times:
//
//   Wq(G/G/c) ~= Wq(M/M/c) * (ca^2 + cs^2) / 2.
//
// Two instructive specialisations:
//   ca^2 = cs^2 = 1  ->  exactly M/M/c;
//   ca^2 = 1, cs^2 = 0 (Poisson arrivals, deterministic service)
//                    ->  exactly half the M/M/c wait -- the engineering
//                        approximation Faro's M/D/c estimator (§3.3) uses.
// So this module both extends the library beyond ML inference and *derives*
// the paper's 1/2 rule as a special case (tested in tests/queueing_test.cc).

#ifndef SRC_QUEUEING_GGC_H_
#define SRC_QUEUEING_GGC_H_

#include <cstdint>

namespace faro {

// Squared coefficients of variation of the inter-arrival and service-time
// distributions.
struct TrafficVariability {
  double ca2 = 1.0;  // Poisson arrivals
  double cs2 = 0.0;  // deterministic service
};

// Mean queueing delay (excluding service) under Allen-Cunneen.
// Returns +infinity when the queue is unstable.
double GgcMeanWait(uint32_t servers, double arrival_rate, double service_time,
                   const TrafficVariability& v);

// q-th percentile of the waiting time, approximating the wait distribution by
// the M/M/c shape (atom at zero + exponential tail) with its tail scaled so
// the mean matches Allen-Cunneen. Exact for M/M/c; the same approximation
// style §3.3 adopts for M/D/c.
double GgcWaitPercentile(uint32_t servers, double arrival_rate, double service_time, double q,
                         const TrafficVariability& v);

// q-th percentile of total latency (wait + mean service).
double GgcLatencyPercentile(uint32_t servers, double arrival_rate, double service_time,
                            double q, const TrafficVariability& v);

// Smallest replica count meeting `slo` at the q-th percentile.
uint32_t RequiredReplicasGgc(double arrival_rate, double service_time, double slo, double q,
                             const TrafficVariability& v, uint32_t max_replicas = 100000);

}  // namespace faro

#endif  // SRC_QUEUEING_GGC_H_
