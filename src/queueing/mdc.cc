#include "src/queueing/mdc.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/queueing/cache.h"
#include "src/queueing/mmc.h"

namespace faro {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Relaxed M/D/c latency at an integer server count; always finite for
// servers >= 1 because the arrival rate is capped at rho_max utilisation and
// the overloaded region is extrapolated linearly in lambda.
double RelaxedAtIntegerServers(uint32_t servers, double arrival_rate, double service_time,
                               double q, double rho_max) {
  if (arrival_rate <= 0.0) {
    return service_time;
  }
  const double lambda_cap = rho_max * static_cast<double>(servers) / service_time;
  if (arrival_rate <= lambda_cap) {
    return CachedMdcLatencyPercentile(servers, arrival_rate, service_time, q);
  }
  const double at_cap = CachedMdcLatencyPercentile(servers, lambda_cap, service_time, q);
  return (arrival_rate / lambda_cap) * at_cap;
}

}  // namespace

double MdcLatencyPercentile(uint32_t servers, double arrival_rate, double service_time,
                            double q) {
  if (servers == 0) {
    return kInf;
  }
  if (arrival_rate <= 0.0) {
    return service_time;
  }
  const double rho = arrival_rate * service_time / static_cast<double>(servers);
  if (rho >= 1.0) {
    return kInf;
  }
  // W_{M/D/c} ~= 1/2 W_{M/M/c}; service is deterministic so the sojourn-time
  // percentile is the waiting percentile plus the constant service time.
  const double wait = MmcWaitPercentile(servers, arrival_rate, service_time, q);
  return 0.5 * wait + service_time;
}

uint32_t RequiredReplicasMdc(double arrival_rate, double service_time, double slo, double q,
                             uint32_t max_replicas) {
  if (arrival_rate <= 0.0) {
    return 1;
  }
  // Stability requires more than lambda * p servers; start probing there.
  // MdcLatencyPercentile is monotone non-increasing in the server count, so
  // the smallest satisfying count can be bracketed by exponential probing
  // and then pinned by binary search: O(log n) evaluations instead of the
  // O(n) linear scan (which dominated workload calibration at cluster scale).
  const double offered = arrival_rate * service_time;
  const uint32_t start =
      std::max<uint32_t>(1, static_cast<uint32_t>(std::floor(offered)) + 1);
  if (start > max_replicas) {
    return max_replicas;
  }
  auto meets_slo = [&](uint32_t n) {
    return CachedMdcLatencyPercentile(n, arrival_rate, service_time, q) <= slo;
  };
  if (meets_slo(start)) {
    return start;
  }
  // Invariant: latency(lo) > slo. Double the span until a satisfying count
  // (or the cap) is found.
  uint32_t lo = start;
  uint32_t hi = start;
  for (;;) {
    const uint32_t span = hi - start + 1;
    hi = (span >= max_replicas - hi) ? max_replicas : hi + span;
    if (meets_slo(hi)) {
      break;
    }
    lo = hi;
    if (hi == max_replicas) {
      return max_replicas;  // even the cap misses the SLO: old-scan semantics
    }
  }
  // Binary search in (lo, hi]: latency(lo) > slo >= latency(hi).
  while (hi - lo > 1) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (meets_slo(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double UpperBoundLatency(double burst, double service_time, double replicas) {
  if (replicas <= 0.0) {
    return kInf;
  }
  if (burst <= 0.0) {
    return service_time;
  }
  return std::max(service_time, service_time * burst / replicas);
}

uint32_t RequiredReplicasUpperBound(double burst, double service_time, double slo) {
  if (burst <= 0.0 || slo <= 0.0) {
    return 1;
  }
  const double n = std::ceil(service_time * burst / slo);
  return std::max<uint32_t>(1, static_cast<uint32_t>(n));
}

double RelaxedMdcLatency(double servers, double arrival_rate, double service_time, double q,
                         double rho_max) {
  if (servers < 1.0) {
    const double at_one = RelaxedAtIntegerServers(1, arrival_rate, service_time, q, rho_max);
    return at_one / std::max(servers, 1e-3);
  }
  const double lo = std::floor(servers);
  const double hi = std::ceil(servers);
  const auto lo_n = static_cast<uint32_t>(lo);
  if (lo == hi) {
    return RelaxedAtIntegerServers(lo_n, arrival_rate, service_time, q, rho_max);
  }
  const double at_lo = RelaxedAtIntegerServers(lo_n, arrival_rate, service_time, q, rho_max);
  const double at_hi = RelaxedAtIntegerServers(lo_n + 1, arrival_rate, service_time, q, rho_max);
  const double frac = servers - lo;
  return at_lo * (1.0 - frac) + at_hi * frac;
}

}  // namespace faro
