// M/M/c queueing formulas (Poisson arrivals, exponential service, c servers).
//
// These are the analytical backbone of Faro's latency estimation (§3.3): the
// M/D/c estimates the paper uses are derived from M/M/c waiting times via the
// engineering approximation W_{M/D/c} ~= 1/2 * W_{M/M/c} (Tijms), implemented
// in src/queueing/mdc.h.

#ifndef SRC_QUEUEING_MMC_H_
#define SRC_QUEUEING_MMC_H_

#include <cstdint>

namespace faro {

// Erlang-B blocking probability for `servers` servers at offered load
// `offered` (= lambda/mu, in Erlangs). Computed with the numerically stable
// recurrence; valid for servers >= 0.
double ErlangB(uint32_t servers, double offered);

// Erlang-C probability that an arriving request must wait, for `servers`
// servers at offered load `offered`. Returns 1.0 when the queue is unstable
// (offered >= servers).
double ErlangC(uint32_t servers, double offered);

// Mean queueing delay (excluding service) in an M/M/c system.
// `arrival_rate` is lambda (req/s), `service_time` is 1/mu (s/req).
// Returns +infinity when unstable.
double MmcMeanWait(uint32_t servers, double arrival_rate, double service_time);

// q-th percentile (q in [0,1)) of the waiting time W in an M/M/c system.
// P(W > t) = ErlangC * exp(-(c*mu - lambda) * t); the distribution has an atom
// at zero of mass 1 - ErlangC, so percentiles below that mass are exactly 0.
// Returns +infinity when unstable.
double MmcWaitPercentile(uint32_t servers, double arrival_rate, double service_time, double q);

// q-th percentile of the total sojourn time (wait + service) in M/M/c,
// approximating the service contribution by its mean (exact for the
// deterministic-service use below). Returns +infinity when unstable.
double MmcLatencyPercentile(uint32_t servers, double arrival_rate, double service_time, double q);

}  // namespace faro

#endif  // SRC_QUEUEING_MMC_H_
