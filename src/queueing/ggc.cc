#include "src/queueing/ggc.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/queueing/mmc.h"

namespace faro {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double VariabilityFactor(const TrafficVariability& v) {
  return std::max(0.0, 0.5 * (v.ca2 + v.cs2));
}

}  // namespace

double GgcMeanWait(uint32_t servers, double arrival_rate, double service_time,
                   const TrafficVariability& v) {
  const double base = MmcMeanWait(servers, arrival_rate, service_time);
  if (std::isinf(base)) {
    return kInf;
  }
  return base * VariabilityFactor(v);
}

double GgcWaitPercentile(uint32_t servers, double arrival_rate, double service_time, double q,
                         const TrafficVariability& v) {
  const double base = MmcWaitPercentile(servers, arrival_rate, service_time, q);
  if (std::isinf(base)) {
    return kInf;
  }
  // The M/M/c wait is an atom at zero plus an exponential tail; scaling the
  // tail by the variability factor preserves that shape while matching the
  // Allen-Cunneen mean.
  return base * VariabilityFactor(v);
}

double GgcLatencyPercentile(uint32_t servers, double arrival_rate, double service_time,
                            double q, const TrafficVariability& v) {
  const double wait = GgcWaitPercentile(servers, arrival_rate, service_time, q, v);
  if (std::isinf(wait)) {
    return kInf;
  }
  return wait + service_time;
}

uint32_t RequiredReplicasGgc(double arrival_rate, double service_time, double slo, double q,
                             const TrafficVariability& v, uint32_t max_replicas) {
  if (arrival_rate <= 0.0) {
    return 1;
  }
  const double offered = arrival_rate * service_time;
  uint32_t n = std::max<uint32_t>(1, static_cast<uint32_t>(std::floor(offered)) + 1);
  for (; n <= max_replicas; ++n) {
    if (GgcLatencyPercentile(n, arrival_rate, service_time, q, v) <= slo) {
      return n;
    }
  }
  return max_replicas;
}

}  // namespace faro
