#include "src/serve/pacing.h"

#include <algorithm>

namespace faro {
namespace {

double ClampSpeed(double speed) {
  return std::clamp(speed, PacingClock::kMinSpeed, PacingClock::kMaxSpeed);
}

}  // namespace

void PacingClock::Reset(double speed) {
  std::lock_guard<std::mutex> lock(mu_);
  wall_anchor_ = Clock::now();
  sim_anchor_ = 0.0;
  speed_ = ClampSpeed(speed);
}

double PacingClock::SetSpeed(double speed) {
  std::lock_guard<std::mutex> lock(mu_);
  const Clock::time_point now = Clock::now();
  const std::chrono::duration<double> elapsed = now - wall_anchor_;
  sim_anchor_ += elapsed.count() * speed_;
  wall_anchor_ = now;
  speed_ = ClampSpeed(speed);
  return speed_;
}

double PacingClock::speed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return speed_;
}

double PacingClock::TargetSimTimeAt(Clock::time_point wall_now) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::chrono::duration<double> elapsed = wall_now - wall_anchor_;
  // A wall clock handed in from before the anchor (tests) maps to the anchor
  // itself: the target never goes backwards.
  return sim_anchor_ + std::max(0.0, elapsed.count()) * speed_;
}

}  // namespace faro
