// faro_serve replay daemon: streams a simulated run in scaled wall-clock
// time behind a live telemetry plane.
//
// The daemon owns a SimStepper for the configured run and advances it to the
// pacing clock's target in a polling loop; because stepping is a pure prefix
// of the batch event loop (src/sim/simulator.h), the finished run -- and
// every derived artifact, the summary CSV included -- is bit-identical to
// RunSimulation of the same config and seed at any speed. Concurrently an
// embedded HTTP server exposes:
//
//   GET  /metrics  Prometheus exposition of the live registry, including the
//                  per-job SLO budget-remaining and burn-rate gauges this
//                  daemon maintains from each closed minute window
//   GET  /alerts   streaming JSONL feed of burn-rate alert onsets and clears,
//                  evaluated incrementally as each sim-minute closes
//   GET  /audit    tail of the decision-audit JSONL (?tail=N, default 64)
//   GET  /actuator JSON snapshot of the live async actuator (enabled with
//                  ServeOptions::live_actuator): current generation,
//                  convergence state, reconcile telemetry, and op-log
//                  crash-consistency counts
//   GET  /healthz  JSON liveness: sim time, wall speed, done flag
//   POST /speed    set the replay speed multiplier (clamped to 1..10000)
//
// Threading: the replay thread (the caller of Run) is the only writer of
// simulation state; it publishes observations through relaxed-atomic gauges,
// a mutexed alert feed, and an atomic sim-time cell. The HTTP accept thread
// only reads those (and flips the pacing speed, itself mutexed), so the
// daemon is clean under ThreadSanitizer and a slow scraper can never stall
// the replay.
//
// Live actuation (ServeOptions::live_actuator): the daemon registers itself
// as the run's desired-state observer and forwards every published
// generation to an AsyncActuator -- a real reconciling thread converging its
// own cluster model while racing the replay (src/actuate/async_actuator.h).
// The actuator never writes simulation state, so paced runs stay
// byte-identical to batch; after the replay completes, the daemon re-sends
// the final generation to prove the fence discards duplicates, then joins
// the actuator thread.

#ifndef SRC_SERVE_DAEMON_H_
#define SRC_SERVE_DAEMON_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include <memory>

#include "src/actuate/async_actuator.h"
#include "src/core/policy.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/serve/http.h"
#include "src/serve/pacing.h"
#include "src/sim/simulator.h"

namespace faro {

struct ServeOptions {
  // Sim seconds replayed per wall second (clamped to 1..10000 by the clock).
  double speed = 60.0;
  // HTTP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;
  // Batch mode: no pacing, run at full speed (the byte-identity reference).
  bool batch = false;
  // Keep the HTTP server up after the run completes until RequestStop().
  bool linger = false;
  // Decision-audit log served at /audit and flushed to audit_out (optional).
  AuditLog* audit = nullptr;
  // Flush targets written once the run completes (empty = skip).
  std::string summary_out;  // per-job summary CSV (WriteSummaryCsv)
  std::string metrics_out;  // final Prometheus exposition
  std::string audit_out;    // decision-audit JSONL
  std::string alerts_out;   // burn-rate alert feed JSONL
  // Wall-clock sleep between pacing polls.
  int poll_ms = 10;
  // Run a live AsyncActuator thread: every published generation is forwarded
  // to a reconciling actuator racing the replay (see the header comment).
  bool live_actuator = false;
};

class ReplayDaemon : public SimMinuteObserver, public DesiredStateObserver {
 public:
  // Borrows config/jobs/policy for its lifetime (RunSimulation's contract).
  // The daemon registers itself as the run's minute observer; any observer
  // already set on `config` is replaced.
  ReplayDaemon(const SimConfig& config, const std::vector<SimJobConfig>& jobs,
               AutoscalingPolicy& policy, const ServeOptions& options);
  ~ReplayDaemon() override;

  // Binds the HTTP server. Call before Run; false when the port is taken.
  bool StartServer();
  uint16_t port() const { return server_.port(); }

  // Drives the replay to completion (or until RequestStop), writes the flush
  // targets, then lingers if asked. Returns the finished run's result --
  // bit-identical to the batch RunSimulation of the same config and seed.
  RunResult Run();

  // Asks the replay loop to wind down (signal handlers store-release a flag).
  void RequestStop() { stop_.store(true, std::memory_order_release); }
  bool run_complete() const { return complete_.load(std::memory_order_acquire); }

  // SimMinuteObserver: called by the engine as each job's window closes.
  void OnMinute(const MinuteSnapshot& snapshot) override;

  // DesiredStateObserver: called by the engine (on the replay thread) each
  // time a decision is published; forwards to the live actuator when enabled.
  void OnPublish(const DesiredState& desired) override;

  // Alert feed snapshot (JSONL) and its line count.
  std::string AlertsJsonl() const;
  uint64_t alert_onsets() const { return alert_onsets_.load(std::memory_order_relaxed); }

  // Live actuator (null unless ServeOptions::live_actuator); its snapshot
  // accessors are thread-safe during and after the run.
  const AsyncActuator* actuator() const { return actuator_.get(); }

 private:
  HttpResponse Handle(const HttpRequest& request);

  SimConfig config_;  // private copy with minute_observer = this
  const std::vector<SimJobConfig>& jobs_;
  AutoscalingPolicy& policy_;
  ServeOptions options_;

  PacingClock pacing_;
  HttpServer server_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> complete_{false};
  std::atomic<double> sim_time_s_{0.0};

  // Per-job live gauges (registered at construction, written by OnMinute).
  std::vector<Gauge*> budget_gauges_;
  std::vector<Gauge*> burn_fast_gauges_;
  std::vector<Gauge*> burn_slow_gauges_;
  Gauge* sim_time_gauge_ = nullptr;
  Gauge* speed_gauge_ = nullptr;
  Counter* windows_closed_ = nullptr;

  // Alert state per job (previous firing flags) and the JSONL feed.
  std::vector<bool> fast_firing_;
  std::vector<bool> slow_firing_;
  mutable std::mutex alerts_mu_;
  std::string alerts_jsonl_;
  std::atomic<uint64_t> alert_onsets_{0};

  // Live actuation plane (options_.live_actuator). last_desired_ is only
  // touched on the replay thread (OnPublish and Run's end-of-run duplicate
  // re-publish happen on the same thread).
  std::unique_ptr<AsyncActuator> actuator_;
  DesiredState last_desired_;
  Gauge* actuator_generation_gauge_ = nullptr;
  Gauge* actuator_fences_gauge_ = nullptr;
};

}  // namespace faro

#endif  // SRC_SERVE_DAEMON_H_
