// Embedded dependency-free HTTP/1.1 server for the telemetry plane.
//
// Scope is deliberately tiny: loopback only, one accept thread handling
// connections serially, close-delimited responses (Connection: close), and
// just enough request parsing for GET/POST with an optional Content-Length
// body -- what curl, promtool, and the smoke tests need to scrape /metrics
// and poke /speed. Serving never touches the simulation: handlers read
// shared state behind their own synchronisation, so a slow or hostile
// scraper can delay its own response, never the replay.
//
// Hardening: every accepted connection gets read/write deadlines
// (SO_RCVTIMEO/SO_SNDTIMEO, io_timeout_ms), so a half-open client stalls the
// serial accept loop for at most one timeout before being dropped with 408;
// headers are capped at 16 KiB (431) and declared bodies at 1 MiB (413).

#ifndef SRC_SERVE_HTTP_H_
#define SRC_SERVE_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace faro {

struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // path only, query string split off
  std::string query;   // raw text after '?' (may be empty)
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer() { Stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds 127.0.0.1:`port` (0 picks an ephemeral port) and starts the accept
  // thread. Returns false when the socket cannot be bound.
  bool Start(uint16_t port, HttpHandler handler);
  // Joins the accept thread; idempotent.
  void Stop();

  // The bound port (useful with port 0); 0 when not running.
  uint16_t port() const { return port_; }
  bool running() const { return listen_fd_ >= 0; }
  // Requests served so far (handler invocations).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  // Connections dropped by the per-connection read deadline (408s sent).
  uint64_t connections_timed_out() const {
    return connections_timed_out_.load(std::memory_order_relaxed);
  }
  // Per-connection read/write deadline in milliseconds (default 5000).
  // Call before Start; tests shrink it to prove half-open clients cannot
  // wedge the accept loop.
  void set_io_timeout_ms(int ms) { io_timeout_ms_ = ms > 0 ? ms : 1; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  void SendError(int fd, int status);

  HttpHandler handler_;
  std::thread thread_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  int io_timeout_ms_ = 5000;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> connections_timed_out_{0};
};

// Minimal loopback HTTP client for tests and the daemon's own smoke checks:
// one request, close-delimited response. Returns false on connect/IO errors;
// otherwise fills `status` and `body`.
bool HttpFetch(uint16_t port, const std::string& method, const std::string& target,
               const std::string& request_body, int* status, std::string* body);

}  // namespace faro

#endif  // SRC_SERVE_HTTP_H_
