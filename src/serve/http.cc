#include "src/serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace faro {
namespace {

// Hard request caps: headers must be small (scrape paths and a query string),
// bodies are tiny (/speed). Oversize requests are rejected with a status,
// never buffered -- a hostile client cannot balloon the accept thread.
constexpr size_t kMaxHeaderBytes = 16 << 10;  // 16 KiB
constexpr size_t kMaxBodyBytes = 1 << 20;     // 1 MiB

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    default: return "Error";
  }
}

// Blocking full write (handles short writes; bails on error).
bool WriteAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Case-insensitive header lookup in the raw header block; returns the value
// (trimmed of leading spaces) or "".
std::string HeaderValue(const std::string& headers, const std::string& name) {
  size_t pos = 0;
  while (pos < headers.size()) {
    size_t eol = headers.find("\r\n", pos);
    if (eol == std::string::npos) {
      eol = headers.size();
    }
    const size_t colon = headers.find(':', pos);
    if (colon != std::string::npos && colon < eol && colon - pos == name.size()) {
      bool match = true;
      for (size_t i = 0; i < name.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(headers[pos + i])) !=
            std::tolower(static_cast<unsigned char>(name[i]))) {
          match = false;
          break;
        }
      }
      if (match) {
        size_t begin = colon + 1;
        while (begin < eol && headers[begin] == ' ') {
          ++begin;
        }
        return headers.substr(begin, eol - begin);
      }
    }
    pos = eol + 2;
  }
  return "";
}

}  // namespace

bool HttpServer::Start(uint16_t port, HttpHandler handler) {
  if (listen_fd_ >= 0) {
    return false;  // already running
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return false;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  handler_ = std::move(handler);
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void HttpServer::Stop() {
  if (listen_fd_ < 0) {
    return;
  }
  stop_.store(true, std::memory_order_relaxed);
  // Unblock accept(): shutdown makes the pending accept fail on Linux, and
  // close releases the port.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (thread_.joinable()) {
    thread_.join();
  }
  listen_fd_ = -1;
  port_ = 0;
}

void HttpServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load(std::memory_order_relaxed)) {
        return;
      }
      continue;  // transient accept failure (EINTR etc.)
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void HttpServer::SendError(int fd, int status) {
  const std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                          StatusText(status) +
                          "\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
  WriteAll(fd, out.data(), out.size());
}

void HttpServer::HandleConnection(int fd) {
  // Per-connection read/write deadlines: a half-open or trickling client
  // makes its own recv/send fail with EAGAIN after io_timeout_ms_, so the
  // (serial) accept loop is stalled for at most one timeout, never wedged.
  timeval timeout{};
  timeout.tv_sec = io_timeout_ms_ / 1000;
  timeout.tv_usec = (io_timeout_ms_ % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  std::string raw;
  char buf[4096];
  size_t header_end = std::string::npos;
  // Read until the blank line terminating the headers.
  while (header_end == std::string::npos && raw.size() < kMaxHeaderBytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      connections_timed_out_.fetch_add(1, std::memory_order_relaxed);
      SendError(fd, 408);
      return;
    }
    if (n <= 0) {
      return;
    }
    raw.append(buf, static_cast<size_t>(n));
    header_end = raw.find("\r\n\r\n");
  }
  if (header_end == std::string::npos) {
    SendError(fd, 431);
    return;
  }
  const size_t line_end = raw.find("\r\n");
  const std::string request_line = raw.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return;
  }
  HttpRequest request;
  request.method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    request.query = target.substr(qmark + 1);
    target.resize(qmark);
  }
  request.path = std::move(target);

  const std::string headers = raw.substr(line_end + 2, header_end - line_end - 2);
  size_t content_length = 0;
  const std::string length_text = HeaderValue(headers, "Content-Length");
  if (!length_text.empty()) {
    const unsigned long declared = std::strtoul(length_text.c_str(), nullptr, 10);
    if (declared > kMaxBodyBytes) {
      SendError(fd, 413);
      return;
    }
    content_length = static_cast<size_t>(declared);
  }
  request.body = raw.substr(header_end + 4);
  while (request.body.size() < content_length) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      connections_timed_out_.fetch_add(1, std::memory_order_relaxed);
      SendError(fd, 408);
      return;
    }
    if (n <= 0) {
      return;
    }
    request.body.append(buf, static_cast<size_t>(n));
  }
  request.body.resize(std::min(request.body.size(), content_length));

  const HttpResponse response = handler_(request);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) +
                    "\r\nContent-Type: " + response.content_type +
                    "\r\nContent-Length: " + std::to_string(response.body.size()) +
                    "\r\nConnection: close\r\n\r\n" + response.body;
  WriteAll(fd, out.data(), out.size());
}

bool HttpFetch(uint16_t port, const std::string& method, const std::string& target,
               const std::string& request_body, int* status, std::string* body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request =
      method + " " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: " +
      std::to_string(request_body.size()) + "\r\nConnection: close\r\n\r\n" +
      request_body;
  if (!WriteAll(fd, request.data(), request.size())) {
    ::close(fd);
    return false;
  }
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos) {
    return false;
  }
  if (status != nullptr) {
    *status = std::atoi(raw.c_str() + sp + 1);
  }
  const size_t header_end = raw.find("\r\n\r\n");
  if (body != nullptr) {
    *body = header_end == std::string::npos ? "" : raw.substr(header_end + 4);
  }
  return true;
}

}  // namespace faro
