// faro_serve: live telemetry replay daemon.
//
// Replays a synthetic workload (or an external trace CSV) through the
// simulator at a wall-clock speed multiplier while the Faro autoscaler runs
// its predictive and reactive loops, and serves live observability over
// HTTP (see src/serve/daemon.h for the endpoint set). At any speed the
// simulated outcome -- and the summary CSV -- is bit-identical to the batch
// run of the same configuration and seed; `--batch` runs the same binary
// without pacing to produce the reference artifact.
//
// Usage:
//   faro_serve [--scenario=node-crash] [--minutes=240] [--speed=1000]
//              [--port=9100] [--seed=5150] [--policy=Faro-FairSum]
//              [--trace-file=traces.csv] [--engine=classic|sharded]
//              [--train] [--batch] [--linger] [--live-actuator]
//              [--summary-out=..] [--metrics-out=..] [--audit-out=..]
//              [--alerts-out=..]
//
//   --scenario   chaos plan (node-crash | rolling-drain | replica-burst |
//                flaky-api | none). Node scenarios add the 8-node placement
//                model from the Fig. 17 bench (classic engine only).
//   --minutes    truncate every trace to this many sim-minutes (0 = full)
//   --speed      sim seconds per wall second, 1..10000 (POST /speed adjusts)
//   --train      train the N-HiTS predictor first (seconds of startup);
//                default is the damped-average forecast fallback
//   --batch      no pacing, no HTTP: write artifacts and exit (reference)
//   --linger     keep serving after the replay completes until SIGTERM
//   --live-actuator  run the asynchronous reconciling actuator thread and
//                serve its state at /actuator (src/actuate/async_actuator.h);
//                the replayed simulation itself is unaffected

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/faults/faultplan.h"
#include "src/obs/slo.h"
#include "src/serve/daemon.h"
#include "src/sim/harness.h"
#include "src/workload/trace_io.h"

namespace faro {
namespace {

ReplayDaemon* g_daemon = nullptr;

void HandleSignal(int /*sig*/) {
  if (g_daemon != nullptr) {
    g_daemon->RequestStop();
  }
}

struct Flags {
  std::string scenario = "none";
  std::string policy = "Faro-FairSum";
  std::string trace_file;
  std::string engine = "classic";
  size_t minutes = 0;
  double speed = 60.0;
  int port = 0;
  uint64_t seed = 5150;
  bool train = false;
  bool batch = false;
  bool linger = false;
  bool live_actuator = false;
  std::string summary_out;
  std::string metrics_out;
  std::string audit_out;
  std::string alerts_out;
};

bool ParseFlags(int argc, char** argv, Flags& flags) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--scenario=")) {
      flags.scenario = v;
    } else if (const char* v = value("--policy=")) {
      flags.policy = v;
    } else if (const char* v = value("--trace-file=")) {
      flags.trace_file = v;
    } else if (const char* v = value("--engine=")) {
      flags.engine = v;
    } else if (const char* v = value("--minutes=")) {
      flags.minutes = static_cast<size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--speed=")) {
      flags.speed = std::strtod(v, nullptr);
    } else if (const char* v = value("--port=")) {
      flags.port = std::atoi(v);
    } else if (const char* v = value("--seed=")) {
      flags.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--summary-out=")) {
      flags.summary_out = v;
    } else if (const char* v = value("--metrics-out=")) {
      flags.metrics_out = v;
    } else if (const char* v = value("--audit-out=")) {
      flags.audit_out = v;
    } else if (const char* v = value("--alerts-out=")) {
      flags.alerts_out = v;
    } else if (std::strcmp(arg, "--train") == 0) {
      flags.train = true;
    } else if (std::strcmp(arg, "--batch") == 0) {
      flags.batch = true;
    } else if (std::strcmp(arg, "--linger") == 0) {
      flags.linger = true;
    } else if (std::strcmp(arg, "--live-actuator") == 0) {
      flags.live_actuator = true;
    } else {
      std::fprintf(stderr, "faro_serve: unknown flag %s\n", arg);
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, flags)) {
    return 2;
  }

  ExperimentSetup setup;
  setup.capacity = 32.0;
  setup.seed = flags.seed;
  if (flags.engine == "sharded") {
    setup.engine = SimEngine::kSharded;
  } else if (flags.engine != "classic") {
    std::fprintf(stderr, "faro_serve: --engine must be classic or sharded\n");
    return 2;
  }
  // The live daemon always feeds the metrics registry (that is the point of
  // /metrics); --metrics-out additionally flushes a final exposition file.
  setup.obs.metrics = true;
  setup.obs.metrics_out = flags.metrics_out;

  std::vector<std::string> node_names;
  const bool chaos = flags.scenario != "none" && !flags.scenario.empty();
  if (chaos) {
    if (setup.engine == SimEngine::kSharded) {
      std::fprintf(stderr,
                   "faro_serve: node-fault scenarios need the classic engine\n");
      return 2;
    }
    // Fig. 17 cluster shape: 8 four-replica nodes, spread placement.
    const size_t kNodes = 8;
    for (size_t n = 0; n < kNodes; ++n) {
      const std::string name = "node" + std::to_string(n);
      node_names.push_back(name);
      setup.nodes.push_back(
          Node{name, setup.capacity / kNodes, setup.capacity / kNodes});
    }
  }

  PreparedWorkload workload = PrepareWorkload(setup);
  if (!flags.trace_file.empty()) {
    // External trace: one column per job (req/min per sim-minute); job specs
    // keep the standard ResNet34 shape. Malformed cells throw with a
    // file:line:column message (src/workload/trace_io.h).
    std::vector<std::string> names;
    std::vector<Series> traces;
    try {
      traces = LoadTracesCsv(flags.trace_file, &names);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "faro_serve: %s\n", error.what());
      return 2;
    }
    if (traces.empty()) {
      std::fprintf(stderr, "faro_serve: cannot read trace file %s\n",
                   flags.trace_file.c_str());
      return 2;
    }
    workload.jobs.clear();
    for (size_t c = 0; c < traces.size(); ++c) {
      SimJobConfig job;
      const std::string name =
          c < names.size() && !names[c].empty() ? names[c]
                                                : "trace" + std::to_string(c);
      job.spec = ResNet34Spec(name);
      job.arrival_rate_per_min = traces[c];
      workload.jobs.push_back(std::move(job));
    }
  }
  if (flags.minutes > 0) {
    for (SimJobConfig& job : workload.jobs) {
      if (job.arrival_rate_per_min.size() > flags.minutes) {
        job.arrival_rate_per_min = job.arrival_rate_per_min.Slice(0, flags.minutes);
      }
    }
  }
  const double duration_s =
      60.0 * static_cast<double>(
                 workload.jobs.empty() ? 0 : workload.jobs[0].arrival_rate_per_min.size());
  if (chaos) {
    setup.faults = MakeFaultScenario(flags.scenario, duration_s, node_names);
    if (!setup.faults.active()) {
      std::fprintf(stderr, "faro_serve: unknown scenario \"%s\" (known:",
                   flags.scenario.c_str());
      for (const std::string& name : FaultScenarioNames()) {
        std::fprintf(stderr, " %s", name.c_str());
      }
      std::fprintf(stderr, " none)\n");
      return 2;
    }
  }

  // Policy. Training is opt-in: the damped-average fallback starts instantly
  // and keeps the decision path deterministic either way.
  std::shared_ptr<NHitsWorkloadPredictor> predictor;
  if (flags.train) {
    std::fprintf(stderr, "faro_serve: training predictor...\n");
    predictor = TrainPredictor(workload, setup.seed);
  }
  FaroConfig overrides;
  overrides.forecast_max_jump = 8.0;  // Fig. 17 chaos-bench configuration
  overrides.audit = &GlobalAuditLog();
  overrides.audit_label = "faro_serve/" + flags.scenario + "/" + flags.policy;
  auto policy = MakePolicy(flags.policy, predictor, &overrides);
  if (policy == nullptr) {
    std::fprintf(stderr, "faro_serve: unknown policy \"%s\"\n", flags.policy.c_str());
    return 2;
  }

  SimConfig config = BuildSimConfig(setup, flags.seed);
  config.obs_metrics = true;

  ServeOptions options;
  options.speed = flags.speed;
  options.port = static_cast<uint16_t>(flags.port);
  options.batch = flags.batch;
  options.linger = flags.linger;
  options.audit = &GlobalAuditLog();
  options.summary_out = flags.summary_out;
  options.metrics_out = flags.metrics_out;
  options.audit_out = flags.audit_out;
  options.alerts_out = flags.alerts_out;
  options.live_actuator = flags.live_actuator;

  ReplayDaemon daemon(config, workload.jobs, *policy, options);
  g_daemon = &daemon;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  if (!flags.batch) {
    if (!daemon.StartServer()) {
      std::fprintf(stderr, "faro_serve: cannot bind 127.0.0.1:%d\n", flags.port);
      return 1;
    }
    std::fprintf(stderr,
                 "faro_serve: serving http://127.0.0.1:%u "
                 "(/metrics /alerts /audit%s /healthz /speed) at %.0fx\n",
                 daemon.port(), flags.live_actuator ? " /actuator" : "",
                 flags.speed);
  }

  const RunResult result = daemon.Run();
  std::fprintf(stderr,
               "faro_serve: replay %s: %llu events, lost utility %.5f, "
               "burn alerts %llu fast / %llu slow\n",
               daemon.run_complete() ? "complete" : "interrupted",
               static_cast<unsigned long long>(result.events_processed),
               result.cluster_lost_utility,
               static_cast<unsigned long long>(result.cluster_burn_alerts_fast),
               static_cast<unsigned long long>(result.cluster_burn_alerts_slow));
  g_daemon = nullptr;
  return 0;
}

}  // namespace
}  // namespace faro

int main(int argc, char** argv) { return faro::Main(argc, argv); }
