#include "src/serve/daemon.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <thread>

#include "src/sim/report.h"

namespace faro {
namespace {

// Shortest decimal form that round-trips the double (same policy as the
// metrics exposition and audit log; local copy, those helpers are
// file-internal to their modules).
std::string FormatDoubleShortest(double v) {
  char buf[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == v) {
      break;
    }
  }
  return buf;
}

std::string JsonEscapeMinimal(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

// Last `n` lines of a newline-terminated buffer (all of it when n == 0 or
// the buffer is shorter).
std::string TailLines(const std::string& text, size_t n) {
  if (n == 0 || text.empty()) {
    return text;
  }
  size_t pos = text.size();
  if (text.back() == '\n') {
    --pos;
  }
  for (size_t lines = 0; pos > 0; --pos) {
    if (text[pos - 1] == '\n' && ++lines == n) {
      return text.substr(pos);
    }
  }
  return text;
}

size_t ParseTailParam(const std::string& query, size_t fallback) {
  const size_t key = query.find("tail=");
  if (key == std::string::npos || (key > 0 && query[key - 1] != '&')) {
    return fallback;
  }
  return static_cast<size_t>(std::strtoul(query.c_str() + key + 5, nullptr, 10));
}

}  // namespace

ReplayDaemon::ReplayDaemon(const SimConfig& config,
                           const std::vector<SimJobConfig>& jobs,
                           AutoscalingPolicy& policy, const ServeOptions& options)
    : config_(config), jobs_(jobs), policy_(policy), options_(options),
      pacing_(options.speed) {
  config_.minute_observer = this;
  MetricsRegistry& registry = MetricsRegistry::Global();
  if (options_.live_actuator) {
    config_.desired_observer = this;
    actuator_ = std::make_unique<AsyncActuator>(jobs_.size(), config_.reconciler);
    actuator_generation_gauge_ = &registry.GetGauge(
        "faro_serve_actuator_generation",
        "Newest desired-state generation accepted by the live actuator");
    actuator_fences_gauge_ = &registry.GetGauge(
        "faro_serve_actuator_fence_rejections",
        "Stale publishes discarded by the live actuator's generation fence");
  }
  budget_gauges_.reserve(jobs_.size());
  burn_fast_gauges_.reserve(jobs_.size());
  burn_slow_gauges_.reserve(jobs_.size());
  for (const SimJobConfig& job : jobs_) {
    const MetricLabels labels{{"job", job.spec.name}};
    budget_gauges_.push_back(&registry.GetGauge(
        "faro_slo_budget_remaining_ratio", labels,
        "Fraction of the job error budget left (negative when overspent)"));
    burn_fast_gauges_.push_back(&registry.GetGauge(
        "faro_slo_burn_rate_fast", labels,
        "Fast-window (1h sim) error-budget burn rate"));
    burn_slow_gauges_.push_back(&registry.GetGauge(
        "faro_slo_burn_rate_slow", labels,
        "Slow-window (6h sim) error-budget burn rate"));
  }
  sim_time_gauge_ = &registry.GetGauge("faro_serve_sim_time_seconds",
                                       "Sim time reached by the replay");
  speed_gauge_ = &registry.GetGauge("faro_serve_speed_multiplier",
                                    "Current replay speed (sim s per wall s)");
  windows_closed_ = &registry.GetCounter(
      "faro_serve_windows_closed_total",
      "Per-job metric windows closed by the replay (monotone)");
  speed_gauge_->Set(pacing_.speed());
  fast_firing_.assign(jobs_.size(), false);
  slow_firing_.assign(jobs_.size(), false);
}

ReplayDaemon::~ReplayDaemon() { server_.Stop(); }

bool ReplayDaemon::StartServer() {
  return server_.Start(options_.port,
                       [this](const HttpRequest& request) { return Handle(request); });
}

void ReplayDaemon::OnMinute(const MinuteSnapshot& snapshot) {
  const uint32_t j = snapshot.job;
  budget_gauges_[j]->Set(snapshot.budget_remaining_frac);
  burn_fast_gauges_[j]->Set(snapshot.burn_fast);
  burn_slow_gauges_[j]->Set(snapshot.burn_slow);
  sim_time_gauge_->Set(snapshot.end_s);
  sim_time_s_.store(snapshot.end_s, std::memory_order_relaxed);
  windows_closed_->Add(1);

  // Incremental burn-rate alert transitions. The firing flags mirror the
  // ledger's own onset logic (below -> at-or-above), so the number of onset
  // lines in the feed is bit-identical to the batch run's alert totals.
  const bool was_fast = fast_firing_[j];
  const bool was_slow = slow_firing_[j];
  fast_firing_[j] = snapshot.alert_fast;
  slow_firing_[j] = snapshot.alert_slow;
  if (snapshot.alert_fast == was_fast && snapshot.alert_slow == was_slow) {
    return;
  }
  std::string lines;
  uint64_t onsets = 0;
  const auto append = [&](const char* window, bool firing, bool was, double burn) {
    if (firing == was) {
      return;
    }
    lines += "{\"time_s\":" + FormatDoubleShortest(snapshot.end_s) +
             ",\"job\":\"" + JsonEscapeMinimal(jobs_[j].spec.name) +
             "\",\"window\":\"" + window +
             "\",\"event\":\"" + (firing ? "onset" : "clear") +
             "\",\"burn\":" + FormatDoubleShortest(burn) + "}\n";
    if (firing) {
      ++onsets;
    }
  };
  append("fast", snapshot.alert_fast, was_fast, snapshot.burn_fast);
  append("slow", snapshot.alert_slow, was_slow, snapshot.burn_slow);
  {
    std::lock_guard<std::mutex> lock(alerts_mu_);
    alerts_jsonl_ += lines;
  }
  alert_onsets_.fetch_add(onsets, std::memory_order_relaxed);
}

void ReplayDaemon::OnPublish(const DesiredState& desired) {
  if (actuator_ == nullptr) {
    return;
  }
  last_desired_ = desired;
  actuator_->Publish(desired);
}

std::string ReplayDaemon::AlertsJsonl() const {
  std::lock_guard<std::mutex> lock(alerts_mu_);
  return alerts_jsonl_;
}

HttpResponse ReplayDaemon::Handle(const HttpRequest& request) {
  HttpResponse response;
  if (request.path == "/healthz") {
    response.content_type = "application/json";
    response.body = "{\"status\":\"ok\",\"sim_time_s\":" +
                    FormatDoubleShortest(sim_time_s_.load(std::memory_order_relaxed)) +
                    ",\"speed\":" + FormatDoubleShortest(pacing_.speed()) +
                    ",\"done\":" + (run_complete() ? "true" : "false") +
                    ",\"alert_onsets\":" + std::to_string(alert_onsets()) + "}\n";
    return response;
  }
  if (request.path == "/metrics") {
    if (request.method != "GET") {
      response.status = 405;
      return response;
    }
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = MetricsRegistry::Global().PrometheusText();
    return response;
  }
  if (request.path == "/alerts") {
    response.content_type = "application/x-ndjson";
    response.body = TailLines(AlertsJsonl(), ParseTailParam(request.query, 0));
    return response;
  }
  if (request.path == "/audit") {
    if (options_.audit == nullptr) {
      response.status = 404;
      response.body = "no audit log configured\n";
      return response;
    }
    response.content_type = "application/x-ndjson";
    response.body = TailLines(options_.audit->ToJsonl(), ParseTailParam(request.query, 64));
    return response;
  }
  if (request.path == "/actuator") {
    if (actuator_ == nullptr) {
      response.status = 404;
      response.body = "live actuator not enabled (ServeOptions::live_actuator)\n";
      return response;
    }
    const ReconcileTelemetry t = actuator_->telemetry();
    const std::vector<ActuatorLogEntry> log = actuator_->op_log();
    // Crash-consistency probe over the op log: an entry is torn when its
    // first pass was marked applied without every job's target having been
    // issued. The AsyncActuator runs the pass in one critical section, so
    // this must read 0 at any instant -- the TSan determinism test polls it.
    size_t applied = 0, fenced = 0, superseded = 0, pending = 0, torn = 0;
    for (const ActuatorLogEntry& entry : log) {
      if (entry.applied) {
        ++applied;
        if (entry.jobs_applied < jobs_.size()) {
          ++torn;
        }
      } else if (entry.fenced) {
        ++fenced;
      } else if (entry.superseded) {
        ++superseded;
      } else {
        ++pending;
      }
    }
    response.content_type = "application/json";
    response.body =
        "{\"generation\":" + std::to_string(actuator_->generation()) +
        ",\"converged\":" + (actuator_->converged() ? "true" : "false") +
        ",\"generations_published\":" + std::to_string(t.generations_published) +
        ",\"generations_converged\":" + std::to_string(t.generations_converged) +
        ",\"generations_superseded\":" + std::to_string(t.generations_superseded) +
        ",\"fence_rejections\":" + std::to_string(t.fence_rejections) +
        ",\"retries\":" + std::to_string(t.retries) +
        ",\"op_timeouts\":" + std::to_string(t.op_timeouts) +
        ",\"op_log\":{\"entries\":" + std::to_string(log.size()) +
        ",\"applied\":" + std::to_string(applied) +
        ",\"fenced\":" + std::to_string(fenced) +
        ",\"superseded\":" + std::to_string(superseded) +
        ",\"pending\":" + std::to_string(pending) +
        ",\"torn\":" + std::to_string(torn) + "}}\n";
    return response;
  }
  if (request.path == "/speed") {
    if (request.method == "GET") {
      response.content_type = "application/json";
      response.body = "{\"speed\":" + FormatDoubleShortest(pacing_.speed()) + "}\n";
      return response;
    }
    if (request.method != "POST") {
      response.status = 405;
      return response;
    }
    const std::string& text = !request.body.empty() ? request.body : request.query;
    char* end = nullptr;
    const char* begin = text.c_str();
    // Accept a bare number or "speed=<number>".
    if (text.compare(0, 6, "speed=") == 0) {
      begin += 6;
    }
    const double requested = std::strtod(begin, &end);
    if (end == begin || !(requested > 0.0)) {
      response.status = 400;
      response.body = "expected a positive speed multiplier\n";
      return response;
    }
    const double applied = pacing_.SetSpeed(requested);
    speed_gauge_->Set(applied);
    response.content_type = "application/json";
    response.body = "{\"speed\":" + FormatDoubleShortest(applied) + "}\n";
    return response;
  }
  response.status = 404;
  response.body =
      "unknown path (try /metrics /alerts /audit /actuator /healthz /speed)\n";
  return response;
}

RunResult ReplayDaemon::Run() {
  std::unique_ptr<SimStepper> stepper = MakeSimStepper(config_, jobs_, policy_);
  pacing_.Reset(options_.speed);
  speed_gauge_->Set(pacing_.speed());
  if (actuator_ != nullptr) {
    actuator_->Start();
  }
  while (!stop_.load(std::memory_order_acquire) && !stepper->done()) {
    const double target = options_.batch
                              ? std::numeric_limits<double>::infinity()
                              : pacing_.TargetSimTime();
    stepper->StepUntil(target);
    sim_time_s_.store(stepper->now_s(), std::memory_order_relaxed);
    sim_time_gauge_->Set(stepper->now_s());
    if (stepper->done() || options_.batch) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::max(1, options_.poll_ms)));
  }
  RunResult result = stepper->Finish();
  if (actuator_ != nullptr) {
    // At-least-once wind-down: re-send the final generation. The actuator's
    // fence must discard the duplicate (fence_rejections >= 1 after every
    // completed run with at least one decision) -- the live analogue of the
    // engines' stale-delayed-scale-up fencing.
    if (last_desired_.generation > 0) {
      actuator_->Publish(last_desired_);
    }
    actuator_->Stop();
    const ReconcileTelemetry t = actuator_->telemetry();
    actuator_generation_gauge_->Set(static_cast<double>(actuator_->generation()));
    actuator_fences_gauge_->Set(static_cast<double>(t.fence_rejections));
    std::fprintf(stderr,
                 "faro_serve: actuator %llu generations (%llu converged, "
                 "%llu superseded, %llu fenced), %llu retries\n",
                 static_cast<unsigned long long>(t.generations_published),
                 static_cast<unsigned long long>(t.generations_converged),
                 static_cast<unsigned long long>(t.generations_superseded),
                 static_cast<unsigned long long>(t.fence_rejections),
                 static_cast<unsigned long long>(t.retries));
  }
  complete_.store(true, std::memory_order_release);

  // Final flush: batch-identical artifacts (the summary CSV is the CI
  // byte-identity probe), plus the live feeds for offline inspection.
  if (!options_.summary_out.empty()) {
    if (WriteSummaryCsv(options_.summary_out, result)) {
      std::fprintf(stderr, "faro_serve: wrote summary CSV to %s\n",
                   options_.summary_out.c_str());
    }
  }
  if (!options_.metrics_out.empty()) {
    if (MetricsRegistry::Global().WriteFile(options_.metrics_out)) {
      std::fprintf(stderr, "faro_serve: wrote metrics to %s\n",
                   options_.metrics_out.c_str());
    }
  }
  if (options_.audit != nullptr && !options_.audit_out.empty()) {
    if (options_.audit->WriteJsonl(options_.audit_out)) {
      std::fprintf(stderr, "faro_serve: wrote decision audit to %s\n",
                   options_.audit_out.c_str());
    }
  }
  if (!options_.alerts_out.empty()) {
    std::ofstream out(options_.alerts_out);
    if (out) {
      out << AlertsJsonl();
      std::fprintf(stderr, "faro_serve: wrote alert feed to %s\n",
                   options_.alerts_out.c_str());
    }
  }

  while (options_.linger && !stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return result;
}

}  // namespace faro
