// Wall-clock pacing for replaying a simulated run in (scaled) real time.
//
// A PacingClock maps wall time onto sim time: at speed S, one wall second
// corresponds to S simulated seconds. The replay daemon polls
// TargetSimTime() and steps the simulator up to that target -- pacing only
// throttles *when* events are delivered, never which events or in what
// order, so a paced run is bit-identical to the batch run of the same
// config and seed (DESIGN.md, "Pacing-clock determinism contract").
//
// Speed changes re-anchor the mapping at the current target, so the sim-time
// target is continuous and non-decreasing across SetSpeed calls (a replay
// can never be asked to step backwards). All methods are thread-safe: the
// HTTP control thread adjusts speed while the replay thread polls.

#ifndef SRC_SERVE_PACING_H_
#define SRC_SERVE_PACING_H_

#include <chrono>
#include <mutex>

namespace faro {

class PacingClock {
 public:
  using Clock = std::chrono::steady_clock;

  // Speeds are clamped to [kMinSpeed, kMaxSpeed] (1x .. 10000x).
  static constexpr double kMinSpeed = 1.0;
  static constexpr double kMaxSpeed = 10000.0;

  explicit PacingClock(double speed = 1.0) { Reset(speed); }

  // Restarts the mapping: sim time 0 corresponds to "now".
  void Reset(double speed);

  // Re-anchors at the current target so the target stays continuous, then
  // switches the rate. Returns the clamped speed actually applied.
  double SetSpeed(double speed);
  double speed() const;

  // The sim time the replay should have reached by wall-clock now.
  double TargetSimTime() const { return TargetSimTimeAt(Clock::now()); }
  // Deterministic variant for tests: target at an explicit wall instant.
  double TargetSimTimeAt(Clock::time_point wall_now) const;

 private:
  mutable std::mutex mu_;
  Clock::time_point wall_anchor_;
  double sim_anchor_ = 0.0;  // sim time corresponding to wall_anchor_
  double speed_ = 1.0;
};

}  // namespace faro

#endif  // SRC_SERVE_PACING_H_
