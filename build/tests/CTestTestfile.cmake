# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/queueing_test[1]_include.cmake")
include("/root/repo/build/tests/optim_test[1]_include.cmake")
include("/root/repo/build/tests/core_utility_test[1]_include.cmake")
include("/root/repo/build/tests/core_objectives_test[1]_include.cmake")
include("/root/repo/build/tests/core_autoscaler_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/forecast_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/predictors_test[1]_include.cmake")
include("/root/repo/build/tests/placement_test[1]_include.cmake")
