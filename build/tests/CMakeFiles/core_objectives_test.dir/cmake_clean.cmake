file(REMOVE_RECURSE
  "CMakeFiles/core_objectives_test.dir/core_objectives_test.cc.o"
  "CMakeFiles/core_objectives_test.dir/core_objectives_test.cc.o.d"
  "core_objectives_test"
  "core_objectives_test.pdb"
  "core_objectives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_objectives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
