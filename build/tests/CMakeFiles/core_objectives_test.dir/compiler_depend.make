# Empty compiler generated dependencies file for core_objectives_test.
# This may be replaced when dependencies are built.
