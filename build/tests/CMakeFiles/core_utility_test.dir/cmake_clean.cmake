file(REMOVE_RECURSE
  "CMakeFiles/core_utility_test.dir/core_utility_test.cc.o"
  "CMakeFiles/core_utility_test.dir/core_utility_test.cc.o.d"
  "core_utility_test"
  "core_utility_test.pdb"
  "core_utility_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_utility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
