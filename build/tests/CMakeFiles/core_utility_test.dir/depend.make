# Empty dependencies file for core_utility_test.
# This may be replaced when dependencies are built.
