file(REMOVE_RECURSE
  "CMakeFiles/core_autoscaler_test.dir/core_autoscaler_test.cc.o"
  "CMakeFiles/core_autoscaler_test.dir/core_autoscaler_test.cc.o.d"
  "core_autoscaler_test"
  "core_autoscaler_test.pdb"
  "core_autoscaler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_autoscaler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
