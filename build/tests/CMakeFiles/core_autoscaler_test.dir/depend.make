# Empty dependencies file for core_autoscaler_test.
# This may be replaced when dependencies are built.
