file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_prediction.dir/bench_fig08_prediction.cc.o"
  "CMakeFiles/bench_fig08_prediction.dir/bench_fig08_prediction.cc.o.d"
  "bench_fig08_prediction"
  "bench_fig08_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
