# Empty dependencies file for bench_fig08_prediction.
# This may be replaced when dependencies are built.
