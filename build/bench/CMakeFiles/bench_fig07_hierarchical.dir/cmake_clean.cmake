file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_hierarchical.dir/bench_fig07_hierarchical.cc.o"
  "CMakeFiles/bench_fig07_hierarchical.dir/bench_fig07_hierarchical.cc.o.d"
  "bench_fig07_hierarchical"
  "bench_fig07_hierarchical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
