# Empty dependencies file for bench_fig07_hierarchical.
# This may be replaced when dependencies are built.
