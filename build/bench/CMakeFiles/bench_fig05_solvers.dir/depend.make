# Empty dependencies file for bench_fig05_solvers.
# This may be replaced when dependencies are built.
