file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_solvers.dir/bench_fig05_solvers.cc.o"
  "CMakeFiles/bench_fig05_solvers.dir/bench_fig05_solvers.cc.o.d"
  "bench_fig05_solvers"
  "bench_fig05_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
