file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_sweep.dir/bench_fig15_sweep.cc.o"
  "CMakeFiles/bench_fig15_sweep.dir/bench_fig15_sweep.cc.o.d"
  "bench_fig15_sweep"
  "bench_fig15_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
