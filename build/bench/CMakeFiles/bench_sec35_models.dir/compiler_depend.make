# Empty compiler generated dependencies file for bench_sec35_models.
# This may be replaced when dependencies are built.
