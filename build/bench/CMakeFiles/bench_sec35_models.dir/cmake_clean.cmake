file(REMOVE_RECURSE
  "CMakeFiles/bench_sec35_models.dir/bench_sec35_models.cc.o"
  "CMakeFiles/bench_sec35_models.dir/bench_sec35_models.cc.o.d"
  "bench_sec35_models"
  "bench_sec35_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec35_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
