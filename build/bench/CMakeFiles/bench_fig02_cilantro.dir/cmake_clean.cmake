file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_cilantro.dir/bench_fig02_cilantro.cc.o"
  "CMakeFiles/bench_fig02_cilantro.dir/bench_fig02_cilantro.cc.o.d"
  "bench_fig02_cilantro"
  "bench_fig02_cilantro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_cilantro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
