# Empty dependencies file for bench_fig02_cilantro.
# This may be replaced when dependencies are built.
