# Empty compiler generated dependencies file for bench_fig04_utility.
# This may be replaced when dependencies are built.
