file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_utility.dir/bench_fig04_utility.cc.o"
  "CMakeFiles/bench_fig04_utility.dir/bench_fig04_utility.cc.o.d"
  "bench_fig04_utility"
  "bench_fig04_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
