file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_relaxation.dir/bench_fig06_relaxation.cc.o"
  "CMakeFiles/bench_fig06_relaxation.dir/bench_fig06_relaxation.cc.o.d"
  "bench_fig06_relaxation"
  "bench_fig06_relaxation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_relaxation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
