# Empty dependencies file for bench_fig06_relaxation.
# This may be replaced when dependencies are built.
