# Empty dependencies file for bench_tab03_lost_utility.
# This may be replaced when dependencies are built.
