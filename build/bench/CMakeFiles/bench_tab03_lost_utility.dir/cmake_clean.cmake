file(REMOVE_RECURSE
  "CMakeFiles/bench_tab03_lost_utility.dir/bench_tab03_lost_utility.cc.o"
  "CMakeFiles/bench_tab03_lost_utility.dir/bench_tab03_lost_utility.cc.o.d"
  "bench_tab03_lost_utility"
  "bench_tab03_lost_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_lost_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
