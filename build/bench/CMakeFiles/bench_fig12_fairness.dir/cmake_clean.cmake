file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_fairness.dir/bench_fig12_fairness.cc.o"
  "CMakeFiles/bench_fig12_fairness.dir/bench_fig12_fairness.cc.o.d"
  "bench_fig12_fairness"
  "bench_fig12_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
