file(REMOVE_RECURSE
  "CMakeFiles/bench_tab07_matched.dir/bench_tab07_matched.cc.o"
  "CMakeFiles/bench_tab07_matched.dir/bench_tab07_matched.cc.o.d"
  "bench_tab07_matched"
  "bench_tab07_matched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab07_matched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
