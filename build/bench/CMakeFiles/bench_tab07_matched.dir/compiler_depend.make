# Empty compiler generated dependencies file for bench_tab07_matched.
# This may be replaced when dependencies are built.
