# Empty dependencies file for bench_fig14_mixed.
# This may be replaced when dependencies are built.
