file(REMOVE_RECURSE
  "CMakeFiles/bench_tab08_largescale.dir/bench_tab08_largescale.cc.o"
  "CMakeFiles/bench_tab08_largescale.dir/bench_tab08_largescale.cc.o.d"
  "bench_tab08_largescale"
  "bench_tab08_largescale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab08_largescale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
