# Empty dependencies file for bench_tab08_largescale.
# This may be replaced when dependencies are built.
