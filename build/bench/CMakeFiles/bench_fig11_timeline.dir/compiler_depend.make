# Empty compiler generated dependencies file for bench_fig11_timeline.
# This may be replaced when dependencies are built.
