file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_variants.dir/bench_fig13_variants.cc.o"
  "CMakeFiles/bench_fig13_variants.dir/bench_fig13_variants.cc.o.d"
  "bench_fig13_variants"
  "bench_fig13_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
