# Empty dependencies file for bench_fig13_variants.
# This may be replaced when dependencies are built.
