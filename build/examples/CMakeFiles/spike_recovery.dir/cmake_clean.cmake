file(REMOVE_RECURSE
  "CMakeFiles/spike_recovery.dir/spike_recovery.cpp.o"
  "CMakeFiles/spike_recovery.dir/spike_recovery.cpp.o.d"
  "spike_recovery"
  "spike_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spike_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
