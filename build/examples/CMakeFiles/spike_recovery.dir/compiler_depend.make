# Empty compiler generated dependencies file for spike_recovery.
# This may be replaced when dependencies are built.
