# Empty dependencies file for multi_tenant_cluster.
# This may be replaced when dependencies are built.
