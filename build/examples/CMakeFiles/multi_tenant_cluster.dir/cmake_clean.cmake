file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_cluster.dir/multi_tenant_cluster.cpp.o"
  "CMakeFiles/multi_tenant_cluster.dir/multi_tenant_cluster.cpp.o.d"
  "multi_tenant_cluster"
  "multi_tenant_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
