# Empty dependencies file for pipeline_slo.
# This may be replaced when dependencies are built.
