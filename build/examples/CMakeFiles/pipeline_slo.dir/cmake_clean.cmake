file(REMOVE_RECURSE
  "CMakeFiles/pipeline_slo.dir/pipeline_slo.cpp.o"
  "CMakeFiles/pipeline_slo.dir/pipeline_slo.cpp.o.d"
  "pipeline_slo"
  "pipeline_slo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_slo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
