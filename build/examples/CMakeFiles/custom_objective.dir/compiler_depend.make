# Empty compiler generated dependencies file for custom_objective.
# This may be replaced when dependencies are built.
