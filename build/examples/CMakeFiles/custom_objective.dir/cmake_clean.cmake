file(REMOVE_RECURSE
  "CMakeFiles/custom_objective.dir/custom_objective.cpp.o"
  "CMakeFiles/custom_objective.dir/custom_objective.cpp.o.d"
  "custom_objective"
  "custom_objective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_objective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
