# Empty dependencies file for faro_optim.
# This may be replaced when dependencies are built.
