file(REMOVE_RECURSE
  "libfaro_optim.a"
)
