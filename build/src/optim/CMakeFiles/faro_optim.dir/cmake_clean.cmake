file(REMOVE_RECURSE
  "CMakeFiles/faro_optim.dir/auglag.cc.o"
  "CMakeFiles/faro_optim.dir/auglag.cc.o.d"
  "CMakeFiles/faro_optim.dir/cobyla.cc.o"
  "CMakeFiles/faro_optim.dir/cobyla.cc.o.d"
  "CMakeFiles/faro_optim.dir/de.cc.o"
  "CMakeFiles/faro_optim.dir/de.cc.o.d"
  "CMakeFiles/faro_optim.dir/linalg.cc.o"
  "CMakeFiles/faro_optim.dir/linalg.cc.o.d"
  "CMakeFiles/faro_optim.dir/neldermead.cc.o"
  "CMakeFiles/faro_optim.dir/neldermead.cc.o.d"
  "CMakeFiles/faro_optim.dir/problem.cc.o"
  "CMakeFiles/faro_optim.dir/problem.cc.o.d"
  "libfaro_optim.a"
  "libfaro_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faro_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
