
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optim/auglag.cc" "src/optim/CMakeFiles/faro_optim.dir/auglag.cc.o" "gcc" "src/optim/CMakeFiles/faro_optim.dir/auglag.cc.o.d"
  "/root/repo/src/optim/cobyla.cc" "src/optim/CMakeFiles/faro_optim.dir/cobyla.cc.o" "gcc" "src/optim/CMakeFiles/faro_optim.dir/cobyla.cc.o.d"
  "/root/repo/src/optim/de.cc" "src/optim/CMakeFiles/faro_optim.dir/de.cc.o" "gcc" "src/optim/CMakeFiles/faro_optim.dir/de.cc.o.d"
  "/root/repo/src/optim/linalg.cc" "src/optim/CMakeFiles/faro_optim.dir/linalg.cc.o" "gcc" "src/optim/CMakeFiles/faro_optim.dir/linalg.cc.o.d"
  "/root/repo/src/optim/neldermead.cc" "src/optim/CMakeFiles/faro_optim.dir/neldermead.cc.o" "gcc" "src/optim/CMakeFiles/faro_optim.dir/neldermead.cc.o.d"
  "/root/repo/src/optim/problem.cc" "src/optim/CMakeFiles/faro_optim.dir/problem.cc.o" "gcc" "src/optim/CMakeFiles/faro_optim.dir/problem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/faro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
