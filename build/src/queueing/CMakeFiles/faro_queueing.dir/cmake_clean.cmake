file(REMOVE_RECURSE
  "CMakeFiles/faro_queueing.dir/ggc.cc.o"
  "CMakeFiles/faro_queueing.dir/ggc.cc.o.d"
  "CMakeFiles/faro_queueing.dir/mdc.cc.o"
  "CMakeFiles/faro_queueing.dir/mdc.cc.o.d"
  "CMakeFiles/faro_queueing.dir/mmc.cc.o"
  "CMakeFiles/faro_queueing.dir/mmc.cc.o.d"
  "libfaro_queueing.a"
  "libfaro_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faro_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
