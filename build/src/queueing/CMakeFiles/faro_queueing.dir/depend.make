# Empty dependencies file for faro_queueing.
# This may be replaced when dependencies are built.
