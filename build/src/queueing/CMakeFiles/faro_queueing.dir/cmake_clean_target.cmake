file(REMOVE_RECURSE
  "libfaro_queueing.a"
)
