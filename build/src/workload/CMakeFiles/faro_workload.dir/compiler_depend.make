# Empty compiler generated dependencies file for faro_workload.
# This may be replaced when dependencies are built.
