file(REMOVE_RECURSE
  "CMakeFiles/faro_workload.dir/synthetic.cc.o"
  "CMakeFiles/faro_workload.dir/synthetic.cc.o.d"
  "CMakeFiles/faro_workload.dir/trace_io.cc.o"
  "CMakeFiles/faro_workload.dir/trace_io.cc.o.d"
  "libfaro_workload.a"
  "libfaro_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faro_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
