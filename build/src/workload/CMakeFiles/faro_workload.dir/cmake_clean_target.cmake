file(REMOVE_RECURSE
  "libfaro_workload.a"
)
