file(REMOVE_RECURSE
  "CMakeFiles/faro_baselines.dir/baselines.cc.o"
  "CMakeFiles/faro_baselines.dir/baselines.cc.o.d"
  "CMakeFiles/faro_baselines.dir/cilantro.cc.o"
  "CMakeFiles/faro_baselines.dir/cilantro.cc.o.d"
  "libfaro_baselines.a"
  "libfaro_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faro_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
