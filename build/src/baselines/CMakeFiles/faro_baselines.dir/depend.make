# Empty dependencies file for faro_baselines.
# This may be replaced when dependencies are built.
