file(REMOVE_RECURSE
  "libfaro_baselines.a"
)
