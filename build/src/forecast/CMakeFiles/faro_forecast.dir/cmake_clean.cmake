file(REMOVE_RECURSE
  "CMakeFiles/faro_forecast.dir/adapter.cc.o"
  "CMakeFiles/faro_forecast.dir/adapter.cc.o.d"
  "CMakeFiles/faro_forecast.dir/arma.cc.o"
  "CMakeFiles/faro_forecast.dir/arma.cc.o.d"
  "CMakeFiles/faro_forecast.dir/dataset.cc.o"
  "CMakeFiles/faro_forecast.dir/dataset.cc.o.d"
  "CMakeFiles/faro_forecast.dir/deepar.cc.o"
  "CMakeFiles/faro_forecast.dir/deepar.cc.o.d"
  "CMakeFiles/faro_forecast.dir/holtwinters.cc.o"
  "CMakeFiles/faro_forecast.dir/holtwinters.cc.o.d"
  "CMakeFiles/faro_forecast.dir/lstm.cc.o"
  "CMakeFiles/faro_forecast.dir/lstm.cc.o.d"
  "CMakeFiles/faro_forecast.dir/nhits.cc.o"
  "CMakeFiles/faro_forecast.dir/nhits.cc.o.d"
  "CMakeFiles/faro_forecast.dir/nn.cc.o"
  "CMakeFiles/faro_forecast.dir/nn.cc.o.d"
  "CMakeFiles/faro_forecast.dir/prophet.cc.o"
  "CMakeFiles/faro_forecast.dir/prophet.cc.o.d"
  "CMakeFiles/faro_forecast.dir/prophet_adapter.cc.o"
  "CMakeFiles/faro_forecast.dir/prophet_adapter.cc.o.d"
  "libfaro_forecast.a"
  "libfaro_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faro_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
