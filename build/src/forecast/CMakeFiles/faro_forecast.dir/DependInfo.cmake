
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forecast/adapter.cc" "src/forecast/CMakeFiles/faro_forecast.dir/adapter.cc.o" "gcc" "src/forecast/CMakeFiles/faro_forecast.dir/adapter.cc.o.d"
  "/root/repo/src/forecast/arma.cc" "src/forecast/CMakeFiles/faro_forecast.dir/arma.cc.o" "gcc" "src/forecast/CMakeFiles/faro_forecast.dir/arma.cc.o.d"
  "/root/repo/src/forecast/dataset.cc" "src/forecast/CMakeFiles/faro_forecast.dir/dataset.cc.o" "gcc" "src/forecast/CMakeFiles/faro_forecast.dir/dataset.cc.o.d"
  "/root/repo/src/forecast/deepar.cc" "src/forecast/CMakeFiles/faro_forecast.dir/deepar.cc.o" "gcc" "src/forecast/CMakeFiles/faro_forecast.dir/deepar.cc.o.d"
  "/root/repo/src/forecast/holtwinters.cc" "src/forecast/CMakeFiles/faro_forecast.dir/holtwinters.cc.o" "gcc" "src/forecast/CMakeFiles/faro_forecast.dir/holtwinters.cc.o.d"
  "/root/repo/src/forecast/lstm.cc" "src/forecast/CMakeFiles/faro_forecast.dir/lstm.cc.o" "gcc" "src/forecast/CMakeFiles/faro_forecast.dir/lstm.cc.o.d"
  "/root/repo/src/forecast/nhits.cc" "src/forecast/CMakeFiles/faro_forecast.dir/nhits.cc.o" "gcc" "src/forecast/CMakeFiles/faro_forecast.dir/nhits.cc.o.d"
  "/root/repo/src/forecast/nn.cc" "src/forecast/CMakeFiles/faro_forecast.dir/nn.cc.o" "gcc" "src/forecast/CMakeFiles/faro_forecast.dir/nn.cc.o.d"
  "/root/repo/src/forecast/prophet.cc" "src/forecast/CMakeFiles/faro_forecast.dir/prophet.cc.o" "gcc" "src/forecast/CMakeFiles/faro_forecast.dir/prophet.cc.o.d"
  "/root/repo/src/forecast/prophet_adapter.cc" "src/forecast/CMakeFiles/faro_forecast.dir/prophet_adapter.cc.o" "gcc" "src/forecast/CMakeFiles/faro_forecast.dir/prophet_adapter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/faro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/faro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/faro_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/faro_queueing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
