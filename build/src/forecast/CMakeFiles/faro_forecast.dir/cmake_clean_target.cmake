file(REMOVE_RECURSE
  "libfaro_forecast.a"
)
