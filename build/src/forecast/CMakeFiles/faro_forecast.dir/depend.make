# Empty dependencies file for faro_forecast.
# This may be replaced when dependencies are built.
