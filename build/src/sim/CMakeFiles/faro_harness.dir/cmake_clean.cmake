file(REMOVE_RECURSE
  "CMakeFiles/faro_harness.dir/harness.cc.o"
  "CMakeFiles/faro_harness.dir/harness.cc.o.d"
  "libfaro_harness.a"
  "libfaro_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faro_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
