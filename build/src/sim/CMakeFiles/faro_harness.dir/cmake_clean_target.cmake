file(REMOVE_RECURSE
  "libfaro_harness.a"
)
