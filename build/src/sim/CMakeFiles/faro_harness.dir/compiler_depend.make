# Empty compiler generated dependencies file for faro_harness.
# This may be replaced when dependencies are built.
