# Empty dependencies file for faro_sim.
# This may be replaced when dependencies are built.
