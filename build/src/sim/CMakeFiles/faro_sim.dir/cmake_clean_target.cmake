file(REMOVE_RECURSE
  "libfaro_sim.a"
)
