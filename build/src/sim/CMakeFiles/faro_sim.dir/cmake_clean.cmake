file(REMOVE_RECURSE
  "CMakeFiles/faro_sim.dir/placement.cc.o"
  "CMakeFiles/faro_sim.dir/placement.cc.o.d"
  "CMakeFiles/faro_sim.dir/report.cc.o"
  "CMakeFiles/faro_sim.dir/report.cc.o.d"
  "CMakeFiles/faro_sim.dir/simulator.cc.o"
  "CMakeFiles/faro_sim.dir/simulator.cc.o.d"
  "libfaro_sim.a"
  "libfaro_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faro_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
