file(REMOVE_RECURSE
  "CMakeFiles/faro_common.dir/rng.cc.o"
  "CMakeFiles/faro_common.dir/rng.cc.o.d"
  "CMakeFiles/faro_common.dir/series.cc.o"
  "CMakeFiles/faro_common.dir/series.cc.o.d"
  "CMakeFiles/faro_common.dir/stats.cc.o"
  "CMakeFiles/faro_common.dir/stats.cc.o.d"
  "libfaro_common.a"
  "libfaro_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faro_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
