# Empty compiler generated dependencies file for faro_common.
# This may be replaced when dependencies are built.
