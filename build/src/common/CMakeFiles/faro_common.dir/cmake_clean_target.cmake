file(REMOVE_RECURSE
  "libfaro_common.a"
)
