# Empty compiler generated dependencies file for faro_core.
# This may be replaced when dependencies are built.
