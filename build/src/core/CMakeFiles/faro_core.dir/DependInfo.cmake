
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admission.cc" "src/core/CMakeFiles/faro_core.dir/admission.cc.o" "gcc" "src/core/CMakeFiles/faro_core.dir/admission.cc.o.d"
  "/root/repo/src/core/autoscaler.cc" "src/core/CMakeFiles/faro_core.dir/autoscaler.cc.o" "gcc" "src/core/CMakeFiles/faro_core.dir/autoscaler.cc.o.d"
  "/root/repo/src/core/budget.cc" "src/core/CMakeFiles/faro_core.dir/budget.cc.o" "gcc" "src/core/CMakeFiles/faro_core.dir/budget.cc.o.d"
  "/root/repo/src/core/objectives.cc" "src/core/CMakeFiles/faro_core.dir/objectives.cc.o" "gcc" "src/core/CMakeFiles/faro_core.dir/objectives.cc.o.d"
  "/root/repo/src/core/penalty.cc" "src/core/CMakeFiles/faro_core.dir/penalty.cc.o" "gcc" "src/core/CMakeFiles/faro_core.dir/penalty.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/faro_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/faro_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/predictor.cc" "src/core/CMakeFiles/faro_core.dir/predictor.cc.o" "gcc" "src/core/CMakeFiles/faro_core.dir/predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/faro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/faro_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/faro_optim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
