file(REMOVE_RECURSE
  "CMakeFiles/faro_core.dir/admission.cc.o"
  "CMakeFiles/faro_core.dir/admission.cc.o.d"
  "CMakeFiles/faro_core.dir/autoscaler.cc.o"
  "CMakeFiles/faro_core.dir/autoscaler.cc.o.d"
  "CMakeFiles/faro_core.dir/budget.cc.o"
  "CMakeFiles/faro_core.dir/budget.cc.o.d"
  "CMakeFiles/faro_core.dir/objectives.cc.o"
  "CMakeFiles/faro_core.dir/objectives.cc.o.d"
  "CMakeFiles/faro_core.dir/penalty.cc.o"
  "CMakeFiles/faro_core.dir/penalty.cc.o.d"
  "CMakeFiles/faro_core.dir/pipeline.cc.o"
  "CMakeFiles/faro_core.dir/pipeline.cc.o.d"
  "CMakeFiles/faro_core.dir/predictor.cc.o"
  "CMakeFiles/faro_core.dir/predictor.cc.o.d"
  "libfaro_core.a"
  "libfaro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
