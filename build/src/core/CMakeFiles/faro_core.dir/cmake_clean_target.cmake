file(REMOVE_RECURSE
  "libfaro_core.a"
)
