// The queueing memoisation layer must be invisible: cached entry points agree
// with the pure functions everywhere (including the rho -> 1 instability edge
// and the overloaded region), and the exponential-probe replica sizing agrees
// with the original linear scan it replaced.

#include "src/queueing/cache.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/queueing/mdc.h"
#include "src/queueing/mmc.h"

namespace faro {
namespace {

// Exact-or-within-1e-12 comparison that also accepts matching infinities.
void ExpectSame(double cached, double uncached, const std::string& label) {
  if (std::isinf(uncached) || std::isinf(cached)) {
    EXPECT_EQ(cached, uncached) << label;
    return;
  }
  EXPECT_NEAR(cached, uncached, 1e-12) << label;
}

class QueueingCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetQueueingCacheEnabled(true);
    ClearQueueingCache();
  }
};

TEST_F(QueueingCacheTest, CachedErlangCMatchesUncachedSweep) {
  for (uint32_t servers : {1u, 2u, 5u, 12u, 40u, 200u}) {
    // Offered load sweeps through light traffic, near-saturation
    // (rho -> 1), exact saturation, and overload.
    for (const double frac : {0.0, 0.1, 0.5, 0.9, 0.99, 0.9999, 1.0, 1.5}) {
      const double offered = frac * static_cast<double>(servers);
      const double uncached = ErlangC(servers, offered);
      const std::string label =
          "servers=" + std::to_string(servers) + " offered=" + std::to_string(offered);
      ExpectSame(CachedErlangC(servers, offered), uncached, label);
      // Second call is a guaranteed hit and must return the same bits.
      EXPECT_EQ(CachedErlangC(servers, offered), CachedErlangC(servers, offered)) << label;
      ExpectSame(CachedErlangC(servers, offered), uncached, label + " (hit)");
    }
  }
}

TEST_F(QueueingCacheTest, CachedMdcLatencyMatchesUncachedSweep) {
  for (uint32_t servers : {1u, 2u, 4u, 9u, 33u}) {
    for (const double p : {0.1, 0.18}) {
      for (const double q : {0.5, 0.9, 0.99}) {
        for (const double rho : {0.0, 0.2, 0.8, 0.95, 0.999, 1.0, 1.3}) {
          const double lambda = rho * static_cast<double>(servers) / p;
          const double uncached = MdcLatencyPercentile(servers, lambda, p, q);
          const std::string label = "servers=" + std::to_string(servers) +
                                    " lambda=" + std::to_string(lambda) +
                                    " p=" + std::to_string(p) + " q=" + std::to_string(q);
          ExpectSame(CachedMdcLatencyPercentile(servers, lambda, p, q), uncached, label);
          ExpectSame(CachedMdcLatencyPercentile(servers, lambda, p, q), uncached,
                     label + " (hit)");
        }
      }
    }
  }
}

TEST_F(QueueingCacheTest, RelaxedMdcLatencyUnaffectedByCacheState) {
  // RelaxedMdcLatency routes through the cache internally; disabling the
  // cache must not change a single result.
  std::vector<double> cached_values;
  for (double servers = 0.5; servers <= 24.0; servers += 0.37) {
    cached_values.push_back(RelaxedMdcLatency(servers, 30.0, 0.18, 0.99));
  }
  SetQueueingCacheEnabled(false);
  size_t i = 0;
  for (double servers = 0.5; servers <= 24.0; servers += 0.37) {
    ExpectSame(cached_values[i++], RelaxedMdcLatency(servers, 30.0, 0.18, 0.99),
               "servers=" + std::to_string(servers));
  }
  SetQueueingCacheEnabled(true);
}

TEST_F(QueueingCacheTest, RepeatedQueriesHitTheCache) {
  ClearQueueingCache();
  (void)CachedMdcLatencyPercentile(8, 30.0, 0.18, 0.99);
  const QueueingCacheStats cold = GetQueueingCacheStats();
  EXPECT_GT(cold.misses, 0u);
  for (int repeat = 0; repeat < 100; ++repeat) {
    (void)CachedMdcLatencyPercentile(8, 30.0, 0.18, 0.99);
  }
  const QueueingCacheStats warm = GetQueueingCacheStats();
  EXPECT_GE(warm.hits, cold.hits + 100);
  EXPECT_EQ(warm.misses, cold.misses);
}

TEST_F(QueueingCacheTest, EvictionsCountedOnCollidingInserts) {
  // The tables are fixed-size and direct-mapped, so inserting far more
  // distinct keys than slots must overwrite live entries -- each overwrite of
  // a different key counts as one eviction. Sweep enough distinct
  // (servers, lambda) pairs to guarantee collisions regardless of table size.
  ClearQueueingCache();
  for (uint32_t servers = 1; servers <= 64; ++servers) {
    for (int k = 0; k < 1024; ++k) {
      const double lambda = 0.01 * static_cast<double>(k + 1) * servers;
      (void)CachedMdcLatencyPercentile(servers, lambda, 0.18, 0.99);
    }
  }
  const QueueingCacheStats stats = GetQueueingCacheStats();
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.evictions, 0u);
  // Every eviction is a miss that displaced something; it can never outnumber
  // the misses that performed inserts.
  EXPECT_LE(stats.evictions, stats.misses);
  // Re-querying one key twice in a row is a hit and must not evict.
  const QueueingCacheStats before = GetQueueingCacheStats();
  (void)CachedErlangC(3, 1.5);
  (void)CachedErlangC(3, 1.5);
  const QueueingCacheStats after = GetQueueingCacheStats();
  EXPECT_GE(after.hits, before.hits + 1);
}

TEST_F(QueueingCacheTest, GlobalStatsIncludeCallingThread) {
  ClearQueueingCache();
  const QueueingCacheStats global_before = GetGlobalQueueingCacheStats();
  (void)CachedErlangC(5, 2.0);
  (void)CachedErlangC(5, 2.0);
  const QueueingCacheStats global_after = GetGlobalQueueingCacheStats();
  EXPECT_GE(global_after.misses, global_before.misses + 1);
  EXPECT_GE(global_after.hits, global_before.hits + 1);
}

TEST_F(QueueingCacheTest, DisabledCacheBypassesTables) {
  ClearQueueingCache();
  SetQueueingCacheEnabled(false);
  (void)CachedErlangC(8, 4.0);
  (void)CachedMdcLatencyPercentile(8, 30.0, 0.18, 0.99);
  const QueueingCacheStats stats = GetQueueingCacheStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  SetQueueingCacheEnabled(true);
}

// Reference implementation: the linear scan RequiredReplicasMdc used before
// the exponential-probe + binary-search rewrite.
uint32_t LinearScanRequiredReplicas(double arrival_rate, double service_time, double slo,
                                    double q, uint32_t max_replicas) {
  if (arrival_rate <= 0.0) {
    return 1;
  }
  const double offered = arrival_rate * service_time;
  uint32_t n = std::max<uint32_t>(1, static_cast<uint32_t>(std::floor(offered)) + 1);
  for (; n <= max_replicas; ++n) {
    if (MdcLatencyPercentile(n, arrival_rate, service_time, q) <= slo) {
      return n;
    }
  }
  return max_replicas;
}

TEST_F(QueueingCacheTest, RequiredReplicasMatchesLinearScan) {
  for (const double p : {0.1, 0.18}) {
    for (const double q : {0.9, 0.99}) {
      for (const double slo_mult : {1.05, 2.0, 4.0, 10.0}) {
        const double slo = slo_mult * p;
        for (double lambda = 0.0; lambda <= 400.0; lambda += 7.3) {
          EXPECT_EQ(RequiredReplicasMdc(lambda, p, slo, q),
                    LinearScanRequiredReplicas(lambda, p, slo, q, 100000))
              << "lambda=" << lambda << " p=" << p << " slo=" << slo << " q=" << q;
        }
      }
    }
  }
}

TEST_F(QueueingCacheTest, RequiredReplicasRespectsSmallCaps) {
  // Unsatisfiable SLO (below the service time): both implementations give up
  // at the cap.
  for (const uint32_t cap : {1u, 2u, 3u, 10u}) {
    EXPECT_EQ(RequiredReplicasMdc(50.0, 0.18, 0.1, 0.99, cap),
              LinearScanRequiredReplicas(50.0, 0.18, 0.1, 0.99, cap))
        << "cap=" << cap;
    // Offered load already above the cap.
    EXPECT_EQ(RequiredReplicasMdc(1000.0, 0.18, 0.72, 0.99, cap), cap) << "cap=" << cap;
  }
  // Zero load short-circuits to one replica.
  EXPECT_EQ(RequiredReplicasMdc(0.0, 0.18, 0.72, 0.99), 1u);
  EXPECT_EQ(RequiredReplicasMdc(-3.0, 0.18, 0.72, 0.99), 1u);
}

TEST_F(QueueingCacheTest, RequiredReplicasStillMonotoneInLoad) {
  uint32_t previous = 0;
  for (double lambda = 1.0; lambda <= 300.0; lambda += 3.0) {
    const uint32_t n = RequiredReplicasMdc(lambda, 0.18, 0.72, 0.99);
    EXPECT_GE(n, previous) << "lambda=" << lambda;
    previous = n;
  }
}

}  // namespace
}  // namespace faro
