// Chaos determinism: the same FaultPlan and seed must yield bit-identical
// fault schedules, applied-fault logs, and RunResults when the autoscaler's
// solve fan-out runs on 1, 2, or 8 threads. The injector draws from its own
// RNG stream advanced in simulation-event order, so thread count -- which
// only affects the solver -- can never perturb the chaos.
//
// These tests run under TSan in CI (cmake -DFARO_SANITIZE=thread, then
// ctest -R Determinism) to prove the combination is also race-free.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/faults/faultplan.h"
#include "src/sim/harness.h"
#include "src/sim/report.h"

namespace faro {
namespace {

// Force the shared pool to 4 threads before its first use, so parallelism is
// real even on single-core CI machines.
const bool kForcePoolSize = [] {
  setenv("FARO_THREADS", "4", /*overwrite=*/0);
  return true;
}();

ExperimentSetup ChaosSetup(const std::string& scenario) {
  ExperimentSetup setup;
  setup.num_jobs = 4;
  setup.right_size_replicas = 14.0;
  setup.capacity = 12.0;
  setup.processing_jitter = 0.05;
  setup.cold_start_jitter_s = 10.0;
  // 4 three-replica nodes so node scenarios bite.
  std::vector<std::string> node_names;
  for (int n = 0; n < 4; ++n) {
    const std::string name = "node" + std::to_string(n);
    node_names.push_back(name);
    setup.nodes.push_back(Node{name, 3.0, 3.0});
  }
  setup.faults = MakeFaultScenario(scenario, 360.0 * 60.0, node_names);
  return setup;
}

// The SLO-attribution bit-exactness invariant (src/obs/attribution.h): in
// every metrics window, the left-to-right (enum-order) sum of the seven cause
// buckets reconstructs that window's lost utility exactly.
void ExpectAttributionExact(const RunResult& result, const std::string& label) {
  for (size_t j = 0; j < result.jobs.size(); ++j) {
    const JobRunStats& job = result.jobs[j];
    ASSERT_EQ(job.minute_lost_by_cause[0].size(), job.minute_utility.size())
        << label << " job " << j;
    for (size_t w = 0; w < job.minute_utility.size(); ++w) {
      const double lost = std::max(0.0, 1.0 - job.minute_utility[w]);
      double sum = 0.0;
      for (size_t c = 0; c < kNumLossCauses; ++c) {
        sum += job.minute_lost_by_cause[c][w];
      }
      ASSERT_EQ(sum, lost) << label << " job " << j << " window " << w;
    }
  }
}

void ExpectRunsIdentical(const RunResult& a, const RunResult& b, const std::string& label) {
  // Fault schedule and log, entry by entry.
  ASSERT_EQ(a.fault_log.size(), b.fault_log.size()) << label;
  for (size_t i = 0; i < a.fault_log.size(); ++i) {
    EXPECT_EQ(a.fault_log[i], b.fault_log[i]) << label << " fault " << i;
  }
  EXPECT_EQ(a.faults.replicas_killed, b.faults.replicas_killed) << label;
  EXPECT_EQ(a.faults.node_crashes, b.faults.node_crashes) << label;
  EXPECT_EQ(a.faults.bursts, b.faults.bursts) << label;
  EXPECT_EQ(a.faults.actuation_drops, b.faults.actuation_drops) << label;
  EXPECT_EQ(a.faults.actuation_delays, b.faults.actuation_delays) << label;
  EXPECT_EQ(a.faults.actuation_partials, b.faults.actuation_partials) << label;
  EXPECT_EQ(a.faults.cold_start_stragglers, b.faults.cold_start_stragglers) << label;
  // Simulation outcomes, bitwise.
  EXPECT_EQ(a.cluster_lost_utility, b.cluster_lost_utility) << label;
  EXPECT_EQ(a.cluster_slo_violation_rate, b.cluster_slo_violation_rate) << label;
  ASSERT_EQ(a.jobs.size(), b.jobs.size()) << label;
  for (size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].arrivals, b.jobs[j].arrivals) << label << " job " << j;
    EXPECT_EQ(a.jobs[j].injected_failures, b.jobs[j].injected_failures)
        << label << " job " << j;
    EXPECT_EQ(a.jobs[j].capacity_seconds_lost, b.jobs[j].capacity_seconds_lost)
        << label << " job " << j;
    EXPECT_EQ(a.jobs[j].recovery_seconds, b.jobs[j].recovery_seconds)
        << label << " job " << j;
    EXPECT_EQ(a.jobs[j].utility_reconverge_s, b.jobs[j].utility_reconverge_s)
        << label << " job " << j;
    // SLO ledger and causal attribution, bitwise.
    for (size_t c = 0; c < kNumLossCauses; ++c) {
      EXPECT_EQ(a.jobs[j].lost_by_cause[c], b.jobs[j].lost_by_cause[c])
          << label << " job " << j << " cause " << LossCauseName(c);
      ASSERT_EQ(a.jobs[j].minute_lost_by_cause[c], b.jobs[j].minute_lost_by_cause[c])
          << label << " job " << j << " cause " << LossCauseName(c);
    }
    EXPECT_EQ(a.jobs[j].error_budget_consumed, b.jobs[j].error_budget_consumed)
        << label << " job " << j;
    EXPECT_EQ(a.jobs[j].burn_alerts_fast, b.jobs[j].burn_alerts_fast) << label << " job " << j;
    EXPECT_EQ(a.jobs[j].burn_alerts_slow, b.jobs[j].burn_alerts_slow) << label << " job " << j;
    EXPECT_EQ(a.jobs[j].first_burn_alert_s, b.jobs[j].first_burn_alert_s)
        << label << " job " << j;
    ASSERT_EQ(a.jobs[j].minute_burn_fast, b.jobs[j].minute_burn_fast) << label << " job " << j;
    ASSERT_EQ(a.jobs[j].minute_burn_slow, b.jobs[j].minute_burn_slow) << label << " job " << j;
    ASSERT_EQ(a.jobs[j].minute_violations, b.jobs[j].minute_violations)
        << label << " job " << j;
    ASSERT_EQ(a.jobs[j].minute_p99.size(), b.jobs[j].minute_p99.size())
        << label << " job " << j;
    for (size_t t = 0; t < a.jobs[j].minute_p99.size(); ++t) {
      ASSERT_EQ(a.jobs[j].minute_p99[t], b.jobs[j].minute_p99[t])
          << label << " job " << j << " minute " << t;
    }
  }
  for (size_t c = 0; c < kNumLossCauses; ++c) {
    EXPECT_EQ(a.cluster_lost_by_cause[c], b.cluster_lost_by_cause[c])
        << label << " cause " << LossCauseName(c);
  }
  EXPECT_EQ(a.cluster_burn_alerts_fast, b.cluster_burn_alerts_fast) << label;
  EXPECT_EQ(a.cluster_burn_alerts_slow, b.cluster_burn_alerts_slow) << label;
}

TEST(ChaosDeterminismTest, BitIdenticalAcrossSolverThreadCounts) {
  ASSERT_TRUE(kForcePoolSize);
  for (const std::string& scenario : FaultScenarioNames()) {
    const ExperimentSetup setup = ChaosSetup(scenario);
    const PreparedWorkload workload = PrepareWorkload(setup);
    std::vector<RunResult> runs;
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      FaroConfig overrides;
      overrides.solve_parallelism = threads;
      auto policy = MakePolicy("Faro-FairSum", nullptr, &overrides);
      runs.push_back(RunPolicy(setup, workload, *policy, setup.seed + 1000));
    }
    ExpectRunsIdentical(runs[0], runs[1], scenario + " 1v2");
    ExpectRunsIdentical(runs[0], runs[2], scenario + " 1v8");
    // The chaos actually fired (the scenarios are not vacuous).
    EXPECT_FALSE(runs[0].fault_log.empty()) << scenario;
    // Bucket sums reconstruct each window's lost utility bit for bit, and the
    // exported attribution CSV is byte-identical at every thread count.
    ExpectAttributionExact(runs[0], scenario);
    std::vector<std::string> csvs;
    for (size_t i = 0; i < runs.size(); ++i) {
      const std::string path = testing::TempDir() + "slo_" + scenario + "_" +
                               std::to_string(i) + ".csv";
      ASSERT_TRUE(WriteSloCsv(path, runs[i])) << path;
      std::ifstream in(path);
      csvs.emplace_back(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>{});
    }
    EXPECT_EQ(csvs[0], csvs[1]) << scenario;
    EXPECT_EQ(csvs[0], csvs[2]) << scenario;
  }
}

TEST(ChaosDeterminismTest, AttributionExactFaultFree) {
  ExperimentSetup setup = ChaosSetup("node-crash");
  setup.faults = FaultPlan{};  // fault-free: same cluster, no chaos
  const PreparedWorkload workload = PrepareWorkload(setup);
  auto policy = MakePolicy("Faro-FairSum", nullptr);
  const RunResult result = RunPolicy(setup, workload, *policy, setup.seed + 1000);
  ExpectAttributionExact(result, "fault-free");
  // Without injected faults the fault-capacity bucket must stay empty.
  EXPECT_EQ(result.cluster_lost_by_cause[CauseIndex(LossCause::kFaultCapacity)], 0.0);
}

TEST(ChaosDeterminismTest, SameSeedSameSchedule) {
  const ExperimentSetup setup = ChaosSetup("replica-burst");
  const PreparedWorkload workload = PrepareWorkload(setup);
  auto policy_a = MakePolicy("Faro-FairSum", nullptr);
  auto policy_b = MakePolicy("Faro-FairSum", nullptr);
  const RunResult a = RunPolicy(setup, workload, *policy_a, 4242);
  const RunResult b = RunPolicy(setup, workload, *policy_b, 4242);
  ExpectRunsIdentical(a, b, "same-seed");
}

TEST(ChaosDeterminismTest, PlanSeedChangesStochasticSchedule) {
  ExperimentSetup setup = ChaosSetup("flaky-api");
  const PreparedWorkload workload = PrepareWorkload(setup);
  auto policy_a = MakePolicy("Faro-FairSum", nullptr);
  const RunResult a = RunPolicy(setup, workload, *policy_a, 4242);
  setup.faults.seed ^= 0xdecafbadull;
  auto policy_b = MakePolicy("Faro-FairSum", nullptr);
  const RunResult b = RunPolicy(setup, workload, *policy_b, 4242);
  // A different plan seed re-rolls the actuation/straggler draws.
  EXPECT_NE(a.fault_log, b.fault_log);
}

}  // namespace
}  // namespace faro
