#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "src/optim/auglag.h"
#include "src/optim/cobyla.h"
#include "src/optim/de.h"
#include "src/optim/linalg.h"
#include "src/optim/multistart.h"
#include "src/optim/neldermead.h"
#include "src/optim/problem.h"

namespace faro {
namespace {

TEST(LinAlgTest, LuSolvesDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(1, 1) = 4.0;
  std::vector<double> x;
  ASSERT_TRUE(LuSolve(a, std::vector<double>{2.0, 8.0}, x));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LinAlgTest, LuSolvesWithPivoting) {
  // Leading zero forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  std::vector<double> x;
  ASSERT_TRUE(LuSolve(a, std::vector<double>{3.0, 5.0}, x));
  EXPECT_NEAR(x[0], 5.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LinAlgTest, SingularDetected) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  std::vector<double> x;
  EXPECT_FALSE(LuSolve(a, std::vector<double>{1.0, 2.0}, x));
}

TEST(ProblemTest, MaxViolationIncludesBounds) {
  Problem p(2, [](std::span<const double> x) { return x[0]; });
  p.SetBounds({0.0, 0.0}, {1.0, 1.0});
  p.AddConstraint([](std::span<const double> x) { return x[0] + x[1] - 1.0; });
  const std::vector<double> x{-0.5, 2.0};
  EXPECT_NEAR(p.MaxViolation(x), 1.0, 1e-12);  // upper bound on x1 worst
  const std::vector<double> feasible{0.6, 0.6};
  EXPECT_DOUBLE_EQ(p.MaxViolation(feasible), 0.0);
}

// --- COBYLA on Powell's classic test problems ----------------------------

TEST(CobylaTest, UnconstrainedQuadratic) {
  Problem p(2, [](std::span<const double> x) {
    return 10.0 * (x[0] + 1.0) * (x[0] + 1.0) + (x[1] - 1.0) * (x[1] - 1.0);
  });
  CobylaConfig config;
  config.rho_begin = 1.0;
  config.rho_end = 1e-6;
  const auto result = Cobyla(p, std::vector<double>{0.0, 0.0}, config);
  EXPECT_NEAR(result.x[0], -1.0, 1e-2);
  EXPECT_NEAR(result.x[1], 1.0, 1e-2);
}

TEST(CobylaTest, PowellProblem2CircleConstraint) {
  // minimize x0 * x1  s.t.  1 - x0^2 - x1^2 >= 0.
  // Optimum: f = -1/2 at (±sqrt(2)/2, ∓sqrt(2)/2).
  Problem p(2, [](std::span<const double> x) { return x[0] * x[1]; });
  p.AddConstraint([](std::span<const double> x) { return 1.0 - x[0] * x[0] - x[1] * x[1]; });
  CobylaConfig config;
  config.rho_begin = 0.5;
  config.rho_end = 1e-6;
  const auto result = Cobyla(p, std::vector<double>{1.0, 1.0}, config);
  EXPECT_NEAR(result.value, -0.5, 5e-2);
  EXPECT_LE(result.max_violation, 1e-4);
}

TEST(CobylaTest, LinearProgramWithBounds) {
  // minimize x0 + x1 with x0 >= 1, x1 >= 2 -> 3.
  Problem p(2, [](std::span<const double> x) { return x[0] + x[1]; });
  p.SetBounds({1.0, 2.0}, {100.0, 100.0});
  CobylaConfig config;
  config.rho_begin = 2.0;
  config.rho_end = 1e-6;
  const auto result = Cobyla(p, std::vector<double>{50.0, 50.0}, config);
  EXPECT_NEAR(result.value, 3.0, 1e-2);
  EXPECT_LE(result.max_violation, 1e-4);
}

TEST(CobylaTest, ConstrainedQuadraticKnownOptimum) {
  // minimize (x0 - 2)^2 + (x1 - 1)^2  s.t.  x1 - x0^2 >= 0, 2 - x0 - x1 >= 0.
  // Optimum at (1, 1), f = 1.
  Problem p(2, [](std::span<const double> x) {
    return (x[0] - 2.0) * (x[0] - 2.0) + (x[1] - 1.0) * (x[1] - 1.0);
  });
  p.AddConstraint([](std::span<const double> x) { return x[1] - x[0] * x[0]; });
  p.AddConstraint([](std::span<const double> x) { return 2.0 - x[0] - x[1]; });
  CobylaConfig config;
  config.rho_begin = 0.5;
  config.rho_end = 1e-6;
  config.max_evaluations = 5000;
  const auto result = Cobyla(p, std::vector<double>{0.0, 0.0}, config);
  EXPECT_NEAR(result.value, 1.0, 5e-2);
  EXPECT_LE(result.max_violation, 1e-3);
}

TEST(CobylaTest, Rosenbrock) {
  Problem p(2, [](std::span<const double> x) {
    const double a = x[1] - x[0] * x[0];
    const double b = 1.0 - x[0];
    return 100.0 * a * a + b * b;
  });
  CobylaConfig config;
  config.rho_begin = 0.5;
  config.rho_end = 1e-8;
  config.max_evaluations = 20000;
  const auto result = Cobyla(p, std::vector<double>{-1.2, 1.0}, config);
  EXPECT_LT(result.value, 1e-2);
}

TEST(CobylaTest, InfeasibleStartRecovers) {
  // Start far outside the feasible circle; COBYLA must pull the iterate in.
  Problem p(2, [](std::span<const double> x) { return x[0] + x[1]; });
  p.AddConstraint([](std::span<const double> x) {
    return 1.0 - (x[0] - 1.0) * (x[0] - 1.0) - (x[1] - 1.0) * (x[1] - 1.0);
  });
  CobylaConfig config;
  config.rho_begin = 1.0;
  config.rho_end = 1e-6;
  const auto result = Cobyla(p, std::vector<double>{8.0, 8.0}, config);
  EXPECT_LE(result.max_violation, 1e-3);
  // Optimum of x0 + x1 on that disk is 2 - sqrt(2).
  EXPECT_NEAR(result.value, 2.0 - std::numbers::sqrt2, 0.1);
}

TEST(CobylaTest, RespectsEvaluationBudget) {
  int evals = 0;
  Problem p(3, [&evals](std::span<const double> x) {
    ++evals;
    return x[0] * x[0] + x[1] * x[1] + x[2] * x[2];
  });
  CobylaConfig config;
  config.max_evaluations = 50;
  Cobyla(p, std::vector<double>{5.0, 5.0, 5.0}, config);
  EXPECT_LE(evals, 55);  // small slack for the final bookkeeping
}

TEST(CobylaTest, TenDimensionalSeparableQuadratic) {
  // Shape of the Faro stage-2 problem: many variables, box bounds, one
  // coupling (capacity) constraint.
  const size_t n = 10;
  Problem p(n, [](std::span<const double> x) {
    double sum = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      const double target = 2.0 + static_cast<double>(i);
      sum += (x[i] - target) * (x[i] - target);
    }
    return sum;
  });
  std::vector<double> lo(n, 1.0);
  std::vector<double> hi(n, 100.0);
  p.SetBounds(lo, hi);
  p.AddConstraint([](std::span<const double> x) {
    double sum = 0.0;
    for (const double v : x) {
      sum += v;
    }
    return 200.0 - sum;  // non-binding at the optimum (sum of targets = 65)
  });
  CobylaConfig config;
  config.rho_begin = 2.0;
  config.rho_end = 1e-5;
  config.max_evaluations = 20000;
  const auto result = Cobyla(p, std::vector<double>(n, 1.0), config);
  EXPECT_LT(result.value, 0.5);
  EXPECT_LE(result.max_violation, 1e-4);
}

TEST(CobylaTest, RosenbrockConstrainedToDisk) {
  // min rosenbrock s.t. x^2 + y^2 <= 2; optimum at (1, 1) on the boundary.
  Problem p(2, [](std::span<const double> x) {
    const double a = x[1] - x[0] * x[0];
    const double b = 1.0 - x[0];
    return 100.0 * a * a + b * b;
  });
  p.AddConstraint([](std::span<const double> x) { return 2.0 - x[0] * x[0] - x[1] * x[1]; });
  CobylaConfig config;
  config.rho_begin = 0.5;
  config.rho_end = 1e-7;
  config.max_evaluations = 20000;
  const auto result = Cobyla(p, std::vector<double>{0.0, 0.0}, config);
  EXPECT_NEAR(result.x[0], 1.0, 0.05);
  EXPECT_NEAR(result.x[1], 1.0, 0.1);
  EXPECT_LE(result.max_violation, 1e-4);
}

TEST(CobylaTest, LinearObjectiveOnUnitDisk) {
  // max x0 + x1 on the unit disk -> (sqrt2/2, sqrt2/2), f = -sqrt2.
  Problem p(2, [](std::span<const double> x) { return -(x[0] + x[1]); });
  p.AddConstraint([](std::span<const double> x) { return 1.0 - x[0] * x[0] - x[1] * x[1]; });
  CobylaConfig config;
  config.rho_begin = 0.5;
  config.rho_end = 1e-6;
  const auto result = Cobyla(p, std::vector<double>{0.0, 0.0}, config);
  EXPECT_NEAR(result.value, -std::numbers::sqrt2, 0.02);
  EXPECT_LE(result.max_violation, 1e-4);
}

TEST(CobylaTest, ScipyDocExampleWithLinearConstraints) {
  // min (x0-1)^2 + (x1-2.5)^2 s.t. x0-2x1+2>=0, -x0-2x1+6>=0, -x0+2x1+2>=0,
  // x >= 0. Known optimum (1.4, 1.7).
  Problem p(2, [](std::span<const double> x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] - 2.5) * (x[1] - 2.5);
  });
  p.SetBounds({0.0, 0.0}, {10.0, 10.0});
  p.AddConstraint([](std::span<const double> x) { return x[0] - 2.0 * x[1] + 2.0; });
  p.AddConstraint([](std::span<const double> x) { return -x[0] - 2.0 * x[1] + 6.0; });
  p.AddConstraint([](std::span<const double> x) { return -x[0] + 2.0 * x[1] + 2.0; });
  CobylaConfig config;
  config.rho_begin = 1.0;
  config.rho_end = 1e-7;
  config.max_evaluations = 10000;
  const auto result = Cobyla(p, std::vector<double>{2.0, 0.0}, config);
  EXPECT_NEAR(result.x[0], 1.4, 0.05);
  EXPECT_NEAR(result.x[1], 1.7, 0.05);
}

TEST(CobylaTest, FiveDimSphereWithActiveLinearConstraint) {
  // min ||x||^2 s.t. sum x >= 5 -> x_i = 1 each, f = 5.
  Problem p(5, [](std::span<const double> x) {
    double sum = 0.0;
    for (const double v : x) {
      sum += v * v;
    }
    return sum;
  });
  p.AddConstraint([](std::span<const double> x) {
    double sum = 0.0;
    for (const double v : x) {
      sum += v;
    }
    return sum - 5.0;
  });
  CobylaConfig config;
  config.rho_begin = 1.0;
  config.rho_end = 1e-6;
  config.max_evaluations = 20000;
  const auto result = Cobyla(p, std::vector<double>(5, 3.0), config);
  EXPECT_NEAR(result.value, 5.0, 0.05);
  EXPECT_LE(result.max_violation, 1e-4);
}

TEST(CobylaTest, DeterministicAcrossRuns) {
  Problem p(3, [](std::span<const double> x) {
    return x[0] * x[0] + 2.0 * x[1] * x[1] + 3.0 * x[2] * x[2];
  });
  CobylaConfig config;
  const auto a = Cobyla(p, std::vector<double>{2.0, 2.0, 2.0}, config);
  const auto b = Cobyla(p, std::vector<double>{2.0, 2.0, 2.0}, config);
  ASSERT_EQ(a.x.size(), b.x.size());
  for (size_t i = 0; i < a.x.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.x[i], b.x[i]);
  }
  EXPECT_EQ(a.evaluations, b.evaluations);
}

// --- Differential Evolution ----------------------------------------------

TEST(DifferentialEvolutionTest, SolvesRosenbrock) {
  Problem p(2, [](std::span<const double> x) {
    const double a = x[1] - x[0] * x[0];
    const double b = 1.0 - x[0];
    return 100.0 * a * a + b * b;
  });
  p.SetBounds({-5.0, -5.0}, {5.0, 5.0});
  DeConfig config;
  config.generations = 400;
  const auto result = DifferentialEvolution(p, config);
  EXPECT_LT(result.value, 1e-3);
}

TEST(DifferentialEvolutionTest, EscapesPlateau) {
  // A step function ("precise utility" shape): local solvers see zero
  // gradient; DE's population sampling still finds the basin.
  Problem p(1, [](std::span<const double> x) {
    return x[0] < 3.0 ? 1.0 : (x[0] > 3.5 ? 1.0 : 0.0);
  });
  p.SetBounds({0.0}, {10.0});
  DeConfig config;
  config.generations = 100;
  const auto result = DifferentialEvolution(p, config);
  EXPECT_DOUBLE_EQ(result.value, 0.0);
  EXPECT_GE(result.x[0], 3.0);
  EXPECT_LE(result.x[0], 3.5);
}

TEST(DifferentialEvolutionTest, DeterministicForSameSeed) {
  Problem p(2, [](std::span<const double> x) { return x[0] * x[0] + x[1] * x[1]; });
  p.SetBounds({-2.0, -2.0}, {2.0, 2.0});
  DeConfig config;
  config.seed = 99;
  config.generations = 50;
  const auto a = DifferentialEvolution(p, config);
  const auto b = DifferentialEvolution(p, config);
  ASSERT_EQ(a.x.size(), b.x.size());
  for (size_t i = 0; i < a.x.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.x[i], b.x[i]);
  }
}

TEST(DifferentialEvolutionTest, HonoursConstraint) {
  Problem p(2, [](std::span<const double> x) { return x[0] * x[1]; });
  p.SetBounds({-2.0, -2.0}, {2.0, 2.0});
  p.AddConstraint([](std::span<const double> x) { return 1.0 - x[0] * x[0] - x[1] * x[1]; });
  DeConfig config;
  config.generations = 400;
  const auto result = DifferentialEvolution(p, config);
  EXPECT_NEAR(result.value, -0.5, 5e-2);
  EXPECT_LE(result.max_violation, 5e-2);
}

TEST(DifferentialEvolutionTest, StaysInBounds) {
  Problem p(3, [](std::span<const double> x) { return -(x[0] + x[1] + x[2]); });
  p.SetBounds({0.0, 0.0, 0.0}, {1.0, 2.0, 3.0});
  const auto result = DifferentialEvolution(p);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_GE(result.x[i], 0.0);
    EXPECT_LE(result.x[i], static_cast<double>(i + 1) + 1e-12);
  }
  EXPECT_NEAR(result.value, -6.0, 1e-6);
}

// --- Augmented Lagrangian (SLSQP stand-in) --------------------------------

TEST(AugLagTest, UnconstrainedQuadratic) {
  Problem p(2, [](std::span<const double> x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 2.0) * (x[1] + 2.0);
  });
  const auto result = AugmentedLagrangian(p, std::vector<double>{0.0, 0.0});
  EXPECT_NEAR(result.x[0], 3.0, 1e-4);
  EXPECT_NEAR(result.x[1], -2.0, 1e-4);
}

TEST(AugLagTest, ActiveInequalityConstraint) {
  // minimize (x0 - 2)^2 + (x1 - 2)^2 s.t. x0 + x1 <= 2 -> optimum (1, 1).
  Problem p(2, [](std::span<const double> x) {
    return (x[0] - 2.0) * (x[0] - 2.0) + (x[1] - 2.0) * (x[1] - 2.0);
  });
  p.AddConstraint([](std::span<const double> x) { return 2.0 - x[0] - x[1]; });
  const auto result = AugmentedLagrangian(p, std::vector<double>{0.0, 0.0});
  EXPECT_NEAR(result.x[0], 1.0, 1e-3);
  EXPECT_NEAR(result.x[1], 1.0, 1e-3);
  EXPECT_LE(result.max_violation, 1e-6);
}

TEST(AugLagTest, BoundsEnforced) {
  Problem p(1, [](std::span<const double> x) { return x[0]; });
  p.SetBounds({2.5}, {10.0});
  const auto result = AugmentedLagrangian(p, std::vector<double>{5.0});
  EXPECT_NEAR(result.x[0], 2.5, 1e-3);
}

// --- Nelder-Mead ----------------------------------------------------------

TEST(NelderMeadTest, SolvesRosenbrock) {
  Problem p(2, [](std::span<const double> x) {
    const double a = x[1] - x[0] * x[0];
    const double b = 1.0 - x[0];
    return 100.0 * a * a + b * b;
  });
  NelderMeadConfig config;
  config.max_iterations = 5000;
  const auto result = NelderMead(p, std::vector<double>{-1.2, 1.0}, config);
  EXPECT_LT(result.value, 1e-6);
}

TEST(NelderMeadTest, PenaltyKeepsConstraint) {
  Problem p(2, [](std::span<const double> x) { return x[0] * x[1]; });
  p.AddConstraint([](std::span<const double> x) { return 1.0 - x[0] * x[0] - x[1] * x[1]; });
  const auto result = NelderMead(p, std::vector<double>{0.5, 0.5});
  EXPECT_NEAR(result.value, -0.5, 5e-2);
  EXPECT_LE(result.max_violation, 1e-2);
}

// --- Cross-solver property: all solvers agree on a smooth convex problem ---

class SolverAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverAgreementTest, ConvexQuadraticWithConstraint) {
  // minimize ||x - (3,3)||^2 s.t. x0 + x1 <= 4 -> optimum (2, 2), f = 2.
  Problem p(2, [](std::span<const double> x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] - 3.0) * (x[1] - 3.0);
  });
  p.SetBounds({0.0, 0.0}, {10.0, 10.0});
  p.AddConstraint([](std::span<const double> x) { return 4.0 - x[0] - x[1]; });
  const std::vector<double> x0{1.0, 1.0};
  OptimResult result;
  switch (GetParam()) {
    case 0: {
      CobylaConfig config;
      config.rho_begin = 1.0;
      config.rho_end = 1e-6;
      result = Cobyla(p, x0, config);
      break;
    }
    case 1: {
      result = DifferentialEvolution(p);
      break;
    }
    case 2: {
      result = AugmentedLagrangian(p, x0);
      break;
    }
    default: {
      result = NelderMead(p, x0);
      break;
    }
  }
  EXPECT_NEAR(result.value, 2.0, 0.05);
  EXPECT_LE(result.max_violation, 1e-2);
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, SolverAgreementTest, ::testing::Values(0, 1, 2, 3));

// The convex quadratic from SolverAgreementTest, reused by the multi-start
// driver tests: optimum (2, 2), f = 2 on the constraint x0 + x1 <= 4.
Problem MakeConstrainedQuadratic() {
  Problem p(2, [](std::span<const double> x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] - 3.0) * (x[1] - 3.0);
  });
  p.SetBounds({0.0, 0.0}, {10.0, 10.0});
  p.AddConstraint([](std::span<const double> x) { return 4.0 - x[0] - x[1]; });
  return p;
}

TEST(MultiStartTest, FindsConstrainedOptimum) {
  const Problem p = MakeConstrainedQuadratic();
  MultiStartConfig config;
  config.seed = 11;
  std::vector<StartPoint> starts;
  starts.push_back({{1.0, 1.0}, StartKind::kWarmCurrent});
  starts.push_back({{9.0, 0.5}, StartKind::kHeuristic});
  const MultiStartResult result = MultiStartSolve(p, starts, 2, config);
  EXPECT_NEAR(result.best.value, 2.0, 0.05);
  EXPECT_LE(result.best.max_violation, 1e-2);
  EXPECT_EQ(result.starts_total, 8u);  // 4 starts x 2 solvers
  EXPECT_EQ(result.starts_launched + result.starts_cancelled + result.starts_deadline_skipped,
            result.starts_total);
  EXPECT_GT(result.evaluations, 0);
}

TEST(MultiStartTest, BitIdenticalAcrossParallelism) {
  for (const bool early_exit : {true, false}) {
    std::vector<MultiStartResult> results;
    for (const size_t parallelism : {size_t{1}, size_t{2}, size_t{8}}) {
      const Problem p = MakeConstrainedQuadratic();
      MultiStartConfig config;
      config.seed = 3;
      config.early_exit = early_exit;
      config.max_parallelism = parallelism;
      std::vector<StartPoint> starts;
      starts.push_back({{1.0, 1.0}, StartKind::kWarmCurrent});
      starts.push_back({{8.0, 8.0}, StartKind::kHeuristic});
      results.push_back(MultiStartSolve(p, starts, 4, config));
    }
    for (size_t k = 1; k < results.size(); ++k) {
      EXPECT_EQ(results[0].winner_start, results[k].winner_start);
      EXPECT_EQ(results[0].winner_alternate, results[k].winner_alternate);
      EXPECT_EQ(results[0].early_exit, results[k].early_exit);
      ASSERT_EQ(results[0].best.x.size(), results[k].best.x.size());
      for (size_t d = 0; d < results[0].best.x.size(); ++d) {
        EXPECT_EQ(results[0].best.x[d], results[k].best.x[d])
            << "early_exit=" << early_exit << " run=" << k << " dim=" << d;
      }
      EXPECT_EQ(results[0].best.value, results[k].best.value);
    }
  }
}

TEST(MultiStartTest, SerialEarlyExitSkipsTailFromNearOptimalStart) {
  // Start 0 sits on the constrained optimum already: the solve converges
  // feasibly with ~no improvement, clearing the stability bar, so a serial
  // run must skip every later task and report the start-0 winner.
  const Problem p = MakeConstrainedQuadratic();
  MultiStartConfig config;
  config.seed = 5;
  config.max_parallelism = 1;
  std::vector<StartPoint> starts;
  starts.push_back({{2.0, 2.0}, StartKind::kWarmCurrent});
  const MultiStartResult result = MultiStartSolve(p, starts, 5, config);
  EXPECT_TRUE(result.early_exit);
  EXPECT_EQ(result.winner_start, 0u);
  EXPECT_FALSE(result.winner_alternate);
  EXPECT_EQ(result.starts_launched, 1u);
  EXPECT_EQ(result.starts_cancelled, result.starts_total - 1);
}

TEST(MultiStartTest, StabilityBarBlocksEarlyExitFromFarStart) {
  // Start 0 is feasible but far from the optimum: the solve improves a lot,
  // failing the stability bar, so every task runs and the best one wins.
  const Problem p = MakeConstrainedQuadratic();
  MultiStartConfig config;
  config.seed = 5;
  config.max_parallelism = 1;
  std::vector<StartPoint> starts;
  starts.push_back({{0.5, 0.5}, StartKind::kWarmCurrent});
  const MultiStartResult result = MultiStartSolve(p, starts, 3, config);
  EXPECT_FALSE(result.early_exit);
  EXPECT_EQ(result.starts_cancelled, 0u);
  EXPECT_EQ(result.starts_deadline_skipped, 0u);
  EXPECT_NEAR(result.best.value, 2.0, 0.05);
}

TEST(MultiStartTest, StartsAreClippedIntoBounds) {
  // A start far outside the box (both coordinates) must be clipped before the
  // solvers run; the solve still lands on the optimum.
  const Problem p = MakeConstrainedQuadratic();
  MultiStartConfig config;
  config.seed = 9;
  config.early_exit = false;
  std::vector<StartPoint> starts;
  starts.push_back({{-50.0, 400.0}, StartKind::kWarmCurrent});
  const MultiStartResult result = MultiStartSolve(p, starts, 0, config);
  EXPECT_NEAR(result.best.value, 2.0, 0.1);
  EXPECT_LE(result.best.max_violation, 1e-2);
}

TEST(MultiStartTest, AlternateChainDisabledHalvesTasks) {
  const Problem p = MakeConstrainedQuadratic();
  MultiStartConfig config;
  config.seed = 2;
  config.use_alternate = false;
  std::vector<StartPoint> starts;
  starts.push_back({{1.0, 1.0}, StartKind::kWarmCurrent});
  const MultiStartResult result = MultiStartSolve(p, starts, 3, config);
  EXPECT_EQ(result.starts_total, 4u);
  EXPECT_NEAR(result.best.value, 2.0, 0.05);
}

}  // namespace
}  // namespace faro
