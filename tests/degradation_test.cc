// Graceful-degradation ladder: a Stage-2 deadline miss falls back to the
// rescaled warm start or the capacity heuristic, insane forecasts are
// replaced by last-value, a shrinking cluster forces an off-cadence re-solve,
// and missed scale-ups are retried with backoff. In every case the cycle
// completes with a capacity-respecting allocation and the fallback is
// visible in SolverTelemetry.

#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/actuate/reconciler.h"
#include "src/core/autoscaler.h"

namespace faro {
namespace {

std::vector<JobSpec> MakeSpecs(size_t n) {
  std::vector<JobSpec> specs(n);
  for (size_t i = 0; i < n; ++i) {
    specs[i].name = "job" + std::to_string(i);
    specs[i].slo = 0.720;
    specs[i].processing_time = 0.180;
  }
  return specs;
}

JobMetrics MakeMetrics(double rate, uint32_t replicas) {
  JobMetrics m;
  m.arrival_rate = rate;
  m.processing_time = 0.180;
  m.ready_replicas = replicas;
  m.arrival_history.assign(15, rate);
  return m;
}

uint32_t Total(const std::vector<uint32_t>& v) {
  return std::accumulate(v.begin(), v.end(), 0u);
}

// Predictor whose forecasts are garbage: NaN for even jobs, a 1000x jump for
// odd ones. The sanity guard must catch both.
class InsanePredictor : public WorkloadPredictor {
 public:
  std::vector<double> PredictQuantile(size_t job, std::span<const double> history,
                                      size_t horizon, double) override {
    const double last = history.empty() ? 1.0 : history.back();
    const double value =
        job % 2 == 0 ? std::numeric_limits<double>::quiet_NaN() : 1000.0 * (last + 1.0);
    return std::vector<double>(horizon, value);
  }
};

TEST(DegradationTest, DeadlineMissFallsBackAndCompletesCycle) {
  FaroConfig config;
  // A deadline that has already passed when the solve starts: every cycle
  // must go down the ladder -- and still produce a usable allocation.
  config.solve_deadline_s = 1e-9;
  FaroAutoscaler faro(config);
  const auto specs = MakeSpecs(4);
  std::vector<JobMetrics> metrics{MakeMetrics(40.0, 1), MakeMetrics(40.0, 1),
                                  MakeMetrics(40.0, 1), MakeMetrics(40.0, 1)};
  const ClusterResources resources{16.0, 16.0};
  const auto action = faro.Decide(0.0, specs, metrics, resources);
  ASSERT_EQ(action.replicas.size(), 4u);
  EXPECT_LE(Total(action.replicas), 16u);
  for (const uint32_t r : action.replicas) {
    EXPECT_GE(r, 1u);
  }
  const SolverTelemetry t = faro.solver_telemetry();
  EXPECT_GE(t.deadline_misses, 1u);
  // First cycle has no warm start, so the heuristic rung serves it.
  EXPECT_GE(t.fallback_heuristic, 1u);
}

TEST(DegradationTest, SecondCycleFallsBackToWarmStart) {
  // With the deadline permanently blown, the first cycle has no cache and
  // takes the heuristic rung; the fallback still populates the warm-start
  // cache, so the second cycle takes the (cheaper, better) warm rung.
  FaroConfig config;
  config.solve_deadline_s = 1e-9;
  FaroAutoscaler faro(config);
  const auto specs = MakeSpecs(3);
  std::vector<JobMetrics> metrics{MakeMetrics(30.0, 1), MakeMetrics(30.0, 1),
                                  MakeMetrics(30.0, 1)};
  const ClusterResources resources{12.0, 12.0};
  (void)faro.Decide(0.0, specs, metrics, resources);
  EXPECT_EQ(faro.solver_telemetry().fallback_heuristic, 1u);
  EXPECT_EQ(faro.solver_telemetry().fallback_warm, 0u);
  const auto action = faro.Decide(300.0, specs, metrics, resources);
  EXPECT_EQ(faro.solver_telemetry().fallback_warm, 1u);
  EXPECT_EQ(faro.solver_telemetry().deadline_misses, 2u);
  EXPECT_LE(Total(action.replicas), 12u);
}

TEST(DegradationTest, InsaneForecastFallsBackToLastValue) {
  FaroConfig config;
  config.forecast_max_jump = 8.0;
  FaroAutoscaler faro(config, std::make_shared<InsanePredictor>());
  const auto specs = MakeSpecs(2);
  std::vector<JobMetrics> metrics{MakeMetrics(20.0, 2), MakeMetrics(20.0, 2)};
  const ClusterResources resources{16.0, 16.0};
  const auto action = faro.Decide(0.0, specs, metrics, resources);
  ASSERT_EQ(action.replicas.size(), 2u);
  EXPECT_LE(Total(action.replicas), 16u);
  // Both jobs' forecasts were insane and replaced.
  EXPECT_EQ(faro.solver_telemetry().forecast_fallbacks, 2u);
  // The replacement is the last observed rate, so the allocation is sized
  // for ~20 req/s per job (4 busy replicas each), not for NaN or 20000.
  for (const uint32_t r : action.replicas) {
    EXPECT_LE(r, 8u);
  }
}

TEST(DegradationTest, ForecastGuardDisabledLeavesPredictionsAlone) {
  FaroConfig config;
  config.forecast_max_jump = 0.0;  // guard off
  FaroAutoscaler faro(config, std::make_shared<InsanePredictor>());
  const auto specs = MakeSpecs(2);
  std::vector<JobMetrics> metrics{MakeMetrics(20.0, 2), MakeMetrics(20.0, 2)};
  (void)faro.Decide(0.0, specs, metrics, ClusterResources{16.0, 16.0});
  EXPECT_EQ(faro.solver_telemetry().forecast_fallbacks, 0u);
}

TEST(DegradationTest, CapacityShrinkForcesOffCadenceResolve) {
  FaroConfig config;
  FaroAutoscaler faro(config);
  const auto specs = MakeSpecs(3);
  std::vector<JobMetrics> metrics{MakeMetrics(30.0, 4), MakeMetrics(30.0, 4),
                                  MakeMetrics(30.0, 4)};
  (void)faro.Decide(0.0, specs, metrics, ClusterResources{16.0, 16.0});
  ASSERT_EQ(faro.solver_telemetry().capacity_resolves, 0u);
  // A quarter of the cluster vanishes (node crash): the next reactive tick
  // must re-solve instead of waiting out the decision interval.
  const auto reaction = faro.FastReact(10.0, specs, metrics, ClusterResources{12.0, 12.0});
  ASSERT_TRUE(reaction.has_value());
  EXPECT_LE(Total(reaction->replicas), 12u);
  EXPECT_EQ(faro.solver_telemetry().capacity_resolves, 1u);
  // Unchanged capacity afterwards: no further forced re-solves.
  (void)faro.FastReact(20.0, specs, metrics, ClusterResources{12.0, 12.0});
  EXPECT_EQ(faro.solver_telemetry().capacity_resolves, 1u);
}

// Missed scale-ups are no longer the policy's problem: the reconciling
// actuator (src/actuate/reconciler.h) repairs the fleet against the
// published desired state. These two tests pin the ladder rung at its new
// home -- same semantics (re-issue with backoff, 0 disables), one core.

// A cluster whose scale-up API drops every command while `drop_commands` is
// set; applied targets land as committed fleet immediately.
class FlakyCluster : public ClusterPort {
 public:
  explicit FlakyCluster(size_t n) : fleet_(n, 1) {}
  size_t num_jobs() const override { return fleet_.size(); }
  uint32_t Fleet(size_t job) const override { return fleet_[job]; }
  uint32_t ApplyTarget(size_t job, uint32_t target, bool, double) override {
    if (fleet_[job] >= target) {
      return 0;
    }
    const uint32_t add = target - fleet_[job];
    ++issued_;
    if (drop_commands) {
      return add;  // the command was sent -- and eaten by the flaky API
    }
    fleet_[job] = target;
    return add;
  }
  void SetDropRate(size_t, double) override {}

  bool drop_commands = true;
  uint64_t issued_ = 0;

 private:
  std::vector<uint32_t> fleet_;
};

DesiredState MakeDesired(uint64_t generation, std::vector<uint32_t> replicas) {
  DesiredState d;
  d.generation = generation;
  d.replicas = std::move(replicas);
  return d;
}

TEST(DegradationTest, ActuationRetryReissuesMissedScaleUp) {
  ReconcilerConfig config;
  config.retry_backoff_s = 20.0;
  config.jitter_frac = 0.0;
  Reconciler reconciler(config);
  FlakyCluster cluster(2);
  ASSERT_TRUE(reconciler.Publish(MakeDesired(1, {4, 1}), 0.0));
  // The first pass issues the scale-up; the flaky API eats it.
  reconciler.Reconcile(cluster, 0.0);
  EXPECT_FALSE(reconciler.converged());
  EXPECT_EQ(cluster.Fleet(0), 1u);
  // The next reactive tick re-issues the missing replicas (level-triggered).
  reconciler.Reconcile(cluster, 10.0);
  EXPECT_GE(reconciler.telemetry().retries, 1u);
  // Immediately after, the retry is backed off -- no endless hammering.
  const uint64_t issued_before = cluster.issued_;
  reconciler.Reconcile(cluster, 12.0);
  EXPECT_EQ(cluster.issued_, issued_before);
  // Once the API heals, the backed-off retry converges the fleet.
  cluster.drop_commands = false;
  reconciler.Reconcile(cluster, 40.0);
  EXPECT_TRUE(reconciler.converged());
  EXPECT_EQ(cluster.Fleet(0), 4u);
}

TEST(DegradationTest, RetryDisabledLeavesFleetAlone) {
  ReconcilerConfig config;
  config.retry_backoff_s = 0.0;  // first pass only, fire-and-forget
  Reconciler reconciler(config);
  FlakyCluster cluster(1);
  ASSERT_TRUE(reconciler.Publish(MakeDesired(1, {4}), 0.0));
  reconciler.Reconcile(cluster, 0.0);
  const uint64_t issued_after_first = cluster.issued_;
  reconciler.Reconcile(cluster, 10.0);
  reconciler.Reconcile(cluster, 300.0);
  EXPECT_EQ(cluster.issued_, issued_after_first);
  EXPECT_EQ(reconciler.telemetry().retries, 0u);
}

// --- FaroConfig validation (satellite) --------------------------------------

TEST(ValidateFaroConfigTest, AcceptsDefaults) {
  EXPECT_EQ(ValidateFaroConfig(FaroConfig{}), "");
}

TEST(ValidateFaroConfigTest, RejectsBadFieldsWithClearMessages) {
  FaroConfig bad_interval;
  bad_interval.decision_interval_s = 0.0;
  EXPECT_NE(ValidateFaroConfig(bad_interval).find("decision_interval_s"), std::string::npos);

  FaroConfig bad_quantile;
  bad_quantile.prediction_quantile = 1.5;
  EXPECT_NE(ValidateFaroConfig(bad_quantile).find("prediction_quantile"), std::string::npos);

  FaroConfig bad_deadline;
  bad_deadline.solve_deadline_s = -1.0;
  EXPECT_NE(ValidateFaroConfig(bad_deadline).find("solve_deadline_s"), std::string::npos);

  FaroConfig bad_window;
  bad_window.prediction_window_steps = 0;
  EXPECT_NE(ValidateFaroConfig(bad_window), "");
}

TEST(ValidateFaroConfigTest, ConstructorThrowsOnInvalidConfig) {
  FaroConfig config;
  config.step_seconds = -5.0;
  EXPECT_THROW(FaroAutoscaler{config}, std::invalid_argument);
}

}  // namespace
}  // namespace faro
