// Graceful-degradation ladder: a Stage-2 deadline miss falls back to the
// rescaled warm start or the capacity heuristic, insane forecasts are
// replaced by last-value, a shrinking cluster forces an off-cadence re-solve,
// and missed scale-ups are retried with backoff. In every case the cycle
// completes with a capacity-respecting allocation and the fallback is
// visible in SolverTelemetry.

#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/autoscaler.h"

namespace faro {
namespace {

std::vector<JobSpec> MakeSpecs(size_t n) {
  std::vector<JobSpec> specs(n);
  for (size_t i = 0; i < n; ++i) {
    specs[i].name = "job" + std::to_string(i);
    specs[i].slo = 0.720;
    specs[i].processing_time = 0.180;
  }
  return specs;
}

JobMetrics MakeMetrics(double rate, uint32_t replicas) {
  JobMetrics m;
  m.arrival_rate = rate;
  m.processing_time = 0.180;
  m.ready_replicas = replicas;
  m.arrival_history.assign(15, rate);
  return m;
}

uint32_t Total(const std::vector<uint32_t>& v) {
  return std::accumulate(v.begin(), v.end(), 0u);
}

// Predictor whose forecasts are garbage: NaN for even jobs, a 1000x jump for
// odd ones. The sanity guard must catch both.
class InsanePredictor : public WorkloadPredictor {
 public:
  std::vector<double> PredictQuantile(size_t job, std::span<const double> history,
                                      size_t horizon, double) override {
    const double last = history.empty() ? 1.0 : history.back();
    const double value =
        job % 2 == 0 ? std::numeric_limits<double>::quiet_NaN() : 1000.0 * (last + 1.0);
    return std::vector<double>(horizon, value);
  }
};

TEST(DegradationTest, DeadlineMissFallsBackAndCompletesCycle) {
  FaroConfig config;
  // A deadline that has already passed when the solve starts: every cycle
  // must go down the ladder -- and still produce a usable allocation.
  config.solve_deadline_s = 1e-9;
  FaroAutoscaler faro(config);
  const auto specs = MakeSpecs(4);
  std::vector<JobMetrics> metrics{MakeMetrics(40.0, 1), MakeMetrics(40.0, 1),
                                  MakeMetrics(40.0, 1), MakeMetrics(40.0, 1)};
  const ClusterResources resources{16.0, 16.0};
  const auto action = faro.Decide(0.0, specs, metrics, resources);
  ASSERT_EQ(action.replicas.size(), 4u);
  EXPECT_LE(Total(action.replicas), 16u);
  for (const uint32_t r : action.replicas) {
    EXPECT_GE(r, 1u);
  }
  const SolverTelemetry t = faro.solver_telemetry();
  EXPECT_GE(t.deadline_misses, 1u);
  // First cycle has no warm start, so the heuristic rung serves it.
  EXPECT_GE(t.fallback_heuristic, 1u);
}

TEST(DegradationTest, SecondCycleFallsBackToWarmStart) {
  // With the deadline permanently blown, the first cycle has no cache and
  // takes the heuristic rung; the fallback still populates the warm-start
  // cache, so the second cycle takes the (cheaper, better) warm rung.
  FaroConfig config;
  config.solve_deadline_s = 1e-9;
  FaroAutoscaler faro(config);
  const auto specs = MakeSpecs(3);
  std::vector<JobMetrics> metrics{MakeMetrics(30.0, 1), MakeMetrics(30.0, 1),
                                  MakeMetrics(30.0, 1)};
  const ClusterResources resources{12.0, 12.0};
  (void)faro.Decide(0.0, specs, metrics, resources);
  EXPECT_EQ(faro.solver_telemetry().fallback_heuristic, 1u);
  EXPECT_EQ(faro.solver_telemetry().fallback_warm, 0u);
  const auto action = faro.Decide(300.0, specs, metrics, resources);
  EXPECT_EQ(faro.solver_telemetry().fallback_warm, 1u);
  EXPECT_EQ(faro.solver_telemetry().deadline_misses, 2u);
  EXPECT_LE(Total(action.replicas), 12u);
}

TEST(DegradationTest, InsaneForecastFallsBackToLastValue) {
  FaroConfig config;
  config.forecast_max_jump = 8.0;
  FaroAutoscaler faro(config, std::make_shared<InsanePredictor>());
  const auto specs = MakeSpecs(2);
  std::vector<JobMetrics> metrics{MakeMetrics(20.0, 2), MakeMetrics(20.0, 2)};
  const ClusterResources resources{16.0, 16.0};
  const auto action = faro.Decide(0.0, specs, metrics, resources);
  ASSERT_EQ(action.replicas.size(), 2u);
  EXPECT_LE(Total(action.replicas), 16u);
  // Both jobs' forecasts were insane and replaced.
  EXPECT_EQ(faro.solver_telemetry().forecast_fallbacks, 2u);
  // The replacement is the last observed rate, so the allocation is sized
  // for ~20 req/s per job (4 busy replicas each), not for NaN or 20000.
  for (const uint32_t r : action.replicas) {
    EXPECT_LE(r, 8u);
  }
}

TEST(DegradationTest, ForecastGuardDisabledLeavesPredictionsAlone) {
  FaroConfig config;
  config.forecast_max_jump = 0.0;  // guard off
  FaroAutoscaler faro(config, std::make_shared<InsanePredictor>());
  const auto specs = MakeSpecs(2);
  std::vector<JobMetrics> metrics{MakeMetrics(20.0, 2), MakeMetrics(20.0, 2)};
  (void)faro.Decide(0.0, specs, metrics, ClusterResources{16.0, 16.0});
  EXPECT_EQ(faro.solver_telemetry().forecast_fallbacks, 0u);
}

TEST(DegradationTest, CapacityShrinkForcesOffCadenceResolve) {
  FaroConfig config;
  FaroAutoscaler faro(config);
  const auto specs = MakeSpecs(3);
  std::vector<JobMetrics> metrics{MakeMetrics(30.0, 4), MakeMetrics(30.0, 4),
                                  MakeMetrics(30.0, 4)};
  (void)faro.Decide(0.0, specs, metrics, ClusterResources{16.0, 16.0});
  ASSERT_EQ(faro.solver_telemetry().capacity_resolves, 0u);
  // A quarter of the cluster vanishes (node crash): the next reactive tick
  // must re-solve instead of waiting out the decision interval.
  const auto reaction = faro.FastReact(10.0, specs, metrics, ClusterResources{12.0, 12.0});
  ASSERT_TRUE(reaction.has_value());
  EXPECT_LE(Total(reaction->replicas), 12u);
  EXPECT_EQ(faro.solver_telemetry().capacity_resolves, 1u);
  // Unchanged capacity afterwards: no further forced re-solves.
  (void)faro.FastReact(20.0, specs, metrics, ClusterResources{12.0, 12.0});
  EXPECT_EQ(faro.solver_telemetry().capacity_resolves, 1u);
}

TEST(DegradationTest, ActuationRetryReissuesMissedScaleUp) {
  FaroConfig config;
  config.actuation_retry_backoff_s = 20.0;
  FaroAutoscaler faro(config);
  const auto specs = MakeSpecs(2);
  std::vector<JobMetrics> metrics{MakeMetrics(40.0, 1), MakeMetrics(40.0, 1)};
  const ClusterResources resources{16.0, 16.0};
  const auto action = faro.Decide(0.0, specs, metrics, resources);
  const uint32_t target0 = action.replicas[0];
  ASSERT_GT(target0, 1u) << "overloaded job should be scaled up";
  // The scale-up never lands (dropped by a flaky API): the fleet still sits
  // at 1 ready / 0 starting at the next reactive tick.
  const auto retry = faro.FastReact(10.0, specs, metrics, resources);
  ASSERT_TRUE(retry.has_value());
  EXPECT_GE(retry->replicas[0], target0);
  EXPECT_GE(faro.solver_telemetry().actuation_retries, 1u);
  // Immediately after, the retry is backed off -- no endless hammering.
  const uint64_t retries_before = faro.solver_telemetry().actuation_retries;
  (void)faro.FastReact(12.0, specs, metrics, resources);
  EXPECT_EQ(faro.solver_telemetry().actuation_retries, retries_before);
}

TEST(DegradationTest, RetryDisabledLeavesFleetAlone) {
  FaroConfig config;
  config.actuation_retry_backoff_s = 0.0;
  FaroAutoscaler faro(config);
  const auto specs = MakeSpecs(1);
  std::vector<JobMetrics> metrics{MakeMetrics(40.0, 1)};
  const ClusterResources resources{16.0, 16.0};
  (void)faro.Decide(0.0, specs, metrics, resources);
  (void)faro.FastReact(10.0, specs, metrics, resources);
  EXPECT_EQ(faro.solver_telemetry().actuation_retries, 0u);
}

// --- FaroConfig validation (satellite) --------------------------------------

TEST(ValidateFaroConfigTest, AcceptsDefaults) {
  EXPECT_EQ(ValidateFaroConfig(FaroConfig{}), "");
}

TEST(ValidateFaroConfigTest, RejectsBadFieldsWithClearMessages) {
  FaroConfig bad_interval;
  bad_interval.decision_interval_s = 0.0;
  EXPECT_NE(ValidateFaroConfig(bad_interval).find("decision_interval_s"), std::string::npos);

  FaroConfig bad_quantile;
  bad_quantile.prediction_quantile = 1.5;
  EXPECT_NE(ValidateFaroConfig(bad_quantile).find("prediction_quantile"), std::string::npos);

  FaroConfig bad_deadline;
  bad_deadline.solve_deadline_s = -1.0;
  EXPECT_NE(ValidateFaroConfig(bad_deadline).find("solve_deadline_s"), std::string::npos);

  FaroConfig bad_window;
  bad_window.prediction_window_steps = 0;
  EXPECT_NE(ValidateFaroConfig(bad_window), "");
}

TEST(ValidateFaroConfigTest, ConstructorThrowsOnInvalidConfig) {
  FaroConfig config;
  config.step_seconds = -5.0;
  EXPECT_THROW(FaroAutoscaler{config}, std::invalid_argument);
}

}  // namespace
}  // namespace faro
