// Best-arm-identification core: closed-form checks of the unknown-variance
// stopping rule, BaiRace bookkeeping, and the multi-start racing driver's
// determinism + static-tier equivalence contracts.
//
// The RacingDeterminismTest suite runs under TSan in CI (ctest -R
// Determinism) alongside the harness determinism tests: the scout-probe
// fan-out is the only parallel section of the racing driver, and the winner
// must be bit-identical at any max_parallelism.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/optim/bai.h"
#include "src/optim/multistart.h"

namespace faro {
namespace {

// --- ArmStats: Welford moments against hand-computed values ---

TEST(BaiStatsTest, MomentsMatchClosedForm) {
  ArmStats stats;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) {
    stats.Add(v);
  }
  EXPECT_EQ(stats.n, 4u);
  EXPECT_DOUBLE_EQ(stats.mean, 2.5);
  EXPECT_DOUBLE_EQ(stats.Variance(), 5.0 / 3.0);  // unbiased: m2 = 5, n-1 = 3
  EXPECT_DOUBLE_EQ(stats.Range(), 3.0);
}

TEST(BaiStatsTest, DegenerateCountsAreSafe) {
  ArmStats stats;
  EXPECT_DOUBLE_EQ(stats.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Range(), 0.0);
  stats.Add(7.0);
  EXPECT_DOUBLE_EQ(stats.Variance(), 0.0);  // one sample says nothing
  EXPECT_DOUBLE_EQ(stats.Range(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean, 7.0);
}

// --- Stopping rule: beta, radius, separation against closed-form numbers ---

TEST(BaiStoppingTest, BetaMatchesClosedForm) {
  // beta(n, delta) = log(1/delta) + 2 log(1 + log2(n + 1)).
  // n=1,  d=0.05: log 20 + 2 log(1 + 1)         = 2.9957323 + 1.3862944
  // n=4,  d=0.05: log 20 + 2 log(1 + log2 5)    = 2.9957323 + 2.4011448
  // n=16, d=0.05: log 20 + 2 log(1 + log2 17)   = 2.9957323 + 3.2535586
  EXPECT_NEAR(BaiBeta(1, 0.05), 4.3820266, 1e-6);
  EXPECT_NEAR(BaiBeta(4, 0.05), 5.3968230, 1e-6);
  EXPECT_NEAR(BaiBeta(16, 0.05), 6.2492909, 1e-6);
  // Anytime-valid: beta grows with n (repeated looks) and with confidence.
  EXPECT_GT(BaiBeta(100, 0.05), BaiBeta(10, 0.05));
  EXPECT_GT(BaiBeta(10, 0.01), BaiBeta(10, 0.05));
}

TEST(BaiStoppingTest, RadiusMatchesClosedFormGaussianCase) {
  // 16 alternating +-0.5 observations: mean 0, m2 = 16 * 0.25 = 4,
  // Var = 4/15, Range = 1. With beta(16, 0.05) = 6.2492909:
  //   radius = sqrt(2 * (4/15) * beta / 16) + 3 * 1 * beta / 16
  //          = 0.4564096 + 1.1717420 = 1.6281516.
  ArmStats stats;
  for (int i = 0; i < 16; ++i) {
    stats.Add(i % 2 == 0 ? 0.5 : -0.5);
  }
  EXPECT_NEAR(stats.mean, 0.0, 1e-12);
  EXPECT_NEAR(stats.Variance(), 4.0 / 15.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.Range(), 1.0);
  EXPECT_NEAR(ConfidenceRadius(stats, 0.05), 1.6281516, 1e-4);
}

TEST(BaiStoppingTest, RadiusInfiniteBelowTwoObservations) {
  ArmStats stats;
  EXPECT_TRUE(std::isinf(ConfidenceRadius(stats, 0.05)));
  stats.Add(3.0);
  EXPECT_TRUE(std::isinf(ConfidenceRadius(stats, 0.05)));
  stats.Add(3.0);
  EXPECT_TRUE(std::isfinite(ConfidenceRadius(stats, 0.05)));
}

TEST(BaiStoppingTest, SeparatedRequiresDisjointIntervals) {
  // Radius 1.6281516 per arm (previous test): intervals are disjoint only
  // when the gap exceeds 2 * 1.6281516 = 3.2563. Gap 4 separates, gap 3
  // does not -- a direct closed-form check of the two-arm test.
  auto make = [](double center) {
    ArmStats stats;
    for (int i = 0; i < 16; ++i) {
      stats.Add(center + (i % 2 == 0 ? 0.5 : -0.5));
    }
    return stats;
  };
  const ArmStats low = make(0.0);
  EXPECT_TRUE(Separated(low, make(4.0), 0.05));
  EXPECT_FALSE(Separated(low, make(3.0), 0.05));
  // Zero-variance arms have radius 0: any mean gap separates.
  ArmStats tight_a;
  tight_a.Add(1.0);
  tight_a.Add(1.0);
  ArmStats tight_b;
  tight_b.Add(1.000001);
  tight_b.Add(1.000001);
  EXPECT_TRUE(Separated(tight_a, tight_b, 0.05));
  EXPECT_FALSE(Separated(tight_a, tight_a, 0.05));  // equal means: no verdict
}

// --- BaiRace: leader/challenger selection, pruning, bookkeeping ---

TEST(BaiRaceTest, LeaderTiesBreakToLowerIndexAndUnobservedRankLast) {
  BaiRace race(3);
  race.Add(0, 5.0);
  race.Add(1, 5.0);  // exact tie with arm 0
  EXPECT_EQ(race.Leader(), 0u);
  // Arm 2 unobserved: never the leader, even though arms 0/1 have data.
  race.Add(0, 5.0);
  race.Add(1, 5.0);
  EXPECT_EQ(race.Leader(), 0u);
  BaiRace fresh(2);
  fresh.Add(1, 3.0);
  EXPECT_EQ(fresh.Leader(), 1u);  // only observed arm leads
}

TEST(BaiRaceTest, ChallengerPrefersOptimisticWideArm) {
  BaiRace race(3);
  // Arm 0: tight leader at 1. Arm 1: tight at 2. Arm 2: mean 5.25 but huge
  // spread -> optimistic bound (mean - radius) far below arm 1's.
  race.Add(0, 1.0);
  race.Add(0, 1.1);
  race.Add(1, 2.0);
  race.Add(1, 2.01);
  race.Add(2, 10.0);
  race.Add(2, 0.5);
  EXPECT_EQ(race.Leader(), 0u);
  EXPECT_EQ(race.Challenger(), 2u);
}

TEST(BaiRaceTest, PruneSeparatedDropsOnlyClearLosers) {
  BaiRace race(3);
  for (int i = 0; i < 16; ++i) {
    const double noise = i % 2 == 0 ? 0.5 : -0.5;
    race.Add(0, 0.0 + noise);  // leader
    race.Add(1, 8.0 + noise);  // gap 8 > 2 * 1.628: separated
    race.Add(2, 2.0 + noise);  // gap 2 < 2 * 1.628: still in play
  }
  EXPECT_EQ(race.PruneSeparated(0.05), 1u);
  EXPECT_TRUE(race.active(0));
  EXPECT_FALSE(race.active(1));
  EXPECT_TRUE(race.active(2));
  EXPECT_FALSE(race.Decided());
  EXPECT_EQ(race.PruneSeparated(0.05), 0u);  // idempotent on the survivors
}

TEST(BaiRaceTest, SingleObservationArmIsNeverPruned) {
  BaiRace race(2);
  for (int i = 0; i < 16; ++i) {
    race.Add(0, i % 2 == 0 ? 0.5 : -0.5);
  }
  race.Add(1, 1e6);  // terrible, but one sample has an infinite radius
  EXPECT_EQ(race.PruneSeparated(0.05), 0u);
  EXPECT_TRUE(race.active(1));
}

TEST(BaiRaceTest, RetireAndLateAddsKeepArmInactive) {
  BaiRace race(2);
  race.Add(0, 1.0);
  race.Add(1, 2.0);
  race.Retire(1);
  EXPECT_FALSE(race.active(1));
  EXPECT_EQ(race.active_count(), 1u);
  EXPECT_TRUE(race.Decided());
  race.Add(1, 0.1);  // late result improves the estimate...
  EXPECT_EQ(race.stats(1).n, 2u);
  EXPECT_FALSE(race.active(1));  // ...but never re-activates
  EXPECT_EQ(race.Challenger(), race.arms());  // fewer than two active
}

TEST(BaiRaceTest, TelemetryMergesWithPlusEquals) {
  RacingTelemetry a;
  a.races = 1;
  a.rounds = 3;
  a.arms_total = 5;
  a.arms_pruned = 2;
  a.evaluations_spent = 700;
  a.evaluations_saved = 300;
  RacingTelemetry b = a;
  b += a;
  EXPECT_EQ(b.races, 2u);
  EXPECT_EQ(b.rounds, 6u);
  EXPECT_EQ(b.arms_total, 10u);
  EXPECT_EQ(b.arms_pruned, 4u);
  EXPECT_EQ(b.evaluations_spent, 1400u);
  EXPECT_EQ(b.evaluations_saved, 600u);
}

// --- Racing driver: determinism + equivalence with the static tiers ---

// The convex quadratic the multi-start tests use: optimum (2, 2), f = 2 on
// the constraint x0 + x1 <= 4.
Problem MakeConstrainedQuadratic() {
  Problem p(2, [](std::span<const double> x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] - 3.0) * (x[1] - 3.0);
  });
  p.SetBounds({0.0, 0.0}, {10.0, 10.0});
  p.AddConstraint([](std::span<const double> x) { return 4.0 - x[0] - x[1]; });
  return p;
}

MultiStartConfig RacingConfig() {
  MultiStartConfig config;
  config.seed = 3;
  config.use_alternate = false;  // racing covers the COBYLA chain
  config.racing = true;
  return config;
}

TEST(RacingDeterminismTest, WinnerBitIdenticalAcrossParallelism) {
  for (const bool early_exit : {true, false}) {
    std::vector<MultiStartResult> results;
    for (const size_t parallelism : {size_t{1}, size_t{2}, size_t{8}}) {
      const Problem p = MakeConstrainedQuadratic();
      MultiStartConfig config = RacingConfig();
      config.early_exit = early_exit;
      config.max_parallelism = parallelism;
      std::vector<StartPoint> starts;
      starts.push_back({{1.0, 1.0}, StartKind::kWarmCurrent});
      starts.push_back({{8.0, 8.0}, StartKind::kHeuristic});
      results.push_back(MultiStartSolve(p, starts, 4, config));
    }
    for (size_t k = 1; k < results.size(); ++k) {
      EXPECT_TRUE(results[k].raced);
      EXPECT_EQ(results[0].winner_start, results[k].winner_start);
      EXPECT_EQ(results[0].early_exit, results[k].early_exit);
      EXPECT_EQ(results[0].evaluations, results[k].evaluations);
      EXPECT_EQ(results[0].starts_pruned, results[k].starts_pruned);
      EXPECT_EQ(results[0].race.rounds, results[k].race.rounds);
      EXPECT_EQ(results[0].race.evaluations_spent, results[k].race.evaluations_spent);
      ASSERT_EQ(results[0].best.x.size(), results[k].best.x.size());
      for (size_t d = 0; d < results[0].best.x.size(); ++d) {
        EXPECT_EQ(results[0].best.x[d], results[k].best.x[d])
            << "early_exit=" << early_exit << " run=" << k << " dim=" << d;
      }
      EXPECT_EQ(results[0].best.value, results[k].best.value);
    }
  }
}

TEST(RacingDeterminismTest, RacedWinnerMatchesStaticTiers) {
  // On a problem where COBYLA converges inside every tier, racing extends
  // each surviving scout to the same budget the static driver used, so the
  // winning start and its solution must be bit-identical -- the ISSUE's
  // quality-parity contract in its purest form.
  const Problem p = MakeConstrainedQuadratic();
  MultiStartConfig config = RacingConfig();
  config.early_exit = false;
  std::vector<StartPoint> starts;
  starts.push_back({{1.0, 1.0}, StartKind::kWarmCurrent});
  starts.push_back({{9.0, 0.5}, StartKind::kHeuristic});
  const MultiStartResult raced = MultiStartSolve(p, starts, 4, config);
  config.racing = false;
  const MultiStartResult full = MultiStartSolve(p, starts, 4, config);
  EXPECT_TRUE(raced.raced);
  EXPECT_FALSE(full.raced);
  EXPECT_EQ(raced.winner_start, full.winner_start);
  EXPECT_EQ(raced.best.value, full.best.value);
  ASSERT_EQ(raced.best.x.size(), full.best.x.size());
  for (size_t d = 0; d < raced.best.x.size(); ++d) {
    EXPECT_EQ(raced.best.x[d], full.best.x[d]) << "dim " << d;
  }
  EXPECT_NEAR(raced.best.value, 2.0, 0.05);
  EXPECT_EQ(raced.race.arms_total, raced.starts_total);
}

TEST(RacingDeterminismTest, EarlyExitCancelsScoutsBeforeTheyRun) {
  // Warm start on the optimum: the anchor clears the stability bar, scouts
  // are cancelled unprobed (the static driver's serial schedule), and the
  // saved-evaluations ledger credits their whole tier.
  const Problem p = MakeConstrainedQuadratic();
  MultiStartConfig config = RacingConfig();
  config.seed = 5;
  std::vector<StartPoint> starts;
  starts.push_back({{2.0, 2.0}, StartKind::kWarmCurrent});
  const MultiStartResult result = MultiStartSolve(p, starts, 5, config);
  EXPECT_TRUE(result.raced);
  EXPECT_TRUE(result.early_exit);
  EXPECT_EQ(result.winner_start, 0u);
  EXPECT_EQ(result.starts_launched, 1u);
  EXPECT_EQ(result.starts_cancelled, result.starts_total - 1);
  EXPECT_EQ(result.starts_pruned, 0u);
  EXPECT_GT(result.race.evaluations_saved, 0u);
}

TEST(RacingDeterminismTest, ConfirmShortcutKeepsWinnerWithFewerEvals) {
  // A short confirmation prefix from a stable warm start exits on the same
  // winner while spending no more than the unconfirmed full-tier run.
  const Problem p = MakeConstrainedQuadratic();
  std::vector<StartPoint> starts;
  starts.push_back({{2.0, 2.0}, StartKind::kWarmCurrent});
  MultiStartConfig config = RacingConfig();
  config.seed = 5;
  const MultiStartResult plain = MultiStartSolve(p, starts, 3, config);
  config.racing_confirm_evals = 20;
  const MultiStartResult confirmed = MultiStartSolve(p, starts, 3, config);
  EXPECT_TRUE(confirmed.early_exit);
  EXPECT_EQ(confirmed.winner_start, plain.winner_start);
  EXPECT_LE(confirmed.evaluations, plain.evaluations);
  EXPECT_LE(confirmed.best.max_violation, 1e-2);
}

}  // namespace
}  // namespace faro
