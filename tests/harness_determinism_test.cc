// The parallel harness's non-negotiable invariant: RunTrials / RunAllPolicies
// on N threads produce byte-identical results to a forced single-thread run.
// Each trial owns its RNG stream (seed + 1000 * (trial + 1)) and every
// floating-point reduction happens serially in trial order, so this is exact
// equality, not tolerance-based comparison.
//
// These tests run under TSan in CI (cmake -DFARO_SANITIZE=thread, then
// ctest -R Determinism) to prove the fan-out is also race-free.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/parallel.h"
#include "src/sim/harness.h"

namespace faro {
namespace {

// Force the shared pool to 4 threads before its first use, so the parallel
// path is real even on single-core CI machines (static initialisation runs
// before main, and the pool is created lazily on first ParallelFor).
const bool kForcePoolSize = [] {
  setenv("FARO_THREADS", "4", /*overwrite=*/0);
  return true;
}();

ExperimentSetup SmallSetup() {
  ExperimentSetup setup;
  setup.num_jobs = 4;
  setup.right_size_replicas = 14.0;
  setup.capacity = 12.0;
  setup.trials = 3;
  setup.processing_jitter = 0.05;
  setup.cold_start_jitter_s = 10.0;
  return setup;
}

void ExpectAggregatesIdentical(const TrialAggregate& serial, const TrialAggregate& parallel) {
  EXPECT_EQ(serial.policy, parallel.policy);
  EXPECT_EQ(serial.lost_utility_mean, parallel.lost_utility_mean);
  EXPECT_EQ(serial.lost_utility_sd, parallel.lost_utility_sd);
  EXPECT_EQ(serial.violation_rate_mean, parallel.violation_rate_mean);
  EXPECT_EQ(serial.violation_rate_sd, parallel.violation_rate_sd);
  EXPECT_EQ(serial.lost_effective_utility_mean, parallel.lost_effective_utility_mean);
  EXPECT_EQ(serial.lost_effective_utility_sd, parallel.lost_effective_utility_sd);
  ASSERT_EQ(serial.per_job_lost_utility.size(), parallel.per_job_lost_utility.size());
  for (size_t i = 0; i < serial.per_job_lost_utility.size(); ++i) {
    EXPECT_EQ(serial.per_job_lost_utility[i], parallel.per_job_lost_utility[i])
        << "job " << i;
  }
}

TEST(DeterminismTest, ParallelRunTrialsBitIdenticalToSerial) {
  ASSERT_TRUE(kForcePoolSize);
  const ExperimentSetup base = SmallSetup();
  const PreparedWorkload workload = PrepareWorkload(base);
  // Two cheap baselines plus two Faro variants (the satellite requirement is
  // "at least two policies including one Faro variant").
  for (const std::string& name :
       {std::string("Faro-FairSum"), std::string("Faro-PenaltySum"), std::string("AIAD"),
        std::string("FairShare")}) {
    ExperimentSetup serial_setup = base;
    serial_setup.threads = 1;
    ExperimentSetup parallel_setup = base;
    parallel_setup.threads = 0;  // shared pool (4 threads via FARO_THREADS)
    const TrialAggregate serial = RunTrials(serial_setup, workload, name, nullptr);
    const TrialAggregate parallel = RunTrials(parallel_setup, workload, name, nullptr);
    ExpectAggregatesIdentical(serial, parallel);
  }
}

TEST(DeterminismTest, MinuteP99TimelinesBitIdentical) {
  const ExperimentSetup setup = SmallSetup();
  const PreparedWorkload workload = PrepareWorkload(setup);
  for (const std::string& name : {std::string("Faro-Sum"), std::string("Oneshot")}) {
    // Serial reference: trial loop in index order on this thread.
    std::vector<RunResult> serial;
    for (size_t trial = 0; trial < setup.trials; ++trial) {
      auto policy = MakePolicy(name, nullptr);
      serial.push_back(RunPolicy(setup, workload, *policy, setup.seed + 1000 * (trial + 1)));
    }
    // Parallel fan-out over the shared pool.
    const std::vector<RunResult> parallel = ParallelMap(setup.trials, [&](size_t trial) {
      auto policy = MakePolicy(name, nullptr);
      return RunPolicy(setup, workload, *policy, setup.seed + 1000 * (trial + 1));
    });
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t trial = 0; trial < serial.size(); ++trial) {
      ASSERT_EQ(serial[trial].jobs.size(), parallel[trial].jobs.size());
      for (size_t j = 0; j < serial[trial].jobs.size(); ++j) {
        const std::vector<double>& a = serial[trial].jobs[j].minute_p99;
        const std::vector<double>& b = parallel[trial].jobs[j].minute_p99;
        ASSERT_EQ(a.size(), b.size()) << name << " trial " << trial << " job " << j;
        for (size_t t = 0; t < a.size(); ++t) {
          ASSERT_EQ(a[t], b[t]) << name << " trial " << trial << " job " << j << " minute " << t;
        }
      }
      EXPECT_EQ(serial[trial].cluster_lost_utility, parallel[trial].cluster_lost_utility);
    }
  }
}

TEST(DeterminismTest, RunAllPoliciesMatchesPerPolicyRunTrials) {
  ExperimentSetup setup = SmallSetup();
  setup.trials = 2;
  const PreparedWorkload workload = PrepareWorkload(setup);
  const std::vector<std::string> names = {"FairShare", "Oneshot", "Faro-Sum"};
  const std::vector<TrialAggregate> swept = RunAllPolicies(setup, workload, nullptr, names);
  ASSERT_EQ(swept.size(), names.size());
  ExperimentSetup serial_setup = setup;
  serial_setup.threads = 1;
  for (size_t p = 0; p < names.size(); ++p) {
    const TrialAggregate individual = RunTrials(serial_setup, workload, names[p], nullptr);
    ExpectAggregatesIdentical(individual, swept[p]);
  }
}

TEST(DeterminismTest, RacedPoliciesBitIdenticalAcrossThreads) {
  // Trial racing draws trial k for every active arm before trial k+1 and
  // merges lost-utility observations serially in arm order, so the raced
  // sweep inherits the full sweep's bit-identical contract: same winner,
  // same per-arm aggregates, same telemetry at any thread count.
  ExperimentSetup base = SmallSetup();
  base.race.enabled = true;
  const PreparedWorkload workload = PrepareWorkload(base);
  const std::vector<std::string> names = {"FairShare", "Oneshot", "AIAD"};
  ExperimentSetup serial_setup = base;
  serial_setup.threads = 1;
  ExperimentSetup parallel_setup = base;
  parallel_setup.threads = 0;  // shared pool (4 threads via FARO_THREADS)
  RaceReport serial_report;
  RaceReport parallel_report;
  const std::vector<TrialAggregate> serial =
      RunAllPolicies(serial_setup, workload, nullptr, names, nullptr, &serial_report);
  const std::vector<TrialAggregate> parallel =
      RunAllPolicies(parallel_setup, workload, nullptr, names, nullptr, &parallel_report);
  ASSERT_EQ(serial.size(), names.size());
  ASSERT_EQ(parallel.size(), names.size());
  EXPECT_TRUE(serial_report.raced);
  EXPECT_TRUE(parallel_report.raced);
  EXPECT_EQ(serial_report.winner, parallel_report.winner);
  EXPECT_EQ(serial_report.winner_policy, parallel_report.winner_policy);
  EXPECT_EQ(serial_report.telemetry.rounds, parallel_report.telemetry.rounds);
  EXPECT_EQ(serial_report.telemetry.arms_pruned, parallel_report.telemetry.arms_pruned);
  EXPECT_EQ(serial_report.telemetry.evaluations_spent,
            parallel_report.telemetry.evaluations_spent);
  for (size_t p = 0; p < names.size(); ++p) {
    EXPECT_EQ(serial[p].trials_run, parallel[p].trials_run) << names[p];
    ExpectAggregatesIdentical(serial[p], parallel[p]);
  }
}

TEST(DeterminismTest, RacedArmsAreTrialPrefixesAndWinnerMatchesFullSweep) {
  // Every raced arm's trials are the prefix 0..n-1 of the full sweep's trial
  // sequence (seeds depend only on the trial index), so re-running a plain
  // sweep capped at the arm's trial count reproduces its aggregate bitwise.
  // The race winner must also be the full sweep's argmin lost utility --
  // racing saves trials, never changes the answer.
  ExperimentSetup raced_setup = SmallSetup();
  raced_setup.race.enabled = true;
  const PreparedWorkload workload = PrepareWorkload(raced_setup);
  const std::vector<std::string> names = {"FairShare", "Oneshot", "AIAD"};
  RaceReport report;
  const std::vector<TrialAggregate> raced =
      RunAllPolicies(raced_setup, workload, nullptr, names, nullptr, &report);
  ASSERT_TRUE(report.raced);
  EXPECT_EQ(report.telemetry.evaluations_spent + report.telemetry.evaluations_saved,
            static_cast<uint64_t>(names.size()) * raced_setup.trials);

  ExperimentSetup full_setup = SmallSetup();
  full_setup.threads = 1;
  ASSERT_FALSE(full_setup.race.enabled);  // plain sweeps never race by default
  size_t best = 0;
  std::vector<TrialAggregate> full;
  for (size_t p = 0; p < names.size(); ++p) {
    full.push_back(RunTrials(full_setup, workload, names[p], nullptr));
    if (full[p].lost_utility_mean < full[best].lost_utility_mean) {
      best = p;
    }
    ExperimentSetup prefix_setup = full_setup;
    prefix_setup.trials = raced[p].trials_run;
    ASSERT_GE(raced[p].trials_run, raced_setup.race.min_trials) << names[p];
    const TrialAggregate prefix = RunTrials(prefix_setup, workload, names[p], nullptr);
    ExpectAggregatesIdentical(prefix, raced[p]);
  }
  EXPECT_EQ(report.winner, best);
  EXPECT_EQ(report.winner_policy, names[best]);
}

TEST(DeterminismTest, SharedTrainedPredictorIsRaceFreeAndDeterministic) {
  // The N-HiTS predictor is shared by every concurrently running trial; its
  // forward pass mutates scratch state and is serialised by a mutex. One
  // epoch on a 3-job workload keeps this fast while still exercising the
  // shared-model path (nullptr predictors would fall back to the stateless
  // damped average).
  ExperimentSetup setup = SmallSetup();
  setup.num_jobs = 3;
  setup.right_size_replicas = 10.0;
  setup.capacity = 9.0;
  const PreparedWorkload workload = PrepareWorkload(setup);
  const auto predictor = TrainPredictor(workload, setup.seed, /*epochs=*/1);
  ExperimentSetup serial_setup = setup;
  serial_setup.threads = 1;
  const TrialAggregate serial = RunTrials(serial_setup, workload, "Faro-FairSum", predictor);
  const TrialAggregate parallel = RunTrials(setup, workload, "Faro-FairSum", predictor);
  ExpectAggregatesIdentical(serial, parallel);
}

}  // namespace
}  // namespace faro
