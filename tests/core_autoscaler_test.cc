#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/autoscaler.h"

namespace faro {
namespace {

std::vector<JobSpec> MakeSpecs(size_t n) {
  std::vector<JobSpec> specs(n);
  for (size_t i = 0; i < n; ++i) {
    specs[i].name = "job" + std::to_string(i);
    specs[i].slo = 0.720;
    specs[i].processing_time = 0.180;
  }
  return specs;
}

JobMetrics MakeMetrics(double rate, uint32_t replicas) {
  JobMetrics m;
  m.arrival_rate = rate;
  m.processing_time = 0.180;
  m.ready_replicas = replicas;
  m.arrival_history.assign(15, rate);
  return m;
}

uint32_t Total(const std::vector<uint32_t>& v) {
  return std::accumulate(v.begin(), v.end(), 0u);
}

TEST(FaroAutoscalerTest, StaysWithinCapacity) {
  FaroConfig config;
  FaroAutoscaler faro(config);
  const auto specs = MakeSpecs(4);
  std::vector<JobMetrics> metrics{MakeMetrics(40.0, 1), MakeMetrics(40.0, 1),
                                  MakeMetrics(40.0, 1), MakeMetrics(40.0, 1)};
  const ClusterResources resources{16.0, 16.0};
  const auto action = faro.Decide(0.0, specs, metrics, resources);
  ASSERT_EQ(action.replicas.size(), 4u);
  EXPECT_LE(Total(action.replicas), 16u);
  for (const uint32_t r : action.replicas) {
    EXPECT_GE(r, 1u);
  }
}

TEST(FaroAutoscalerTest, HeavyJobGetsMoreReplicas) {
  FaroConfig config;
  FaroAutoscaler faro(config);
  const auto specs = MakeSpecs(2);
  std::vector<JobMetrics> metrics{MakeMetrics(60.0, 1), MakeMetrics(2.0, 1)};
  const auto action = faro.Decide(0.0, specs, metrics, ClusterResources{32.0, 32.0});
  EXPECT_GT(action.replicas[0], action.replicas[1]);
}

TEST(FaroAutoscalerTest, ShrinkingReturnsSurplusReplicas) {
  // With an over-sized cluster and light loads, shrinking should keep the
  // allocation close to the per-job requirement, not at the capacity.
  FaroConfig config;
  config.objective = ObjectiveKind::kSum;
  FaroAutoscaler faro(config);
  const auto specs = MakeSpecs(2);
  std::vector<JobMetrics> metrics{MakeMetrics(5.0, 1), MakeMetrics(5.0, 1)};
  const auto action = faro.Decide(0.0, specs, metrics, ClusterResources{100.0, 100.0});
  // 5 req/s * 0.18 s = 0.9 offered load; a couple of replicas suffice.
  EXPECT_LE(Total(action.replicas), 10u);
}

TEST(FaroAutoscalerTest, ShrinkingDisabledKeepsLargerAllocation) {
  FaroConfig with;
  with.objective = ObjectiveKind::kSum;
  FaroConfig without = with;
  without.enable_shrinking = false;
  FaroAutoscaler faro_with(with);
  FaroAutoscaler faro_without(without);
  const auto specs = MakeSpecs(2);
  std::vector<JobMetrics> metrics{MakeMetrics(10.0, 8), MakeMetrics(10.0, 8)};
  const auto a = faro_with.Decide(0.0, specs, metrics, ClusterResources{64.0, 64.0});
  const auto b = faro_without.Decide(0.0, specs, metrics, ClusterResources{64.0, 64.0});
  EXPECT_LE(Total(a.replicas), Total(b.replicas));
}

TEST(FaroAutoscalerTest, PenaltyVariantEmitsDropRatesUnderOverload) {
  FaroConfig config;
  config.objective = ObjectiveKind::kPenaltySum;
  FaroAutoscaler faro(config);
  const auto specs = MakeSpecs(2);
  // Hopeless overload: 300 req/s each against a 4-replica cluster.
  std::vector<JobMetrics> metrics{MakeMetrics(300.0, 1), MakeMetrics(300.0, 1)};
  const auto action = faro.Decide(0.0, specs, metrics, ClusterResources{4.0, 4.0});
  ASSERT_EQ(action.drop_rates.size(), 2u);
  for (const double d : action.drop_rates) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(FaroAutoscalerTest, NonPenaltyVariantNeverDrops) {
  FaroConfig config;
  config.objective = ObjectiveKind::kFairSum;
  FaroAutoscaler faro(config);
  const auto specs = MakeSpecs(2);
  std::vector<JobMetrics> metrics{MakeMetrics(300.0, 1), MakeMetrics(300.0, 1)};
  const auto action = faro.Decide(0.0, specs, metrics, ClusterResources{4.0, 4.0});
  for (const double d : action.drop_rates) {
    EXPECT_DOUBLE_EQ(d, 0.0);
  }
}

TEST(FaroAutoscalerTest, FastReactUpscalesSustainedViolator) {
  FaroConfig config;
  FaroAutoscaler faro(config);
  const auto specs = MakeSpecs(2);
  std::vector<JobMetrics> metrics{MakeMetrics(40.0, 2), MakeMetrics(2.0, 2)};
  metrics[0].overloaded_for = 40.0;  // above the 30 s trigger
  const auto action = faro.FastReact(100.0, specs, metrics, ClusterResources{32.0, 32.0});
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(action->replicas[0], 3u);
  EXPECT_EQ(action->replicas[1], 2u);
}

TEST(FaroAutoscalerTest, FastReactRespectsTrigger) {
  FaroConfig config;
  FaroAutoscaler faro(config);
  const auto specs = MakeSpecs(1);
  std::vector<JobMetrics> metrics{MakeMetrics(40.0, 2)};
  metrics[0].overloaded_for = 10.0;  // below the trigger
  EXPECT_FALSE(faro.FastReact(100.0, specs, metrics, ClusterResources{32.0, 32.0}).has_value());
}

TEST(FaroAutoscalerTest, FastReactNeverExceedsCapacity) {
  FaroConfig config;
  FaroAutoscaler faro(config);
  const auto specs = MakeSpecs(2);
  std::vector<JobMetrics> metrics{MakeMetrics(40.0, 2), MakeMetrics(40.0, 2)};
  metrics[0].overloaded_for = 60.0;
  metrics[1].overloaded_for = 60.0;
  // Cluster is full: 4 replicas on 4 vCPUs.
  EXPECT_FALSE(faro.FastReact(100.0, specs, metrics, ClusterResources{4.0, 4.0}).has_value());
}

TEST(FaroAutoscalerTest, FastReactDisabledByHybridSwitch) {
  FaroConfig config;
  config.enable_hybrid = false;
  FaroAutoscaler faro(config);
  const auto specs = MakeSpecs(1);
  std::vector<JobMetrics> metrics{MakeMetrics(40.0, 2)};
  metrics[0].overloaded_for = 500.0;
  EXPECT_FALSE(faro.FastReact(100.0, specs, metrics, ClusterResources{32.0, 32.0}).has_value());
}

TEST(FaroAutoscalerTest, HierarchicalMatchesCapacityAndShape) {
  FaroConfig config;
  config.hierarchical_groups = 3;
  config.hierarchical_threshold = 0;  // force the grouped path at 12 jobs
  FaroAutoscaler faro(config);
  const size_t n = 12;
  const auto specs = MakeSpecs(n);
  std::vector<JobMetrics> metrics;
  for (size_t i = 0; i < n; ++i) {
    metrics.push_back(MakeMetrics(i < 6 ? 30.0 : 5.0, 1));
  }
  const auto action = faro.Decide(0.0, specs, metrics, ClusterResources{60.0, 60.0});
  ASSERT_EQ(action.replicas.size(), n);
  EXPECT_LE(Total(action.replicas), 60u + 12u);  // group split may add minima
  double heavy = 0.0;
  double light = 0.0;
  for (size_t i = 0; i < n; ++i) {
    (i < 6 ? heavy : light) += action.replicas[i];
  }
  EXPECT_GT(heavy, light);
}

TEST(FaroAutoscalerTest, NoPredictionUsesCurrentRate) {
  FaroConfig config;
  config.enable_prediction = false;
  FaroAutoscaler faro(config);
  const auto specs = MakeSpecs(1);
  // History says 100 req/s but the current rate is 5: without prediction the
  // sizing follows the current rate.
  JobMetrics m = MakeMetrics(5.0, 1);
  m.arrival_history.assign(15, 100.0);
  const auto action = faro.Decide(0.0, specs, {m}, ClusterResources{64.0, 64.0});
  EXPECT_LE(action.replicas[0], 5u);
}

TEST(FaroAutoscalerTest, NameReflectsObjective) {
  FaroConfig config;
  config.objective = ObjectiveKind::kPenaltyFairSum;
  FaroAutoscaler faro(config);
  EXPECT_EQ(faro.name(), "Faro-PenaltyFairSum");
}

}  // namespace
}  // namespace faro
