#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/objectives.h"
#include "src/optim/cobyla.h"
#include "src/queueing/mdc.h"

namespace faro {
namespace {

JobContext MakeJob(const std::string& name, double lambda, double p = 0.180,
                   double slo = 0.720, double priority = 1.0) {
  JobContext job;
  job.spec.name = name;
  job.spec.slo = slo;
  job.spec.processing_time = p;
  job.spec.priority = priority;
  job.predicted_load = {lambda};
  return job;
}

ClusterObjective MakeObjective(std::vector<JobContext> jobs, double capacity,
                               ObjectiveKind kind = ObjectiveKind::kSum,
                               bool relaxed = true) {
  ClusterObjectiveConfig config;
  config.kind = kind;
  config.relaxed = relaxed;
  if (!relaxed) {
    config.latency_model = LatencyModelKind::kMdcPrecise;
  }
  return ClusterObjective(std::move(jobs), ClusterResources{capacity, capacity},
                          std::move(config));
}

TEST(ObjectiveKindTest, NamesAndDropFlags) {
  EXPECT_EQ(ObjectiveKindName(ObjectiveKind::kSum), "Faro-Sum");
  EXPECT_EQ(ObjectiveKindName(ObjectiveKind::kPenaltyFairSum), "Faro-PenaltyFairSum");
  EXPECT_FALSE(UsesDropRates(ObjectiveKind::kSum));
  EXPECT_FALSE(UsesDropRates(ObjectiveKind::kFair));
  EXPECT_FALSE(UsesDropRates(ObjectiveKind::kFairSum));
  EXPECT_TRUE(UsesDropRates(ObjectiveKind::kPenaltySum));
  EXPECT_TRUE(UsesDropRates(ObjectiveKind::kPenaltyFairSum));
}

TEST(ClusterObjectiveTest, JobUtilityIncreasesWithReplicas) {
  auto objective = MakeObjective({MakeJob("a", 40.0)}, 32.0);
  double previous = 0.0;
  for (double x = 1.0; x <= 16.0; x += 1.0) {
    const double u = objective.JobUtility(0, x);
    EXPECT_GE(u, previous - 1e-12) << "x=" << x;
    previous = u;
  }
  EXPECT_NEAR(previous, 1.0, 1e-9);  // plenty of replicas -> full utility
}

TEST(ClusterObjectiveTest, UtilityAveragedOverWindow) {
  // Two steps: one trivially satisfiable, one impossible at x = 1.
  JobContext job = MakeJob("a", 0.0);
  job.predicted_load = {0.1, 500.0};
  auto objective = MakeObjective({std::move(job)}, 32.0);
  const double u = objective.JobUtility(0, 1.0);
  EXPECT_GT(u, 0.4);  // the easy step contributes ~1/2
  EXPECT_LT(u, 0.6);
}

TEST(ClusterObjectiveTest, DropsReduceLoadAndTriggerPenalty) {
  auto objective =
      MakeObjective({MakeJob("a", 40.0)}, 32.0, ObjectiveKind::kPenaltySum);
  // At 1 replica and lambda=40, utility is tiny; dropping 90% of load makes
  // the remaining 4 req/s easily served, but the penalty multiplier crushes
  // effective utility to zero.
  const double u_nodrop = objective.JobUtility(0, 1.0, 0.0);
  const double u_drop = objective.JobUtility(0, 1.0, 0.9);
  EXPECT_GT(u_drop, u_nodrop);
  // The relaxed penalty multiplier at 10% availability is tiny but nonzero
  // (the plateau-free ramp); effective utility is crushed to near zero.
  EXPECT_LT(objective.JobEffectiveUtility(0, 1.0, 0.9), 0.01);
}

TEST(ClusterObjectiveTest, SumObjectiveIsPrioritySum) {
  auto objective = MakeObjective(
      {MakeJob("a", 1.0, 0.18, 0.72, 2.0), MakeJob("b", 1.0, 0.18, 0.72, 1.0)}, 32.0);
  // Both jobs trivially satisfied at 8 replicas each -> utilities 1.
  const std::vector<double> v{8.0, 8.0};
  EXPECT_NEAR(objective.Evaluate(v), 3.0, 1e-9);
}

TEST(ClusterObjectiveTest, FairObjectiveIsNegativeSpread) {
  auto objective =
      MakeObjective({MakeJob("a", 40.0), MakeJob("b", 40.0)}, 64.0, ObjectiveKind::kFair);
  // Equal allocations -> equal utilities -> spread 0.
  const std::vector<double> equal{8.0, 8.0};
  EXPECT_NEAR(objective.Evaluate(equal), 0.0, 1e-9);
  // Lopsided allocation -> negative objective.
  const std::vector<double> lopsided{15.0, 1.0};
  EXPECT_LT(objective.Evaluate(lopsided), -0.1);
}

TEST(ClusterObjectiveTest, FairSumCombinesBoth) {
  std::vector<JobContext> jobs{MakeJob("a", 40.0), MakeJob("b", 40.0)};
  ClusterObjectiveConfig config;
  config.kind = ObjectiveKind::kFairSum;
  config.gamma = 2.0;
  ClusterObjective objective(jobs, ClusterResources{64.0, 64.0}, config);
  const std::vector<double> equal{8.0, 8.0};
  const std::vector<double> lopsided{15.0, 1.0};
  EXPECT_GT(objective.Evaluate(equal), objective.Evaluate(lopsided));
}

TEST(ClusterObjectiveTest, GammaDefaultsToJobCount) {
  std::vector<JobContext> jobs{MakeJob("a", 1.0), MakeJob("b", 1.0), MakeJob("c", 1.0)};
  ClusterObjectiveConfig config;
  config.kind = ObjectiveKind::kFairSum;
  config.gamma = -1.0;
  ClusterObjective objective(std::move(jobs), ClusterResources{32.0, 32.0}, config);
  EXPECT_DOUBLE_EQ(objective.config().gamma, 3.0);
}

TEST(ClusterObjectiveTest, ProblemRespectsCapacityConstraint) {
  auto objective = MakeObjective({MakeJob("a", 40.0), MakeJob("b", 40.0)}, 10.0);
  Problem problem = objective.BuildProblem();
  // 6 + 6 replicas exceeds the 10-vCPU cluster.
  const std::vector<double> over{6.0, 6.0};
  EXPECT_GT(problem.MaxViolation(over), 1.0);
  const std::vector<double> ok{5.0, 5.0};
  EXPECT_DOUBLE_EQ(problem.MaxViolation(ok), 0.0);
}

TEST(ClusterObjectiveTest, PreciseModeHasPlateaus) {
  // In precise mode, fractional replicas between integers give identical
  // objective values (the plateau pathology of §3.4).
  auto objective = MakeObjective({MakeJob("a", 40.0)}, 32.0, ObjectiveKind::kSum,
                                 /*relaxed=*/false);
  const double at_3_1 = objective.Evaluate(std::vector<double>{3.1});
  const double at_3_9 = objective.Evaluate(std::vector<double>{3.9});
  EXPECT_DOUBLE_EQ(at_3_1, at_3_9);
  // Whereas the relaxed surface separates them.
  auto relaxed = MakeObjective({MakeJob("a", 40.0)}, 32.0);
  EXPECT_NE(relaxed.Evaluate(std::vector<double>{3.1}),
            relaxed.Evaluate(std::vector<double>{3.9}));
}

TEST(ClusterObjectiveTest, RelaxedSolvableByCobyla) {
  // Two jobs, capacity 12, one heavy (40 req/s) one light (5 req/s): the
  // solver should give the heavy job clearly more replicas.
  auto objective = MakeObjective({MakeJob("heavy", 40.0), MakeJob("light", 5.0)}, 12.0);
  Problem problem = objective.BuildProblem();
  CobylaConfig config;
  config.rho_begin = 2.0;
  config.rho_end = 1e-4;
  const auto result = Cobyla(problem, objective.InitialPoint(), config);
  EXPECT_LE(result.max_violation, 1e-3);
  EXPECT_GT(result.x[0], result.x[1] + 1.0);
  // Cluster is right-sized for these loads: near-max utility achievable.
  EXPECT_GT(objective.Evaluate(result.x), 1.8);
}

TEST(ClusterObjectiveTest, CpuAndMemUsage) {
  JobContext a = MakeJob("a", 1.0);
  a.spec.cpu_per_replica = 2.0;
  a.spec.mem_per_replica = 4.0;
  auto objective = MakeObjective({std::move(a)}, 100.0);
  const std::vector<double> v{3.0};
  EXPECT_DOUBLE_EQ(objective.CpuUsage(v), 6.0);
  EXPECT_DOUBLE_EQ(objective.MemUsage(v), 12.0);
}

TEST(ClusterObjectiveTest, InitialPointIsOneReplicaNoDrops) {
  auto objective =
      MakeObjective({MakeJob("a", 1.0), MakeJob("b", 1.0)}, 32.0, ObjectiveKind::kPenaltySum);
  const auto v = objective.InitialPoint();
  ASSERT_EQ(v.size(), 4u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.0);
  EXPECT_DOUBLE_EQ(v[3], 0.0);
}

class ObjectiveKindParamTest : public ::testing::TestWithParam<ObjectiveKind> {};

TEST_P(ObjectiveKindParamTest, MoreCapacityNeverHurtsOptimum) {
  // Property: the solved objective value with a larger cluster is at least
  // the value with a smaller cluster (monotone resource utility).
  const ObjectiveKind kind = GetParam();
  double previous = -1e9;
  for (const double capacity : {6.0, 12.0, 24.0}) {
    auto objective =
        MakeObjective({MakeJob("a", 30.0), MakeJob("b", 10.0)}, capacity, kind);
    Problem problem = objective.BuildProblem();
    CobylaConfig config;
    config.rho_begin = 2.0;
    config.rho_end = 1e-3;
    const auto result = Cobyla(problem, objective.InitialPoint(), config);
    const double value = objective.Evaluate(result.x);
    EXPECT_GE(value, previous - 0.05) << "capacity=" << capacity;
    previous = std::max(previous, value);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ObjectiveKindParamTest,
                         ::testing::Values(ObjectiveKind::kSum, ObjectiveKind::kFair,
                                           ObjectiveKind::kFairSum, ObjectiveKind::kPenaltySum,
                                           ObjectiveKind::kPenaltyFairSum));

}  // namespace
}  // namespace faro
