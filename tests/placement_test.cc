// Tests for the node-placement layer, the Holt-Winters forecaster, and the
// no-downscale baseline variants (Table 6's INFaaS* / Cocktail* asterisks).

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "src/baselines/baselines.h"
#include "src/forecast/holtwinters.h"
#include "src/sim/placement.h"
#include "src/sim/simulator.h"

namespace faro {
namespace {

std::vector<Node> TwoNodes(double cpu = 4.0, double mem = 8.0) {
  return {{"node-a", cpu, mem, 0.0, 0.0}, {"node-b", cpu, mem, 0.0, 0.0}};
}

JobSpec OneCpuJob(const std::string& name) {
  JobSpec spec;
  spec.name = name;
  spec.cpu_per_replica = 1.0;
  spec.mem_per_replica = 1.0;
  return spec;
}

TEST(PlacementTest, FirstFitFillsInOrder) {
  PlacementTracker tracker(TwoNodes(), PlacementStrategy::kFirstFit);
  const JobSpec job = OneCpuJob("a");
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tracker.PlaceReplica(job).value(), 0u);
  }
  EXPECT_EQ(tracker.PlaceReplica(job).value(), 1u);  // node-a full
  EXPECT_EQ(tracker.PlacedReplicas("a"), 5u);
}

TEST(PlacementTest, SpreadBalancesNodes) {
  PlacementTracker tracker(TwoNodes(), PlacementStrategy::kSpread);
  const JobSpec job = OneCpuJob("a");
  (void)tracker.PlaceReplica(job);
  (void)tracker.PlaceReplica(job);
  EXPECT_DOUBLE_EQ(tracker.nodes()[0].cpu_used, 1.0);
  EXPECT_DOUBLE_EQ(tracker.nodes()[1].cpu_used, 1.0);
}

TEST(PlacementTest, BestFitPacksTightest) {
  std::vector<Node> nodes{{"big", 8.0, 8.0, 0.0, 0.0}, {"small", 2.0, 8.0, 0.0, 0.0}};
  PlacementTracker tracker(std::move(nodes), PlacementStrategy::kBestFit);
  const JobSpec job = OneCpuJob("a");
  // Best fit picks the node with the least remaining CPU: "small".
  EXPECT_EQ(tracker.PlaceReplica(job).value(), 1u);
}

TEST(PlacementTest, PendingWhenNoNodeFits) {
  PlacementTracker tracker(TwoNodes(1.0, 1.0), PlacementStrategy::kFirstFit);
  JobSpec fat = OneCpuJob("fat");
  fat.cpu_per_replica = 2.0;  // larger than any node
  EXPECT_FALSE(tracker.PlaceReplica(fat).has_value());
}

TEST(PlacementTest, FragmentationLimitsPlaceable) {
  // Aggregate free capacity is 4 vCPU but split 2+2: a 3-vCPU replica cannot
  // be placed anywhere even though "the cluster" has room.
  PlacementTracker tracker(TwoNodes(4.0, 8.0), PlacementStrategy::kFirstFit);
  const JobSpec filler = OneCpuJob("filler");
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(tracker.PlaceReplica(filler).has_value());
  }
  // nodes now at 2+2 used (spread by first-fit: 4 on node-a). Rebuild: node-a
  // full, node-b empty -> place 2 more on b.
  JobSpec fat = OneCpuJob("fat");
  fat.cpu_per_replica = 3.0;
  fat.mem_per_replica = 1.0;
  // First-fit put all 4 on node-a; node-b has 4 free -> one 3-vCPU fits.
  EXPECT_EQ(tracker.PlaceableReplicas(fat), 1u);
  EXPECT_DOUBLE_EQ(tracker.TotalCapacity().cpu, 8.0);
}

TEST(PlacementTest, RemoveFreesCapacity) {
  PlacementTracker tracker(TwoNodes(), PlacementStrategy::kFirstFit);
  const JobSpec job = OneCpuJob("a");
  ASSERT_TRUE(tracker.PlaceReplica(job).has_value());
  ASSERT_TRUE(tracker.PlaceReplica(job).has_value());
  EXPECT_TRUE(tracker.RemoveReplica(job));
  EXPECT_EQ(tracker.PlacedReplicas("a"), 1u);
  EXPECT_DOUBLE_EQ(tracker.nodes()[0].cpu_used, 1.0);
  EXPECT_FALSE(tracker.RemoveReplica(OneCpuJob("unknown")));
}

TEST(PlacementTest, PlaceableSimulationDoesNotMutate) {
  PlacementTracker tracker(TwoNodes(), PlacementStrategy::kFirstFit);
  const JobSpec job = OneCpuJob("a");
  EXPECT_EQ(tracker.PlaceableReplicas(job), 8u);
  EXPECT_DOUBLE_EQ(tracker.nodes()[0].cpu_used, 0.0);
}

// --- Holt-Winters --------------------------------------------------------------

TEST(HoltWintersTest, TracksSeasonalSeries) {
  HoltWintersConfig config;
  config.period = 24;
  HoltWintersModel model(config);
  std::vector<double> values;
  for (size_t t = 0; t < 24 * 8; ++t) {
    values.push_back(100.0 + 30.0 * std::sin(2.0 * std::numbers::pi * t / 24.0) +
                     0.05 * static_cast<double>(t));
  }
  ASSERT_TRUE(model.Fit(values));
  const auto forecast = model.Forecast(24);
  double se = 0.0;
  for (size_t h = 0; h < 24; ++h) {
    const size_t t = values.size() + h;
    const double truth = 100.0 + 30.0 * std::sin(2.0 * std::numbers::pi * t / 24.0) +
                         0.05 * static_cast<double>(t);
    se += (forecast[h] - truth) * (forecast[h] - truth);
  }
  EXPECT_LT(std::sqrt(se / 24.0), 6.0);  // well inside the 30-amplitude swing
}

TEST(HoltWintersTest, OnlineObservationUpdatesLevel) {
  HoltWintersConfig config;
  config.period = 4;
  HoltWintersModel model(config);
  std::vector<double> flat(16, 10.0);
  ASSERT_TRUE(model.Fit(flat));
  EXPECT_NEAR(model.level(), 10.0, 1e-6);
  for (int i = 0; i < 40; ++i) {
    model.Observe(20.0);  // level shift
  }
  EXPECT_GT(model.level(), 17.0);
}

TEST(HoltWintersTest, TooShortFallsBack) {
  HoltWintersModel model;
  EXPECT_FALSE(model.Fit(std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(model.Forecast(3)[0], 2.0);
}

TEST(HoltWintersTest, ForecastsNonNegative) {
  HoltWintersConfig config;
  config.period = 4;
  HoltWintersModel model(config);
  std::vector<double> tiny(24, 0.5);
  ASSERT_TRUE(model.Fit(tiny));
  for (const double v : model.Forecast(8)) {
    EXPECT_GE(v, 0.0);
  }
}

// --- no-downscale baseline variants -----------------------------------------------

TEST(NoDownscaleTest, AiadVariantNeverScalesDown) {
  AiadPolicy policy(/*allow_downscale=*/false);
  EXPECT_EQ(policy.name(), "AIAD-NoDown");
  std::vector<JobSpec> specs(1);
  JobMetrics m;
  m.ready_replicas = 6;
  m.p99_latency = 0.01;
  m.underloaded_for = 10000.0;
  m.processing_time = 0.18;
  EXPECT_FALSE(
      policy.FastReact(0.0, specs, {m}, ClusterResources{32.0, 32.0}).has_value());
}

TEST(NoDownscaleTest, CocktailKeepsItsReplicas) {
  MarkPolicy policy(nullptr, 0.8, /*allow_downscale=*/false);
  EXPECT_EQ(policy.name(), "Cocktail-NoDown");
  std::vector<JobSpec> specs(1);
  specs[0].processing_time = 0.18;
  JobMetrics m;
  m.ready_replicas = 12;        // previously upscaled
  m.arrival_rate = 1.0;         // load has collapsed
  m.processing_time = 0.18;
  m.arrival_history.assign(10, 1.0);
  const auto action = policy.Decide(0.0, specs, {m}, ClusterResources{32.0, 32.0});
  EXPECT_EQ(action.replicas[0], 12u);  // never relinquishes
  // The downscaling variant would shrink to ~1.
  MarkPolicy normal(nullptr, 0.8, /*allow_downscale=*/true);
  EXPECT_LE(normal.Decide(0.0, specs, {m}, ClusterResources{32.0, 32.0}).replicas[0], 2u);
}

// --- placement-aware simulator ------------------------------------------------

class StepUpPolicy : public AutoscalingPolicy {
 public:
  std::string name() const override { return "StepUp"; }
  double decision_interval_s() const override { return 60.0; }
  ScalingAction Decide(double now_s, const std::vector<JobSpec>&,
                       const std::vector<JobMetrics>&, const ClusterResources&) override {
    ScalingAction action;
    action.replicas = {now_s < 1.0 ? 2u : 6u};  // jump to 6 at the second tick
    return action;
  }
};

TEST(PlacementSimTest, FragmentedNodesDelayButDoNotLoseScaleUps) {
  SimJobConfig job;
  job.spec.name = "svc";
  job.spec.processing_time = 0.1;
  job.spec.slo = 0.4;
  job.spec.cpu_per_replica = 2.0;
  job.spec.mem_per_replica = 1.0;
  job.arrival_rate_per_min = Series(std::vector<double>(12, 300.0));
  job.initial_replicas = 2;

  SimConfig config;
  config.resources = ClusterResources{16.0, 16.0};
  // Three 4-vCPU nodes: at 2 vCPU per replica only 6 replicas fit in total.
  config.nodes = {{"n1", 4.0, 16.0, 0.0, 0.0},
                  {"n2", 4.0, 16.0, 0.0, 0.0},
                  {"n3", 4.0, 16.0, 0.0, 0.0}};
  StepUpPolicy policy;
  const RunResult result = RunSimulation(config, {job}, policy);
  // The target of 6 exceeds node capacity: at most 6 replicas placed
  // (2 per node); the run completes and replicas never exceed placement room.
  for (const double r : result.jobs[0].minute_replicas) {
    EXPECT_LE(r, 6.0 + 1e-9);
  }
  EXPECT_GE(result.jobs[0].minute_replicas.back(), 5.0);
}

TEST(PlacementSimTest, NodeModelOffByDefault) {
  SimJobConfig job;
  job.spec.processing_time = 0.1;
  job.spec.slo = 0.4;
  job.arrival_rate_per_min = Series(std::vector<double>(5, 60.0));
  SimConfig config;
  config.resources = ClusterResources{8.0, 8.0};
  StepUpPolicy policy;
  const RunResult result = RunSimulation(config, {job}, policy);
  EXPECT_GE(result.jobs[0].minute_replicas.back(), 6.0);  // unconstrained
}

}  // namespace
}  // namespace faro
