// Tests for the predictor zoo beyond N-HiTS: the simple core predictors
// (last-value, damped average, Swayam-style linear trend), the Prophet
// adapter, and the CSV run reports.

#include <cmath>
#include <filesystem>
#include <fstream>
#include <numbers>

#include <gtest/gtest.h>

#include "src/core/predictor.h"
#include "src/forecast/prophet_adapter.h"
#include "src/sim/report.h"
#include "src/sim/simulator.h"

namespace faro {
namespace {

TEST(LastValuePredictorTest, FlatLinesLastObservation) {
  LastValuePredictor predictor;
  const std::vector<double> history{1.0, 5.0, 9.0};
  const auto out = predictor.PredictQuantile(0, history, 4, 0.9);
  ASSERT_EQ(out.size(), 4u);
  for (const double v : out) {
    EXPECT_DOUBLE_EQ(v, 9.0);
  }
  EXPECT_DOUBLE_EQ(predictor.PredictQuantile(0, {}, 2, 0.5)[0], 0.0);
}

TEST(DampedAveragePredictorTest, SmoothsHistory) {
  DampedAveragePredictor predictor(0.5);
  const std::vector<double> history{0.0, 10.0};
  // level = 0.5*0 + 0.5*10 = 5.
  EXPECT_DOUBLE_EQ(predictor.PredictQuantile(0, history, 1, 0.5)[0], 5.0);
}

TEST(LinearTrendPredictorTest, ExtrapolatesALine) {
  LinearTrendPredictor predictor(10);
  std::vector<double> history;
  for (int t = 0; t < 10; ++t) {
    history.push_back(2.0 + 3.0 * t);  // next values: 32, 35, 38...
  }
  const auto out = predictor.PredictQuantile(0, history, 3, 0.5);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NEAR(out[0], 32.0, 1e-6);
  EXPECT_NEAR(out[2], 38.0, 1e-6);
}

TEST(LinearTrendPredictorTest, QuantileWidensWithNoise) {
  LinearTrendPredictor predictor(12);
  std::vector<double> noisy{10, 14, 9, 15, 8, 16, 10, 13, 9, 15, 11, 12};
  const auto mid = predictor.PredictQuantile(0, noisy, 1, 0.5);
  const auto high = predictor.PredictQuantile(0, noisy, 1, 0.9);
  EXPECT_GT(high[0], mid[0] + 1.0);
}

TEST(LinearTrendPredictorTest, NeverNegative) {
  LinearTrendPredictor predictor(8);
  std::vector<double> falling;
  for (int t = 0; t < 8; ++t) {
    falling.push_back(20.0 - 3.0 * t);
  }
  for (const double v : predictor.PredictQuantile(0, falling, 5, 0.5)) {
    EXPECT_GE(v, 0.0);
  }
}

TEST(LinearTrendPredictorTest, ShortHistoryFallsBack) {
  LinearTrendPredictor predictor;
  const std::vector<double> history{7.0};
  EXPECT_DOUBLE_EQ(predictor.PredictQuantile(0, history, 2, 0.8)[0], 7.0);
}

TEST(ProphetAdapterTest, TracksSeasonalShape) {
  const size_t period = 180;
  std::vector<double> train;
  for (size_t t = 0; t < 5 * period; ++t) {
    train.push_back(30.0 + 10.0 * std::sin(2.0 * std::numbers::pi * t / period));
  }
  ProphetConfig config;
  config.period = period;
  ProphetWorkloadPredictor predictor(config);
  ASSERT_TRUE(predictor.TrainJob(3, Series(train)));
  EXPECT_EQ(predictor.trained_jobs(), 1u);

  // Forecast 40 steps after training; compare against truth.
  predictor.SetCurrentStep(40);
  std::vector<double> history;
  for (size_t t = 5 * period + 25; t < 5 * period + 40; ++t) {
    history.push_back(30.0 + 10.0 * std::sin(2.0 * std::numbers::pi * t / period));
  }
  const auto forecast = predictor.PredictQuantile(3, history, 10, 0.5);
  ASSERT_EQ(forecast.size(), 10u);
  for (size_t h = 0; h < 10; ++h) {
    const size_t t = 5 * period + 40 + h;
    const double truth = 30.0 + 10.0 * std::sin(2.0 * std::numbers::pi * t / period);
    EXPECT_NEAR(forecast[h], truth, 3.0);
  }
}

TEST(ProphetAdapterTest, UntrainedJobFallsBack) {
  ProphetWorkloadPredictor predictor;
  const std::vector<double> history{4.0, 4.0, 4.0};
  const auto out = predictor.PredictQuantile(9, history, 3, 0.5);
  EXPECT_NEAR(out[0], 4.0, 1e-9);
}

TEST(ProphetAdapterTest, TooShortTrainingRejected) {
  ProphetWorkloadPredictor predictor;
  EXPECT_FALSE(predictor.TrainJob(0, Series(std::vector<double>{1.0, 2.0})));
  EXPECT_EQ(predictor.trained_jobs(), 0u);
}

// --- run reports -------------------------------------------------------------

class TinyPolicy : public AutoscalingPolicy {
 public:
  std::string name() const override { return "Tiny"; }
  ScalingAction Decide(double, const std::vector<JobSpec>&, const std::vector<JobMetrics>&,
                       const ClusterResources&) override {
    ScalingAction action;
    action.replicas = {2};
    return action;
  }
};

RunResult TinyRun() {
  SimJobConfig job;
  job.spec.name = "tiny";
  job.spec.processing_time = 0.1;
  job.spec.slo = 0.4;
  job.arrival_rate_per_min = Series(std::vector<double>(5, 120.0));
  TinyPolicy policy;
  SimConfig config;
  config.resources = ClusterResources{8.0, 8.0};
  return RunSimulation(config, {job}, policy);
}

TEST(ReportTest, TimelineCsvHasOneRowPerMinute) {
  const RunResult result = TinyRun();
  const std::string path =
      (std::filesystem::temp_directory_path() / "faro_report_timeline.csv").string();
  ASSERT_TRUE(WriteTimelineCsv(path, result));
  std::ifstream in(path);
  std::string line;
  size_t rows = 0;
  while (std::getline(in, line)) {
    ++rows;
  }
  EXPECT_EQ(rows, 1 + result.cluster_utility_timeline.size());
  std::filesystem::remove(path);
}

TEST(ReportTest, SummaryCsvHasJobAndClusterRows) {
  const RunResult result = TinyRun();
  const std::string path =
      (std::filesystem::temp_directory_path() / "faro_report_summary.csv").string();
  ASSERT_TRUE(WriteSummaryCsv(path, result));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("tiny"), std::string::npos);
  EXPECT_NE(content.find("CLUSTER"), std::string::npos);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace faro
