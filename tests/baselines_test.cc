#include <vector>

#include <gtest/gtest.h>

#include "src/baselines/baselines.h"
#include "src/baselines/cilantro.h"

namespace faro {
namespace {

std::vector<JobSpec> MakeSpecs(size_t n) {
  std::vector<JobSpec> specs(n);
  for (size_t i = 0; i < n; ++i) {
    specs[i].name = "job" + std::to_string(i);
  }
  return specs;
}

JobMetrics MakeMetrics(double rate, uint32_t replicas, double p99 = 0.1) {
  JobMetrics m;
  m.arrival_rate = rate;
  m.processing_time = 0.180;
  m.p99_latency = p99;
  m.ready_replicas = replicas;
  m.arrival_history.assign(10, rate);
  return m;
}

TEST(FairShareTest, SplitsEvenly) {
  FairSharePolicy policy;
  const auto specs = MakeSpecs(10);
  std::vector<JobMetrics> metrics(10, MakeMetrics(1.0, 1));
  const auto action = policy.Decide(0.0, specs, metrics, ClusterResources{32.0, 32.0});
  for (const uint32_t r : action.replicas) {
    EXPECT_EQ(r, 3u);  // floor(32 / 10)
  }
}

TEST(FairShareTest, AtLeastOneEach) {
  FairSharePolicy policy;
  const auto specs = MakeSpecs(10);
  std::vector<JobMetrics> metrics(10, MakeMetrics(1.0, 1));
  const auto action = policy.Decide(0.0, specs, metrics, ClusterResources{4.0, 4.0});
  for (const uint32_t r : action.replicas) {
    EXPECT_EQ(r, 1u);
  }
}

TEST(OneshotTest, JumpsProportionallyOnOverload) {
  OneshotPolicy policy;
  const auto specs = MakeSpecs(1);
  // p99 at 3x the SLO with 4 replicas -> wants 12.
  std::vector<JobMetrics> metrics{MakeMetrics(40.0, 4, 3.0 * 0.720)};
  metrics[0].overloaded_for = 45.0;
  const auto action = policy.FastReact(0.0, specs, metrics, ClusterResources{32.0, 32.0});
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(action->replicas[0], 12u);
}

TEST(OneshotTest, NoActionBeforeTrigger) {
  OneshotPolicy policy;
  const auto specs = MakeSpecs(1);
  std::vector<JobMetrics> metrics{MakeMetrics(40.0, 4, 3.0 * 0.720)};
  metrics[0].overloaded_for = 10.0;
  EXPECT_FALSE(policy.FastReact(0.0, specs, metrics, ClusterResources{32.0, 32.0}).has_value());
}

TEST(OneshotTest, ClipsToFreeCapacity) {
  OneshotPolicy policy;
  const auto specs = MakeSpecs(2);
  std::vector<JobMetrics> metrics{MakeMetrics(40.0, 4, 10.0 * 0.720), MakeMetrics(1.0, 4)};
  metrics[0].overloaded_for = 60.0;
  // Cluster 10: 8 used, 2 free -> job 0 can only reach 6 despite wanting 40.
  const auto action = policy.FastReact(0.0, specs, metrics, ClusterResources{10.0, 10.0});
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(action->replicas[0], 6u);
}

TEST(OneshotTest, DownscaleIsConservative) {
  OneshotPolicy policy;
  const auto specs = MakeSpecs(1);
  std::vector<JobMetrics> metrics{MakeMetrics(1.0, 8, 0.05)};
  metrics[0].underloaded_for = 400.0;  // above the 5 min trigger
  const auto action = policy.FastReact(0.0, specs, metrics, ClusterResources{32.0, 32.0});
  ASSERT_TRUE(action.has_value());
  EXPECT_LT(action->replicas[0], 8u);
  EXPECT_GE(action->replicas[0], 1u);
}

TEST(AiadTest, AdditiveSteps) {
  AiadPolicy policy;
  const auto specs = MakeSpecs(2);
  std::vector<JobMetrics> metrics{MakeMetrics(40.0, 4, 2.0), MakeMetrics(1.0, 6, 0.05)};
  metrics[0].overloaded_for = 60.0;
  metrics[1].underloaded_for = 400.0;
  const auto action = policy.FastReact(0.0, specs, metrics, ClusterResources{32.0, 32.0});
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(action->replicas[0], 5u);  // +1
  EXPECT_EQ(action->replicas[1], 5u);  // -1
}

TEST(AiadTest, NeverBelowOneReplica) {
  AiadPolicy policy;
  const auto specs = MakeSpecs(1);
  std::vector<JobMetrics> metrics{MakeMetrics(0.1, 1, 0.01)};
  metrics[0].underloaded_for = 1000.0;
  EXPECT_FALSE(policy.FastReact(0.0, specs, metrics, ClusterResources{32.0, 32.0}).has_value());
}

TEST(AiadTest, UpscaleBlockedAtCapacity) {
  AiadPolicy policy;
  const auto specs = MakeSpecs(1);
  std::vector<JobMetrics> metrics{MakeMetrics(40.0, 4, 2.0)};
  metrics[0].overloaded_for = 60.0;
  EXPECT_FALSE(policy.FastReact(0.0, specs, metrics, ClusterResources{4.0, 4.0}).has_value());
}

TEST(MarkTest, SizesFromMaxThroughput) {
  MarkPolicy policy;
  const auto specs = MakeSpecs(1);
  // ceil(20 req/s * 0.18 s / 0.8) = 5 replicas at the default 80% target.
  std::vector<JobMetrics> metrics{MakeMetrics(20.0, 1)};
  const auto action = policy.Decide(0.0, specs, metrics, ClusterResources{32.0, 32.0});
  EXPECT_EQ(action.replicas[0], 5u);
}

TEST(MarkTest, IndependentSizingCanStarveLaterJobs) {
  MarkPolicy policy;
  const auto specs = MakeSpecs(2);
  // Job 0 wants ceil(130 * 0.18 / 0.8) = 30 of 32 replicas; job 1 wants the
  // same but only 2 remain.
  std::vector<JobMetrics> metrics{MakeMetrics(130.0, 1), MakeMetrics(130.0, 1)};
  const auto action = policy.Decide(0.0, specs, metrics, ClusterResources{32.0, 32.0});
  EXPECT_EQ(action.replicas[0], 30u);
  EXPECT_LE(action.replicas[1], 2u);
}

TEST(BinnedEstimatorTest, ObserveAndEstimate) {
  BinnedLatencyEstimator estimator(10.0, 10);
  estimator.Observe(2.5, 0.3);
  estimator.Observe(2.6, 0.5);
  EXPECT_NEAR(estimator.Estimate(2.5), 0.4, 1e-9);
  EXPECT_EQ(estimator.populated_bins(), 1u);
}

TEST(BinnedEstimatorTest, UnseenLoadIsOptimistic) {
  BinnedLatencyEstimator estimator(10.0, 10);
  estimator.Observe(1.0, 0.2);
  // Never observed 8.0 load-per-replica: falls back to the nearest populated
  // bin below -> looks as cheap as 1.0 did.
  EXPECT_NEAR(estimator.Estimate(8.0), 0.2, 1e-9);
  // Nothing below 0.5 observed either -> free.
  BinnedLatencyEstimator empty(10.0, 10);
  EXPECT_DOUBLE_EQ(empty.Estimate(5.0), 0.0);
}

TEST(BinnedEstimatorTest, InfiniteLatencyRecordedAsExpensive) {
  BinnedLatencyEstimator estimator(10.0, 10);
  estimator.Observe(5.0, std::numeric_limits<double>::infinity());
  EXPECT_GT(estimator.Estimate(5.0), 10.0);
  EXPECT_TRUE(std::isfinite(estimator.Estimate(5.0)));
}

TEST(CilantroTest, RespectsCapacity) {
  CilantroPolicy policy;
  const auto specs = MakeSpecs(4);
  std::vector<JobMetrics> metrics(4, MakeMetrics(20.0, 2, 1.5));
  const auto action = policy.Decide(0.0, specs, metrics, ClusterResources{12.0, 12.0});
  uint32_t total = 0;
  for (const uint32_t r : action.replicas) {
    EXPECT_GE(r, 1u);
    total += r;
  }
  EXPECT_LE(total, 12u);
}

TEST(CilantroTest, LearnsToFavourExpensiveJobs) {
  CilantroPolicy policy;
  const auto specs = MakeSpecs(2);
  // Feed several decision rounds: job 0 repeatedly shows terrible latency at
  // high per-replica load, job 1 is always fine.
  ScalingAction action;
  for (int round = 0; round < 8; ++round) {
    std::vector<JobMetrics> metrics{MakeMetrics(30.0, round == 0 ? 2 : action.replicas[0], 5.0),
                                    MakeMetrics(2.0, round == 0 ? 2 : action.replicas[1], 0.05)};
    action = policy.Decide(60.0 * round, specs, metrics, ClusterResources{16.0, 16.0});
  }
  EXPECT_GT(action.replicas[0], action.replicas[1]);
}

}  // namespace
}  // namespace faro
