// The metrics registry's contracts: per-thread sharding merges losslessly
// (merged totals equal a single-threaded reference on identical input),
// histogram quantiles track exact sorted nearest-rank percentiles within the
// documented bucket resolution, and the expositions are well-formed.

#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace faro {
namespace {

// Exact nearest-rank percentile over a sorted copy: sample number
// max(1, ceil(q * n)), the definition Histogram::Quantile approximates.
double ExactQuantile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  const size_t rank = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(q * static_cast<double>(n))));
  return samples[std::min(rank, n) - 1];
}

TEST(CounterTest, AddAndValue) {
  Counter counter("test_counter_basic", "help");
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, MergesShardsAcrossThreads) {
  Counter counter("test_counter_threads", "help");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      // Hoisted cell: the hot-path idiom the queueing cache uses.
      Counter::Cell& cell = counter.LocalCell();
      for (uint64_t i = 0; i < kPerThread; ++i) {
        cell.Add(1);
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge("test_gauge", "help");
  gauge.Set(3.5);
  EXPECT_EQ(gauge.Value(), 3.5);
  gauge.Set(-1.0);
  EXPECT_EQ(gauge.Value(), -1.0);
}

TEST(HistogramTest, BucketBoundsContainTheirValues) {
  // Every probed value must land in a bucket whose [lower, upper) range
  // contains it, across the full covered range plus both overflow directions.
  std::vector<double> probes = {1e-12, 1e-9,  1e-6, 0.001, 0.01,  0.1, 0.5,
                                1.0,   1.375, 2.0,  100.0, 1e6,  1e9, 1e12};
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    probes.push_back(std::ldexp(0.5 + rng.Uniform(), static_cast<int>(60 * rng.Uniform()) - 30));
  }
  for (const double v : probes) {
    const size_t index = Histogram::BucketIndex(v);
    ASSERT_LT(index, Histogram::kBucketCount) << v;
    if (index > 0) {
      EXPECT_GE(v, Histogram::BucketLowerBound(index)) << v;
    }
    EXPECT_LT(v, Histogram::BucketUpperBound(index)) << v;
  }
  // Non-positive and NaN samples all land in the underflow bucket instead of
  // corrupting a real one.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0u);
}

TEST(HistogramTest, QuantilesTrackExactSortedPercentiles) {
  Histogram hist("test_hist_quantiles", "help");
  // Log-normal-ish latencies spanning several octaves, the shape the
  // simulator records.
  Rng rng(42);
  std::vector<double> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.Uniform();
    const double v = rng.Uniform();
    samples.push_back(0.05 * std::exp(1.2 * (u + v - 1.0)) + 0.002 * i / 20000.0);
  }
  for (const double s : samples) {
    hist.Record(s);
  }
  EXPECT_EQ(hist.Count(), samples.size());
  for (const double q : {0.5, 0.99, 0.999}) {
    const double exact = ExactQuantile(samples, q);
    const double estimate = hist.Quantile(q);
    // The estimate interpolates the nearest-rank sample's position within its
    // bucket (assuming in-bucket uniformity), so on a smooth distribution it
    // tracks the exact sorted percentile well inside the 12.5% bucket width --
    // a 3x tighter bound than the old bucket-midpoint rule could meet.
    EXPECT_NEAR(estimate, exact, 0.02 * exact) << "q=" << q;
  }
}

TEST(HistogramTest, MergedShardsMatchSingleShardReference) {
  Histogram sharded("test_hist_sharded", "help");
  Histogram reference("test_hist_reference", "help");
  constexpr int kThreads = 8;
  // Identical multiset of samples: the reference records everything on this
  // thread; the sharded histogram splits the same samples across 8 threads.
  std::vector<std::vector<double>> per_thread(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(100 + static_cast<uint64_t>(t));
    for (int i = 0; i < 5000; ++i) {
      per_thread[t].push_back(0.01 + rng.Uniform());
    }
  }
  for (const auto& chunk : per_thread) {
    for (const double s : chunk) {
      reference.Record(s);
    }
  }
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sharded, &per_thread, t] {
      for (const double s : per_thread[t]) {
        sharded.Record(s);
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(sharded.Count(), reference.Count());
  EXPECT_EQ(sharded.MergedBuckets(), reference.MergedBuckets());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(sharded.Quantile(q), reference.Quantile(q)) << "q=" << q;
  }
  // Sums differ only by floating-point addition order across shards.
  EXPECT_NEAR(sharded.Sum(), reference.Sum(), 1e-9 * std::abs(reference.Sum()));
}

TEST(RegistryTest, GetReturnsSameInstrumentForSameName) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("reg_counter", "first help wins");
  Counter& b = registry.GetCounter("reg_counter", "ignored");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.help(), "first help wins");
  Histogram& h1 = registry.GetHistogram("reg_hist");
  Histogram& h2 = registry.GetHistogram("reg_hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(RegistryTest, PrometheusTextIsWellFormed) {
  MetricsRegistry registry;
  registry.GetCounter("zz_requests_total", "requests").Add(7);
  registry.GetGauge("aa_temperature", "degrees").Set(21.5);
  Histogram& hist = registry.GetHistogram("mm_latency_seconds", "latency");
  hist.Record(0.1);
  hist.Record(2.0);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE zz_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("zz_requests_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aa_temperature gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mm_latency_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("mm_latency_seconds_count 2"), std::string::npos);
  // Exactly one +Inf bucket line per histogram, and it carries the full count.
  const std::string inf_line = "mm_latency_seconds_bucket{le=\"+Inf\"} 2";
  const size_t first = text.find(inf_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("le=\"+Inf\"", first + inf_line.size()), std::string::npos);
  // Deterministic order: counters, then gauges, then histograms, name-sorted
  // within each type.
  EXPECT_LT(text.find("zz_requests_total"), text.find("aa_temperature"));
  EXPECT_LT(text.find("aa_temperature"), text.find("mm_latency_seconds"));
}

TEST(RegistryTest, JsonLinesParse) {
  MetricsRegistry registry;
  registry.GetCounter("json_counter\"evil\\name").Add(3);
  registry.GetHistogram("json_hist", "h").Record(0.25);
  const std::string lines = registry.JsonLines();
  // Registration sanitizes hostile names, so the JSON sink only ever sees
  // charset-clean families — the quote and backslash become underscores.
  EXPECT_NE(lines.find("\"json_counter_evil_name\""), std::string::npos);
  EXPECT_EQ(lines.find("json_counter\\\"evil\\\\name"), std::string::npos);
  EXPECT_NE(lines.find("\"json_hist\""), std::string::npos);
  EXPECT_NE(lines.find("\"p99\""), std::string::npos);
  // Every line is brace-balanced (cheap well-formedness check without a
  // JSON parser; CI validates real output with python3 -m json.tool).
  size_t start = 0;
  while (start < lines.size()) {
    size_t end = lines.find('\n', start);
    if (end == std::string::npos) {
      end = lines.size();
    }
    const std::string line = lines.substr(start, end - start);
    if (!line.empty()) {
      EXPECT_EQ(line.front(), '{') << line;
      EXPECT_EQ(line.back(), '}') << line;
    }
    start = end + 1;
  }
}

// --- Prometheus exposition-format conformance ------------------------------
//
// A line-by-line validator for the text exposition format (the subset the
// registry emits): every line must be a # HELP / # TYPE comment or a sample
// `name[{labels}] value`, names must match the spec charsets, HELP text and
// label values must carry no raw control bytes, and every sample's family
// must have announced its TYPE earlier -- exactly once. promtool in CI checks
// the real scrape; this keeps the guarantee in the unit suite.

bool ConformantMetricName(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) {
      return false;
    }
  }
  return true;
}

bool ConformantLabelName(const std::string& name) {
  return ConformantMetricName(name) && name.find(':') == std::string::npos;
}

// Family a sample name belongs to: histograms suffix _bucket/_sum/_count.
std::string SampleFamily(const std::string& name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s(suffix);
    if (name.size() > s.size() && name.compare(name.size() - s.size(), s.size(), s) == 0) {
      return name.substr(0, name.size() - s.size());
    }
  }
  return name;
}

void ValidatePrometheusExposition(const std::string& text) {
  std::map<std::string, std::string> type_of;  // family -> counter|gauge|histogram
  std::map<std::string, int> type_lines;       // family -> # TYPE occurrences
  size_t samples = 0;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "unterminated final line";
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    for (char c : line) {
      ASSERT_TRUE(static_cast<unsigned char>(c) >= 0x20)
          << "raw control byte in: " << line;
    }
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      const bool is_type = line.rfind("# TYPE ", 0) == 0;
      const size_t name_end = line.find(' ', 7);
      ASSERT_NE(name_end, std::string::npos) << line;
      const std::string family = line.substr(7, name_end - 7);
      EXPECT_TRUE(ConformantMetricName(family)) << line;
      if (is_type) {
        const std::string type = line.substr(name_end + 1);
        EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram") << line;
        type_of[family] = type;
        ++type_lines[family];
      }
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment form: " << line;
    ++samples;
    // Sample: name, optional {labels}, one space, value.
    size_t pos = line.find_first_of("{ ");
    ASSERT_NE(pos, std::string::npos) << line;
    const std::string name = line.substr(0, pos);
    EXPECT_TRUE(ConformantMetricName(name)) << line;
    if (line[pos] == '{') {
      // Walk label pairs: label="value" with only \\ \" \n escapes inside.
      ++pos;
      while (line[pos] != '}') {
        const size_t eq = line.find('=', pos);
        ASSERT_NE(eq, std::string::npos) << line;
        EXPECT_TRUE(ConformantLabelName(line.substr(pos, eq - pos))) << line;
        ASSERT_EQ(line[eq + 1], '"') << line;
        pos = eq + 2;
        while (line[pos] != '"') {
          if (line[pos] == '\\') {
            const char esc = line[pos + 1];
            ASSERT_TRUE(esc == '\\' || esc == '"' || esc == 'n') << line;
            ++pos;
          }
          ++pos;
          ASSERT_LT(pos, line.size()) << "unterminated label value: " << line;
        }
        ++pos;
        if (line[pos] == ',') {
          ++pos;
        }
      }
      ++pos;
    }
    ASSERT_EQ(line[pos], ' ') << line;
    const std::string value = line.substr(pos + 1);
    char* parse_end = nullptr;
    std::strtod(value.c_str(), &parse_end);
    EXPECT_TRUE(parse_end != nullptr && *parse_end == '\0' &&
                parse_end != value.c_str())
        << "unparseable sample value: " << line;
    // TYPE must precede the family's first sample.
    const std::string family = SampleFamily(name);
    EXPECT_TRUE(type_of.count(family) == 1 || type_of.count(name) == 1)
        << "sample before its # TYPE: " << line;
  }
  EXPECT_GT(samples, 0u);
  for (const auto& [family, occurrences] : type_lines) {
    EXPECT_EQ(occurrences, 1) << "# TYPE repeated for " << family;
  }
}

TEST(PrometheusConformanceTest, HostileNamesLabelsAndHelpAreSanitized) {
  MetricsRegistry registry;
  // Hostile on every axis: bad name charset, leading digit, newline and
  // backslash in help, quotes/newlines/backslashes in label values, bad
  // label-name charset.
  registry.GetCounter("9starts.with-digit total", "line one\nline two \\ slash").Add(3);
  registry.GetGauge("temp-c!", "degrees\n").Set(-7.25);
  registry
      .GetGauge("faro_per_job", {{"job name", "a\"b\\c\nd"}, {"tier", "gold"}},
                "per-job gauge")
      .Set(0.5);
  registry.GetGauge("faro_per_job", {{"job name", "plain"}}, "per-job gauge").Set(1.5);
  Histogram& hist = registry.GetHistogram("lat_seconds", "latency");
  hist.Record(0.01);
  hist.Record(4.0);
  ValidatePrometheusExposition(registry.PrometheusText());
}

TEST(PrometheusConformanceTest, LabeledFamilyEmitsHeaderOnceAndStaysContiguous) {
  MetricsRegistry registry;
  // A family name sorting *between* "fam" and "fam{...}" byte-wise ("fam_x" >
  // "fam{" is false: '{' = 0x7b > '_' = 0x5f, so "fam_x" sorts between "fam"
  // and "fam{a=...}" under plain string order). The (family, labels) map key
  // must keep fam's samples contiguous anyway.
  registry.GetGauge("fam", {{"a", "1"}}, "labeled family").Set(1.0);
  registry.GetGauge("fam", {{"a", "2"}}, "labeled family").Set(2.0);
  registry.GetGauge("fam_x", "interloper").Set(9.0);
  const std::string text = registry.PrometheusText();
  ValidatePrometheusExposition(text);
  const size_t first = text.find("fam{a=\"1\"} 1");
  const size_t second = text.find("fam{a=\"2\"} 2");
  const size_t other = text.find("fam_x 9");
  ASSERT_NE(first, std::string::npos) << text;
  ASSERT_NE(second, std::string::npos) << text;
  ASSERT_NE(other, std::string::npos) << text;
  // Both labeled samples sit between fam's single header and fam_x's.
  const size_t fam_type = text.find("# TYPE fam gauge");
  const size_t fam_x_type = text.find("# TYPE fam_x gauge");
  ASSERT_NE(fam_type, std::string::npos);
  ASSERT_NE(fam_x_type, std::string::npos);
  EXPECT_LT(fam_type, first);
  EXPECT_LT(first, second);
  EXPECT_LT(second, fam_x_type);
  EXPECT_LT(fam_x_type, other);
  // One HELP per family, not one per label set.
  EXPECT_EQ(text.find("# HELP fam labeled family"),
            text.rfind("# HELP fam labeled family"));
}

TEST(RegistryTest, ResetForTestZeroesValuesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("reset_counter");
  Histogram& hist = registry.GetHistogram("reset_hist");
  counter.Add(5);
  hist.Record(1.0);
  registry.ResetForTest();
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(&registry.GetCounter("reset_counter"), &counter);
}

}  // namespace
}  // namespace faro
