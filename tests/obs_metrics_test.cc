// The metrics registry's contracts: per-thread sharding merges losslessly
// (merged totals equal a single-threaded reference on identical input),
// histogram quantiles track exact sorted nearest-rank percentiles within the
// documented bucket resolution, and the expositions are well-formed.

#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace faro {
namespace {

// Exact nearest-rank percentile over a sorted copy: sample number
// max(1, ceil(q * n)), the definition Histogram::Quantile approximates.
double ExactQuantile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  const size_t rank = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(q * static_cast<double>(n))));
  return samples[std::min(rank, n) - 1];
}

TEST(CounterTest, AddAndValue) {
  Counter counter("test_counter_basic", "help");
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, MergesShardsAcrossThreads) {
  Counter counter("test_counter_threads", "help");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      // Hoisted cell: the hot-path idiom the queueing cache uses.
      Counter::Cell& cell = counter.LocalCell();
      for (uint64_t i = 0; i < kPerThread; ++i) {
        cell.Add(1);
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge("test_gauge", "help");
  gauge.Set(3.5);
  EXPECT_EQ(gauge.Value(), 3.5);
  gauge.Set(-1.0);
  EXPECT_EQ(gauge.Value(), -1.0);
}

TEST(HistogramTest, BucketBoundsContainTheirValues) {
  // Every probed value must land in a bucket whose [lower, upper) range
  // contains it, across the full covered range plus both overflow directions.
  std::vector<double> probes = {1e-12, 1e-9,  1e-6, 0.001, 0.01,  0.1, 0.5,
                                1.0,   1.375, 2.0,  100.0, 1e6,  1e9, 1e12};
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    probes.push_back(std::ldexp(0.5 + rng.Uniform(), static_cast<int>(60 * rng.Uniform()) - 30));
  }
  for (const double v : probes) {
    const size_t index = Histogram::BucketIndex(v);
    ASSERT_LT(index, Histogram::kBucketCount) << v;
    if (index > 0) {
      EXPECT_GE(v, Histogram::BucketLowerBound(index)) << v;
    }
    EXPECT_LT(v, Histogram::BucketUpperBound(index)) << v;
  }
  // Non-positive and NaN samples all land in the underflow bucket instead of
  // corrupting a real one.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0u);
}

TEST(HistogramTest, QuantilesTrackExactSortedPercentiles) {
  Histogram hist("test_hist_quantiles", "help");
  // Log-normal-ish latencies spanning several octaves, the shape the
  // simulator records.
  Rng rng(42);
  std::vector<double> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.Uniform();
    const double v = rng.Uniform();
    samples.push_back(0.05 * std::exp(1.2 * (u + v - 1.0)) + 0.002 * i / 20000.0);
  }
  for (const double s : samples) {
    hist.Record(s);
  }
  EXPECT_EQ(hist.Count(), samples.size());
  for (const double q : {0.5, 0.99, 0.999}) {
    const double exact = ExactQuantile(samples, q);
    const double estimate = hist.Quantile(q);
    // The estimate interpolates the nearest-rank sample's position within its
    // bucket (assuming in-bucket uniformity), so on a smooth distribution it
    // tracks the exact sorted percentile well inside the 12.5% bucket width --
    // a 3x tighter bound than the old bucket-midpoint rule could meet.
    EXPECT_NEAR(estimate, exact, 0.02 * exact) << "q=" << q;
  }
}

TEST(HistogramTest, MergedShardsMatchSingleShardReference) {
  Histogram sharded("test_hist_sharded", "help");
  Histogram reference("test_hist_reference", "help");
  constexpr int kThreads = 8;
  // Identical multiset of samples: the reference records everything on this
  // thread; the sharded histogram splits the same samples across 8 threads.
  std::vector<std::vector<double>> per_thread(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(100 + static_cast<uint64_t>(t));
    for (int i = 0; i < 5000; ++i) {
      per_thread[t].push_back(0.01 + rng.Uniform());
    }
  }
  for (const auto& chunk : per_thread) {
    for (const double s : chunk) {
      reference.Record(s);
    }
  }
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sharded, &per_thread, t] {
      for (const double s : per_thread[t]) {
        sharded.Record(s);
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(sharded.Count(), reference.Count());
  EXPECT_EQ(sharded.MergedBuckets(), reference.MergedBuckets());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(sharded.Quantile(q), reference.Quantile(q)) << "q=" << q;
  }
  // Sums differ only by floating-point addition order across shards.
  EXPECT_NEAR(sharded.Sum(), reference.Sum(), 1e-9 * std::abs(reference.Sum()));
}

TEST(RegistryTest, GetReturnsSameInstrumentForSameName) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("reg_counter", "first help wins");
  Counter& b = registry.GetCounter("reg_counter", "ignored");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.help(), "first help wins");
  Histogram& h1 = registry.GetHistogram("reg_hist");
  Histogram& h2 = registry.GetHistogram("reg_hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(RegistryTest, PrometheusTextIsWellFormed) {
  MetricsRegistry registry;
  registry.GetCounter("zz_requests_total", "requests").Add(7);
  registry.GetGauge("aa_temperature", "degrees").Set(21.5);
  Histogram& hist = registry.GetHistogram("mm_latency_seconds", "latency");
  hist.Record(0.1);
  hist.Record(2.0);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE zz_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("zz_requests_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aa_temperature gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mm_latency_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("mm_latency_seconds_count 2"), std::string::npos);
  // Exactly one +Inf bucket line per histogram, and it carries the full count.
  const std::string inf_line = "mm_latency_seconds_bucket{le=\"+Inf\"} 2";
  const size_t first = text.find(inf_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("le=\"+Inf\"", first + inf_line.size()), std::string::npos);
  // Deterministic order: counters, then gauges, then histograms, name-sorted
  // within each type.
  EXPECT_LT(text.find("zz_requests_total"), text.find("aa_temperature"));
  EXPECT_LT(text.find("aa_temperature"), text.find("mm_latency_seconds"));
}

TEST(RegistryTest, JsonLinesParse) {
  MetricsRegistry registry;
  registry.GetCounter("json_counter\"evil\\name").Add(3);
  registry.GetHistogram("json_hist", "h").Record(0.25);
  const std::string lines = registry.JsonLines();
  // Metric names are escaped into the JSON string.
  EXPECT_NE(lines.find("json_counter\\\"evil\\\\name"), std::string::npos);
  EXPECT_NE(lines.find("\"json_hist\""), std::string::npos);
  EXPECT_NE(lines.find("\"p99\""), std::string::npos);
  // Every line is brace-balanced (cheap well-formedness check without a
  // JSON parser; CI validates real output with python3 -m json.tool).
  size_t start = 0;
  while (start < lines.size()) {
    size_t end = lines.find('\n', start);
    if (end == std::string::npos) {
      end = lines.size();
    }
    const std::string line = lines.substr(start, end - start);
    if (!line.empty()) {
      EXPECT_EQ(line.front(), '{') << line;
      EXPECT_EQ(line.back(), '}') << line;
    }
    start = end + 1;
  }
}

TEST(RegistryTest, ResetForTestZeroesValuesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("reset_counter");
  Histogram& hist = registry.GetHistogram("reset_hist");
  counter.Add(5);
  hist.Record(1.0);
  registry.ResetForTest();
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(&registry.GetCounter("reset_counter"), &counter);
}

}  // namespace
}  // namespace faro
