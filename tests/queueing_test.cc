#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "src/queueing/mdc.h"
#include "src/queueing/mmc.h"

namespace faro {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ErlangBTest, KnownValues) {
  // B(1, 1) = 1/2, B(2, 1) = 1/5 (classic textbook values).
  EXPECT_NEAR(ErlangB(1, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(ErlangB(2, 1.0), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(ErlangB(5, 0.0), 0.0);
}

TEST(ErlangCTest, SingleServerEqualsUtilisation) {
  // In M/M/1, P(wait) = rho.
  for (const double rho : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(ErlangC(1, rho), rho, 1e-12);
  }
}

TEST(ErlangCTest, UnstableIsOne) {
  EXPECT_DOUBLE_EQ(ErlangC(2, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(ErlangC(2, 3.5), 1.0);
}

TEST(ErlangCTest, DecreasesWithServers) {
  double previous = 1.0;
  for (uint32_t c = 5; c <= 20; ++c) {
    const double value = ErlangC(c, 4.0);
    EXPECT_LT(value, previous);
    previous = value;
  }
}

TEST(MmcMeanWaitTest, MatchesMm1ClosedForm) {
  // M/M/1: Wq = rho / (mu - lambda).
  const double lambda = 8.0;
  const double p = 0.1;  // mu = 10
  const double rho = lambda * p;
  EXPECT_NEAR(MmcMeanWait(1, lambda, p), rho / (10.0 - lambda), 1e-12);
}

TEST(MmcMeanWaitTest, UnstableIsInfinite) {
  EXPECT_EQ(MmcMeanWait(2, 25.0, 0.1), kInf);
  EXPECT_EQ(MmcMeanWait(2, 20.0, 0.1), kInf);  // boundary rho == 1
}

TEST(MmcWaitPercentileTest, AtomAtZero) {
  // With rho = 0.5 in M/M/1, half the arrivals do not wait, so the median
  // waiting time is exactly zero.
  EXPECT_DOUBLE_EQ(MmcWaitPercentile(1, 5.0, 0.1, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(MmcWaitPercentile(1, 5.0, 0.1, 0.49), 0.0);
  EXPECT_GT(MmcWaitPercentile(1, 5.0, 0.1, 0.6), 0.0);
}

TEST(MmcWaitPercentileTest, MatchesClosedFormTail) {
  // P(W > t) = rho * exp(-(mu - lambda) t) in M/M/1. For q = 0.9, rho = 0.8:
  // t = ln(0.8 / 0.1) / (mu - lambda).
  const double lambda = 8.0;
  const double p = 0.1;
  const double expected = std::log(0.8 / 0.1) / (10.0 - 8.0);
  EXPECT_NEAR(MmcWaitPercentile(1, lambda, p, 0.9), expected, 1e-12);
}

TEST(MmcWaitPercentileTest, MonotoneInPercentile) {
  double previous = -1.0;
  for (double q = 0.5; q < 0.999; q += 0.05) {
    const double w = MmcWaitPercentile(4, 30.0, 0.1, q);
    EXPECT_GE(w, previous);
    previous = w;
  }
}

TEST(MmcLatencyPercentileTest, AddsServiceTime) {
  const double wait = MmcWaitPercentile(2, 15.0, 0.1, 0.95);
  EXPECT_NEAR(MmcLatencyPercentile(2, 15.0, 0.1, 0.95), wait + 0.1, 1e-12);
}

TEST(MdcLatencyTest, HalfOfMmcWait) {
  const double mmc_wait = MmcWaitPercentile(4, 30.0, 0.1, 0.99);
  EXPECT_NEAR(MdcLatencyPercentile(4, 30.0, 0.1, 0.99), 0.5 * mmc_wait + 0.1, 1e-12);
}

TEST(MdcLatencyTest, UnstableIsInfinite) {
  EXPECT_EQ(MdcLatencyPercentile(2, 25.0, 0.1, 0.99), kInf);
}

TEST(MdcLatencyTest, ZeroLoadIsServiceTime) {
  EXPECT_DOUBLE_EQ(MdcLatencyPercentile(3, 0.0, 0.18, 0.99), 0.18);
}

TEST(MdcLatencyTest, DecreasesWithServers) {
  double previous = kInf;
  for (uint32_t c = 5; c <= 15; ++c) {
    const double latency = MdcLatencyPercentile(c, 40.0, 0.1, 0.99);
    EXPECT_LE(latency, previous);
    previous = latency;
  }
}

// The paper's worked example (§3.3): p = 150 ms, lambda = 40 req/s,
// SLO = 600 ms. The upper-bound model estimates 10 replicas; the M/D/c model
// estimates 8 replicas at the 99.99th percentile.
TEST(PaperExampleTest, UpperBoundSizesTenReplicas) {
  EXPECT_EQ(RequiredReplicasUpperBound(40.0, 0.150, 0.600), 10u);
}

TEST(PaperExampleTest, MdcSizesEightReplicas) {
  EXPECT_EQ(RequiredReplicasMdc(40.0, 0.150, 0.600, 0.9999), 8u);
  // Verify 8 meets the SLO and 7 does not.
  EXPECT_LE(MdcLatencyPercentile(8, 40.0, 0.150, 0.9999), 0.600);
  EXPECT_GT(MdcLatencyPercentile(7, 40.0, 0.150, 0.9999), 0.600);
}

TEST(RequiredReplicasTest, MdcNeverExceedsUpperBoundInPaperRegime) {
  // §3.3 reports the empirical observation that the queueing-theoretic sizing
  // is less conservative than the pessimistic burst bound. That holds when
  // the SLO is well inside the one-second burst window the upper bound sizes
  // for (the paper's regime: p around 100-180 ms, SLO = 4p); with SLO close
  // to 1 s the burst bound stops even guaranteeing a stable queue, so the
  // comparison is restricted to the paper-like grid.
  for (double lambda = 5.0; lambda <= 200.0; lambda += 15.0) {
    for (const double p : {0.10, 0.15, 0.18}) {
      const double slo = 4.0 * p;
      const uint32_t mdc = RequiredReplicasMdc(lambda, p, slo, 0.99);
      const uint32_t ub = RequiredReplicasUpperBound(lambda, p, slo);
      EXPECT_LE(mdc, ub) << "lambda=" << lambda << " p=" << p;
    }
  }
}

TEST(UpperBoundLatencyTest, Formula) {
  EXPECT_NEAR(UpperBoundLatency(40.0, 0.15, 10.0), 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(UpperBoundLatency(0.0, 0.15, 4.0), 0.15);
  // Never below one service time.
  EXPECT_DOUBLE_EQ(UpperBoundLatency(1.0, 0.15, 10.0), 0.15);
}

TEST(RelaxedMdcTest, MatchesExactBelowCap) {
  // rho = 40 * 0.15 / 8 = 0.75 < 0.95: relaxation must not change anything.
  EXPECT_NEAR(RelaxedMdcLatency(8.0, 40.0, 0.15, 0.99),
              MdcLatencyPercentile(8, 40.0, 0.15, 0.99), 1e-12);
}

TEST(RelaxedMdcTest, FiniteAboveSaturation) {
  // rho = 2.0: exact model is infinite; relaxed must be finite and larger
  // than the latency at the cap.
  const double relaxed = RelaxedMdcLatency(4.0, 80.0, 0.1, 0.99);
  EXPECT_TRUE(std::isfinite(relaxed));
  EXPECT_GT(relaxed, MdcLatencyPercentile(4, 0.95 * 40.0, 0.1, 0.99));
}

TEST(RelaxedMdcTest, ContinuousAcrossTheCap) {
  // Latency just below and just above lambda_cap should be close.
  const double p = 0.1;
  const uint32_t c = 4;
  const double lambda_cap = 0.95 * c / p;  // 38
  const double below = RelaxedMdcLatency(c, lambda_cap - 1e-6, p, 0.99);
  const double above = RelaxedMdcLatency(c, lambda_cap + 1e-6, p, 0.99);
  EXPECT_NEAR(below, above, 1e-3);
}

TEST(RelaxedMdcTest, StrictlyIncreasingInLambdaWhenOverloaded) {
  double previous = 0.0;
  for (double lambda = 50.0; lambda <= 200.0; lambda += 10.0) {
    const double latency = RelaxedMdcLatency(4.0, lambda, 0.1, 0.99);
    EXPECT_GT(latency, previous);
    previous = latency;
  }
}

TEST(RelaxedMdcTest, DecreasingInContinuousServers) {
  double previous = kInf;
  for (double servers = 1.0; servers <= 12.0; servers += 0.25) {
    const double latency = RelaxedMdcLatency(servers, 60.0, 0.1, 0.99);
    EXPECT_LE(latency, previous + 1e-12) << "servers=" << servers;
    previous = latency;
  }
}

TEST(RelaxedMdcTest, BelowOneServerExtrapolates) {
  const double at_one = RelaxedMdcLatency(1.0, 30.0, 0.1, 0.99);
  const double at_half = RelaxedMdcLatency(0.5, 30.0, 0.1, 0.99);
  EXPECT_NEAR(at_half, at_one / 0.5, 1e-9);
}

class RequiredReplicasPercentileTest : public ::testing::TestWithParam<double> {};

TEST_P(RequiredReplicasPercentileTest, HigherPercentileNeedsAtLeastAsMany) {
  const double q = GetParam();
  const uint32_t base = RequiredReplicasMdc(60.0, 0.12, 0.5, q);
  const uint32_t stricter = RequiredReplicasMdc(60.0, 0.12, 0.5, std::min(0.99999, q + 0.009));
  EXPECT_GE(stricter, base);
}

INSTANTIATE_TEST_SUITE_P(Percentiles, RequiredReplicasPercentileTest,
                         ::testing::Values(0.5, 0.9, 0.95, 0.99));

}  // namespace
}  // namespace faro
