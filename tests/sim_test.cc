#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/queueing/mdc.h"
#include "src/sim/simulator.h"

namespace faro {
namespace {

// Policy that pins every job at a fixed replica count (no autoscaling).
class FixedPolicy : public AutoscalingPolicy {
 public:
  explicit FixedPolicy(std::vector<uint32_t> replicas, std::vector<double> drops = {})
      : replicas_(std::move(replicas)), drops_(std::move(drops)) {}
  std::string name() const override { return "Fixed"; }
  ScalingAction Decide(double now_s, const std::vector<JobSpec>& job_specs,
                       const std::vector<JobMetrics>& metrics,
                       const ClusterResources& resources) override {
    ScalingAction action;
    action.replicas = replicas_;
    action.drop_rates = drops_;
    return action;
  }

 private:
  std::vector<uint32_t> replicas_;
  std::vector<double> drops_;
};

SimJobConfig MakeJob(double rate_per_min, size_t minutes, uint32_t initial = 1,
                     double p = 0.180, double slo = 0.720) {
  SimJobConfig job;
  job.spec.name = "job";
  job.spec.processing_time = p;
  job.spec.slo = slo;
  job.arrival_rate_per_min = Series(std::vector<double>(minutes, rate_per_min));
  job.initial_replicas = initial;
  return job;
}

SimConfig MakeConfig(double capacity, uint64_t seed = 1) {
  SimConfig config;
  config.resources = ClusterResources{capacity, capacity};
  config.seed = seed;
  return config;
}

TEST(SimulatorTest, ConservationAndShapes) {
  const size_t minutes = 30;
  FixedPolicy policy({4});
  const auto result = RunSimulation(MakeConfig(32.0), {MakeJob(600.0, minutes, 4)}, policy);
  ASSERT_EQ(result.jobs.size(), 1u);
  const JobRunStats& job = result.jobs[0];
  EXPECT_GT(job.arrivals, 0u);
  EXPECT_LE(job.drops, job.arrivals);
  EXPECT_LE(job.violations, job.arrivals);
  EXPECT_EQ(job.minute_utility.size(), minutes);
  EXPECT_EQ(result.cluster_utility_timeline.size(), minutes);
  for (const double u : job.minute_utility) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(SimulatorTest, PoissonArrivalsMatchTraceRate) {
  const size_t minutes = 60;
  const double rate = 300.0;
  FixedPolicy policy({8});
  const auto result = RunSimulation(MakeConfig(32.0), {MakeJob(rate, minutes, 8)}, policy);
  const double observed =
      static_cast<double>(result.jobs[0].arrivals) / static_cast<double>(minutes);
  EXPECT_NEAR(observed, rate, 0.05 * rate);
}

TEST(SimulatorTest, MeasuredTailMatchesMdcModel) {
  // Steady Poisson load on a fixed pool: the measured p99 sojourn time should
  // sit near the M/D/c analytic estimate (the whole premise of §3.3).
  const double rate_per_min = 1200.0;  // 20 req/s
  const double p = 0.150;
  const uint32_t replicas = 5;         // rho = 0.6
  FixedPolicy policy({replicas});
  SimJobConfig job = MakeJob(rate_per_min, 60, replicas, p, 10.0);
  const auto result = RunSimulation(MakeConfig(32.0), {job}, policy);
  const double analytic = MdcLatencyPercentile(replicas, rate_per_min / 60.0, p, 0.99);
  // Average the per-minute p99s over the steady run.
  double measured = 0.0;
  for (const double v : result.jobs[0].minute_p99) {
    measured += v;
  }
  measured /= static_cast<double>(result.jobs[0].minute_p99.size());
  // The half-M/M/c approximation is coarse; agreement within 35% validates
  // both the simulator and the estimator.
  EXPECT_NEAR(measured, analytic, 0.35 * analytic);
}

TEST(SimulatorTest, OverloadCausesTailDropsAndViolations) {
  // 1 replica, 0.18 s service => capacity ~5.5 req/s; offer 20 req/s.
  FixedPolicy policy({1});
  const auto result = RunSimulation(MakeConfig(32.0), {MakeJob(1200.0, 20, 1)}, policy);
  const JobRunStats& job = result.jobs[0];
  EXPECT_GT(job.drops, 0u);
  EXPECT_GT(job.slo_violation_rate, 0.5);
  EXPECT_LT(job.avg_utility, 0.5);
}

TEST(SimulatorTest, AdequateCapacityMeetsSlo) {
  // 10 req/s on 4 replicas (rho = 0.45): negligible violations.
  FixedPolicy policy({4});
  const auto result = RunSimulation(MakeConfig(32.0), {MakeJob(600.0, 30, 4)}, policy);
  EXPECT_LT(result.jobs[0].slo_violation_rate, 0.01);
  EXPECT_GT(result.jobs[0].avg_utility, 0.99);
}

TEST(SimulatorTest, ExplicitDropRateHonoured) {
  FixedPolicy policy({8}, {0.3});
  const auto result = RunSimulation(MakeConfig(32.0), {MakeJob(600.0, 40, 8)}, policy);
  const JobRunStats& job = result.jobs[0];
  const double drop_rate =
      static_cast<double>(job.drops) / static_cast<double>(job.arrivals);
  EXPECT_NEAR(drop_rate, 0.3, 0.03);
}

TEST(SimulatorTest, DroppedRequestsCountAsViolations) {
  FixedPolicy policy({8}, {0.5});
  const auto result = RunSimulation(MakeConfig(32.0), {MakeJob(600.0, 20, 8)}, policy);
  // Drops get infinite latency: violations at least the drop count.
  EXPECT_GE(result.jobs[0].violations, result.jobs[0].drops);
}

TEST(SimulatorTest, ColdStartDelaysScaleUp) {
  // Jump from 1 to 10 replicas at t=0; with a 60 s cold start the first
  // minute must still be overloaded, later minutes fine.
  FixedPolicy policy({10});
  SimConfig config = MakeConfig(32.0);
  config.cold_start_s = 60.0;
  const auto result = RunSimulation(config, {MakeJob(1800.0, 15, 1)}, policy);
  const auto& p99 = result.jobs[0].minute_p99;
  ASSERT_GE(p99.size(), 10u);
  EXPECT_GT(p99[0], 0.720);             // pre-cold-start minute suffers
  EXPECT_LT(p99[p99.size() - 1], 0.720);  // steady state healthy
}

TEST(SimulatorTest, DeterministicForSameSeed) {
  FixedPolicy policy_a({3});
  FixedPolicy policy_b({3});
  const auto a = RunSimulation(MakeConfig(32.0, 77), {MakeJob(400.0, 20, 3)}, policy_a);
  const auto b = RunSimulation(MakeConfig(32.0, 77), {MakeJob(400.0, 20, 3)}, policy_b);
  EXPECT_EQ(a.jobs[0].arrivals, b.jobs[0].arrivals);
  EXPECT_EQ(a.jobs[0].violations, b.jobs[0].violations);
  EXPECT_DOUBLE_EQ(a.cluster_avg_utility, b.cluster_avg_utility);
}

TEST(SimulatorTest, SeedChangesRealisation) {
  FixedPolicy policy_a({3});
  FixedPolicy policy_b({3});
  const auto a = RunSimulation(MakeConfig(32.0, 1), {MakeJob(400.0, 20, 3)}, policy_a);
  const auto b = RunSimulation(MakeConfig(32.0, 2), {MakeJob(400.0, 20, 3)}, policy_b);
  EXPECT_NE(a.jobs[0].arrivals, b.jobs[0].arrivals);
}

TEST(SimulatorTest, MultiJobClusterAggregates) {
  FixedPolicy policy({4, 4});
  std::vector<SimJobConfig> jobs{MakeJob(600.0, 20, 4), MakeJob(600.0, 20, 4)};
  jobs[1].spec.name = "job2";
  const auto result = RunSimulation(MakeConfig(32.0), jobs, policy);
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_NEAR(result.cluster_avg_utility,
              result.jobs[0].avg_utility + result.jobs[1].avg_utility, 1e-9);
  EXPECT_NEAR(result.cluster_lost_utility, 2.0 - result.cluster_avg_utility, 1e-9);
}

TEST(SimulatorTest, ProcessingJitterChangesLatencyNoise) {
  SimConfig noisy = MakeConfig(32.0);
  noisy.processing_jitter = 0.2;
  FixedPolicy policy_a({4});
  FixedPolicy policy_b({4});
  const auto clean = RunSimulation(MakeConfig(32.0), {MakeJob(800.0, 20, 4)}, policy_a);
  const auto jittered = RunSimulation(noisy, {MakeJob(800.0, 20, 4)}, policy_b);
  // Both runs complete and produce sane metrics; jitter raises the tail.
  EXPECT_GE(jittered.jobs[0].minute_p99[10], clean.jobs[0].minute_p99[10] * 0.8);
}

TEST(SimulatorTest, ReactivePolicyIsInvoked) {
  // A policy that upscales via FastReact only: violations early, healthy by
  // the end of the run.
  class ReactiveOnly : public AutoscalingPolicy {
   public:
    std::string name() const override { return "ReactiveOnly"; }
    ScalingAction Decide(double, const std::vector<JobSpec>&,
                         const std::vector<JobMetrics>& metrics,
                         const ClusterResources&) override {
      ScalingAction action;
      for (const auto& m : metrics) {
        action.replicas.push_back(m.ready_replicas + m.starting_replicas);
      }
      return action;
    }
    std::optional<ScalingAction> FastReact(double, const std::vector<JobSpec>&,
                                           const std::vector<JobMetrics>& metrics,
                                           const ClusterResources&) override {
      if (metrics[0].overloaded_for >= 30.0) {
        ScalingAction action;
        action.replicas = {metrics[0].ready_replicas + metrics[0].starting_replicas + 1};
        return action;
      }
      return std::nullopt;
    }
  };
  ReactiveOnly policy;
  const auto result = RunSimulation(MakeConfig(32.0), {MakeJob(1200.0, 30, 1)}, policy);
  const auto& replicas = result.jobs[0].minute_replicas;
  EXPECT_GT(replicas.back(), replicas.front());
  EXPECT_LT(result.jobs[0].minute_p99.back(), 0.720);
}

// Property sweep: across utilisations, the simulator's measured p99 stays
// within a constant factor of the analytic M/D/c estimate -- the matched-
// simulator premise, parameterised.
class DesVsMdcTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DesVsMdcTest, TailTracksAnalyticEstimate) {
  const uint32_t replicas = GetParam();
  const double p = 0.150;
  const double rate_per_min = 1500.0;  // 25 req/s; rho = 3.75 / replicas
  FixedPolicy policy({replicas});
  SimJobConfig job = MakeJob(rate_per_min, 45, replicas, p, 30.0);
  const auto result = RunSimulation(MakeConfig(64.0), {job}, policy);
  const double analytic = MdcLatencyPercentile(replicas, rate_per_min / 60.0, p, 0.99);
  double measured = 0.0;
  size_t counted = 0;
  // Skip the warm-up minutes.
  for (size_t t = 5; t < result.jobs[0].minute_p99.size(); ++t) {
    measured += result.jobs[0].minute_p99[t];
    ++counted;
  }
  measured /= static_cast<double>(counted);
  EXPECT_GT(measured, 0.5 * analytic) << "replicas=" << replicas;
  EXPECT_LT(measured, 1.6 * analytic) << "replicas=" << replicas;
}

// rho = 0.75, 0.625, 0.54, 0.47.
INSTANTIATE_TEST_SUITE_P(Utilisations, DesVsMdcTest, ::testing::Values(5u, 6u, 7u, 8u));

// The simulator is a valid M/M/c reference too when service is jittered
// heavily? No -- jitter is truncated-normal, not exponential. Instead check a
// structural property: doubling the replica count never increases the tail.
TEST(SimulatorPropertyTest, MoreReplicasNeverWorse) {
  double previous = 1e18;
  for (const uint32_t replicas : {2u, 4u, 8u}) {
    FixedPolicy policy({replicas});
    const auto result =
        RunSimulation(MakeConfig(32.0), {MakeJob(900.0, 30, replicas)}, policy);
    EXPECT_LE(result.jobs[0].slo_violation_rate, previous + 0.02);
    previous = result.jobs[0].slo_violation_rate;
  }
}

TEST(SimulatorPropertyTest, ViolationRateMonotoneInLoad) {
  double previous = -1.0;
  for (const double rate : {300.0, 900.0, 1500.0, 2100.0}) {
    FixedPolicy policy({4});
    const auto result = RunSimulation(MakeConfig(32.0), {MakeJob(rate, 25, 4)}, policy);
    EXPECT_GE(result.jobs[0].slo_violation_rate, previous - 0.02) << "rate=" << rate;
    previous = result.jobs[0].slo_violation_rate;
  }
}

}  // namespace
}  // namespace faro
