// Thread-pool unit tests. Pools are constructed with explicit sizes so the
// multi-threaded paths are exercised even on single-core CI machines.

#include "src/common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace faro {
namespace {

TEST(ParallelTest, MapReturnsResultsInIndexOrder) {
  ThreadPool pool(4);
  std::vector<int> results(1000);
  pool.ParallelFor(1000, [&](size_t i) { results[i] = static_cast<int>(i * i); });
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i * i));
  }
}

TEST(ParallelTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 5000;
  std::vector<std::atomic<int>> counts(kTasks);
  pool.ParallelFor(kTasks, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelTest, ZeroAndSingleTaskCounts) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const auto main_id = std::this_thread::get_id();
  std::vector<size_t> order;
  pool.ParallelFor(64, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), main_id);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 64u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(ParallelTest, MaxParallelismOneForcesInOrderExecution) {
  ThreadPool pool(4);
  std::vector<size_t> order;  // unsynchronised on purpose: must stay serial
  pool.ParallelFor(
      128, [&](size_t i) { order.push_back(i); }, /*max_parallelism=*/1);
  ASSERT_EQ(order.size(), 128u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(ParallelTest, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](size_t i) {
                         if (i == 37) {
                           throw std::runtime_error("boom");
                         }
                       }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<size_t> done{0};
  pool.ParallelFor(10, [&](size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 10u);
}

TEST(ParallelTest, NestedSubmissionsRunInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(16 * 8);
  pool.ParallelFor(16, [&](size_t outer) {
    // A worker (or the submitting thread) re-entering the same pool must not
    // wait on itself; nested calls run inline.
    pool.ParallelFor(8, [&](size_t inner) { counts[outer * 8 + inner].fetch_add(1); });
  });
  for (auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(ParallelTest, ParallelMapMatchesSerialComputation) {
  ThreadPool pool(3);
  const std::vector<double> parallel =
      ParallelMap(257, [](size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); });
  for (size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i], 1.0 / (1.0 + static_cast<double>(i)));
  }
}

TEST(ParallelTest, DefaultThreadCountHonoursEnvVar) {
  setenv("FARO_THREADS", "7", 1);
  EXPECT_EQ(DefaultThreadCount(), 7u);
  setenv("FARO_THREADS", "0", 1);  // invalid: must fall back
  EXPECT_EQ(DefaultThreadCount(), HardwareThreads());
  setenv("FARO_THREADS", "garbage", 1);
  EXPECT_EQ(DefaultThreadCount(), HardwareThreads());
  unsetenv("FARO_THREADS");
  EXPECT_EQ(DefaultThreadCount(), HardwareThreads());
  EXPECT_GE(HardwareThreads(), 1u);
}

TEST(ParallelTest, SharedPoolIsReusable) {
  std::atomic<size_t> sum{0};
  ParallelFor(100, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
  const std::vector<size_t> doubled = ParallelMap(10, [](size_t i) { return 2 * i; });
  EXPECT_EQ(doubled[9], 18u);
}

}  // namespace
}  // namespace faro
