#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "src/core/penalty.h"
#include "src/core/utility.h"

namespace faro {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(StepUtilityTest, StepAtTarget) {
  EXPECT_DOUBLE_EQ(StepUtility(0.5, 0.72), 1.0);
  EXPECT_DOUBLE_EQ(StepUtility(0.72, 0.72), 1.0);
  EXPECT_DOUBLE_EQ(StepUtility(0.7201, 0.72), 0.0);
  EXPECT_DOUBLE_EQ(StepUtility(kInf, 0.72), 0.0);
}

TEST(RelaxedUtilityTest, OneBelowTarget) {
  EXPECT_DOUBLE_EQ(RelaxedUtility(0.1, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(RelaxedUtility(0.5, 0.5), 1.0);
}

TEST(RelaxedUtilityTest, InverseDecayAboveTarget) {
  // (s/l)^alpha with alpha = 2: latency 1.0 vs target 0.5 -> 0.25.
  EXPECT_NEAR(RelaxedUtility(1.0, 0.5, 2.0), 0.25, 1e-12);
  EXPECT_NEAR(RelaxedUtility(2.0, 0.5, 1.0), 0.25, 1e-12);
}

TEST(RelaxedUtilityTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(RelaxedUtility(0.0, 0.5), 1.0);   // no traffic
  EXPECT_DOUBLE_EQ(RelaxedUtility(-1.0, 0.5), 1.0);  // defensive
  EXPECT_DOUBLE_EQ(RelaxedUtility(kInf, 0.5), 0.0);  // dropped / saturated
}

TEST(RelaxedUtilityTest, ApproachesStepAsAlphaGrows) {
  // Fig. 4a: increasing alpha pushes the relaxed curve toward the step.
  const double latency = 0.6;
  const double slo = 0.5;
  double previous = 1.0;
  for (const double alpha : {1.0, 2.0, 4.0, 8.0, 32.0, 128.0}) {
    const double u = RelaxedUtility(latency, slo, alpha);
    EXPECT_LT(u, previous);
    previous = u;
  }
  EXPECT_NEAR(RelaxedUtility(latency, slo, 1024.0), StepUtility(latency, slo), 1e-6);
}

TEST(RelaxedUtilityTest, LowerBoundsStepUtilityBelowTarget) {
  // Below the target both are 1; above, relaxed > step = 0 but bounded by 1.
  for (double l = 0.05; l < 2.0; l += 0.05) {
    const double relaxed = RelaxedUtility(l, 0.5);
    EXPECT_GE(relaxed, StepUtility(l, 0.5) - 1e-12);
    EXPECT_LE(relaxed, 1.0);
    EXPECT_GE(relaxed, 0.0);
  }
}

TEST(RelaxedUtilityTest, MonotoneNonIncreasingInLatency) {
  double previous = 1.1;
  for (double l = 0.01; l < 3.0; l += 0.01) {
    const double u = RelaxedUtility(l, 0.72);
    EXPECT_LE(u, previous + 1e-12);
    previous = u;
  }
}

// --- Penalty (Table 5) ------------------------------------------------------

TEST(StepPenaltyTest, MatchesAwsTable) {
  EXPECT_DOUBLE_EQ(StepPenalty(1.00), 0.0);
  EXPECT_DOUBLE_EQ(StepPenalty(0.99), 0.0);
  EXPECT_DOUBLE_EQ(StepPenalty(0.98), 0.25);
  EXPECT_DOUBLE_EQ(StepPenalty(0.95), 0.25);
  EXPECT_DOUBLE_EQ(StepPenalty(0.94), 0.50);
  EXPECT_DOUBLE_EQ(StepPenalty(0.90), 0.50);
  EXPECT_DOUBLE_EQ(StepPenalty(0.89), 1.0);
  EXPECT_DOUBLE_EQ(StepPenalty(0.0), 1.0);
}

TEST(RelaxedPenaltyTest, MatchesStepAtKnots) {
  EXPECT_DOUBLE_EQ(RelaxedPenalty(1.00), 0.0);
  EXPECT_DOUBLE_EQ(RelaxedPenalty(0.99), 0.0);
  EXPECT_DOUBLE_EQ(RelaxedPenalty(0.95), 0.25);
  EXPECT_DOUBLE_EQ(RelaxedPenalty(0.90), 0.50);
  EXPECT_DOUBLE_EQ(RelaxedPenalty(0.00), 1.00);
}

TEST(RelaxedPenaltyTest, PiecewiseLinearBetweenKnots) {
  EXPECT_NEAR(RelaxedPenalty(0.97), 0.125, 1e-12);
  EXPECT_NEAR(RelaxedPenalty(0.925), 0.375, 1e-12);
  EXPECT_NEAR(RelaxedPenalty(0.45), 0.75, 1e-12);
}

TEST(RelaxedPenaltyTest, MonotoneNonIncreasingInAvailability) {
  double previous = 1.1;
  for (double a = 0.0; a <= 1.0001; a += 0.001) {
    const double p = RelaxedPenalty(a);
    EXPECT_LE(p, previous + 1e-12);
    previous = p;
  }
}

TEST(PenaltyMultiplierTest, EffectiveUtilityMultipliers) {
  // phi(d) = 1 - penalty(1 - d) (Eq. 2).
  EXPECT_DOUBLE_EQ(StepPenaltyMultiplier(0.0), 1.0);
  EXPECT_DOUBLE_EQ(StepPenaltyMultiplier(0.005), 1.0);  // within the free band
  EXPECT_DOUBLE_EQ(StepPenaltyMultiplier(0.03), 0.75);
  EXPECT_DOUBLE_EQ(StepPenaltyMultiplier(0.08), 0.50);
  EXPECT_DOUBLE_EQ(StepPenaltyMultiplier(0.5), 0.0);
  EXPECT_DOUBLE_EQ(RelaxedPenaltyMultiplier(0.0), 1.0);
  // Relaxed variant interpolates: availability 0.97 sits halfway through the
  // (0.99, 0) -> (0.95, 0.25) segment.
  EXPECT_NEAR(RelaxedPenaltyMultiplier(0.03), 0.875, 1e-12);
  EXPECT_NEAR(RelaxedPenaltyMultiplier(0.05), 0.75, 1e-12);
}

TEST(PenaltyMultiplierTest, ClampsOutOfRangeDropRates) {
  EXPECT_DOUBLE_EQ(StepPenaltyMultiplier(-0.1), 1.0);
  EXPECT_DOUBLE_EQ(StepPenaltyMultiplier(1.5), 0.0);
}

}  // namespace
}  // namespace faro
