// The live telemetry plane's contracts (src/serve/): the pacing clock maps
// wall time to sim time correctly and stays continuous across speed changes,
// the embedded HTTP server round-trips requests, and -- the load-bearing one
// -- a paced daemon replay is bit-identical to the batch run of the same
// config and seed while a concurrent scraper watches monotone counters.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/serve/daemon.h"
#include "src/serve/http.h"
#include "src/serve/pacing.h"
#include "src/sim/harness.h"
#include "src/sim/report.h"
#include "src/sim/simulator.h"

namespace faro {
namespace {

// Pin the shared pool before first use (harness_determinism_test idiom).
const bool kForcePoolSize = [] {
  setenv("FARO_THREADS", "4", /*overwrite=*/0);
  return true;
}();

// --- PacingClock -----------------------------------------------------------

TEST(PacingClockTest, MapsWallElapsedToSimTimeAtSpeed) {
  const auto before = PacingClock::Clock::now();
  PacingClock clock(100.0);
  // The anchor was taken between `before` and now; ten wall seconds past
  // `before` is therefore at most ten seconds past the anchor.
  const double target = clock.TargetSimTimeAt(before + std::chrono::seconds(10));
  EXPECT_LE(target, 100.0 * 10.0);
  EXPECT_GE(target, 100.0 * 9.0);  // Reset itself took far less than a second
}

TEST(PacingClockTest, ClampsSpeedToContractRange) {
  PacingClock clock(0.25);  // below the 1x floor
  EXPECT_EQ(clock.speed(), 1.0);
  EXPECT_EQ(clock.SetSpeed(1e9), 10000.0);
  EXPECT_EQ(clock.speed(), 10000.0);
  EXPECT_EQ(clock.SetSpeed(-3.0), 1.0);
}

TEST(PacingClockTest, TargetNeverGoesBackwards) {
  PacingClock clock(5000.0);
  double last = 0.0;
  // Hammer speed changes; the re-anchoring must keep the target continuous
  // and non-decreasing -- a replay can never be asked to step backwards.
  for (int i = 0; i < 200; ++i) {
    clock.SetSpeed(i % 2 == 0 ? 1.0 : 10000.0);
    const double target = clock.TargetSimTime();
    EXPECT_GE(target, last) << "iteration " << i;
    last = target;
  }
}

TEST(PacingClockTest, WallInstantBeforeAnchorClampsToZero) {
  PacingClock clock(100.0);
  EXPECT_EQ(clock.TargetSimTimeAt(PacingClock::Clock::now() - std::chrono::hours(1)),
            0.0);
}

// --- HttpServer ------------------------------------------------------------

TEST(HttpServerTest, RoundTripsRequestsAndStopsIdempotently) {
  HttpServer server;
  ASSERT_TRUE(server.Start(0, [](const HttpRequest& request) {
    HttpResponse response;
    if (request.path == "/nope") {
      response.status = 404;
      return response;
    }
    response.body = request.method + " " + request.path + " q=" + request.query +
                    " b=" + request.body;
    return response;
  }));
  ASSERT_GT(server.port(), 0);

  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpFetch(server.port(), "GET", "/echo?tail=3", "", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "GET /echo q=tail=3 b=");

  ASSERT_TRUE(HttpFetch(server.port(), "POST", "/speed", "speed=250", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "POST /speed q= b=speed=250");

  ASSERT_TRUE(HttpFetch(server.port(), "GET", "/nope", "", &status, &body));
  EXPECT_EQ(status, 404);
  EXPECT_EQ(server.requests_served(), 3u);

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

// --- Replay determinism ----------------------------------------------------

ExperimentSetup SmallSetup() {
  ExperimentSetup setup;
  setup.num_jobs = 3;
  setup.right_size_replicas = 10.0;
  setup.capacity = 8.0;
  setup.trials = 1;
  setup.days = 3;
  return setup;
}

// Truncate the eval traces so one run is ~3600 sim-seconds.
void Truncate(PreparedWorkload& workload, size_t minutes) {
  for (SimJobConfig& job : workload.jobs) {
    if (job.arrival_rate_per_min.size() > minutes) {
      job.arrival_rate_per_min = job.arrival_rate_per_min.Slice(0, minutes);
    }
  }
}

std::string SummaryCsvString(const RunResult& result, const std::string& tag) {
  const std::string path =
      (std::filesystem::temp_directory_path() / ("faro_serve_test_" + tag + ".csv"))
          .string();
  if (!WriteSummaryCsv(path, result)) {
    return "<write failed>";
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::filesystem::remove(path);
  return buffer.str();
}

double ScrapeGaugeOrCounter(const std::string& exposition, const std::string& name) {
  size_t pos = 0;
  while ((pos = exposition.find(name, pos)) != std::string::npos) {
    const size_t after = pos + name.size();
    if ((pos == 0 || exposition[pos - 1] == '\n') && after < exposition.size() &&
        exposition[after] == ' ') {
      return std::strtod(exposition.c_str() + after + 1, nullptr);
    }
    pos = after;
  }
  return -1.0;
}

// A paced replay at high speed, scraped concurrently over HTTP, finishes with
// a summary CSV byte-identical to the batch run of the same config and seed
// -- pacing throttles event *delivery*, never simulation outcomes -- and the
// scraper only ever sees the windows-closed counter move forward.
TEST(ServeDeterminismTest, PacedDaemonBitIdenticalToBatchUnderScrape) {
  ASSERT_TRUE(kForcePoolSize);
  const ExperimentSetup setup = SmallSetup();
  PreparedWorkload workload = PrepareWorkload(setup);
  Truncate(workload, 60);

  // Batch reference: same BuildSimConfig, no observer, no pacing.
  SimConfig batch_config = BuildSimConfig(setup, setup.seed);
  batch_config.obs_metrics = true;
  const auto batch_policy = MakePolicy("Faro-FairSum", nullptr);
  const RunResult batch = RunSimulation(batch_config, workload.jobs, *batch_policy);
  ASSERT_GT(batch.events_processed, 0u);

  // Live run: fresh policy instance (policies are stateful), paced at the
  // 10000x ceiling, scraped from this thread while the replay thread runs.
  SimConfig live_config = BuildSimConfig(setup, setup.seed);
  live_config.obs_metrics = true;
  const auto live_policy = MakePolicy("Faro-FairSum", nullptr);
  ServeOptions options;
  options.speed = 10000.0;
  options.poll_ms = 1;
  ReplayDaemon daemon(live_config, workload.jobs, *live_policy, options);
  ASSERT_TRUE(daemon.StartServer());

  RunResult live;
  std::thread replay([&] { live = daemon.Run(); });
  double last_windows = -1.0;
  size_t scrapes = 0;
  while (!daemon.run_complete()) {
    int status = 0;
    std::string body;
    ASSERT_TRUE(HttpFetch(daemon.port(), "GET", "/metrics", "", &status, &body));
    ASSERT_EQ(status, 200);
    const double windows =
        ScrapeGaugeOrCounter(body, "faro_serve_windows_closed_total");
    EXPECT_GE(windows, last_windows) << "counter went backwards";
    last_windows = windows;
    ++scrapes;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  replay.join();
  EXPECT_GT(scrapes, 0u);

  // Bit-identity: aggregate fields and the full summary CSV byte-for-byte.
  EXPECT_EQ(live.events_processed, batch.events_processed);
  EXPECT_EQ(live.cluster_lost_utility, batch.cluster_lost_utility);
  EXPECT_EQ(live.cluster_burn_alerts_fast, batch.cluster_burn_alerts_fast);
  EXPECT_EQ(live.cluster_burn_alerts_slow, batch.cluster_burn_alerts_slow);
  EXPECT_EQ(SummaryCsvString(live, "live"), SummaryCsvString(batch, "batch"));

  // The telemetry plane agrees with the finished run.
  int status = 0;
  std::string health;
  ASSERT_TRUE(HttpFetch(daemon.port(), "GET", "/healthz", "", &status, &health));
  EXPECT_EQ(status, 200);
  EXPECT_NE(health.find("\"done\":true"), std::string::npos) << health;
  const uint64_t feed_onsets = daemon.alert_onsets();
  EXPECT_EQ(feed_onsets, batch.cluster_burn_alerts_fast + batch.cluster_burn_alerts_slow);

  // POST /speed round-trip (the replay is done; this just exercises the path).
  std::string body;
  ASSERT_TRUE(HttpFetch(daemon.port(), "POST", "/speed", "2500", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("2500"), std::string::npos) << body;
  ASSERT_TRUE(HttpFetch(daemon.port(), "POST", "/speed", "speed=banana", &status, &body));
  EXPECT_EQ(status, 400);
}

// Stepping in arbitrary small increments is a pure refactor of Run on BOTH
// engines: Init + StepUntil(+inf) + Finish IS the batch loop, and any finer
// until_s schedule must land on the same result bit for bit.
TEST(ServeDeterminismTest, SteppedRunMatchesBatchOnBothEngines) {
  ASSERT_TRUE(kForcePoolSize);
  for (const SimEngine engine : {SimEngine::kClassic, SimEngine::kSharded}) {
    ExperimentSetup setup = SmallSetup();
    setup.engine = engine;
    PreparedWorkload workload = PrepareWorkload(setup);
    Truncate(workload, 60);
    const SimConfig config = BuildSimConfig(setup, setup.seed);

    const auto batch_policy = MakePolicy("Faro-FairSum", nullptr);
    const RunResult batch = RunSimulation(config, workload.jobs, *batch_policy);

    const auto stepped_policy = MakePolicy("Faro-FairSum", nullptr);
    std::unique_ptr<SimStepper> stepper =
        MakeSimStepper(config, workload.jobs, *stepped_policy);
    double until = 0.0;
    while (!stepper->done()) {
      until += 137.0;  // deliberately misaligned with every control interval
      stepper->StepUntil(until);
      EXPECT_LE(stepper->now_s(), stepper->duration_s());
    }
    const RunResult stepped = stepper->Finish();

    const std::string tag = engine == SimEngine::kClassic ? "classic" : "sharded";
    EXPECT_EQ(stepped.events_processed, batch.events_processed) << tag;
    EXPECT_EQ(stepped.cluster_lost_utility, batch.cluster_lost_utility) << tag;
    EXPECT_EQ(SummaryCsvString(stepped, tag + "_stepped"),
              SummaryCsvString(batch, tag + "_batch"))
        << tag;
  }
}

}  // namespace
}  // namespace faro
