// The live telemetry plane's contracts (src/serve/): the pacing clock maps
// wall time to sim time correctly and stays continuous across speed changes,
// the embedded HTTP server round-trips requests, and -- the load-bearing one
// -- a paced daemon replay is bit-identical to the batch run of the same
// config and seed while a concurrent scraper watches monotone counters.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/actuate/async_actuator.h"
#include "src/obs/metrics.h"
#include "src/serve/daemon.h"
#include "src/serve/http.h"
#include "src/serve/pacing.h"
#include "src/sim/harness.h"
#include "src/sim/report.h"
#include "src/sim/simulator.h"

namespace faro {
namespace {

// Pin the shared pool before first use (harness_determinism_test idiom).
const bool kForcePoolSize = [] {
  setenv("FARO_THREADS", "4", /*overwrite=*/0);
  return true;
}();

// --- PacingClock -----------------------------------------------------------

TEST(PacingClockTest, MapsWallElapsedToSimTimeAtSpeed) {
  const auto before = PacingClock::Clock::now();
  PacingClock clock(100.0);
  // The anchor was taken between `before` and now; ten wall seconds past
  // `before` is therefore at most ten seconds past the anchor.
  const double target = clock.TargetSimTimeAt(before + std::chrono::seconds(10));
  EXPECT_LE(target, 100.0 * 10.0);
  EXPECT_GE(target, 100.0 * 9.0);  // Reset itself took far less than a second
}

TEST(PacingClockTest, ClampsSpeedToContractRange) {
  PacingClock clock(0.25);  // below the 1x floor
  EXPECT_EQ(clock.speed(), 1.0);
  EXPECT_EQ(clock.SetSpeed(1e9), 10000.0);
  EXPECT_EQ(clock.speed(), 10000.0);
  EXPECT_EQ(clock.SetSpeed(-3.0), 1.0);
}

TEST(PacingClockTest, TargetNeverGoesBackwards) {
  PacingClock clock(5000.0);
  double last = 0.0;
  // Hammer speed changes; the re-anchoring must keep the target continuous
  // and non-decreasing -- a replay can never be asked to step backwards.
  for (int i = 0; i < 200; ++i) {
    clock.SetSpeed(i % 2 == 0 ? 1.0 : 10000.0);
    const double target = clock.TargetSimTime();
    EXPECT_GE(target, last) << "iteration " << i;
    last = target;
  }
}

TEST(PacingClockTest, WallInstantBeforeAnchorClampsToZero) {
  PacingClock clock(100.0);
  EXPECT_EQ(clock.TargetSimTimeAt(PacingClock::Clock::now() - std::chrono::hours(1)),
            0.0);
}

// --- HttpServer ------------------------------------------------------------

TEST(HttpServerTest, RoundTripsRequestsAndStopsIdempotently) {
  HttpServer server;
  ASSERT_TRUE(server.Start(0, [](const HttpRequest& request) {
    HttpResponse response;
    if (request.path == "/nope") {
      response.status = 404;
      return response;
    }
    response.body = request.method + " " + request.path + " q=" + request.query +
                    " b=" + request.body;
    return response;
  }));
  ASSERT_GT(server.port(), 0);

  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpFetch(server.port(), "GET", "/echo?tail=3", "", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "GET /echo q=tail=3 b=");

  ASSERT_TRUE(HttpFetch(server.port(), "POST", "/speed", "speed=250", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "POST /speed q= b=speed=250");

  ASSERT_TRUE(HttpFetch(server.port(), "GET", "/nope", "", &status, &body));
  EXPECT_EQ(status, 404);
  EXPECT_EQ(server.requests_served(), 3u);

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

// A half-open client -- connected, request never completed, socket held open
// -- must not wedge the serial accept loop: the per-connection read deadline
// drops it with 408 and the next well-formed request is served normally.
TEST(HttpServerTest, HalfOpenConnectionCannotWedgeAcceptLoop) {
  HttpServer server;
  server.set_io_timeout_ms(100);
  ASSERT_TRUE(server.Start(0, [](const HttpRequest&) { return HttpResponse{}; }));

  // Raw half-open connection: partial request line, no terminating blank
  // line, held open across the whole test.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char partial[] = "GET /metr";
  ASSERT_GT(::send(fd, partial, sizeof(partial) - 1, MSG_NOSIGNAL), 0);

  // A normal request issued while the wedge attempt is live: it must be
  // served (after at most one 100 ms deadline), not starve.
  const auto before = std::chrono::steady_clock::now();
  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpFetch(server.port(), "GET", "/ok", "", &status, &body));
  EXPECT_EQ(status, 200);
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            5000);
  EXPECT_GE(server.connections_timed_out(), 1u);
  ::close(fd);
  server.Stop();
}

// Oversize requests are rejected with a status, never buffered: headers past
// 16 KiB get 431, a declared body past 1 MiB gets 413.
TEST(HttpServerTest, RejectsOversizeHeadersAndBodies) {
  HttpServer server;
  server.set_io_timeout_ms(2000);
  ASSERT_TRUE(server.Start(0, [](const HttpRequest&) { return HttpResponse{}; }));

  int status = 0;
  std::string body;
  const std::string huge_query(32 << 10, 'q');
  ASSERT_TRUE(HttpFetch(server.port(), "GET", "/x?" + huge_query, "", &status, &body));
  EXPECT_EQ(status, 431);

  // Declared Content-Length over the cap: rejected from the declaration
  // alone, before any body bytes are read.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request =
      "POST /speed HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: 2097152\r\n"
      "Connection: close\r\n\r\n";
  ASSERT_GT(::send(fd, request.data(), request.size(), MSG_NOSIGNAL), 0);
  std::string raw;
  char buf[512];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(raw.find("413"), std::string::npos) << raw;
  server.Stop();
}

// --- Replay determinism ----------------------------------------------------

ExperimentSetup SmallSetup() {
  ExperimentSetup setup;
  setup.num_jobs = 3;
  setup.right_size_replicas = 10.0;
  setup.capacity = 8.0;
  setup.trials = 1;
  setup.days = 3;
  return setup;
}

// Truncate the eval traces so one run is ~3600 sim-seconds.
void Truncate(PreparedWorkload& workload, size_t minutes) {
  for (SimJobConfig& job : workload.jobs) {
    if (job.arrival_rate_per_min.size() > minutes) {
      job.arrival_rate_per_min = job.arrival_rate_per_min.Slice(0, minutes);
    }
  }
}

std::string SummaryCsvString(const RunResult& result, const std::string& tag) {
  const std::string path =
      (std::filesystem::temp_directory_path() / ("faro_serve_test_" + tag + ".csv"))
          .string();
  if (!WriteSummaryCsv(path, result)) {
    return "<write failed>";
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::filesystem::remove(path);
  return buffer.str();
}

double ScrapeGaugeOrCounter(const std::string& exposition, const std::string& name) {
  size_t pos = 0;
  while ((pos = exposition.find(name, pos)) != std::string::npos) {
    const size_t after = pos + name.size();
    if ((pos == 0 || exposition[pos - 1] == '\n') && after < exposition.size() &&
        exposition[after] == ' ') {
      return std::strtod(exposition.c_str() + after + 1, nullptr);
    }
    pos = after;
  }
  return -1.0;
}

// A paced replay at high speed, scraped concurrently over HTTP, finishes with
// a summary CSV byte-identical to the batch run of the same config and seed
// -- pacing throttles event *delivery*, never simulation outcomes -- and the
// scraper only ever sees the windows-closed counter move forward.
TEST(ServeDeterminismTest, PacedDaemonBitIdenticalToBatchUnderScrape) {
  ASSERT_TRUE(kForcePoolSize);
  const ExperimentSetup setup = SmallSetup();
  PreparedWorkload workload = PrepareWorkload(setup);
  Truncate(workload, 60);

  // Batch reference: same BuildSimConfig, no observer, no pacing.
  SimConfig batch_config = BuildSimConfig(setup, setup.seed);
  batch_config.obs_metrics = true;
  const auto batch_policy = MakePolicy("Faro-FairSum", nullptr);
  const RunResult batch = RunSimulation(batch_config, workload.jobs, *batch_policy);
  ASSERT_GT(batch.events_processed, 0u);

  // Live run: fresh policy instance (policies are stateful), paced at the
  // 10000x ceiling, scraped from this thread while the replay thread runs.
  SimConfig live_config = BuildSimConfig(setup, setup.seed);
  live_config.obs_metrics = true;
  const auto live_policy = MakePolicy("Faro-FairSum", nullptr);
  ServeOptions options;
  options.speed = 10000.0;
  options.poll_ms = 1;
  ReplayDaemon daemon(live_config, workload.jobs, *live_policy, options);
  ASSERT_TRUE(daemon.StartServer());

  RunResult live;
  std::thread replay([&] { live = daemon.Run(); });
  double last_windows = -1.0;
  size_t scrapes = 0;
  while (!daemon.run_complete()) {
    int status = 0;
    std::string body;
    ASSERT_TRUE(HttpFetch(daemon.port(), "GET", "/metrics", "", &status, &body));
    ASSERT_EQ(status, 200);
    const double windows =
        ScrapeGaugeOrCounter(body, "faro_serve_windows_closed_total");
    EXPECT_GE(windows, last_windows) << "counter went backwards";
    last_windows = windows;
    ++scrapes;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  replay.join();
  EXPECT_GT(scrapes, 0u);

  // Bit-identity: aggregate fields and the full summary CSV byte-for-byte.
  EXPECT_EQ(live.events_processed, batch.events_processed);
  EXPECT_EQ(live.cluster_lost_utility, batch.cluster_lost_utility);
  EXPECT_EQ(live.cluster_burn_alerts_fast, batch.cluster_burn_alerts_fast);
  EXPECT_EQ(live.cluster_burn_alerts_slow, batch.cluster_burn_alerts_slow);
  EXPECT_EQ(SummaryCsvString(live, "live"), SummaryCsvString(batch, "batch"));

  // The telemetry plane agrees with the finished run.
  int status = 0;
  std::string health;
  ASSERT_TRUE(HttpFetch(daemon.port(), "GET", "/healthz", "", &status, &health));
  EXPECT_EQ(status, 200);
  EXPECT_NE(health.find("\"done\":true"), std::string::npos) << health;
  const uint64_t feed_onsets = daemon.alert_onsets();
  EXPECT_EQ(feed_onsets, batch.cluster_burn_alerts_fast + batch.cluster_burn_alerts_slow);

  // POST /speed round-trip (the replay is done; this just exercises the path).
  std::string body;
  ASSERT_TRUE(HttpFetch(daemon.port(), "POST", "/speed", "2500", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("2500"), std::string::npos) << body;
  ASSERT_TRUE(HttpFetch(daemon.port(), "POST", "/speed", "speed=banana", &status, &body));
  EXPECT_EQ(status, 400);
}

// Live async actuation: a real reconciling thread (src/actuate/) races the
// paced replay under TSan. Three contracts at once: (1) the run stays
// byte-identical to batch -- the actuator converges its own cluster model,
// never simulation state; (2) crash consistency -- at every polled instant,
// each published generation is either fully applied (every job's target
// issued in one critical section), fenced, superseded, or still pending,
// never torn; (3) the end-of-run duplicate re-publish is discarded by the
// generation fence.
TEST(ServeDeterminismTest, LiveActuatorRacesReplayWithoutTearingOrDivergence) {
  ASSERT_TRUE(kForcePoolSize);
  const ExperimentSetup setup = SmallSetup();
  PreparedWorkload workload = PrepareWorkload(setup);
  Truncate(workload, 60);
  const size_t num_jobs = workload.jobs.size();

  const SimConfig batch_config = BuildSimConfig(setup, setup.seed);
  const auto batch_policy = MakePolicy("Faro-FairSum", nullptr);
  const RunResult batch = RunSimulation(batch_config, workload.jobs, *batch_policy);

  const SimConfig live_config = BuildSimConfig(setup, setup.seed);
  const auto live_policy = MakePolicy("Faro-FairSum", nullptr);
  ServeOptions options;
  options.speed = 10000.0;
  options.poll_ms = 1;
  options.live_actuator = true;
  ReplayDaemon daemon(live_config, workload.jobs, *live_policy, options);
  ASSERT_TRUE(daemon.StartServer());
  const AsyncActuator* actuator = daemon.actuator();
  ASSERT_NE(actuator, nullptr);

  RunResult live;
  std::thread replay([&] { live = daemon.Run(); });
  while (!daemon.run_complete()) {
    // Poll the op log while the actuator races the replay: an applied entry
    // must already carry every job's write (the first pass runs whole inside
    // one critical section); an unprocessed one must carry none.
    for (const ActuatorLogEntry& entry : actuator->op_log()) {
      if (entry.applied) {
        EXPECT_GE(entry.jobs_applied, num_jobs) << "torn generation " << entry.generation;
      } else {
        EXPECT_EQ(entry.jobs_applied, 0u) << "torn generation " << entry.generation;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  replay.join();

  // (1) Byte-identity with the batch reference.
  EXPECT_EQ(live.events_processed, batch.events_processed);
  EXPECT_EQ(live.cluster_lost_utility, batch.cluster_lost_utility);
  EXPECT_EQ(SummaryCsvString(live, "actuated"), SummaryCsvString(batch, "reference"));

  // (2) Every generation landed in exactly one terminal state; accepted ones
  // account one-for-one for the reconciler's publish count.
  const std::vector<ActuatorLogEntry> log = actuator->op_log();
  ASSERT_FALSE(log.empty());
  uint64_t applied = 0, fenced = 0, superseded = 0;
  for (const ActuatorLogEntry& entry : log) {
    EXPECT_EQ((entry.applied ? 1 : 0) + (entry.fenced ? 1 : 0) +
                  (entry.superseded ? 1 : 0),
              1)
        << "generation " << entry.generation << " not in exactly one state";
    applied += entry.applied;
    fenced += entry.fenced;
    superseded += entry.superseded;
  }
  const ReconcileTelemetry telemetry = actuator->telemetry();
  EXPECT_EQ(applied + superseded, telemetry.generations_published);
  EXPECT_TRUE(actuator->converged());
  EXPECT_GT(actuator->generation(), 0u);

  // (3) The wind-down duplicate was fenced, and the /actuator endpoint
  // agrees: no torn entries, fence count visible to scrapers.
  EXPECT_GE(fenced, 1u);
  EXPECT_EQ(fenced, telemetry.fence_rejections);
  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpFetch(daemon.port(), "GET", "/actuator", "", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"torn\":0"), std::string::npos) << body;
  EXPECT_NE(body.find("\"pending\":0"), std::string::npos) << body;
  EXPECT_NE(body.find("\"converged\":true"), std::string::npos) << body;
}

// Stepping in arbitrary small increments is a pure refactor of Run on BOTH
// engines: Init + StepUntil(+inf) + Finish IS the batch loop, and any finer
// until_s schedule must land on the same result bit for bit.
TEST(ServeDeterminismTest, SteppedRunMatchesBatchOnBothEngines) {
  ASSERT_TRUE(kForcePoolSize);
  for (const SimEngine engine : {SimEngine::kClassic, SimEngine::kSharded}) {
    ExperimentSetup setup = SmallSetup();
    setup.engine = engine;
    PreparedWorkload workload = PrepareWorkload(setup);
    Truncate(workload, 60);
    const SimConfig config = BuildSimConfig(setup, setup.seed);

    const auto batch_policy = MakePolicy("Faro-FairSum", nullptr);
    const RunResult batch = RunSimulation(config, workload.jobs, *batch_policy);

    const auto stepped_policy = MakePolicy("Faro-FairSum", nullptr);
    std::unique_ptr<SimStepper> stepper =
        MakeSimStepper(config, workload.jobs, *stepped_policy);
    double until = 0.0;
    while (!stepper->done()) {
      until += 137.0;  // deliberately misaligned with every control interval
      stepper->StepUntil(until);
      EXPECT_LE(stepper->now_s(), stepper->duration_s());
    }
    const RunResult stepped = stepper->Finish();

    const std::string tag = engine == SimEngine::kClassic ? "classic" : "sharded";
    EXPECT_EQ(stepped.events_processed, batch.events_processed) << tag;
    EXPECT_EQ(stepped.cluster_lost_utility, batch.cluster_lost_utility) << tag;
    EXPECT_EQ(SummaryCsvString(stepped, tag + "_stepped"),
              SummaryCsvString(batch, tag + "_batch"))
        << tag;
  }
}

}  // namespace
}  // namespace faro
