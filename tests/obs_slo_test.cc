// Unit tests for the SLO ledger, the causal attribution kernel, and the
// decision audit log (src/obs/slo.h, src/obs/attribution.h).

#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/obs/attribution.h"
#include "src/obs/slo.h"

namespace faro {
namespace {

double EnumOrderSum(const std::array<double, kNumLossCauses>& buckets) {
  double sum = 0.0;
  for (size_t c = 0; c < kNumLossCauses; ++c) {
    sum += buckets[c];
  }
  return sum;
}

TEST(AttributionTest, ZeroLossIsAllZero) {
  AttributionInputs inputs;
  inputs.arrivals = 100.0;
  inputs.wait_seconds = 5.0;
  const auto buckets = AttributeLostUtility(0.0, inputs);
  for (size_t c = 0; c < kNumLossCauses; ++c) {
    EXPECT_EQ(buckets[c], 0.0) << LossCauseName(c);
  }
  const auto negative = AttributeLostUtility(-0.25, inputs);
  EXPECT_EQ(EnumOrderSum(negative), 0.0);
}

TEST(AttributionTest, NoEvidenceGoesToUnattributed) {
  const auto buckets = AttributeLostUtility(0.4, AttributionInputs{});
  EXPECT_EQ(buckets[CauseIndex(LossCause::kUnattributed)], 0.4);
  EXPECT_EQ(EnumOrderSum(buckets), 0.4);
}

TEST(AttributionTest, SingleCauseTakesEverything) {
  AttributionInputs inputs;
  inputs.arrivals = 200.0;
  inputs.drops = 50.0;  // only drop evidence
  const auto buckets = AttributeLostUtility(0.3, inputs);
  EXPECT_GT(buckets[CauseIndex(LossCause::kDropAdmission)], 0.0);
  EXPECT_EQ(buckets[CauseIndex(LossCause::kQueueWait)], 0.0);
  EXPECT_EQ(buckets[CauseIndex(LossCause::kColdStart)], 0.0);
  EXPECT_EQ(EnumOrderSum(buckets), 0.3);
}

// The bit-exactness contract, fuzzed: for any non-negative evidence mix the
// left-to-right sum of the buckets reconstructs `lost` with zero error.
TEST(AttributionTest, EnumOrderSumIsBitExactFuzzed) {
  Rng rng(20260808);
  for (int trial = 0; trial < 20000; ++trial) {
    AttributionInputs inputs;
    inputs.arrivals = rng.Uniform() < 0.1 ? 0.0 : 1000.0 * rng.Uniform();
    inputs.drops = inputs.arrivals * rng.Uniform();
    inputs.wait_seconds = rng.Uniform() < 0.2 ? 0.0 : 100.0 * rng.Uniform();
    inputs.cold_start_seconds = rng.Uniform() < 0.2 ? 0.0 : 300.0 * rng.Uniform();
    inputs.fault_deficit_seconds = rng.Uniform() < 0.5 ? 0.0 : 600.0 * rng.Uniform();
    inputs.actuation_units = rng.Uniform() < 0.5 ? 0.0 : 8.0 * rng.Uniform();
    inputs.ladder_units = rng.Uniform() < 0.5 ? 0.0 : 3.0 * rng.Uniform();
    inputs.slo_s = 0.1 + rng.Uniform();
    const double lost = rng.Uniform();
    const auto buckets = AttributeLostUtility(lost, inputs);
    ASSERT_EQ(EnumOrderSum(buckets), lost) << "trial " << trial;
    for (size_t c = 0; c + 1 < kNumLossCauses; ++c) {
      ASSERT_GE(buckets[c], 0.0) << "trial " << trial << " " << LossCauseName(c);
    }
  }
}

TEST(SloLedgerTest, BudgetAccounting) {
  SloLedger ledger;
  ledger.set_allowance(0.01);
  ledger.Observe(60.0, 1000.0, 5.0);
  ledger.Observe(120.0, 1000.0, 0.0);
  EXPECT_EQ(ledger.budget_allowed(), 0.01 * 2000.0);
  EXPECT_EQ(ledger.budget_consumed(), 5.0);
  EXPECT_NEAR(ledger.budget_remaining_frac(), 1.0 - 5.0 / 20.0, 1e-12);
}

TEST(SloLedgerTest, BurnRateAndAlertOnsets) {
  SloLedger ledger;
  ledger.set_allowance(0.01);
  // Clean hour, then a violating hour at burn 50 (0.5 violation rate / 0.01).
  double t = 0.0;
  for (int w = 0; w < 60; ++w) {
    t += 60.0;
    const auto obs = ledger.Observe(t, 100.0, 0.0);
    EXPECT_FALSE(obs.alert_fast);
  }
  uint64_t onsets_before = ledger.alerts_fast();
  EXPECT_EQ(onsets_before, 0u);
  for (int w = 0; w < 60; ++w) {
    t += 60.0;
    ledger.Observe(t, 100.0, 50.0);
  }
  // One *onset* even though the alert held for many windows.
  EXPECT_EQ(ledger.alerts_fast(), 1u);
  EXPECT_GE(ledger.max_burn_fast(), 14.4);
  EXPECT_GT(ledger.first_alert_s(), 3600.0);
  // Recovery then a second violating stretch -> a second onset.
  for (int w = 0; w < 120; ++w) {
    t += 60.0;
    ledger.Observe(t, 100.0, 0.0);
  }
  for (int w = 0; w < 60; ++w) {
    t += 60.0;
    ledger.Observe(t, 100.0, 50.0);
  }
  EXPECT_EQ(ledger.alerts_fast(), 2u);
  // The slow 6 h window saw sustained burn >= 6 as well.
  EXPECT_GE(ledger.max_burn_slow(), 6.0);
}

// Reference batch evaluator: re-scans the entire observation history on
// every window, summing front to back. For integer request counts both this
// scan and the ledger's incremental add/subtract sums equal the exact
// integer value (partial sums stay below 2^53), so the ledger's O(1) rolling
// evaluation must be *bit-identical* to the scan -- burns, alert flags, and
// onset counts alike. This is the contract the live alert feed rides on.
class ReferenceSloEvaluator {
 public:
  explicit ReferenceSloEvaluator(const SloLedgerConfig& config) : config_(config) {}

  SloLedger::Observation Observe(double end_s, double arrivals, double violations) {
    history_.push_back({end_s, arrivals, violations});
    double fast_arrivals = 0.0, fast_violations = 0.0;
    double slow_arrivals = 0.0, slow_violations = 0.0;
    for (const Sample& s : history_) {
      if (s.end_s > end_s - config_.slow_window_s) {
        slow_arrivals += s.arrivals;
        slow_violations += s.violations;
      }
      if (s.end_s > end_s - config_.fast_window_s) {
        fast_arrivals += s.arrivals;
        fast_violations += s.violations;
      }
    }
    SloLedger::Observation obs;
    obs.burn_fast = Burn(fast_violations, fast_arrivals);
    obs.burn_slow = Burn(slow_violations, slow_arrivals);
    obs.alert_fast = obs.burn_fast >= config_.fast_threshold;
    obs.alert_slow = obs.burn_slow >= config_.slow_threshold;
    if (obs.alert_fast && !fast_firing_) ++alerts_fast_;
    if (obs.alert_slow && !slow_firing_) ++alerts_slow_;
    fast_firing_ = obs.alert_fast;
    slow_firing_ = obs.alert_slow;
    return obs;
  }

  uint64_t alerts_fast() const { return alerts_fast_; }
  uint64_t alerts_slow() const { return alerts_slow_; }

 private:
  struct Sample {
    double end_s, arrivals, violations;
  };
  double Burn(double violations, double arrivals) const {
    const double budget = config_.allowance * arrivals;
    return budget > 0.0 ? violations / budget : 0.0;
  }

  SloLedgerConfig config_;
  std::vector<Sample> history_;
  uint64_t alerts_fast_ = 0;
  uint64_t alerts_slow_ = 0;
  bool fast_firing_ = false;
  bool slow_firing_ = false;
};

TEST(SloLedgerTest, IncrementalRingBitIdenticalToBatchScanFuzzed) {
  SloLedgerConfig configs[3];
  // SRE defaults; tiny windows (heavy eviction and ring reuse); degenerate
  // fast == slow window.
  configs[1].fast_window_s = 300.0;
  configs[1].slow_window_s = 900.0;
  configs[2].fast_window_s = 1800.0;
  configs[2].slow_window_s = 1800.0;
  Rng rng(20260808);
  for (const SloLedgerConfig& config : configs) {
    SloLedger ledger(config);
    ReferenceSloEvaluator reference(config);
    double t = 0.0;
    for (int step = 0; step < 3000; ++step) {
      // Irregular window spacing (missed scrapes) and integer counts, with
      // occasional zero-traffic and violation-storm windows.
      t += 60.0 * (1.0 + std::floor(5.0 * rng.Uniform() * rng.Uniform()));
      const double arrivals =
          rng.Uniform() < 0.1 ? 0.0 : std::floor(2000.0 * rng.Uniform());
      double violations = std::floor(arrivals * rng.Uniform() * 0.1);
      if (rng.Uniform() < 0.05) {
        violations = arrivals;  // total outage window
      }
      const auto got = ledger.Observe(t, arrivals, violations);
      const auto want = reference.Observe(t, arrivals, violations);
      ASSERT_EQ(got.burn_fast, want.burn_fast) << "step " << step;
      ASSERT_EQ(got.burn_slow, want.burn_slow) << "step " << step;
      ASSERT_EQ(got.alert_fast, want.alert_fast) << "step " << step;
      ASSERT_EQ(got.alert_slow, want.alert_slow) << "step " << step;
    }
    EXPECT_EQ(ledger.alerts_fast(), reference.alerts_fast());
    EXPECT_EQ(ledger.alerts_slow(), reference.alerts_slow());
    EXPECT_GT(ledger.alerts_fast(), 0u);  // the fuzz actually exercised alerts
    // The ring retains only the slow window, not the whole run.
    EXPECT_LE(ledger.window_samples(),
              static_cast<size_t>(config.slow_window_s / 60.0) + 1);
  }
}

TEST(SloLedgerTest, NoTrafficMeansNoBurn) {
  SloLedger ledger;
  const auto obs = ledger.Observe(60.0, 0.0, 0.0);
  EXPECT_EQ(obs.burn_fast, 0.0);
  EXPECT_EQ(obs.burn_slow, 0.0);
  EXPECT_EQ(ledger.budget_remaining_frac(), 1.0);
}

TEST(AuditLogTest, SortsByLabelThenCycleAndEscapes) {
  AuditLog log;
  DecisionAuditRecord b2;
  b2.label = "b";
  b2.cycle = 2;
  DecisionAuditRecord a1;
  a1.label = "a\"quote";
  a1.cycle = 1;
  a1.rung = "warm_rescale";
  a1.time_s = 600.0;
  a1.replicas_total = 12.0;
  DecisionAuditRecord b1;
  b1.label = "b";
  b1.cycle = 1;
  log.Append(b2);
  log.Append(a1);
  log.Append(b1);
  EXPECT_EQ(log.size(), 3u);
  const std::string jsonl = log.ToJsonl();
  // One JSON object per line, ordered a/1, b/1, b/2 regardless of append order.
  const size_t first = jsonl.find('\n');
  const size_t second = jsonl.find('\n', first + 1);
  const std::string line0 = jsonl.substr(0, first);
  const std::string line1 = jsonl.substr(first + 1, second - first - 1);
  EXPECT_NE(line0.find("a\\\"quote"), std::string::npos) << line0;
  EXPECT_NE(line0.find("\"cycle\":1"), std::string::npos) << line0;
  EXPECT_NE(line0.find("\"rung\":\"warm_rescale\""), std::string::npos) << line0;
  EXPECT_NE(line1.find("\"label\":\"b\""), std::string::npos) << line1;
  EXPECT_NE(line1.find("\"cycle\":1"), std::string::npos) << line1;
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.ToJsonl().empty());
}

TEST(AuditLogTest, ToJsonlIsDeterministic) {
  AuditLog log;
  for (uint64_t c = 5; c > 0; --c) {
    DecisionAuditRecord record;
    record.label = "policy/trial0";
    record.cycle = c;
    record.time_s = 300.0 * static_cast<double>(c);
    record.forecast_peak_total = 1.0 / 3.0 * static_cast<double>(c);
    log.Append(record);
  }
  const std::string first = log.ToJsonl();
  EXPECT_EQ(first, log.ToJsonl());
  // Cycles come out ascending.
  EXPECT_LT(first.find("\"cycle\":1"), first.find("\"cycle\":2"));
}

}  // namespace
}  // namespace faro
