// The tracer's contracts: canonical event ordering is append-order
// independent, the Chrome JSON is well-formed under hostile names, the event
// cap drops loudly, and -- the load-bearing one -- the sim-domain trace of a
// harness run is bit-identical whatever the thread count, like every other
// simulation output.

#include "src/obs/trace.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/obs.h"
#include "src/sim/harness.h"

namespace faro {
namespace {

// Pin the shared pool before first use so the parallel runs below are real
// (same idiom as harness_determinism_test).
const bool kForcePoolSize = [] {
  setenv("FARO_THREADS", "4", /*overwrite=*/0);
  return true;
}();

// Install an aggressive event cap before DefaultObsConfig's first use so the
// FARO_TRACE_MAX_EVENTS plumbing is what the truncation test exercises.
const bool kForceTraceCap = [] {
  setenv("FARO_TRACE_MAX_EVENTS", "512", /*overwrite=*/1);
  return true;
}();

TraceEvent SimEvent(uint32_t pid, uint32_t tid, double ts_us, const std::string& name) {
  TraceEvent event;
  event.name = name;
  event.cat = "test";
  event.phase = 'X';
  event.clock = TraceClock::kSim;
  event.pid = pid;
  event.tid = tid;
  event.ts_us = ts_us;
  event.dur_us = 1.0;
  return event;
}

TEST(TracerTest, CanonicalOrderIsAppendOrderIndependent) {
  Tracer forward;
  Tracer backward;
  const uint32_t pid_f = forward.NewProcess("run");
  std::vector<TraceEvent> events;
  for (int i = 0; i < 20; ++i) {
    events.push_back(SimEvent(pid_f, static_cast<uint32_t>(i % 3),
                              static_cast<double>(100 - i), "e" + std::to_string(i)));
  }
  for (const TraceEvent& event : events) {
    forward.Add(event);
  }
  // Same pid in the second tracer (first NewProcess call), reversed appends.
  const uint32_t pid_b = backward.NewProcess("run");
  ASSERT_EQ(pid_f, pid_b);
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    backward.Add(*it);
  }
  EXPECT_EQ(forward.Events(), backward.Events());
  // Metadata sorts first within its pid.
  const std::vector<TraceEvent> sorted = forward.Events();
  ASSERT_FALSE(sorted.empty());
  EXPECT_EQ(sorted.front().phase, 'M');
  for (size_t i = 2; i < sorted.size(); ++i) {
    EXPECT_LE(sorted[i - 1].ts_us, sorted[i].ts_us);
  }
}

TEST(TracerTest, EventCapDropsLoudly) {
  Tracer tracer(/*max_events=*/4);
  const uint32_t pid = tracer.NewProcess("capped");  // metadata bypasses the cap
  for (int i = 0; i < 10; ++i) {
    tracer.Add(SimEvent(pid, 0, static_cast<double>(i), "e"));
  }
  // The metadata event bypassed the cap (so the process keeps its name) but
  // still occupies a slot; 3 of the 10 spans fit, 7 dropped -- and counted.
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped_events(), 7u);
}

TEST(TracerTest, ChromeJsonEscapesHostileNames) {
  Tracer tracer;
  const uint32_t pid = tracer.NewProcess("job \"zero\"\nnewline");
  tracer.Add(SimEvent(pid, 0, 1.0, "span\twith\\escapes\""));
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("\\\"zero\\\"\\nnewline"), std::string::npos);
  EXPECT_NE(json.find("span\\twith\\\\escapes\\\""), std::string::npos);
  // No raw control characters survive into the serialized form.
  for (const char c : json) {
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n') << static_cast<int>(c);
  }
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
}

TEST(TracerTest, ClockFilterKeepsMetadata) {
  Tracer tracer;
  const uint32_t pid = tracer.NewProcess("run");
  tracer.Add(SimEvent(pid, 0, 1.0, "sim"));
  TraceEvent wall = SimEvent(pid, 0, 2.0, "wall");
  wall.clock = TraceClock::kWall;
  tracer.Add(wall);
  const std::vector<TraceEvent> sim_only = tracer.Events(TraceClock::kSim);
  ASSERT_EQ(sim_only.size(), 2u);
  EXPECT_EQ(sim_only[0].phase, 'M');
  EXPECT_EQ(sim_only[1].name, "sim");
}

// The satellite requirement: the canonically sorted sim-domain event list of
// a traced harness run is identical at 1, 2, and 8 threads. Wall-domain
// events (which solver tasks ran before an early exit landed) are schedule-
// dependent by design and excluded.
TEST(TraceDeterminismTest, SimSpansBitIdenticalAcrossThreadCounts) {
  ASSERT_TRUE(kForcePoolSize);
  ExperimentSetup base;
  base.num_jobs = 3;
  base.right_size_replicas = 10.0;
  base.capacity = 8.0;
  base.trials = 2;
  base.days = 3;  // 2 train days + eval day: enough cycles, fast enough
  const PreparedWorkload workload = PrepareWorkload(base);

  std::vector<std::vector<TraceEvent>> per_run;
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    Tracer tracer;
    ExperimentSetup setup = base;
    setup.threads = threads;
    setup.obs.tracer = &tracer;  // record without touching the global tracer
    FaroConfig overrides;
    overrides.solve_parallelism = threads;
    RunTrials(setup, workload, "Faro-FairSum", nullptr, &overrides);
    per_run.push_back(tracer.Events(TraceClock::kSim));
  }
  ASSERT_FALSE(per_run[0].empty());
  EXPECT_EQ(per_run[0], per_run[1]);
  EXPECT_EQ(per_run[0], per_run[2]);
  // The traced trial produced real request-lifecycle spans.
  bool saw_service = false;
  for (const TraceEvent& event : per_run[0]) {
    if (event.name == "service" && event.cat == "sim.request") {
      saw_service = true;
      break;
    }
  }
  EXPECT_TRUE(saw_service);
}

// Structural JSON well-formedness: balanced objects/arrays outside strings,
// escape-aware string scanning, nothing after the top-level value. Cheap
// stand-in for a parser; CI loads real traces with python3 -m json.tool.
bool JsonIsStructurallyValid(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool seen_value = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control byte inside a string
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) {
          return false;
        }
        if (depth == 0) {
          seen_value = true;
        }
        break;
      default:
        if (seen_value && !std::isspace(static_cast<unsigned char>(c))) {
          return false;  // trailing garbage after the top-level value
        }
    }
  }
  return depth == 0 && !in_string && seen_value;
}

// The FARO_TRACE_MAX_EVENTS satellite: a harness run against a capped tracer
// overflows the buffer, yet the Chrome/Perfetto JSON stays loadable and the
// drop counter reports exactly what was lost -- truncation is never silent.
TEST(TracerTest, EnvCappedTraceStillParsesAndCountsDrops) {
  ASSERT_TRUE(kForceTraceCap);
  // The env-installed cap reached ObsConfig.
  ASSERT_EQ(DefaultObsConfig().trace_max_events, 512u);

  Tracer tracer(DefaultObsConfig().trace_max_events);
  ExperimentSetup setup;
  setup.num_jobs = 3;
  setup.right_size_replicas = 10.0;
  setup.capacity = 8.0;
  setup.trials = 1;
  setup.days = 3;
  setup.obs.tracer = &tracer;
  const PreparedWorkload workload = PrepareWorkload(setup);
  RunTrials(setup, workload, "Faro-FairSum", nullptr);

  EXPECT_GT(tracer.dropped_events(), 0u);
  // Metadata (process names) bypasses the cap; data events honour it.
  size_t data_events = 0;
  for (const TraceEvent& event : tracer.Events()) {
    if (event.phase != 'M') {
      ++data_events;
    }
  }
  EXPECT_LE(data_events, 512u);
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_TRUE(JsonIsStructurallyValid(json));
}

}  // namespace
}  // namespace faro
