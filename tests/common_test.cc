#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/series.h"
#include "src/common/stats.h"

namespace faro {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(rng.Uniform());
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.Add(rng.Normal());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(rng.Exponential(4.0));
  }
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

class RngPoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(static_cast<double>(rng.Poisson(mean)));
  }
  EXPECT_NEAR(stats.mean(), mean, std::max(0.05, 0.03 * mean));
  EXPECT_NEAR(stats.variance(), mean, std::max(0.3, 0.08 * mean));
}

INSTANTIATE_TEST_SUITE_P(Means, RngPoissonTest,
                         ::testing::Values(0.5, 2.0, 10.0, 29.0, 50.0, 400.0));

TEST(RngTest, PoissonZeroMean) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Poisson(0.0), 0u);
  }
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(7), 7u);
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextU64() == child.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(ShuffledIndicesTest, IsAPermutation) {
  Rng rng(37);
  const auto perm = ShuffledIndices(50, rng);
  ASSERT_EQ(perm.size(), 50u);
  std::vector<bool> seen(50, false);
  for (const size_t i : perm) {
    ASSERT_LT(i, 50u);
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(v);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(PercentileTest, MatchesLinearInterpolation) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(values, 0.25), 1.75);
}

TEST(PercentileTest, UnsortedInputHandled) {
  const std::vector<double> values{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.5), 2.5);
}

TEST(PercentileTest, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(Percentile({}, 0.9), 0.0);
  const std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(Percentile(one, 0.13), 5.0);
}

TEST(ErrorMetricsTest, RmseAndMae) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{1.0, 4.0, 3.0};
  EXPECT_NEAR(Rmse(a, b), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_NEAR(Mae(a, b), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(Rmse(a, a), 0.0);
}

TEST(KendallTauTest, IdenticalAndReversed) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> reversed{4.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(KendallTauDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(KendallTauDistance(a, reversed), 1.0);
}

TEST(KendallTauTest, SingleSwapIsOnePair) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> swapped{2.0, 1.0, 3.0, 4.0};
  EXPECT_NEAR(KendallTauDistance(a, swapped), 1.0 / 6.0, 1e-12);
}

TEST(SeriesTest, RescaleSpansTargetRange) {
  Series s(std::vector<double>{0.0, 5.0, 10.0});
  const Series r = s.RescaledTo(1.0, 1600.0);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 1600.0);
  EXPECT_DOUBLE_EQ(r[1], (1.0 + 1600.0) / 2.0);
}

TEST(SeriesTest, RescaleConstantSeries) {
  Series s(std::vector<double>{3.0, 3.0, 3.0});
  const Series r = s.RescaledTo(1.0, 100.0);
  for (size_t i = 0; i < r.size(); ++i) {
    EXPECT_DOUBLE_EQ(r[i], 1.0);
  }
}

TEST(SeriesTest, WindowAverage) {
  Series s(std::vector<double>{1.0, 3.0, 5.0, 7.0, 100.0});
  const Series w = s.WindowAveraged(2);
  ASSERT_EQ(w.size(), 2u);  // ragged tail dropped
  EXPECT_DOUBLE_EQ(w[0], 2.0);
  EXPECT_DOUBLE_EQ(w[1], 6.0);
}

TEST(SeriesTest, SliceAndClamp) {
  Series s(std::vector<double>{-1.0, 2.0, 3.0, 4.0});
  const Series slice = s.Slice(1, 3);
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_DOUBLE_EQ(slice[0], 2.0);
  const Series clamped = s.ClampedMin(0.0);
  EXPECT_DOUBLE_EQ(clamped[0], 0.0);
  EXPECT_DOUBLE_EQ(clamped[1], 2.0);
}

}  // namespace
}  // namespace faro
