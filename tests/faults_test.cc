// Chaos-injection layer: plan validation, named scenarios, and the injected
// fault paths through the simulator -- node crash/recover, correlated bursts,
// actuation faults, cold-start stragglers, the pre-existing replica_mtbf_s
// process, Pending-placement retry, and the recovery metrics every path feeds.

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/faults/faultplan.h"
#include "src/faults/injector.h"
#include "src/sim/simulator.h"

namespace faro {
namespace {

class FixedPolicy : public AutoscalingPolicy {
 public:
  explicit FixedPolicy(std::vector<uint32_t> replicas) : replicas_(std::move(replicas)) {}
  std::string name() const override { return "Fixed"; }
  ScalingAction Decide(double, const std::vector<JobSpec>&, const std::vector<JobMetrics>&,
                       const ClusterResources&) override {
    ScalingAction action;
    action.replicas = replicas_;
    return action;
  }

 private:
  std::vector<uint32_t> replicas_;
};

SimJobConfig MakeJob(double rate_per_min, size_t minutes, uint32_t initial = 1,
                     const std::string& name = "job") {
  SimJobConfig job;
  job.spec.name = name;
  job.spec.processing_time = 0.180;
  job.spec.slo = 0.720;
  job.arrival_rate_per_min = Series(std::vector<double>(minutes, rate_per_min));
  job.initial_replicas = initial;
  return job;
}

SimConfig MakeConfig(double capacity, uint64_t seed = 1) {
  SimConfig config;
  config.resources = ClusterResources{capacity, capacity};
  config.seed = seed;
  return config;
}

// --- FaultPlan ------------------------------------------------------------

TEST(FaultPlanTest, DefaultPlanIsInactiveAndValid) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  EXPECT_EQ(plan.Validate(), "");
}

TEST(FaultPlanTest, AnyKnobActivates) {
  FaultPlan scheduled;
  scheduled.events.push_back({10.0, FaultKind::kNodeCrash, "n1"});
  EXPECT_TRUE(scheduled.active());
  FaultPlan burst;
  burst.burst_mtbf_s = 100.0;
  EXPECT_TRUE(burst.active());
  FaultPlan straggler;
  straggler.straggler_fraction = 0.1;
  EXPECT_TRUE(straggler.active());
  FaultPlan actuation;
  actuation.actuation_drop_prob = 0.1;
  EXPECT_TRUE(actuation.active());
}

TEST(FaultPlanTest, ValidateCatchesBadEvents) {
  FaultPlan plan;
  plan.events.push_back({-1.0, FaultKind::kNodeCrash, "n1"});
  EXPECT_NE(plan.Validate(), "");

  plan.events.assign({FaultEvent{10.0, FaultKind::kNodeCrash, ""}});
  EXPECT_NE(plan.Validate(), "");

  FaultEvent burst;
  burst.time_s = 10.0;
  burst.kind = FaultKind::kReplicaBurst;
  burst.fraction = 1.5;
  plan.events.assign({burst});
  EXPECT_NE(plan.Validate(), "");

  burst.fraction = 0.0;
  burst.count = 0;  // neither a fraction nor a count
  plan.events.assign({burst});
  EXPECT_NE(plan.Validate(), "");
}

TEST(FaultPlanTest, ValidateCatchesBadKnobs) {
  FaultPlan plan;
  plan.actuation_drop_prob = 0.7;
  plan.actuation_delay_prob = 0.7;  // sums above 1
  EXPECT_NE(plan.Validate(), "");

  FaultPlan straggler;
  straggler.straggler_fraction = 0.5;
  straggler.straggler_multiplier = 0.5;  // shrinks the cold start
  EXPECT_NE(straggler.Validate(), "");
}

TEST(FaultPlanTest, ActuationProbabilitySumBoundaryIsInclusive) {
  // Probabilities summing to exactly 1.0 are legal (every op draws a fault)...
  FaultPlan saturated;
  saturated.actuation_drop_prob = 0.5;
  saturated.actuation_delay_prob = 0.25;
  saturated.actuation_delay_s = 30.0;
  saturated.actuation_partial_prob = 0.25;
  EXPECT_EQ(saturated.Validate(), "");
  // ...anything above the boundary is not.
  saturated.actuation_partial_prob = 0.25 + 1e-9;
  EXPECT_NE(saturated.Validate(), "");

  // A negative probability is rejected even when the sum stays under 1.
  FaultPlan negative;
  negative.actuation_drop_prob = -0.1;
  negative.actuation_delay_prob = 0.5;
  negative.actuation_delay_s = 30.0;
  EXPECT_NE(negative.Validate(), "");
}

TEST(FaultPlanTest, ActuationDelayDurationEdges) {
  // Delays enabled with a zero (or negative) duration are rejected: a
  // zero-second "delay" would silently behave like a clean apply.
  FaultPlan zero_delay;
  zero_delay.actuation_delay_prob = 0.2;
  zero_delay.actuation_delay_s = 0.0;
  EXPECT_NE(zero_delay.Validate(), "");
  zero_delay.actuation_delay_s = -5.0;
  EXPECT_NE(zero_delay.Validate(), "");

  // With delays disabled the duration knob is unread: zero is fine and the
  // plan stays inactive.
  FaultPlan no_delay;
  no_delay.actuation_delay_s = 0.0;
  EXPECT_EQ(no_delay.Validate(), "");
  EXPECT_FALSE(no_delay.active());
}

TEST(FaultPlanTest, NamedScenariosAreValidAndActive) {
  const std::vector<std::string> nodes{"n0", "n1", "n2", "n3"};
  for (const std::string& name : FaultScenarioNames()) {
    const FaultPlan plan = MakeFaultScenario(name, 3600.0, nodes);
    EXPECT_TRUE(plan.active()) << name;
    EXPECT_EQ(plan.Validate(), "") << name;
  }
  EXPECT_FALSE(MakeFaultScenario("no-such-scenario", 3600.0, nodes).active());
}

// --- injector -------------------------------------------------------------

TEST(FaultInjectorTest, InactivePlanDrawsNothing) {
  FaultInjector injector(FaultPlan{}, 42);
  EXPECT_FALSE(injector.active());
  EXPECT_EQ(injector.DrawActuation(), ActuationOutcome::kApply);
  EXPECT_FALSE(injector.DrawBurst(10.0));
  EXPECT_EQ(injector.StretchColdStart(60.0), 60.0);
  EXPECT_EQ(injector.stats().cold_start_stragglers, 0u);
}

TEST(FaultInjectorTest, ScheduledEventsSortedByTime) {
  FaultPlan plan;
  plan.events.push_back({200.0, FaultKind::kNodeRecover, "n1"});
  plan.events.push_back({100.0, FaultKind::kNodeCrash, "n1"});
  FaultInjector injector(plan, 42);
  ASSERT_EQ(injector.scheduled().size(), 2u);
  EXPECT_EQ(injector.scheduled()[0].kind, FaultKind::kNodeCrash);
  EXPECT_EQ(injector.scheduled()[1].kind, FaultKind::kNodeRecover);
}

TEST(FaultInjectorTest, ActuationOutcomesMatchProbabilities) {
  FaultPlan plan;
  plan.actuation_drop_prob = 0.25;
  plan.actuation_delay_prob = 0.25;
  plan.actuation_partial_prob = 0.25;
  FaultInjector injector(plan, 42);
  int counts[4] = {0, 0, 0, 0};
  const int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<int>(injector.DrawActuation())];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.25, 0.05);
  }
  EXPECT_EQ(injector.stats().actuation_drops,
            static_cast<uint64_t>(counts[static_cast<int>(ActuationOutcome::kDrop)]));
}

// --- simulator integration ------------------------------------------------

TEST(ChaosSimTest, NodeCrashKillsPlacedReplicasAndShrinksCapacity) {
  SimConfig config = MakeConfig(8.0);
  config.nodes = {{"n0", 4.0, 4.0}, {"n1", 4.0, 4.0}};
  config.faults.events.push_back({300.0, FaultKind::kNodeCrash, "n0"});
  FixedPolicy policy({8});
  // 30 req/s: fine on 8 replicas (rho 0.675), overloaded on the 4 that
  // survive the crash (rho 1.35) -- utility cannot reconverge.
  const auto result = RunSimulation(config, {MakeJob(1800.0, 20, 8)}, policy);
  EXPECT_EQ(result.faults.node_crashes, 1u);
  EXPECT_GT(result.faults.replicas_killed, 0u);
  EXPECT_GT(result.jobs[0].injected_failures, 0u);
  EXPECT_GT(result.jobs[0].capacity_seconds_lost, 0.0);
  ASSERT_FALSE(result.fault_log.empty());
  EXPECT_EQ(result.fault_log[0].what, "node_crash");
  EXPECT_EQ(result.fault_log[0].target, "n0");
  // The node never recovers, the cluster holds only 4 of the 8 wanted
  // replicas, and the pre-crash target is never reached again.
  EXPECT_EQ(result.jobs[0].utility_reconverge_s, -1.0);
}

TEST(ChaosSimTest, NodeRecoveryRestoresCapacity) {
  SimConfig config = MakeConfig(8.0);
  config.nodes = {{"n0", 4.0, 4.0}, {"n1", 4.0, 4.0}};
  config.faults.events.push_back({300.0, FaultKind::kNodeDrain, "n0"});
  config.faults.events.push_back({420.0, FaultKind::kNodeRecover, "n0"});
  FixedPolicy policy({8});
  const auto result = RunSimulation(config, {MakeJob(600.0, 30, 8)}, policy);
  EXPECT_EQ(result.faults.node_drains, 1u);
  EXPECT_EQ(result.faults.node_recoveries, 1u);
  // The fixed policy re-issues its 8-replica target every decision, so after
  // recovery the fleet is rebuilt and the deficit clock stops.
  EXPECT_GT(result.jobs[0].recovery_seconds, 0.0);
  EXPECT_LT(result.jobs[0].recovery_seconds, 25.0 * 60.0);
  EXPECT_NEAR(result.jobs[0].minute_replicas.back(), 8.0, 0.5);
}

TEST(ChaosSimTest, ScheduledBurstKillsFractionAndRecovers) {
  SimConfig config = MakeConfig(16.0);
  FaultEvent burst;
  burst.time_s = 600.0;
  burst.kind = FaultKind::kReplicaBurst;
  burst.fraction = 0.5;
  config.faults.events.push_back(burst);
  FixedPolicy policy({8});
  const auto result = RunSimulation(config, {MakeJob(600.0, 30, 8)}, policy);
  EXPECT_EQ(result.faults.bursts, 1u);
  EXPECT_EQ(result.faults.replicas_killed, 4u);
  EXPECT_EQ(result.jobs[0].injected_failures, 4u);
  // The fixed policy restores the target within a cold start or two.
  EXPECT_GE(result.jobs[0].utility_reconverge_s, 0.0);
}

TEST(ChaosSimTest, ActuationDropsSuppressScaleUps) {
  SimConfig config = MakeConfig(32.0);
  config.faults.actuation_drop_prob = 1.0;  // every scale-up silently dropped
  FixedPolicy policy({8});
  const auto result = RunSimulation(config, {MakeJob(600.0, 10, 1)}, policy);
  EXPECT_GT(result.faults.actuation_drops, 0u);
  // The job can never grow past its initial replica.
  for (const double r : result.jobs[0].minute_replicas) {
    EXPECT_LE(r, 1.0 + 1e-9);
  }
}

TEST(ChaosSimTest, ActuationDelayAppliesLater) {
  SimConfig config = MakeConfig(32.0);
  config.faults.actuation_delay_prob = 1.0;
  config.faults.actuation_delay_s = 120.0;
  FixedPolicy policy({6});
  const auto result = RunSimulation(config, {MakeJob(600.0, 15, 1)}, policy);
  EXPECT_GT(result.faults.actuation_delays, 0u);
  // Replicas do arrive eventually (delay + cold start), just late.
  EXPECT_NEAR(result.jobs[0].minute_replicas.back(), 6.0, 0.5);
}

TEST(ChaosSimTest, ColdStartStragglersAreCountedAndSlow) {
  SimConfig base = MakeConfig(32.0);
  base.cold_start_s = 60.0;
  SimConfig chaotic = base;
  chaotic.faults.straggler_fraction = 1.0;
  chaotic.faults.straggler_multiplier = 4.0;
  FixedPolicy policy_a({8});
  FixedPolicy policy_b({8});
  const auto clean = RunSimulation(base, {MakeJob(1200.0, 12, 1)}, policy_a);
  const auto slow = RunSimulation(chaotic, {MakeJob(1200.0, 12, 1)}, policy_b);
  EXPECT_EQ(clean.faults.cold_start_stragglers, 0u);
  EXPECT_GT(slow.faults.cold_start_stragglers, 0u);
  // Every cold start takes 4x as long (60 s -> 240 s), so during minute 2 the
  // straggling cluster still serves 20 req/s on one replica while the clean
  // one has been fully up for a minute.
  EXPECT_LT(slow.jobs[0].minute_utility[2], clean.jobs[0].minute_utility[2] - 0.2);
}

TEST(ChaosSimTest, ReplicaMtbfInjectionFeedsRecoveryMetrics) {
  // Satellite: the pre-existing replica_mtbf_s process now reports through
  // the same counters and per-job recovery metrics as the chaos layer.
  SimConfig config = MakeConfig(16.0);
  config.replica_mtbf_s = 600.0;  // aggressive: ~1 death per replica per 10 min
  FixedPolicy policy({8});
  const auto result = RunSimulation(config, {MakeJob(600.0, 40, 8)}, policy);
  EXPECT_GT(result.faults.replicas_killed, 0u);
  EXPECT_GT(result.jobs[0].injected_failures, 0u);
  EXPECT_GT(result.jobs[0].recovery_seconds, 0.0);
  bool logged = false;
  for (const AppliedFault& fault : result.fault_log) {
    logged = logged || fault.what == "replica_mtbf";
  }
  EXPECT_TRUE(logged);
}

TEST(ChaosSimTest, PendingPlacementRetriesAfterNodeRecovery) {
  // Satellite: replicas that cannot be placed stay Pending and are retried
  // each reactive tick. Crash one of two nodes, ask for more replicas than
  // the survivor holds, then recover -- the pending replicas must land.
  SimConfig config = MakeConfig(8.0);
  config.nodes = {{"n0", 4.0, 4.0}, {"n1", 4.0, 4.0}};
  config.faults.events.push_back({120.0, FaultKind::kNodeCrash, "n0"});
  config.faults.events.push_back({600.0, FaultKind::kNodeRecover, "n0"});
  FixedPolicy policy({8});
  const auto result = RunSimulation(config, {MakeJob(600.0, 25, 8)}, policy);
  // While n0 is down only 4 replicas fit; after recovery the full 8 return.
  double mid = result.jobs[0].minute_replicas[8];
  EXPECT_LE(mid, 4.5);
  EXPECT_NEAR(result.jobs[0].minute_replicas.back(), 8.0, 0.5);
}

TEST(ChaosSimTest, InactivePlanReportsAllZeros) {
  FixedPolicy policy({4});
  const auto result = RunSimulation(MakeConfig(16.0), {MakeJob(600.0, 20, 4)}, policy);
  EXPECT_EQ(result.faults.replicas_killed, 0u);
  EXPECT_EQ(result.faults.bursts, 0u);
  EXPECT_TRUE(result.fault_log.empty());
  EXPECT_EQ(result.jobs[0].injected_failures, 0u);
  EXPECT_EQ(result.jobs[0].capacity_seconds_lost, 0.0);
  EXPECT_EQ(result.jobs[0].recovery_seconds, 0.0);
  EXPECT_EQ(result.jobs[0].utility_reconverge_s, 0.0);
}

// --- SimConfig validation (satellite) --------------------------------------

TEST(ValidateSimConfigTest, AcceptsDefaults) {
  EXPECT_EQ(ValidateSimConfig(MakeConfig(16.0)), "");
}

TEST(ValidateSimConfigTest, RejectsBadFieldsWithClearMessages) {
  SimConfig negative_cold = MakeConfig(16.0);
  negative_cold.cold_start_s = -1.0;
  EXPECT_NE(ValidateSimConfig(negative_cold).find("cold_start_s"), std::string::npos);

  SimConfig zero_queue = MakeConfig(16.0);
  zero_queue.router_queue_limit = 0;
  EXPECT_NE(ValidateSimConfig(zero_queue).find("router_queue_limit"), std::string::npos);

  SimConfig bad_node = MakeConfig(16.0);
  bad_node.nodes = {{"n0", 0.0, 4.0}};
  EXPECT_NE(ValidateSimConfig(bad_node), "");

  SimConfig unknown_node = MakeConfig(16.0);
  unknown_node.nodes = {{"n0", 4.0, 4.0}};
  unknown_node.faults.events.push_back({10.0, FaultKind::kNodeCrash, "missing"});
  EXPECT_NE(ValidateSimConfig(unknown_node).find("missing"), std::string::npos);

  SimConfig bad_plan = MakeConfig(16.0);
  bad_plan.faults.actuation_drop_prob = 2.0;
  EXPECT_NE(ValidateSimConfig(bad_plan), "");
}

TEST(ValidateSimConfigTest, RunSimulationThrowsOnInvalidConfig) {
  SimConfig config = MakeConfig(16.0);
  config.reactive_interval_s = 0.0;
  FixedPolicy policy({4});
  std::vector<SimJobConfig> jobs{MakeJob(600.0, 5, 4)};
  EXPECT_THROW(RunSimulation(config, jobs, policy), std::invalid_argument);
}

}  // namespace
}  // namespace faro
