// Sharded-engine determinism: the sharded event engine must produce
// bit-identical RunResults at 1, 2, and 8 shard threads -- including under an
// active chaos plan -- because per-job state, per-job RNG streams, and
// job-ordered coordinator merges make the shard partition unobservable.
//
// These tests run under TSan in CI (cmake -DFARO_SANITIZE=thread, then
// ctest -R Determinism) to prove the shard fan-out is also race-free.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/faults/faultplan.h"
#include "src/sim/harness.h"
#include "src/sim/report.h"

namespace faro {
namespace {

// Force the shared pool to 4 threads before its first use, so parallelism is
// real even on single-core CI machines.
const bool kForcePoolSize = [] {
  setenv("FARO_THREADS", "4", /*overwrite=*/0);
  return true;
}();

ExperimentSetup ShardedSetup() {
  ExperimentSetup setup;
  setup.engine = SimEngine::kSharded;
  setup.num_jobs = 6;
  setup.capacity = 24.0;
  setup.right_size_replicas = 22.0;
  setup.days = 2;
  setup.trials = 1;
  setup.processing_jitter = 0.05;
  setup.cold_start_jitter_s = 10.0;
  return setup;
}

// A chaos plan that exercises every injection path the sharded engine
// supports: scheduled replica bursts, stochastic bursts, cold-start
// stragglers, and all three actuation faults.
FaultPlan ShardedChaos() {
  FaultPlan plan;
  FaultEvent burst;
  burst.time_s = 95.0 * 60.0;
  burst.kind = FaultKind::kReplicaBurst;
  burst.job = -1;
  burst.fraction = 0.5;
  plan.events.push_back(burst);
  plan.burst_mtbf_s = 3.0 * 3600.0;
  plan.burst_fraction = 0.3;
  plan.straggler_fraction = 0.2;
  plan.straggler_multiplier = 4.0;
  plan.actuation_drop_prob = 0.05;
  plan.actuation_delay_prob = 0.05;
  plan.actuation_partial_prob = 0.05;
  return plan;
}

void ExpectRunsIdentical(const RunResult& a, const RunResult& b,
                         const std::string& label) {
  EXPECT_EQ(a.events_processed, b.events_processed) << label;
  EXPECT_EQ(a.cluster_peak_replicas, b.cluster_peak_replicas) << label;
  EXPECT_EQ(a.cluster_lost_utility, b.cluster_lost_utility) << label;
  EXPECT_EQ(a.cluster_avg_utility, b.cluster_avg_utility) << label;
  EXPECT_EQ(a.cluster_slo_violation_rate, b.cluster_slo_violation_rate) << label;
  ASSERT_EQ(a.fault_log.size(), b.fault_log.size()) << label;
  for (size_t i = 0; i < a.fault_log.size(); ++i) {
    EXPECT_EQ(a.fault_log[i], b.fault_log[i]) << label << " fault " << i;
  }
  EXPECT_EQ(a.faults.replicas_killed, b.faults.replicas_killed) << label;
  EXPECT_EQ(a.faults.bursts, b.faults.bursts) << label;
  EXPECT_EQ(a.faults.actuation_drops, b.faults.actuation_drops) << label;
  EXPECT_EQ(a.faults.actuation_delays, b.faults.actuation_delays) << label;
  EXPECT_EQ(a.faults.actuation_partials, b.faults.actuation_partials) << label;
  EXPECT_EQ(a.faults.cold_start_stragglers, b.faults.cold_start_stragglers) << label;
  ASSERT_EQ(a.jobs.size(), b.jobs.size()) << label;
  for (size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].arrivals, b.jobs[j].arrivals) << label << " job " << j;
    EXPECT_EQ(a.jobs[j].drops, b.jobs[j].drops) << label << " job " << j;
    EXPECT_EQ(a.jobs[j].violations, b.jobs[j].violations) << label << " job " << j;
    EXPECT_EQ(a.jobs[j].avg_utility, b.jobs[j].avg_utility) << label << " job " << j;
    EXPECT_EQ(a.jobs[j].avg_replicas, b.jobs[j].avg_replicas) << label << " job " << j;
    EXPECT_EQ(a.jobs[j].injected_failures, b.jobs[j].injected_failures)
        << label << " job " << j;
    // SLO ledger and causal attribution, bitwise.
    for (size_t c = 0; c < kNumLossCauses; ++c) {
      EXPECT_EQ(a.jobs[j].lost_by_cause[c], b.jobs[j].lost_by_cause[c])
          << label << " job " << j << " cause " << LossCauseName(c);
      ASSERT_EQ(a.jobs[j].minute_lost_by_cause[c], b.jobs[j].minute_lost_by_cause[c])
          << label << " job " << j << " cause " << LossCauseName(c);
    }
    EXPECT_EQ(a.jobs[j].error_budget_consumed, b.jobs[j].error_budget_consumed)
        << label << " job " << j;
    EXPECT_EQ(a.jobs[j].burn_alerts_fast, b.jobs[j].burn_alerts_fast) << label << " job " << j;
    EXPECT_EQ(a.jobs[j].burn_alerts_slow, b.jobs[j].burn_alerts_slow) << label << " job " << j;
    ASSERT_EQ(a.jobs[j].minute_burn_fast, b.jobs[j].minute_burn_fast) << label << " job " << j;
    ASSERT_EQ(a.jobs[j].minute_violations, b.jobs[j].minute_violations)
        << label << " job " << j;
    ASSERT_EQ(a.jobs[j].minute_p99.size(), b.jobs[j].minute_p99.size())
        << label << " job " << j;
    for (size_t t = 0; t < a.jobs[j].minute_p99.size(); ++t) {
      ASSERT_EQ(a.jobs[j].minute_p99[t], b.jobs[j].minute_p99[t])
          << label << " job " << j << " minute " << t;
    }
  }
  for (size_t c = 0; c < kNumLossCauses; ++c) {
    EXPECT_EQ(a.cluster_lost_by_cause[c], b.cluster_lost_by_cause[c])
        << label << " cause " << LossCauseName(c);
  }
}

// Per-window bit-exactness of the causal decomposition (src/obs/attribution.h)
// plus byte-identity of the exported attribution CSV across a set of runs.
void ExpectAttributionExactAndCsvStable(const std::vector<RunResult>& runs,
                                        const std::string& label) {
  for (const JobRunStats& job : runs[0].jobs) {
    for (size_t w = 0; w < job.minute_utility.size(); ++w) {
      const double lost = std::max(0.0, 1.0 - job.minute_utility[w]);
      double sum = 0.0;
      for (size_t c = 0; c < kNumLossCauses; ++c) {
        sum += job.minute_lost_by_cause[c][w];
      }
      ASSERT_EQ(sum, lost) << label << " job " << job.name << " window " << w;
    }
  }
  std::vector<std::string> csvs;
  for (size_t i = 0; i < runs.size(); ++i) {
    const std::string path =
        testing::TempDir() + "slo_sharded_" + label + "_" + std::to_string(i) + ".csv";
    ASSERT_TRUE(WriteSloCsv(path, runs[i])) << path;
    std::ifstream in(path);
    csvs.emplace_back(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>{});
  }
  for (size_t i = 1; i < csvs.size(); ++i) {
    EXPECT_EQ(csvs[0], csvs[i]) << label << " csv " << i;
  }
}

TEST(ShardedDeterminismTest, BitIdenticalAcrossShardCounts) {
  ASSERT_TRUE(kForcePoolSize);
  ExperimentSetup setup = ShardedSetup();
  const PreparedWorkload workload = PrepareWorkload(setup);
  std::vector<RunResult> runs;
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    setup.shard_threads = shards;
    auto policy = MakePolicy("AIAD", nullptr);
    runs.push_back(RunPolicy(setup, workload, *policy, setup.seed + 1000));
  }
  ExpectRunsIdentical(runs[0], runs[1], "1v2");
  ExpectRunsIdentical(runs[0], runs[2], "1v8");
  EXPECT_GT(runs[0].events_processed, 0u);
  ExpectAttributionExactAndCsvStable(runs, "plain");
}

TEST(ShardedDeterminismTest, BitIdenticalAcrossShardCountsUnderChaos) {
  ASSERT_TRUE(kForcePoolSize);
  ExperimentSetup setup = ShardedSetup();
  setup.faults = ShardedChaos();
  const PreparedWorkload workload = PrepareWorkload(setup);
  std::vector<RunResult> runs;
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    setup.shard_threads = shards;
    auto policy = MakePolicy("AIAD", nullptr);
    runs.push_back(RunPolicy(setup, workload, *policy, setup.seed + 1000));
  }
  ExpectRunsIdentical(runs[0], runs[1], "chaos 1v2");
  ExpectRunsIdentical(runs[0], runs[2], "chaos 1v8");
  // The chaos actually fired (the scenario is not vacuous).
  EXPECT_FALSE(runs[0].fault_log.empty());
  EXPECT_GT(runs[0].faults.replicas_killed, 0u);
  ExpectAttributionExactAndCsvStable(runs, "chaos");
}

TEST(ShardedDeterminismTest, BitIdenticalUnderBothSchedulers) {
  ExperimentSetup setup = ShardedSetup();
  setup.shard_threads = 2;
  const PreparedWorkload workload = PrepareWorkload(setup);
  std::vector<RunResult> runs;
  for (const SchedulerKind kind : {SchedulerKind::kCalendar, SchedulerKind::kBinaryHeap}) {
    setup.scheduler = kind;
    auto policy = MakePolicy("AIAD", nullptr);
    runs.push_back(RunPolicy(setup, workload, *policy, setup.seed + 1000));
  }
  ExpectRunsIdentical(runs[0], runs[1], "calendar-vs-heap");
}

// An inactive chaos plan must draw nothing from any stream: the run is
// bit-identical to one with the default (empty) plan.
TEST(ShardedDeterminismTest, InactivePlanLeavesRunsUntouched) {
  ExperimentSetup setup = ShardedSetup();
  setup.shard_threads = 4;
  const PreparedWorkload workload = PrepareWorkload(setup);
  auto policy_a = MakePolicy("AIAD", nullptr);
  const RunResult a = RunPolicy(setup, workload, *policy_a, 777);
  setup.faults = FaultPlan{};
  setup.faults.seed ^= 0xabcdefull;  // inactive: the seed must not matter
  auto policy_b = MakePolicy("AIAD", nullptr);
  const RunResult b = RunPolicy(setup, workload, *policy_b, 777);
  ExpectRunsIdentical(a, b, "inactive-plan");
  EXPECT_TRUE(a.fault_log.empty());
}

// record_minute_series=false keeps memory flat; the running-sum averages
// must match the recorded-series averages bit-for-bit (same additions in the
// same order), and the per-minute vectors come back empty.
TEST(ShardedDeterminismTest, RunningSumsMatchRecordedSeries) {
  ExperimentSetup setup = ShardedSetup();
  setup.shard_threads = 2;
  const PreparedWorkload workload = PrepareWorkload(setup);
  auto policy_a = MakePolicy("AIAD", nullptr);
  const RunResult recorded = RunPolicy(setup, workload, *policy_a, 555);
  setup.record_minute_series = false;
  auto policy_b = MakePolicy("AIAD", nullptr);
  const RunResult summed = RunPolicy(setup, workload, *policy_b, 555);

  EXPECT_EQ(recorded.events_processed, summed.events_processed);
  ASSERT_EQ(recorded.jobs.size(), summed.jobs.size());
  for (size_t j = 0; j < recorded.jobs.size(); ++j) {
    EXPECT_EQ(recorded.jobs[j].arrivals, summed.jobs[j].arrivals) << j;
    EXPECT_EQ(recorded.jobs[j].avg_utility, summed.jobs[j].avg_utility) << j;
    EXPECT_EQ(recorded.jobs[j].avg_effective_utility,
              summed.jobs[j].avg_effective_utility)
        << j;
    EXPECT_EQ(recorded.jobs[j].avg_replicas, summed.jobs[j].avg_replicas) << j;
    EXPECT_TRUE(summed.jobs[j].minute_p99.empty()) << j;
    EXPECT_TRUE(summed.jobs[j].minute_utility.empty()) << j;
    // Attribution averages come from running totals, so they are independent
    // of whether the per-window series were recorded.
    for (size_t c = 0; c < kNumLossCauses; ++c) {
      EXPECT_EQ(recorded.jobs[j].lost_by_cause[c], summed.jobs[j].lost_by_cause[c])
          << j << " cause " << LossCauseName(c);
      EXPECT_TRUE(summed.jobs[j].minute_lost_by_cause[c].empty()) << j;
    }
    EXPECT_EQ(recorded.jobs[j].error_budget_consumed, summed.jobs[j].error_budget_consumed)
        << j;
    EXPECT_EQ(recorded.jobs[j].burn_alerts_fast, summed.jobs[j].burn_alerts_fast) << j;
  }
  // The cluster average folds the same per-job means in a different
  // (mathematically equal) order; allow FP slack there only.
  EXPECT_NEAR(recorded.cluster_avg_utility, summed.cluster_avg_utility, 1e-9);
  EXPECT_TRUE(summed.cluster_utility_timeline.empty());
}

// The sharded engine refuses configs it cannot honor deterministically.
TEST(ShardedDeterminismTest, RejectsNodeModelConfigs) {
  ExperimentSetup setup = ShardedSetup();
  setup.nodes.push_back(Node{"node0", 8.0, 8.0});
  const PreparedWorkload workload = PrepareWorkload(setup);
  auto policy = MakePolicy("AIAD", nullptr);
  EXPECT_THROW(RunPolicy(setup, workload, *policy, 1), std::invalid_argument);
}

}  // namespace
}  // namespace faro
