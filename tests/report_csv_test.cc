// RFC-4180 escaping of user-controlled job names in the CSV reports: a name
// with commas, quotes, or newlines must round-trip as exactly one field.

#include "src/sim/report.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace faro {
namespace {

// Minimal RFC-4180 reader for one line: the inverse of CsvEscape, used to
// prove the round trip.
std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else {
      field += c;
    }
  }
  fields.push_back(field);
  return fields;
}

TEST(CsvEscapeTest, PlainFieldsPassThrough) {
  EXPECT_EQ(CsvEscape("resnet34"), "resnet34");
  EXPECT_EQ(CsvEscape("job-0_p99"), "job-0_p99");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvEscapeTest, HostileFieldsRoundTrip) {
  const std::vector<std::string> evil = {
      "job,with,commas", "job \"quoted\"", "both,\"of\",them", "\"", ",", "\"\"",
      "trailing,comma,", "a\"b\"c"};
  for (const std::string& name : evil) {
    const std::string line = CsvEscape(name) + "," + CsvEscape("second");
    const std::vector<std::string> fields = ParseCsvLine(line);
    ASSERT_EQ(fields.size(), 2u) << name;
    EXPECT_EQ(fields[0], name);
    EXPECT_EQ(fields[1], "second");
  }
}

TEST(CsvEscapeTest, SummaryCsvKeepsColumnCountWithEvilJobNames) {
  RunResult result;
  JobRunStats job;
  job.name = "resnet,34 \"prod\"";
  job.arrivals = 10;
  job.drops = 1;
  result.jobs.push_back(job);
  const std::string path = ::testing::TempDir() + "report_csv_test_summary.csv";
  ASSERT_TRUE(WriteSummaryCsv(path, result));
  std::ifstream in(path);
  ASSERT_TRUE(in);
  std::string header;
  std::string row;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  const size_t columns = ParseCsvLine(header).size();
  const std::vector<std::string> fields = ParseCsvLine(row);
  ASSERT_EQ(fields.size(), columns);
  EXPECT_EQ(fields[0], job.name);
  std::remove(path.c_str());
}

TEST(CsvEscapeTest, SloCsvEscapesNamesAndRoundTripsBuckets) {
  RunResult result;
  JobRunStats job;
  job.name = "evil,\"job\"";
  job.minute_utility = {0.25};
  job.minute_arrivals = {100.0};
  job.minute_violations = {3.0};
  job.minute_burn_fast = {5.0};
  job.minute_burn_slow = {1.0};
  // A real attribution split (awkward weights on purpose) whose enum-order
  // sum must survive the text round trip.
  AttributionInputs inputs;
  inputs.arrivals = 100.0;
  inputs.drops = 3.0;
  inputs.wait_seconds = 41.0 / 7.0;
  inputs.cold_start_seconds = 13.0 / 3.0;
  const double lost = 0.75;  // = max(0, 1 - minute_utility[0])
  const auto buckets = AttributeLostUtility(lost, inputs);
  for (size_t c = 0; c < kNumLossCauses; ++c) {
    job.minute_lost_by_cause[c] = {buckets[c]};
  }
  result.jobs.push_back(job);
  const std::string path = ::testing::TempDir() + "report_csv_test_slo.csv";
  ASSERT_TRUE(WriteSloCsv(path, result));
  std::ifstream in(path);
  ASSERT_TRUE(in);
  std::string header;
  std::string row;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  const std::vector<std::string> head = ParseCsvLine(header);
  const std::vector<std::string> fields = ParseCsvLine(row);
  ASSERT_EQ(fields.size(), head.size());
  EXPECT_EQ(fields[0], job.name);
  // 17-digit output: parsing the bucket columns back and summing in order
  // reproduces the lost_utility column exactly.
  double sum = 0.0;
  size_t lost_col = 0;
  for (size_t i = 0; i < head.size(); ++i) {
    if (head[i] == "lost_utility") lost_col = i;
    if (head[i].rfind("lost_", 0) == 0 && head[i] != "lost_utility") {
      sum += std::stod(fields[i]);
    }
  }
  EXPECT_EQ(sum, std::stod(fields[lost_col]));
  std::remove(path.c_str());
}

TEST(CsvEscapeTest, TimelineHeaderQuotesDerivedColumnNames) {
  RunResult result;
  JobRunStats job;
  job.name = "a,b";
  job.minute_p99 = {0.1};
  job.minute_utility = {1.0};
  job.minute_replicas = {2.0};
  job.minute_drop_rate = {0.0};
  result.jobs.push_back(job);
  result.cluster_utility_timeline = {1.0};
  result.total_load_timeline = {5.0};
  const std::string path = ::testing::TempDir() + "report_csv_test_timeline.csv";
  ASSERT_TRUE(WriteTimelineCsv(path, result));
  std::ifstream in(path);
  ASSERT_TRUE(in);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  const std::vector<std::string> fields = ParseCsvLine(header);
  ASSERT_EQ(fields.size(), 3u + 4u);  // minute, cluster_utility, total_load + 4 per job
  EXPECT_EQ(fields[3], "a,b_p99");
  EXPECT_EQ(fields[6], "a,b_drop_rate");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace faro
