// Tests for the §7 extension features: G/G/c queueing, pipeline SLO
// splitting, admission control, budget-limited capacity, the Prophet-style
// forecaster, trace CSV I/O, and simulator fault injection.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numbers>
#include <stdexcept>

#include <gtest/gtest.h>

#include "src/core/admission.h"
#include "src/core/budget.h"
#include "src/core/pipeline.h"
#include "src/forecast/prophet.h"
#include "src/queueing/ggc.h"
#include "src/queueing/mdc.h"
#include "src/queueing/mmc.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_io.h"

namespace faro {
namespace {

// --- G/G/c -------------------------------------------------------------------

TEST(GgcTest, MmcSpecialCase) {
  // ca^2 = cs^2 = 1 (M/M/c): Allen-Cunneen is exact.
  const TrafficVariability mm{1.0, 1.0};
  EXPECT_NEAR(GgcMeanWait(4, 30.0, 0.1, mm), MmcMeanWait(4, 30.0, 0.1), 1e-12);
  EXPECT_NEAR(GgcWaitPercentile(4, 30.0, 0.1, 0.99, mm),
              MmcWaitPercentile(4, 30.0, 0.1, 0.99), 1e-12);
}

TEST(GgcTest, DeterministicServiceDerivesTheHalfRule) {
  // ca^2 = 1, cs^2 = 0 (M/D/c): Allen-Cunneen reduces to exactly half the
  // M/M/c wait -- the engineering approximation of §3.3 falls out as a
  // special case.
  const TrafficVariability md{1.0, 0.0};
  EXPECT_NEAR(GgcLatencyPercentile(8, 40.0, 0.15, 0.99, md),
              MdcLatencyPercentile(8, 40.0, 0.15, 0.99), 1e-12);
  EXPECT_EQ(RequiredReplicasGgc(40.0, 0.15, 0.60, 0.9999, md), 8u);
}

TEST(GgcTest, BurstierTrafficNeedsMoreReplicas) {
  const TrafficVariability calm{1.0, 0.0};
  const TrafficVariability bursty{4.0, 1.0};
  EXPECT_GE(RequiredReplicasGgc(40.0, 0.15, 0.60, 0.99, bursty),
            RequiredReplicasGgc(40.0, 0.15, 0.60, 0.99, calm));
}

TEST(GgcTest, UnstableIsInfinite) {
  const TrafficVariability v{1.0, 0.5};
  EXPECT_TRUE(std::isinf(GgcMeanWait(2, 25.0, 0.1, v)));
}

// --- Pipeline SLO splitting ---------------------------------------------------

PipelineSpec TwoStagePipeline() {
  PipelineSpec pipeline;
  pipeline.name = "video";
  pipeline.slo = 0.9;
  pipeline.stages = {{"detector", 0.200, 1.0}, {"classifier", 0.100, 1.0}};
  return pipeline;
}

TEST(PipelineTest, ProportionalSplitMatchesPaperExample) {
  // §7: "for a chain with two model calls, if one model takes 2x other ...
  // the SLO is split as 66%-33%".
  const auto specs = SplitPipelineSlo(TwoStagePipeline());
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_NEAR(specs[0].slo, 0.6, 1e-12);
  EXPECT_NEAR(specs[1].slo, 0.3, 1e-12);
  EXPECT_EQ(specs[0].name, "video/detector");
  EXPECT_NEAR(specs[0].slo + specs[1].slo, 0.9, 1e-12);
}

TEST(PipelineTest, FanoutScalesDownstreamLoad) {
  PipelineSpec pipeline = TwoStagePipeline();
  pipeline.stages[1].fanout = 2.5;  // detector triggers ~2.5 classifier calls
  const auto rates = StageArrivalRates(pipeline, 10.0);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
  EXPECT_DOUBLE_EQ(rates[1], 25.0);
}

TEST(PipelineTest, LatencyEstimateSumsStages) {
  const PipelineSpec pipeline = TwoStagePipeline();
  const std::vector<double> replicas{6.0, 4.0};
  const double end_to_end = PipelineLatencyEstimate(pipeline, replicas, 10.0);
  const double stage0 = RelaxedMdcLatency(6.0, 10.0, 0.2, 0.99);
  const double stage1 = RelaxedMdcLatency(4.0, 10.0, 0.1, 0.99);
  EXPECT_NEAR(end_to_end, stage0 + stage1, 1e-12);
}

TEST(PipelineTest, FeasibilityRequiresSloAboveTotalProcessing) {
  PipelineSpec pipeline = TwoStagePipeline();
  EXPECT_TRUE(PipelineSloFeasible(pipeline));
  pipeline.slo = 0.25;  // below 0.3 total processing time
  EXPECT_FALSE(PipelineSloFeasible(pipeline));
  pipeline.stages.clear();
  EXPECT_FALSE(PipelineSloFeasible(pipeline));
}

TEST(PipelineTest, SubSlosMeetableImpliesPipelineMeetable) {
  // If every stage meets its sub-SLO, summed stage latencies meet the
  // pipeline SLO (the composition is conservative by construction).
  const PipelineSpec pipeline = TwoStagePipeline();
  const auto specs = SplitPipelineSlo(pipeline);
  const auto rates = StageArrivalRates(pipeline, 15.0);
  std::vector<double> replicas;
  for (size_t i = 0; i < specs.size(); ++i) {
    replicas.push_back(RequiredReplicasMdc(rates[i], specs[i].processing_time, specs[i].slo,
                                           specs[i].percentile));
  }
  EXPECT_LE(PipelineLatencyEstimate(pipeline, replicas, 15.0), pipeline.slo + 1e-9);
}

// --- Admission control --------------------------------------------------------

AdmissionRequest MakeRequest(const std::string& name, double peak_rate) {
  AdmissionRequest request;
  request.spec.name = name;
  request.spec.slo = 0.72;
  request.spec.processing_time = 0.18;
  request.peak_arrival_rate = peak_rate;
  return request;
}

TEST(AdmissionTest, AdmitsUntilCapacityExhausted) {
  AdmissionController controller(ClusterResources{12.0, 12.0});
  // Each job with peak 20 req/s needs 6 replicas at p99.
  EXPECT_TRUE(controller.Admit(MakeRequest("a", 20.0)).admitted);
  EXPECT_TRUE(controller.Admit(MakeRequest("b", 20.0)).admitted);
  const AdmissionDecision third = controller.Admit(MakeRequest("c", 20.0));
  EXPECT_FALSE(third.admitted);
  EXPECT_GT(third.peak_demand_cpu, 12.0);
}

TEST(AdmissionTest, ReleaseFreesCapacity) {
  AdmissionController controller(ClusterResources{12.0, 12.0});
  ASSERT_TRUE(controller.Admit(MakeRequest("a", 20.0)).admitted);
  ASSERT_TRUE(controller.Admit(MakeRequest("b", 20.0)).admitted);
  EXPECT_FALSE(controller.Check(MakeRequest("c", 20.0)).admitted);
  EXPECT_TRUE(controller.Release("a"));
  EXPECT_FALSE(controller.Release("a"));  // already gone
  EXPECT_TRUE(controller.Admit(MakeRequest("c", 20.0)).admitted);
}

TEST(AdmissionTest, RejectsUnsatisfiableSlo) {
  AdmissionRequest impossible = MakeRequest("x", 1.0);
  impossible.spec.slo = 0.1;  // below one service time
  AdmissionController controller(ClusterResources{100.0, 100.0});
  EXPECT_FALSE(controller.Admit(impossible).admitted);
}

TEST(AdmissionTest, CheckDoesNotMutate) {
  AdmissionController controller(ClusterResources{12.0, 12.0});
  EXPECT_TRUE(controller.Check(MakeRequest("a", 20.0)).admitted);
  EXPECT_EQ(controller.admitted().size(), 0u);
}

// --- Budget-limited capacity ----------------------------------------------------

TEST(BudgetTest, CapacityFromWholeInstances) {
  const InstanceType cx2{"cx2-32x64", 32.0, 64.0, 1.50};
  EXPECT_EQ(InstancesForBudget(3.20, cx2), 2u);
  const ClusterResources capacity = CapacityForBudget(3.20, cx2);
  EXPECT_DOUBLE_EQ(capacity.cpu, 64.0);
  EXPECT_DOUBLE_EQ(capacity.mem, 128.0);
  EXPECT_EQ(InstancesForBudget(1.0, cx2), 0u);
}

TEST(BudgetTest, CheapestFeasiblePicksByRate) {
  const std::vector<InstanceType> catalog{
      {"small", 4.0, 8.0, 0.25},    // $0.0625 / vCPU-h
      {"large", 32.0, 64.0, 1.50},  // $0.0469 / vCPU-h
      {"gpuish", 8.0, 64.0, 2.00},  // $0.25 / vCPU-h
  };
  // Need 36 vCPUs / 36 GB within $3/h: large gives 64 vCPUs ($0.047) -- the
  // cheapest per vCPU that reaches the requirement; small gives 48 vCPUs at
  // $0.0625. Expect "large".
  const InstanceType* pick = CheapestFeasible(catalog, 3.0, 36.0, 36.0);
  ASSERT_NE(pick, nullptr);
  EXPECT_EQ(pick->name, "large");
  // Impossible requirement.
  EXPECT_EQ(CheapestFeasible(catalog, 0.3, 36.0, 36.0), nullptr);
}

// --- Prophet ------------------------------------------------------------------

TEST(ProphetTest, FitsDiurnalSeriesAndForecasts) {
  const size_t period = 120;
  std::vector<double> values;
  for (size_t t = 0; t < 6 * period; ++t) {
    values.push_back(50.0 + 20.0 * std::sin(2.0 * std::numbers::pi * t / period) +
                     0.01 * static_cast<double>(t));
  }
  ProphetConfig config;
  config.period = period;
  ProphetModel model(config);
  ASSERT_TRUE(model.Fit(values));
  const auto forecast = model.Forecast(period);
  ASSERT_EQ(forecast.size(), period);
  double se = 0.0;
  for (size_t h = 0; h < period; ++h) {
    const size_t t = values.size() + h;
    const double truth = 50.0 + 20.0 * std::sin(2.0 * std::numbers::pi * t / period) +
                         0.01 * static_cast<double>(t);
    se += (forecast[h] - truth) * (forecast[h] - truth);
  }
  EXPECT_LT(std::sqrt(se / period), 3.0);  // far below the 20-amplitude swing
}

TEST(ProphetTest, TooLittleDataFallsBack) {
  ProphetModel model;
  EXPECT_FALSE(model.Fit(std::vector<double>{1.0, 2.0, 3.0}));
  const auto forecast = model.Forecast(4);
  for (const double v : forecast) {
    EXPECT_DOUBLE_EQ(v, 3.0);
  }
}

TEST(ProphetTest, ForecastsAreNonNegative) {
  std::vector<double> values;
  for (size_t t = 0; t < 720; ++t) {
    values.push_back(1.0 + std::sin(2.0 * std::numbers::pi * t / 360.0));
  }
  ProphetConfig config;
  config.period = 360;
  ProphetModel model(config);
  ASSERT_TRUE(model.Fit(values));
  for (const double v : model.Forecast(360)) {
    EXPECT_GE(v, 0.0);
  }
}

// --- Trace CSV I/O --------------------------------------------------------------

TEST(TraceIoTest, RoundTripsWithHeader) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "faro_trace_io_test.csv").string();
  const std::vector<Series> traces{Series({1.0, 2.5, 3.0}), Series({10.0, 20.0})};
  ASSERT_TRUE(SaveTracesCsv(path, traces, {"jobA", "jobB"}));
  std::vector<std::string> names;
  const auto loaded = LoadTracesCsv(path, &names);
  ASSERT_EQ(loaded.size(), 2u);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "jobA");
  ASSERT_EQ(loaded[0].size(), 3u);
  ASSERT_EQ(loaded[1].size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[0][1], 2.5);
  EXPECT_DOUBLE_EQ(loaded[1][1], 20.0);
  std::filesystem::remove(path);
}

TEST(TraceIoTest, HeaderlessNumericFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "faro_trace_io_test2.csv").string();
  ASSERT_TRUE(SaveTracesCsv(path, {Series({5.0, 6.0})}));
  const auto loaded = LoadTracesCsv(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[0][0], 5.0);
  std::filesystem::remove(path);
}

TEST(TraceIoTest, MissingFileReturnsEmpty) {
  EXPECT_TRUE(LoadTracesCsv("/nonexistent/path/t.csv").empty());
}

TEST(TraceIoTest, MalformedCellThrowsNamingFileLineAndColumn) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "faro_trace_io_bad.csv").string();
  {
    std::ofstream out(path);
    out << "jobA,jobB\n1,2\n3,oops\n";
  }
  try {
    LoadTracesCsv(path);
    FAIL() << "malformed cell did not throw";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find(":3:"), std::string::npos) << what;       // line number
    EXPECT_NE(what.find("column 2"), std::string::npos) << what;  // 1-based column
    EXPECT_NE(what.find("'jobB'"), std::string::npos) << what;    // header name
    EXPECT_NE(what.find("'oops'"), std::string::npos) << what;    // offending text
  }
  std::filesystem::remove(path);
}

TEST(TraceIoTest, GarbageInHeaderlessFileThrows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "faro_trace_io_garbage.csv").string();
  {
    std::ofstream out(path);
    out << "5,6\n7,\x01garbage\n";  // numeric first row, binary junk later
  }
  EXPECT_THROW(LoadTracesCsv(path), std::invalid_argument);
  std::filesystem::remove(path);
}

TEST(TraceIoTest, TruncatedRaggedTailStaysLegal) {
  // A file cut off mid-row leaves trailing empty cells -- exactly what
  // SaveTracesCsv emits for ragged traces, so it must keep loading; blank
  // lines and CRLF endings are tolerated too.
  const std::string path =
      (std::filesystem::temp_directory_path() / "faro_trace_io_trunc.csv").string();
  {
    std::ofstream out(path);
    out << "jobA,jobB\r\n1,2\r\n\r\n3,\n";
  }
  const auto loaded = LoadTracesCsv(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].size(), 2u);
  EXPECT_EQ(loaded[1].size(), 1u);
  EXPECT_DOUBLE_EQ(loaded[0][1], 3.0);
  std::filesystem::remove(path);
}

// --- Fault injection --------------------------------------------------------------

class RestoringPolicy : public AutoscalingPolicy {
 public:
  explicit RestoringPolicy(uint32_t target) : target_(target) {}
  std::string name() const override { return "Restoring"; }
  double decision_interval_s() const override { return 60.0; }
  ScalingAction Decide(double, const std::vector<JobSpec>&, const std::vector<JobMetrics>&,
                       const ClusterResources&) override {
    ScalingAction action;
    action.replicas = {target_};
    return action;
  }

 private:
  uint32_t target_;
};

TEST(FaultInjectionTest, FailuresDegradeFixedAllocationButRestoringPolicyRecovers) {
  SimJobConfig job;
  job.spec.processing_time = 0.18;
  job.spec.slo = 0.72;
  job.arrival_rate_per_min = Series(std::vector<double>(40, 600.0));  // 10 req/s
  job.initial_replicas = 4;

  SimConfig config;
  config.resources = ClusterResources{32.0, 32.0};
  config.replica_mtbf_s = 600.0;  // aggressive: ~1 failure / replica / 10 min
  config.seed = 5;

  // A policy that never re-provisions bleeds replicas.
  class InertPolicy : public AutoscalingPolicy {
   public:
    std::string name() const override { return "Inert"; }
    ScalingAction Decide(double, const std::vector<JobSpec>&,
                         const std::vector<JobMetrics>& metrics,
                         const ClusterResources&) override {
      ScalingAction action;
      action.replicas = {
          static_cast<uint32_t>(metrics[0].ready_replicas + metrics[0].starting_replicas)};
      return action;
    }
  };
  InertPolicy inert;
  // Fire-and-forget actuation: nothing re-issues the dead replicas between
  // decisions, so the inert policy bleeds capacity.
  SimConfig in_step = config;
  in_step.actuation = ActuationMode::kInStep;
  const RunResult bled = RunSimulation(in_step, {job}, inert);
  EXPECT_LT(bled.jobs[0].minute_replicas.back(), 4.0);
  EXPECT_GT(bled.jobs[0].slo_violation_rate, 0.05);

  RestoringPolicy restoring(4);
  const RunResult restored = RunSimulation(in_step, {job}, restoring);
  EXPECT_LT(restored.jobs[0].slo_violation_rate, bled.jobs[0].slo_violation_rate);

  // The reconciling actuator is level-triggered: a kill after convergence
  // reopens the deficit against the last published generation, so even the
  // inert policy self-heals back toward its own published targets.
  const RunResult healed = RunSimulation(config, {job}, inert);
  EXPECT_GT(healed.actuation.retries, 0u);
  EXPECT_LT(healed.jobs[0].slo_violation_rate, bled.jobs[0].slo_violation_rate);
}

TEST(FaultInjectionTest, ZeroMtbfDisablesFailures) {
  SimJobConfig job;
  job.spec.processing_time = 0.18;
  job.spec.slo = 0.72;
  job.arrival_rate_per_min = Series(std::vector<double>(10, 300.0));
  job.initial_replicas = 3;
  SimConfig config;
  config.resources = ClusterResources{8.0, 8.0};
  config.replica_mtbf_s = 0.0;
  class Inert : public AutoscalingPolicy {
   public:
    std::string name() const override { return "Inert"; }
    ScalingAction Decide(double, const std::vector<JobSpec>&,
                         const std::vector<JobMetrics>& m,
                         const ClusterResources&) override {
      ScalingAction a;
      a.replicas = {static_cast<uint32_t>(m[0].ready_replicas)};
      return a;
    }
  };
  Inert policy;
  const RunResult result = RunSimulation(config, {job}, policy);
  for (const double r : result.jobs[0].minute_replicas) {
    EXPECT_DOUBLE_EQ(r, 3.0);
  }
}

}  // namespace
}  // namespace faro
