// Determinism contract of the multi-start Stage-2 solve driver: for a fixed
// `FaroConfig::seed`, Decide() returns a bit-identical ScalingAction (replicas
// AND drop rates) at every `solve_parallelism` setting, for both the flat and
// the hierarchical (grouped) paths, across multiple cycles (exercising the
// cross-cycle warm-start cache). The suite name contains "Determinism" so the
// TSan CI job (`ctest -R Determinism` under FARO_SANITIZE=thread) picks it up.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/autoscaler.h"

namespace faro {
namespace {

// Make sure the shared pool actually has workers even on constrained CI
// machines, so parallel settings exercise real cross-thread execution.
const bool kThreadsEnvSet = [] {
  setenv("FARO_THREADS", "8", /*overwrite=*/0);
  return true;
}();

std::vector<JobSpec> MakeSpecs(size_t n) {
  std::vector<JobSpec> specs(n);
  for (size_t i = 0; i < n; ++i) {
    specs[i].name = "job" + std::to_string(i);
    specs[i].slo = 0.720;
    specs[i].processing_time = 0.180;
  }
  return specs;
}

JobMetrics MakeMetrics(double rate, uint32_t replicas) {
  JobMetrics m;
  m.arrival_rate = rate;
  m.processing_time = 0.180;
  m.ready_replicas = replicas;
  m.arrival_history.assign(15, rate);
  return m;
}

// Runs `cycles` long-term decisions with evolving loads and returns every
// action, so warm-start reuse across cycles is part of what is compared.
std::vector<ScalingAction> RunCycles(const FaroConfig& config, size_t num_jobs,
                                     double capacity, size_t cycles) {
  FaroAutoscaler faro(config);
  const auto specs = MakeSpecs(num_jobs);
  const ClusterResources resources{capacity, capacity};
  std::vector<ScalingAction> actions;
  std::vector<uint32_t> current(num_jobs, 1);
  for (size_t cycle = 0; cycle < cycles; ++cycle) {
    std::vector<JobMetrics> metrics;
    for (size_t i = 0; i < num_jobs; ++i) {
      // Deterministic per-job, per-cycle load ramp: heavy hitters and light
      // jobs, drifting over time so successive solves differ.
      const double rate = 4.0 + 3.0 * static_cast<double>((i * 7 + cycle * 5) % 11);
      metrics.push_back(MakeMetrics(rate, current[i]));
    }
    ScalingAction action =
        faro.Decide(300.0 * static_cast<double>(cycle + 1), specs, metrics, resources);
    current = action.replicas;
    actions.push_back(std::move(action));
  }
  return actions;
}

void ExpectIdenticalActions(const std::vector<ScalingAction>& a,
                            const std::vector<ScalingAction>& b, const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t c = 0; c < a.size(); ++c) {
    ASSERT_EQ(a[c].replicas.size(), b[c].replicas.size()) << label << " cycle " << c;
    for (size_t i = 0; i < a[c].replicas.size(); ++i) {
      EXPECT_EQ(a[c].replicas[i], b[c].replicas[i])
          << label << " cycle " << c << " job " << i;
    }
    ASSERT_EQ(a[c].drop_rates.size(), b[c].drop_rates.size()) << label << " cycle " << c;
    for (size_t i = 0; i < a[c].drop_rates.size(); ++i) {
      // Bitwise equality: drop rates feed back into the next solve.
      EXPECT_EQ(a[c].drop_rates[i], b[c].drop_rates[i])
          << label << " cycle " << c << " job " << i;
    }
  }
}

void CheckAcrossParallelism(FaroConfig config, size_t num_jobs, double capacity,
                            const std::string& label) {
  config.solve_parallelism = 1;
  const std::vector<ScalingAction> serial = RunCycles(config, num_jobs, capacity, 4);
  for (const size_t parallelism : {size_t{2}, size_t{8}}) {
    config.solve_parallelism = parallelism;
    const std::vector<ScalingAction> parallel = RunCycles(config, num_jobs, capacity, 4);
    ExpectIdenticalActions(serial, parallel,
                           label + " parallelism=" + std::to_string(parallelism));
  }
}

TEST(SolverDeterminismTest, FlatSolveBitIdenticalAcrossThreadCounts) {
  FaroConfig config;  // defaults: multi-start on, warm cache on, early exit on
  CheckAcrossParallelism(config, /*num_jobs=*/10, /*capacity=*/36.0, "flat");
}

TEST(SolverDeterminismTest, FlatPenaltyDropRatesBitIdentical) {
  // Penalty objectives add drop-rate coordinates to the solve vector; the
  // determinism contract covers them too.
  FaroConfig config;
  config.objective = ObjectiveKind::kPenaltyFairSum;
  CheckAcrossParallelism(config, /*num_jobs=*/8, /*capacity=*/24.0, "flat-penalty");
}

TEST(SolverDeterminismTest, HierarchicalSolveBitIdenticalAcrossThreadCounts) {
  // Force grouping at a small job count so the test stays fast while the
  // parallel per-group fan-out (shuffle, group solves, polish) is exercised.
  FaroConfig config;
  config.hierarchical_threshold = 0;
  config.hierarchical_groups = 4;
  CheckAcrossParallelism(config, /*num_jobs=*/12, /*capacity=*/40.0, "hierarchical");
}

TEST(SolverDeterminismTest, EarlyExitToggleDoesNotBreakDeterminism) {
  // Early exit may select a different winner than the full sweep, but each
  // setting must itself be schedule-invariant (default is on).
  FaroConfig config;
  config.multistart_early_exit = false;
  CheckAcrossParallelism(config, /*num_jobs=*/10, /*capacity=*/36.0, "no-early-exit");
}

TEST(SolverDeterminismTest, LegacySerialPathUnchangedByParallelismKnob) {
  // The <=1-start legacy path never fans out; the knob must be inert.
  FaroConfig config;
  config.multistart_starts = 1;
  config.warm_start_cache = false;
  CheckAcrossParallelism(config, /*num_jobs=*/6, /*capacity=*/20.0, "legacy");
}

TEST(SolverDeterminismTest, SameSeedSameActionsDifferentSeedUsuallyDiffers) {
  FaroConfig config;
  const std::vector<ScalingAction> a = RunCycles(config, 10, 36.0, 3);
  const std::vector<ScalingAction> b = RunCycles(config, 10, 36.0, 3);
  ExpectIdenticalActions(a, b, "same-seed");
}

}  // namespace
}  // namespace faro
