#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/workload/synthetic.h"

namespace faro {
namespace {

TEST(SyntheticTraceTest, LengthAndNonNegativity) {
  SyntheticTraceConfig config;
  config.days = 3;
  config.steps_per_day = 1440;
  const Series trace = GenerateSyntheticTrace(config);
  ASSERT_EQ(trace.size(), 3u * 1440u);
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_GE(trace[i], 0.0);
  }
}

TEST(SyntheticTraceTest, DeterministicForSameSeed) {
  SyntheticTraceConfig config;
  config.days = 1;
  const Series a = GenerateSyntheticTrace(config);
  const Series b = GenerateSyntheticTrace(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(SyntheticTraceTest, SeedsProduceDistinctTraces) {
  SyntheticTraceConfig config;
  config.days = 1;
  const Series a = GenerateSyntheticTrace(config);
  config.seed = 999;
  const Series b = GenerateSyntheticTrace(config);
  double diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff += std::abs(a[i] - b[i]);
  }
  EXPECT_GT(diff, 1.0);
}

TEST(SyntheticTraceTest, HasDiurnalStructure) {
  // The daily cycle must dominate: hourly averages across days should have a
  // clear peak-to-trough ratio.
  SyntheticTraceConfig config;
  config.days = 4;
  config.noise_level = 0.02;
  config.spike_rate_per_day = 0.0;
  const Series trace = GenerateSyntheticTrace(config);
  std::vector<double> hourly(24, 0.0);
  for (size_t t = 0; t < trace.size(); ++t) {
    hourly[(t % 1440) / 60] += trace[t];
  }
  const double peak = *std::max_element(hourly.begin(), hourly.end());
  const double trough = *std::min_element(hourly.begin(), hourly.end());
  EXPECT_GT(peak / std::max(trough, 1e-9), 1.5);
}

TEST(SyntheticTraceTest, SpikesCreateHeavyTail) {
  SyntheticTraceConfig base;
  base.days = 4;
  base.spike_rate_per_day = 0.0;
  SyntheticTraceConfig spiky = base;
  spiky.spike_rate_per_day = 10.0;
  spiky.spike_amp = 3.0;
  const Series calm = GenerateSyntheticTrace(base);
  const Series burst = GenerateSyntheticTrace(spiky);
  const double calm_ratio = calm.MaxValue() / std::max(calm.MeanValue(), 1e-9);
  const double burst_ratio = burst.MaxValue() / std::max(burst.MeanValue(), 1e-9);
  EXPECT_GT(burst_ratio, calm_ratio);
}

TEST(StandardJobMixTest, TenDiverseJobsInRange) {
  const auto mix = StandardJobMix(10, 42);
  ASSERT_EQ(mix.size(), 10u);
  for (const Series& trace : mix) {
    EXPECT_NEAR(trace.MinValue(), 1.0, 1e-9);
    EXPECT_NEAR(trace.MaxValue(), 1600.0, 1e-9);
  }
  // Jobs must differ from one another (heterogeneous mix).
  for (size_t i = 1; i < mix.size(); ++i) {
    double diff = 0.0;
    for (size_t t = 0; t < std::min(mix[0].size(), mix[i].size()); ++t) {
      diff += std::abs(mix[0][t] - mix[i][t]);
    }
    EXPECT_GT(diff, 100.0) << "job " << i << " identical to job 0";
  }
}

TEST(StandardJobMixTest, DuplicatedMixGetsFreshSeeds) {
  const auto mix = StandardJobMix(20, 42);
  ASSERT_EQ(mix.size(), 20u);
  double diff = 0.0;
  for (size_t t = 0; t < mix[0].size(); ++t) {
    diff += std::abs(mix[0][t] - mix[10][t]);
  }
  EXPECT_GT(diff, 100.0);  // job 10 is not a copy of job 0
}

TEST(SplitTrainEvalTest, LastDayIsEval) {
  SyntheticTraceConfig config;
  config.days = 11;
  config.steps_per_day = 100;
  const Series trace = GenerateSyntheticTrace(config);
  const TraceSplit split = SplitTrainEval(trace, 100);
  EXPECT_EQ(split.train.size(), 1000u);
  EXPECT_EQ(split.eval.size(), 100u);
  EXPECT_DOUBLE_EQ(split.eval[0], trace[1000]);
}

TEST(SplitTrainEvalTest, ShortTraceAllEval) {
  const Series trace(std::vector<double>{1.0, 2.0, 3.0});
  const TraceSplit split = SplitTrainEval(trace, 10);
  EXPECT_TRUE(split.train.empty());
  EXPECT_EQ(split.eval.size(), 3u);
}

}  // namespace
}  // namespace faro
